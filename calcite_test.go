package calcite_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"calcite"
	"calcite/internal/adapter/csvfile"
	"calcite/internal/adapter/streamtab"
	"calcite/internal/builder"
	"calcite/internal/types"
)

// TestFigure1Lifecycle (E1): one query through every architecture component
// of Figure 1 via the public API.
func TestFigure1Lifecycle(t *testing.T) {
	conn := calcite.Open()
	conn.AddTable("emps", calcite.Columns{
		{Name: "empid", Type: calcite.BigIntType},
		{Name: "deptno", Type: calcite.BigIntType},
		{Name: "sal", Type: calcite.DoubleType},
	}, [][]any{
		{int64(1), int64(10), 100.0},
		{int64(2), int64(20), 200.0},
	})
	logical, optimized, err := conn.Plan("SELECT deptno, SUM(sal) AS s FROM emps WHERE sal > 50 GROUP BY deptno")
	if err != nil {
		t.Fatal(err)
	}
	if logical == nil || optimized == nil {
		t.Fatal("missing plans")
	}
	res, err := conn.Query("SELECT deptno, SUM(sal) AS s FROM emps WHERE sal > 50 GROUP BY deptno ORDER BY deptno")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	plan, err := conn.Explain("SELECT * FROM emps")
	if err != nil || !strings.Contains(plan, "EnumerableTableScan") {
		t.Fatalf("explain: %v %q", err, plan)
	}
}

// TestTable1EmbeddingModes (E5): the component matrix — each embedding mode
// actually runs through the components Table 1 lists.
func TestTable1EmbeddingModes(t *testing.T) {
	// Mode: full stack (parser + validator + algebra + enumerable).
	conn := calcite.Open()
	conn.AddTable("t", calcite.Columns{{Name: "x", Type: calcite.BigIntType}},
		[][]any{{int64(1)}, {int64(2)}})
	if _, err := conn.Query("SELECT x FROM t WHERE x > 1"); err != nil {
		t.Fatalf("full stack: %v", err)
	}

	// Mode: own parser, algebra only (RelBuilder).
	node, err := conn.Builder().Scan("t").
		Aggregate(builder.GroupKey(), builder.Count(false, "c")).Build()
	if err != nil {
		t.Fatalf("builder: %v", err)
	}
	res, err := conn.ExecutePlan(node)
	if err != nil {
		t.Fatalf("builder exec: %v", err)
	}
	if v, _ := types.AsInt(res.Rows[0][0]); v != 2 {
		t.Fatalf("builder count: %v", res.Rows)
	}

	// Mode: remote driver (Avatica server + client).
	addr, stop, err := conn.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatalf("serve: %v", err)
	}
	defer stop()
	client := calcite.Dial(addr)
	resp, err := client.Query("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatalf("remote: %v", err)
	}
	if v, _ := types.AsInt(resp.Rows[0][0]); v != 2 {
		t.Fatalf("remote count: %v", resp.Rows)
	}

	// Mode: heuristic planner embedding.
	conn.UseHeuristicPlanner()
	if _, err := conn.Query("SELECT x FROM t"); err != nil {
		t.Fatalf("hep mode: %v", err)
	}
	conn.UseCostBasedPlanner(true, 0.05)
	if _, err := conn.Query("SELECT x FROM t"); err != nil {
		t.Fatalf("heuristic fixpoint mode: %v", err)
	}
}

// TestCSVQuickstartAdapter loads CSVs from disk (Figure 3's model → schema
// factory → schema flow).
func TestCSVQuickstartAdapter(t *testing.T) {
	dir := t.TempDir()
	csv := "id:int,name,score:double\n1,alice,9.5\n2,bob,7.25\n3,cara,\n"
	if err := os.WriteFile(filepath.Join(dir, "people.csv"), []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	adapter, err := csvfile.Load("csv", dir)
	if err != nil {
		t.Fatal(err)
	}
	conn := calcite.Open()
	conn.RegisterAdapter(adapter)
	res, err := conn.Query("SELECT name FROM csv.people WHERE score > 8")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "alice" {
		t.Fatalf("rows: %v", res.Rows)
	}
	// NULL cell parsed as NULL.
	res, err = conn.Query("SELECT COUNT(*) FROM csv.people WHERE score IS NULL")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := types.AsInt(res.Rows[0][0]); v != 1 {
		t.Fatalf("null count: %v", res.Rows)
	}
}

// TestStreamingPaperQueries (E11): the §7.2 example queries.
func TestStreamingPaperQueries(t *testing.T) {
	hour := int64(3600 * 1000)
	orders := streamtab.NewTable("orders", types.Row(
		types.Field{Name: "rowtime", Type: types.Timestamp},
		types.Field{Name: "productId", Type: types.BigInt},
		types.Field{Name: "units", Type: types.BigInt},
	), 0)
	for i := int64(0); i < 6; i++ {
		if err := orders.Append([]any{i * hour / 2, i % 2, 20 * (i + 1)}); err != nil {
			t.Fatal(err)
		}
	}
	orders.SetWatermark(hour)

	conn := calcite.Open()
	sa := streamtab.New("s")
	sa.AddTable(orders)
	conn.RegisterAdapter(sa)

	// History vs stream.
	hist, err := conn.Query("SELECT COUNT(*) FROM s.orders")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := types.AsInt(hist.Rows[0][0]); v != 3 {
		t.Fatalf("history: %v", hist.Rows)
	}
	strm, err := conn.Query("SELECT STREAM rowtime, productId, units FROM s.orders WHERE units > 25")
	if err != nil {
		t.Fatal(err)
	}
	if len(strm.Rows) != 5 {
		t.Fatalf("stream rows: %v", strm.Rows)
	}

	// Tumbling window with TUMBLE_END.
	res, err := conn.Query(`SELECT STREAM TUMBLE_END(rowtime, INTERVAL '1' HOUR) AS wend,
		COUNT(*) AS c FROM s.orders GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("windows: %v", res.Rows)
	}
	if end, _ := types.AsInt(res.Rows[0][0]); end != hour {
		t.Fatalf("first window end: %v", res.Rows[0])
	}

	// Monotonicity validation: non-monotonic streaming GROUP BY rejected.
	if _, err := conn.Query("SELECT STREAM productId, COUNT(*) FROM s.orders GROUP BY productId"); err == nil {
		t.Error("expected monotonicity validation error (§7.2)")
	}
	// Non-stream table with STREAM rejected.
	conn.AddTable("plain", calcite.Columns{{Name: "x", Type: calcite.BigIntType}}, nil)
	if _, err := conn.Query("SELECT STREAM x FROM plain"); err == nil {
		t.Error("expected error for STREAM over non-stream table")
	}
	// Out-of-order events rejected at the source.
	if err := orders.Append([]any{int64(0), int64(1), int64(1)}); err == nil {
		t.Error("expected out-of-order append error")
	}
}

// TestGeoAmsterdam (E12): the §7.3 query.
func TestGeoAmsterdam(t *testing.T) {
	conn := calcite.Open()
	conn.AddTable("country", calcite.Columns{
		{Name: "name", Type: calcite.VarcharType},
		{Name: "boundary", Type: calcite.VarcharType},
	}, [][]any{
		{"Netherlands", "POLYGON ((3.3 50.7, 7.2 50.7, 7.2 53.6, 3.3 53.6, 3.3 50.7))"},
		{"Belgium", "POLYGON ((2.5 49.5, 6.4 49.5, 6.4 51.5, 2.5 51.5, 2.5 49.5))"},
	})
	res, err := conn.Query(`SELECT name FROM (
		SELECT name,
		       ST_GeomFromText('POLYGON ((4.82 52.43, 4.97 52.43, 4.97 52.33, 4.82 52.33, 4.82 52.43))') AS "Amsterdam",
		       ST_GeomFromText(boundary) AS "Country"
		FROM country
	) t WHERE ST_Contains("Country", "Amsterdam")`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "Netherlands" {
		t.Fatalf("rows: %v", res.Rows)
	}
}

// TestBuilderPigExample (E13): §3's expression-builder program.
func TestBuilderPigExample(t *testing.T) {
	conn := calcite.Open()
	conn.AddTable("employee_data", calcite.Columns{
		{Name: "deptno", Type: calcite.BigIntType},
		{Name: "sal", Type: calcite.DoubleType},
	}, [][]any{
		{int64(10), 1000.0}, {int64(10), 2000.0}, {int64(20), 1500.0},
	})
	node, err := conn.Builder().
		Scan("employee_data").
		Aggregate(builder.GroupKey("deptno"),
			builder.Count(false, "c"),
			builder.Sum(false, "s", "sal")).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := conn.ExecutePlan(node)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	for _, row := range res.Rows {
		if d, _ := types.AsInt(row[0]); d == 10 {
			if c, _ := types.AsInt(row[1]); c != 2 {
				t.Errorf("dept 10 count: %v", row)
			}
			if s, _ := types.AsFloat(row[2]); s != 3000 {
				t.Errorf("dept 10 sum: %v", row)
			}
		}
	}
	// Builder error handling.
	if _, err := conn.Builder().Scan("nope").Build(); err == nil {
		t.Error("unknown table should fail at Build")
	}
	if _, err := conn.Builder().Filter(nil).Build(); err == nil {
		t.Error("filter without input should fail")
	}
}
