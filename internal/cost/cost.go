// Package cost defines the optimizer's cost model. Per §6 of the paper, the
// default cost function combines estimations for CPU, IO and memory used by
// an expression; the planner compares alternative plans with it. Cost values
// are supplied by metadata providers and are fully pluggable.
package cost

import (
	"fmt"
	"math"
)

// Cost is the estimated resource usage of executing a relational expression
// (cumulative: the expression and all of its inputs).
type Cost struct {
	Rows float64 // rows processed
	CPU  float64 // CPU work units
	IO   float64 // IO work units (pages / network requests)
	Mem  float64 // peak memory units
}

// Zero is the cost of doing nothing.
var Zero = Cost{}

// Infinite is the cost assigned to unimplementable expressions; any real
// plan beats it.
var Infinite = Cost{
	Rows: math.Inf(1), CPU: math.Inf(1), IO: math.Inf(1), Mem: math.Inf(1),
}

// Tiny is a negligible non-zero cost (e.g. a converter's bookkeeping).
var Tiny = Cost{Rows: 1, CPU: 1, IO: 0, Mem: 0}

// New returns a cost with the given components.
func New(rows, cpu, io, mem float64) Cost {
	return Cost{Rows: rows, CPU: cpu, IO: io, Mem: mem}
}

// Plus returns the component-wise sum.
func (c Cost) Plus(o Cost) Cost {
	return Cost{
		Rows: c.Rows + o.Rows,
		CPU:  c.CPU + o.CPU,
		IO:   c.IO + o.IO,
		Mem:  c.Mem + o.Mem,
	}
}

// Times scales every component.
func (c Cost) Times(f float64) Cost {
	return Cost{Rows: c.Rows * f, CPU: c.CPU * f, IO: c.IO * f, Mem: c.Mem * f}
}

// Scalar collapses the cost to a single comparable number. The weights
// mirror Calcite's VolcanoCost: CPU and rows dominate, IO is weighted as
// more expensive per unit, memory breaks ties.
func (c Cost) Scalar() float64 {
	return c.Rows + c.CPU + 4*c.IO + 0.01*c.Mem
}

// Less reports whether c is strictly cheaper than o.
func (c Cost) Less(o Cost) bool { return c.Scalar() < o.Scalar() }

// IsInfinite reports whether any component is infinite.
func (c Cost) IsInfinite() bool {
	return math.IsInf(c.Rows, 1) || math.IsInf(c.CPU, 1) ||
		math.IsInf(c.IO, 1) || math.IsInf(c.Mem, 1)
}

func (c Cost) String() string {
	if c.IsInfinite() {
		return "{inf}"
	}
	return fmt.Sprintf("{%.4g rows, %.4g cpu, %.4g io, %.4g mem}", c.Rows, c.CPU, c.IO, c.Mem)
}
