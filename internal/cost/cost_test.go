package cost

import (
	"math"
	"strings"
	"testing"
)

func TestCostArithmetic(t *testing.T) {
	a := New(100, 50, 10, 5)
	b := New(1, 2, 3, 4)
	sum := a.Plus(b)
	if sum != (Cost{Rows: 101, CPU: 52, IO: 13, Mem: 9}) {
		t.Fatalf("Plus: %+v", sum)
	}
	scaled := b.Times(3)
	if scaled != (Cost{Rows: 3, CPU: 6, IO: 9, Mem: 12}) {
		t.Fatalf("Times: %+v", scaled)
	}
	if z := Zero.Plus(Zero); z != Zero {
		t.Fatalf("Zero is not additive identity: %+v", z)
	}
}

func TestCostScalarWeights(t *testing.T) {
	// The scalar mirrors VolcanoCost weighting: rows + cpu + 4*io + 0.01*mem.
	c := New(1, 2, 3, 100)
	if got, want := c.Scalar(), 1.0+2.0+12.0+1.0; got != want {
		t.Fatalf("Scalar: %v want %v", got, want)
	}
	// IO is weighted heavier than CPU: same magnitudes, IO-heavy loses.
	cpuHeavy := New(0, 10, 1, 0)
	ioHeavy := New(0, 1, 10, 0)
	if !cpuHeavy.Less(ioHeavy) {
		t.Fatal("IO should be costlier than CPU at equal magnitude")
	}
}

func TestCostComparison(t *testing.T) {
	cheap := New(10, 10, 0, 0)
	pricey := New(1000, 1000, 10, 10)
	if !cheap.Less(pricey) || pricey.Less(cheap) {
		t.Fatal("Less ordering broken")
	}
	if cheap.Less(cheap) {
		t.Fatal("Less must be strict")
	}
	// Any real plan beats Infinite; Infinite never beats anything.
	if !cheap.Less(Infinite) || Infinite.Less(cheap) {
		t.Fatal("Infinite ordering broken")
	}
	if !pricey.Plus(Tiny).Less(Infinite) {
		t.Fatal("finite + tiny must stay below Infinite")
	}
}

func TestCostInfinity(t *testing.T) {
	if Zero.IsInfinite() || Tiny.IsInfinite() {
		t.Fatal("finite costs flagged infinite")
	}
	if !Infinite.IsInfinite() {
		t.Fatal("Infinite not flagged")
	}
	partial := Cost{Rows: 1, CPU: math.Inf(1)}
	if !partial.IsInfinite() {
		t.Fatal("single infinite component not detected")
	}
	if Infinite.String() != "{inf}" {
		t.Fatalf("Infinite.String: %q", Infinite.String())
	}
	if s := New(1, 2, 3, 4).String(); !strings.Contains(s, "rows") || !strings.Contains(s, "cpu") {
		t.Fatalf("String: %q", s)
	}
	// Infinite absorbs addition.
	if !Infinite.Plus(Tiny).IsInfinite() {
		t.Fatal("Infinite + Tiny must stay infinite")
	}
}
