package exec

import (
	"sort"

	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/types"
)

// Window is the enumerable window-aggregate operator (§4's window operator:
// partition, order, frame bounds, and the aggregate functions to execute on
// each window). It materializes its input, partitions, orders each
// partition, and evaluates every aggregate over each row's frame.
type Window struct {
	*rel.Window
}

// NewWindow creates an enumerable window operator.
func NewWindow(input rel.Node, groups []rel.WindowGroup) *Window {
	return &Window{Window: rel.NewWindowTraits("EnumerableWindow", enumerableTraits(), input, groups)}
}

func (w *Window) WithNewInputs(inputs []rel.Node) rel.Node {
	return NewWindow(inputs[0], w.Groups)
}

func (w *Window) Unwrap() rel.Node { return rel.NewWindow(w.Inputs()[0], w.Groups) }

func (w *Window) Bind(ctx *Context) (schema.Cursor, error) {
	in, err := BindNode(ctx, w.Inputs()[0])
	if err != nil {
		return nil, err
	}
	rows, err := drain(in)
	if err != nil {
		return nil, err
	}

	// Output rows start as copies of the input with space for agg results.
	nAggs := 0
	for _, g := range w.Groups {
		nAggs += len(g.Calls)
	}
	out := make([][]any, len(rows))
	for i, row := range rows {
		o := make([]any, len(row), len(row)+nAggs)
		copy(o, row)
		out[i] = o[:len(row)+nAggs]
	}

	aggOffset := len(w.RowType().Fields) - nAggs
	col := aggOffset
	for _, g := range w.Groups {
		if err := w.computeGroup(rows, out, g, col); err != nil {
			return nil, err
		}
		col += len(g.Calls)
	}
	return schema.NewSliceCursor(out), nil
}

func (w *Window) computeGroup(rows, out [][]any, g rel.WindowGroup, col int) error {
	// Partition row indices.
	parts := map[string][]int{}
	var order []string
	for i, row := range rows {
		k := types.HashRowKey(row, g.PartitionKeys)
		if _, ok := parts[k]; !ok {
			order = append(order, k)
		}
		parts[k] = append(parts[k], i)
	}
	for _, k := range order {
		idx := parts[k]
		// Order the partition.
		sort.SliceStable(idx, func(a, b int) bool {
			return CompareRows(rows[idx[a]], rows[idx[b]], g.OrderKeys) < 0
		})
		for pos, ri := range idx {
			lo, hi := frameBounds(rows, idx, pos, g)
			for ci, callDef := range g.Calls {
				acc := rex.NewAccumulator(callDef)
				for p := lo; p <= hi; p++ {
					if err := acc.Add(rows[idx[p]]); err != nil {
						return err
					}
				}
				out[ri][col+ci] = acc.Result()
			}
		}
	}
	return nil
}

// frameBounds computes the [lo, hi] positions (inclusive) of the window
// frame for the row at position pos of the ordered partition idx.
func frameBounds(rows [][]any, idx []int, pos int, g rel.WindowGroup) (int, int) {
	f := g.Frame
	if f.Rows {
		lo := 0
		if f.Preceding >= 0 {
			lo = pos - int(f.Preceding)
			if lo < 0 {
				lo = 0
			}
		}
		hi := pos
		if f.Following > 0 {
			hi = pos + int(f.Following)
			if hi >= len(idx) {
				hi = len(idx) - 1
			}
		} else if f.Following < 0 {
			hi = len(idx) - 1
		}
		return lo, hi
	}
	// RANGE frame over the first order key (the paper's sliding windows:
	// "RANGE INTERVAL '1' HOUR PRECEDING" over rowtime).
	if len(g.OrderKeys) == 0 {
		return 0, len(idx) - 1 // no order: whole partition
	}
	keyCol := g.OrderKeys[0].Field
	cur, curOK := types.AsFloat(rows[idx[pos]][keyCol])
	lo := 0
	if f.Preceding >= 0 && curOK {
		limit := cur - float64(f.Preceding)
		for lo < pos {
			v, ok := types.AsFloat(rows[idx[lo]][keyCol])
			if ok && v >= limit {
				break
			}
			lo++
		}
	}
	// RANGE frames end at the last peer of the current row.
	hi := pos
	for hi+1 < len(idx) && CompareRows(rows[idx[hi+1]], rows[idx[pos]], g.OrderKeys) == 0 {
		hi++
	}
	return lo, hi
}
