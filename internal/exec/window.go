package exec

import (
	"fmt"
	"math"

	"calcite/internal/memory"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// Window is the enumerable window operator (§4's window operator: partition,
// order, frame bounds, and the functions to execute on each window). It runs
// as a pipeline of memory-governed sort stages: rows are tagged with their
// global position, then for each window group sorted by (partition keys,
// order keys, position) — through the external sorter, so oversized inputs
// spill instead of blowing the query budget — and evaluated one partition at
// a time with incremental frame maintenance (retractable accumulators for
// SUM/COUNT/AVG, a monotonic deque for MIN/MAX, O(n·frame) recompute only
// for the rest). A final position sort restores the input row order, so the
// operator's output order is identical across the row, batch and parallel
// engines.
type Window struct {
	*rel.Window
}

// NewWindow creates an enumerable window operator.
func NewWindow(input rel.Node, groups []rel.WindowGroup) *Window {
	return &Window{Window: rel.NewWindowTraits("EnumerableWindow", enumerableTraits(), input, groups)}
}

func (w *Window) WithNewInputs(inputs []rel.Node) rel.Node {
	return NewWindow(inputs[0], w.Groups)
}

func (w *Window) Unwrap() rel.Node { return rel.NewWindow(w.Inputs()[0], w.Groups) }

func (w *Window) Bind(ctx *Context) (schema.Cursor, error) {
	in, err := BindNode(ctx, w.Inputs()[0])
	if err != nil {
		return nil, err
	}
	width := rel.FieldCount(w.Inputs()[0])
	bc, err := w.pipe(ctx, schema.BatchCursorFromCursor(in, width, ctx.batchSize()), tagCounter, false)
	if err != nil {
		return nil, err
	}
	return schema.RowCursorFromBatches(bc), nil
}

// BindBatch is the vectorized path: the input subtree stays columnar and the
// window emits columnar batches.
func (w *Window) BindBatch(ctx *Context) (schema.BatchCursor, error) {
	in, err := BindBatch(ctx, w.Inputs()[0])
	if err != nil {
		return nil, err
	}
	return w.pipe(ctx, in, tagCounter, false)
}

// BindOverPartition runs the window pipeline over one worker's partition
// stream, tagging each row with its global input position (batch Seq,
// physical in-batch index). The output keeps the two hidden position
// columns — the parallel merge-gather above interleaves the workers'
// position-sorted streams on them and strips them itself.
func (w *Window) BindOverPartition(ctx *Context, in schema.BatchCursor) (schema.BatchCursor, error) {
	return w.pipe(ctx, in, tagSeq, true)
}

// tagMode selects how input rows get their two position columns.
type tagMode int

const (
	// tagCounter tags a serial stream with a running row counter.
	tagCounter tagMode = iota
	// tagSeq tags with (batch Seq, physical row index): Seqs are globally
	// unique and ordered by the serial drain order, and a selection vector's
	// entries are the physical indices of the surviving rows, so the pair
	// sorts back to exactly the serial row order even after hash exchanges
	// split batches across workers.
	tagSeq
)

// rowStream is the pull row stream connecting pipeline stages: next returns
// a nil row at the end; close releases resources.
type rowStream struct {
	next  func() ([]any, error)
	close func()
}

// pipe chains the per-group sort+evaluate stages and the final position
// sort. Stages exchange rows directly — no batch round-trips — and every
// sort runs through the memory-governed external sorter, so oversized
// inputs spill instead of blowing the query budget. The final sort restores
// position order; a worker's partitions hold position ranges that interleave
// with other workers', so the parallel path needs it too — the merge-gather
// above can only interleave streams that are each position-sorted. keepPos
// keeps the two hidden position columns in the output.
func (w *Window) pipe(ctx *Context, in schema.BatchCursor, tag tagMode, keepPos bool) (schema.BatchCursor, error) {
	base := rel.FieldCount(w.Inputs()[0])
	outW := len(w.RowType().Fields)
	rows := batchRows(in, tag, outW-base)
	done := 0
	for gi := range w.Groups {
		g := w.Groups[gi]
		inW := base + done + 2
		sorter := NewExternalSorter(ctx, "Window", groupCmp(g, inW), inW)
		sorter.Total = true
		if err := drainInto(sorter, rows); err != nil {
			return nil, err
		}
		next, closeFn, err := sorter.FinishStream()
		if err != nil {
			return nil, err
		}
		rows = evalStream(next, closeFn, g, inW, ctx.WindowRecompute,
			memory.Reserve(ctx.Alloc, "Window"))
		done += len(g.Calls)
	}
	width := outW
	if keepPos {
		width = outW + 2
	}
	if ctx.Alloc == nil && tag == tagCounter {
		// Ungoverned serial stream: the counter positions are dense, so the
		// restore is an O(n) scatter into position slots — no comparison
		// sort. (Governed runs keep the sorter: a scatter would materialize
		// the whole output outside the budget.)
		next, err := scatterByPos(rows, outW+2)
		if err != nil {
			return nil, err
		}
		return &packCursor{next: next, close: func() {}, width: width, batchSize: ctx.batchSize()}, nil
	}
	sorter := NewExternalSorter(ctx, "Window", func(a, b []any) int {
		return comparePos(a, b, outW+2)
	}, outW+2)
	sorter.Total = true
	if err := drainInto(sorter, rows); err != nil {
		return nil, err
	}
	next, closeFn, err := sorter.FinishStream()
	if err != nil {
		return nil, err
	}
	return &packCursor{next: next, close: closeFn, width: width, batchSize: ctx.batchSize()}, nil
}

// scatterByPos drains the stream into a slice indexed by the dense counter
// position and returns an iterator over it.
func scatterByPos(rs rowStream, width int) (func() ([]any, error), error) {
	var out [][]any
	for {
		row, err := rs.next()
		if err != nil {
			rs.close()
			return nil, err
		}
		if row == nil {
			rs.close()
			break
		}
		i, _ := row[width-1].(int64)
		for int64(len(out)) <= i {
			out = append(out, nil)
		}
		out[i] = row
	}
	pos := 0
	return func() ([]any, error) {
		if pos >= len(out) {
			return nil, nil
		}
		row := out[pos]
		pos++
		return row, nil
	}, nil
}

// batchRows adapts a batch cursor to a row stream, tagging each row with its
// position columns. Rows are allocated with spare capacity for the call
// results of every group, so the evaluators can extend them in place.
func batchRows(in schema.BatchCursor, tag tagMode, extraCap int) rowStream {
	var b *schema.Batch
	pos := 0
	counter := int64(0)
	closed := false
	closeIn := func() {
		if !closed {
			closed = true
			in.Close()
		}
	}
	return rowStream{
		next: func() ([]any, error) {
			for {
				if closed {
					return nil, nil
				}
				if b == nil || pos >= b.NumRows() {
					nb, err := in.NextBatch()
					if err == schema.Done {
						closeIn()
						return nil, nil
					}
					if err != nil {
						closeIn()
						return nil, err
					}
					b, pos = nb, 0
					continue
				}
				w := b.Width()
				row := make([]any, w+2, w+2+extraCap)
				r := pos
				if b.Sel != nil {
					r = int(b.Sel[pos])
				}
				cols := b.BoxedCols()
				for c := 0; c < w; c++ {
					row[c] = cols[c][r]
				}
				if tag == tagCounter {
					row[w] = int64(0)
					row[w+1] = counter
					counter++
				} else {
					row[w] = b.Seq
					row[w+1] = int64(r)
				}
				pos++
				return row, nil
			}
		},
		close: closeIn,
	}
}

// drainInto feeds a whole row stream into a sorter, closing the stream.
func drainInto(sorter *ExternalSorter, rs rowStream) error {
	defer rs.close()
	for {
		row, err := rs.next()
		if err != nil {
			sorter.Abandon()
			return err
		}
		if row == nil {
			return nil
		}
		if err := sorter.Add(row); err != nil {
			return err // Add abandons the sorter itself
		}
	}
}

// packCursor re-batches the final row stream, dropping the hidden position
// columns by reslicing when width says so.
type packCursor struct {
	next      func() ([]any, error)
	close     func()
	width     int
	batchSize int
	buf       [][]any
	seq       int64
	done      bool
}

func (c *packCursor) NextBatch() (*schema.Batch, error) {
	if c.done {
		return nil, schema.Done
	}
	c.buf = c.buf[:0]
	for len(c.buf) < c.batchSize {
		row, err := c.next()
		if err != nil {
			c.Close()
			return nil, err
		}
		if row == nil {
			break
		}
		c.buf = append(c.buf, row[:c.width])
	}
	if len(c.buf) == 0 {
		c.Close()
		return nil, schema.Done
	}
	b := schema.BatchFromRows(c.buf, c.width)
	b.Seq = c.seq
	c.seq++
	return b, nil
}

func (c *packCursor) Close() error {
	if !c.done {
		c.done = true
		c.close()
	}
	return nil
}

// groupCmp orders rows for one window group: partition keys, then the
// group's collation, then global position — a total order, so spilled runs
// merge back deterministically.
func groupCmp(g rel.WindowGroup, width int) func(a, b []any) int {
	return func(a, b []any) int {
		for _, k := range g.PartitionKeys {
			if c := types.Compare(a[k], b[k]); c != 0 {
				return c
			}
		}
		if c := CompareRows(a, b, g.OrderKeys); c != 0 {
			return c
		}
		return comparePos(a, b, width)
	}
}

// comparePos orders rows by the two trailing position columns.
func comparePos(a, b []any, width int) int {
	as, _ := a[width-2].(int64)
	bs, _ := b[width-2].(int64)
	if as != bs {
		if as < bs {
			return -1
		}
		return 1
	}
	ai, _ := a[width-1].(int64)
	bi, _ := b[width-1].(int64)
	switch {
	case ai < bi:
		return -1
	case ai > bi:
		return 1
	}
	return 0
}

// evalStream wraps a sorted row stream with the partition evaluator: it
// buffers one partition at a time — charged to the query allocator; a
// partition is the operator's irreducible working set — and emits rows
// extended with the group's call results (inserted before the trailing
// position columns).
func evalStream(upstream func() ([]any, error), upClose func(), g rel.WindowGroup,
	inW int, recompute bool, res *memory.Reservation) rowStream {
	e := &windowEval{
		upstream:  upstream,
		g:         g,
		inW:       inW,
		recompute: recompute,
		res:       res,
	}
	return rowStream{
		next: e.nextRow,
		close: func() {
			res.Free()
			upClose()
		},
	}
}

type windowEval struct {
	upstream  func() ([]any, error)
	g         rel.WindowGroup
	inW       int
	recompute bool
	res       *memory.Reservation

	pending [][]any // evaluated rows of the current partition
	ppos    int
	ahead   []any // lookahead row belonging to the next partition
	inDone  bool
}

func (e *windowEval) nextRow() ([]any, error) {
	for e.ppos >= len(e.pending) {
		ok, err := e.loadPartition()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, nil
		}
	}
	row := e.pending[e.ppos]
	e.ppos++
	return row, nil
}

// loadPartition buffers the next partition's rows and evaluates the group
// over it. Returns false when the input is exhausted.
func (e *windowEval) loadPartition() (bool, error) {
	e.res.Shrink(e.res.Held())
	e.pending, e.ppos = nil, 0
	var part [][]any
	if e.ahead != nil {
		part = append(part, e.ahead)
		e.ahead = nil
	} else {
		if e.inDone {
			return false, nil
		}
		row, err := e.upstream()
		if err != nil {
			return false, err
		}
		if row == nil {
			e.inDone = true
			return false, nil
		}
		part = append(part, row)
	}
	for !e.inDone {
		row, err := e.upstream()
		if err != nil {
			return false, err
		}
		if row == nil {
			e.inDone = true
			break
		}
		if !samePartition(row, part[0], e.g.PartitionKeys) {
			e.ahead = row
			break
		}
		// A single partition cannot be evaluated piecewise (frames may span
		// it entirely), so a failing grant only errors when spilling is
		// forbidden; otherwise the partition is accepted untracked.
		if err := e.res.Grow(types.SizeOfRow(row)); err != nil && !e.res.SpillAllowed() {
			return false, err
		}
		part = append(part, row)
	}
	pending, err := evalPartition(part, e.g, e.inW, e.recompute)
	if err != nil {
		return false, err
	}
	e.pending = pending
	return true, nil
}

func samePartition(a, b []any, keys []int) bool {
	for _, k := range keys {
		if types.Compare(a[k], b[k]) != 0 {
			return false
		}
	}
	return true
}

// --- partition evaluation ---

// evalPartition computes every call of one window group over one ordered
// partition, returning the output rows: input prefix ++ call results ++
// position tail.
func evalPartition(part [][]any, g rel.WindowGroup, inW int, recompute bool) ([][]any, error) {
	needBounds := false
	for _, call := range g.Calls {
		if !call.Func.WindowOnly() {
			needBounds = true
		}
	}
	var lo, hi []int
	if needBounds {
		var err error
		lo, hi, err = frameBoundsAll(part, g)
		if err != nil {
			return nil, err
		}
	}
	results := make([][]any, len(g.Calls))
	for ci, call := range g.Calls {
		vals, err := evalCall(part, g, call, lo, hi, recompute)
		if err != nil {
			return nil, err
		}
		results[ci] = vals
	}
	// Extend each row with the results, inserted before the position tail —
	// in place when the row has spare capacity (batchRows reserves it), else
	// reallocating (rows rehydrated from spill runs arrive at exact size).
	nc := len(g.Calls)
	for i := range part {
		row := part[i]
		if cap(row) >= inW+nc {
			row = row[:inW+nc]
			copy(row[inW-2+nc:], row[inW-2:inW])
		} else {
			grown := make([]any, inW+nc)
			copy(grown, row[:inW-2])
			copy(grown[inW-2+nc:], row[inW-2:inW])
			row = grown
		}
		for ci := range results {
			row[inW-2+ci] = results[ci][i]
		}
		part[i] = row
	}
	return part, nil
}

// evalCall computes one call's value for every row of the partition.
func evalCall(part [][]any, g rel.WindowGroup, call rex.AggCall, lo, hi []int, recompute bool) ([]any, error) {
	n := len(part)
	vals := make([]any, n)
	switch call.Func {
	case rex.AggRowNumber:
		for i := range vals {
			vals[i] = int64(i + 1)
		}
		return vals, nil
	case rex.AggRank, rex.AggDenseRank:
		rank, dense := int64(1), int64(0)
		for i := 0; i < n; i++ {
			if i == 0 || CompareRows(part[i], part[i-1], g.OrderKeys) != 0 {
				rank = int64(i + 1)
				dense++
			}
			if call.Func == rex.AggRank {
				vals[i] = rank
			} else {
				vals[i] = dense
			}
		}
		return vals, nil
	case rex.AggLag, rex.AggLead:
		return evalNavigation(part, call)
	}
	// Frame aggregates: incremental when the call supports it.
	if !recompute {
		if rex.CanRetract(call) {
			return slideRetract(part, call, lo, hi)
		}
		if !call.Distinct && (call.Func == rex.AggMin || call.Func == rex.AggMax) {
			return slideDeque(part, call, lo, hi), nil
		}
	}
	// Per-frame recompute: COLLECT, DISTINCT, SINGLE_VALUE, and the
	// benchmarks' A/B baseline.
	for i := 0; i < n; i++ {
		acc := rex.NewAccumulator(call)
		for p := lo[i]; p <= hi[i]; p++ {
			if err := acc.Add(part[p]); err != nil {
				return nil, err
			}
		}
		vals[i] = acc.Result()
	}
	return vals, nil
}

// evalNavigation computes LAG/LEAD: the value of args[0] at a row offset
// rows away within the partition (default offset 1), or the default value
// (args[2], NULL if absent) when the target falls outside the partition.
func evalNavigation(part [][]any, call rex.AggCall) ([]any, error) {
	n := len(part)
	vals := make([]any, n)
	for i := 0; i < n; i++ {
		off := int64(1)
		if len(call.Args) > 1 {
			v := part[i][call.Args[1]]
			if v == nil {
				vals[i] = nil
				continue
			}
			o, ok := types.AsInt(v)
			if !ok {
				return nil, fmt.Errorf("exec: %s offset must be numeric, got %T", call.Func, v)
			}
			off = o
		}
		var def any
		if len(call.Args) > 2 {
			def = part[i][call.Args[2]]
		}
		j := i - int(off)
		if call.Func == rex.AggLead {
			j = i + int(off)
		}
		if j >= 0 && j < n {
			vals[i] = part[j][call.Args[0]]
		} else {
			vals[i] = def
		}
	}
	return vals, nil
}

// slideRetract evaluates a retractable aggregate over sliding frames in
// O(n): entering rows are added, departing rows retracted. Frame bound
// sequences are nondecreasing (see frameBoundsAll), so both pointers only
// move forward.
func slideRetract(part [][]any, call rex.AggCall, lo, hi []int) ([]any, error) {
	n := len(part)
	vals := make([]any, n)
	acc := rex.NewAccumulator(call).(rex.Retractable)
	curLo, curHi := 0, -1
	for i := 0; i < n; i++ {
		for curHi < hi[i] {
			curHi++
			if err := acc.Add(part[curHi]); err != nil {
				return nil, err
			}
		}
		for curLo < lo[i] {
			if err := acc.Retract(part[curLo]); err != nil {
				return nil, err
			}
			curLo++
		}
		vals[i] = acc.Result()
	}
	return vals, nil
}

// slideDeque evaluates MIN/MAX over sliding frames with a monotonic deque of
// candidate positions: amortized O(1) per row instead of O(frame).
func slideDeque(part [][]any, call rex.AggCall, lo, hi []int) []any {
	n := len(part)
	vals := make([]any, n)
	arg := call.Args[0]
	keep := func(back, v any) bool { // back stays in front of v
		if call.Func == rex.AggMin {
			return types.Compare(back, v) < 0
		}
		return types.Compare(back, v) > 0
	}
	var dq []int
	head := 0
	pushed := -1
	for i := 0; i < n; i++ {
		for pushed < hi[i] {
			pushed++
			row := part[pushed]
			if call.FilterArg >= 0 {
				if pass, _ := row[call.FilterArg].(bool); !pass {
					continue
				}
			}
			v := row[arg]
			if v == nil {
				continue
			}
			for len(dq) > head && !keep(part[dq[len(dq)-1]][arg], v) {
				dq = dq[:len(dq)-1]
			}
			dq = append(dq, pushed)
		}
		for head < len(dq) && dq[head] < lo[i] {
			head++
		}
		if head < len(dq) {
			vals[i] = part[dq[head]][arg]
		}
	}
	return vals
}

// --- frame bounds ---

// frameBoundsAll computes the inclusive [lo[i], hi[i]] frame of every row of
// one ordered partition. RANGE offset bounds are direction-aware — a DESC
// order key measures the offset toward smaller values — and value
// comparisons go through types.AsFloat, so temporal order keys (epoch-millis
// timestamps or time.Time) slide correctly; an order key that is neither
// numeric nor temporal is a clean error rather than a wrong frame. NULL
// order keys frame their peer NULLs. Empty frames are canonicalized to
// lo = hi+1, and both bound sequences are nondecreasing — the invariant the
// incremental evaluators rely on.
func frameBoundsAll(part [][]any, g rel.WindowGroup) (lo, hi []int, err error) {
	n := len(part)
	lo = make([]int, n)
	hi = make([]int, n)
	f := g.Frame
	if f.Rows {
		// Saturate the offsets at the partition size first: an offset past
		// either end behaves as unbounded, and i+offset can no longer
		// overflow int for absurd-but-legal constants like maxint FOLLOWING.
		loOff := clampOffset(f.Lo, n)
		hiOff := clampOffset(f.Hi, n)
		for i := 0; i < n; i++ {
			l := 0
			if !f.LoUnbounded {
				l = clamp(i+loOff, 0, n)
			}
			h := n - 1
			if !f.HiUnbounded {
				h = clamp(i+hiOff, -1, n-1)
			}
			if l > h {
				l = h + 1
			}
			lo[i], hi[i] = l, h
		}
		return lo, hi, nil
	}

	// RANGE without ORDER BY: every row is a peer of every other — the
	// frame is the whole partition.
	if len(g.OrderKeys) == 0 {
		for i := 0; i < n; i++ {
			hi[i] = n - 1
		}
		return lo, hi, nil
	}

	// Peer groups (rows equal under the full collation): the CURRENT ROW
	// bounds of a RANGE frame, and the whole frame of NULL-keyed rows.
	peerStart := make([]int, n)
	peerEnd := make([]int, n)
	start := 0
	for i := 1; i <= n; i++ {
		if i == n || CompareRows(part[i], part[start], g.OrderKeys) != 0 {
			for j := start; j < i; j++ {
				peerStart[j] = start
				peerEnd[j] = i - 1
			}
			start = i
		}
	}
	for i := 0; i < n; i++ {
		switch {
		case f.LoUnbounded:
			lo[i] = 0
		case f.Lo == 0:
			lo[i] = peerStart[i]
		}
		switch {
		case f.HiUnbounded:
			hi[i] = n - 1
		case f.Hi == 0:
			hi[i] = peerEnd[i]
		}
	}
	loOff := !f.LoUnbounded && f.Lo != 0
	hiOff := !f.HiUnbounded && f.Hi != 0
	if loOff || hiOff {
		// Value-based offsets over the (single) order key, folded to a
		// direction-free axis: s = ±value, so "N PRECEDING" is always
		// "s ≥ s_cur − N" regardless of ASC/DESC (bugfix: the ascending-only
		// scan walked the wrong direction under DESC). NULL keys sort to one
		// end (direction-dependent) and become ∓∞ on the axis, which keeps
		// the axis monotone and excludes them from any finite offset bound.
		fc := g.OrderKeys[0]
		sign := 1.0
		nullInf := math.Inf(-1) // ASC: NULLs first
		if fc.Direction == trait.Descending {
			sign = -1.0
			nullInf = math.Inf(1) // DESC: NULLs last
		}
		s := make([]float64, n)
		isNull := make([]bool, n)
		for i, row := range part {
			v := row[fc.Field]
			if v == nil {
				s[i] = nullInf
				isNull[i] = true
				continue
			}
			fv, ok := types.AsFloat(v)
			if !ok {
				return nil, nil, fmt.Errorf("exec: RANGE frame requires a numeric or temporal order key, cannot offset over %T", v)
			}
			s[i] = sign * fv
		}
		loPtr, hiPtr := 0, -1
		for i := 0; i < n; i++ {
			if isNull[i] {
				// NULL is a peer only of NULL: its frame is the NULL run.
				lo[i], hi[i] = peerStart[i], peerEnd[i]
				continue
			}
			if loOff {
				target := s[i] + float64(f.Lo)
				for loPtr < n && s[loPtr] < target {
					loPtr++
				}
				lo[i] = loPtr
			}
			if hiOff {
				limit := s[i] + float64(f.Hi)
				for hiPtr+1 < n && s[hiPtr+1] <= limit {
					hiPtr++
				}
				hi[i] = hiPtr
			}
		}
	}
	for i := 0; i < n; i++ {
		if lo[i] > hi[i] {
			lo[i] = hi[i] + 1
		}
	}
	return lo, hi, nil
}

func clamp(v, min, max int) int {
	if v < min {
		return min
	}
	if v > max {
		return max
	}
	return v
}

// clampOffset saturates a signed row offset at ±n (the partition size).
func clampOffset(v int64, n int) int {
	if v > int64(n) {
		return n
	}
	if v < -int64(n) {
		return -n
	}
	return int(v)
}
