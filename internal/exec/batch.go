package exec

// Batch-mode binding: the vectorized execution path of the enumerable
// convention. Scan, Filter, Project, HashJoin, Aggregate and Sort process
// column-major schema.Batch values — filters narrow selection vectors,
// projections evaluate compiled closures (or typed kernels) per column, and
// the hash join probes a batch at a time. Operators without a batch
// implementation (window, set ops, nested-loop join, adapters' backend
// cursors) keep their row contract and are bridged through the batch/row
// shims in package schema, so any plan executes end-to-end in either mode
// with identical results.

import (
	"sort"
	"time"

	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
)

// BatchBound is a Bound operator that can additionally produce its output as
// column-major batches.
type BatchBound interface {
	Bound
	BindBatch(ctx *Context) (schema.BatchCursor, error)
}

// BindBatch binds a plan node as a batch cursor, lifting row-only nodes
// through the row→batch shim.
func BindBatch(ctx *Context, n rel.Node) (schema.BatchCursor, error) {
	// Span elapsed is inclusive of the subtree (a pull through the wrapper
	// times everything below it), so bind time — where materializing
	// operators like sort and aggregate do their work — is charged the same
	// inclusive way.
	sp := ctx.SpanFor(n)
	start := time.Now()
	if bb, ok := n.(BatchBound); ok {
		bc, err := bb.BindBatch(ctx)
		if err != nil {
			return nil, err
		}
		sp.AddElapsed(time.Since(start))
		return TraceBatch(sp, bc), nil
	}
	cur, err := bindRow(ctx, n)
	if err != nil {
		return nil, err
	}
	bc := schema.BatchCursorFromCursor(cur, rel.FieldCount(n), ctx.batchSize())
	sp.AddElapsed(time.Since(start))
	return TraceBatch(sp, bc), nil
}

// drainBatches materializes every live row of a batch cursor and closes it.
func drainBatches(bc schema.BatchCursor) ([][]any, error) {
	defer bc.Close()
	var rows [][]any
	for {
		b, err := bc.NextBatch()
		if err == schema.Done {
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		rows = b.AppendRows(rows)
	}
}

// batchesFromRows re-batches materialized rows (sort output, aggregates).
func batchesFromRows(rows [][]any, width, batchSize int) schema.BatchCursor {
	if batchSize <= 0 {
		batchSize = schema.DefaultBatchSize
	}
	batches := make([]*schema.Batch, 0, (len(rows)+batchSize-1)/batchSize)
	for start := 0; start < len(rows); start += batchSize {
		end := start + batchSize
		if end > len(rows) {
			end = len(rows)
		}
		b := schema.BatchFromRows(rows[start:end], width)
		b.Seq = int64(len(batches)) // chunk order doubles as the batch order
		batches = append(batches, b)
	}
	return schema.NewSliceBatchCursor(batches)
}

// iotaSel returns the dense selection [0, n), reusing buf.
func iotaSel(buf []int32, n int) []int32 {
	if cap(buf) < n {
		buf = make([]int32, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = int32(i)
	}
	return buf
}

// liveSel returns the batch's live row indices, using buf for dense batches.
func liveSel(b *schema.Batch, buf []int32) ([]int32, []int32) {
	if b.Sel != nil {
		return b.Sel, buf
	}
	buf = iotaSel(buf, b.Len)
	return buf, buf
}

// colPredicate compiles a predicate for column-major evaluation, falling
// back to the tree-walking Evaluator (through a scratch row) when the
// expression needs per-execution state (dynamic parameters, correlations).
func colPredicate(ctx *Context, cond rex.Node, width int) func(cols [][]any, r int) (bool, error) {
	if fn, err := rex.CompileColsBool(cond); err == nil {
		return fn
	}
	scratch := make([]any, width)
	ev := ctx.Evaluator
	return func(cols [][]any, r int) (bool, error) {
		for c := range scratch {
			scratch[c] = cols[c][r]
		}
		return ev.EvalBool(cond, scratch)
	}
}

// --- Scan ---

// BindBatch scans batch-capable tables column-major and lifts everything
// else through the shim.
func (s *Scan) BindBatch(ctx *Context) (schema.BatchCursor, error) {
	if bt, ok := s.Table.(schema.BatchScannableTable); ok {
		return bt.ScanBatches(ctx.batchSize())
	}
	cur, err := s.Bind(ctx)
	if err != nil {
		return nil, err
	}
	return schema.BatchCursorFromCursor(cur, len(s.Table.RowType().Fields), ctx.batchSize()), nil
}

// --- Filter ---

type filterBatchCursor struct {
	in        schema.BatchCursor
	vecKernel rex.VecSelKernel // monomorphic kernel over typed vectors
	kernel    rex.SelKernel    // boxed-column kernel
	pred      func(cols [][]any, r int) (bool, error)
	selBuf    []int32 // output selection storage, reused batch-over-batch
	dense     []int32 // dense-iota scratch
}

// BindBatch filters by narrowing each batch's selection vector: a
// monomorphic vector kernel when the batch carries typed columns of the
// right kinds, a boxed kernel when the predicate has a recognized hot shape,
// otherwise a compiled closure per live row. Columns are never copied.
func (f *Filter) BindBatch(ctx *Context) (schema.BatchCursor, error) {
	in, err := BindBatch(ctx, f.Inputs()[0])
	if err != nil {
		return nil, err
	}
	c := &filterBatchCursor{in: in}
	if vk, ok := rex.FilterKernelVec(f.Condition); ok {
		c.vecKernel = vk
	}
	if k, ok := rex.FilterKernel(f.Condition); ok {
		c.kernel = k
	} else {
		c.pred = colPredicate(ctx, f.Condition, rel.FieldCount(f.Inputs()[0]))
	}
	return c, nil
}

func (c *filterBatchCursor) NextBatch() (*schema.Batch, error) {
	for {
		b, err := c.in.NextBatch()
		if err != nil {
			return nil, err
		}
		var sel []int32
		sel, c.dense = liveSel(b, c.dense)
		out := c.selBuf[:0]
		done := false
		if c.vecKernel != nil && b.Vecs != nil {
			if res, ok := c.vecKernel(b.Vecs, sel, out); ok {
				out, done = res, true
			}
		}
		if !done {
			cols := b.BoxedCols()
			if c.kernel != nil {
				out, err = c.kernel(cols, sel, out)
				if err != nil {
					return nil, err
				}
			} else {
				for _, r := range sel {
					keep, err := c.pred(cols, int(r))
					if err != nil {
						return nil, err
					}
					if keep {
						out = append(out, r)
					}
				}
			}
		}
		c.selBuf = out
		if len(out) == 0 {
			continue
		}
		return &schema.Batch{Len: b.Len, Cols: b.Cols, Vecs: b.Vecs, Sel: out, Seq: b.Seq}, nil
	}
}

func (c *filterBatchCursor) Close() error { return c.in.Close() }

// --- Project ---

type projExpr struct {
	passthrough int // input ordinal for plain $i, else -1
	vecKernel   rex.VecColKernel
	kernel      rex.ColKernel
	colFn       rex.ColFn
}

type projectBatchCursor struct {
	in    schema.BatchCursor
	exprs []projExpr
	// allVec reports every expression has a vector kernel (or is a
	// pass-through), enabling the typed all-columns output path.
	allVec bool
	// pure reports every expression is a plain input reference: the
	// projection only prunes/permutes columns and forwards the input batch's
	// representations and selection vector zero-copy.
	pure bool
	// evalAll, when set, handles expressions needing the Evaluator: a scratch
	// row is assembled once per live row and every expression interprets it.
	evalAll []rex.Node
	ev      *rex.Evaluator
	inWidth int
	dense   []int32
}

// BindBatch projects each batch column-wise: when the input carries typed
// vectors and every expression compiles to a monomorphic kernel, the output
// batch is vector-backed (pass-throughs are zero-copy on dense batches);
// otherwise recognized arithmetic shapes run as boxed kernels and everything
// else evaluates a compiled closure per live row.
func (p *Project) BindBatch(ctx *Context) (schema.BatchCursor, error) {
	in, err := BindBatch(ctx, p.Inputs()[0])
	if err != nil {
		return nil, err
	}
	c := &projectBatchCursor{in: in, inWidth: rel.FieldCount(p.Inputs()[0])}
	exprs := make([]projExpr, len(p.Exprs))
	c.allVec = true
	for i, e := range p.Exprs {
		pe := projExpr{passthrough: -1}
		if ref, ok := e.(*rex.InputRef); ok {
			pe.passthrough = ref.Index
		}
		if vk, ok := rex.ArithKernelVec(e); ok {
			pe.vecKernel = vk
		} else if pe.passthrough < 0 {
			c.allVec = false
		}
		if k, ok := rex.ArithKernel(e); ok {
			pe.kernel = k
		} else if fn, err := rex.CompileCols(e); err == nil {
			pe.colFn = fn
		} else {
			// Dynamic state somewhere in the projection: run the whole batch
			// through the interpreter on assembled rows.
			c.evalAll = p.Exprs
			c.ev = ctx.Evaluator
			c.allVec = false
			break
		}
		exprs[i] = pe
	}
	c.exprs = exprs
	if c.evalAll == nil {
		c.pure = true
		for _, pe := range exprs {
			if pe.passthrough < 0 {
				c.pure = false
				break
			}
		}
	}
	return c, nil
}

func (c *projectBatchCursor) NextBatch() (*schema.Batch, error) {
	b, err := c.in.NextBatch()
	if err != nil {
		return nil, err
	}
	if c.evalAll != nil {
		return c.projectInterpreted(b)
	}
	if c.pure {
		// Column pruning/permutation only: forward whichever representations
		// the input carries, selection vector included — no gather, no copy.
		out := &schema.Batch{Len: b.Len, Sel: b.Sel, Seq: b.Seq}
		if b.Vecs != nil {
			out.Vecs = make([]*schema.Vector, len(c.exprs))
			for j, pe := range c.exprs {
				out.Vecs[j] = b.Vecs[pe.passthrough]
			}
		}
		if b.Cols != nil {
			out.Cols = make([][]any, len(c.exprs))
			for j, pe := range c.exprs {
				out.Cols[j] = b.Cols[pe.passthrough]
			}
		}
		return out, nil
	}
	var sel []int32
	sel, c.dense = liveSel(b, c.dense)
	n := len(sel)
	if c.allVec && b.Vecs != nil {
		if out, ok, err := c.projectVec(b, sel, n); err != nil {
			return nil, err
		} else if ok {
			return out, nil
		}
	}
	cols := make([][]any, len(c.exprs))
	boxed := b.BoxedCols()
	for j, pe := range c.exprs {
		if pe.passthrough >= 0 && b.Sel == nil {
			cols[j] = boxed[pe.passthrough]
			continue
		}
		col := make([]any, n)
		switch {
		case pe.kernel != nil:
			if err := pe.kernel(boxed, sel, col); err != nil {
				return nil, err
			}
		default:
			for k, r := range sel {
				v, err := pe.colFn(boxed, int(r))
				if err != nil {
					return nil, err
				}
				col[k] = v
			}
		}
		cols[j] = col
	}
	return &schema.Batch{Len: n, Cols: cols, Seq: b.Seq}, nil
}

// projectVec evaluates every projection as a typed vector over the batch.
// ok=false (some kernel met a VecAny column) sends the whole batch down the
// boxed path so the output batch is uniformly represented.
func (c *projectBatchCursor) projectVec(b *schema.Batch, sel []int32, n int) (*schema.Batch, bool, error) {
	vecs := make([]*schema.Vector, len(c.exprs))
	var cols [][]any // boxed pass-through windows, when free
	for j, pe := range c.exprs {
		if pe.passthrough >= 0 && b.Sel == nil {
			// Dense pass-through: reuse the input vector zero-copy, along
			// with its boxed window when the input batch carries one.
			vecs[j] = b.Vecs[pe.passthrough]
			if b.Cols != nil {
				if cols == nil {
					cols = make([][]any, len(c.exprs))
				}
				cols[j] = b.Cols[pe.passthrough]
			}
			continue
		}
		v, ok, err := pe.vecKernel(b.Vecs, sel)
		if err != nil {
			return nil, false, err
		}
		if !ok {
			return nil, false, nil
		}
		vecs[j] = v
		cols = nil // a computed column breaks the all-boxed invariant
	}
	// Attach the boxed representation only when every column has a window
	// (pure pass-through projection over a dense, dual-representation batch).
	if cols != nil {
		for _, col := range cols {
			if col == nil {
				cols = nil
				break
			}
		}
	}
	return &schema.Batch{Len: n, Cols: cols, Vecs: vecs, Seq: b.Seq}, true, nil
}

func (c *projectBatchCursor) projectInterpreted(b *schema.Batch) (*schema.Batch, error) {
	var sel []int32
	sel, c.dense = liveSel(b, c.dense)
	n := len(sel)
	cols := make([][]any, len(c.evalAll))
	for j := range cols {
		cols[j] = make([]any, n)
	}
	boxed := b.BoxedCols()
	scratch := make([]any, c.inWidth)
	for k, ri := range sel {
		r := int(ri)
		for cc := range scratch {
			scratch[cc] = boxed[cc][r]
		}
		for j, e := range c.evalAll {
			v, err := c.ev.Eval(e, scratch)
			if err != nil {
				return nil, err
			}
			cols[j][k] = v
		}
	}
	return &schema.Batch{Len: n, Cols: cols, Seq: b.Seq}, nil
}

func (c *projectBatchCursor) Close() error { return c.in.Close() }

// --- Sort / Limit ---

type limitBatchCursor struct {
	in       schema.BatchCursor
	offset   int64
	fetch    int64 // -1 = unlimited
	skipped  int64
	returned int64
	dense    []int32
}

func (c *limitBatchCursor) NextBatch() (*schema.Batch, error) {
	for {
		if c.fetch >= 0 && c.returned >= c.fetch {
			return nil, schema.Done
		}
		b, err := c.in.NextBatch()
		if err != nil {
			return nil, err
		}
		var sel []int32
		sel, c.dense = liveSel(b, c.dense)
		// Skip the remaining OFFSET rows.
		if c.skipped < c.offset {
			skip := c.offset - c.skipped
			if skip >= int64(len(sel)) {
				c.skipped += int64(len(sel))
				continue
			}
			c.skipped = c.offset
			sel = sel[skip:]
		}
		// Cap at FETCH.
		if c.fetch >= 0 {
			if remain := c.fetch - c.returned; int64(len(sel)) > remain {
				sel = sel[:remain]
			}
		}
		c.returned += int64(len(sel))
		out := append([]int32(nil), sel...)
		return &schema.Batch{Len: b.Len, Cols: b.Cols, Vecs: b.Vecs, Sel: out, Seq: b.Seq}, nil
	}
}

func (c *limitBatchCursor) Close() error { return c.in.Close() }

// BindBatch sorts by materializing the batched input; a pure limit streams
// batches, trimming selection vectors. Under a memory allocator the
// materialization runs as an external merge sort: the input accumulates
// within the query's grant and overflows to sorted on-disk runs that are
// k-way-merged back, reproducing the stable in-memory order exactly.
func (s *Sort) BindBatch(ctx *Context) (schema.BatchCursor, error) {
	in, err := BindBatch(ctx, s.Inputs()[0])
	if err != nil {
		return nil, err
	}
	if len(s.Collation) == 0 {
		return &limitBatchCursor{in: in, offset: s.Offset, fetch: s.Fetch}, nil
	}
	if ctx.Alloc != nil {
		sorter := NewExternalSorter(ctx, "Sort",
			func(a, b []any) int { return CompareRows(a, b, s.Collation) },
			rel.FieldCount(s))
		defer in.Close()
		for {
			b, err := in.NextBatch()
			if err == schema.Done {
				break
			}
			if err != nil {
				sorter.Abandon()
				return nil, err
			}
			n := b.NumRows()
			for i := 0; i < n; i++ {
				if err := sorter.Add(b.Row(i)); err != nil {
					return nil, err
				}
			}
		}
		return sorter.Finish(s.Offset, s.Fetch, ctx.batchSize())
	}
	rows, err := drainBatches(in)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return CompareRows(rows[i], rows[j], s.Collation) < 0
	})
	if s.Offset > 0 {
		if s.Offset >= int64(len(rows)) {
			rows = nil
		} else {
			rows = rows[s.Offset:]
		}
	}
	if s.Fetch >= 0 && s.Fetch < int64(len(rows)) {
		rows = rows[:s.Fetch]
	}
	return batchesFromRows(rows, rel.FieldCount(s), ctx.batchSize()), nil
}

// --- Aggregate ---

// BindBatch aggregates the batched input through the groupedAgg engine
// (groupkey.go): typed single-column grouping and pre-unboxed accumulator
// adds when batches carry vectors, the boxed scratch-row path otherwise.
// Under a memory allocator the aggregation is spillable (see aggspill.go):
// partial accumulator states flush to hash partitions on disk and re-merge
// through rex.MergeAccumulators.
func (a *Aggregate) BindBatch(ctx *Context) (schema.BatchCursor, error) {
	in, err := BindBatch(ctx, a.Inputs()[0])
	if err != nil {
		return nil, err
	}
	if ctx.Alloc != nil {
		return bindSpillableAggregate(ctx, a, in)
	}
	defer in.Close()
	agg := newGroupedAgg(a.GroupKeys, a.Calls, rel.FieldCount(a.Inputs()[0]))
	var dense []int32
	for {
		b, err := in.NextBatch()
		if err == schema.Done {
			break
		}
		if err != nil {
			return nil, err
		}
		var sel []int32
		sel, dense = liveSel(b, dense)
		if err := agg.addBatch(b, sel); err != nil {
			return nil, err
		}
	}
	return batchesFromRows(agg.finish(), rel.FieldCount(a), ctx.batchSize()), nil
}

// --- HashJoin ---

func colsHaveNullAt(cols [][]any, r int, keys []int) bool {
	for _, c := range keys {
		if cols[c][r] == nil {
			return true
		}
	}
	return false
}

// HashJoin.BindBatch lives in joinspill.go: the streaming probe plus the
// Grace/hybrid spill path of the memory governor.
