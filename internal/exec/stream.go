package exec

// Vectorized streaming aggregation (§7.2): the physical operator behind
// SELECT STREAM … GROUP BY TUMBLE/HOP/SESSION. Input batches arrive tagged
// with a rowtime column; the operator maintains per-(window, key)
// incremental state on rex.Accumulator, advances a watermark bounded by the
// window's lateness policy, and emits a window's rows exactly once — when
// the watermark passes the window's end (or at end-of-stream).
//
// TUMBLE and HOP share a pane-based design: each row is added to exactly
// one pane (pane length = the hop slide, = the window size for TUMBLE), and
// an emitted HOP window merges its k covering panes into fresh accumulators
// while the panes stay live for the later windows they still cover. A pane
// is retracted — its state dropped and its memory returned — once its last
// covering window has been emitted, so a row is held once, not k times.
// SESSION keeps per-key interval state and coalesces sessions whenever a
// row (or a spilled fragment) bridges two intervals.
//
// Standing state is charged to the memory governor: when a grant fails and
// spilling is allowed, every live pane/session is dehydrated
// (rex.DehydrateAccumulator) into a spill run and the tables restart empty;
// spilled state is folded back (rex.MergeAccumulators) during the final
// drain, trading emission latency for bounded memory.

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"calcite/internal/memory"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/types"
)

// ---- stream telemetry (sampled by the obs registry via core) ----

var (
	streamRowsIn         atomic.Int64
	streamWindowsEmitted atomic.Int64
	streamLateDropped    atomic.Int64
	streamWatermarkLag   atomic.Int64
	streamStateBytes     atomic.Int64
	streamEmitObserver   atomic.Value // func(seconds float64)
)

// StreamRowsIn returns the number of stream rows ingested by all streaming
// aggregations since process start.
func StreamRowsIn() int64 { return streamRowsIn.Load() }

// StreamWindowsEmitted returns the number of finished windows emitted.
func StreamWindowsEmitted() int64 { return streamWindowsEmitted.Load() }

// StreamLateDropped returns the number of rows dropped because every window
// containing them had already been emitted.
func StreamLateDropped() int64 { return streamLateDropped.Load() }

// StreamWatermarkLagMs returns how far (ms) the watermark trails the
// freshest observed rowtime — the bounded out-of-orderness currently applied
// by the most recently active streaming aggregation.
func StreamWatermarkLagMs() int64 { return streamWatermarkLag.Load() }

// StreamStateBytes returns the bytes of standing window state currently
// held by live streaming aggregations.
func StreamStateBytes() int64 { return streamStateBytes.Load() }

// SetStreamEmitObserver installs the emission-latency observer (seconds per
// emission round); used by the obs layer's histogram.
func SetStreamEmitObserver(fn func(seconds float64)) { streamEmitObserver.Store(fn) }

func observeStreamEmit(d time.Duration) {
	if fn, ok := streamEmitObserver.Load().(func(float64)); ok && fn != nil {
		fn(d.Seconds())
	}
}

// ---- physical operator ----

// StreamAgg is the enumerable streaming aggregation.
type StreamAgg struct {
	*rel.StreamAggregate
}

// NewStreamAgg creates the physical streaming aggregation.
func NewStreamAgg(input rel.Node, win rel.StreamWindow, latenessMs int64, groupKeys []int, calls []rex.AggCall) *StreamAgg {
	return &StreamAgg{rel.NewStreamAggregateTraits("EnumerableStreamAggregate", enumerableTraits(), input, win, latenessMs, groupKeys, calls)}
}

func (a *StreamAgg) WithNewInputs(inputs []rel.Node) rel.Node {
	return NewStreamAgg(inputs[0], a.Window, a.LatenessMs, a.GroupKeys, a.Calls)
}

func (a *StreamAgg) Unwrap() rel.Node {
	return rel.NewStreamAggregate(a.Inputs()[0], a.Window, a.LatenessMs, a.GroupKeys, a.Calls)
}

func (a *StreamAgg) Bind(ctx *Context) (schema.Cursor, error) {
	bc, err := a.BindBatch(ctx)
	if err != nil {
		return nil, err
	}
	return schema.RowCursorFromBatches(bc), nil
}

func (a *StreamAgg) BindBatch(ctx *Context) (schema.BatchCursor, error) {
	in, err := BindBatch(ctx, a.Inputs()[0])
	if err != nil {
		return nil, err
	}
	return BindStreamAggOver(ctx, a.StreamAggregate, in)
}

// BindStreamAggOver runs the streaming aggregation over an already-bound
// input; the parallel rewrite uses it to wrap each hash partition.
func BindStreamAggOver(ctx *Context, sa *rel.StreamAggregate, in schema.BatchCursor) (schema.BatchCursor, error) {
	return &streamAggCursor{
		st:        newStreamState(ctx, sa),
		in:        in,
		width:     rel.FieldCount(sa.Inputs()[0]),
		batch:     ctx.batchSize(),
		interrupt: ctx.Interrupt,
	}, nil
}

// rowtimeMillis coerces a rowtime value to epoch milliseconds.
func rowtimeMillis(v any) (int64, bool) {
	if t, ok := v.(time.Time); ok {
		return t.UnixMilli(), true
	}
	return types.AsInt(v)
}

// floorTo rounds ts down to a multiple of step (toward -inf).
func floorTo(ts, step int64) int64 {
	m := ts % step
	if m < 0 {
		m += step
	}
	return ts - m
}

// ---- standing state ----

type streamGroup struct {
	key  []any
	accs []rex.Accumulator
}

type sessionGroup struct {
	key         []any
	start, last int64
	accs        []rex.Accumulator
	charge      int64
}

// sessionOverhead approximates the interval bookkeeping of one session on
// top of the shared per-group charge.
const sessionOverhead = 32

type streamState struct {
	sa       *rel.StreamAggregate
	res      *memory.Reservation
	alloc    *memory.Allocator
	paneMs   int64
	nKeys    int
	outWidth int

	// TUMBLE/HOP: pane start -> group key -> incremental state.
	panes      map[int64]map[string]*streamGroup
	paneCharge map[int64]int64
	// SESSION: group key -> open sessions.
	sessions map[string][]*sessionGroup

	hasTs       bool
	maxTs       int64
	emittedUpTo int64 // windows ending at or before this are closed
	spilled     bool
	runs        []*memory.Run
}

func newStreamState(ctx *Context, sa *rel.StreamAggregate) *streamState {
	paneMs := sa.Window.SizeMs
	if sa.Window.Kind == rel.HopWindow {
		paneMs = sa.Window.SlideMs
	}
	return &streamState{
		sa:          sa,
		res:         memory.Reserve(ctx.Alloc, "StreamAggregate"),
		alloc:       ctx.Alloc,
		paneMs:      paneMs,
		nKeys:       len(sa.GroupKeys),
		outWidth:    2 + len(sa.GroupKeys) + len(sa.Calls),
		panes:       map[int64]map[string]*streamGroup{},
		paneCharge:  map[int64]int64{},
		sessions:    map[string][]*sessionGroup{},
		emittedUpTo: math.MinInt64,
	}
}

func (s *streamState) watermark() int64 { return s.maxTs - s.sa.LatenessMs }

// isLate reports whether every window containing a row at ts has already
// been emitted.
func (s *streamState) isLate(ts int64) bool {
	if s.sa.Window.Kind == rel.SessionWindow {
		return ts+s.sa.Window.GapMs <= s.emittedUpTo
	}
	// The last window containing ts starts at its pane, ending pane+size.
	return floorTo(ts, s.paneMs)+s.sa.Window.SizeMs <= s.emittedUpTo
}

// add folds one input row into its window state.
func (s *streamState) add(row []any) error {
	tv := row[s.sa.Window.RowtimeCol]
	ts, ok := rowtimeMillis(tv)
	if !ok {
		return fmt.Errorf("exec: stream rowtime column %d holds %T, want a timestamp", s.sa.Window.RowtimeCol, tv)
	}
	streamRowsIn.Add(1)
	if !s.hasTs || ts > s.maxTs {
		s.maxTs, s.hasTs = ts, true
	}
	if s.isLate(ts) {
		streamLateDropped.Add(1)
		return nil
	}
	if s.sa.Window.Kind == rel.SessionWindow {
		return s.addSession(ts, row)
	}
	return s.addPane(ts, row)
}

// growOrFlush charges n bytes, dehydrating all standing state to disk when
// the governor refuses and spilling is allowed (post-flush charges are best
// effort — flushing already freed the memory). Reports whether a flush
// happened, so callers re-create whatever group pointer they held.
func (s *streamState) growOrFlush(n int64) (flushed bool, err error) {
	if err := s.res.Grow(n); err != nil {
		if !s.res.SpillAllowed() {
			return false, err
		}
		if err := s.flushAll(); err != nil {
			return false, err
		}
		_ = s.res.Grow(n) // post-flush best effort
		return true, nil
	}
	return false, nil
}

func (s *streamState) newPaneGroup(p int64, k string, row []any) *streamGroup {
	keyed := s.panes[p]
	if keyed == nil {
		keyed = map[string]*streamGroup{}
		s.panes[p] = keyed
	}
	key := make([]any, s.nKeys)
	for i, gk := range s.sa.GroupKeys {
		key[i] = row[gk]
	}
	accs := make([]rex.Accumulator, len(s.sa.Calls))
	for i, c := range s.sa.Calls {
		accs[i] = rex.NewAccumulator(c)
	}
	g := &streamGroup{key: key, accs: accs}
	keyed[k] = g
	return g
}

func (s *streamState) addPane(ts int64, row []any) error {
	p := floorTo(ts, s.paneMs)
	k := types.HashRowKey(row, s.sa.GroupKeys)
	g := s.panes[p][k]
	if g == nil {
		charge := AggGroupCharge(s.sa.GroupKeys, s.sa.Calls, row, len(k))
		if _, err := s.growOrFlush(charge); err != nil {
			return err
		}
		g = s.newPaneGroup(p, k, row)
		s.paneCharge[p] += charge
	}
	if retained := AggRetainedBytes(s.sa.Calls, row); retained > 0 {
		flushed, err := s.growOrFlush(retained)
		if err != nil {
			return err
		}
		if flushed {
			g = s.newPaneGroup(p, k, row)
		}
		s.paneCharge[p] += retained
	}
	for _, acc := range g.accs {
		if err := acc.Add(row); err != nil {
			return err
		}
	}
	return nil
}

// findSession returns the open session of key k whose interval is within
// the gap of ts.
func (s *streamState) findSession(k string, ts, gap int64) *sessionGroup {
	for _, g := range s.sessions[k] {
		if ts > g.start-gap && ts < g.last+gap {
			return g
		}
	}
	return nil
}

func (s *streamState) newSession(k string, ts int64, row []any, charge int64) *sessionGroup {
	key := make([]any, s.nKeys)
	for i, gk := range s.sa.GroupKeys {
		key[i] = row[gk]
	}
	accs := make([]rex.Accumulator, len(s.sa.Calls))
	for i, c := range s.sa.Calls {
		accs[i] = rex.NewAccumulator(c)
	}
	g := &sessionGroup{key: key, start: ts, last: ts, accs: accs, charge: charge}
	s.sessions[k] = append(s.sessions[k], g)
	return g
}

func (s *streamState) addSession(ts int64, row []any) error {
	k := types.HashRowKey(row, s.sa.GroupKeys)
	gap := s.sa.Window.GapMs
	g := s.findSession(k, ts, gap)
	if g == nil {
		charge := AggGroupCharge(s.sa.GroupKeys, s.sa.Calls, row, len(k)) + sessionOverhead
		if _, err := s.growOrFlush(charge); err != nil {
			return err
		}
		g = s.newSession(k, ts, row, charge)
	}
	if retained := AggRetainedBytes(s.sa.Calls, row); retained > 0 {
		flushed, err := s.growOrFlush(retained)
		if err != nil {
			return err
		}
		if flushed {
			g = s.newSession(k, ts, row, 0)
		}
		g.charge += retained
	}
	if ts < g.start {
		g.start = ts
	}
	if ts > g.last {
		g.last = ts
	}
	for _, acc := range g.accs {
		if err := acc.Add(row); err != nil {
			return err
		}
	}
	return s.coalesceSessions(k, g, gap)
}

// coalesceSessions folds sessions the freshly-extended interval now bridges
// into target.
func (s *streamState) coalesceSessions(k string, target *sessionGroup, gap int64) error {
	list := s.sessions[k]
	keep := list[:0]
	for _, g := range list {
		if g == target || g.start >= target.last+gap || target.start >= g.last+gap {
			keep = append(keep, g)
			continue
		}
		for i := range target.accs {
			if err := rex.MergeAccumulators(target.accs[i], g.accs[i]); err != nil {
				return err
			}
		}
		if g.start < target.start {
			target.start = g.start
		}
		if g.last > target.last {
			target.last = g.last
		}
		target.charge += g.charge
	}
	s.sessions[k] = keep
	return nil
}

// spillWidth is the flattened row width of dehydrated state.
func (s *streamState) spillWidth() int {
	if s.sa.Window.Kind == rel.SessionWindow {
		return 2 + s.nKeys + len(s.sa.Calls) // [start, last, key…, state…]
	}
	return 1 + s.nKeys + len(s.sa.Calls) // [pane, key…, state…]
}

// flushAll dehydrates every pane/session into one spill run and restarts
// the standing state empty; spilled runs fold back during the final drain.
func (s *streamState) flushAll() error {
	w, err := s.alloc.NewRun("StreamAggregate")
	if err != nil {
		return err
	}
	s.res.NoteSpillEvent()
	width := s.spillWidth()
	var buf [][]any
	write := func() error {
		if len(buf) == 0 {
			return nil
		}
		if err := w.WriteRows(buf, width); err != nil {
			return err
		}
		buf = buf[:0]
		return nil
	}
	stage := func(row []any) error {
		buf = append(buf, row)
		if len(buf) >= spillWriteChunk {
			return write()
		}
		return nil
	}
	dehydrate := func(prefix []any, key []any, accs []rex.Accumulator) error {
		row := make([]any, 0, width)
		row = append(row, prefix...)
		row = append(row, key...)
		for _, acc := range accs {
			st, err := rex.DehydrateAccumulator(acc)
			if err != nil {
				return err
			}
			row = append(row, st)
		}
		return stage(row)
	}
	fail := func(err error) error {
		w.Abandon()
		return err
	}
	if s.sa.Window.Kind == rel.SessionWindow {
		for _, list := range s.sessions {
			for _, g := range list {
				if err := dehydrate([]any{g.start, g.last}, g.key, g.accs); err != nil {
					return fail(err)
				}
			}
		}
		s.sessions = map[string][]*sessionGroup{}
	} else {
		for p, keyed := range s.panes {
			for _, g := range keyed {
				if err := dehydrate([]any{p}, g.key, g.accs); err != nil {
					return fail(err)
				}
			}
		}
		s.panes = map[int64]map[string]*streamGroup{}
		s.paneCharge = map[int64]int64{}
	}
	if err := write(); err != nil {
		return fail(err)
	}
	run, err := w.Finish()
	if err != nil {
		return err
	}
	s.runs = append(s.runs, run)
	s.spilled = true
	s.res.Shrink(s.res.Held())
	return nil
}

// rehydrate folds every spilled run back into the in-memory state (final
// drain only). Charges are best effort: the merged result set already fit
// on disk, and erroring here would lose the query after it honored its
// budget all along.
func (s *streamState) rehydrate() error {
	runs := s.runs
	s.runs = nil
	fail := func(err error) error {
		for _, r := range runs {
			r.Remove()
		}
		return err
	}
	for len(runs) > 0 {
		run := runs[0]
		runs = runs[1:]
		rr, err := run.Open()
		if err != nil {
			run.Remove()
			return fail(err)
		}
		for {
			b, err := rr.NextBatch()
			if err == schema.Done {
				break
			}
			if err != nil {
				rr.Close()
				run.Remove()
				return fail(err)
			}
			n := b.NumRows()
			for i := 0; i < n; i++ {
				if err := s.foldSpilled(b.Row(i)); err != nil {
					rr.Close()
					run.Remove()
					return fail(err)
				}
			}
		}
		rr.Close()
		run.Remove()
	}
	return nil
}

// foldSpilled merges one dehydrated state row back into the live tables.
func (s *streamState) foldSpilled(row []any) error {
	if s.sa.Window.Kind == rel.SessionWindow {
		start, _ := types.AsInt(row[0])
		last, _ := types.AsInt(row[1])
		key := append([]any(nil), row[2:2+s.nKeys]...)
		accs := make([]rex.Accumulator, len(s.sa.Calls))
		for i, c := range s.sa.Calls {
			acc, err := rex.HydrateAccumulator(c, row[2+s.nKeys+i])
			if err != nil {
				return err
			}
			accs[i] = acc
		}
		keyOrds := make([]int, s.nKeys)
		for i := range keyOrds {
			keyOrds[i] = i
		}
		k := types.HashRowKey(key, keyOrds)
		g := &sessionGroup{key: key, start: start, last: last, accs: accs}
		_ = s.res.Grow(sessionOverhead + types.SizeOfRow(row))
		s.sessions[k] = append(s.sessions[k], g)
		// Fragments of one logical session are always within a gap of each
		// other (the bridging event lives in one of them) — coalescing
		// restores the full session.
		return s.coalesceSessions(k, g, s.sa.Window.GapMs)
	}
	p, _ := types.AsInt(row[0])
	keyOrds := make([]int, s.nKeys)
	for i := range keyOrds {
		keyOrds[i] = i + 1
	}
	k := types.HashRowKey(row, keyOrds)
	g := s.panes[p][k]
	if g == nil {
		key := append([]any(nil), row[1:1+s.nKeys]...)
		accs := make([]rex.Accumulator, len(s.sa.Calls))
		for i, c := range s.sa.Calls {
			acc, err := rex.HydrateAccumulator(c, row[1+s.nKeys+i])
			if err != nil {
				return err
			}
			accs[i] = acc
		}
		keyed := s.panes[p]
		if keyed == nil {
			keyed = map[string]*streamGroup{}
			s.panes[p] = keyed
		}
		keyed[k] = &streamGroup{key: key, accs: accs}
		charge := aggGroupOverhead + int64(len(k)) + types.SizeOfRow(row)
		_ = s.res.Grow(charge)
		s.paneCharge[p] += charge
		return nil
	}
	for i, c := range s.sa.Calls {
		src, err := rex.HydrateAccumulator(c, row[1+s.nKeys+i])
		if err != nil {
			return err
		}
		if err := rex.MergeAccumulators(g.accs[i], src); err != nil {
			return err
		}
	}
	return nil
}

// emitReady returns the rows of every window the watermark has closed (all
// remaining windows when final), in deterministic (window_start, key,
// window_end) order. Once state has spilled, emission defers to the final
// drain where disk and memory state merge — correctness over latency under
// memory pressure.
func (s *streamState) emitReady(final bool) ([][]any, error) {
	if s.spilled && !final {
		return nil, nil
	}
	wm := int64(math.MaxInt64)
	if !final {
		if !s.hasTs {
			return nil, nil
		}
		wm = s.watermark()
	}
	if s.spilled && final {
		if err := s.rehydrate(); err != nil {
			return nil, err
		}
	}
	var rows [][]any
	var err error
	if s.sa.Window.Kind == rel.SessionWindow {
		rows = s.emitSessions(wm)
	} else {
		rows, err = s.emitWindows(wm)
		if err != nil {
			return nil, err
		}
	}
	if len(rows) > 0 {
		sortEmitted(rows, s.nKeys)
		streamWindowsEmitted.Add(int64(len(rows)))
	}
	if wm > s.emittedUpTo {
		s.emittedUpTo = wm
	}
	return rows, nil
}

// emitWindows closes TUMBLE/HOP windows ending at or before wm.
func (s *streamState) emitWindows(wm int64) ([][]any, error) {
	size, slide := s.sa.Window.SizeMs, s.paneMs
	// Candidate window starts come from the live panes: a window with no
	// pane in range has no rows and is never emitted (matching the batch
	// oracle).
	seen := map[int64]bool{}
	var starts []int64
	for p := range s.panes {
		for w := p - size + slide; w <= p; w += slide {
			if w+size <= wm && w+size > s.emittedUpTo && !seen[w] {
				seen[w] = true
				starts = append(starts, w)
			}
		}
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	var rows [][]any
	emitGroup := func(w int64, key []any, accs []rex.Accumulator) {
		row := make([]any, 0, s.outWidth)
		row = append(row, w, w+size)
		row = append(row, key...)
		for _, acc := range accs {
			row = append(row, acc.Result())
		}
		rows = append(rows, row)
	}
	for _, w := range starts {
		if slide == size {
			// TUMBLE: the single covering pane retires with its window —
			// read results straight off the live accumulators.
			for _, g := range s.panes[w] {
				emitGroup(w, g.key, g.accs)
			}
			continue
		}
		// HOP: merge the covering panes [w, w+size) into fresh accumulators;
		// the panes keep their state for the later windows they still cover.
		merged := map[string]*streamGroup{}
		var order []string
		for p := w; p < w+size; p += slide {
			for k, src := range s.panes[p] {
				dst, ok := merged[k]
				if !ok {
					accs := make([]rex.Accumulator, len(s.sa.Calls))
					for i, c := range s.sa.Calls {
						accs[i] = rex.NewAccumulator(c)
					}
					dst = &streamGroup{key: src.key, accs: accs}
					merged[k] = dst
					order = append(order, k)
				}
				for i := range dst.accs {
					if err := rex.MergeAccumulators(dst.accs[i], src.accs[i]); err != nil {
						return nil, err
					}
				}
			}
		}
		for _, k := range order {
			g := merged[k]
			emitGroup(w, g.key, g.accs)
		}
	}
	// Retract expired panes: every window covering them has been emitted.
	for p := range s.panes {
		if p+size <= wm {
			delete(s.panes, p)
			s.res.Shrink(s.paneCharge[p])
			delete(s.paneCharge, p)
		}
	}
	return rows, nil
}

// emitSessions closes sessions whose quiet period has passed the watermark:
// no future row at ts ≥ wm can extend a session with last+gap ≤ wm.
func (s *streamState) emitSessions(wm int64) [][]any {
	gap := s.sa.Window.GapMs
	var rows [][]any
	for k, list := range s.sessions {
		keep := list[:0]
		for _, g := range list {
			if g.last+gap > wm {
				keep = append(keep, g)
				continue
			}
			row := make([]any, 0, s.outWidth)
			row = append(row, g.start, g.last+gap)
			row = append(row, g.key...)
			for _, acc := range g.accs {
				row = append(row, acc.Result())
			}
			rows = append(rows, row)
			s.res.Shrink(g.charge)
		}
		if len(keep) == 0 {
			delete(s.sessions, k)
		} else {
			s.sessions[k] = keep
		}
	}
	return rows
}

// sortEmitted orders one emission round by (window_start, key…,
// window_end) so the output is deterministic at any parallelism.
func sortEmitted(rows [][]any, nKeys int) {
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := rows[i], rows[j]
		if c := types.Compare(a[0], b[0]); c != 0 {
			return c < 0
		}
		for k := 0; k < nKeys; k++ {
			if c := types.Compare(a[2+k], b[2+k]); c != 0 {
				return c < 0
			}
		}
		return types.Compare(a[1], b[1]) < 0
	})
}

// ---- pull cursor ----

type streamAggCursor struct {
	st        *streamState
	in        schema.BatchCursor
	width     int
	batch     int
	pending   [][]any
	pos       int
	seq       int64
	scratch   []any
	dense     []int32
	inputDone bool
	closed    bool
	reported  int64 // current contribution to the state-bytes gauge
	interrupt *atomic.Bool
}

func (c *streamAggCursor) NextBatch() (*schema.Batch, error) {
	for {
		if c.interrupt != nil && c.interrupt.Load() {
			// A canceled continuous query releases its standing state at
			// once rather than waiting for the stream to end.
			c.release()
			return nil, ErrCanceled
		}
		if c.pos < len(c.pending) {
			end := c.pos + c.batch
			if end > len(c.pending) {
				end = len(c.pending)
			}
			b := schema.BatchFromRows(c.pending[c.pos:end], c.st.outWidth)
			b.Seq = c.seq
			c.seq++
			c.pos = end
			return b, nil
		}
		c.pending, c.pos = nil, 0
		if c.inputDone || c.closed {
			c.release()
			return nil, schema.Done
		}
		b, err := c.in.NextBatch()
		if err == schema.Done {
			c.inputDone = true
			rows, err := c.emit(true)
			if err != nil {
				c.release()
				return nil, err
			}
			if len(rows) == 0 {
				c.release()
				return nil, schema.Done
			}
			c.pending = rows
			continue
		}
		if err != nil {
			c.release()
			return nil, err
		}
		if c.scratch == nil {
			c.scratch = make([]any, c.width)
		}
		var sel []int32
		sel, c.dense = liveSel(b, c.dense)
		cols := b.BoxedCols()
		for _, ri := range sel {
			r := int(ri)
			for col := range c.scratch {
				c.scratch[col] = cols[col][r]
			}
			if err := c.st.add(c.scratch); err != nil {
				c.release()
				return nil, err
			}
		}
		rows, err := c.emit(false)
		if err != nil {
			c.release()
			return nil, err
		}
		c.pending = rows
	}
}

// emit runs one emission round and refreshes the stream gauges.
func (c *streamAggCursor) emit(final bool) ([][]any, error) {
	start := time.Now()
	rows, err := c.st.emitReady(final)
	if err != nil {
		return nil, err
	}
	if len(rows) > 0 {
		observeStreamEmit(time.Since(start))
	}
	if c.st.hasTs {
		streamWatermarkLag.Store(c.st.maxTs - c.st.watermark())
	}
	held := c.st.res.Held()
	streamStateBytes.Add(held - c.reported)
	c.reported = held
	return rows, nil
}

func (c *streamAggCursor) release() {
	if c.closed {
		return
	}
	c.closed = true
	c.in.Close()
	streamStateBytes.Add(-c.reported)
	c.reported = 0
	for _, run := range c.st.runs {
		run.Remove()
	}
	c.st.runs = nil
	c.st.res.Free()
}

func (c *streamAggCursor) Close() error {
	c.release()
	return nil
}
