package exec_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"calcite/internal/exec"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// runBoth executes the same plan through the batch path and the row path and
// requires identical results (row order included: every operator pair must
// preserve the same deterministic order).
func runBoth(t *testing.T, n rel.Node) [][]any {
	t.Helper()
	batch, err := exec.Execute(exec.NewContext(), n)
	if err != nil {
		t.Fatalf("batch execute: %v\n%s", err, rel.Explain(n))
	}
	row, err := exec.Execute(exec.NewRowContext(), n)
	if err != nil {
		t.Fatalf("row execute: %v\n%s", err, rel.Explain(n))
	}
	if !reflect.DeepEqual(batch, row) {
		t.Fatalf("batch/row divergence on\n%s\nbatch: %v\nrow:   %v", rel.Explain(n), batch, row)
	}
	return batch
}

func numbersTable(n int) *schema.MemTable {
	rows := make([][]any, n)
	for i := range rows {
		var f any
		if i%5 != 0 {
			f = float64(i) / 2
		}
		rows[i] = []any{int64(i), f, fmt.Sprintf("name-%03d", i%17)}
	}
	return schema.NewMemTable("nums", types.Row(
		types.Field{Name: "id", Type: types.BigInt},
		types.Field{Name: "score", Type: types.Double.WithNullable(true)},
		types.Field{Name: "name", Type: types.Varchar},
	), rows)
}

func TestBatchFilterProjectParity(t *testing.T) {
	tb := numbersTable(2500) // > 2 batches at the default batch size
	id := rex.NewInputRef(0, types.BigInt)
	score := rex.NewInputRef(1, types.Double)
	name := rex.NewInputRef(2, types.Varchar)

	conditions := []rex.Node{
		rex.NewCall(rex.OpGreater, id, rex.Int(1200)),
		rex.NewCall(rex.OpIsNotNull, score),
		rex.And(rex.NewCall(rex.OpGreaterEqual, id, rex.Int(100)),
			rex.NewCall(rex.OpLess, score, rex.Float(900))),
		rex.NewCall(rex.OpLike, name, rex.Str("name-01%")), // no kernel: compiled closure
		rex.Bool(false), // empty result
	}
	for _, cond := range conditions {
		filter := exec.NewFilter(scanOf(tb), cond)
		proj := exec.NewProject(filter, []rex.Node{
			id,
			rex.NewCall(rex.OpPlus, id, rex.Int(1000)),
			rex.NewCall(rex.OpTimes, score, rex.Float(2)),
			rex.NewCall(rex.OpUpper, name),
		}, []string{"id", "id2", "s2", "uname"})
		runBoth(t, proj)
	}
}

func TestBatchJoinAggregateSortParity(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	mkRows := func(n, keyRange int) [][]any {
		rows := make([][]any, n)
		for i := range rows {
			var k any
			if r.Intn(10) == 0 {
				k = nil
			} else {
				k = int64(r.Intn(keyRange))
			}
			rows[i] = []any{k, fmt.Sprintf("v%d", i)}
		}
		return rows
	}
	left := pair("bl", mkRows(900, 40)...)
	right := pair("br", mkRows(300, 40)...)
	cond := rex.Eq(rex.NewInputRef(0, types.BigInt), rex.NewInputRef(2, types.BigInt))

	for _, kind := range []rel.JoinKind{
		rel.InnerJoin, rel.LeftJoin, rel.RightJoin, rel.FullJoin, rel.SemiJoin, rel.AntiJoin,
	} {
		runBoth(t, exec.NewHashJoin(kind, scanOf(left), scanOf(right), cond))
	}

	// Join with a residual (non-equi) condition.
	residual := rex.And(cond, rex.NewCall(rex.OpLess,
		rex.NewInputRef(1, types.Varchar), rex.NewInputRef(3, types.Varchar)))
	runBoth(t, exec.NewHashJoin(rel.InnerJoin, scanOf(left), scanOf(right), residual))

	// Aggregate: grouped and global, over a batched subtree.
	agg := exec.NewAggregate(scanOf(left), []int{0}, []rex.AggCall{
		rex.NewAggCall(rex.AggCount, nil, false, "c"),
		rex.NewAggCall(rex.AggMin, []int{1}, false, "mn"),
	})
	runBoth(t, agg)
	runBoth(t, exec.NewAggregate(scanOf(left), nil, []rex.AggCall{
		rex.NewAggCall(rex.AggCount, nil, false, "c"),
	}))

	// Sort + limit + offset.
	collation := trait.Collation{{Field: 0}, {Field: 1}}
	runBoth(t, exec.NewSort(scanOf(left), collation, 13, 55))
	// Pure limit (streaming path).
	runBoth(t, exec.NewLimit(scanOf(left), 7, 20))
	runBoth(t, exec.NewLimit(scanOf(left), 0, 0))
	runBoth(t, exec.NewLimit(scanOf(left), 5000, -1))
}

// TestBatchErrorPropagation: errors surfaced by row cursors must cross the
// batch shims, and errors in compiled expressions must abort the query.
func TestBatchErrorPropagation(t *testing.T) {
	ft := &failingTable{pair("f")}
	scan := exec.NewScan(ft, []string{"f"})
	agg := exec.NewAggregate(exec.NewFilter(scan, rex.Bool(true)), nil,
		[]rex.AggCall{rex.NewAggCall(rex.AggCount, nil, false, "c")})
	if _, err := exec.Execute(exec.NewContext(), agg); err == nil {
		t.Fatal("batch path swallowed cursor error")
	}
	// Division by zero inside a compiled projection.
	tb := pair("z", []any{int64(1), "a"})
	proj := exec.NewProject(scanOf(tb), []rex.Node{
		rex.NewCall(rex.OpDivide, rex.NewInputRef(0, types.BigInt), rex.Int(0)),
	}, []string{"boom"})
	if _, err := exec.Execute(exec.NewContext(), proj); err == nil {
		t.Fatal("compiled division by zero not reported")
	}
}

// TestBatchSelectionVectorFlow: a filter's selection must narrow without
// copying columns, and downstream operators must observe only live rows.
func TestBatchSelectionVectorFlow(t *testing.T) {
	tb := numbersTable(1000)
	cond := rex.NewCall(rex.OpEquals,
		rex.NewCall(rex.OpTimes, rex.NewInputRef(0, types.BigInt), rex.Int(1)),
		rex.NewInputRef(0, types.BigInt)) // trivially true but kernel-less
	filter := exec.NewFilter(scanOf(tb), rex.And(
		cond, rex.NewCall(rex.OpLess, rex.NewInputRef(0, types.BigInt), rex.Int(10))))
	rows := runBoth(t, filter)
	if len(rows) != 10 {
		t.Fatalf("selected %d rows", len(rows))
	}
	got := make([]int, len(rows))
	for i, r := range rows {
		got[i] = int(r[0].(int64))
	}
	if !sort.IntsAreSorted(got) {
		t.Fatalf("selection order lost: %v", got)
	}
}
