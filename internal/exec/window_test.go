package exec

// White-box tests of the window frame machinery: direction-aware RANGE
// bounds (the DESC regression), temporal order keys, NULL peer groups,
// empty-frame canonicalization, and the equivalence of the incremental
// evaluators with per-frame recompute.

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/trait"
)

// taggedRows builds partition rows [v, posSeq, posIdx] from order-key values.
func taggedRows(vals ...any) [][]any {
	rows := make([][]any, len(vals))
	for i, v := range vals {
		rows[i] = []any{v, int64(0), int64(i)}
	}
	return rows
}

func orderOn(dir trait.Direction) trait.Collation {
	return trait.Collation{{Field: 0, Direction: dir}}
}

func boundsOf(t *testing.T, rows [][]any, g rel.WindowGroup) (lo, hi []int) {
	t.Helper()
	lo, hi, err := frameBoundsAll(rows, g)
	if err != nil {
		t.Fatalf("frameBoundsAll: %v", err)
	}
	return lo, hi
}

// Regression for the ascending-only RANGE scan: with a DESC order key the
// seed's "v >= cur - preceding" test walked the wrong direction and returned
// frames anchored at the partition start.
func TestFrameBoundsRangeDesc(t *testing.T) {
	rows := taggedRows(int64(16), int64(8), int64(4), int64(2), int64(1))
	g := rel.WindowGroup{
		OrderKeys: orderOn(trait.Descending),
		Frame:     rel.WindowFrame{Lo: -3},
	}
	lo, hi := boundsOf(t, rows, g)
	// cur=16: [16-(-?).. ] frame holds values in [16, 19] -> {16}; cur=8 ->
	// [8,11] -> {8}; cur=4 -> [4,7] -> {4}; cur=2 -> [2,5] -> {4,2};
	// cur=1 -> [1,4] -> {4,2,1}.
	wantLo := []int{0, 1, 2, 2, 2}
	wantHi := []int{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(lo, wantLo) || !reflect.DeepEqual(hi, wantHi) {
		t.Errorf("DESC RANGE bounds lo=%v hi=%v, want lo=%v hi=%v", lo, hi, wantLo, wantHi)
	}
}

func TestFrameBoundsRangeAsc(t *testing.T) {
	rows := taggedRows(int64(1), int64(2), int64(4), int64(8), int64(16))
	g := rel.WindowGroup{
		OrderKeys: orderOn(trait.Ascending),
		Frame:     rel.WindowFrame{Lo: -3},
	}
	lo, hi := boundsOf(t, rows, g)
	// cur=1 -> [-2,1] -> {1}; cur=2 -> [-1,2] -> {1,2}; cur=4 -> [1,4] ->
	// {1,2,4}; cur=8 -> [5,8] -> {8}; cur=16 -> [13,16] -> {16}.
	wantLo := []int{0, 0, 0, 3, 4}
	wantHi := []int{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(lo, wantLo) || !reflect.DeepEqual(hi, wantHi) {
		t.Errorf("ASC RANGE bounds lo=%v hi=%v, want lo=%v hi=%v", lo, hi, wantLo, wantHi)
	}
}

// Temporal order keys: epoch-millis int64 and time.Time both slide by value;
// a string key under an offset RANGE frame is a clean error, not lo=0.
func TestFrameBoundsTemporalAndUnorderable(t *testing.T) {
	hour := int64(3600 * 1000)
	g := rel.WindowGroup{
		OrderKeys: orderOn(trait.Ascending),
		Frame:     rel.WindowFrame{Lo: -hour},
	}
	rows := taggedRows(int64(0), hour/2, 2*hour)
	lo, _ := boundsOf(t, rows, g)
	if !reflect.DeepEqual(lo, []int{0, 0, 2}) {
		t.Errorf("millis RANGE lo=%v", lo)
	}
	base := time.UnixMilli(0).UTC()
	rows = taggedRows(base, base.Add(30*time.Minute), base.Add(2*time.Hour))
	lo, _ = boundsOf(t, rows, g)
	if !reflect.DeepEqual(lo, []int{0, 0, 2}) {
		t.Errorf("time.Time RANGE lo=%v", lo)
	}
	rows = taggedRows("a", "b")
	if _, _, err := frameBoundsAll(rows, g); err == nil {
		t.Error("expected error for RANGE offset over a string order key")
	}
}

// NULL order keys frame exactly their peer NULLs under offset bounds, at the
// low end ascending and the high end descending.
func TestFrameBoundsNullPeers(t *testing.T) {
	g := rel.WindowGroup{
		OrderKeys: orderOn(trait.Ascending),
		Frame:     rel.WindowFrame{Lo: -10},
	}
	rows := taggedRows(nil, nil, int64(5), int64(20))
	lo, hi := boundsOf(t, rows, g)
	if lo[0] != 0 || hi[0] != 1 || lo[1] != 0 || hi[1] != 1 {
		t.Errorf("NULL peers: lo=%v hi=%v", lo, hi)
	}
	if lo[2] != 2 || hi[2] != 2 || lo[3] != 3 || hi[3] != 3 {
		t.Errorf("non-NULL rows should exclude NULLs: lo=%v hi=%v", lo, hi)
	}
	gd := rel.WindowGroup{
		OrderKeys: orderOn(trait.Descending),
		Frame:     rel.WindowFrame{Lo: -10},
	}
	rows = taggedRows(int64(20), int64(5), nil, nil)
	lo, hi = boundsOf(t, rows, gd)
	if lo[2] != 2 || hi[2] != 3 || lo[3] != 2 || hi[3] != 3 {
		t.Errorf("DESC NULL peers: lo=%v hi=%v", lo, hi)
	}
}

// Empty ROWS frames (upper bound before the lower) canonicalize to lo=hi+1
// and evaluate to the empty aggregate.
func TestFrameBoundsEmptyRows(t *testing.T) {
	rows := taggedRows(int64(1), int64(2), int64(3))
	g := rel.WindowGroup{
		OrderKeys: orderOn(trait.Ascending),
		Frame:     rel.WindowFrame{Rows: true, Lo: -2, Hi: -1},
	}
	lo, hi := boundsOf(t, rows, g)
	if lo[0] != hi[0]+1 {
		t.Errorf("row 0 frame should be empty: lo=%d hi=%d", lo[0], hi[0])
	}
	if lo[2] != 0 || hi[2] != 1 {
		t.Errorf("row 2 frame lo=%d hi=%d", lo[2], hi[2])
	}
}

// The incremental evaluators must agree exactly with per-frame recompute
// over randomized partitions, frames and directions.
func TestSlidingMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	frames := []rel.WindowFrame{
		{Rows: true, Lo: -3},
		{Rows: true, Lo: -5, Hi: 2},
		{Rows: true, Lo: -4, Hi: -2},
		{Rows: true, LoUnbounded: true},
		{Rows: true, HiUnbounded: true},
		{Lo: -7},
		{Lo: -3, Hi: 3},
		{LoUnbounded: true},
	}
	calls := []rex.AggCall{
		rex.NewAggCall(rex.AggSum, []int{0}, false, "s"),
		rex.NewAggCall(rex.AggCount, []int{0}, false, "c"),
		rex.NewAggCall(rex.AggAvg, []int{0}, false, "a"),
		rex.NewAggCall(rex.AggMin, []int{0}, false, "mn"),
		rex.NewAggCall(rex.AggMax, []int{0}, false, "mx"),
	}
	for _, dir := range []trait.Direction{trait.Ascending, trait.Descending} {
		for _, frame := range frames {
			n := 40
			vals := make([]any, n)
			for i := range vals {
				if rng.Intn(6) == 0 {
					vals[i] = nil
				} else {
					vals[i] = int64(rng.Intn(20))
				}
			}
			rows := taggedRows(vals...)
			g := rel.WindowGroup{OrderKeys: orderOn(dir), Frame: frame, Calls: calls}
			sortPartition(rows, g)
			lo, hi, err := frameBoundsAll(rows, g)
			if err != nil {
				t.Fatal(err)
			}
			for _, call := range calls {
				inc, err := evalCall(rows, g, call, lo, hi, false)
				if err != nil {
					t.Fatal(err)
				}
				rec, err := evalCall(rows, g, call, lo, hi, true)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(inc, rec) {
					t.Errorf("%s dir=%v frame=%s:\n incremental %v\n recompute   %v",
						call.Func, dir, frame, inc, rec)
				}
			}
		}
	}
}

// sortPartition orders test rows the way the window pipeline would.
func sortPartition(rows [][]any, g rel.WindowGroup) {
	cmp := groupCmp(g, len(rows[0]))
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && cmp(rows[j], rows[j-1]) < 0; j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}
