package exec

import (
	"math"

	"calcite/internal/cost"
	"calcite/internal/meta"
	"calcite/internal/plan"
	"calcite/internal/rel"
	"calcite/internal/schema"
	"calcite/internal/trait"
)

// logicalOp builds an operand matching nodes of type T in the logical
// convention (adapter-specific nodes share Go types with logical ones but
// carry their adapter's convention, so the convention check is essential).
func logicalOp[T rel.Node]() *plan.Operand {
	return plan.MatchNode(func(n rel.Node) bool {
		if _, ok := n.(T); !ok {
			return false
		}
		return trait.SameConvention(n.Traits().Convention, trait.Logical)
	})
}

// Rules returns the conversion rules from the logical convention to the
// enumerable convention — the rule set that makes any logical plan
// executable client-side (§5: with just a table scan, "the Calcite optimizer
// is then able to use client-side operators ... to execute arbitrary SQL
// queries against these tables").
func Rules() []plan.Rule {
	return []plan.Rule{
		ScanRule(), FilterRule(), ProjectRule(), SortRule(), AggregateRule(),
		StreamAggregateRule(), HashJoinRule(), NestedLoopJoinRule(),
		SetOpRule(), ValuesRule(), WindowRule(), TableModifyRule(),
	}
}

// ScanRule converts a logical scan of a scannable table.
func ScanRule() plan.Rule {
	return &plan.FuncRule{
		Name: "EnumerableTableScanRule",
		Op:   logicalOp[*rel.TableScan](),
		Fire: func(call *plan.Call) {
			scan := call.Rel(0).(*rel.TableScan)
			if st, ok := scan.Table.(schema.ScannableTable); ok {
				call.Transform(NewScan(st, scan.QualifiedName))
			}
		},
	}
}

// FilterRule converts a logical filter.
func FilterRule() plan.Rule {
	return &plan.FuncRule{
		Name: "EnumerableFilterRule",
		Op:   logicalOp[*rel.Filter](),
		Fire: func(call *plan.Call) {
			f := call.Rel(0).(*rel.Filter)
			call.Transform(NewFilter(call.Convert(f.Inputs()[0], trait.Enumerable), f.Condition))
		},
	}
}

// ProjectRule converts a logical projection.
func ProjectRule() plan.Rule {
	return &plan.FuncRule{
		Name: "EnumerableProjectRule",
		Op:   logicalOp[*rel.Project](),
		Fire: func(call *plan.Call) {
			p := call.Rel(0).(*rel.Project)
			call.Transform(NewProject(call.Convert(p.Inputs()[0], trait.Enumerable), p.Exprs, p.FieldNames()))
		},
	}
}

// SortRule converts a logical sort/limit.
func SortRule() plan.Rule {
	return &plan.FuncRule{
		Name: "EnumerableSortRule",
		Op:   logicalOp[*rel.Sort](),
		Fire: func(call *plan.Call) {
			s := call.Rel(0).(*rel.Sort)
			call.Transform(NewSort(call.Convert(s.Inputs()[0], trait.Enumerable), s.Collation, s.Offset, s.Fetch))
		},
	}
}

// AggregateRule converts a logical aggregate.
func AggregateRule() plan.Rule {
	return &plan.FuncRule{
		Name: "EnumerableAggregateRule",
		Op:   logicalOp[*rel.Aggregate](),
		Fire: func(call *plan.Call) {
			a := call.Rel(0).(*rel.Aggregate)
			call.Transform(NewAggregate(call.Convert(a.Inputs()[0], trait.Enumerable), a.GroupKeys, a.Calls))
		},
	}
}

// StreamAggregateRule converts a logical streaming (windowed) aggregation.
func StreamAggregateRule() plan.Rule {
	return &plan.FuncRule{
		Name: "EnumerableStreamAggregateRule",
		Op:   logicalOp[*rel.StreamAggregate](),
		Fire: func(call *plan.Call) {
			a := call.Rel(0).(*rel.StreamAggregate)
			call.Transform(NewStreamAgg(call.Convert(a.Inputs()[0], trait.Enumerable),
				a.Window, a.LatenessMs, a.GroupKeys, a.Calls))
		},
	}
}

// HashJoinRule converts equi-joins to hash joins.
func HashJoinRule() plan.Rule {
	return &plan.FuncRule{
		Name: "EnumerableHashJoinRule",
		Op:   logicalOp[*rel.Join](),
		Fire: func(call *plan.Call) {
			j := call.Rel(0).(*rel.Join)
			info := AnalyzeJoin(j.Condition, rel.FieldCount(j.Left()))
			if len(info.LeftKeys) == 0 {
				return // no equi keys: hash join not applicable
			}
			call.Transform(NewHashJoin(j.Kind,
				call.Convert(j.Left(), trait.Enumerable),
				call.Convert(j.Right(), trait.Enumerable),
				j.Condition))
		},
	}
}

// NestedLoopJoinRule converts any join to a nested-loop join.
func NestedLoopJoinRule() plan.Rule {
	return &plan.FuncRule{
		Name: "EnumerableNestedLoopJoinRule",
		Op:   logicalOp[*rel.Join](),
		Fire: func(call *plan.Call) {
			j := call.Rel(0).(*rel.Join)
			call.Transform(NewNestedLoopJoin(j.Kind,
				call.Convert(j.Left(), trait.Enumerable),
				call.Convert(j.Right(), trait.Enumerable),
				j.Condition))
		},
	}
}

// SetOpRule converts logical set operations.
func SetOpRule() plan.Rule {
	return &plan.FuncRule{
		Name: "EnumerableSetOpRule",
		Op:   logicalOp[*rel.SetOp](),
		Fire: func(call *plan.Call) {
			s := call.Rel(0).(*rel.SetOp)
			inputs := make([]rel.Node, len(s.Inputs()))
			for i, in := range s.Inputs() {
				inputs[i] = call.Convert(in, trait.Enumerable)
			}
			call.Transform(NewSetOp(s.Kind, s.All, inputs...))
		},
	}
}

// ValuesRule converts logical Values.
func ValuesRule() plan.Rule {
	return &plan.FuncRule{
		Name: "EnumerableValuesRule",
		Op:   logicalOp[*rel.Values](),
		Fire: func(call *plan.Call) {
			v := call.Rel(0).(*rel.Values)
			call.Transform(NewValues(v.RowType(), v.Tuples))
		},
	}
}

// WindowRule converts logical window aggregates.
func WindowRule() plan.Rule {
	return &plan.FuncRule{
		Name: "EnumerableWindowRule",
		Op:   logicalOp[*rel.Window](),
		Fire: func(call *plan.Call) {
			w := call.Rel(0).(*rel.Window)
			call.Transform(NewWindow(call.Convert(w.Inputs()[0], trait.Enumerable), w.Groups))
		},
	}
}

// TableModifyRule converts logical INSERT.
func TableModifyRule() plan.Rule {
	return &plan.FuncRule{
		Name: "EnumerableTableModifyRule",
		Op:   logicalOp[*rel.TableModify](),
		Fire: func(call *plan.Call) {
			m := call.Rel(0).(*rel.TableModify)
			call.Transform(NewTableModify(m, call.Convert(m.Inputs()[0], trait.Enumerable)))
		},
	}
}

// MetadataProvider returns cost metadata for the enumerable physical
// operators: it differentiates hash, merge and nested-loop joins so the
// cost-based planner can choose between them.
func MetadataProvider() meta.Provider {
	return meta.Provider{
		Name: "enumerable",
		NonCumulativeCost: func(q *meta.Query, n rel.Node) (cost.Cost, bool) {
			switch x := n.(type) {
			case *Scan:
				// A full scan of a remote table ships every row across the
				// engine boundary; charging that transfer is what makes
				// pushdown win (§5).
				if rt, ok := x.Table.(schema.RemoteTable); ok {
					rc := q.RowCount(x)
					return cost.New(rc, rc, rc*rt.TransferCostFactor(), 0), true
				}
				return cost.Zero, false
			case *HashJoin:
				left, right := q.RowCount(x.Left()), q.RowCount(x.Right())
				return cost.New(left+right, left+right*2, 0, right*q.AverageRowSize(x.Right())), true
			case *MergeJoin:
				left, right := q.RowCount(x.Left()), q.RowCount(x.Right())
				return cost.New(left+right, left+right, 0, 0), true
			case *NestedLoopJoin:
				left, right := q.RowCount(x.Left()), q.RowCount(x.Right())
				return cost.New(left+right, left*right, 0, right*q.AverageRowSize(x.Right())), true
			case *Sort:
				in := q.RowCount(x.Inputs()[0])
				cpu := in
				if len(x.Collation) > 0 {
					cpu = in * math.Log2(math.Max(in, 2))
				}
				return cost.New(in, cpu, 0, in*q.AverageRowSize(x)), true
			}
			return cost.Zero, false
		},
	}
}
