package exec

import (
	"fmt"
	"sort"

	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

func enumerableTraits() trait.Set { return trait.NewSet(trait.Enumerable) }

// Scan is the enumerable full-table scan over any ScannableTable.
type Scan struct {
	*rel.TableScan
}

// NewScan creates an enumerable scan; the table must be scannable.
func NewScan(table schema.ScannableTable, qualifiedName []string) *Scan {
	return &Scan{TableScan: rel.NewTableScan(trait.Enumerable, table, qualifiedName)}
}

func (s *Scan) WithNewInputs(inputs []rel.Node) rel.Node { return s }

func (s *Scan) Bind(ctx *Context) (schema.Cursor, error) {
	st, ok := s.Table.(schema.ScannableTable)
	if !ok {
		return nil, fmt.Errorf("exec: table %s is not scannable", s.Table.Name())
	}
	return st.Scan()
}

func (s *Scan) Unwrap() rel.Node {
	return rel.NewTableScan(trait.Logical, s.Table, s.QualifiedName)
}

// Filter is the enumerable filter.
type Filter struct {
	*rel.Filter
}

// NewFilter creates an enumerable filter.
func NewFilter(input rel.Node, condition rex.Node) *Filter {
	return &Filter{Filter: rel.NewFilterTraits("EnumerableFilter", enumerableTraits(), input, condition)}
}

func (f *Filter) WithNewInputs(inputs []rel.Node) rel.Node {
	return NewFilter(inputs[0], f.Condition)
}

func (f *Filter) Unwrap() rel.Node { return rel.NewFilter(f.Inputs()[0], f.Condition) }

func (f *Filter) Bind(ctx *Context) (schema.Cursor, error) {
	in, err := BindNode(ctx, f.Inputs()[0])
	if err != nil {
		return nil, err
	}
	return &funcCursor{
		next: func() ([]any, error) {
			for {
				row, err := in.Next()
				if err != nil {
					return nil, err
				}
				keep, err := ctx.Evaluator.EvalBool(f.Condition, row)
				if err != nil {
					return nil, err
				}
				if keep {
					return row, nil
				}
			}
		},
		close: in.Close,
	}, nil
}

// Project is the enumerable projection.
type Project struct {
	*rel.Project
}

// NewProject creates an enumerable projection.
func NewProject(input rel.Node, exprs []rex.Node, names []string) *Project {
	return &Project{Project: rel.NewProjectTraits("EnumerableProject", enumerableTraits(), input, exprs, names)}
}

func (p *Project) WithNewInputs(inputs []rel.Node) rel.Node {
	return NewProject(inputs[0], p.Exprs, p.FieldNames())
}

func (p *Project) Unwrap() rel.Node {
	return rel.NewProject(p.Inputs()[0], p.Exprs, p.FieldNames())
}

func (p *Project) Bind(ctx *Context) (schema.Cursor, error) {
	in, err := BindNode(ctx, p.Inputs()[0])
	if err != nil {
		return nil, err
	}
	return &funcCursor{
		next: func() ([]any, error) {
			row, err := in.Next()
			if err != nil {
				return nil, err
			}
			out := make([]any, len(p.Exprs))
			for i, e := range p.Exprs {
				v, err := ctx.Evaluator.Eval(e, row)
				if err != nil {
					return nil, err
				}
				out[i] = v
			}
			return out, nil
		},
		close: in.Close,
	}, nil
}

// Values is the enumerable constant-rows operator.
type Values struct {
	*rel.Values
}

// NewValues creates enumerable Values.
func NewValues(rowType *types.Type, tuples [][]rex.Node) *Values {
	return &Values{Values: rel.NewValuesTraits("EnumerableValues", enumerableTraits(), rowType, tuples)}
}

func (v *Values) WithNewInputs(inputs []rel.Node) rel.Node { return v }

func (v *Values) Unwrap() rel.Node { return rel.NewValues(v.RowType(), v.Tuples) }

func (v *Values) Bind(ctx *Context) (schema.Cursor, error) {
	rows := make([][]any, len(v.Tuples))
	for i, t := range v.Tuples {
		row := make([]any, len(t))
		for j, e := range t {
			val, err := ctx.Evaluator.Eval(e, nil)
			if err != nil {
				return nil, err
			}
			row[j] = val
		}
		rows[i] = row
	}
	return schema.NewSliceCursor(rows), nil
}

// Sort is the enumerable sort with optional OFFSET/FETCH; with an empty
// collation it degenerates to a streaming limit.
type Sort struct {
	*rel.Sort
}

// NewSort creates an enumerable sort.
func NewSort(input rel.Node, collation trait.Collation, offset, fetch int64) *Sort {
	ts := enumerableTraits().WithCollation(collation)
	return &Sort{Sort: rel.NewSortTraits("EnumerableSort", ts, input, collation, offset, fetch)}
}

// NewLimit creates a pure limit (no sorting).
func NewLimit(input rel.Node, offset, fetch int64) *Sort {
	s := NewSort(input, nil, offset, fetch)
	return s
}

func (s *Sort) WithNewInputs(inputs []rel.Node) rel.Node {
	return NewSort(inputs[0], s.Collation, s.Offset, s.Fetch)
}

func (s *Sort) Unwrap() rel.Node {
	return rel.NewSort(s.Inputs()[0], s.Collation, s.Offset, s.Fetch)
}

// CompareRows orders two rows by a collation.
func CompareRows(a, b []any, collation trait.Collation) int {
	for _, fc := range collation {
		c := types.Compare(a[fc.Field], b[fc.Field])
		if fc.Direction == trait.Descending {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	return 0
}

func (s *Sort) Bind(ctx *Context) (schema.Cursor, error) {
	in, err := BindNode(ctx, s.Inputs()[0])
	if err != nil {
		return nil, err
	}
	if len(s.Collation) == 0 {
		// Pure limit: stream.
		skipped := int64(0)
		returned := int64(0)
		return &funcCursor{
			next: func() ([]any, error) {
				for skipped < s.Offset {
					if _, err := in.Next(); err != nil {
						return nil, err
					}
					skipped++
				}
				if s.Fetch >= 0 && returned >= s.Fetch {
					return nil, schema.Done
				}
				row, err := in.Next()
				if err != nil {
					return nil, err
				}
				returned++
				return row, nil
			},
			close: in.Close,
		}, nil
	}
	rows, err := drain(in)
	if err != nil {
		return nil, err
	}
	sort.SliceStable(rows, func(i, j int) bool {
		return CompareRows(rows[i], rows[j], s.Collation) < 0
	})
	if s.Offset > 0 {
		if s.Offset >= int64(len(rows)) {
			rows = nil
		} else {
			rows = rows[s.Offset:]
		}
	}
	if s.Fetch >= 0 && s.Fetch < int64(len(rows)) {
		rows = rows[:s.Fetch]
	}
	return schema.NewSliceCursor(rows), nil
}

// Aggregate is the enumerable hash aggregate.
type Aggregate struct {
	*rel.Aggregate
}

// NewAggregate creates an enumerable hash aggregate.
func NewAggregate(input rel.Node, groupKeys []int, calls []rex.AggCall) *Aggregate {
	return &Aggregate{Aggregate: rel.NewAggregateTraits("EnumerableAggregate", enumerableTraits(), input, groupKeys, calls)}
}

func (a *Aggregate) WithNewInputs(inputs []rel.Node) rel.Node {
	return NewAggregate(inputs[0], a.GroupKeys, a.Calls)
}

func (a *Aggregate) Unwrap() rel.Node {
	return rel.NewAggregate(a.Inputs()[0], a.GroupKeys, a.Calls)
}

func (a *Aggregate) Bind(ctx *Context) (schema.Cursor, error) {
	in, err := BindNode(ctx, a.Inputs()[0])
	if err != nil {
		return nil, err
	}
	rows, err := drain(in)
	if err != nil {
		return nil, err
	}
	type group struct {
		key  []any
		accs []rex.Accumulator
	}
	groups := map[string]*group{}
	var order []string
	for _, row := range rows {
		k := types.HashRowKey(row, a.GroupKeys)
		g, ok := groups[k]
		if !ok {
			key := make([]any, len(a.GroupKeys))
			for i, gk := range a.GroupKeys {
				key[i] = row[gk]
			}
			accs := make([]rex.Accumulator, len(a.Calls))
			for i, c := range a.Calls {
				accs[i] = rex.NewAccumulator(c)
			}
			g = &group{key: key, accs: accs}
			groups[k] = g
			order = append(order, k)
		}
		for _, acc := range g.accs {
			if err := acc.Add(row); err != nil {
				return nil, err
			}
		}
	}
	// Global aggregate over empty input still yields one row.
	if len(a.GroupKeys) == 0 && len(order) == 0 {
		accs := make([]rex.Accumulator, len(a.Calls))
		for i, c := range a.Calls {
			accs[i] = rex.NewAccumulator(c)
		}
		groups[""] = &group{accs: accs}
		order = append(order, "")
	}
	out := make([][]any, 0, len(order))
	for _, k := range order {
		g := groups[k]
		row := make([]any, 0, len(g.key)+len(g.accs))
		row = append(row, g.key...)
		for _, acc := range g.accs {
			row = append(row, acc.Result())
		}
		out = append(out, row)
	}
	return schema.NewSliceCursor(out), nil
}

// SetOp is the enumerable UNION / INTERSECT / MINUS.
type SetOp struct {
	*rel.SetOp
}

// NewSetOp creates an enumerable set operation.
func NewSetOp(kind rel.SetOpKind, all bool, inputs ...rel.Node) *SetOp {
	name := map[rel.SetOpKind]string{
		rel.UnionOp:     "EnumerableUnion",
		rel.IntersectOp: "EnumerableIntersect",
		rel.MinusOp:     "EnumerableMinus",
	}[kind]
	return &SetOp{SetOp: rel.NewSetOpTraits(name, enumerableTraits(), kind, all, inputs...)}
}

func (s *SetOp) WithNewInputs(inputs []rel.Node) rel.Node {
	return NewSetOp(s.Kind, s.All, inputs...)
}

func (s *SetOp) Unwrap() rel.Node { return rel.NewSetOp(s.Kind, s.All, s.Inputs()...) }

func (s *SetOp) Bind(ctx *Context) (schema.Cursor, error) {
	var inputs [][][]any
	for _, in := range s.Inputs() {
		cur, err := BindNode(ctx, in)
		if err != nil {
			return nil, err
		}
		rows, err := drain(cur)
		if err != nil {
			return nil, err
		}
		inputs = append(inputs, rows)
	}
	key := func(row []any) string {
		cols := make([]int, len(row))
		for i := range cols {
			cols[i] = i
		}
		return types.HashRowKey(row, cols)
	}
	var out [][]any
	switch s.Kind {
	case rel.UnionOp:
		seen := map[string]bool{}
		for _, rows := range inputs {
			for _, row := range rows {
				if s.All {
					out = append(out, row)
					continue
				}
				k := key(row)
				if !seen[k] {
					seen[k] = true
					out = append(out, row)
				}
			}
		}
	case rel.IntersectOp:
		counts := map[string]int{}
		for _, row := range inputs[1] {
			counts[key(row)]++
		}
		emitted := map[string]bool{}
		for _, row := range inputs[0] {
			k := key(row)
			if counts[k] > 0 {
				if s.All {
					counts[k]--
					out = append(out, row)
				} else if !emitted[k] {
					emitted[k] = true
					out = append(out, row)
				}
			}
		}
	case rel.MinusOp:
		counts := map[string]int{}
		for _, row := range inputs[1] {
			counts[key(row)]++
		}
		emitted := map[string]bool{}
		for _, row := range inputs[0] {
			k := key(row)
			if counts[k] > 0 {
				if s.All {
					counts[k]--
				}
				continue
			}
			if s.All {
				out = append(out, row)
			} else if !emitted[k] {
				emitted[k] = true
				out = append(out, row)
			}
		}
	}
	return schema.NewSliceCursor(out), nil
}

// TableModify is the enumerable INSERT executor.
type TableModify struct {
	*rel.TableModify
}

// NewTableModify creates an enumerable insert.
func NewTableModify(m *rel.TableModify, input rel.Node) *TableModify {
	inner := rel.NewTableModify(m.Table, m.QualifiedName, input)
	return &TableModify{TableModify: inner}
}

func (m *TableModify) WithNewInputs(inputs []rel.Node) rel.Node {
	return NewTableModify(m.TableModify, inputs[0])
}

func (m *TableModify) Op() string { return "EnumerableTableModify" }

func (m *TableModify) Traits() trait.Set { return enumerableTraits() }

func (m *TableModify) Bind(ctx *Context) (schema.Cursor, error) {
	in, err := BindNode(ctx, m.Inputs()[0])
	if err != nil {
		return nil, err
	}
	rows, err := drain(in)
	if err != nil {
		return nil, err
	}
	if err := m.Table.Insert(rows); err != nil {
		return nil, err
	}
	return schema.NewSliceCursor([][]any{{int64(len(rows))}}), nil
}
