package exec_test

import (
	"fmt"
	"math/rand"
	"testing"

	"calcite/internal/exec"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

func scanOf(t *schema.MemTable) rel.Node {
	return exec.NewScan(t, []string{t.Name()})
}

func run(t *testing.T, n rel.Node) [][]any {
	t.Helper()
	rows, err := exec.Execute(exec.NewContext(), n)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, rel.Explain(n))
	}
	return rows
}

func pair(name string, rows ...[]any) *schema.MemTable {
	return schema.NewMemTable(name, types.Row(
		types.Field{Name: "k", Type: types.BigInt.WithNullable(true)},
		types.Field{Name: "v", Type: types.Varchar},
	), rows)
}

func TestOuterJoins(t *testing.T) {
	left := pair("l", []any{int64(1), "a"}, []any{int64(2), "b"}, []any{nil, "n"})
	right := pair("r", []any{int64(1), "x"}, []any{int64(3), "y"})
	cond := rex.Eq(rex.NewInputRef(0, types.BigInt), rex.NewInputRef(2, types.BigInt))

	cases := []struct {
		kind rel.JoinKind
		want int
	}{
		{rel.InnerJoin, 1},
		{rel.LeftJoin, 3},  // 1 match + 2 null-extended
		{rel.RightJoin, 2}, // 1 match + 1 null-extended
		{rel.FullJoin, 4},
		{rel.SemiJoin, 1},
		{rel.AntiJoin, 2}, // k=2 and k=NULL never match
	}
	for _, c := range cases {
		hj := exec.NewHashJoin(c.kind, scanOf(left), scanOf(right), cond)
		if got := len(run(t, hj)); got != c.want {
			t.Errorf("hash %s join: %d rows, want %d", c.kind, got, c.want)
		}
		nl := exec.NewNestedLoopJoin(c.kind, scanOf(left), scanOf(right), cond)
		if got := len(run(t, nl)); got != c.want {
			t.Errorf("NL %s join: %d rows, want %d", c.kind, got, c.want)
		}
	}
}

// Property: hash join ≡ nested-loop join ≡ merge join on random equi-join
// inputs (inner).
func TestJoinImplementationsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		mk := func(name string, n int) *schema.MemTable {
			rows := make([][]any, n)
			for i := range rows {
				rows[i] = []any{int64(r.Intn(6)), fmt.Sprintf("%s%d", name, i)}
			}
			// Merge join needs sorted inputs.
			for i := 1; i < len(rows); i++ {
				for j := i; j > 0 && rows[j][0].(int64) < rows[j-1][0].(int64); j-- {
					rows[j], rows[j-1] = rows[j-1], rows[j]
				}
			}
			return pair(name, rows...)
		}
		l, rt := mk("l", 20), mk("r", 15)
		cond := rex.Eq(rex.NewInputRef(0, types.BigInt), rex.NewInputRef(2, types.BigInt))
		nHash := len(run(t, exec.NewHashJoin(rel.InnerJoin, scanOf(l), scanOf(rt), cond)))
		nNL := len(run(t, exec.NewNestedLoopJoin(rel.InnerJoin, scanOf(l), scanOf(rt), cond)))
		nMerge := len(run(t, exec.NewMergeJoin(scanOf(l), scanOf(rt), cond)))
		if nHash != nNL || nHash != nMerge {
			t.Fatalf("trial %d: hash=%d nl=%d merge=%d", trial, nHash, nNL, nMerge)
		}
	}
}

func TestSetOpsAllSemantics(t *testing.T) {
	a := pair("a", []any{int64(1), "x"}, []any{int64(1), "x"}, []any{int64(2), "y"})
	b := pair("b", []any{int64(1), "x"}, []any{int64(3), "z"})

	if got := len(run(t, exec.NewSetOp(rel.UnionOp, true, scanOf(a), scanOf(b)))); got != 5 {
		t.Errorf("UNION ALL: %d", got)
	}
	if got := len(run(t, exec.NewSetOp(rel.UnionOp, false, scanOf(a), scanOf(b)))); got != 3 {
		t.Errorf("UNION: %d", got)
	}
	if got := len(run(t, exec.NewSetOp(rel.IntersectOp, false, scanOf(a), scanOf(b)))); got != 1 {
		t.Errorf("INTERSECT: %d", got)
	}
	if got := len(run(t, exec.NewSetOp(rel.MinusOp, false, scanOf(a), scanOf(b)))); got != 1 {
		t.Errorf("EXCEPT: %d", got)
	}
	if got := len(run(t, exec.NewSetOp(rel.MinusOp, true, scanOf(a), scanOf(b)))); got != 2 {
		t.Errorf("EXCEPT ALL: %d", got)
	}
}

func TestSortOffsetFetchAndStability(t *testing.T) {
	tb := pair("t",
		[]any{int64(2), "b1"}, []any{int64(1), "a"}, []any{int64(2), "b2"}, []any{int64(3), "c"})
	coll := trait.Collation{{Field: 0, Direction: trait.Ascending}}
	rows := run(t, exec.NewSort(scanOf(tb), coll, 1, 2))
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	// Stability: the two k=2 rows keep input order; offset 1 skips "a".
	if rows[0][1] != "b1" || rows[1][1] != "b2" {
		t.Errorf("stability/offset broken: %v", rows)
	}
	// Streaming limit (no collation).
	rows = run(t, exec.NewLimit(scanOf(tb), 0, 3))
	if len(rows) != 3 {
		t.Errorf("limit rows: %v", rows)
	}
	// NULLS sort first ascending.
	tb2 := pair("t2", []any{nil, "n"}, []any{int64(1), "a"})
	rows = run(t, exec.NewSort(scanOf(tb2), coll, 0, -1))
	if rows[0][0] != nil {
		t.Errorf("nulls-first violated: %v", rows)
	}
}

func TestWindowFrames(t *testing.T) {
	tb := schema.NewMemTable("w", types.Row(
		types.Field{Name: "ts", Type: types.BigInt},
		types.Field{Name: "v", Type: types.BigInt},
	), [][]any{
		{int64(0), int64(1)}, {int64(10), int64(2)}, {int64(20), int64(4)}, {int64(30), int64(8)},
	})
	orderKeys := trait.Collation{{Field: 0, Direction: trait.Ascending}}
	sum := rex.NewAggCall(rex.AggSum, []int{1}, false, "s")

	// ROWS 1 PRECEDING: sliding pairs.
	g := rel.WindowGroup{OrderKeys: orderKeys, Frame: rel.WindowFrame{Rows: true, Lo: -1}, Calls: []rex.AggCall{sum}}
	rows := run(t, exec.NewWindow(scanOf2(tb), []rel.WindowGroup{g}))
	wantRows := []int64{1, 3, 6, 12}
	for i, w := range wantRows {
		if got, _ := types.AsInt(rows[i][2]); got != w {
			t.Errorf("ROWS frame row %d = %v want %d", i, rows[i][2], w)
		}
	}
	// RANGE 15 PRECEDING over ts.
	g = rel.WindowGroup{OrderKeys: orderKeys, Frame: rel.WindowFrame{Rows: false, Lo: -15}, Calls: []rex.AggCall{sum}}
	rows = run(t, exec.NewWindow(scanOf2(tb), []rel.WindowGroup{g}))
	wantRange := []int64{1, 3, 6, 12}
	for i, w := range wantRange {
		if got, _ := types.AsInt(rows[i][2]); got != w {
			t.Errorf("RANGE frame row %d = %v want %d", i, rows[i][2], w)
		}
	}
	// UNBOUNDED PRECEDING: running total.
	g = rel.WindowGroup{OrderKeys: orderKeys, Frame: rel.DefaultFrame(), Calls: []rex.AggCall{sum}}
	rows = run(t, exec.NewWindow(scanOf2(tb), []rel.WindowGroup{g}))
	if got, _ := types.AsInt(rows[3][2]); got != 15 {
		t.Errorf("running total = %v", rows[3][2])
	}
}

func scanOf2(t *schema.MemTable) rel.Node { return exec.NewScan(t, []string{t.Name()}) }

// failingTable injects cursor errors (failure-injection coverage). It embeds
// the Table interface (not *MemTable) so it does not advertise ScanBatches:
// the overridden Scan must remain the only row source in both execution
// modes.
type failingTable struct{ schema.Table }

type failingCursor struct{ n int }

func (c *failingCursor) Next() ([]any, error) {
	if c.n == 0 {
		c.n++
		return []any{int64(1), "ok"}, nil
	}
	return nil, fmt.Errorf("disk on fire")
}
func (c *failingCursor) Close() error { return nil }

func (f *failingTable) Scan() (schema.Cursor, error) { return &failingCursor{}, nil }

func TestCursorErrorPropagation(t *testing.T) {
	ft := &failingTable{pair("f")}
	scan := exec.NewScan(ft, []string{"f"})
	filter := exec.NewFilter(scan, rex.Bool(true))
	agg := exec.NewAggregate(filter, nil, []rex.AggCall{rex.NewAggCall(rex.AggCount, nil, false, "c")})
	if _, err := exec.Execute(exec.NewContext(), agg); err == nil {
		t.Fatal("cursor error swallowed")
	}
	join := exec.NewHashJoin(rel.InnerJoin, exec.NewScan(ft, []string{"f"}), scanOf(pair("ok")),
		rex.Eq(rex.NewInputRef(0, types.BigInt), rex.NewInputRef(2, types.BigInt)))
	if _, err := exec.Execute(exec.NewContext(), join); err == nil {
		t.Fatal("join swallowed cursor error")
	}
}

func TestUnexecutableNodeError(t *testing.T) {
	tb := pair("t", []any{int64(1), "a"})
	logical := rel.NewTableScan(trait.Logical, tb, []string{"t"})
	if _, err := exec.Execute(exec.NewContext(), logical); err == nil {
		t.Fatal("expected non-executable error for logical node")
	}
}
