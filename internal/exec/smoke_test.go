package exec_test

import (
	"testing"

	"calcite/internal/exec"
	"calcite/internal/plan"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

func empTable() *schema.MemTable {
	rt := types.Row(
		types.Field{Name: "empid", Type: types.BigInt},
		types.Field{Name: "deptno", Type: types.BigInt},
		types.Field{Name: "sal", Type: types.Double},
	)
	return schema.NewMemTable("emps", rt, [][]any{
		{int64(1), int64(10), 1000.0},
		{int64(2), int64(10), 2000.0},
		{int64(3), int64(20), 1500.0},
		{int64(4), int64(20), 500.0},
		{int64(5), int64(30), 700.0},
	})
}

// TestVolcanoEndToEnd optimizes a logical filter+project+aggregate plan to
// the enumerable convention and executes it.
func TestVolcanoEndToEnd(t *testing.T) {
	emps := empTable()
	scan := rel.NewTableScan(trait.Logical, emps, []string{"emps"})
	filter := rel.NewFilter(scan, rex.NewCall(rex.OpGreater,
		rex.NewInputRef(2, types.Double), rex.Float(600)))
	agg := rel.NewAggregate(filter, []int{1}, []rex.AggCall{
		rex.NewAggCall(rex.AggCount, nil, false, "c"),
		rex.NewAggCall(rex.AggSum, []int{2}, false, "s"),
	})

	p := plan.NewVolcanoPlanner(exec.Rules()...)
	best, err := p.Optimize(agg, trait.Enumerable)
	if err != nil {
		t.Fatalf("Optimize: %v\nplan:\n%s", err, rel.Explain(agg))
	}
	rows, err := exec.Execute(exec.NewContext(), best)
	if err != nil {
		t.Fatalf("Execute: %v\nplan:\n%s", err, rel.Explain(best))
	}
	// deptno 10: 2 rows sum 3000; deptno 20: 1 row (1500); deptno 30: 1 row (700)
	want := map[int64][2]any{
		10: {int64(2), int64(3000)},
		20: {int64(1), int64(1500)},
		30: {int64(1), int64(700)},
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3: %v", len(rows), rows)
	}
	for _, r := range rows {
		w, ok := want[r[0].(int64)]
		if !ok {
			t.Fatalf("unexpected group %v", r)
		}
		if !types.ValuesEqual(r[1], w[0]) {
			t.Errorf("group %v count=%v want %v", r[0], r[1], w[0])
		}
		sum, _ := types.AsFloat(r[2])
		wsum, _ := types.AsFloat(w[1])
		if sum != wsum {
			t.Errorf("group %v sum=%v want %v", r[0], r[2], w[1])
		}
	}
}

// TestHepMatchesConcrete verifies a Hep pass applies exec conversion rules.
func TestHepMatchesConcrete(t *testing.T) {
	emps := empTable()
	scan := rel.NewTableScan(trait.Logical, emps, []string{"emps"})
	filter := rel.NewFilter(scan, rex.Bool(true))

	hp := plan.NewHepPlanner(exec.Rules()...)
	out := hp.Optimize(filter)
	rows, err := exec.Execute(exec.NewContext(), out)
	if err != nil {
		t.Fatalf("Execute after hep: %v\nplan:\n%s", err, rel.Explain(out))
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(rows))
	}
}
