package exec

// Operator tracing: when a query runs with a trace attached, BuildSpans
// creates one obs.Span per plan node and the central binders (BindBatch /
// BindNode) wrap each node's cursor so the span accumulates rows, batches
// and elapsed time. Wrapping happens only in the central dispatchers —
// operators that bind their children through direct method calls (exchange
// internals, morsel views) stay unwrapped, so every delivered row is counted
// exactly once per operator. Worker partitions of a parallel plan share the
// node's single span; its counters are atomic.

import (
	"strconv"
	"strings"
	"time"

	"calcite/internal/obs"
	"calcite/internal/rel"
	"calcite/internal/schema"
)

// BuildSpans attaches one span per plan node to the trace, mirroring the
// plan tree, and returns the node→span index the binders consult. The
// MemKey ties the span to the memory governor's per-operator reservation
// name (reservations drop the "Enumerable" convention prefix).
//
// Each span is also stamped with a stable operator path id mirroring the
// optimized plan's shape — "0" for the root, parent+"."+childIndex below —
// with rel.Synthetic nodes (exchanges, partial-aggregation stages inserted
// by the parallel rewrite) passing their position through to their single
// input, so a path computed on the optimized tree lands on the matching
// operator of the prepared tree. est (optional) maps path ids to the
// optimizer's row estimates; matching spans carry the estimate for EXPLAIN
// ANALYZE and the cardinality-feedback harvest.
func BuildSpans(tr *obs.QueryTrace, root rel.Node, est map[string]float64) map[rel.Node]*obs.Span {
	if tr == nil || root == nil {
		return nil
	}
	spans := make(map[rel.Node]*obs.Span)
	var build func(n rel.Node, parent *obs.Span, path string)
	build = func(n rel.Node, parent *obs.Span, path string) {
		sp := tr.NewSpan(parent, n.Op(), n.Attrs(), strings.TrimPrefix(n.Op(), "Enumerable"))
		spans[n] = sp
		if _, synthetic := n.(rel.Synthetic); synthetic {
			// A staging operator inherits no path of its own; its (single)
			// input occupies the position the synthetic node took over.
			for i, in := range n.Inputs() {
				p := ""
				if i == 0 {
					p = path
				}
				build(in, sp, p)
			}
			return
		}
		if path != "" {
			sp.SetEstimate(path, est[path])
		}
		for i, in := range n.Inputs() {
			p := ""
			if path != "" {
				p = path + "." + strconv.Itoa(i)
			}
			build(in, sp, p)
		}
	}
	build(root, nil, "0")
	return spans
}

// SpanFor returns the span attached to n, or nil when the query is untraced
// (every wrapper below tolerates nil).
func (ctx *Context) SpanFor(n rel.Node) *obs.Span {
	if ctx.Spans == nil {
		return nil
	}
	return ctx.Spans[n]
}

// TraceBatch wraps bc so sp accumulates the batches it delivers. Exported
// for the parallel binder, which wraps partition cursors of cloned
// (replicated) operators with the original node's span.
func TraceBatch(sp *obs.Span, bc schema.BatchCursor) schema.BatchCursor {
	if sp == nil {
		return bc
	}
	return &tracedBatchCursor{in: bc, sp: sp}
}

type tracedBatchCursor struct {
	in schema.BatchCursor
	sp *obs.Span
}

func (t *tracedBatchCursor) NextBatch() (*schema.Batch, error) {
	start := time.Now()
	b, err := t.in.NextBatch()
	if err != nil {
		t.sp.AddElapsed(time.Since(start))
		return b, err
	}
	t.sp.Record(int64(b.NumRows()), time.Since(start))
	return b, nil
}

func (t *tracedBatchCursor) Close() error { return t.in.Close() }

// traceRow wraps a row cursor so sp accumulates delivered rows. The row
// path skips per-row clock reads (they would dominate the per-row work);
// rows are counted locally and flushed to the span's atomic on Done/Close.
func traceRow(sp *obs.Span, cur schema.Cursor) schema.Cursor {
	if sp == nil {
		return cur
	}
	return &tracedRowCursor{in: cur, sp: sp}
}

type tracedRowCursor struct {
	in      schema.Cursor
	sp      *obs.Span
	pending int64
}

func (t *tracedRowCursor) Next() ([]any, error) {
	row, err := t.in.Next()
	if err != nil {
		t.flush()
		return row, err
	}
	t.pending++
	return row, nil
}

func (t *tracedRowCursor) flush() {
	if t.pending > 0 {
		t.sp.AddRows(t.pending)
		t.pending = 0
	}
}

func (t *tracedRowCursor) Close() error {
	t.flush()
	return t.in.Close()
}
