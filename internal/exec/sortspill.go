package exec

// External merge sort: the memory-governed sort path. Rows accumulate under
// a reservation; when a grant fails the buffered rows are stable-sorted and
// written out as one sorted run, and at the end the in-memory tail is
// k-way-merged with the on-disk runs. The merge breaks comparator ties by
// run index (runs are cut in arrival order, the in-memory tail is last), so
// the merged output is exactly the stable sort of the full input — spilling
// never changes row order.

import (
	"sort"

	"calcite/internal/memory"
	"calcite/internal/schema"
	"calcite/internal/types"
)

// spillWriteChunk is how many rows a spill writer encodes per batch.
const spillWriteChunk = 512

// mergeFanIn bounds how many runs one merge pass reads at once: a tiny
// budget can cut thousands of small runs, and opening a reader per run in
// a single k-way merge would exhaust file descriptors. Above the bound,
// runs cascade: groups of mergeFanIn merge into longer runs until one
// final merge fits.
const mergeFanIn = 64

// ExternalSorter accumulates rows within a memory reservation, overflowing
// to sorted runs on disk.
type ExternalSorter struct {
	ctx   *Context
	op    string
	res   *memory.Reservation
	cmp   func(a, b []any) int
	width int
	rows  [][]any
	runs  []*memory.Run
	// Total declares cmp a total order (no two distinct rows compare equal),
	// allowing the cheaper non-stable in-memory sort; the output is identical
	// because a total order leaves stability nothing to decide. The window
	// pipeline sets it — its comparators tie-break on unique row positions.
	Total bool
}

// sortBuf sorts the in-memory buffer.
func (s *ExternalSorter) sortBuf() {
	if s.Total {
		sort.Slice(s.rows, func(i, j int) bool { return s.cmp(s.rows[i], s.rows[j]) < 0 })
		return
	}
	sort.SliceStable(s.rows, func(i, j int) bool { return s.cmp(s.rows[i], s.rows[j]) < 0 })
}

// NewExternalSorter opens a sorter charging the context's allocator under
// the given operator tag. cmp must be a total order for the merge to be
// deterministic across spills (callers append position tiebreak columns
// when the collation alone is not total).
func NewExternalSorter(ctx *Context, op string, cmp func(a, b []any) int, width int) *ExternalSorter {
	return &ExternalSorter{
		ctx: ctx, op: op, res: memory.Reserve(ctx.Alloc, op), cmp: cmp, width: width,
	}
}

// Add buffers one row, spilling the buffer as a sorted run if the row's
// grant fails. If the grant fails again right after a spill (concurrent
// workers hold the rest of the budget), the row is accepted untracked: the
// debt is bounded — the next failing grant spills it — and starving one
// worker forever would deadlock progress, not save memory.
func (s *ExternalSorter) Add(row []any) error {
	if s.res == nil { // ungoverned: nothing to charge, nothing to spill
		s.rows = append(s.rows, row)
		return nil
	}
	sz := types.SizeOfRow(row)
	if err := s.res.Grow(sz); err != nil {
		if !s.res.SpillAllowed() {
			s.Abandon()
			return err
		}
		if len(s.rows) > 0 {
			if err := s.spill(); err != nil {
				s.Abandon()
				return err
			}
		}
		_ = s.res.Grow(sz) // best effort post-spill; proceed either way
	}
	s.rows = append(s.rows, row)
	return nil
}

// spill sorts the buffered rows and writes them out as one run.
func (s *ExternalSorter) spill() error {
	s.sortBuf()
	w, err := s.ctx.Alloc.NewRun(s.op)
	if err != nil {
		return err
	}
	for start := 0; start < len(s.rows); start += spillWriteChunk {
		end := start + spillWriteChunk
		if end > len(s.rows) {
			end = len(s.rows)
		}
		if err := w.WriteRows(s.rows[start:end], s.width); err != nil {
			w.Abandon()
			return err
		}
	}
	run, err := w.Finish()
	if err != nil {
		return err
	}
	s.runs = append(s.runs, run)
	s.res.NoteSpillEvent()
	s.rows = s.rows[:0]
	s.res.Shrink(s.res.Held())
	return nil
}

// Abandon releases the reservation and removes any runs (error paths; the
// allocator would also remove the files at query end).
func (s *ExternalSorter) Abandon() {
	for _, r := range s.runs {
		r.Remove()
	}
	s.runs = nil
	s.rows = nil
	s.res.Free()
}

// mergeRunsToRun merges a bounded group of sorted runs into one longer
// sorted run on disk (one cascade step). Ties break to the lowest run
// index, preserving global stability. The source runs are removed.
func (s *ExternalSorter) mergeRunsToRun(runs []*memory.Run) (*memory.Run, error) {
	readers := make([]*memory.RunReader, 0, len(runs))
	closeReaders := func() {
		for _, r := range readers {
			r.Close()
		}
	}
	sources := make([]rowSource, 0, len(runs))
	for _, run := range runs {
		rr, err := run.Open()
		if err != nil {
			closeReaders()
			return nil, err
		}
		readers = append(readers, rr)
		sources = append(sources, &cursorRowSource{cur: schema.RowCursorFromBatches(rr)})
	}
	m := &mergeRunsCursor{
		sources:   sources,
		cmp:       s.cmp,
		fetch:     -1,
		width:     s.width,
		batchSize: spillWriteChunk,
	}
	w, err := s.ctx.Alloc.NewRun(s.op)
	if err != nil {
		closeReaders()
		return nil, err
	}
	for {
		b, err := m.NextBatch()
		if err == schema.Done {
			break
		}
		if err != nil {
			closeReaders()
			w.Abandon()
			return nil, err
		}
		if werr := w.WriteBatch(b); werr != nil {
			closeReaders()
			w.Abandon()
			return nil, werr
		}
	}
	closeReaders()
	merged, err := w.Finish()
	if err != nil {
		return nil, err
	}
	for _, run := range runs {
		run.Remove()
	}
	return merged, nil
}

// cascadeRuns merges oversized run sets down to at most mergeFanIn runs, so
// the final k-way merge opens a bounded number of files. Merging
// left-to-right in groups keeps run order (and therefore stability). On
// error the sorter is abandoned.
func (s *ExternalSorter) cascadeRuns() error {
	for len(s.runs) > mergeFanIn {
		next := make([]*memory.Run, 0, (len(s.runs)+mergeFanIn-1)/mergeFanIn)
		for start := 0; start < len(s.runs); start += mergeFanIn {
			end := start + mergeFanIn
			if end > len(s.runs) {
				end = len(s.runs)
			}
			if end-start == 1 {
				next = append(next, s.runs[start])
				continue
			}
			merged, err := s.mergeRunsToRun(s.runs[start:end])
			if err != nil {
				s.runs = append(next, s.runs[start:]...)
				s.Abandon()
				return err
			}
			next = append(next, merged)
		}
		s.runs = next
	}
	return nil
}

// Finish sorts whatever remains in memory and returns the merged, sorted
// output with offset/fetch applied (fetch < 0 = unlimited).
func (s *ExternalSorter) Finish(offset, fetch int64, batchSize int) (schema.BatchCursor, error) {
	s.sortBuf()
	if err := s.cascadeRuns(); err != nil {
		return nil, err
	}
	if len(s.runs) == 0 {
		rows := s.rows
		if offset > 0 {
			if offset >= int64(len(rows)) {
				rows = nil
			} else {
				rows = rows[offset:]
			}
		}
		if fetch >= 0 && fetch < int64(len(rows)) {
			rows = rows[:fetch]
		}
		return &closingBatchCursor{
			BatchCursor: batchesFromRows(rows, s.width, batchSize),
			close:       s.res.Free,
		}, nil
	}
	// Open every run plus the in-memory tail as sorted sources.
	sources := make([]rowSource, 0, len(s.runs)+1)
	readers := make([]*memory.RunReader, 0, len(s.runs))
	for _, run := range s.runs {
		rr, err := run.Open()
		if err != nil {
			for _, r := range readers {
				r.Close()
			}
			s.Abandon()
			return nil, err
		}
		readers = append(readers, rr)
		sources = append(sources, &cursorRowSource{cur: schema.RowCursorFromBatches(rr)})
	}
	sources = append(sources, &sliceRowSource{rows: s.rows})
	runs, res := s.runs, s.res
	return &mergeRunsCursor{
		sources:   sources,
		cmp:       s.cmp,
		offset:    offset,
		fetch:     fetch,
		width:     s.width,
		batchSize: batchSize,
		close: func() {
			for _, r := range readers {
				r.Close()
			}
			for _, r := range runs {
				r.Remove()
			}
			res.Free()
		},
	}, nil
}

// FinishStream is Finish for row-at-a-time consumers (the window pipeline's
// stages feed each other rows): it returns the merged sorted output as a row
// iterator — next yields nil at the end — skipping the batch round-trip.
// close releases the reservation and removes any runs; it must be called on
// every path once FinishStream succeeds.
func (s *ExternalSorter) FinishStream() (next func() ([]any, error), close func(), err error) {
	s.sortBuf()
	if err := s.cascadeRuns(); err != nil {
		return nil, nil, err
	}
	if len(s.runs) == 0 {
		rows := s.rows
		pos := 0
		res := s.res
		return func() ([]any, error) {
			if pos >= len(rows) {
				return nil, nil
			}
			row := rows[pos]
			rows[pos] = nil
			pos++
			// Hand the charge off with the row: the downstream stage charges
			// it as it arrives, so the pipeline's peak stays ~one copy of the
			// input instead of two (which would spill at half the budget).
			if res != nil {
				res.Shrink(types.SizeOfRow(row))
			}
			return row, nil
		}, res.Free, nil
	}
	sources := make([]rowSource, 0, len(s.runs)+1)
	readers := make([]*memory.RunReader, 0, len(s.runs))
	for _, run := range s.runs {
		rr, err := run.Open()
		if err != nil {
			for _, r := range readers {
				r.Close()
			}
			s.Abandon()
			return nil, nil, err
		}
		readers = append(readers, rr)
		sources = append(sources, &cursorRowSource{cur: schema.RowCursorFromBatches(rr)})
	}
	sources = append(sources, &sliceRowSource{rows: s.rows})
	m := &mergeRunsCursor{sources: sources, cmp: s.cmp, fetch: -1, width: s.width}
	runs, res := s.runs, s.res
	return m.next, func() {
		for _, r := range readers {
			r.Close()
		}
		for _, r := range runs {
			r.Remove()
		}
		res.Free()
	}, nil
}

// rowSource is one sorted input of the merge.
type rowSource interface {
	next() ([]any, error) // nil row at end
}

type sliceRowSource struct {
	rows [][]any
	pos  int
}

func (s *sliceRowSource) next() ([]any, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

type cursorRowSource struct{ cur schema.Cursor }

func (s *cursorRowSource) next() ([]any, error) {
	row, err := s.cur.Next()
	if err == schema.Done {
		return nil, nil
	}
	return row, err
}

// mergeRunsCursor k-way-merges sorted sources (ties to the lowest source
// index, which preserves global stability) into batches, applying
// offset/fetch.
type mergeRunsCursor struct {
	sources []rowSource
	heads   [][]any
	primed  bool
	cmp     func(a, b []any) int

	offset, fetch int64
	skipped       int64
	emitted       int64
	width         int
	batchSize     int
	seq           int64
	done          bool
	close         func()
}

func (m *mergeRunsCursor) next() ([]any, error) {
	if !m.primed {
		m.heads = make([][]any, len(m.sources))
		for i, src := range m.sources {
			row, err := src.next()
			if err != nil {
				return nil, err
			}
			m.heads[i] = row
		}
		m.primed = true
	}
	best := -1
	for i, h := range m.heads {
		if h == nil {
			continue
		}
		if best < 0 || m.cmp(h, m.heads[best]) < 0 {
			best = i
		}
	}
	if best < 0 {
		return nil, nil
	}
	row := m.heads[best]
	nxt, err := m.sources[best].next()
	if err != nil {
		return nil, err
	}
	m.heads[best] = nxt
	return row, nil
}

func (m *mergeRunsCursor) NextBatch() (*schema.Batch, error) {
	if m.done {
		return nil, schema.Done
	}
	var out [][]any
	for len(out) < m.batchSize {
		if m.fetch >= 0 && m.emitted >= m.fetch {
			break
		}
		row, err := m.next()
		if err != nil {
			m.Close()
			return nil, err
		}
		if row == nil {
			break
		}
		if m.skipped < m.offset {
			m.skipped++
			continue
		}
		out = append(out, row)
		m.emitted++
	}
	if len(out) == 0 {
		m.Close()
		return nil, schema.Done
	}
	b := schema.BatchFromRows(out, m.width)
	b.Seq = m.seq
	m.seq++
	return b, nil
}

func (m *mergeRunsCursor) Close() error {
	if m.done {
		return nil
	}
	m.done = true
	if m.close != nil {
		m.close()
	}
	return nil
}

// closingBatchCursor runs a hook when the cursor closes (reservation
// release, run removal).
type closingBatchCursor struct {
	schema.BatchCursor
	close func()
}

func (c *closingBatchCursor) Close() error {
	err := c.BatchCursor.Close()
	if c.close != nil {
		c.close()
		c.close = nil
	}
	return err
}
