package exec

// Grace/hybrid hash join: the memory-governed join path. The build side is
// drained under a reservation; while it fits, the join degenerates to the
// classic in-memory hash join with a streaming probe. When the build grant
// is exhausted mid-drain, the join switches to Grace mode: both sides are
// hash-partitioned to disk (the rows already in memory are flushed first),
// and each partition is then joined independently — recursively
// re-partitioned with a different hash seed if it still does not fit.
// Every join kind is supported: unmatched-build tracking (right/full) is
// per partition, which is sound because partitioning covers every build row
// exactly once.

import (
	"calcite/internal/memory"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/types"
)

const (
	// gracePartitions is the fan-out of one partitioning pass.
	gracePartitions = 8
	// graceMaxDepth bounds recursive re-partitioning. A partition that still
	// exceeds the grant at max depth (pathological key skew: one giant key
	// group) is processed in memory anyway — the budget is a governance
	// target, and proceeding degraded beats failing a query that spilling
	// was meant to save.
	graceMaxDepth = 3
	// joinRowOverhead approximates the hash-table cost of one build row
	// beyond the row itself (map entry, candidate-list slot, key string).
	joinRowOverhead = 64
)

// joinSpec carries the static shape of a hash join shared by the in-memory
// and Grace paths.
type joinSpec struct {
	kind       rel.JoinKind
	info       JoinInfo
	leftWidth  int
	rightWidth int
	emitRight  bool
	residual   func(row []any) (bool, error)
}

func newJoinSpec(ctx *Context, j *HashJoin) *joinSpec {
	spec := &joinSpec{
		kind:       j.Kind,
		info:       j.Info,
		leftWidth:  rel.FieldCount(j.Left()),
		rightWidth: rel.FieldCount(j.Right()),
		emitRight:  j.Kind != rel.SemiJoin && j.Kind != rel.AntiJoin,
	}
	if j.Info.Residual != nil {
		if fn, err := rex.CompileBool(j.Info.Residual); err == nil {
			spec.residual = fn
		} else {
			ev := ctx.Evaluator
			cond := j.Info.Residual
			spec.residual = func(row []any) (bool, error) { return ev.EvalBool(cond, row) }
		}
	}
	return spec
}

func (s *joinSpec) outWidth() int {
	if s.emitRight {
		return s.leftWidth + s.rightWidth
	}
	return s.leftWidth
}

// BindBatch executes the hash join with a streaming probe: the build
// (right) side is drained into a hash table — spilling to Grace partitions
// when the memory grant runs out — then probe batches stream through,
// emitting one output batch per probe batch. Unmatched build rows
// (right/full joins) follow after the probe is exhausted.
func (j *HashJoin) BindBatch(ctx *Context) (schema.BatchCursor, error) {
	spec := newJoinSpec(ctx, j)
	res := memory.Reserve(ctx.Alloc, "HashJoin")

	buildBC, err := BindBatch(ctx, j.Right())
	if err != nil {
		return nil, err
	}
	var buildRows [][]any
	overflow := false
drain:
	for {
		b, err := buildBC.NextBatch()
		if err == schema.Done {
			break
		}
		if err != nil {
			buildBC.Close()
			res.Free()
			return nil, err
		}
		n := b.NumRows()
		for i := 0; i < n; i++ {
			row := b.Row(i)
			if err := res.Grow(types.SizeOfRow(row) + joinRowOverhead); err != nil {
				if !res.SpillAllowed() {
					buildBC.Close()
					res.Free()
					return nil, err
				}
				// Keep the whole current batch: the Grace path takes over
				// from the *next* batch of the build cursor.
				for ; i < n; i++ {
					buildRows = append(buildRows, b.Row(i))
				}
				overflow = true
				break drain
			}
			buildRows = append(buildRows, row)
		}
	}
	if !overflow {
		buildBC.Close()
		j.noteBuildOvershoot(ctx)
		probeBC, err := BindBatch(ctx, j.Left())
		if err != nil {
			res.Free()
			return nil, err
		}
		return newHashProbeCursor(spec, buildRows, probeBC, res.Free), nil
	}
	cur, err := bindGraceJoin(ctx, j, spec, res, buildRows, buildBC)
	if err == nil {
		// The Grace path drains the rest of the build stream into partitions
		// at bind time, so the build child's span rows are complete here too.
		j.noteBuildOvershoot(ctx)
	}
	return cur, err
}

// noteBuildOvershoot reports the build side's actual vs estimated rows to
// the feedback hook once the build is fully drained. The hook (and the
// estimate, stamped on the build child's span) exists only on traced
// executions with feedback enabled; thresholds live in the feedback store.
func (j *HashJoin) noteBuildOvershoot(ctx *Context) {
	if ctx.BuildOvershoot == nil {
		return
	}
	sp := ctx.SpanFor(j.Right())
	if sp == nil {
		return
	}
	if est := sp.EstRows(); est > 0 {
		if actual := float64(sp.Rows()); actual > est {
			ctx.BuildOvershoot(j, est, actual)
		}
	}
}

// --- in-memory probe ---

// hashProbeCursor probes a completed build table with streaming input
// batches. done (optional) runs exactly once when the cursor finishes or
// closes.
type hashProbeCursor struct {
	spec      *joinSpec
	rows      [][]any
	table     *joinTable
	buildCols [][]any          // lazy columnar transpose of rows (boxed output)
	buildVecs []*schema.Vector // same transpose, typed (kernel output)
	matched   []bool           // build rows matched so far (right/full)
	probe     schema.BatchCursor
	dense     []int32
	gatherL   []int32 // scratch: probe row per output row
	gatherR   []int32 // scratch: build ordinal per output row (-1 = NULL pad)
	combined  []any
	seq       int64
	tailSent  bool
	closed    bool
	done      func()
}

func newHashProbeCursor(spec *joinSpec, buildRows [][]any, probe schema.BatchCursor, done func()) *hashProbeCursor {
	c := &hashProbeCursor{spec: spec, rows: buildRows, table: buildJoinTable(buildRows, spec.info.RightKeys), probe: probe, done: done}
	if spec.kind == rel.RightJoin || spec.kind == rel.FullJoin {
		c.matched = make([]bool, len(buildRows))
	}
	return c
}

func (c *hashProbeCursor) finish() {
	if c.closed {
		return
	}
	c.closed = true
	c.probe.Close()
	if c.done != nil {
		c.done()
		c.done = nil
	}
}

func (c *hashProbeCursor) NextBatch() (*schema.Batch, error) {
	if c.closed {
		return nil, schema.Done
	}
	spec := c.spec
	for {
		b, err := c.probe.NextBatch()
		if err == schema.Done {
			break
		}
		if err != nil {
			c.finish()
			return nil, err
		}
		out, err := c.probeBatch(b)
		if err != nil {
			c.finish()
			return nil, err
		}
		if out != nil {
			return out, nil
		}
	}
	// Probe exhausted: emit unmatched build rows for right/full joins.
	if c.matched != nil && !c.tailSent {
		c.tailSent = true
		outCols := make([][]any, spec.outWidth())
		nRows := 0
		nullLeft := make([]any, spec.leftWidth)
		for ri, row := range c.rows {
			if c.matched[ri] {
				continue
			}
			for col := 0; col < spec.leftWidth; col++ {
				outCols[col] = append(outCols[col], nullLeft[col])
			}
			for col := 0; col < spec.rightWidth; col++ {
				outCols[spec.leftWidth+col] = append(outCols[spec.leftWidth+col], row[col])
			}
			nRows++
		}
		if nRows > 0 {
			b := &schema.Batch{Len: nRows, Cols: outCols, Seq: c.seq}
			c.seq++
			return b, nil
		}
	}
	c.finish()
	return nil, schema.Done
}

// probeBatch joins one probe batch against the table; a nil batch means no
// output rows (caller keeps pulling).
func (c *hashProbeCursor) probeBatch(b *schema.Batch) (*schema.Batch, error) {
	spec := c.spec
	// BoxedCols is deferred: a typed probe batch with a typed single-column
	// key never needs the boxed windows unless a residual runs.
	var cols [][]any
	boxed := func() [][]any {
		if cols == nil {
			cols = b.BoxedCols()
		}
		return cols
	}
	// Pass 1 records the output as (probe row, build ordinal) pairs — a
	// build ordinal of -1 is the outer-join NULL pad — so pass 2 can gather
	// whole columns at once instead of appending boxed values row by row.
	gl := c.gatherL[:0]
	gr := c.gatherR[:0]
	if c.combined == nil {
		c.combined = make([]any, spec.leftWidth+spec.rightWidth)
	}
	var sel []int32
	sel, c.dense = liveSel(b, c.dense)
	var keyVec *schema.Vector
	if c.table.single != nil && b.Vecs != nil {
		keyVec = b.Vecs[spec.info.LeftKeys[0]]
	}
	for _, li := range sel {
		l := int(li)
		var candidates []int32
		if keyVec != nil {
			candidates = c.table.probeVec(keyVec, l)
		} else if !colsHaveNullAt(boxed(), l, spec.info.LeftKeys) {
			candidates = c.table.probeCols(cols, l, spec.info.LeftKeys)
		}
		matched := false
		for _, ri := range candidates {
			if spec.residual != nil {
				bc := boxed()
				for col := 0; col < spec.leftWidth; col++ {
					c.combined[col] = bc[col][l]
				}
				copy(c.combined[spec.leftWidth:], c.rows[ri])
				ok, err := spec.residual(c.combined)
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			matched = true
			if c.matched != nil {
				c.matched[ri] = true
			}
			if spec.kind == rel.SemiJoin || spec.kind == rel.AntiJoin {
				break
			}
			gl = append(gl, li)
			gr = append(gr, ri)
		}
		switch spec.kind {
		case rel.SemiJoin:
			if matched {
				gl = append(gl, li)
				gr = append(gr, -1)
			}
		case rel.AntiJoin:
			if !matched {
				gl = append(gl, li)
				gr = append(gr, -1)
			}
		case rel.LeftJoin, rel.FullJoin:
			if !matched {
				gl = append(gl, li)
				gr = append(gr, -1)
			}
		}
	}
	c.gatherL, c.gatherR = gl, gr
	nRows := len(gl)
	if nRows == 0 {
		return nil, nil
	}
	out := &schema.Batch{Len: nRows, Seq: c.seq}
	c.seq++
	// Pass 2: typed probe batches gather straight into typed output vectors
	// (the build rows transpose into columns once, on first use). When the
	// probe batch also carries boxed windows, gather those too: the boxed
	// copies are shared interface values — no re-boxing for row-at-a-time
	// consumers downstream. Boxed-only probes keep boxed output columns.
	if spec.emitRight && c.buildCols == nil {
		c.buildCols, c.buildVecs = transposeBuild(c.rows, spec.rightWidth)
	}
	if b.Vecs != nil {
		vecs := make([]*schema.Vector, spec.outWidth())
		var outCols [][]any
		if b.Cols != nil {
			outCols = make([][]any, spec.outWidth())
		}
		for col := 0; col < spec.leftWidth; col++ {
			vecs[col] = b.Vecs[col].Gather(gl)
			if outCols != nil {
				outCols[col] = gatherAny(b.Cols[col], gl)
			}
		}
		if spec.emitRight {
			for col := 0; col < spec.rightWidth; col++ {
				vecs[spec.leftWidth+col] = c.buildVecs[col].GatherOrd(gr)
				if outCols != nil {
					outCols[spec.leftWidth+col] = gatherAnyOrd(c.buildCols[col], gr)
				}
			}
		}
		out.Vecs = vecs
		out.Cols = outCols
		return out, nil
	}
	bc := boxed()
	outCols := make([][]any, spec.outWidth())
	for col := 0; col < spec.leftWidth; col++ {
		outCols[col] = gatherAny(bc[col], gl)
	}
	if spec.emitRight {
		for col := 0; col < spec.rightWidth; col++ {
			dst := make([]any, nRows)
			for i, ri := range gr {
				if ri >= 0 {
					dst[i] = c.rows[ri][col]
				}
			}
			outCols[spec.leftWidth+col] = dst
		}
	}
	out.Cols = outCols
	return out, nil
}

// transposeBuild pivots the row-major build side into columnar form for
// gather-based join output: boxed columns (sharing the build rows' values)
// plus their typed vectors.
func transposeBuild(rows [][]any, width int) ([][]any, []*schema.Vector) {
	cols := make([][]any, width)
	vecs := make([]*schema.Vector, width)
	for c := 0; c < width; c++ {
		col := make([]any, len(rows))
		for i, row := range rows {
			col[i] = row[c]
		}
		cols[c] = col
		vecs[c] = schema.BuildVector(col, schema.VecAny)
	}
	return cols, vecs
}

// gatherAny gathers boxed values by row index.
func gatherAny(src []any, sel []int32) []any {
	dst := make([]any, len(sel))
	for i, r := range sel {
		dst[i] = src[r]
	}
	return dst
}

// gatherAnyOrd is gatherAny with NULL injection for negative ordinals.
func gatherAnyOrd(src []any, ords []int32) []any {
	dst := make([]any, len(ords))
	for i, r := range ords {
		if r >= 0 {
			dst[i] = src[r]
		}
	}
	return dst
}

func (c *hashProbeCursor) Close() error {
	c.finish()
	return nil
}

// --- Grace partitioning ---

// partitionWriter spreads rows across the spill partitions of one pass,
// buffering a small chunk per partition between codec writes.
type partitionWriter struct {
	writers []*memory.RunWriter
	bufs    [][][]any
	keys    []int
	seed    int
	width   int
}

func newPartitionWriter(alloc *memory.Allocator, op string, keys []int, seed, width int) (*partitionWriter, error) {
	pw := &partitionWriter{
		writers: make([]*memory.RunWriter, gracePartitions),
		bufs:    make([][][]any, gracePartitions),
		keys:    keys,
		seed:    seed,
		width:   width,
	}
	for i := range pw.writers {
		w, err := alloc.NewRun(op)
		if err != nil {
			pw.abandon()
			return nil, err
		}
		pw.writers[i] = w
	}
	return pw, nil
}

func (pw *partitionWriter) add(row []any) error {
	// NULL-inclusive routing: unlike a join's match key, partitioning must
	// place NULL-key rows too (they are emitted by outer joins).
	p := memory.Partition(types.HashRowKey(row, pw.keys), gracePartitions, pw.seed)
	pw.bufs[p] = append(pw.bufs[p], row)
	if len(pw.bufs[p]) >= spillWriteChunk {
		return pw.flush(p)
	}
	return nil
}

func (pw *partitionWriter) flush(p int) error {
	if len(pw.bufs[p]) == 0 {
		return nil
	}
	err := pw.writers[p].WriteRows(pw.bufs[p], pw.width)
	pw.bufs[p] = pw.bufs[p][:0]
	return err
}

// finish flushes all buffers and returns the finished runs.
func (pw *partitionWriter) finish() ([]*memory.Run, error) {
	runs := make([]*memory.Run, gracePartitions)
	for p := range pw.writers {
		if err := pw.flush(p); err != nil {
			pw.abandon()
			return nil, err
		}
		run, err := pw.writers[p].Finish()
		pw.writers[p] = nil
		if err != nil {
			pw.abandon()
			return nil, err
		}
		runs[p] = run
	}
	return runs, nil
}

func (pw *partitionWriter) abandon() {
	for _, w := range pw.writers {
		if w != nil {
			w.Abandon()
		}
	}
}

// drainToPartitions routes every remaining row of a batch cursor into pw.
func drainToPartitions(pw *partitionWriter, bc schema.BatchCursor) error {
	defer bc.Close()
	for {
		b, err := bc.NextBatch()
		if err == schema.Done {
			return nil
		}
		if err != nil {
			return err
		}
		n := b.NumRows()
		for i := 0; i < n; i++ {
			if err := pw.add(b.Row(i)); err != nil {
				return err
			}
		}
	}
}

// joinPartition is one pending unit of Grace work: matching build/probe
// runs at a recursion depth.
type joinPartition struct {
	build, probe *memory.Run
	depth        int
}

// bindGraceJoin partitions both sides to disk and returns a cursor that
// joins the partitions one at a time.
func bindGraceJoin(ctx *Context, j *HashJoin, spec *joinSpec, res *memory.Reservation,
	buffered [][]any, buildBC schema.BatchCursor) (schema.BatchCursor, error) {
	fail := func(err error) (schema.BatchCursor, error) {
		buildBC.Close()
		res.Free()
		return nil, err
	}
	res.NoteSpillEvent()
	// Build side: flush the rows drained so far, then the rest of the
	// stream.
	buildPW, err := newPartitionWriter(ctx.Alloc, "HashJoin", spec.info.RightKeys, 0, spec.rightWidth)
	if err != nil {
		return fail(err)
	}
	for _, row := range buffered {
		if err := buildPW.add(row); err != nil {
			buildPW.abandon()
			return fail(err)
		}
	}
	res.Shrink(res.Held())
	if err := drainToPartitions(buildPW, buildBC); err != nil {
		buildPW.abandon()
		res.Free()
		return nil, err
	}
	buildRuns, err := buildPW.finish()
	if err != nil {
		res.Free()
		return nil, err
	}
	// Probe side: fully partitioned to disk before any partition is joined.
	probeBC, err := BindBatch(ctx, j.Left())
	if err != nil {
		res.Free()
		return nil, err
	}
	probePW, err := newPartitionWriter(ctx.Alloc, "HashJoin", spec.info.LeftKeys, 0, spec.leftWidth)
	if err != nil {
		probeBC.Close()
		res.Free()
		return nil, err
	}
	if err := drainToPartitions(probePW, probeBC); err != nil {
		probePW.abandon()
		res.Free()
		return nil, err
	}
	probeRuns, err := probePW.finish()
	if err != nil {
		res.Free()
		return nil, err
	}
	parts := make([]joinPartition, 0, gracePartitions)
	for p := 0; p < gracePartitions; p++ {
		parts = append(parts, joinPartition{build: buildRuns[p], probe: probeRuns[p], depth: 1})
	}
	return &graceJoinCursor{ctx: ctx, spec: spec, res: res, parts: parts}, nil
}

// graceJoinCursor joins spilled partitions one at a time, re-partitioning
// any whose build side still exceeds the grant.
type graceJoinCursor struct {
	ctx   *Context
	spec  *joinSpec
	res   *memory.Reservation
	parts []joinPartition
	cur   *hashProbeCursor
	seq   int64
	done  bool
}

func (g *graceJoinCursor) NextBatch() (*schema.Batch, error) {
	for {
		if g.done {
			return nil, schema.Done
		}
		if g.cur != nil {
			b, err := g.cur.NextBatch()
			if err == nil {
				b.Seq = g.seq
				g.seq++
				return b, nil
			}
			g.cur = nil
			if err != schema.Done {
				g.fail()
				return nil, err
			}
		}
		if len(g.parts) == 0 {
			g.Close()
			return nil, schema.Done
		}
		part := g.parts[0]
		g.parts = g.parts[1:]
		if err := g.startPartition(part); err != nil {
			g.fail()
			return nil, err
		}
	}
}

// startPartition loads one partition's build rows (re-partitioning on
// overflow below max depth) and opens its probe stream.
func (g *graceJoinCursor) startPartition(part joinPartition) error {
	if part.build.Rows() == 0 && part.probe.Rows() == 0 {
		g.removePart(part)
		return nil
	}
	rr, err := part.build.Open()
	if err != nil {
		return err
	}
	var rows [][]any
	overflowed := false
	for {
		b, err := rr.NextBatch()
		if err == schema.Done {
			break
		}
		if err != nil {
			rr.Close()
			return err
		}
		n := b.NumRows()
		for i := 0; i < n; i++ {
			row := b.Row(i)
			if !overflowed {
				if gerr := g.res.Grow(types.SizeOfRow(row) + joinRowOverhead); gerr != nil {
					if part.depth < graceMaxDepth {
						rr.Close()
						return g.repartition(part, rows)
					}
					// Max depth: this key range will not subdivide (skewed
					// keys). Proceed in memory; the planner's budget becomes
					// best-effort for this partition.
					overflowed = true
				}
			}
			rows = append(rows, row)
		}
	}
	rr.Close()
	probeReader, err := part.probe.Open()
	if err != nil {
		return err
	}
	held := g.res.Held()
	res := g.res
	g.cur = newHashProbeCursor(g.spec, rows, probeReader, func() {
		res.Shrink(held)
		part.build.Remove()
		part.probe.Remove()
	})
	return nil
}

// repartition splits an oversized partition into sub-partitions under the
// next hash seed and queues them ahead of the remaining work.
func (g *graceJoinCursor) repartition(part joinPartition, loaded [][]any) error {
	g.res.Shrink(g.res.Held())
	g.res.NoteSpillEvent()
	seed := part.depth
	buildPW, err := newPartitionWriter(g.ctx.Alloc, "HashJoin", g.spec.info.RightKeys, seed, g.spec.rightWidth)
	if err != nil {
		return err
	}
	for _, row := range loaded {
		if err := buildPW.add(row); err != nil {
			buildPW.abandon()
			return err
		}
	}
	rr, err := part.build.Open()
	if err != nil {
		buildPW.abandon()
		return err
	}
	// Skip the rows already loaded (they were re-added above); the reader
	// replays the run from the start, so skip loaded-count rows.
	if err := skipThenPartition(rr, int64(len(loaded)), buildPW); err != nil {
		buildPW.abandon()
		return err
	}
	buildRuns, err := buildPW.finish()
	if err != nil {
		return err
	}
	probePW, err := newPartitionWriter(g.ctx.Alloc, "HashJoin", g.spec.info.LeftKeys, seed, g.spec.leftWidth)
	if err != nil {
		return err
	}
	pr, err := part.probe.Open()
	if err != nil {
		probePW.abandon()
		return err
	}
	if err := skipThenPartition(pr, 0, probePW); err != nil {
		probePW.abandon()
		return err
	}
	probeRuns, err := probePW.finish()
	if err != nil {
		return err
	}
	part.build.Remove()
	part.probe.Remove()
	sub := make([]joinPartition, 0, gracePartitions)
	for p := 0; p < gracePartitions; p++ {
		sub = append(sub, joinPartition{build: buildRuns[p], probe: probeRuns[p], depth: part.depth + 1})
	}
	g.parts = append(sub, g.parts...)
	return nil
}

// skipThenPartition replays a run reader into a partition writer, skipping
// the first skip rows.
func skipThenPartition(rr *memory.RunReader, skip int64, pw *partitionWriter) error {
	defer rr.Close()
	var seen int64
	for {
		b, err := rr.NextBatch()
		if err == schema.Done {
			return nil
		}
		if err != nil {
			return err
		}
		n := b.NumRows()
		for i := 0; i < n; i++ {
			if seen < skip {
				seen++
				continue
			}
			if err := pw.add(b.Row(i)); err != nil {
				return err
			}
		}
	}
}

func (g *graceJoinCursor) removePart(part joinPartition) {
	part.build.Remove()
	part.probe.Remove()
}

func (g *graceJoinCursor) fail() {
	g.done = true
	if g.cur != nil {
		g.cur.Close()
		g.cur = nil
	}
	for _, p := range g.parts {
		g.removePart(p)
	}
	g.parts = nil
	g.res.Free()
}

func (g *graceJoinCursor) Close() error {
	if !g.done {
		g.fail()
	}
	return nil
}
