// Package exec implements the enumerable calling convention of §5 of the
// paper: physical relational operators that "simply operate over tuples via
// an iterator interface". The enumerable convention is how Calcite executes
// operators that are not available in an adapter's backend — e.g. joining
// rows collected from two different engines — and is the default execution
// target of the framework.
//
// Every operator here is a rel.Node in the trait.Enumerable convention that
// additionally implements Bound: it can produce a cursor over its rows.
package exec

import (
	"fmt"

	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
)

// Context carries per-query execution state.
type Context struct {
	// Evaluator evaluates row expressions (holds prepared-statement
	// parameters).
	Evaluator *rex.Evaluator
}

// NewContext returns an execution context with no parameters.
func NewContext() *Context { return &Context{Evaluator: &rex.Evaluator{}} }

// Bound is a relational expression that can be executed: binding it yields a
// cursor over its output rows.
type Bound interface {
	rel.Node
	Bind(ctx *Context) (schema.Cursor, error)
}

// Execute binds root and drains it into a row slice.
func Execute(ctx *Context, root rel.Node) ([][]any, error) {
	cur, err := BindNode(ctx, root)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	var out [][]any
	for {
		row, err := cur.Next()
		if err == schema.Done {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
}

// BindNode binds a plan node, reporting a clear error for unexecutable
// (non-enumerable) nodes.
func BindNode(ctx *Context, n rel.Node) (schema.Cursor, error) {
	b, ok := n.(Bound)
	if !ok {
		return nil, fmt.Errorf("exec: plan node %s is not executable (convention %s); optimize to the enumerable convention first",
			n.Op(), n.Traits().String())
	}
	return b.Bind(ctx)
}

// funcCursor adapts functions to schema.Cursor.
type funcCursor struct {
	next  func() ([]any, error)
	close func() error
}

func (c *funcCursor) Next() ([]any, error) { return c.next() }
func (c *funcCursor) Close() error {
	if c.close != nil {
		return c.close()
	}
	return nil
}

// drain materializes all rows of a cursor and closes it.
func drain(cur schema.Cursor) ([][]any, error) {
	defer cur.Close()
	var rows [][]any
	for {
		row, err := cur.Next()
		if err == schema.Done {
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
}
