// Package exec implements the enumerable calling convention of §5 of the
// paper: physical relational operators that "simply operate over tuples via
// an iterator interface". The enumerable convention is how Calcite executes
// operators that are not available in an adapter's backend — e.g. joining
// rows collected from two different engines — and is the default execution
// target of the framework.
//
// Every operator here is a rel.Node in the trait.Enumerable convention that
// additionally implements Bound: it can produce a cursor over its rows.
package exec

import (
	"errors"
	"fmt"
	"sync/atomic"

	"calcite/internal/memory"
	"calcite/internal/obs"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
)

// ErrCanceled reports that a query was interrupted through its context's
// Interrupt flag (client cancel, server shutdown).
var ErrCanceled = errors.New("exec: query canceled")

// Context carries per-query execution state.
type Context struct {
	// Evaluator evaluates row expressions (holds prepared-statement
	// parameters).
	Evaluator *rex.Evaluator
	// BatchMode routes execution through the vectorized batch convention:
	// operators that implement BatchBound exchange column-major batches and
	// evaluate compiled expressions; the rest run row-at-a-time behind the
	// batch/row shims. Disable to force the row-at-a-time interpreter path
	// (debugging, and the baseline of the row-vs-batch benchmarks).
	BatchMode bool
	// BatchSize overrides the rows-per-batch granularity; <= 0 uses
	// schema.DefaultBatchSize.
	BatchSize int
	// Alloc is the query's memory account. Memory-hungry operators (sort,
	// hash join, aggregate, window) charge their retained state against it
	// and spill to disk when a grant fails; every worker partition of a
	// parallel plan charges the same allocator. A nil Alloc means the query
	// is ungoverned: grants always succeed, nothing is tracked, nothing
	// spills.
	Alloc *memory.Allocator
	// WindowRecompute forces the window operator's O(n·frame) per-frame
	// recompute path instead of incremental frame maintenance — the A/B
	// baseline of the window benchmarks.
	WindowRecompute bool
	// Trace is the query's trace (nil when untraced); Spans indexes its
	// per-operator spans by plan node, built by BuildSpans. The central
	// binders consult Spans to wrap cursors with counting wrappers; both
	// fields nil means tracing adds no per-batch work.
	Trace *obs.QueryTrace
	Spans map[rel.Node]*obs.Span
	// BuildOvershoot, when non-nil, is invoked by the serial hash join after
	// its build side is fully drained with more actual rows than the build
	// child's estimate (span EstRows). The framework's feedback layer uses
	// the signal to record the overshoot and swap build/probe sides on the
	// next planning of the statement.
	BuildOvershoot func(join rel.Node, estRows, actualRows float64)
	// Interrupt, when non-nil and set, interrupts execution cooperatively:
	// the drain loops and long-running operators (streaming aggregation)
	// check it between rows/batches and fail with ErrCanceled. The serving
	// tier arms it for client cancellation and disconnects.
	Interrupt *atomic.Bool
}

// Interrupted reports whether the query's interrupt flag is set.
func (ctx *Context) Interrupted() bool {
	return ctx != nil && ctx.Interrupt != nil && ctx.Interrupt.Load()
}

// NewContext returns an execution context with no parameters. Batch mode is
// the default execution path.
func NewContext() *Context { return &Context{Evaluator: &rex.Evaluator{}, BatchMode: true} }

// NewRowContext returns a context that forces the row-at-a-time path.
func NewRowContext() *Context { return &Context{Evaluator: &rex.Evaluator{}} }

func (ctx *Context) batchSize() int {
	if ctx.BatchSize > 0 {
		return ctx.BatchSize
	}
	return schema.DefaultBatchSize
}

// Bound is a relational expression that can be executed: binding it yields a
// cursor over its output rows.
type Bound interface {
	rel.Node
	Bind(ctx *Context) (schema.Cursor, error)
}

// Execute binds root and drains it into a row slice.
func Execute(ctx *Context, root rel.Node) ([][]any, error) {
	// A batch-capable root drains column-major; a row-only root drains its
	// row cursor directly (its batch-capable subtree still binds vectorized
	// through BindNode), avoiding a pointless rows→batches→rows roundtrip.
	if _, ok := root.(BatchBound); ok && ctx.BatchMode {
		bc, err := BindBatch(ctx, root)
		if err != nil {
			return nil, err
		}
		return drainBatchesCtx(ctx, bc)
	}
	cur, err := BindNode(ctx, root)
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	var out [][]any
	for {
		if ctx.Interrupted() {
			return nil, ErrCanceled
		}
		row, err := cur.Next()
		if err == schema.Done {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
}

// drainBatchesCtx is drainBatches with a per-batch interrupt check.
func drainBatchesCtx(ctx *Context, bc schema.BatchCursor) ([][]any, error) {
	defer bc.Close()
	var rows [][]any
	for {
		if ctx.Interrupted() {
			return nil, ErrCanceled
		}
		b, err := bc.NextBatch()
		if err == schema.Done {
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		rows = b.AppendRows(rows)
	}
}

// BindNode binds a plan node as a row cursor, reporting a clear error for
// unexecutable (non-enumerable) nodes. In batch mode, batch-capable nodes
// bind vectorized and are flattened through the row shim, so row-only
// consumers (window, set ops, adapters) still sit on a vectorized subtree.
func BindNode(ctx *Context, n rel.Node) (schema.Cursor, error) {
	if ctx.BatchMode {
		if _, ok := n.(BatchBound); ok {
			bc, err := BindBatch(ctx, n)
			if err != nil {
				return nil, err
			}
			return schema.RowCursorFromBatches(bc), nil
		}
	}
	cur, err := bindRow(ctx, n)
	if err != nil {
		return nil, err
	}
	return traceRow(ctx.SpanFor(n), cur), nil
}

// bindRow binds a node strictly through its row-cursor contract.
func bindRow(ctx *Context, n rel.Node) (schema.Cursor, error) {
	b, ok := n.(Bound)
	if !ok {
		return nil, fmt.Errorf("exec: plan node %s is not executable (convention %s); optimize to the enumerable convention first",
			n.Op(), n.Traits().String())
	}
	return b.Bind(ctx)
}

// funcCursor adapts functions to schema.Cursor.
type funcCursor struct {
	next  func() ([]any, error)
	close func() error
}

func (c *funcCursor) Next() ([]any, error) { return c.next() }
func (c *funcCursor) Close() error {
	if c.close != nil {
		return c.close()
	}
	return nil
}

// drain materializes all rows of a cursor and closes it.
func drain(cur schema.Cursor) ([][]any, error) {
	defer cur.Close()
	var rows [][]any
	for {
		row, err := cur.Next()
		if err == schema.Done {
			return rows, nil
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
}
