package exec

import (
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/types"
)

// JoinInfo splits a join condition into equi-join key pairs and a residual
// non-equi condition. Keys are expressed as (left ordinal, right ordinal)
// pairs relative to each side's row.
type JoinInfo struct {
	LeftKeys  []int
	RightKeys []int
	Residual  rex.Node // nil when fully equi
}

// AnalyzeJoin extracts equi-join keys from a condition given the width of
// the left input.
func AnalyzeJoin(condition rex.Node, leftWidth int) JoinInfo {
	var info JoinInfo
	var residual []rex.Node
	for _, term := range rex.Conjuncts(condition) {
		c, ok := term.(*rex.Call)
		if !ok || c.Op != rex.OpEquals {
			residual = append(residual, term)
			continue
		}
		l, lok := c.Operands[0].(*rex.InputRef)
		r, rok := c.Operands[1].(*rex.InputRef)
		if !lok || !rok {
			residual = append(residual, term)
			continue
		}
		switch {
		case l.Index < leftWidth && r.Index >= leftWidth:
			info.LeftKeys = append(info.LeftKeys, l.Index)
			info.RightKeys = append(info.RightKeys, r.Index-leftWidth)
		case r.Index < leftWidth && l.Index >= leftWidth:
			info.LeftKeys = append(info.LeftKeys, r.Index)
			info.RightKeys = append(info.RightKeys, l.Index-leftWidth)
		default:
			residual = append(residual, term)
		}
	}
	if len(residual) > 0 {
		info.Residual = rex.And(residual...)
	}
	return info
}

// HashJoin is the enumerable equi-join: it collects the right ("build")
// input into a hash table and probes it with left rows — the paper's
// EnumerableJoin, which "implements joins by collecting rows from its child
// nodes and joining on the desired attributes" (§5).
type HashJoin struct {
	*rel.Join
	Info JoinInfo
}

// NewHashJoin creates a hash join; the condition must contain at least one
// equi-key pair (callers should check AnalyzeJoin first).
func NewHashJoin(kind rel.JoinKind, left, right rel.Node, condition rex.Node) *HashJoin {
	j := rel.NewJoinTraits("EnumerableHashJoin", enumerableTraits(), kind, left, right, condition)
	return &HashJoin{Join: j, Info: AnalyzeJoin(condition, rel.FieldCount(left))}
}

func (j *HashJoin) WithNewInputs(inputs []rel.Node) rel.Node {
	return NewHashJoin(j.Kind, inputs[0], inputs[1], j.Condition)
}

func (j *HashJoin) Unwrap() rel.Node {
	return rel.NewJoin(j.Kind, j.Left(), j.Right(), j.Condition)
}

func (j *HashJoin) Bind(ctx *Context) (schema.Cursor, error) {
	return bindJoin(ctx, j.Join, j.Info, true)
}

// NestedLoopJoin is the enumerable general-condition join.
type NestedLoopJoin struct {
	*rel.Join
}

// NewNestedLoopJoin creates a nested-loop join for arbitrary conditions.
func NewNestedLoopJoin(kind rel.JoinKind, left, right rel.Node, condition rex.Node) *NestedLoopJoin {
	j := rel.NewJoinTraits("EnumerableNestedLoopJoin", enumerableTraits(), kind, left, right, condition)
	return &NestedLoopJoin{Join: j}
}

func (j *NestedLoopJoin) WithNewInputs(inputs []rel.Node) rel.Node {
	return NewNestedLoopJoin(j.Kind, inputs[0], inputs[1], j.Condition)
}

func (j *NestedLoopJoin) Unwrap() rel.Node {
	return rel.NewJoin(j.Kind, j.Left(), j.Right(), j.Condition)
}

func (j *NestedLoopJoin) Bind(ctx *Context) (schema.Cursor, error) {
	return bindJoin(ctx, j.Join, JoinInfo{Residual: j.Condition}, false)
}

// bindJoin executes a join by materializing the right input (hashed when
// hash=true) and streaming the left.
func bindJoin(ctx *Context, j *rel.Join, info JoinInfo, hash bool) (schema.Cursor, error) {
	leftCur, err := BindNode(ctx, j.Left())
	if err != nil {
		return nil, err
	}
	leftRows, err := drain(leftCur)
	if err != nil {
		return nil, err
	}
	rightCur, err := BindNode(ctx, j.Right())
	if err != nil {
		return nil, err
	}
	rightRows, err := drain(rightCur)
	if err != nil {
		return nil, err
	}

	leftWidth := rel.FieldCount(j.Left())
	rightWidth := rel.FieldCount(j.Right())

	var table map[string][]int // hash: right key -> right row indices
	if hash {
		table = make(map[string][]int, len(rightRows))
		for i, row := range rightRows {
			// SQL equi-join: NULL keys never match.
			if hasNullAt(row, info.RightKeys) {
				continue
			}
			k := types.HashRowKey(row, info.RightKeys)
			table[k] = append(table[k], i)
		}
	}

	matchRight := func(lrow []any) ([]int, error) {
		if hash {
			if hasNullAt(lrow, info.LeftKeys) {
				return nil, nil
			}
			return table[types.HashRowKey(lrow, info.LeftKeys)], nil
		}
		idx := make([]int, 0, 4)
		for i := range rightRows {
			idx = append(idx, i)
		}
		return idx, nil
	}

	concat := func(l, r []any) []any {
		out := make([]any, 0, leftWidth+rightWidth)
		out = append(out, l...)
		out = append(out, r...)
		return out
	}
	nullRight := make([]any, rightWidth)
	nullLeft := make([]any, leftWidth)

	var out [][]any
	rightMatched := make([]bool, len(rightRows))
	for _, lrow := range leftRows {
		candidates, err := matchRight(lrow)
		if err != nil {
			return nil, err
		}
		matched := false
		for _, ri := range candidates {
			rrow := rightRows[ri]
			if info.Residual != nil {
				ok, err := ctx.Evaluator.EvalBool(info.Residual, concat(lrow, rrow))
				if err != nil {
					return nil, err
				}
				if !ok {
					continue
				}
			}
			matched = true
			rightMatched[ri] = true
			switch j.Kind {
			case rel.SemiJoin:
				// Emit left once and stop probing.
			case rel.AntiJoin:
				// Matches disqualify; handled below.
			default:
				out = append(out, concat(lrow, rrow))
			}
			if j.Kind == rel.SemiJoin || j.Kind == rel.AntiJoin {
				break
			}
		}
		switch j.Kind {
		case rel.SemiJoin:
			if matched {
				out = append(out, append([]any(nil), lrow...))
			}
		case rel.AntiJoin:
			if !matched {
				out = append(out, append([]any(nil), lrow...))
			}
		case rel.LeftJoin, rel.FullJoin:
			if !matched {
				out = append(out, concat(lrow, nullRight))
			}
		}
	}
	if j.Kind == rel.RightJoin || j.Kind == rel.FullJoin {
		for ri, rrow := range rightRows {
			if !rightMatched[ri] {
				out = append(out, concat(nullLeft, rrow))
			}
		}
	}
	return schema.NewSliceCursor(out), nil
}

func hasNullAt(row []any, cols []int) bool {
	for _, c := range cols {
		if row[c] == nil {
			return true
		}
	}
	return false
}

// MergeJoin is the enumerable sort-merge equi-join: both inputs must be
// sorted on the join keys (the planner produces it only when collations are
// satisfied, exploiting the trait framework of §4).
type MergeJoin struct {
	*rel.Join
	Info JoinInfo
}

// NewMergeJoin creates a merge join (inner only).
func NewMergeJoin(left, right rel.Node, condition rex.Node) *MergeJoin {
	j := rel.NewJoinTraits("EnumerableMergeJoin", enumerableTraits(), rel.InnerJoin, left, right, condition)
	return &MergeJoin{Join: j, Info: AnalyzeJoin(condition, rel.FieldCount(left))}
}

func (j *MergeJoin) WithNewInputs(inputs []rel.Node) rel.Node {
	return NewMergeJoin(inputs[0], inputs[1], j.Condition)
}

func (j *MergeJoin) Unwrap() rel.Node {
	return rel.NewJoin(j.Kind, j.Left(), j.Right(), j.Condition)
}

func (j *MergeJoin) Bind(ctx *Context) (schema.Cursor, error) {
	leftCur, err := BindNode(ctx, j.Left())
	if err != nil {
		return nil, err
	}
	leftRows, err := drain(leftCur)
	if err != nil {
		return nil, err
	}
	rightCur, err := BindNode(ctx, j.Right())
	if err != nil {
		return nil, err
	}
	rightRows, err := drain(rightCur)
	if err != nil {
		return nil, err
	}

	cmpKeys := func(l, r []any) int {
		for i := range j.Info.LeftKeys {
			if c := types.Compare(l[j.Info.LeftKeys[i]], r[j.Info.RightKeys[i]]); c != 0 {
				return c
			}
		}
		return 0
	}
	var out [][]any
	li, ri := 0, 0
	for li < len(leftRows) && ri < len(rightRows) {
		if hasNullAt(leftRows[li], j.Info.LeftKeys) {
			li++
			continue
		}
		if hasNullAt(rightRows[ri], j.Info.RightKeys) {
			ri++
			continue
		}
		c := cmpKeys(leftRows[li], rightRows[ri])
		switch {
		case c < 0:
			li++
		case c > 0:
			ri++
		default:
			// Emit the cross product of the equal-key runs.
			le := li
			for le < len(leftRows) && cmpKeys(leftRows[le], rightRows[ri]) == 0 {
				le++
			}
			re := ri
			for re < len(rightRows) && cmpKeys(leftRows[li], rightRows[re]) == 0 {
				re++
			}
			for a := li; a < le; a++ {
				for b := ri; b < re; b++ {
					merged := append(append([]any{}, leftRows[a]...), rightRows[b]...)
					if j.Info.Residual != nil {
						ok, err := ctx.Evaluator.EvalBool(j.Info.Residual, merged)
						if err != nil {
							return nil, err
						}
						if !ok {
							continue
						}
					}
					out = append(out, merged)
				}
			}
			li, ri = le, re
		}
	}
	return schema.NewSliceCursor(out), nil
}
