package exec

// Spillable hash aggregation: the memory-governed aggregate path. Groups
// accumulate in a hash table charged against the query grant; when a grant
// fails, every group's accumulators are dehydrated (rex.DehydrateAccumulator)
// into plain value rows [key…, state…] and flushed to hash-partitioned spill
// runs, and the table restarts empty. After the input is drained, a query
// that never flushed emits straight from memory (bit-identical to the
// ungoverned path, same first-seen group order); a query that flushed also
// flushes its tail and then re-reads one partition at a time, folding
// duplicate groups with rex.MergeAccumulators. Partitions that still exceed
// the grant recurse under a new hash seed, mirroring the Grace join.

import (
	"calcite/internal/memory"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/types"
)

const (
	// aggPartitions is the spill fan-out of one flush pass.
	aggPartitions = 8
	// aggMaxDepth bounds recursive re-partitioning of oversized partitions.
	aggMaxDepth = 3
	// aggGroupOverhead approximates the fixed footprint of one group: map
	// entry, key string, accumulator headers.
	aggGroupOverhead = 96
)

type aggGroup struct {
	key  []any
	accs []rex.Accumulator
	// typed holds the fast-path handle of each accumulator eligible for
	// pre-unboxed adds (nil entry otherwise); only the in-memory aggregation
	// engine (groupkey.go) populates it.
	typed []rex.TypedAccumulator
}

// AggRetainedBytes estimates the bytes a row permanently adds to its
// group's accumulators: value-retaining aggregates (COLLECT, SINGLE_VALUE,
// DISTINCT) hold their argument, everything else only mutates fixed state.
// Shared with the parallel partial-aggregation stage.
func AggRetainedBytes(calls []rex.AggCall, row []any) int64 {
	var n int64
	for _, c := range calls {
		if len(c.Args) == 0 {
			continue
		}
		if c.Distinct || c.Func == rex.AggCollect || c.Func == rex.AggSingleValue {
			n += types.SizeOfValue(row[c.Args[0]]) + 16
		}
	}
	return n
}

// AggGroupCharge estimates the fixed footprint of creating one group for
// the given row: map entry, canonical key string (keyLen), key values and
// accumulator headers. Shared with the parallel partial-aggregation stage
// so the serial and parallel charge models cannot drift apart.
func AggGroupCharge(keys []int, calls []rex.AggCall, row []any, keyLen int) int64 {
	charge := aggGroupOverhead + int64(keyLen) + int64(96*len(calls))
	for _, gk := range keys {
		charge += types.SizeOfValue(row[gk])
	}
	return charge
}

// spillAgg is the running state of one spillable aggregation pass.
type spillAgg struct {
	ctx    *Context
	calls  []rex.AggCall
	keys   []int
	res    *memory.Reservation
	groups map[string]*aggGroup
	order  []string
	flushW *partitionedAggWriter // nil until the first flush
}

// partitionedAggWriter holds the open spill writers of one flush target.
type partitionedAggWriter struct {
	writers []*memory.RunWriter
	seed    int
	width   int
}

func newPartitionedAggWriter(alloc *memory.Allocator, seed, width int) (*partitionedAggWriter, error) {
	w := &partitionedAggWriter{writers: make([]*memory.RunWriter, aggPartitions), seed: seed, width: width}
	for i := range w.writers {
		rw, err := alloc.NewRun("Aggregate")
		if err != nil {
			w.abandon()
			return nil, err
		}
		w.writers[i] = rw
	}
	return w, nil
}

func (w *partitionedAggWriter) abandon() {
	for _, rw := range w.writers {
		if rw != nil {
			rw.Abandon()
		}
	}
}

func (w *partitionedAggWriter) finish() ([]*memory.Run, error) {
	runs := make([]*memory.Run, aggPartitions)
	for i, rw := range w.writers {
		run, err := rw.Finish()
		w.writers[i] = nil
		if err != nil {
			w.abandon()
			return nil, err
		}
		runs[i] = run
	}
	return runs, nil
}

// dehydratedRow flattens one group into a spillable row [key…, state…].
func dehydratedRow(g *aggGroup) ([]any, error) {
	row := make([]any, 0, len(g.key)+len(g.accs))
	row = append(row, g.key...)
	for _, acc := range g.accs {
		st, err := rex.DehydrateAccumulator(acc)
		if err != nil {
			return nil, err
		}
		row = append(row, st)
	}
	return row, nil
}

// flush dehydrates every in-memory group into the spill partitions and
// resets the table.
func (s *spillAgg) flush() error {
	if s.flushW == nil {
		w, err := newPartitionedAggWriter(s.ctx.Alloc, 0, len(s.keys)+len(s.calls))
		if err != nil {
			return err
		}
		s.flushW = w
		s.res.NoteSpillEvent()
	}
	bufs := make([][][]any, aggPartitions)
	for _, k := range s.order {
		g := s.groups[k]
		row, err := dehydratedRow(g)
		if err != nil {
			return err
		}
		p := memory.Partition(k, aggPartitions, 0)
		bufs[p] = append(bufs[p], row)
		if len(bufs[p]) >= spillWriteChunk {
			if err := s.flushW.writers[p].WriteRows(bufs[p], s.flushW.width); err != nil {
				return err
			}
			bufs[p] = bufs[p][:0]
		}
	}
	for p, rows := range bufs {
		if len(rows) > 0 {
			if err := s.flushW.writers[p].WriteRows(rows, s.flushW.width); err != nil {
				return err
			}
		}
	}
	s.groups = map[string]*aggGroup{}
	s.order = s.order[:0]
	s.res.Shrink(s.res.Held())
	return nil
}

// newGroup creates and registers the group for key k (callers handle the
// memory charge).
func (s *spillAgg) newGroup(k string, row []any) *aggGroup {
	key := make([]any, len(s.keys))
	for i, gk := range s.keys {
		key[i] = row[gk]
	}
	accs := make([]rex.Accumulator, len(s.calls))
	for i, c := range s.calls {
		accs[i] = rex.NewAccumulator(c)
	}
	g := &aggGroup{key: key, accs: accs}
	s.groups[k] = g
	s.order = append(s.order, k)
	return g
}

// add folds one input row into its group, flushing first when a grant
// fails. Flushing always makes progress — accumulator states move to disk
// and restart empty — so the flow is strictly flush-then-proceed: after a
// flush the charges are best-effort (concurrent workers may hold the rest
// of the budget; starving a worker forever deadlocks progress, it does not
// save memory), and nothing recurses.
func (s *spillAgg) add(row []any) error {
	k := types.HashRowKey(row, s.keys)
	g, ok := s.groups[k]
	if !ok {
		charge := AggGroupCharge(s.keys, s.calls, row, len(k))
		if err := s.res.Grow(charge); err != nil {
			if !s.res.SpillAllowed() {
				return err
			}
			if len(s.order) > 0 {
				if err := s.flush(); err != nil {
					return err
				}
			}
			_ = s.res.Grow(charge) // post-flush best effort
		}
		g = s.newGroup(k, row)
	}
	if retained := AggRetainedBytes(s.calls, row); retained > 0 {
		if err := s.res.Grow(retained); err != nil {
			if !s.res.SpillAllowed() {
				return err
			}
			// Flush: every group's retained values (including this row's
			// group) move to disk and its accumulators restart empty, so
			// memory genuinely drops. Recreate the group and proceed with
			// best-effort charges — no recursion (a retained charge larger
			// than the whole budget would otherwise flush/re-add forever).
			if err := s.flush(); err != nil {
				return err
			}
			g = s.newGroup(k, row)
			_ = s.res.Grow(retained) // post-flush best effort
		}
	}
	for _, acc := range g.accs {
		if err := acc.Add(row); err != nil {
			return err
		}
	}
	return nil
}

// bindSpillableAggregate is the governed Aggregate.BindBatch body.
func bindSpillableAggregate(ctx *Context, a *Aggregate, in schema.BatchCursor) (schema.BatchCursor, error) {
	defer in.Close()
	s := &spillAgg{
		ctx:    ctx,
		calls:  a.Calls,
		keys:   a.GroupKeys,
		res:    memory.Reserve(ctx.Alloc, "Aggregate"),
		groups: map[string]*aggGroup{},
	}
	width := rel.FieldCount(a.Inputs()[0])
	scratch := make([]any, width)
	var dense []int32
	fail := func(err error) (schema.BatchCursor, error) {
		if s.flushW != nil {
			s.flushW.abandon()
		}
		s.res.Free()
		return nil, err
	}
	for {
		b, err := in.NextBatch()
		if err == schema.Done {
			break
		}
		if err != nil {
			return fail(err)
		}
		var sel []int32
		sel, dense = liveSel(b, dense)
		cols := b.BoxedCols()
		for _, ri := range sel {
			r := int(ri)
			for c := range scratch {
				scratch[c] = cols[c][r]
			}
			if err := s.add(scratch); err != nil {
				return fail(err)
			}
		}
	}
	outWidth := rel.FieldCount(a)
	if s.flushW == nil {
		// Never spilled: emit from memory in first-seen order, exactly like
		// the ungoverned path.
		if len(s.keys) == 0 && len(s.order) == 0 {
			accs := make([]rex.Accumulator, len(s.calls))
			for i, c := range s.calls {
				accs[i] = rex.NewAccumulator(c)
			}
			s.groups[""] = &aggGroup{accs: accs}
			s.order = append(s.order, "")
		}
		out := make([][]any, 0, len(s.order))
		for _, k := range s.order {
			g := s.groups[k]
			row := make([]any, 0, outWidth)
			row = append(row, g.key...)
			for _, acc := range g.accs {
				row = append(row, acc.Result())
			}
			out = append(out, row)
		}
		s.res.Free()
		return batchesFromRows(out, outWidth, ctx.batchSize()), nil
	}
	// Spilled: flush the tail, then merge and emit partition by partition.
	if err := s.flush(); err != nil {
		return fail(err)
	}
	runs, err := s.flushW.finish()
	if err != nil {
		s.res.Free()
		return nil, err
	}
	parts := make([]aggPartition, 0, len(runs))
	for _, r := range runs {
		parts = append(parts, aggPartition{run: r, depth: 1})
	}
	return &spillAggCursor{
		ctx:      ctx,
		calls:    a.Calls,
		nKeys:    len(a.GroupKeys),
		outWidth: outWidth,
		res:      s.res,
		parts:    parts,
		batch:    ctx.batchSize(),
	}, nil
}

// aggPartition is one pending spilled partition.
type aggPartition struct {
	run   *memory.Run
	depth int
}

// spillAggCursor re-reads spilled partial states one partition at a time,
// merging duplicate groups and emitting finished rows.
type spillAggCursor struct {
	ctx      *Context
	calls    []rex.AggCall
	nKeys    int
	outWidth int
	res      *memory.Reservation
	parts    []aggPartition
	pending  [][]any // finished rows of the current partition
	pos      int
	batch    int
	seq      int64
	done     bool
}

func (c *spillAggCursor) NextBatch() (*schema.Batch, error) {
	for {
		if c.done {
			return nil, schema.Done
		}
		if c.pos < len(c.pending) {
			end := c.pos + c.batch
			if end > len(c.pending) {
				end = len(c.pending)
			}
			b := schema.BatchFromRows(c.pending[c.pos:end], c.outWidth)
			b.Seq = c.seq
			c.seq++
			c.pos = end
			return b, nil
		}
		if c.pending != nil {
			c.pending, c.pos = nil, 0
			c.res.Shrink(c.res.Held())
		}
		if len(c.parts) == 0 {
			c.Close()
			return nil, schema.Done
		}
		part := c.parts[0]
		c.parts = c.parts[1:]
		if err := c.mergePartition(part); err != nil {
			c.fail()
			return nil, err
		}
	}
}

// mergePartition loads one partition's partial rows, folds duplicates, and
// stages the finished rows; oversized partitions re-partition under the
// next seed.
func (c *spillAggCursor) mergePartition(part aggPartition) error {
	if part.run.Rows() == 0 {
		part.run.Remove()
		return nil
	}
	rr, err := part.run.Open()
	if err != nil {
		return err
	}
	keyOrds := make([]int, c.nKeys)
	for i := range keyOrds {
		keyOrds[i] = i
	}
	groups := map[string]*aggGroup{}
	var order []string
	overflowed := false
	for {
		b, err := rr.NextBatch()
		if err == schema.Done {
			break
		}
		if err != nil {
			rr.Close()
			return err
		}
		n := b.NumRows()
		for i := 0; i < n; i++ {
			row := b.Row(i)
			k := types.HashRowKey(row, keyOrds)
			g, ok := groups[k]
			if !ok {
				if !overflowed {
					charge := aggGroupOverhead + int64(len(k)) + types.SizeOfRow(row)
					if gerr := c.res.Grow(charge); gerr != nil {
						if part.depth < aggMaxDepth {
							// Re-read the run from disk and subdivide it
							// under the next hash seed.
							rr.Close()
							return c.repartition(part)
						}
						// Max depth (one giant group set that will not
						// subdivide): proceed in memory, best-effort.
						overflowed = true
					}
				}
				g = &aggGroup{key: row[:c.nKeys], accs: make([]rex.Accumulator, len(c.calls))}
				for ci, call := range c.calls {
					acc, err := rex.HydrateAccumulator(call, row[c.nKeys+ci])
					if err != nil {
						rr.Close()
						return err
					}
					g.accs[ci] = acc
				}
				groups[k] = g
				order = append(order, k)
				continue
			}
			for ci, call := range c.calls {
				src, err := rex.HydrateAccumulator(call, row[c.nKeys+ci])
				if err != nil {
					rr.Close()
					return err
				}
				if err := rex.MergeAccumulators(g.accs[ci], src); err != nil {
					rr.Close()
					return err
				}
			}
		}
	}
	rr.Close()
	part.run.Remove()
	rows := make([][]any, 0, len(order))
	for _, k := range order {
		g := groups[k]
		row := make([]any, 0, c.outWidth)
		row = append(row, g.key...)
		for _, acc := range g.accs {
			row = append(row, acc.Result())
		}
		rows = append(rows, row)
	}
	c.pending, c.pos = rows, 0
	return nil
}

// repartition splits an oversized partition under the next hash seed by
// replaying its run from disk.
func (c *spillAggCursor) repartition(part aggPartition) error {
	c.res.Shrink(c.res.Held())
	c.res.NoteSpillEvent()
	w, err := newPartitionedAggWriter(c.ctx.Alloc, part.depth, c.nKeys+len(c.calls))
	if err != nil {
		return err
	}
	keyOrds := make([]int, c.nKeys)
	for i := range keyOrds {
		keyOrds[i] = i
	}
	rr, err := part.run.Open()
	if err != nil {
		w.abandon()
		return err
	}
	bufs := make([][][]any, aggPartitions)
	for {
		b, err := rr.NextBatch()
		if err == schema.Done {
			break
		}
		if err != nil {
			rr.Close()
			w.abandon()
			return err
		}
		n := b.NumRows()
		for i := 0; i < n; i++ {
			row := b.Row(i)
			p := memory.Partition(types.HashRowKey(row, keyOrds), aggPartitions, part.depth)
			bufs[p] = append(bufs[p], row)
			if len(bufs[p]) >= spillWriteChunk {
				if err := w.writers[p].WriteRows(bufs[p], c.nKeys+len(c.calls)); err != nil {
					rr.Close()
					w.abandon()
					return err
				}
				bufs[p] = bufs[p][:0]
			}
		}
	}
	rr.Close()
	for p, rows := range bufs {
		if len(rows) > 0 {
			if err := w.writers[p].WriteRows(rows, c.nKeys+len(c.calls)); err != nil {
				w.abandon()
				return err
			}
		}
	}
	part.run.Remove()
	runs, err := w.finish()
	if err != nil {
		return err
	}
	sub := make([]aggPartition, 0, len(runs))
	for _, r := range runs {
		sub = append(sub, aggPartition{run: r, depth: part.depth + 1})
	}
	c.parts = append(sub, c.parts...)
	return nil
}

func (c *spillAggCursor) fail() {
	c.done = true
	for _, p := range c.parts {
		p.run.Remove()
	}
	c.parts = nil
	c.pending = nil
	c.res.Free()
}

func (c *spillAggCursor) Close() error {
	if !c.done {
		c.fail()
	}
	return nil
}
