package exec

// Typed key index for hash aggregation and hash joins. The boxed engine
// identifies grouping/join keys by formatting every value into a
// types.HashKey string — one strconv call plus one string allocation per row
// probed. For single-column keys of the core runtime types the index instead
// keys native maps on the machine value, assigning each distinct key a dense
// ordinal (insertion order) that callers use to address per-group state.
//
// Equivalence must match types.HashKey exactly or typed and boxed execution
// would group differently: HashKey folds integral float64s onto the int64
// key space, so the index normalizes them the same way, and everything
// outside int64/float64/string (bools, NULLs, composites) drops to the
// HashKey-string fallback tier. A column that arrives as VecInt64 in one
// batch and boxed in the next therefore still lands in the same map.

import (
	"math"
	"strings"

	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/types"
)

// keyIndex maps single-column key values to dense ordinals 0..n-1.
type keyIndex struct {
	byInt map[int64]int32
	byStr map[string]int32
	byKey map[string]int32 // types.HashKey fallback tier
	n     int32
}

func newKeyIndex() *keyIndex {
	return &keyIndex{
		byInt: map[int64]int32{},
		byStr: map[string]int32{},
		byKey: map[string]int32{},
	}
}

// Len returns the number of distinct keys seen.
func (ki *keyIndex) Len() int { return int(ki.n) }

// ordInt returns the ordinal of int64 key k, inserting it if new.
func (ki *keyIndex) ordInt(k int64) (int32, bool) {
	if ord, ok := ki.byInt[k]; ok {
		return ord, false
	}
	ord := ki.n
	ki.byInt[k] = ord
	ki.n++
	return ord, true
}

// ordStr returns the ordinal of string key k, inserting it if new.
func (ki *keyIndex) ordStr(k string) (int32, bool) {
	if ord, ok := ki.byStr[k]; ok {
		return ord, false
	}
	ord := ki.n
	ki.byStr[k] = ord
	ki.n++
	return ord, true
}

// ordKey returns the ordinal of a fallback HashKey-encoded key.
func (ki *keyIndex) ordKey(k string) (int32, bool) {
	if ord, ok := ki.byKey[k]; ok {
		return ord, false
	}
	ord := ki.n
	ki.byKey[k] = ord
	ki.n++
	return ord, true
}

// intKeyOfFloat reports whether f folds onto the int64 key space, mirroring
// types.HashKey's normalization of integral float64s.
func intKeyOfFloat(f float64) (int64, bool) {
	if f == math.Trunc(f) && !math.IsInf(f, 0) && math.Abs(f) < 1e15 {
		return int64(f), true
	}
	return 0, false
}

// ordVal routes one boxed key value to its tier, inserting if new.
func (ki *keyIndex) ordVal(v any) (int32, bool) {
	switch x := v.(type) {
	case int64:
		return ki.ordInt(x)
	case float64:
		if i, ok := intKeyOfFloat(x); ok {
			return ki.ordInt(i)
		}
	case string:
		return ki.ordStr(x)
	}
	return ki.ordKey(types.HashKey(v))
}

// findInt looks an int64 key up without inserting.
func (ki *keyIndex) findInt(k int64) (int32, bool) {
	ord, ok := ki.byInt[k]
	return ord, ok
}

// findStr looks a string key up without inserting.
func (ki *keyIndex) findStr(k string) (int32, bool) {
	ord, ok := ki.byStr[k]
	return ord, ok
}

// findVal looks a boxed key value up without inserting.
func (ki *keyIndex) findVal(v any) (int32, bool) {
	switch x := v.(type) {
	case int64:
		return ki.findInt(x)
	case float64:
		if i, ok := intKeyOfFloat(x); ok {
			return ki.findInt(i)
		}
	case string:
		return ki.findStr(x)
	}
	ord, ok := ki.byKey[types.HashKey(v)]
	return ord, ok
}

// hashVecRowKey is types.HashRowKey over vector-backed columns: the
// multi-column grouping key of row r, byte-for-byte identical to HashRowKey
// over the materialized row.
func hashVecRowKey(vecs []*schema.Vector, r int, cols []int) string {
	var b strings.Builder
	for _, c := range cols {
		b.WriteString(types.HashKey(vecs[c].Get(r)))
		b.WriteByte('|')
	}
	return b.String()
}

// groupedAgg is the in-memory hash aggregation engine shared by the serial
// batch operator: typed single-column grouping through a keyIndex, typed
// per-column accumulator adds when a batch carries vectors of the right
// kinds, and the boxed scratch-row path for everything else. Groups are kept
// in first-seen order.
type groupedAgg struct {
	keys  []int
	calls []rex.AggCall

	index    *keyIndex        // single-column keys
	multiKey map[string]int32 // zero- or multi-column keys, HashRowKey-encoded

	groups    []*aggGroup
	callTyped []bool // calls[i] is eligible for typed adds
	anyTyped  bool
	scratch   []any
}

func newGroupedAgg(keys []int, calls []rex.AggCall, width int) *groupedAgg {
	g := &groupedAgg{keys: keys, calls: calls, scratch: make([]any, width)}
	if len(keys) == 1 {
		g.index = newKeyIndex()
	} else {
		g.multiKey = map[string]int32{}
	}
	g.callTyped = make([]bool, len(calls))
	for i, c := range calls {
		g.callTyped[i] = rex.AsTyped(rex.NewAccumulator(c)) != nil
		g.anyTyped = g.anyTyped || g.callTyped[i]
	}
	return g
}

func (g *groupedAgg) newGroup(key []any) *aggGroup {
	accs := make([]rex.Accumulator, len(g.calls))
	var typed []rex.TypedAccumulator
	if g.anyTyped {
		typed = make([]rex.TypedAccumulator, len(g.calls))
	}
	for i, c := range g.calls {
		accs[i] = rex.NewAccumulator(c)
		if g.callTyped[i] {
			typed[i] = rex.AsTyped(accs[i])
		}
	}
	gr := &aggGroup{key: key, accs: accs, typed: typed}
	g.groups = append(g.groups, gr)
	return gr
}

// groupForRow finds or creates the group of a boxed row.
func (g *groupedAgg) groupForRow(row []any) *aggGroup {
	if g.index != nil {
		ord, isNew := g.index.ordVal(row[g.keys[0]])
		if isNew {
			return g.newGroup([]any{row[g.keys[0]]})
		}
		return g.groups[ord]
	}
	k := types.HashRowKey(row, g.keys)
	if ord, ok := g.multiKey[k]; ok {
		return g.groups[ord]
	}
	g.multiKey[k] = int32(len(g.groups))
	key := make([]any, len(g.keys))
	for i, gk := range g.keys {
		key[i] = row[gk]
	}
	return g.newGroup(key)
}

// groupForVecKey finds or creates the group of row r keyed by the single
// grouping column kv, without boxing the key except on first sight.
func (g *groupedAgg) groupForVecKey(kv *schema.Vector, r int) *aggGroup {
	var ord int32
	var isNew bool
	isNull := kv.Nulls != nil && kv.Nulls[r]
	switch {
	case isNull:
		ord, isNew = g.index.ordKey(types.HashKey(nil))
	case kv.Kind == schema.VecInt64:
		ord, isNew = g.index.ordInt(kv.I64[r])
	case kv.Kind == schema.VecFloat64:
		if i, ok := intKeyOfFloat(kv.F64[r]); ok {
			ord, isNew = g.index.ordInt(i)
		} else {
			ord, isNew = g.index.ordKey(types.HashKey(kv.F64[r]))
		}
	case kv.Kind == schema.VecString:
		ord, isNew = g.index.ordStr(kv.S[r])
	default:
		ord, isNew = g.index.ordVal(kv.Get(r))
	}
	if isNew {
		return g.newGroup([]any{kv.Get(r)})
	}
	return g.groups[ord]
}

// addBatch folds the live rows of one batch into the group table.
func (g *groupedAgg) addBatch(b *schema.Batch, sel []int32) error {
	if b.Vecs != nil {
		return g.addBatchVec(b, sel)
	}
	cols := b.BoxedCols()
	for _, ri := range sel {
		r := int(ri)
		for c := range g.scratch {
			g.scratch[c] = cols[c][r]
		}
		gr := g.groupForRow(g.scratch)
		for _, acc := range gr.accs {
			if err := acc.Add(g.scratch); err != nil {
				return err
			}
		}
	}
	return nil
}

// Per-batch add plan of one call over typed vectors.
type callMode uint8

const (
	modeBoxed callMode = iota // assemble scratch row, Accumulator.Add
	modeCountStar
	modeI64
	modeF64
	modeStr
)

func (g *groupedAgg) addBatchVec(b *schema.Batch, sel []int32) error {
	// Resolve each call against this batch's vector kinds.
	modes := make([]callMode, len(g.calls))
	argVec := make([]*schema.Vector, len(g.calls))
	needScratch := false
	for i, c := range g.calls {
		modes[i] = modeBoxed
		if g.callTyped[i] {
			if len(c.Args) == 0 {
				modes[i] = modeCountStar
			} else {
				v := b.Vecs[c.Args[0]]
				argVec[i] = v
				switch v.Kind {
				case schema.VecInt64:
					modes[i] = modeI64
				case schema.VecFloat64:
					modes[i] = modeF64
				case schema.VecString:
					modes[i] = modeStr
				}
			}
		}
		if modes[i] == modeBoxed {
			needScratch = true
		}
	}
	var kv *schema.Vector
	if g.index != nil {
		kv = b.Vecs[g.keys[0]]
	}
	for _, ri := range sel {
		r := int(ri)
		var gr *aggGroup
		if kv != nil {
			gr = g.groupForVecKey(kv, r)
		} else {
			k := hashVecRowKey(b.Vecs, r, g.keys)
			if ord, ok := g.multiKey[k]; ok {
				gr = g.groups[ord]
			} else {
				g.multiKey[k] = int32(len(g.groups))
				key := make([]any, len(g.keys))
				for i, gk := range g.keys {
					key[i] = b.Vecs[gk].Get(r)
				}
				gr = g.newGroup(key)
			}
		}
		if needScratch {
			for c, v := range b.Vecs {
				g.scratch[c] = v.Get(r)
			}
		}
		for i, m := range modes {
			switch m {
			case modeCountStar:
				gr.typed[i].AddCountStar(1)
			case modeI64:
				v := argVec[i]
				if v.Nulls == nil || !v.Nulls[r] {
					gr.typed[i].AddNonNullInt64(v.I64[r])
				}
			case modeF64:
				v := argVec[i]
				if v.Nulls == nil || !v.Nulls[r] {
					gr.typed[i].AddNonNullFloat64(v.F64[r])
				}
			case modeStr:
				v := argVec[i]
				if v.Nulls == nil || !v.Nulls[r] {
					if err := gr.typed[i].AddNonNullString(v.S[r]); err != nil {
						return err
					}
				}
			default:
				if err := gr.accs[i].Add(g.scratch); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// finish materializes the result rows in group order. A global aggregate
// over empty input still yields one row.
func (g *groupedAgg) finish() [][]any {
	if len(g.keys) == 0 && len(g.groups) == 0 {
		g.newGroup(nil)
	}
	out := make([][]any, 0, len(g.groups))
	for _, gr := range g.groups {
		row := make([]any, 0, len(gr.key)+len(gr.accs))
		row = append(row, gr.key...)
		for _, acc := range gr.accs {
			row = append(row, acc.Result())
		}
		out = append(out, row)
	}
	return out
}

// findKey looks a fallback HashKey-encoded key up without inserting.
func (ki *keyIndex) findKey(k string) (int32, bool) {
	ord, ok := ki.byKey[k]
	return ord, ok
}

// joinTable is the build-side index of a hash join. Single-column equi-keys
// index native maps through a keyIndex (no HashKey string per row); composite
// keys keep the HashRowKey-encoded map. NULL build keys are never inserted
// (SQL equi-join: NULL matches nothing).
type joinTable struct {
	single *keyIndex // single-column keys, else nil
	byOrd  [][]int32 // candidate build rows per keyIndex ordinal
	multi  map[string][]int32
	keys   []int
}

// buildJoinTable indexes the build rows by the given key columns.
func buildJoinTable(rows [][]any, keys []int) *joinTable {
	t := &joinTable{keys: keys}
	if len(keys) == 1 {
		t.single = newKeyIndex()
		k := keys[0]
		for i, row := range rows {
			v := row[k]
			if v == nil {
				continue
			}
			ord, _ := t.single.ordVal(v)
			if int(ord) == len(t.byOrd) {
				t.byOrd = append(t.byOrd, nil)
			}
			t.byOrd[ord] = append(t.byOrd[ord], int32(i))
		}
		return t
	}
	t.multi = make(map[string][]int32, len(rows))
	for i, row := range rows {
		if hasNullAt(row, keys) {
			continue
		}
		hk := types.HashRowKey(row, keys)
		t.multi[hk] = append(t.multi[hk], int32(i))
	}
	return t
}

// probeVec returns the candidate build rows matching probe row r of the
// single key column kv, reading the key in typed form.
func (t *joinTable) probeVec(kv *schema.Vector, r int) []int32 {
	if kv.Nulls != nil && kv.Nulls[r] {
		return nil
	}
	var ord int32
	var ok bool
	switch kv.Kind {
	case schema.VecInt64:
		ord, ok = t.single.findInt(kv.I64[r])
	case schema.VecFloat64:
		f := kv.F64[r]
		if i, isInt := intKeyOfFloat(f); isInt {
			ord, ok = t.single.findInt(i)
		} else {
			ord, ok = t.single.findKey(types.HashKey(f))
		}
	case schema.VecString:
		ord, ok = t.single.findStr(kv.S[r])
	default:
		v := kv.Get(r)
		if v == nil {
			return nil
		}
		ord, ok = t.single.findVal(v)
	}
	if !ok {
		return nil
	}
	return t.byOrd[ord]
}

// probeCols returns the candidate build rows matching probe row r over boxed
// columns (the caller has already screened NULL keys).
func (t *joinTable) probeCols(cols [][]any, r int, keys []int) []int32 {
	if t.single != nil {
		ord, ok := t.single.findVal(cols[keys[0]][r])
		if !ok {
			return nil
		}
		return t.byOrd[ord]
	}
	return t.multi[types.HashColsKey(cols, r, keys)]
}
