// Package loadgen is a closed-loop load generator for the Avatica serving
// tier: N workers each run a loop of prepare/execute/fetch/close against a
// live server, drawing queries from weighted classes (point lookups,
// star joins, spilling sorts, window functions), recording latencies in
// obs histograms, and rendering a pass/fail verdict on error rate, tail
// latency and plan-cache hit rate. The CI serving-load job is its primary
// caller; cmd/loadgen is the CLI wrapper.
package loadgen

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"calcite/internal/avatica"
	"calcite/internal/obs"
)

// Class is one query class in the mix.
type Class struct {
	// Name labels the class in histograms and the report.
	Name string
	// SQL is the statement; prepared once per worker when Prepared is set.
	SQL string
	// Params generates one execution's parameter bindings (nil = none).
	Params func(r *rand.Rand) []any
	// FetchSize > 0 paginates the result and drains it frame by frame
	// through /fetch, closing the server-side cursor's statement after.
	FetchSize int
	// Prepared executes through a prepared statement handle.
	Prepared bool
	// Weight is the class's relative frequency in the mix (default 1).
	Weight int
}

// DefaultClasses is the standard mix against cmd/avaticasrv's demo and star
// schema: a prepared point filter (plan-cache fast path), a repeated 5-way
// star join, a paginated full sort (the spill class under small budgets)
// and a window aggregation.
func DefaultClasses() []Class {
	return []Class{
		{
			Name:     "point",
			SQL:      "SELECT id, val, msg FROM demo WHERE id = ?",
			Params:   func(r *rand.Rand) []any { return []any{int64(1 + r.Intn(1000))} },
			Prepared: true,
			Weight:   4,
		},
		{
			Name: "star",
			SQL: "SELECT c.label, SUM(f.amount) AS total FROM fact f " +
				"JOIN d_cust c ON f.cust_id = c.id " +
				"JOIN d_prod p ON f.prod_id = p.id " +
				"JOIN d_geo g ON f.geo_id = g.id " +
				"JOIN d_time t ON f.time_id = t.id " +
				"WHERE p.attr = ? GROUP BY c.label ORDER BY total DESC",
			Params:   func(r *rand.Rand) []any { return []any{int64(r.Intn(17))} },
			Prepared: true,
			Weight:   2,
		},
		{
			Name:      "sort",
			SQL:       "SELECT id, grp, val, msg FROM demo ORDER BY val DESC, id",
			FetchSize: 256,
			Weight:    1,
		},
		{
			Name: "window",
			SQL: "SELECT id, grp, SUM(val) OVER (PARTITION BY grp ORDER BY id " +
				"ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) AS w FROM demo",
			Weight: 1,
		},
	}
}

// Config configures one load run.
type Config struct {
	// Addr is the target server ("host:port").
	Addr string
	// Workers is the closed-loop concurrency (default 8).
	Workers int
	// Duration is how long the loop runs (default 10s).
	Duration time.Duration
	// Tenants are round-robin assigned to workers ("" entries run
	// untenanted); empty list = all untenanted.
	Tenants []string
	// Classes is the query mix (nil = DefaultClasses).
	Classes []Class
	// Seed makes worker randomness reproducible (0 = seed from workers).
	Seed int64

	// MaxErrorRate fails the verdict when errors/requests exceeds it.
	MaxErrorRate float64
	// MaxP99 fails the verdict when the overall p99 exceeds it (0 = no
	// bound).
	MaxP99 time.Duration
	// MinHitRate fails the verdict when the server's plan-cache hit rate
	// over the run is below it (0 = not checked). Busy rejections never
	// count as errors — saturation is the admission contract, not a fault.
	MinHitRate float64
}

// ClassStats is one class's slice of the run.
type ClassStats struct {
	Name     string
	Requests int64
	Errors   int64
	Rows     int64
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
}

// Result is the run outcome.
type Result struct {
	Requests int64
	Errors   int64
	Busy     int64 // SERVER_BUSY rejections (not errors)
	Rows     int64
	Elapsed  time.Duration
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	// HitRate is the server's plan-cache hit rate across the run window
	// (delta of hits / delta of lookups), -1 when /metrics was unreadable.
	HitRate float64
	Classes []ClassStats
	// Failures lists violated verdict bounds; empty = pass.
	Failures []string
}

// Passed reports the verdict.
func (r *Result) Passed() bool { return len(r.Failures) == 0 }

// latencyBuckets spans 100µs to 30s so tail quantiles stay resolvable well
// past the default serving buckets.
var latencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// Run executes the configured load against a live server.
func Run(cfg Config) (*Result, error) {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	classes := cfg.Classes
	if classes == nil {
		classes = DefaultClasses()
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = int64(cfg.Workers)
	}

	// One histogram registry for the run: overall + per-class latencies.
	reg := obs.NewRegistry()
	overall := reg.Histogram("latency", "overall", latencyBuckets)
	perClass := make([]*obs.Histogram, len(classes))
	for i, c := range classes {
		perClass[i] = reg.Histogram("latency_class", "per class", latencyBuckets, obs.L("class", c.Name))
	}

	// Weighted pick table.
	var picks []int
	for i, c := range classes {
		w := c.Weight
		if w <= 0 {
			w = 1
		}
		for j := 0; j < w; j++ {
			picks = append(picks, i)
		}
	}

	startHits, startLookups := scrapePlanCache(cfg.Addr)

	var requests, errors, busy, rows atomic.Int64
	classReq := make([]atomic.Int64, len(classes))
	classErr := make([]atomic.Int64, len(classes))
	classRows := make([]atomic.Int64, len(classes))
	var firstErrs sync.Map // class index -> first error string, for the report

	deadline := time.Now().Add(cfg.Duration)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			client := avatica.NewClient(cfg.Addr)
			if len(cfg.Tenants) > 0 {
				client.Tenant = cfg.Tenants[w%len(cfg.Tenants)]
			}
			// Prepare each prepared class once; the repeated executions are
			// the plan-cache hit stream.
			prepared := make([]int64, len(classes))
			for i, c := range classes {
				if !c.Prepared {
					continue
				}
				id, err := client.Prepare(c.SQL)
				if err != nil {
					errors.Add(1)
					firstErrs.LoadOrStore(i, "prepare: "+err.Error())
					return
				}
				prepared[i] = id
			}
			defer func() {
				for i, id := range prepared {
					if classes[i].Prepared && id != 0 {
						client.Close(id)
					}
				}
			}()
			for time.Now().Before(deadline) {
				ci := picks[rng.Intn(len(picks))]
				c := classes[ci]
				requests.Add(1)
				classReq[ci].Add(1)
				t0 := time.Now()
				n, err := runOne(client, c, prepared[ci], rng)
				if err != nil {
					if isBusy(err) {
						busy.Add(1)
					} else {
						errors.Add(1)
						classErr[ci].Add(1)
						firstErrs.LoadOrStore(ci, err.Error())
					}
					continue
				}
				el := time.Since(t0).Seconds()
				overall.Observe(el)
				perClass[ci].Observe(el)
				rows.Add(int64(n))
				classRows[ci].Add(int64(n))
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	endHits, endLookups := scrapePlanCache(cfg.Addr)
	hitRate := -1.0
	if startLookups >= 0 && endLookups > startLookups {
		hitRate = float64(endHits-startHits) / float64(endLookups-startLookups)
	}

	res := &Result{
		Requests: requests.Load(),
		Errors:   errors.Load(),
		Busy:     busy.Load(),
		Rows:     rows.Load(),
		Elapsed:  elapsed,
		P50:      secs(overall.Quantile(0.50)),
		P95:      secs(overall.Quantile(0.95)),
		P99:      secs(overall.Quantile(0.99)),
		HitRate:  hitRate,
	}
	for i, c := range classes {
		cs := ClassStats{
			Name:     c.Name,
			Requests: classReq[i].Load(),
			Errors:   classErr[i].Load(),
			Rows:     classRows[i].Load(),
			P50:      secs(perClass[i].Quantile(0.50)),
			P95:      secs(perClass[i].Quantile(0.95)),
			P99:      secs(perClass[i].Quantile(0.99)),
		}
		res.Classes = append(res.Classes, cs)
	}

	// Verdict.
	if res.Requests == 0 {
		res.Failures = append(res.Failures, "no requests completed")
	}
	if res.Requests > 0 {
		rate := float64(res.Errors) / float64(res.Requests)
		if rate > cfg.MaxErrorRate {
			detail := ""
			firstErrs.Range(func(k, v any) bool {
				detail = fmt.Sprintf(" (first: %s: %v)", classes[k.(int)].Name, v)
				return false
			})
			res.Failures = append(res.Failures,
				fmt.Sprintf("error rate %.4f > %.4f%s", rate, cfg.MaxErrorRate, detail))
		}
	}
	if cfg.MaxP99 > 0 && res.P99 > cfg.MaxP99 {
		res.Failures = append(res.Failures,
			fmt.Sprintf("p99 %s > bound %s", res.P99, cfg.MaxP99))
	}
	if cfg.MinHitRate > 0 {
		if res.HitRate < 0 {
			res.Failures = append(res.Failures, "plan-cache hit rate unavailable from /metrics")
		} else if res.HitRate < cfg.MinHitRate {
			res.Failures = append(res.Failures,
				fmt.Sprintf("plan-cache hit rate %.3f < %.3f", res.HitRate, cfg.MinHitRate))
		}
	}
	return res, nil
}

// runOne executes one request of class c, returning the row count.
func runOne(client *avatica.Client, c Class, preparedID int64, rng *rand.Rand) (int, error) {
	var params []any
	if c.Params != nil {
		params = c.Params(rng)
	}
	req := avatica.ExecuteRequest{Params: params, FetchSize: c.FetchSize}
	if c.Prepared {
		req.StatementID = preparedID
	} else {
		req.SQL = c.SQL
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	n := len(resp.Rows)
	// Drain a paginated result frame by frame, then drop the cursor's
	// statement if the server minted an implicit one.
	implicit := resp.StatementID != 0 && !c.Prepared
	for resp.More {
		resp, err = client.Fetch(resp.StatementID, c.FetchSize)
		if err != nil {
			return n, err
		}
		n += len(resp.Rows)
	}
	if implicit {
		if err := client.Close(resp.StatementID); err != nil {
			return n, err
		}
	}
	return n, nil
}

func isBusy(err error) bool {
	return err != nil && strings.Contains(err.Error(), "server busy")
}

func secs(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }

// scrapePlanCache reads the plan-cache hit/miss counters from /metrics;
// (-1, -1) when the scrape fails.
func scrapePlanCache(addr string) (hits, lookups int64) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return -1, -1
	}
	defer resp.Body.Close()
	var h, m int64 = -1, -1
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "calcite_plan_cache_hits_total "):
			h = parseMetricValue(line)
		case strings.HasPrefix(line, "calcite_plan_cache_misses_total "):
			m = parseMetricValue(line)
		}
	}
	if h < 0 || m < 0 {
		return -1, -1
	}
	return h, h + m
}

func parseMetricValue(line string) int64 {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return -1
	}
	v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
	if err != nil {
		return -1
	}
	return int64(v)
}

// Render writes the human-readable report.
func (r *Result) Render(w io.Writer) {
	fmt.Fprintf(w, "loadgen: %d requests in %s (%.0f req/s), %d rows\n",
		r.Requests, r.Elapsed.Round(time.Millisecond),
		float64(r.Requests)/r.Elapsed.Seconds(), r.Rows)
	fmt.Fprintf(w, "  errors: %d, busy rejections: %d\n", r.Errors, r.Busy)
	fmt.Fprintf(w, "  latency: p50=%s p95=%s p99=%s\n",
		r.P50.Round(10*time.Microsecond), r.P95.Round(10*time.Microsecond),
		r.P99.Round(10*time.Microsecond))
	if r.HitRate >= 0 {
		fmt.Fprintf(w, "  plan-cache hit rate: %.1f%%\n", 100*r.HitRate)
	}
	classes := append([]ClassStats(nil), r.Classes...)
	sort.Slice(classes, func(i, j int) bool { return classes[i].Name < classes[j].Name })
	for _, c := range classes {
		fmt.Fprintf(w, "  class %-8s %6d req %3d err  p50=%-10s p95=%-10s p99=%s\n",
			c.Name, c.Requests, c.Errors,
			c.P50.Round(10*time.Microsecond), c.P95.Round(10*time.Microsecond),
			c.P99.Round(10*time.Microsecond))
	}
	if r.Passed() {
		fmt.Fprintln(w, "verdict: PASS")
	} else {
		fmt.Fprintln(w, "verdict: FAIL")
		for _, f := range r.Failures {
			fmt.Fprintln(w, "  -", f)
		}
	}
}
