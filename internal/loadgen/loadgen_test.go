package loadgen

// End-to-end smoke: boot a real server over the demo + star schema and run
// a short load, checking the verdict machinery and the plan-cache hit-rate
// scrape against the live /metrics endpoint.

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"calcite"
	"calcite/internal/avatica"
)

// loadFixture mirrors cmd/avaticasrv's demo + star schema at test scale.
func loadFixture(conn *calcite.Connection, factRows int) {
	rows := make([][]any, 2000)
	msgs := [...]string{"hello", "world", "lorem", "ipsum"}
	for i := range rows {
		h := uint64(i) * 0x9e3779b97f4a7c15
		rows[i] = []any{int64(i + 1), int64(h % 97), float64(h%100000) / 100, msgs[i%len(msgs)]}
	}
	conn.AddTable("demo", calcite.Columns{
		{Name: "id", Type: calcite.BigIntType},
		{Name: "grp", Type: calcite.BigIntType},
		{Name: "val", Type: calcite.DoubleType},
		{Name: "msg", Type: calcite.VarcharType},
	}, rows)

	const dimRows = 20
	for di, name := range []string{"d_cust", "d_prod", "d_geo", "d_time"} {
		dim := make([][]any, dimRows)
		for i := 0; i < dimRows; i++ {
			dim[i] = []any{int64(i), fmt.Sprintf("%s-%03d", name, i), int64((i * (di + 3)) % 17)}
		}
		conn.AddTable(name, calcite.Columns{
			{Name: "id", Type: calcite.BigIntType},
			{Name: "label", Type: calcite.VarcharType},
			{Name: "attr", Type: calcite.BigIntType},
		}, dim)
	}
	fact := make([][]any, factRows)
	for i := range fact {
		h := uint64(i)*0x9e3779b97f4a7c15 + 0x1234
		fact[i] = []any{
			int64(i), int64(h % dimRows), int64((h >> 8) % dimRows),
			int64((h >> 16) % dimRows), int64((h >> 24) % dimRows),
			float64(h%100000) / 100,
		}
	}
	conn.AddTable("fact", calcite.Columns{
		{Name: "id", Type: calcite.BigIntType},
		{Name: "cust_id", Type: calcite.BigIntType},
		{Name: "prod_id", Type: calcite.BigIntType},
		{Name: "geo_id", Type: calcite.BigIntType},
		{Name: "time_id", Type: calcite.BigIntType},
		{Name: "amount", Type: calcite.DoubleType},
	}, fact)
}

func TestLoadgenEndToEnd(t *testing.T) {
	conn := calcite.Open()
	// Pin the budget: under the CI low-memory matrix (CALCITE_MEM_LIMIT)
	// the default pool would be too small to retain the sort class's
	// cursors, which is that configuration's correct behavior but not what
	// this test measures.
	conn.SetMemoryLimit(64 << 20)
	loadFixture(conn, 500)
	srv := avatica.NewServer(conn.Framework)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	res, err := Run(Config{
		Addr:         addr,
		Workers:      8,
		Duration:     2 * time.Second,
		Tenants:      []string{"acme", "globex"},
		MaxErrorRate: 0,
		MaxP99:       10 * time.Second,
		MinHitRate:   0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var report strings.Builder
	res.Render(&report)
	t.Log("\n" + report.String())
	if !res.Passed() {
		t.Fatalf("load run failed: %v", res.Failures)
	}
	if res.Requests < int64(len(DefaultClasses())) {
		t.Fatalf("suspiciously few requests: %d", res.Requests)
	}
	// Prepared point/star classes repeat two statements endlessly; with
	// paginated sort and window classes also repeating, the plan cache
	// should be nearly all hits after warmup.
	if res.HitRate < 0.9 {
		t.Fatalf("plan-cache hit rate %.3f, want > 0.9", res.HitRate)
	}
	// Every class must actually have run and returned rows.
	for _, c := range res.Classes {
		if c.Requests == 0 {
			t.Fatalf("class %s never ran", c.Name)
		}
		if c.Rows == 0 {
			t.Fatalf("class %s returned no rows", c.Name)
		}
	}
}

// TestLoadgenVerdictFails checks the gate actually gates: an impossible p99
// bound must fail the run.
func TestLoadgenVerdictFails(t *testing.T) {
	conn := calcite.Open()
	loadFixture(conn, 50)
	srv := avatica.NewServer(conn.Framework)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()

	conn.SetMemoryLimit(64 << 20)
	res, err := Run(Config{
		Addr:     addr,
		Workers:  2,
		Duration: 300 * time.Millisecond,
		MaxP99:   time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("1ns p99 bound should fail")
	}
}
