package parser

import (
	"strings"
	"testing"
)

func mustParse(t *testing.T, sql string) Statement {
	t.Helper()
	stmt, err := Parse(sql)
	if err != nil {
		t.Fatalf("Parse(%q): %v", sql, err)
	}
	return stmt
}

func TestParseSelectBasics(t *testing.T) {
	stmt := mustParse(t, `SELECT a, b.c AS x, * FROM t WHERE a > 1 GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC LIMIT 10 OFFSET 5`)
	sel := stmt.(*SelectStmt)
	if len(sel.Items) != 3 || !sel.Items[2].Star {
		t.Fatalf("items: %+v", sel.Items)
	}
	if sel.Items[1].Alias != "x" {
		t.Errorf("alias: %+v", sel.Items[1])
	}
	if sel.Where == nil || len(sel.GroupBy) != 1 || sel.Having == nil {
		t.Error("missing clauses")
	}
	if len(sel.OrderBy) != 1 || !sel.OrderBy[0].Desc {
		t.Errorf("order: %+v", sel.OrderBy)
	}
	if sel.Limit == nil || sel.Offset == nil {
		t.Error("missing limit/offset")
	}
}

func TestParseJoins(t *testing.T) {
	stmt := mustParse(t, `SELECT * FROM a JOIN b ON a.x = b.y LEFT JOIN c USING (z), d`)
	sel := stmt.(*SelectStmt)
	comma := sel.From.(*JoinExpr)
	if comma.Kind != "COMMA" {
		t.Fatalf("outer join kind %s", comma.Kind)
	}
	left := comma.Left.(*JoinExpr)
	if left.Kind != "LEFT" || len(left.Using) != 1 {
		t.Fatalf("left join: %+v", left)
	}
	inner := left.Left.(*JoinExpr)
	if inner.Kind != "INNER" || inner.On == nil {
		t.Fatalf("inner join: %+v", inner)
	}
}

func TestParseSetOps(t *testing.T) {
	stmt := mustParse(t, `SELECT a FROM t UNION ALL SELECT b FROM u ORDER BY 1 LIMIT 3`)
	s := stmt.(*SetOpStmt)
	if s.Op != "UNION" || !s.All {
		t.Fatalf("%+v", s)
	}
	if len(s.OrderBy) != 1 || s.Limit == nil {
		t.Error("trailing order/limit missing")
	}
	stmt = mustParse(t, "SELECT a FROM t INTERSECT SELECT a FROM u EXCEPT SELECT a FROM v")
	if stmt.(*SetOpStmt).Op != "EXCEPT" {
		t.Error("set ops should associate left")
	}
}

func TestParseExpressions(t *testing.T) {
	sel := mustParse(t, `SELECT CASE WHEN a = 1 THEN 'x' ELSE 'y' END,
		CAST(b AS VARCHAR(10)), m['k'][0], a NOT IN (1, 2), c BETWEEN 1 AND 5,
		d IS NOT NULL, -e + 2 * 3, s LIKE 'a%', ?, INTERVAL '1' HOUR
		FROM t`).(*SelectStmt)
	if len(sel.Items) != 10 {
		t.Fatalf("items: %d", len(sel.Items))
	}
	if _, ok := sel.Items[0].Expr.(*CaseExpr); !ok {
		t.Error("case")
	}
	if c, ok := sel.Items[1].Expr.(*CastExpr); !ok || c.Type.Precision != 10 {
		t.Error("cast")
	}
	if _, ok := sel.Items[2].Expr.(*ItemExpr); !ok {
		t.Error("item")
	}
	if in, ok := sel.Items[3].Expr.(*InExpr); !ok || !in.Not {
		t.Error("not in")
	}
	if iv, ok := sel.Items[9].Expr.(*IntervalLit); !ok || iv.Millis != 3600000 {
		t.Error("interval")
	}
}

func TestParsePrecedence(t *testing.T) {
	sel := mustParse(t, "SELECT a OR b AND c = d + e * f FROM t").(*SelectStmt)
	or := sel.Items[0].Expr.(*BinaryExpr)
	if or.Op != "OR" {
		t.Fatalf("top op %s", or.Op)
	}
	and := or.Right.(*BinaryExpr)
	if and.Op != "AND" {
		t.Fatalf("second op %s", and.Op)
	}
	eq := and.Right.(*BinaryExpr)
	if eq.Op != "=" {
		t.Fatalf("third op %s", eq.Op)
	}
	plus := eq.Right.(*BinaryExpr)
	if plus.Op != "+" {
		t.Fatalf("fourth op %s", plus.Op)
	}
	if plus.Right.(*BinaryExpr).Op != "*" {
		t.Error("* should bind tightest")
	}
}

func TestParseStreamAndWindows(t *testing.T) {
	sel := mustParse(t, `SELECT STREAM rowtime, SUM(units) OVER (ORDER BY rowtime PARTITION BY p RANGE INTERVAL '1' HOUR PRECEDING) FROM orders`).(*SelectStmt)
	if !sel.Stream {
		t.Error("STREAM flag")
	}
	f := sel.Items[1].Expr.(*FuncCall)
	if f.Over == nil || len(f.Over.PartitionBy) != 1 || len(f.Over.OrderBy) != 1 {
		t.Fatalf("over: %+v", f.Over)
	}
	if f.Over.Frame == nil || f.Over.Frame.Rows {
		t.Error("RANGE frame expected")
	}
	sel = mustParse(t, `SELECT STREAM TUMBLE_END(rowtime, INTERVAL '1' HOUR) FROM o GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR), p`).(*SelectStmt)
	if len(sel.GroupBy) != 2 {
		t.Error("group windows")
	}
}

// TestParseGroupWindows: the windowed-stream grammar — TUMBLE/HOP/SESSION
// in GROUP BY, their _START/_END auxiliaries in the select list, and the
// optional lateness interval — all parse as plain function calls with the
// expected shapes (semantic validation happens in sql2rel).
func TestParseGroupWindows(t *testing.T) {
	sel := mustParse(t, `SELECT STREAM HOP_START(rowtime, INTERVAL '30' MINUTE, INTERVAL '1' HOUR) AS ws,
		HOP_END(rowtime, INTERVAL '30' MINUTE, INTERVAL '1' HOUR) AS we, k, SUM(v) AS s
		FROM s.events GROUP BY HOP(rowtime, INTERVAL '30' MINUTE, INTERVAL '1' HOUR), k`).(*SelectStmt)
	if !sel.Stream {
		t.Error("STREAM flag")
	}
	ws := sel.Items[0].Expr.(*FuncCall)
	if ws.Name != "HOP_START" || len(ws.Args) != 3 {
		t.Fatalf("HOP_START: %+v", ws)
	}
	if _, ok := ws.Args[1].(*IntervalLit); !ok {
		t.Fatalf("slide arg: %T", ws.Args[1])
	}
	hop := sel.GroupBy[0].(*FuncCall)
	if hop.Name != "HOP" || len(hop.Args) != 3 {
		t.Fatalf("HOP: %+v", hop)
	}

	sel = mustParse(t, `SELECT STREAM SESSION_END(rowtime, INTERVAL '5' SECOND), COUNT(*)
		FROM s.events GROUP BY SESSION(rowtime, INTERVAL '5' SECOND, INTERVAL '2' SECOND)`).(*SelectStmt)
	sess := sel.GroupBy[0].(*FuncCall)
	if sess.Name != "SESSION" || len(sess.Args) != 3 {
		t.Fatalf("SESSION with lateness: %+v", sess)
	}
	iv := sess.Args[2].(*IntervalLit)
	if iv.Millis != 2000 {
		t.Fatalf("lateness interval: %+v", iv)
	}

	// The interval units compose: minutes and seconds are both millis.
	sel = mustParse(t, `SELECT STREAM COUNT(*) FROM o GROUP BY TUMBLE(rowtime, INTERVAL '2' MINUTE)`).(*SelectStmt)
	tum := sel.GroupBy[0].(*FuncCall)
	if tum.Args[1].(*IntervalLit).Millis != 120000 {
		t.Fatalf("TUMBLE size: %+v", tum.Args[1])
	}
}

func TestParseFrameBounds(t *testing.T) {
	frameOf := func(sql string) *FrameSpec {
		t.Helper()
		sel := mustParse(t, sql).(*SelectStmt)
		return sel.Items[0].Expr.(*FuncCall).Over.Frame
	}
	fs := frameOf(`SELECT SUM(v) OVER (ORDER BY v ROWS 3 PRECEDING) FROM t`)
	if !fs.Rows || fs.Lo.Offset == nil || fs.Lo.Following || !fs.Hi.Current {
		t.Errorf("short form: %+v", fs)
	}
	fs = frameOf(`SELECT SUM(v) OVER (ORDER BY v ROWS BETWEEN 3 PRECEDING AND 1 PRECEDING) FROM t`)
	if fs.Hi.Offset == nil || fs.Hi.Following {
		t.Errorf("upper PRECEDING bound: %+v", fs)
	}
	fs = frameOf(`SELECT SUM(v) OVER (ORDER BY v ROWS BETWEEN CURRENT ROW AND UNBOUNDED FOLLOWING) FROM t`)
	if !fs.Lo.Current || !fs.Hi.Unbounded {
		t.Errorf("current..unbounded: %+v", fs)
	}
	fs = frameOf(`SELECT SUM(v) OVER (ORDER BY v RANGE BETWEEN 2 FOLLOWING AND 5 FOLLOWING) FROM t`)
	if fs.Rows || !fs.Lo.Following || !fs.Hi.Following {
		t.Errorf("following..following: %+v", fs)
	}
	// UNBOUNDED must take the direction of its endpoint, and the short form
	// cannot point forward.
	for _, bad := range []string{
		`SELECT SUM(v) OVER (ORDER BY v ROWS BETWEEN UNBOUNDED FOLLOWING AND CURRENT ROW) FROM t`,
		`SELECT SUM(v) OVER (ORDER BY v ROWS BETWEEN CURRENT ROW AND UNBOUNDED PRECEDING) FROM t`,
		`SELECT SUM(v) OVER (ORDER BY v ROWS 3 FOLLOWING) FROM t`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("expected parse error: %s", bad)
		}
	}
}

func TestParseDDL(t *testing.T) {
	ct := mustParse(t, "CREATE TABLE s.t (id BIGINT, name VARCHAR(20), tags VARCHAR ARRAY)").(*CreateTableStmt)
	if len(ct.Name) != 2 || len(ct.Cols) != 3 {
		t.Fatalf("%+v", ct)
	}
	if ct.Cols[2].Type.Name != "ARRAY" {
		t.Errorf("array type: %+v", ct.Cols[2].Type)
	}
	cv := mustParse(t, "CREATE MATERIALIZED VIEW v AS SELECT a FROM t").(*CreateViewStmt)
	if !cv.Materialized || !strings.HasPrefix(cv.SQL, "SELECT") {
		t.Fatalf("%+v", cv)
	}
	ins := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x')").(*InsertStmt)
	if len(ins.Columns) != 2 {
		t.Fatalf("%+v", ins)
	}
	ex := mustParse(t, "EXPLAIN SELECT 1").(*ExplainStmt)
	if ex.Logical {
		t.Error("explain should be physical by default")
	}
}

func TestParseQuotedIdentifiers(t *testing.T) {
	sel := mustParse(t, `SELECT "Weird Name", `+"`tick`"+` FROM "My Table"`).(*SelectStmt)
	if sel.Items[0].Expr.(*Ident).Parts[0] != "Weird Name" {
		t.Error("quoted ident")
	}
	if sel.From.(*TableName).Path[0] != "My Table" {
		t.Error("quoted table")
	}
}

func TestParseComments(t *testing.T) {
	mustParse(t, "SELECT 1 -- trailing\n FROM t /* block */ WHERE a = 1")
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT a FROM t GROUP",
		"SELECT 'unterminated",
		"SELECT a FROM t JOIN u",                 // missing ON
		"SELECT CASE END FROM t",                 // empty case
		"SELECT * FROM t; SELECT 1 FROM u xx yy", // trailing garbage
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("expected error for %q", sql)
		}
	}
}

func TestParamNumbering(t *testing.T) {
	sel := mustParse(t, "SELECT ? FROM t WHERE a = ? AND b = ?").(*SelectStmt)
	if sel.Items[0].Expr.(*ParamExpr).Index != 0 {
		t.Error("first param index")
	}
	and := sel.Where.(*BinaryExpr)
	if and.Right.(*BinaryExpr).Right.(*ParamExpr).Index != 2 {
		t.Error("third param index")
	}
}

func TestParseAnalyze(t *testing.T) {
	stmt := mustParse(t, "ANALYZE TABLE sales")
	a, ok := stmt.(*AnalyzeStmt)
	if !ok || len(a.Table) != 1 || a.Table[0] != "sales" {
		t.Fatalf("got %#v", stmt)
	}
	// TABLE keyword optional, qualified names and dialect tails accepted.
	a = mustParse(t, "ANALYZE csv.orders COMPUTE STATISTICS").(*AnalyzeStmt)
	if len(a.Table) != 2 || a.Table[0] != "csv" || a.Table[1] != "orders" {
		t.Fatalf("got %#v", a)
	}
	if _, err := Parse("ANALYZE"); err == nil {
		t.Error("ANALYZE without a table must fail")
	}
	// ANALYZE is reserved: it cannot serve as a bare alias.
	if _, err := Parse("SELECT a FROM t analyze"); err == nil {
		t.Error("ANALYZE as alias must fail")
	}
}
