package parser

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexical tokens.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokQuotedIdent
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokenKind
	text string // for identifiers, the raw text; symbols are normalized
	pos  int
	// isInt is set for integer number tokens.
	isInt bool
}

// lexer tokenizes SQL text.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexIdent()
		case c >= '0' && c <= '9':
			l.lexNumber()
		case c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			l.lexNumber()
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '"' || c == '`':
			// Double quotes are ANSI quoted identifiers; backticks are the
			// MySQL dialect equivalent (accepted so the embedded SQL server
			// can parse rel2sql's MySQL output).
			if err := l.lexQuotedIdent(c); err != nil {
				return nil, err
			}
		default:
			if !l.lexSymbol() {
				return nil, fmt.Errorf("parser: unexpected character %q at position %d", c, start)
			}
		}
	}
}

func isIdentStart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '*':
			end := strings.Index(l.src[l.pos+2:], "*/")
			if end < 0 {
				l.pos = len(l.src)
			} else {
				l.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func (l *lexer) lexIdent() {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
		l.pos++
	}
	l.toks = append(l.toks, token{kind: tokIdent, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) lexNumber() {
	start := l.pos
	isInt := true
	for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
		l.pos++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		isInt = false
		l.pos++
		for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			l.pos++
		}
	}
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		save := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		if l.pos < len(l.src) && isDigit(l.src[l.pos]) {
			isInt = false
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
		} else {
			l.pos = save
		}
	}
	l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start, isInt: isInt})
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("parser: unterminated string literal at position %d", start)
}

func (l *lexer) lexQuotedIdent(quote byte) error {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == quote {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == quote {
				b.WriteByte(quote)
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tokQuotedIdent, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("parser: unterminated quoted identifier at position %d", start)
}

// multi-character symbols, longest first.
var symbols = []string{"<>", "<=", ">=", "!=", "||", "=", "<", ">", "(", ")", ",", ".", "+", "-", "*", "/", "%", "[", "]", "?", ";"}

func (l *lexer) lexSymbol() bool {
	for _, s := range symbols {
		if strings.HasPrefix(l.src[l.pos:], s) {
			text := s
			if s == "!=" {
				text = "<>"
			}
			l.toks = append(l.toks, token{kind: tokSymbol, text: text, pos: l.pos})
			l.pos += len(s)
			return true
		}
	}
	return false
}
