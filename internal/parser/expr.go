package parser

import (
	"strconv"
	"strings"
)

// Expression parsing: Pratt-style precedence climbing.
//
// Precedence (loosest to tightest):
//
//	OR < AND < NOT < comparison/IS/LIKE/BETWEEN/IN < || < + - < * / % < unary < postfix [] .

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &BinaryExpr{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "NOT", Operand: inner}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		switch {
		case t.kind == tokSymbol && (t.text == "=" || t.text == "<>" || t.text == "<" ||
			t.text == "<=" || t.text == ">" || t.text == ">="):
			p.pos++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.text, Left: left, Right: right}
		case p.isKeyword("IS"):
			p.pos++
			not := p.acceptKeyword("NOT")
			if err := p.expectKeyword("NULL"); err != nil {
				return nil, err
			}
			left = &IsNullExpr{Operand: left, Not: not}
		case p.isKeyword("LIKE"):
			p.pos++
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: "LIKE", Left: left, Right: right}
		case p.isKeyword("NOT"):
			// x NOT LIKE / NOT BETWEEN / NOT IN
			save := p.pos
			p.pos++
			switch {
			case p.acceptKeyword("LIKE"):
				right, err := p.parseAdditive()
				if err != nil {
					return nil, err
				}
				left = &UnaryExpr{Op: "NOT", Operand: &BinaryExpr{Op: "LIKE", Left: left, Right: right}}
			case p.isKeyword("BETWEEN"):
				b, err := p.parseBetween(left)
				if err != nil {
					return nil, err
				}
				b.(*BetweenExpr).Not = true
				left = b
			case p.isKeyword("IN"):
				in, err := p.parseIn(left)
				if err != nil {
					return nil, err
				}
				in.(*InExpr).Not = true
				left = in
			default:
				p.pos = save
				return left, nil
			}
		case p.isKeyword("BETWEEN"):
			b, err := p.parseBetween(left)
			if err != nil {
				return nil, err
			}
			left = b
		case p.isKeyword("IN"):
			in, err := p.parseIn(left)
			if err != nil {
				return nil, err
			}
			left = in
		default:
			return left, nil
		}
	}
}

func (p *parser) parseBetween(operand Expr) (Expr, error) {
	if err := p.expectKeyword("BETWEEN"); err != nil {
		return nil, err
	}
	lo, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AND"); err != nil {
		return nil, err
	}
	hi, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	return &BetweenExpr{Operand: operand, Low: lo, High: hi}, nil
}

func (p *parser) parseIn(operand Expr) (Expr, error) {
	if err := p.expectKeyword("IN"); err != nil {
		return nil, err
	}
	if err := p.expect("("); err != nil {
		return nil, err
	}
	var list []Expr
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		list = append(list, e)
		if !p.accept(",") {
			break
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return &InExpr{Operand: operand, List: list}, nil
}

func (p *parser) parseAdditive() (Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-" || t.text == "||") {
			p.pos++
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/" || t.text == "%") {
			p.pos++
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &BinaryExpr{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.accept("-") {
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: "-", Operand: inner}, nil
	}
	if p.accept("+") {
		return p.parseUnary()
	}
	return p.parsePostfix()
}

// parsePostfix handles the [] item operator.
func (p *parser) parsePostfix() (Expr, error) {
	base, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.accept("[") {
		idx, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect("]"); err != nil {
			return nil, err
		}
		base = &ItemExpr{Base: base, Index: idx}
	}
	return base, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.pos++
		return &NumberLit{Text: t.text, IsInt: t.isInt}, nil
	case t.kind == tokString:
		p.pos++
		return &StringLit{Value: t.text}, nil
	case p.accept("?"):
		e := &ParamExpr{Index: p.nextParam}
		p.nextParam++
		return e, nil
	case p.accept("("):
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokQuotedIdent:
		return p.parseIdentExpr()
	case t.kind == tokIdent:
		upper := strings.ToUpper(t.text)
		switch upper {
		case "TRUE":
			p.pos++
			return &BoolLit{Value: true}, nil
		case "FALSE":
			p.pos++
			return &BoolLit{Value: false}, nil
		case "NULL":
			p.pos++
			return &NullLit{}, nil
		case "CASE":
			return p.parseCase()
		case "CAST":
			return p.parseCast()
		case "INTERVAL":
			return p.parseInterval()
		}
		// Function call?
		if p.toks[p.pos+1].kind == tokSymbol && p.toks[p.pos+1].text == "(" {
			return p.parseFuncCall()
		}
		if reserved[upper] {
			return nil, p.errorf("unexpected keyword %s in expression", upper)
		}
		return p.parseIdentExpr()
	}
	return nil, p.errorf("unexpected token in expression")
}

func (p *parser) parseIdentExpr() (Expr, error) {
	parts := []string{p.next().text}
	for p.accept(".") {
		t := p.peek()
		if t.kind != tokIdent && t.kind != tokQuotedIdent {
			return nil, p.errorf("expected identifier after '.'")
		}
		p.pos++
		parts = append(parts, t.text)
	}
	return &Ident{Parts: parts}, nil
}

func (p *parser) parseCase() (Expr, error) {
	p.pos++ // CASE
	c := &CaseExpr{}
	if !p.isKeyword("WHEN") {
		operand, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Operand = operand
	}
	for p.acceptKeyword("WHEN") {
		when, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, WhenClause{When: when, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE requires at least one WHEN")
	}
	if p.acceptKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

func (p *parser) parseCast() (Expr, error) {
	p.pos++ // CAST
	if err := p.expect("("); err != nil {
		return nil, err
	}
	operand, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("AS"); err != nil {
		return nil, err
	}
	ts, err := p.parseTypeSpec()
	if err != nil {
		return nil, err
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	return &CastExpr{Operand: operand, Type: ts}, nil
}

// parseInterval parses INTERVAL '<n>' <unit>.
func (p *parser) parseInterval() (Expr, error) {
	p.pos++ // INTERVAL
	t := p.peek()
	if t.kind != tokString {
		return nil, p.errorf("expected string after INTERVAL")
	}
	p.pos++
	n, err := strconv.ParseFloat(strings.TrimSpace(t.text), 64)
	if err != nil {
		return nil, p.errorf("bad interval value %q", t.text)
	}
	unitTok := p.peek()
	if unitTok.kind != tokIdent {
		return nil, p.errorf("expected interval unit")
	}
	p.pos++
	var ms float64
	switch strings.ToUpper(unitTok.text) {
	case "SECOND", "SECONDS":
		ms = 1000
	case "MINUTE", "MINUTES":
		ms = 60 * 1000
	case "HOUR", "HOURS":
		ms = 3600 * 1000
	case "DAY", "DAYS":
		ms = 24 * 3600 * 1000
	default:
		return nil, p.errorf("unsupported interval unit %q", unitTok.text)
	}
	return &IntervalLit{
		Millis: int64(n * ms),
		Text:   "INTERVAL '" + t.text + "' " + strings.ToUpper(unitTok.text),
	}, nil
}

func (p *parser) parseFuncCall() (Expr, error) {
	name := p.next().text
	p.next() // "("
	f := &FuncCall{Name: strings.ToUpper(name)}
	if p.accept("*") {
		f.Star = true
	} else if !(p.peek().kind == tokSymbol && p.peek().text == ")") {
		if p.acceptKeyword("DISTINCT") {
			f.Distinct = true
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, e)
			if !p.accept(",") {
				break
			}
		}
	}
	if err := p.expect(")"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("OVER") {
		spec, err := p.parseWindowSpec()
		if err != nil {
			return nil, err
		}
		f.Over = spec
	}
	return f, nil
}

func (p *parser) parseWindowSpec() (*WindowSpec, error) {
	if err := p.expect("("); err != nil {
		return nil, err
	}
	spec := &WindowSpec{}
	// The paper's example writes ORDER BY before PARTITION BY; accept both
	// clauses in either order.
	for {
		switch {
		case p.acceptKeyword("PARTITION"):
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				spec.PartitionBy = append(spec.PartitionBy, e)
				if !p.accept(",") {
					break
				}
			}
		case p.acceptKeyword("ORDER"):
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item := OrderItem{Expr: e}
				if p.acceptKeyword("DESC") {
					item.Desc = true
				} else {
					p.acceptKeyword("ASC")
				}
				spec.OrderBy = append(spec.OrderBy, item)
				if !p.accept(",") {
					break
				}
			}
		case p.isKeyword("ROWS") || p.isKeyword("RANGE"):
			frame, err := p.parseFrameSpec()
			if err != nil {
				return nil, err
			}
			spec.Frame = frame
		default:
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return spec, nil
		}
	}
}

func (p *parser) parseFrameSpec() (*FrameSpec, error) {
	frame := &FrameSpec{}
	if p.acceptKeyword("ROWS") {
		frame.Rows = true
	} else if err := p.expectKeyword("RANGE"); err != nil {
		return nil, err
	}
	// parseFrameBound parses UNBOUNDED PRECEDING|FOLLOWING, CURRENT ROW, or
	// "<expr> PRECEDING|FOLLOWING". lower selects which UNBOUNDED direction
	// is legal for this endpoint.
	parseFrameBound := func(lower bool) (FrameBound, error) {
		if p.acceptKeyword("UNBOUNDED") {
			if lower {
				if err := p.expectKeyword("PRECEDING"); err != nil {
					return FrameBound{}, err
				}
			} else if err := p.expectKeyword("FOLLOWING"); err != nil {
				return FrameBound{}, err
			}
			return FrameBound{Unbounded: true}, nil
		}
		if p.acceptKeyword("CURRENT") {
			if err := p.expectKeyword("ROW"); err != nil {
				return FrameBound{}, err
			}
			return FrameBound{Current: true}, nil
		}
		e, err := p.parseAdditive()
		if err != nil {
			return FrameBound{}, err
		}
		if p.acceptKeyword("FOLLOWING") {
			return FrameBound{Offset: e, Following: true}, nil
		}
		if err := p.expectKeyword("PRECEDING"); err != nil {
			return FrameBound{}, err
		}
		return FrameBound{Offset: e}, nil
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := parseFrameBound(true)
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := parseFrameBound(false)
		if err != nil {
			return nil, err
		}
		frame.Lo, frame.Hi = lo, hi
		return frame, nil
	}
	// Short form: "<N> PRECEDING" / "UNBOUNDED PRECEDING" / "CURRENT ROW";
	// the upper bound defaults to CURRENT ROW.
	lo, err := parseFrameBound(true)
	if err != nil {
		return nil, err
	}
	if lo.Following {
		return nil, p.errorf("frame shorthand bound must be PRECEDING or CURRENT ROW")
	}
	frame.Lo = lo
	frame.Hi = FrameBound{Current: true}
	return frame, nil
}
