package parser

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a single SQL statement.
func Parse(sql string) (Statement, error) {
	toks, err := lex(sql)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: sql}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, p.errorf("unexpected trailing input %q", p.peek().text)
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
	src  string
	// nextParam numbers dynamic parameters in order of appearance.
	nextParam int
}

func (p *parser) peek() token { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) errorf(format string, args ...any) error {
	t := p.peek()
	return fmt.Errorf("parser: %s (at position %d near %q)", fmt.Sprintf(format, args...), t.pos, t.text)
}

// isKeyword reports whether the next token is the given (upper-case) keyword.
func (p *parser) isKeyword(kw string) bool {
	t := p.peek()
	return t.kind == tokIdent && strings.ToUpper(t.text) == kw
}

// peekKeywordAt reports whether the token at offset ahead of the cursor is
// the given keyword.
func (p *parser) peekKeywordAt(offset int, kw string) bool {
	if p.pos+offset >= len(p.toks) {
		return false
	}
	t := p.toks[p.pos+offset]
	return t.kind == tokIdent && strings.ToUpper(t.text) == kw
}

// acceptKeyword consumes a keyword if present.
func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

// expectKeyword consumes a required keyword.
func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errorf("expected %s", kw)
	}
	return nil
}

// accept consumes a symbol if present.
func (p *parser) accept(sym string) bool {
	t := p.peek()
	if t.kind == tokSymbol && t.text == sym {
		p.pos++
		return true
	}
	return false
}

// expect consumes a required symbol.
func (p *parser) expect(sym string) error {
	if !p.accept(sym) {
		return p.errorf("expected %q", sym)
	}
	return nil
}

// reserved keywords cannot start an alias or be bare identifiers in certain
// positions.
var reserved = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "HAVING": true,
	"ORDER": true, "LIMIT": true, "OFFSET": true, "UNION": true, "INTERSECT": true,
	"EXCEPT": true, "JOIN": true, "INNER": true, "LEFT": true, "RIGHT": true,
	"FULL": true, "CROSS": true, "ON": true, "USING": true, "AND": true, "OR": true,
	"NOT": true, "AS": true, "BY": true, "INSERT": true, "INTO": true,
	"VALUES": true, "CREATE": true, "EXPLAIN": true, "CASE": true, "WHEN": true,
	"THEN": true, "ELSE": true, "END": true, "IS": true, "NULL": true,
	"BETWEEN": true, "IN": true, "LIKE": true, "CAST": true, "DISTINCT": true,
	"STREAM": true, "OVER": true, "PARTITION": true, "ROWS": true, "RANGE": true,
	"INTERVAL": true, "TRUE": true, "FALSE": true, "FETCH": true, "ASC": true,
	"DESC": true, "ALL": true, "NATURAL": true, "PRECEDING": true, "FOLLOWING": true,
	"UNBOUNDED": true, "CURRENT": true, "EXISTS": true, "TABLE": true, "VIEW": true,
	"MATERIALIZED": true, "ANALYZE": true,
}

// parseIdentifier consumes one (unreserved or quoted) identifier.
func (p *parser) parseIdentifier() (string, error) {
	t := p.peek()
	switch t.kind {
	case tokQuotedIdent:
		p.pos++
		return t.text, nil
	case tokIdent:
		if reserved[strings.ToUpper(t.text)] {
			return "", p.errorf("unexpected keyword %s", strings.ToUpper(t.text))
		}
		p.pos++
		return t.text, nil
	}
	return "", p.errorf("expected identifier")
}

// parseQualifiedName parses a dotted name.
func (p *parser) parseQualifiedName() ([]string, error) {
	first, err := p.parseIdentifier()
	if err != nil {
		return nil, err
	}
	parts := []string{first}
	for p.accept(".") {
		next, err := p.parseIdentifier()
		if err != nil {
			return nil, err
		}
		parts = append(parts, next)
	}
	return parts, nil
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.isKeyword("EXPLAIN"):
		p.pos++
		logical := false
		analyze := false
		if p.acceptKeyword("LOGICAL") {
			logical = true
		} else if p.isKeyword("ANALYZE") && !p.peekKeywordAt(1, "TABLE") {
			// EXPLAIN ANALYZE <query> runs the query and reports run stats;
			// EXPLAIN ANALYZE TABLE t still explains the ANALYZE statement.
			p.pos++
			analyze = true
		}
		p.acceptKeyword("PLAN")
		p.acceptKeyword("FOR")
		inner, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Target: inner, Logical: logical, Analyze: analyze}, nil
	case p.isKeyword("INSERT"):
		return p.parseInsert()
	case p.isKeyword("CREATE"):
		return p.parseCreate()
	case p.isKeyword("ANALYZE"):
		p.pos++
		p.acceptKeyword("TABLE")
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		// Accept (and ignore) the ANSI-ish tail some dialects use.
		p.acceptKeyword("COMPUTE")
		p.acceptKeyword("STATISTICS")
		return &AnalyzeStmt{Table: name}, nil
	default:
		return p.parseQueryExpr()
	}
}

func (p *parser) parseInsert() (Statement, error) {
	p.pos++ // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	var cols []string
	if p.accept("(") {
		for {
			c, err := p.parseIdentifier()
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	src, err := p.parseQueryExpr()
	if err != nil {
		return nil, err
	}
	return &InsertStmt{Table: name, Columns: cols, Source: src}, nil
}

func (p *parser) parseCreate() (Statement, error) {
	p.pos++ // CREATE
	materialized := p.acceptKeyword("MATERIALIZED")
	switch {
	case p.acceptKeyword("TABLE"):
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		var cols []ColumnDef
		for {
			cn, err := p.parseIdentifier()
			if err != nil {
				return nil, err
			}
			ts, err := p.parseTypeSpec()
			if err != nil {
				return nil, err
			}
			cols = append(cols, ColumnDef{Name: cn, Type: ts})
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &CreateTableStmt{Name: name, Cols: cols}, nil
	case p.acceptKeyword("VIEW"):
		name, err := p.parseQualifiedName()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AS"); err != nil {
			return nil, err
		}
		bodyStart := p.peek().pos
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		return &CreateViewStmt{
			Name:         name,
			Materialized: materialized,
			Query:        q,
			SQL:          strings.TrimSpace(p.src[bodyStart:]),
		}, nil
	}
	return nil, p.errorf("expected TABLE or VIEW after CREATE")
}

// parseQueryExpr parses select/values possibly combined with set operators
// and a trailing ORDER BY/LIMIT/OFFSET.
func (p *parser) parseQueryExpr() (Statement, error) {
	left, err := p.parseQueryTerm()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.isKeyword("UNION"):
			op = "UNION"
		case p.isKeyword("INTERSECT"):
			op = "INTERSECT"
		case p.isKeyword("EXCEPT"):
			op = "EXCEPT"
		default:
			return p.attachOrderLimit(left)
		}
		p.pos++
		all := p.acceptKeyword("ALL")
		p.acceptKeyword("DISTINCT")
		right, err := p.parseQueryTerm()
		if err != nil {
			return nil, err
		}
		left = &SetOpStmt{Op: op, All: all, Left: left, Right: right}
	}
}

// attachOrderLimit attaches trailing ORDER BY / OFFSET / LIMIT to a query.
func (p *parser) attachOrderLimit(q Statement) (Statement, error) {
	var orderBy []OrderItem
	var limit, offset Expr
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				item.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			orderBy = append(orderBy, item)
			if !p.accept(",") {
				break
			}
		}
	}
	for {
		switch {
		case p.isKeyword("LIMIT"):
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			limit = e
		case p.isKeyword("OFFSET"):
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			p.acceptKeyword("ROWS")
			p.acceptKeyword("ROW")
			offset = e
		case p.isKeyword("FETCH"):
			p.pos++
			p.acceptKeyword("FIRST")
			p.acceptKeyword("NEXT")
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			p.acceptKeyword("ROWS")
			p.acceptKeyword("ROW")
			p.acceptKeyword("ONLY")
			limit = e
		default:
			goto done
		}
	}
done:
	if len(orderBy) == 0 && limit == nil && offset == nil {
		return q, nil
	}
	switch s := q.(type) {
	case *SelectStmt:
		if len(s.OrderBy) == 0 && s.Limit == nil && s.Offset == nil {
			s.OrderBy, s.Limit, s.Offset = orderBy, limit, offset
			return s, nil
		}
	case *SetOpStmt:
		s.OrderBy, s.Limit, s.Offset = orderBy, limit, offset
		return s, nil
	}
	return nil, p.errorf("unexpected ORDER BY / LIMIT")
}

// parseQueryTerm parses SELECT ..., VALUES ..., or a parenthesized query.
func (p *parser) parseQueryTerm() (Statement, error) {
	switch {
	case p.isKeyword("SELECT"):
		return p.parseSelect()
	case p.isKeyword("VALUES"):
		p.pos++
		var rows [][]Expr
		for {
			if err := p.expect("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			rows = append(rows, row)
			if !p.accept(",") {
				break
			}
		}
		return &ValuesStmt{Rows: rows}, nil
	case p.accept("("):
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return q, nil
	}
	return nil, p.errorf("expected SELECT, VALUES or subquery")
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{}
	if p.acceptKeyword("STREAM") {
		sel.Stream = true
	}
	if p.acceptKeyword("DISTINCT") {
		sel.Distinct = true
	} else {
		p.acceptKeyword("ALL")
	}
	// Select list.
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		sel.Items = append(sel.Items, item)
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKeyword("FROM") {
		from, err := p.parseTableExpr()
		if err != nil {
			return nil, err
		}
		sel.From = from
	}
	if p.acceptKeyword("WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = e
	}
	return sel, nil
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.accept("*") {
		return SelectItem{Star: true}, nil
	}
	// alias.* ?
	save := p.pos
	if p.peek().kind == tokIdent && !reserved[strings.ToUpper(p.peek().text)] {
		name := p.next().text
		if p.accept(".") && p.accept("*") {
			return SelectItem{Star: true, Table: name}, nil
		}
		p.pos = save
	}
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.acceptKeyword("AS") {
		a, err := p.parseAliasIdent()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().kind == tokQuotedIdent ||
		(p.peek().kind == tokIdent && !reserved[strings.ToUpper(p.peek().text)]) {
		item.Alias = p.next().text
	}
	return item, nil
}

// parseAliasIdent allows quoted or plain identifiers as aliases.
func (p *parser) parseAliasIdent() (string, error) {
	t := p.peek()
	if t.kind == tokQuotedIdent || t.kind == tokIdent {
		p.pos++
		return t.text, nil
	}
	return "", p.errorf("expected alias identifier")
}

// parseTableExpr parses the FROM clause with joins (left-associative).
func (p *parser) parseTableExpr() (TableExpr, error) {
	left, err := p.parseTablePrimary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(","):
			right, err := p.parseTablePrimary()
			if err != nil {
				return nil, err
			}
			left = &JoinExpr{Kind: "COMMA", Left: left, Right: right}
		case p.isKeyword("JOIN") || p.isKeyword("INNER") || p.isKeyword("LEFT") ||
			p.isKeyword("RIGHT") || p.isKeyword("FULL") || p.isKeyword("CROSS"):
			kind := "INNER"
			switch {
			case p.acceptKeyword("INNER"):
			case p.acceptKeyword("LEFT"):
				kind = "LEFT"
				p.acceptKeyword("OUTER")
			case p.acceptKeyword("RIGHT"):
				kind = "RIGHT"
				p.acceptKeyword("OUTER")
			case p.acceptKeyword("FULL"):
				kind = "FULL"
				p.acceptKeyword("OUTER")
			case p.acceptKeyword("CROSS"):
				kind = "CROSS"
			}
			if err := p.expectKeyword("JOIN"); err != nil {
				return nil, err
			}
			right, err := p.parseTablePrimary()
			if err != nil {
				return nil, err
			}
			join := &JoinExpr{Kind: kind, Left: left, Right: right}
			switch {
			case p.acceptKeyword("ON"):
				cond, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				join.On = cond
			case p.acceptKeyword("USING"):
				if err := p.expect("("); err != nil {
					return nil, err
				}
				for {
					c, err := p.parseIdentifier()
					if err != nil {
						return nil, err
					}
					join.Using = append(join.Using, c)
					if !p.accept(",") {
						break
					}
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			default:
				if kind != "CROSS" {
					return nil, p.errorf("expected ON or USING after JOIN")
				}
			}
			left = join
		default:
			return left, nil
		}
	}
}

func (p *parser) parseTablePrimary() (TableExpr, error) {
	if p.accept("(") {
		q, err := p.parseQueryExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		alias := ""
		if p.acceptKeyword("AS") {
			a, err := p.parseAliasIdent()
			if err != nil {
				return nil, err
			}
			alias = a
		} else if p.peek().kind == tokQuotedIdent ||
			(p.peek().kind == tokIdent && !reserved[strings.ToUpper(p.peek().text)]) {
			alias = p.next().text
		}
		return &SubqueryTable{Query: q, Alias: alias}, nil
	}
	path, err := p.parseQualifiedName()
	if err != nil {
		return nil, err
	}
	t := &TableName{Path: path}
	if p.acceptKeyword("AS") {
		a, err := p.parseAliasIdent()
		if err != nil {
			return nil, err
		}
		t.Alias = a
	} else if p.peek().kind == tokQuotedIdent ||
		(p.peek().kind == tokIdent && !reserved[strings.ToUpper(p.peek().text)]) {
		t.Alias = p.next().text
	}
	return t, nil
}

// parseTypeSpec parses a SQL type name.
func (p *parser) parseTypeSpec() (TypeSpec, error) {
	t := p.peek()
	if t.kind != tokIdent {
		return TypeSpec{}, p.errorf("expected type name")
	}
	name := strings.ToUpper(p.next().text)
	ts := TypeSpec{Name: name}
	// DOUBLE PRECISION
	if name == "DOUBLE" {
		p.acceptKeyword("PRECISION")
	}
	if p.accept("(") {
		n := p.next()
		prec, err := strconv.Atoi(n.text)
		if err != nil {
			return ts, p.errorf("bad type precision %q", n.text)
		}
		ts.Precision = prec
		if p.accept(",") {
			n2 := p.next()
			sc, err := strconv.Atoi(n2.text)
			if err != nil {
				return ts, p.errorf("bad type scale %q", n2.text)
			}
			ts.Scale = sc
		}
		if err := p.expect(")"); err != nil {
			return ts, err
		}
	}
	if p.accept("<") {
		// MAP<k, v>
		k, err := p.parseTypeSpec()
		if err != nil {
			return ts, err
		}
		if p.accept(",") {
			v, err := p.parseTypeSpec()
			if err != nil {
				return ts, err
			}
			ts.Key = &k
			ts.Elem = &v
		} else {
			ts.Elem = &k
		}
		if err := p.expect(">"); err != nil {
			return ts, err
		}
	}
	// VARCHAR ARRAY / INT MULTISET postfix forms.
	for {
		if p.acceptKeyword("ARRAY") {
			inner := ts
			ts = TypeSpec{Name: "ARRAY", Elem: &inner}
			continue
		}
		if p.acceptKeyword("MULTISET") {
			inner := ts
			ts = TypeSpec{Name: "MULTISET", Elem: &inner}
			continue
		}
		break
	}
	return ts, nil
}
