package parser

// Native Go fuzz target for the SQL lexer and parser: any input — valid SQL,
// truncated statements, binary garbage — must produce either a Statement or
// an error, never a panic. CI runs a short -fuzz smoke on every push; the
// committed corpus in testdata/fuzz/FuzzParse seeds both the smoke and the
// plain `go test` run (seed entries execute as regular test cases).

import (
	"strings"
	"testing"
)

func FuzzParse(f *testing.F) {
	seeds := []string{
		// The happy paths, covering every statement class.
		"SELECT 1",
		"SELECT * FROM emps",
		"SELECT a, b FROM t WHERE a > 1 AND b < 2 ORDER BY a DESC LIMIT 3 OFFSET 1",
		"SELECT deptno, SUM(sal) FROM emps GROUP BY deptno HAVING SUM(sal) > 100",
		"SELECT e.name, d.dname FROM emps e JOIN depts d ON e.deptno = d.deptno",
		"SELECT a FROM t1 LEFT JOIN t2 USING (k) WHERE b IN (1, 2, 3)",
		"SELECT x FROM t UNION ALL SELECT y FROM u INTERSECT SELECT z FROM v",
		"SELECT CASE WHEN a >= 1 THEN 'x' WHEN a IS NULL THEN 'y' ELSE 'z' END FROM t",
		"SELECT COUNT(*) OVER (PARTITION BY g ORDER BY a ROWS BETWEEN 2 PRECEDING AND CURRENT ROW) FROM t",
		"SELECT CAST(a AS VARCHAR), COALESCE(b, 0), UPPER(c) FROM t WHERE c LIKE '%x%'",
		"SELECT m['k'], arr[1], j.x.y FROM t",
		"SELECT a FROM (SELECT a FROM t WHERE b = ?) s WHERE a BETWEEN ? AND ?",
		"SELECT STREAM rowtime, productId FROM orders",
		// Windowed-stream surface: group windows and their auxiliary
		// start/end functions, well-formed and malformed.
		"SELECT STREAM TUMBLE_START(rowtime, INTERVAL '1' HOUR) AS ws, TUMBLE_END(rowtime, INTERVAL '1' HOUR) AS we, COUNT(*) FROM orders GROUP BY TUMBLE(rowtime, INTERVAL '1' HOUR, INTERVAL '10' MINUTE)",
		"SELECT STREAM HOP_START(rowtime, INTERVAL '30' MINUTE, INTERVAL '1' HOUR) AS ws, k, SUM(v) FROM s.events GROUP BY HOP(rowtime, INTERVAL '30' MINUTE, INTERVAL '1' HOUR), k",
		"SELECT STREAM SESSION_END(rowtime, INTERVAL '5' SECOND), COUNT(*) FROM s.events GROUP BY SESSION(rowtime, INTERVAL '5' SECOND, INTERVAL '2' SECOND)",
		"SELECT STREAM TUMBLE_END(rowtime) FROM o GROUP BY TUMBLE(rowtime), HOP(rowtime, INTERVAL '0' SECOND, INTERVAL '-1' HOUR)",
		"VALUES (1, 'a'), (2, 'b')",
		"INSERT INTO t VALUES (1, 2.5, 'x'), (NULL, -3e2, '')",
		"CREATE TABLE t (a BIGINT, b VARCHAR, c DOUBLE)",
		"CREATE VIEW v AS SELECT a FROM t",
		"CREATE MATERIALIZED VIEW mv AS SELECT a, COUNT(*) FROM t GROUP BY a",
		"ANALYZE TABLE t",
		"EXPLAIN SELECT 1",
		"EXPLAIN LOGICAL SELECT a FROM t",
		// Hostile shapes: truncations, imbalance, junk, deep nesting.
		"",
		" ",
		"SELECT",
		"SELECT * FROM",
		"SELECT (((((1",
		"SELECT 'unterminated",
		"SELECT \"unterminated",
		"SELECT 1e",
		"SELECT .",
		"SELECT 1..2",
		"SELECT a FROM t WHERE",
		"SELECT a FROM t GROUP BY",
		"SELECT -- comment only",
		"NOT SQL AT ALL",
		"SELECT \x00\xff\xfe",
		"SELECT * FROM t WHERE a = 'ü€𝄞'",
		strings.Repeat("SELECT (", 100),
		strings.Repeat("(", 5000),
		"SELECT " + strings.Repeat("a+", 2000) + "a",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, sql string) {
		// The contract under test: Parse never panics, whatever the input.
		stmt, err := Parse(sql)
		if err == nil && stmt == nil {
			t.Errorf("Parse(%q) returned neither statement nor error", sql)
		}
	})
}
