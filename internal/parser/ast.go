// Package parser implements the SQL parser of the framework (§3: "Calcite
// contains a query parser and validator that can translate a SQL query to a
// tree of relational operators"). The dialect is ANSI SQL plus the paper's
// extensions: the STREAM directive and group-window functions (§7.2), the
// `[]` item operator on semi-structured data (§7.1), geospatial functions
// (§7.3), and the DDL statements listed as §9 future work (CREATE TABLE,
// CREATE [MATERIALIZED] VIEW, INSERT, EXPLAIN).
package parser

import "strings"

// Statement is a parsed SQL statement.
type Statement interface{ stmt() }

// Expr is a parsed scalar expression.
type Expr interface{ expr() }

// TableExpr is a parsed FROM-clause item.
type TableExpr interface{ tableExpr() }

// SelectStmt is a SELECT query block.
type SelectStmt struct {
	Stream   bool // SELECT STREAM ... (§7.2)
	Distinct bool
	Items    []SelectItem
	From     TableExpr // nil for "SELECT <exprs>" without FROM
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Offset   Expr
	Limit    Expr
}

func (*SelectStmt) stmt() {}

// SelectItem is one item of the select list.
type SelectItem struct {
	// Star is true for "*" or "alias.*" (Table holds the qualifier).
	Star  bool
	Table string
	Expr  Expr
	Alias string
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SetOpStmt combines two query expressions with UNION/INTERSECT/EXCEPT.
type SetOpStmt struct {
	Op    string // "UNION", "INTERSECT", "EXCEPT"
	All   bool
	Left  Statement
	Right Statement
	// Trailing ORDER BY / LIMIT applying to the whole set operation.
	OrderBy []OrderItem
	Offset  Expr
	Limit   Expr
}

func (*SetOpStmt) stmt() {}

// ValuesStmt is a VALUES constructor.
type ValuesStmt struct {
	Rows [][]Expr
}

func (*ValuesStmt) stmt() {}

// InsertStmt is INSERT INTO t [(cols)] <query|values>.
type InsertStmt struct {
	Table   []string
	Columns []string
	Source  Statement
}

func (*InsertStmt) stmt() {}

// ColumnDef is a column of CREATE TABLE.
type ColumnDef struct {
	Name string
	Type TypeSpec
}

// CreateTableStmt is CREATE TABLE t (cols).
type CreateTableStmt struct {
	Name []string
	Cols []ColumnDef
}

func (*CreateTableStmt) stmt() {}

// CreateViewStmt is CREATE [MATERIALIZED] VIEW v AS query.
type CreateViewStmt struct {
	Name         []string
	Materialized bool
	Query        Statement
	// SQL is the original text of the view body (stored for re-expansion).
	SQL string
}

func (*CreateViewStmt) stmt() {}

// AnalyzeStmt is ANALYZE [TABLE] t: scan t and collect statistics (row
// count, per-column null counts, min/max, NDV sketches, histograms) for the
// cost-based optimizer.
type AnalyzeStmt struct {
	Table []string
}

func (*AnalyzeStmt) stmt() {}

// ExplainStmt is EXPLAIN [LOGICAL|ANALYZE] [PLAN FOR] query.
type ExplainStmt struct {
	Target Statement
	// Logical requests the un-optimized plan.
	Logical bool
	// Analyze requests execution: the plan is printed together with run
	// statistics (rows, elapsed time, per-operator peak memory and spill
	// counters).
	Analyze bool
}

func (*ExplainStmt) stmt() {}

// TypeSpec is a parsed type name, e.g. VARCHAR(20) or MAP<VARCHAR, ANY>.
type TypeSpec struct {
	Name      string
	Precision int
	Scale     int
	Elem      *TypeSpec // ARRAY/MULTISET element or MAP value
	Key       *TypeSpec // MAP key
}

// Ident is a (possibly qualified) identifier: a, a.b, a.b.c.
type Ident struct {
	Parts []string
}

func (*Ident) expr() {}

func (i *Ident) String() string { return strings.Join(i.Parts, ".") }

// NumberLit is a numeric literal.
type NumberLit struct {
	Text  string
	IsInt bool
}

func (*NumberLit) expr() {}

// StringLit is a character literal.
type StringLit struct{ Value string }

func (*StringLit) expr() {}

// BoolLit is TRUE/FALSE.
type BoolLit struct{ Value bool }

func (*BoolLit) expr() {}

// NullLit is NULL.
type NullLit struct{}

func (*NullLit) expr() {}

// IntervalLit is INTERVAL '<n>' <unit>; it normalizes to milliseconds.
type IntervalLit struct {
	Millis int64
	Text   string
}

func (*IntervalLit) expr() {}

// ParamExpr is a dynamic parameter "?".
type ParamExpr struct{ Index int }

func (*ParamExpr) expr() {}

// BinaryExpr is an infix operation (including AND/OR/LIKE/comparisons).
type BinaryExpr struct {
	Op    string // normalized upper-case: "=", "<>", "AND", "LIKE", "||", ...
	Left  Expr
	Right Expr
}

func (*BinaryExpr) expr() {}

// UnaryExpr is NOT x or -x.
type UnaryExpr struct {
	Op      string // "NOT", "-"
	Operand Expr
}

func (*UnaryExpr) expr() {}

// IsNullExpr is x IS [NOT] NULL.
type IsNullExpr struct {
	Operand Expr
	Not     bool
}

func (*IsNullExpr) expr() {}

// BetweenExpr is x [NOT] BETWEEN lo AND hi.
type BetweenExpr struct {
	Operand Expr
	Low     Expr
	High    Expr
	Not     bool
}

func (*BetweenExpr) expr() {}

// InExpr is x [NOT] IN (list).
type InExpr struct {
	Operand Expr
	List    []Expr
	Not     bool
}

func (*InExpr) expr() {}

// FuncCall is a function or aggregate invocation, possibly windowed.
type FuncCall struct {
	Name     string
	Distinct bool
	Star     bool // COUNT(*)
	Args     []Expr
	Over     *WindowSpec
}

func (*FuncCall) expr() {}

// WindowSpec is an OVER clause.
type WindowSpec struct {
	PartitionBy []Expr
	OrderBy     []OrderItem
	// Frame; nil means the default (RANGE UNBOUNDED PRECEDING .. CURRENT ROW).
	Frame *FrameSpec
}

// FrameSpec is a ROWS/RANGE frame clause. The short form ("ROWS 3
// PRECEDING") sets Hi to CURRENT ROW.
type FrameSpec struct {
	Rows   bool
	Lo, Hi FrameBound
}

// FrameBound is one endpoint of a window frame: UNBOUNDED, CURRENT ROW, or
// an offset expression pointing toward the partition start (PRECEDING) or
// end (FOLLOWING).
type FrameBound struct {
	Unbounded bool
	Current   bool
	Offset    Expr
	Following bool
}

// CaseExpr is a searched or simple CASE.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []WhenClause
	Else    Expr
}

// WhenClause is one WHEN...THEN arm.
type WhenClause struct {
	When Expr
	Then Expr
}

func (*CaseExpr) expr() {}

// CastExpr is CAST(x AS type).
type CastExpr struct {
	Operand Expr
	Type    TypeSpec
}

func (*CastExpr) expr() {}

// ItemExpr is base[index] — the semi-structured item operator of §7.1.
type ItemExpr struct {
	Base  Expr
	Index Expr
}

func (*ItemExpr) expr() {}

// TableName is a named table in FROM, optionally aliased.
type TableName struct {
	Path  []string
	Alias string
}

func (*TableName) tableExpr() {}

// JoinExpr is an explicit or comma join.
type JoinExpr struct {
	Kind  string // "INNER", "LEFT", "RIGHT", "FULL", "CROSS", "COMMA"
	Left  TableExpr
	Right TableExpr
	On    Expr
	Using []string
}

func (*JoinExpr) tableExpr() {}

// SubqueryTable is a derived table: (query) alias.
type SubqueryTable struct {
	Query Statement
	Alias string
}

func (*SubqueryTable) tableExpr() {}
