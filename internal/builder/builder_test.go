package builder_test

import (
	"testing"

	"calcite/internal/builder"
	"calcite/internal/exec"
	"calcite/internal/plan"
	"calcite/internal/rel"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

func catalog() schema.Schema {
	root := schema.NewBaseSchema("root")
	root.AddTable(schema.NewMemTable("emps", types.Row(
		types.Field{Name: "deptno", Type: types.BigInt},
		types.Field{Name: "sal", Type: types.Double},
	), [][]any{
		{int64(10), 100.0}, {int64(10), 200.0}, {int64(20), 300.0},
	}))
	root.AddTable(schema.NewMemTable("depts", types.Row(
		types.Field{Name: "deptno", Type: types.BigInt},
		types.Field{Name: "dname", Type: types.Varchar},
	), [][]any{{int64(10), "S"}, {int64(20), "M"}}))
	return root
}

func execute(t *testing.T, node rel.Node) [][]any {
	t.Helper()
	vp := plan.NewVolcanoPlanner(exec.Rules()...)
	best, err := vp.Optimize(node, trait.Enumerable)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Execute(exec.NewContext(), best)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestScanFilterProject(t *testing.T) {
	b := builder.New(catalog())
	b = b.Scan("emps")
	b = b.Filter(b.Greater(b.Field("sal"), b.Literal(150.0)))
	node, err := b.ProjectNamed("deptno").Build()
	if err != nil {
		t.Fatal(err)
	}
	rows := execute(t, node)
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
}

func TestAggregateAndSort(t *testing.T) {
	node, err := builder.New(catalog()).
		Scan("emps").
		Aggregate(builder.GroupKey("deptno"),
			builder.Sum(false, "total", "sal"),
			builder.Avg("avg", "sal"),
			builder.Min("lo", "sal"),
			builder.Max("hi", "sal")).
		Sort("-total").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	rows := execute(t, node)
	if len(rows) != 2 {
		t.Fatalf("rows: %v", rows)
	}
	if top, _ := types.AsFloat(rows[0][1]); top != 300 {
		t.Fatalf("top total: %v", rows[0])
	}
}

func TestJoinUnionValuesLimit(t *testing.T) {
	b := builder.New(catalog())
	node, err := b.Scan("emps").Scan("depts").
		JoinOn(rel.InnerJoin, "deptno", "deptno").
		Limit(0, 2).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(execute(t, node)) != 2 {
		t.Fatal("join+limit")
	}

	node, err = builder.New(catalog()).
		Values([]string{"x"}, []any{int64(1)}, []any{int64(2)}).
		Values([]string{"x"}, []any{int64(3)}).
		Union(true, 2).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if len(execute(t, node)) != 3 {
		t.Fatal("union of values")
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := builder.New(catalog()).Scan("missing").Build(); err == nil {
		t.Error("unknown table")
	}
	b := builder.New(catalog()).Scan("emps")
	b.Field("nope")
	if _, err := b.Build(); err == nil {
		t.Error("unknown field")
	}
	if _, err := builder.New(catalog()).Build(); err == nil {
		t.Error("empty stack")
	}
	if _, err := builder.New(catalog()).Scan("emps").Scan("depts").Build(); err == nil {
		t.Error("two expressions left on stack")
	}
	if _, err := builder.New(catalog()).Scan("emps").Sort("nope").Build(); err == nil {
		t.Error("unknown sort column")
	}
}
