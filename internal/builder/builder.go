// Package builder implements the relational expression builder interface of
// §3 of the paper: systems with their own query-language parsers construct
// operator trees directly, without SQL. The fluent API mirrors Calcite's
// RelBuilder — the paper's Pig example is expressed as:
//
//	node, err := builder.New(catalog).
//		Scan("employee_data").
//		Aggregate(builder.GroupKey("deptno"),
//			builder.Count(false, "c"),
//			builder.Sum(false, "s", "sal")).
//		Build()
package builder

import (
	"fmt"
	"strings"

	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// Builder accumulates a stack of relational expressions.
type Builder struct {
	catalog schema.Schema
	stack   []rel.Node
	err     error
}

// New creates a builder resolving table names against catalog.
func New(catalog schema.Schema) *Builder { return &Builder{catalog: catalog} }

func (b *Builder) fail(format string, args ...any) *Builder {
	if b.err == nil {
		b.err = fmt.Errorf("builder: "+format, args...)
	}
	return b
}

func (b *Builder) push(n rel.Node) *Builder {
	b.stack = append(b.stack, n)
	return b
}

func (b *Builder) pop() rel.Node {
	if len(b.stack) == 0 {
		b.fail("operation requires an input on the stack")
		return nil
	}
	n := b.stack[len(b.stack)-1]
	b.stack = b.stack[:len(b.stack)-1]
	return n
}

// Peek returns the top of the stack without removing it.
func (b *Builder) Peek() rel.Node {
	if len(b.stack) == 0 {
		return nil
	}
	return b.stack[len(b.stack)-1]
}

// Build returns the finished expression tree.
func (b *Builder) Build() (rel.Node, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.stack) != 1 {
		return nil, fmt.Errorf("builder: expected exactly one expression on the stack, have %d", len(b.stack))
	}
	return b.stack[0], nil
}

// Scan pushes a table scan.
func (b *Builder) Scan(name ...string) *Builder {
	if b.err != nil {
		return b
	}
	table, path, err := schema.Resolve(b.catalog, name)
	if err != nil {
		return b.fail("%v", err)
	}
	return b.push(rel.NewTableScan(trait.Logical, table, path))
}

// Field returns a reference to the named field of the top expression.
func (b *Builder) Field(name string) rex.Node {
	top := b.Peek()
	if top == nil {
		b.fail("Field(%q) requires an input", name)
		return rex.Null()
	}
	idx := top.RowType().FieldIndex(name)
	if idx < 0 {
		b.fail("field %q not found in %s", name, strings.Join(top.RowType().FieldNames(), ", "))
		return rex.Null()
	}
	return rex.NewInputRef(idx, top.RowType().Fields[idx].Type)
}

// FieldAt returns a reference to the i-th field of the top expression.
func (b *Builder) FieldAt(i int) rex.Node {
	top := b.Peek()
	if top == nil || i < 0 || i >= rel.FieldCount(top) {
		b.fail("field ordinal %d out of range", i)
		return rex.Null()
	}
	return rex.NewInputRef(i, top.RowType().Fields[i].Type)
}

// Literal builds a literal expression.
func (b *Builder) Literal(v any) rex.Node {
	switch x := v.(type) {
	case int:
		return rex.Int(int64(x))
	case int64:
		return rex.Int(x)
	case float64:
		return rex.Float(x)
	case string:
		return rex.Str(x)
	case bool:
		return rex.Bool(x)
	case nil:
		return rex.Null()
	}
	return rex.NewLiteral(v, types.Any)
}

// Call builds an operator call.
func (b *Builder) Call(op *rex.Operator, args ...rex.Node) rex.Node {
	return rex.NewCall(op, args...)
}

// Equals, Greater, Less build comparisons.
func (b *Builder) Equals(l, r rex.Node) rex.Node  { return rex.Eq(l, r) }
func (b *Builder) Greater(l, r rex.Node) rex.Node { return rex.NewCall(rex.OpGreater, l, r) }
func (b *Builder) Less(l, r rex.Node) rex.Node    { return rex.NewCall(rex.OpLess, l, r) }

// And builds a conjunction.
func (b *Builder) And(terms ...rex.Node) rex.Node { return rex.And(terms...) }

// Filter pushes a filter over the top expression.
func (b *Builder) Filter(condition rex.Node) *Builder {
	if b.err != nil {
		return b
	}
	input := b.pop()
	if input == nil {
		return b
	}
	return b.push(rel.NewFilter(input, condition))
}

// Project pushes a projection; names may be shorter than exprs.
func (b *Builder) Project(exprs []rex.Node, names []string) *Builder {
	if b.err != nil {
		return b
	}
	input := b.pop()
	if input == nil {
		return b
	}
	return b.push(rel.NewProject(input, exprs, names))
}

// ProjectNamed projects named fields of the input.
func (b *Builder) ProjectNamed(names ...string) *Builder {
	if b.err != nil {
		return b
	}
	exprs := make([]rex.Node, len(names))
	for i, n := range names {
		exprs[i] = b.Field(n)
	}
	return b.Project(exprs, names)
}

// GroupKeySpec names grouping columns.
type GroupKeySpec struct{ Names []string }

// GroupKey creates a grouping key over the named columns.
func GroupKey(names ...string) GroupKeySpec { return GroupKeySpec{Names: names} }

// AggSpec describes one aggregate call for Aggregate.
type AggSpec struct {
	Func     rex.AggFuncKind
	Distinct bool
	Name     string
	Arg      string // empty for COUNT(*)
}

// Count builds COUNT([DISTINCT] arg) or COUNT(*) with no arg.
func Count(distinct bool, name string, arg ...string) AggSpec {
	a := ""
	if len(arg) > 0 {
		a = arg[0]
	}
	return AggSpec{Func: rex.AggCount, Distinct: distinct, Name: name, Arg: a}
}

// Sum builds SUM(arg).
func Sum(distinct bool, name, arg string) AggSpec {
	return AggSpec{Func: rex.AggSum, Distinct: distinct, Name: name, Arg: arg}
}

// Min and Max build MIN/MAX aggregates.
func Min(name, arg string) AggSpec { return AggSpec{Func: rex.AggMin, Name: name, Arg: arg} }
func Max(name, arg string) AggSpec { return AggSpec{Func: rex.AggMax, Name: name, Arg: arg} }

// Avg builds AVG(arg).
func Avg(name, arg string) AggSpec { return AggSpec{Func: rex.AggAvg, Name: name, Arg: arg} }

// Aggregate pushes an aggregate with the given key and calls.
func (b *Builder) Aggregate(key GroupKeySpec, aggs ...AggSpec) *Builder {
	if b.err != nil {
		return b
	}
	top := b.Peek()
	if top == nil {
		return b.fail("Aggregate requires an input")
	}
	keys := make([]int, len(key.Names))
	for i, n := range key.Names {
		idx := top.RowType().FieldIndex(n)
		if idx < 0 {
			return b.fail("group key %q not found", n)
		}
		keys[i] = idx
	}
	calls := make([]rex.AggCall, len(aggs))
	for i, a := range aggs {
		var args []int
		if a.Arg != "" {
			idx := top.RowType().FieldIndex(a.Arg)
			if idx < 0 {
				return b.fail("aggregate argument %q not found", a.Arg)
			}
			args = []int{idx}
		}
		calls[i] = rex.NewAggCall(a.Func, args, a.Distinct, a.Name)
	}
	input := b.pop()
	return b.push(rel.NewAggregate(input, keys, calls))
}

// Join pops two expressions (right, then left) and pushes a join.
func (b *Builder) Join(kind rel.JoinKind, condition rex.Node) *Builder {
	if b.err != nil {
		return b
	}
	right := b.pop()
	left := b.pop()
	if left == nil || right == nil {
		return b
	}
	return b.push(rel.NewJoin(kind, left, right, condition))
}

// JoinOn joins the two top expressions on equality of the named fields
// (left field name, right field name).
func (b *Builder) JoinOn(kind rel.JoinKind, leftField, rightField string) *Builder {
	if b.err != nil {
		return b
	}
	if len(b.stack) < 2 {
		return b.fail("JoinOn requires two inputs")
	}
	right := b.stack[len(b.stack)-1]
	left := b.stack[len(b.stack)-2]
	li := left.RowType().FieldIndex(leftField)
	ri := right.RowType().FieldIndex(rightField)
	if li < 0 || ri < 0 {
		return b.fail("join fields %q/%q not found", leftField, rightField)
	}
	cond := rex.Eq(
		rex.NewInputRef(li, left.RowType().Fields[li].Type),
		rex.NewInputRef(rel.FieldCount(left)+ri, right.RowType().Fields[ri].Type),
	)
	return b.Join(kind, cond)
}

// Sort pushes a sort on the named columns (prefix '-' for descending).
func (b *Builder) Sort(columns ...string) *Builder {
	if b.err != nil {
		return b
	}
	top := b.Peek()
	if top == nil {
		return b.fail("Sort requires an input")
	}
	var collation trait.Collation
	for _, cspec := range columns {
		dir := trait.Ascending
		name := cspec
		if strings.HasPrefix(cspec, "-") {
			dir = trait.Descending
			name = cspec[1:]
		}
		idx := top.RowType().FieldIndex(name)
		if idx < 0 {
			return b.fail("sort column %q not found", name)
		}
		collation = append(collation, trait.FieldCollation{Field: idx, Direction: dir})
	}
	input := b.pop()
	return b.push(rel.NewSort(input, collation, 0, -1))
}

// Limit pushes OFFSET/FETCH.
func (b *Builder) Limit(offset, fetch int64) *Builder {
	if b.err != nil {
		return b
	}
	input := b.pop()
	if input == nil {
		return b
	}
	return b.push(rel.NewSort(input, nil, offset, fetch))
}

// Union pushes a union of the top n expressions.
func (b *Builder) Union(all bool, n int) *Builder {
	if b.err != nil {
		return b
	}
	if len(b.stack) < n || n < 2 {
		return b.fail("Union(%d) requires %d inputs", n, n)
	}
	inputs := make([]rel.Node, n)
	for i := n - 1; i >= 0; i-- {
		inputs[i] = b.pop()
	}
	return b.push(rel.NewSetOp(rel.UnionOp, all, inputs...))
}

// Values pushes a constant relation.
func (b *Builder) Values(fieldNames []string, rows ...[]any) *Builder {
	if b.err != nil {
		return b
	}
	if len(rows) == 0 {
		return b.fail("Values requires at least one row")
	}
	tuples := make([][]rex.Node, len(rows))
	fields := make([]types.Field, len(fieldNames))
	for ri, row := range rows {
		tuple := make([]rex.Node, len(row))
		for ci, v := range row {
			lit := b.Literal(v)
			tuple[ci] = lit
			if ri == 0 {
				fields[ci] = types.Field{Name: fieldNames[ci], Type: lit.Type()}
			}
		}
		tuples[ri] = tuple
	}
	return b.push(rel.NewValues(types.Row(fields...), tuples))
}
