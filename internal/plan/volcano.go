package plan

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"calcite/internal/cost"
	"calcite/internal/meta"
	"calcite/internal/rel"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// FixPointMode selects when the cost-based engine stops (§6: the planner
// "continues until [it] reaches a configurable fix point": either
// exhaustively, or heuristically when the plan cost has not improved by more
// than a threshold δ in the last iterations).
type FixPointMode int

const (
	// Exhaustive explores until no rule produces a new expression.
	Exhaustive FixPointMode = iota
	// Heuristic stops once the best cost improves by less than Delta
	// (relative) for Patience consecutive iterations.
	Heuristic
)

// VolcanoPlanner is the cost-based planner engine. Expressions are
// registered with a digest derived from their attributes and inputs;
// expressions with equal digests are grouped into equivalence sets, and sets
// discovered to contain a common expression are merged (§6). Rule firings
// enumerate pattern bindings across set members, so one firing benefits
// every equivalent parent.
type VolcanoPlanner struct {
	// Meta is the metadata/cost session; a default one is created if nil.
	Meta *meta.Query
	// Mode selects the fix point behaviour.
	Mode FixPointMode
	// Delta is the relative cost-improvement threshold for Heuristic mode.
	Delta float64
	// Patience is the number of no-improvement iterations tolerated in
	// Heuristic mode before stopping.
	Patience int
	// MaxRounds bounds planning iterations. Default 40.
	MaxRounds int
	// MaxExpressions aborts registration-explosion. Default 50000.
	MaxExpressions int

	rules []Rule

	sets     []*eqSet
	parent   []int           // union-find over set ids
	byDigest map[string]int  // digest -> set id
	firedKey map[string]bool // (rule, binding digests) already fired
	nRels    int

	// converterFactories create convention converters: from -> factories.
	converterFactories map[string][]converterFactory

	// Stats, exposed for tests and the planning benchmarks.
	Fired  int
	Rounds int
}

type converterFactory struct {
	to      trait.Convention
	factory func(input rel.Node) rel.Node
}

type eqSet struct {
	id   int
	rels []rel.Node
}

// NewVolcanoPlanner creates a cost-based planner with the given rules.
func NewVolcanoPlanner(rules ...Rule) *VolcanoPlanner {
	return &VolcanoPlanner{
		rules:              rules,
		byDigest:           map[string]int{},
		firedKey:           map[string]bool{},
		converterFactories: map[string][]converterFactory{},
		Delta:              0.01,
		Patience:           1,
	}
}

// AddRule appends a rule.
func (p *VolcanoPlanner) AddRule(r Rule) { p.rules = append(p.rules, r) }

// AddConverter registers a convention converter: whenever an expression in
// convention `from` is registered, factory(subset) is added to its
// equivalence set in convention `to`. This is how adapters teach the planner
// to move data between engines (the converters of Figure 2).
func (p *VolcanoPlanner) AddConverter(from, to trait.Convention, factory func(input rel.Node) rel.Node) {
	key := from.ConventionName()
	p.converterFactories[key] = append(p.converterFactories[key], converterFactory{to: to, factory: factory})
}

// SubsetRef is the placeholder for "any expression of equivalence set S in
// convention C" — the analogue of Calcite's RelSubset. Rules create them via
// Call.Convert; they are resolved to concrete best plans during extraction
// and never appear in final plans.
type SubsetRef struct {
	planner *VolcanoPlanner
	setID   int
	conv    trait.Convention
	rowType *types.Type
}

func (s *SubsetRef) Op() string           { return "Subset" }
func (s *SubsetRef) Inputs() []rel.Node   { return nil }
func (s *SubsetRef) RowType() *types.Type { return s.rowType }
func (s *SubsetRef) Traits() trait.Set    { return trait.NewSet(s.conv) }
func (s *SubsetRef) Attrs() string {
	return fmt.Sprintf("set=%d, conv=%s", s.planner.find(s.setID), s.conv.ConventionName())
}
func (s *SubsetRef) WithNewInputs(inputs []rel.Node) rel.Node { return s }

// representative returns a non-subset member of the set, preferring logical
// expressions (stable metadata).
func (p *VolcanoPlanner) representative(setID int) rel.Node {
	set := p.sets[p.find(setID)]
	var fallback rel.Node
	for _, r := range set.rels {
		if _, ok := r.(*SubsetRef); ok {
			continue
		}
		if trait.SameConvention(r.Traits().Convention, trait.Logical) {
			return r
		}
		if fallback == nil {
			fallback = r
		}
	}
	return fallback
}

// subsetMetadataProvider lets the metadata layer see through SubsetRef
// placeholders by delegating to a set representative — an example of the
// pluggable provider chain of §6.
func (p *VolcanoPlanner) subsetMetadataProvider() meta.Provider {
	deref := func(n rel.Node) rel.Node {
		if s, ok := n.(*SubsetRef); ok {
			if r := s.planner.representative(s.setID); r != nil {
				return r
			}
		}
		return nil
	}
	return meta.Provider{
		Name: "volcano-subset",
		RowCount: func(q *meta.Query, n rel.Node) (float64, bool) {
			if r := deref(n); r != nil {
				return q.RowCount(r), true
			}
			return 0, false
		},
		DistinctRowCount: func(q *meta.Query, n rel.Node, cols []int) (float64, bool) {
			if r := deref(n); r != nil {
				return q.DistinctRowCount(r, cols), true
			}
			return 0, false
		},
		ColumnsUnique: func(q *meta.Query, n rel.Node, cols []int) (bool, bool) {
			if r := deref(n); r != nil {
				return q.ColumnsUnique(r, cols), true
			}
			return false, false
		},
		Collations: func(q *meta.Query, n rel.Node) (trait.Collation, bool) {
			if r := deref(n); r != nil {
				return q.Collations(r), true
			}
			return nil, false
		},
		NonCumulativeCost: func(q *meta.Query, n rel.Node) (cost.Cost, bool) {
			if _, ok := n.(*SubsetRef); ok {
				return cost.Zero, true
			}
			return cost.Zero, false
		},
		AverageRowSize: func(q *meta.Query, n rel.Node) (float64, bool) {
			if r := deref(n); r != nil {
				return q.AverageRowSize(r), true
			}
			return 0, false
		},
	}
}

func (p *VolcanoPlanner) find(id int) int {
	for p.parent[id] != id {
		p.parent[id] = p.parent[p.parent[id]]
		id = p.parent[id]
	}
	return id
}

func (p *VolcanoPlanner) set(id int) *eqSet { return p.sets[p.find(id)] }

// register interns n (and its subtree) and returns its set id.
func (p *VolcanoPlanner) register(n rel.Node) int {
	if s, ok := n.(*SubsetRef); ok {
		return p.find(s.setID)
	}
	for _, in := range n.Inputs() {
		p.register(in)
	}
	d := rel.Digest(n)
	if id, ok := p.byDigest[d]; ok {
		return p.find(id)
	}
	id := len(p.sets)
	p.sets = append(p.sets, &eqSet{id: id, rels: []rel.Node{n}})
	p.parent = append(p.parent, id)
	p.byDigest[d] = id
	p.nRels++
	p.materializeConverters(id, n)
	return id
}

// addToSet adds n to set id (deduped by digest), merging if n's digest is
// already known elsewhere.
func (p *VolcanoPlanner) addToSet(id int, n rel.Node) {
	id = p.find(id)
	for _, in := range n.Inputs() {
		p.register(in)
	}
	d := rel.Digest(n)
	if other, ok := p.byDigest[d]; ok {
		p.merge(id, other)
		return
	}
	set := p.sets[id]
	set.rels = append(set.rels, n)
	p.byDigest[d] = id
	p.nRels++
	p.materializeConverters(id, n)
}

// materializeConverters adds convention-converter expressions for n into its
// set.
func (p *VolcanoPlanner) materializeConverters(setID int, n rel.Node) {
	conv := n.Traits().Convention
	if conv == nil {
		return
	}
	for _, cf := range p.converterFactories[conv.ConventionName()] {
		sub := &SubsetRef{planner: p, setID: p.find(setID), conv: conv, rowType: n.RowType()}
		converted := cf.factory(sub)
		d := rel.Digest(converted)
		if _, ok := p.byDigest[d]; ok {
			continue
		}
		set := p.sets[p.find(setID)]
		set.rels = append(set.rels, converted)
		p.byDigest[d] = p.find(setID)
		p.nRels++
	}
}

// merge unifies two equivalence sets ("the planner has found a duplicate and
// hence will merge Sa and Sb into a new set of equivalences", §6).
func (p *VolcanoPlanner) merge(a, b int) {
	ra, rb := p.find(a), p.find(b)
	if ra == rb {
		return
	}
	p.parent[rb] = ra
	seen := map[string]bool{}
	var merged []rel.Node
	for _, r := range append(p.sets[ra].rels, p.sets[rb].rels...) {
		d := rel.Digest(r)
		if !seen[d] {
			seen[d] = true
			merged = append(merged, r)
		}
	}
	p.sets[ra].rels = merged
	p.sets[rb].rels = nil
	p.reindex()
}

// reindex rebuilds the digest index (digests of SubsetRefs change when sets
// merge).
func (p *VolcanoPlanner) reindex() {
	p.byDigest = map[string]int{}
	for id, set := range p.sets {
		if p.find(id) != id {
			continue
		}
		seen := map[string]bool{}
		var kept []rel.Node
		for _, r := range set.rels {
			d := rel.Digest(r)
			if seen[d] {
				continue
			}
			seen[d] = true
			kept = append(kept, r)
			p.byDigest[d] = id
		}
		set.rels = kept
	}
}

// volcano implements transformSink.
func (p *VolcanoPlanner) transform(c *Call, n rel.Node) {
	rootSet := p.register(c.Rels[0])
	p.addToSet(rootSet, n)
}

func (p *VolcanoPlanner) convert(input rel.Node, conv trait.Convention) rel.Node {
	var id int
	if s, ok := input.(*SubsetRef); ok {
		id = s.setID
	} else {
		id = p.register(input)
	}
	return &SubsetRef{planner: p, setID: id, conv: conv, rowType: input.RowType()}
}

// Optimize runs the engine: it registers root, fires rules to the
// configured fix point, and extracts the cheapest plan producing root's
// rows in the target convention.
func (p *VolcanoPlanner) Optimize(root rel.Node, target trait.Convention) (rel.Node, error) {
	if p.Meta == nil {
		p.Meta = meta.NewQuery()
	}
	p.Meta.Prepend(p.subsetMetadataProvider())
	if p.MaxRounds <= 0 {
		p.MaxRounds = 40
	}
	if p.MaxExpressions <= 0 {
		p.MaxExpressions = 50000
	}
	rootSet := p.register(root)

	lastBest := math.Inf(1)
	noImprove := 0
	for round := 0; round < p.MaxRounds; round++ {
		p.Rounds = round + 1
		fired := p.fireRound()
		p.Meta.InvalidateCache()
		if fired == 0 {
			break // exhaustive fix point: no rule changed anything
		}
		if p.Mode == Heuristic {
			_, c, err := p.extractBest(p.find(rootSet), target)
			cur := math.Inf(1)
			if err == nil {
				cur = c.Scalar()
			}
			if lastBest-cur <= p.Delta*math.Abs(lastBest) {
				noImprove++
				if noImprove >= p.Patience {
					break
				}
			} else {
				noImprove = 0
			}
			if cur < lastBest {
				lastBest = cur
			}
		}
		if p.nRels > p.MaxExpressions {
			break
		}
	}

	best, _, err := p.extractBest(p.find(rootSet), target)
	if err != nil {
		return nil, err
	}
	return best, nil
}

// fireRound scans every registered expression and fires every new rule
// binding once. Returns the number of firings that added expressions.
func (p *VolcanoPlanner) fireRound() int {
	fired := 0
	// Snapshot: rules may add rels/sets while firing.
	type item struct {
		setID int
		n     rel.Node
	}
	var worklist []item
	for id := range p.sets {
		if p.find(id) != id {
			continue
		}
		for _, r := range p.sets[id].rels {
			if _, ok := r.(*SubsetRef); ok {
				continue
			}
			worklist = append(worklist, item{id, r})
		}
	}
	for _, it := range worklist {
		for _, r := range p.rules {
			for _, binding := range p.matchOperand(r.Operand(), it.n, 0) {
				key := bindingKey(r, binding)
				if p.firedKey[key] {
					continue
				}
				p.firedKey[key] = true
				before := p.nRels
				call := &Call{Rels: binding, Meta: p.Meta, planner: p}
				ruleFire(r, call)
				p.Fired++
				if p.nRels > before {
					fired++
				}
				if p.nRels > p.MaxExpressions {
					return fired
				}
			}
		}
	}
	return fired
}

func bindingKey(r Rule, binding []rel.Node) string {
	var b strings.Builder
	b.WriteString(r.RuleName())
	for _, n := range binding {
		b.WriteByte('\x00')
		b.WriteString(rel.Digest(n))
	}
	return b.String()
}

// matchOperand enumerates bindings of the pattern rooted at o against node n,
// where child operands range over equivalence-set members of n's inputs.
// depth bounds pathological patterns.
func (p *VolcanoPlanner) matchOperand(o *Operand, n rel.Node, depth int) [][]rel.Node {
	if depth > 8 {
		return nil
	}
	if o.Match != nil && !o.Match(n) {
		return nil
	}
	if o.anyChildren || o.Children == nil {
		return [][]rel.Node{{n}}
	}
	inputs := n.Inputs()
	if len(o.Children) != len(inputs) {
		return nil
	}
	// For each input position, collect sub-bindings over set members.
	perChild := make([][][]rel.Node, len(inputs))
	for i, in := range inputs {
		members := p.membersOf(in)
		for _, m := range members {
			subs := p.matchOperand(o.Children[i], m, depth+1)
			perChild[i] = append(perChild[i], subs...)
		}
		if len(perChild[i]) == 0 {
			return nil
		}
		// Bound fan-out per child to keep rounds tractable.
		if len(perChild[i]) > 16 {
			perChild[i] = perChild[i][:16]
		}
	}
	// Cartesian product.
	out := [][]rel.Node{{n}}
	for _, subs := range perChild {
		var next [][]rel.Node
		for _, prefix := range out {
			for _, s := range subs {
				nb := make([]rel.Node, 0, len(prefix)+len(s))
				nb = append(nb, prefix...)
				nb = append(nb, s...)
				next = append(next, nb)
			}
		}
		out = next
		if len(out) > 64 {
			out = out[:64]
		}
	}
	return out
}

// membersOf returns the concrete equivalence-set members usable as a match
// for input node in.
func (p *VolcanoPlanner) membersOf(in rel.Node) []rel.Node {
	var id int
	if s, ok := in.(*SubsetRef); ok {
		id = s.setID
	} else {
		d := rel.Digest(in)
		known, ok := p.byDigest[d]
		if !ok {
			return []rel.Node{in}
		}
		id = known
	}
	set := p.set(id)
	out := make([]rel.Node, 0, len(set.rels))
	for _, r := range set.rels {
		if _, ok := r.(*SubsetRef); ok {
			continue
		}
		out = append(out, r)
	}
	return out
}

type bestKey struct {
	set  int
	conv string
}

// extractBest selects the cheapest expression of the set in the given
// convention, recursively substituting best children, using the cost model
// from the metadata providers.
func (p *VolcanoPlanner) extractBest(setID int, target trait.Convention) (rel.Node, cost.Cost, error) {
	memo := map[bestKey]*bestEntry{}
	n, c := p.best(setID, target, memo)
	if n == nil {
		return nil, cost.Infinite, fmt.Errorf("plan: no implementation found for set %d in convention %q", p.find(setID), target.ConventionName())
	}
	return n, c, nil
}

type bestEntry struct {
	node    rel.Node
	cost    cost.Cost
	inProg  bool
	visited bool
}

func (p *VolcanoPlanner) best(setID int, conv trait.Convention, memo map[bestKey]*bestEntry) (rel.Node, cost.Cost) {
	setID = p.find(setID)
	key := bestKey{setID, conv.ConventionName()}
	if e, ok := memo[key]; ok {
		if e.inProg {
			return nil, cost.Infinite // cycle
		}
		return e.node, e.cost
	}
	entry := &bestEntry{inProg: true, cost: cost.Infinite}
	memo[key] = entry

	set := p.sets[setID]
	// Deterministic order for stable plans.
	rels := append([]rel.Node(nil), set.rels...)
	sort.Slice(rels, func(i, j int) bool { return rel.Digest(rels[i]) < rel.Digest(rels[j]) })

	for _, r := range rels {
		if _, ok := r.(*SubsetRef); ok {
			continue
		}
		if !trait.SameConvention(r.Traits().Convention, conv) {
			continue
		}
		inputs := r.Inputs()
		newInputs := make([]rel.Node, len(inputs))
		total := p.Meta.NonCumulativeCost(r)
		feasible := true
		for i, in := range inputs {
			var childNode rel.Node
			var childCost cost.Cost
			if s, ok := in.(*SubsetRef); ok {
				childNode, childCost = p.best(s.setID, s.conv, memo)
			} else {
				cid, ok := p.byDigest[rel.Digest(in)]
				if !ok {
					childNode, childCost = in, p.Meta.CumulativeCost(in)
				} else {
					childNode, childCost = p.best(cid, in.Traits().Convention, memo)
				}
			}
			if childNode == nil || childCost.IsInfinite() {
				feasible = false
				break
			}
			newInputs[i] = childNode
			total = total.Plus(childCost)
		}
		if !feasible || total.IsInfinite() {
			continue
		}
		if total.Less(entry.cost) {
			node := r
			if len(inputs) > 0 {
				node = r.WithNewInputs(newInputs)
			}
			entry.node = node
			entry.cost = total
		}
	}
	entry.inProg = false
	entry.visited = true
	return entry.node, entry.cost
}

// ExpressionCount returns the number of registered expressions (for tests
// and the planning benchmarks).
func (p *VolcanoPlanner) ExpressionCount() int { return p.nRels }

// SetCount returns the number of live equivalence sets.
func (p *VolcanoPlanner) SetCount() int {
	n := 0
	for id := range p.sets {
		if p.find(id) == id && len(p.sets[id].rels) > 0 {
			n++
		}
	}
	return n
}
