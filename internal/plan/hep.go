package plan

import (
	"calcite/internal/meta"
	"calcite/internal/rel"
	"calcite/internal/trait"
)

// HepPlanner is the exhaustive planner engine of §6: it "triggers rules
// exhaustively until it generates an expression that is no longer modified
// by any rules", without tracking cost. It is useful for cheap, always-good
// rewrites (e.g. constant reduction, filter pushdown) and as a phase in
// multi-stage optimization programs.
type HepPlanner struct {
	// Meta is the metadata session offered to rules; a default session is
	// created if nil.
	Meta *meta.Query
	// MaxPasses bounds full passes over the tree per rule collection
	// (safety net against non-converging rule sets). Default 100.
	MaxPasses int

	rules []Rule
	// Stats
	Fired int
}

// NewHepPlanner creates a Hep planner with the given rules.
func NewHepPlanner(rules ...Rule) *HepPlanner {
	return &HepPlanner{rules: rules}
}

// AddRule appends a rule.
func (p *HepPlanner) AddRule(r Rule) { p.rules = append(p.rules, r) }

// hepSink collects the first transformation of a rule firing. The Hep
// planner performs destructive substitution: only the first equivalent
// expression is kept.
type hepSink struct {
	result rel.Node
}

func (s *hepSink) transform(c *Call, n rel.Node) {
	if s.result == nil {
		s.result = n
	}
}

func (s *hepSink) convert(input rel.Node, conv trait.Convention) rel.Node {
	// No equivalence sets: conversion placeholders degrade to the input.
	return input
}

// Optimize applies the planner's rules to root until fix point.
func (p *HepPlanner) Optimize(root rel.Node) rel.Node {
	if p.Meta == nil {
		p.Meta = meta.NewQuery()
	}
	maxPasses := p.MaxPasses
	if maxPasses <= 0 {
		maxPasses = 100
	}
	for pass := 0; pass < maxPasses; pass++ {
		changed := false
		root = p.applyOnce(root, &changed)
		if !changed {
			break
		}
		p.Meta.InvalidateCache()
	}
	return root
}

// applyOnce walks the tree bottom-up applying the first matching rule at
// each node, repeatedly until the node stabilizes.
func (p *HepPlanner) applyOnce(n rel.Node, changed *bool) rel.Node {
	// Rewrite children first.
	inputs := n.Inputs()
	if len(inputs) > 0 {
		newInputs := make([]rel.Node, len(inputs))
		childChanged := false
		for i, in := range inputs {
			newInputs[i] = p.applyOnce(in, changed)
			if newInputs[i] != in {
				childChanged = true
			}
		}
		if childChanged {
			n = n.WithNewInputs(newInputs)
		}
	}
	// Then this node, to fix point (bounded).
	for tries := 0; tries < 25; tries++ {
		next := p.applyRulesAt(n)
		if next == nil {
			break
		}
		*changed = true
		// The replacement subtree may expose new matches below; recurse.
		n = p.applyOnce(next, changed)
	}
	return n
}

func (p *HepPlanner) applyRulesAt(n rel.Node) rel.Node {
	for _, r := range p.rules {
		binding := matchConcrete(r.Operand(), n)
		if binding == nil {
			continue
		}
		sink := &hepSink{}
		call := &Call{Rels: binding, Meta: p.Meta, planner: sink}
		ruleFire(r, call)
		if sink.result != nil && rel.Digest(sink.result) != rel.Digest(n) {
			p.Fired++
			return sink.result
		}
	}
	return nil
}

// Program is a multi-stage optimization program (§6: "users may choose to
// generate multi-stage optimization logic, in which different sets of rules
// are applied in consecutive phases"). Each phase runs its own planner
// engine to fix point before the next phase starts. §9 lists "planner
// programs (collections of rules organized into planning phases)" as the
// direction Calcite's planner is evolving toward.
type Program struct {
	Phases []Phase
}

// Phase is one stage of a Program.
type Phase struct {
	// Name identifies the phase in traces.
	Name string
	// Rules applied during this phase.
	Rules []Rule
	// CostBased selects the Volcano engine for this phase; otherwise Hep.
	CostBased bool
	// Target is the required convention of the phase output (cost-based
	// phases only).
	Target trait.Convention
}

// Run executes the program.
func (pr *Program) Run(root rel.Node, mq *meta.Query) (rel.Node, error) {
	var err error
	for _, ph := range pr.Phases {
		if ph.CostBased {
			vp := NewVolcanoPlanner(ph.Rules...)
			vp.Meta = mq
			root, err = vp.Optimize(root, ph.Target)
			if err != nil {
				return nil, err
			}
		} else {
			hp := NewHepPlanner(ph.Rules...)
			hp.Meta = mq
			root = hp.Optimize(root)
		}
		if mq != nil {
			mq.InvalidateCache()
		}
	}
	return root, nil
}
