package plan_test

import (
	"fmt"
	"testing"

	"calcite/internal/exec"
	"calcite/internal/meta"
	"calcite/internal/plan"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/rules"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

func tbl(name string, rowCount float64) *schema.MemTable {
	t := schema.NewMemTable(name, types.Row(
		types.Field{Name: name + "_k", Type: types.BigInt},
		types.Field{Name: name + "_v", Type: types.Varchar},
	), nil)
	t.SetStats(schema.Statistics{RowCount: rowCount})
	return t
}

// chain builds join( join(big, mid), small ) — a bad order the cost-based
// planner should fix with commute/associate rules.
func badOrderJoin() rel.Node {
	big := rel.NewTableScan(trait.Logical, tbl("big", 100000), []string{"big"})
	mid := rel.NewTableScan(trait.Logical, tbl("mid", 1000), []string{"mid"})
	small := rel.NewTableScan(trait.Logical, tbl("small", 10), []string{"small"})
	j1 := rel.NewJoin(rel.InnerJoin, big, mid,
		rex.Eq(rex.NewInputRef(0, types.BigInt), rex.NewInputRef(2, types.BigInt)))
	return rel.NewJoin(rel.InnerJoin, j1, small,
		rex.Eq(rex.NewInputRef(2, types.BigInt), rex.NewInputRef(4, types.BigInt)))
}

// TestVolcanoFindsBetterJoinOrder: with reorder rules, the cost-based
// planner produces a cheaper plan than without them — the dynamic
// programming advantage §2 claims over heuristics that "risk falling into
// local minima".
func TestVolcanoFindsBetterJoinOrder(t *testing.T) {
	logical := badOrderJoin()

	costOf := func(withReorder bool) float64 {
		rs := append([]plan.Rule{}, exec.Rules()...)
		if withReorder {
			rs = append(rs, rules.JoinReorderRules()...)
			rs = append(rs, rules.ProjectMergeRule(), rules.ProjectRemoveRule())
		}
		vp := plan.NewVolcanoPlanner(rs...)
		vp.Meta = meta.NewQuery(exec.MetadataProvider())
		best, err := vp.Optimize(logical, trait.Enumerable)
		if err != nil {
			t.Fatalf("optimize(reorder=%v): %v", withReorder, err)
		}
		return vp.Meta.CumulativeCost(best).Scalar()
	}

	fixed := costOf(false)
	reordered := costOf(true)
	if reordered >= fixed {
		t.Errorf("join reordering did not help: %.0f (reordered) vs %.0f (fixed)", reordered, fixed)
	}
}

// TestHeuristicFixpointPlansFaster: δ-threshold mode fires fewer rules than
// exhaustive mode on the same workload.
func TestHeuristicFixpointPlansFaster(t *testing.T) {
	logical := badOrderJoin()
	run := func(mode plan.FixPointMode) int {
		rs := append(exec.Rules(), rules.JoinReorderRules()...)
		rs = append(rs, rules.ProjectMergeRule(), rules.ProjectRemoveRule())
		vp := plan.NewVolcanoPlanner(rs...)
		vp.Mode = mode
		vp.Delta = 0.10
		vp.Meta = meta.NewQuery(exec.MetadataProvider())
		if _, err := vp.Optimize(logical, trait.Enumerable); err != nil {
			t.Fatal(err)
		}
		return vp.Fired
	}
	exhaustive := run(plan.Exhaustive)
	heuristic := run(plan.Heuristic)
	if heuristic > exhaustive {
		t.Errorf("heuristic fired %d rules, exhaustive %d", heuristic, exhaustive)
	}
}

// TestEquivalenceSetMerging: two syntactically different but convergent
// expressions end up in one equivalence set.
func TestEquivalenceSetMerging(t *testing.T) {
	scan := rel.NewTableScan(trait.Logical, tbl("t", 100), []string{"t"})
	f1 := rel.NewFilter(scan, rex.NewCall(rex.OpGreater, rex.NewInputRef(0, types.BigInt), rex.Int(1)))
	// Filter(TRUE AND x>1) simplifies to Filter(x>1): the reduce rule should
	// merge its set with f1's.
	f2 := rel.NewFilter(scan, rex.And(rex.Bool(true),
		rex.NewCall(rex.OpGreater, rex.NewInputRef(0, types.BigInt), rex.Int(1))))

	vp := plan.NewVolcanoPlanner(rules.FilterReduceExpressionsRule())
	vp.Meta = meta.NewQuery()
	// Register both roots by optimizing a union over them.
	union := rel.NewSetOp(rel.UnionOp, true, f1, f2)
	if _, err := vp.Optimize(union, trait.Logical); err == nil {
		// Logical target has no implementation; error is fine. We only care
		// about set structure, checked below.
		_ = err
	}
	if vp.SetCount() >= rel.Count(union) {
		t.Errorf("no equivalence discovered: %d sets for %d nodes", vp.SetCount(), rel.Count(union))
	}
}

// TestHepFixpoint: the exhaustive planner stops when no rule applies and
// reaches the same normal form regardless of redundant rule repetitions.
func TestHepFixpoint(t *testing.T) {
	scan := rel.NewTableScan(trait.Logical, tbl("t", 10), []string{"t"})
	cond := rex.NewCall(rex.OpGreater, rex.NewInputRef(0, types.BigInt), rex.Int(5))
	node := rel.NewFilter(rel.NewFilter(rel.NewFilter(scan, cond), cond), cond)

	hp := plan.NewHepPlanner(rules.FilterMergeRule(), rules.FilterReduceExpressionsRule())
	out := hp.Optimize(node)
	filters := 0
	rel.Walk(out, func(n rel.Node) bool {
		if _, ok := n.(*rel.Filter); ok {
			filters++
		}
		return true
	})
	if filters != 1 {
		t.Errorf("expected a single merged filter, got %d:\n%s", filters, rel.Explain(out))
	}
}

// TestProgramPhases: a multi-stage program applies phases in order.
func TestProgramPhases(t *testing.T) {
	table := schema.NewMemTable("t", types.Row(
		types.Field{Name: "k", Type: types.BigInt},
	), [][]any{{int64(1)}, {int64(7)}})
	scan := rel.NewTableScan(trait.Logical, table, []string{"t"})
	node := rel.NewFilter(scan, rex.And(rex.Bool(true),
		rex.NewCall(rex.OpGreater, rex.NewInputRef(0, types.BigInt), rex.Int(5))))

	prog := &plan.Program{Phases: []plan.Phase{
		{Name: "logical", Rules: rules.DefaultLogicalRules()},
		{Name: "physical", Rules: exec.Rules(), CostBased: true, Target: trait.Enumerable},
	}}
	out, err := prog.Run(node, meta.NewQuery(exec.MetadataProvider()))
	if err != nil {
		t.Fatal(err)
	}
	rows, err := exec.Execute(exec.NewContext(), out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != int64(7) {
		t.Errorf("rows: %v", rows)
	}
}

// TestRuleFiringDedup: the same binding never fires twice.
func TestRuleFiringDedup(t *testing.T) {
	fired := 0
	rule := &plan.FuncRule{
		Name: "CountingRule",
		Op:   plan.MatchType[*rel.TableScan](),
		Fire: func(call *plan.Call) { fired++ },
	}
	scan := rel.NewTableScan(trait.Logical, tbl("t", 10), []string{"t"})
	vp := plan.NewVolcanoPlanner(rule, exec.Rules()[0])
	vp.Meta = meta.NewQuery()
	if _, err := vp.Optimize(scan, trait.Enumerable); err != nil {
		t.Fatal(err)
	}
	// The logical scan matches once; the enumerable scan produced by the
	// conversion rule matches once more. No re-fires beyond that.
	if fired > 2 {
		t.Errorf("rule fired %d times", fired)
	}
}

// TestNoImplementationError: a plan with no physical implementation reports
// a useful error instead of panicking.
func TestNoImplementationError(t *testing.T) {
	scan := rel.NewTableScan(trait.Logical, tbl("t", 10), []string{"t"})
	vp := plan.NewVolcanoPlanner() // no rules at all
	vp.Meta = meta.NewQuery()
	_, err := vp.Optimize(scan, trait.Enumerable)
	if err == nil {
		t.Fatal("expected no-implementation error")
	}
}

// TestConverterMaterialization: registering a node in an adapter convention
// materializes the registered converters into its equivalence set.
func TestConverterMaterialization(t *testing.T) {
	conv := trait.NewConvention("fake")
	table := tbl("t", 10)
	scanRule := &plan.FuncRule{
		Name: "FakeScanRule",
		Op:   plan.MatchType[*rel.TableScan](),
		Fire: func(call *plan.Call) {
			s := call.Rel(0).(*rel.TableScan)
			if trait.SameConvention(s.Traits().Convention, trait.Logical) {
				call.Transform(rel.NewTableScan(conv, s.Table, s.QualifiedName))
			}
		},
	}
	vp := plan.NewVolcanoPlanner(scanRule)
	vp.Meta = meta.NewQuery()
	madeConverter := false
	vp.AddConverter(conv, trait.Enumerable, func(input rel.Node) rel.Node {
		madeConverter = true
		return rel.NewConverter("FakeToEnumerable", trait.Enumerable, input)
	})
	scan := rel.NewTableScan(trait.Logical, table, []string{"t"})
	best, err := vp.Optimize(scan, trait.Enumerable)
	if err != nil {
		t.Fatalf("optimize: %v", err)
	}
	if !madeConverter {
		t.Error("converter factory never invoked")
	}
	if best.Op() != "FakeToEnumerable" {
		t.Errorf("best plan:\n%s", rel.Explain(best))
	}
	_ = fmt.Sprint(best)
}
