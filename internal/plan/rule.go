// Package plan implements the planner engines of §6 of the paper. Two
// engines are provided, mirroring Calcite:
//
//   - VolcanoPlanner: a cost-based engine using dynamic programming in the
//     style of the Volcano optimizer generator. Expressions are registered
//     with a digest; equivalent expressions are grouped into equivalence
//     sets; rules fire until a configurable fix point — either exhaustively
//     or until the best cost stops improving by more than a threshold δ.
//
//   - HepPlanner: an exhaustive rule-driven engine that applies rules until
//     the expression no longer changes, without considering cost. Rules can
//     be organized into consecutive phases (multi-stage optimization).
//
// Both engines share the Rule / Operand / Call abstractions.
package plan

import (
	"calcite/internal/meta"
	"calcite/internal/rel"
	"calcite/internal/trait"
)

// Rule is a planner rule: it matches a pattern in the operator tree and
// registers an equivalent (usually cheaper) expression. Rules must preserve
// semantics (§6: "a rule matches a given pattern in the tree and executes a
// transformation that preserves semantics of that expression").
type Rule interface {
	// RuleName returns a unique, human-readable name, e.g.
	// "FilterIntoJoinRule".
	RuleName() string
	// Operand returns the root of the pattern this rule matches.
	Operand() *Operand
	// OnMatch fires the rule for one binding. Implementations call
	// call.Transform with zero or more equivalent expressions.
	OnMatch(call *Call)
}

// FuncRule adapts a function to the Rule interface.
type FuncRule struct {
	Name string
	Op   *Operand
	Fire func(call *Call)
}

func (r *FuncRule) RuleName() string  { return r.Name }
func (r *FuncRule) Operand() *Operand { return r.Op }
func (r *FuncRule) OnMatch(call *Call) {
	r.Fire(call)
}

// ruleFire dispatches a rule firing.
func ruleFire(r Rule, call *Call) { r.OnMatch(call) }

// Operand is a node pattern: a predicate on a relational expression plus
// patterns for its inputs. A nil Children slice matches any inputs; an empty
// non-nil slice requires a leaf.
type Operand struct {
	// Match tests whether the pattern applies to a node.
	Match func(rel.Node) bool
	// Children are patterns for the node's inputs, matched positionally.
	// nil means "any inputs".
	Children []*Operand
	// anyChildren distinguishes nil-initialized from explicitly empty.
	anyChildren bool
}

// MatchNode builds an operand matching nodes satisfying pred, with child
// patterns. Passing no children means "any inputs"; use Leaf for "no inputs".
func MatchNode(pred func(rel.Node) bool, children ...*Operand) *Operand {
	if len(children) == 0 {
		return &Operand{Match: pred, anyChildren: true}
	}
	return &Operand{Match: pred, Children: children}
}

// MatchType builds an operand matching nodes of dynamic type T.
func MatchType[T rel.Node](children ...*Operand) *Operand {
	return MatchNode(func(n rel.Node) bool {
		_, ok := n.(T)
		return ok
	}, children...)
}

// AnyNode matches any node, any inputs.
func AnyNode() *Operand { return MatchNode(func(rel.Node) bool { return true }) }

// countOperands returns the number of operands in the pattern (pre-order).
func countOperands(o *Operand) int {
	n := 1
	for _, c := range o.Children {
		n += countOperands(c)
	}
	return n
}

// Call is the context passed to a firing rule: the matched nodes (pre-order
// over the operand pattern), the metadata session, and the transform sink.
type Call struct {
	// Rels holds the bound nodes: Rels[0] is the pattern root.
	Rels []rel.Node
	// Meta is the planning session's metadata query interface (§6:
	// metadata "provid[es] information to the rules while they are being
	// applied").
	Meta *meta.Query

	planner transformSink
	// fired records whether Transform was called (for statistics).
	transformed []rel.Node
}

// Rel returns the i-th bound node (0 = pattern root).
func (c *Call) Rel(i int) rel.Node { return c.Rels[i] }

// Transform registers an expression equivalent to the matched root.
func (c *Call) Transform(n rel.Node) {
	c.transformed = append(c.transformed, n)
	if c.planner != nil {
		c.planner.transform(c, n)
	}
}

// Convert returns a placeholder requiring `input` in convention conv. In the
// Volcano planner this is a reference to input's equivalence set restricted
// to the convention (the analogue of Calcite's RelSubset); in the Hep
// planner, which has no equivalence sets, it returns input unchanged.
func (c *Call) Convert(input rel.Node, conv trait.Convention) rel.Node {
	if c.planner == nil {
		return input
	}
	return c.planner.convert(input, conv)
}

// transformSink abstracts the planner receiving rule output.
type transformSink interface {
	transform(c *Call, n rel.Node)
	convert(input rel.Node, conv trait.Convention) rel.Node
}

// matchConcrete matches an operand pattern against a concrete tree (used by
// the Hep planner): children are matched against the node's actual inputs.
// Returns the pre-order binding, or nil.
func matchConcrete(o *Operand, n rel.Node) []rel.Node {
	if o.Match != nil && !o.Match(n) {
		return nil
	}
	binding := []rel.Node{n}
	if o.anyChildren || o.Children == nil {
		return binding
	}
	inputs := n.Inputs()
	if len(o.Children) != len(inputs) {
		return nil
	}
	for i, co := range o.Children {
		sub := matchConcrete(co, inputs[i])
		if sub == nil {
			return nil
		}
		binding = append(binding, sub...)
	}
	return binding
}
