package trait

import "testing"

func TestConventionIdentity(t *testing.T) {
	a := NewConvention("splunk")
	b := NewConvention("splunk")
	if !SameConvention(a, b) {
		t.Error("same-named conventions must match")
	}
	if SameConvention(a, Enumerable) {
		t.Error("different conventions must differ")
	}
	if SameConvention(nil, Enumerable) {
		t.Error("nil is not a convention")
	}
	if !SameConvention(nil, nil) {
		t.Error("nil equals nil")
	}
}

func TestCollationSatisfies(t *testing.T) {
	full := Collation{{0, Ascending}, {1, Descending}, {2, Ascending}}
	cases := []struct {
		req  Collation
		want bool
	}{
		{nil, true},
		{Collation{{0, Ascending}}, true},
		{Collation{{0, Ascending}, {1, Descending}}, true},
		{full, true},
		{Collation{{1, Descending}}, false}, // not a prefix
		{Collation{{0, Descending}}, false}, // wrong direction
		{append(append(Collation{}, full...), FieldCollation{3, Ascending}), false}, // longer
	}
	for i, c := range cases {
		if got := full.Satisfies(c.req); got != c.want {
			t.Errorf("case %d: Satisfies(%s) = %v, want %v", i, c.req, got, c.want)
		}
	}
}

func TestCollationEqualAndString(t *testing.T) {
	a := Collation{{0, Ascending}}
	if !a.Equal(Collation{{0, Ascending}}) || a.Equal(Collation{{0, Descending}}) {
		t.Error("Equal broken")
	}
	if a.String() != "[$0 ASC]" {
		t.Errorf("String: %s", a.String())
	}
	if Collation(nil).String() != "any" {
		t.Error("empty collation prints 'any'")
	}
}

func TestSetModifiers(t *testing.T) {
	s := NewSet(Logical)
	s2 := s.WithConvention(Enumerable).WithCollation(Collation{{0, Ascending}})
	if !SameConvention(s2.Convention, Enumerable) || len(s2.Collation) != 1 {
		t.Errorf("set: %s", s2)
	}
	// Original unchanged (value semantics).
	if !SameConvention(s.Convention, Logical) || len(s.Collation) != 0 {
		t.Errorf("original mutated: %s", s)
	}
	if s2.String() != "enumerable.[$0 ASC]" {
		t.Errorf("String: %s", s2.String())
	}
}
