package trait

import "testing"

func TestConventionIdentity(t *testing.T) {
	a := NewConvention("splunk")
	b := NewConvention("splunk")
	if !SameConvention(a, b) {
		t.Error("same-named conventions must match")
	}
	if SameConvention(a, Enumerable) {
		t.Error("different conventions must differ")
	}
	if SameConvention(nil, Enumerable) {
		t.Error("nil is not a convention")
	}
	if !SameConvention(nil, nil) {
		t.Error("nil equals nil")
	}
}

func TestCollationSatisfies(t *testing.T) {
	full := Collation{{0, Ascending}, {1, Descending}, {2, Ascending}}
	cases := []struct {
		req  Collation
		want bool
	}{
		{nil, true},
		{Collation{{0, Ascending}}, true},
		{Collation{{0, Ascending}, {1, Descending}}, true},
		{full, true},
		{Collation{{1, Descending}}, false}, // not a prefix
		{Collation{{0, Descending}}, false}, // wrong direction
		{append(append(Collation{}, full...), FieldCollation{3, Ascending}), false}, // longer
	}
	for i, c := range cases {
		if got := full.Satisfies(c.req); got != c.want {
			t.Errorf("case %d: Satisfies(%s) = %v, want %v", i, c.req, got, c.want)
		}
	}
}

func TestCollationEqualAndString(t *testing.T) {
	a := Collation{{0, Ascending}}
	if !a.Equal(Collation{{0, Ascending}}) || a.Equal(Collation{{0, Descending}}) {
		t.Error("Equal broken")
	}
	if a.String() != "[$0 ASC]" {
		t.Errorf("String: %s", a.String())
	}
	if Collation(nil).String() != "any" {
		t.Error("empty collation prints 'any'")
	}
}

func TestDistributionSatisfies(t *testing.T) {
	cases := []struct {
		have, need Distribution
		want       bool
	}{
		// Anything satisfies the unconstrained requirement.
		{AnyDist, AnyDist, true},
		{Singleton(), AnyDist, true},
		{Hashed(1), AnyDist, true},
		{RandomDist(), AnyDist, true},
		// A singleton stream satisfies every requirement (all rows are
		// colocated by definition).
		{Singleton(), Singleton(), true},
		{Singleton(), Hashed(0, 1), true},
		{Singleton(), RandomDist(), true},
		// Hash distributions: rows hashed on a subset of the required keys
		// are already colocated for the superset grouping.
		{Hashed(0), Hashed(0), true},
		{Hashed(0), Hashed(0, 1), true},
		{Hashed(1, 0), Hashed(0, 1), true}, // key order irrelevant
		{Hashed(0, 1), Hashed(0), false},   // superset does not satisfy subset
		{Hashed(2), Hashed(0, 1), false},
		// Random placement guarantees nothing.
		{RandomDist(), Singleton(), false},
		{RandomDist(), Hashed(0), false},
		{RandomDist(), RandomDist(), true},
		// Partitioned data never satisfies singleton.
		{Hashed(0), Singleton(), false},
		// The unknown distribution satisfies only "any".
		{AnyDist, Singleton(), false},
		{AnyDist, Hashed(0), false},
	}
	for i, c := range cases {
		if got := c.have.Satisfies(c.need); got != c.want {
			t.Errorf("case %d: %s.Satisfies(%s) = %v, want %v", i, c.have, c.need, got, c.want)
		}
	}
}

// TestDistributionConversion checks the planner's exchange-placement logic
// at the trait level: which exchange kind converts one distribution into
// another, mirroring how collation conversion implies a sort.
func TestDistributionConversion(t *testing.T) {
	// A gather produces a singleton from any partitioned input, and a
	// singleton result then satisfies every downstream requirement.
	for _, from := range []Distribution{RandomDist(), Hashed(0), Hashed(2, 3)} {
		if from.Satisfies(Singleton()) {
			t.Errorf("%s must need a gather before a singleton consumer", from)
		}
		if !Singleton().Satisfies(Hashed(0)) || !Singleton().Satisfies(RandomDist()) {
			t.Error("gather output must satisfy any downstream distribution")
		}
	}
	// A hash exchange on keys K produces Hashed(K), which satisfies any
	// requirement over a superset of K but not over disjoint keys.
	out := Hashed(0, 1)
	if !out.Satisfies(Hashed(0, 1, 2)) {
		t.Error("hash exchange output must satisfy superset-key grouping")
	}
	if out.Satisfies(Hashed(2)) {
		t.Error("hash exchange output must not satisfy disjoint keys")
	}
}

func TestDistributionEqualAndString(t *testing.T) {
	if !Hashed(0, 1).Equal(Hashed(0, 1)) || Hashed(0, 1).Equal(Hashed(1, 0)) {
		t.Error("Equal is positional")
	}
	if Hashed(0).Equal(RandomDist()) || !AnyDist.Equal(Distribution{}) {
		t.Error("Equal kind handling broken")
	}
	if got := Hashed(0, 2).String(); got != "hashed[$0, $2]" {
		t.Errorf("String: %s", got)
	}
	if Singleton().String() != "singleton" || RandomDist().String() != "random" || AnyDist.String() != "any" {
		t.Error("distribution String broken")
	}
	if Singleton().Partitioned() || AnyDist.Partitioned() || !Hashed(0).Partitioned() || !RandomDist().Partitioned() {
		t.Error("Partitioned classification broken")
	}
}

func TestSetWithDistribution(t *testing.T) {
	s := NewSet(Enumerable)
	s2 := s.WithDistribution(Hashed(1))
	if !s2.Distribution.Equal(Hashed(1)) {
		t.Errorf("distribution not set: %s", s2)
	}
	if !s.Distribution.Equal(AnyDist) {
		t.Errorf("original mutated: %s", s)
	}
	if s2.String() != "enumerable.hashed[$1]" {
		t.Errorf("String: %s", s2.String())
	}
	full := s2.WithCollation(Collation{{0, Ascending}})
	if full.String() != "enumerable.[$0 ASC].hashed[$1]" {
		t.Errorf("String: %s", full.String())
	}
}

func TestSetModifiers(t *testing.T) {
	s := NewSet(Logical)
	s2 := s.WithConvention(Enumerable).WithCollation(Collation{{0, Ascending}})
	if !SameConvention(s2.Convention, Enumerable) || len(s2.Collation) != 1 {
		t.Errorf("set: %s", s2)
	}
	// Original unchanged (value semantics).
	if !SameConvention(s.Convention, Logical) || len(s.Collation) != 0 {
		t.Errorf("original mutated: %s", s)
	}
	if s2.String() != "enumerable.[$0 ASC]" {
		t.Errorf("String: %s", s2.String())
	}
}
