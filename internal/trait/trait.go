// Package trait implements the physical-property ("trait") framework of §4
// of the paper. A trait describes a physical property of the data produced by
// a relational expression without changing its logical semantics. The two
// traits implemented — as in Calcite — are the calling convention (which
// engine executes the expression) and collation (sort order). The planner
// reasons about traits to remove redundant work (e.g. a Sort whose input is
// already ordered) and to place operators on the backend best able to run
// them (Figure 2 of the paper).
package trait

import (
	"fmt"
	"strings"
)

// Convention identifies the data processing system an expression executes
// on. It is the key mechanism behind cross-system optimization: an adapter
// contributes a Convention plus converter rules, and the planner treats the
// convention like any other physical property.
type Convention interface {
	// ConventionName returns a short unique name, e.g. "logical",
	// "enumerable", "splunk".
	ConventionName() string
}

type namedConvention string

func (c namedConvention) ConventionName() string { return string(c) }

// NewConvention returns a convention with the given name. Conventions with
// the same name compare equal via Name comparison; adapters usually create
// one per schema instance.
func NewConvention(name string) Convention { return namedConvention(name) }

// Logical is the convention of purely logical expressions: no implementation
// has been chosen yet (the "logical convention" of Figure 2).
var Logical = NewConvention("logical")

// Enumerable is the built-in client-side convention: operators that iterate
// over tuples via the cursor interface (§5 of the paper).
var Enumerable = NewConvention("enumerable")

// SameConvention reports whether two conventions are the same.
func SameConvention(a, b Convention) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.ConventionName() == b.ConventionName()
}

// Direction is a sort direction.
type Direction int

const (
	Ascending Direction = iota
	Descending
)

func (d Direction) String() string {
	if d == Descending {
		return "DESC"
	}
	return "ASC"
}

// FieldCollation is one column of a collation: the ordinal of the sorted
// field and its direction.
type FieldCollation struct {
	Field     int
	Direction Direction
}

func (f FieldCollation) String() string {
	return fmt.Sprintf("$%d %s", f.Field, f.Direction)
}

// Collation is an ordered list of field collations describing the sort order
// of the rows produced by an expression. An empty collation means "no
// ordering guaranteed".
type Collation []FieldCollation

func (c Collation) String() string {
	if len(c) == 0 {
		return "any"
	}
	parts := make([]string, len(c))
	for i, f := range c {
		parts[i] = f.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Equal reports whether two collations are identical.
func (c Collation) Equal(o Collation) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// Satisfies reports whether data ordered by c is also ordered by required —
// i.e. required is a prefix of c. This is the check behind sort elimination
// and behind the Cassandra sort-pushdown precondition (§6: "the sorting of
// partitions … has some common prefix with the required sort").
func (c Collation) Satisfies(required Collation) bool {
	if len(required) > len(c) {
		return false
	}
	for i := range required {
		if c[i] != required[i] {
			return false
		}
	}
	return true
}

// Set is the trait set attached to every relational expression.
type Set struct {
	Convention Convention
	Collation  Collation
}

// NewSet returns a trait set with the given convention and no collation.
func NewSet(c Convention) Set { return Set{Convention: c} }

// WithCollation returns a copy of s with the collation replaced.
func (s Set) WithCollation(c Collation) Set {
	s.Collation = c
	return s
}

// WithConvention returns a copy of s with the convention replaced.
func (s Set) WithConvention(c Convention) Set {
	s.Convention = c
	return s
}

func (s Set) String() string {
	name := "none"
	if s.Convention != nil {
		name = s.Convention.ConventionName()
	}
	if len(s.Collation) == 0 {
		return name
	}
	return name + "." + s.Collation.String()
}
