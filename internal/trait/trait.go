// Package trait implements the physical-property ("trait") framework of §4
// of the paper. A trait describes a physical property of the data produced by
// a relational expression without changing its logical semantics. Three
// traits are implemented: the calling convention (which engine executes the
// expression), collation (sort order) — both as in Calcite — and
// distribution (how rows spread across the partitions of a parallel plan:
// singleton, hash-partitioned on a key set, or random).
//
// The planner reasons about traits to remove redundant work and to place
// operators correctly: a Sort whose input already satisfies its collation is
// removed, an adapter absorbs operators by converting conventions (Figure 2
// of the paper), and the parallel rewriter inserts exchange operators
// exactly where a node's required input distribution is not Satisfied by its
// child's. Satisfies is deliberately directional: a singleton stream
// satisfies any required distribution's ordering needs differently than a
// hashed one, and conversions between them are what exchanges implement.
package trait

import (
	"fmt"
	"strings"
)

// Convention identifies the data processing system an expression executes
// on. It is the key mechanism behind cross-system optimization: an adapter
// contributes a Convention plus converter rules, and the planner treats the
// convention like any other physical property.
type Convention interface {
	// ConventionName returns a short unique name, e.g. "logical",
	// "enumerable", "splunk".
	ConventionName() string
}

type namedConvention string

func (c namedConvention) ConventionName() string { return string(c) }

// NewConvention returns a convention with the given name. Conventions with
// the same name compare equal via Name comparison; adapters usually create
// one per schema instance.
func NewConvention(name string) Convention { return namedConvention(name) }

// Logical is the convention of purely logical expressions: no implementation
// has been chosen yet (the "logical convention" of Figure 2).
var Logical = NewConvention("logical")

// Enumerable is the built-in client-side convention: operators that iterate
// over tuples via the cursor interface (§5 of the paper).
var Enumerable = NewConvention("enumerable")

// SameConvention reports whether two conventions are the same.
func SameConvention(a, b Convention) bool {
	if a == nil || b == nil {
		return a == b
	}
	return a.ConventionName() == b.ConventionName()
}

// Direction is a sort direction.
type Direction int

const (
	Ascending Direction = iota
	Descending
)

func (d Direction) String() string {
	if d == Descending {
		return "DESC"
	}
	return "ASC"
}

// FieldCollation is one column of a collation: the ordinal of the sorted
// field and its direction.
type FieldCollation struct {
	Field     int
	Direction Direction
}

func (f FieldCollation) String() string {
	return fmt.Sprintf("$%d %s", f.Field, f.Direction)
}

// Collation is an ordered list of field collations describing the sort order
// of the rows produced by an expression. An empty collation means "no
// ordering guaranteed".
type Collation []FieldCollation

func (c Collation) String() string {
	if len(c) == 0 {
		return "any"
	}
	parts := make([]string, len(c))
	for i, f := range c {
		parts[i] = f.String()
	}
	return "[" + strings.Join(parts, ", ") + "]"
}

// Equal reports whether two collations are identical.
func (c Collation) Equal(o Collation) bool {
	if len(c) != len(o) {
		return false
	}
	for i := range c {
		if c[i] != o[i] {
			return false
		}
	}
	return true
}

// Satisfies reports whether data ordered by c is also ordered by required —
// i.e. required is a prefix of c. This is the check behind sort elimination
// and behind the Cassandra sort-pushdown precondition (§6: "the sorting of
// partitions … has some common prefix with the required sort").
func (c Collation) Satisfies(required Collation) bool {
	if len(required) > len(c) {
		return false
	}
	for i := range required {
		if c[i] != required[i] {
			return false
		}
	}
	return true
}

// DistributionKind classifies how the rows of an expression are spread
// across parallel workers.
type DistributionKind int

const (
	// DistAny is the zero value: the distribution is unknown or
	// unconstrained (every distribution satisfies it).
	DistAny DistributionKind = iota
	// DistSingleton means all rows flow through a single stream.
	DistSingleton
	// DistHashed means rows are partitioned by a hash of key columns: rows
	// equal on the keys are in the same partition.
	DistHashed
	// DistRandom means rows are partitioned with no placement guarantee
	// (morsel-driven scans, round-robin exchanges).
	DistRandom
)

// Distribution is the physical trait describing data placement across the
// partitions of a parallel plan. It plays the same role for exchange
// placement that Collation plays for sort elimination: an operator states
// the distribution it requires and the planner inserts an exchange whenever
// the input's distribution does not satisfy it.
type Distribution struct {
	Kind DistributionKind
	// Keys are the partitioning column ordinals (DistHashed only).
	Keys []int
}

// AnyDist is the unconstrained distribution (the zero value).
var AnyDist = Distribution{}

// Singleton returns the single-stream distribution.
func Singleton() Distribution { return Distribution{Kind: DistSingleton} }

// Hashed returns a hash distribution over the given key ordinals.
func Hashed(keys ...int) Distribution { return Distribution{Kind: DistHashed, Keys: keys} }

// RandomDist returns the arbitrary (round-robin / morsel) distribution.
func RandomDist() Distribution { return Distribution{Kind: DistRandom} }

// Partitioned reports whether rows are spread over more than one stream.
func (d Distribution) Partitioned() bool {
	return d.Kind == DistHashed || d.Kind == DistRandom
}

// Satisfies reports whether data distributed as d can be consumed by an
// operator requiring req without an exchange in between:
//
//   - anything satisfies DistAny;
//   - DistSingleton satisfies everything (all rows are colocated);
//   - DistHashed(K) satisfies DistHashed(R) when K ⊆ R — rows equal on a
//     superset of the hash keys are necessarily equal on the keys, hence
//     already colocated;
//   - DistRandom satisfies only DistRandom (and DistAny).
func (d Distribution) Satisfies(req Distribution) bool {
	if req.Kind == DistAny {
		return true
	}
	if d.Kind == DistSingleton {
		return true
	}
	if d.Kind != req.Kind {
		return false
	}
	if d.Kind == DistHashed {
		// Every one of d's keys must appear in req's keys.
		for _, k := range d.Keys {
			found := false
			for _, r := range req.Keys {
				if k == r {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return len(d.Keys) > 0
	}
	return true
}

// Equal reports whether two distributions are identical.
func (d Distribution) Equal(o Distribution) bool {
	if d.Kind != o.Kind || len(d.Keys) != len(o.Keys) {
		return false
	}
	for i := range d.Keys {
		if d.Keys[i] != o.Keys[i] {
			return false
		}
	}
	return true
}

func (d Distribution) String() string {
	switch d.Kind {
	case DistSingleton:
		return "singleton"
	case DistHashed:
		parts := make([]string, len(d.Keys))
		for i, k := range d.Keys {
			parts[i] = fmt.Sprintf("$%d", k)
		}
		return "hashed[" + strings.Join(parts, ", ") + "]"
	case DistRandom:
		return "random"
	}
	return "any"
}

// Set is the trait set attached to every relational expression.
type Set struct {
	Convention   Convention
	Collation    Collation
	Distribution Distribution
}

// NewSet returns a trait set with the given convention and no collation.
func NewSet(c Convention) Set { return Set{Convention: c} }

// WithCollation returns a copy of s with the collation replaced.
func (s Set) WithCollation(c Collation) Set {
	s.Collation = c
	return s
}

// WithConvention returns a copy of s with the convention replaced.
func (s Set) WithConvention(c Convention) Set {
	s.Convention = c
	return s
}

// WithDistribution returns a copy of s with the distribution replaced.
func (s Set) WithDistribution(d Distribution) Set {
	s.Distribution = d
	return s
}

func (s Set) String() string {
	name := "none"
	if s.Convention != nil {
		name = s.Convention.ConventionName()
	}
	if len(s.Collation) > 0 {
		name += "." + s.Collation.String()
	}
	if s.Distribution.Kind != DistAny {
		name += "." + s.Distribution.String()
	}
	return name
}
