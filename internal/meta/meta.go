// Package meta implements the metadata providers of §6 of the paper.
// Metadata serves two purposes: guiding the planner toward cheaper plans and
// informing rules while they are applied. The default provider supplies the
// overall cost of executing a subexpression, row counts, data sizes,
// selectivity, distinct counts, column uniqueness and collations; systems
// plug in providers that override these functions or add their own.
//
// Providers form an ordered chain with a well-defined fallback order: a
// Query consults custom providers first (in the order given to NewQuery,
// with Prepend able to push a provider to the front), and any provider
// whose function is nil — or returns ok=false — falls through to the next;
// the built-in DefaultProvider terminates every chain, deriving estimates
// from table statistics where collected (ANALYZE histograms, NDV sketches,
// null counts) and from textbook heuristics otherwise.
//
// The paper notes that provider implementations include "a cache for
// metadata results, which yields significant performance improvements";
// Query memoizes every metadata call by (metric, plan digest, args) and the
// cache can be disabled to measure its effect (experiment E8).
package meta

import (
	"fmt"
	"math"

	"calcite/internal/cost"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/trait"
)

// Provider supplies metadata. Any nil function falls through to the next
// provider in the chain; the built-in default provider terminates every
// chain.
type Provider struct {
	// Name identifies the provider in diagnostics.
	Name string
	// RowCount estimates the number of rows produced by n.
	RowCount func(q *Query, n rel.Node) (float64, bool)
	// Selectivity estimates the fraction of input rows satisfying predicate.
	Selectivity func(q *Query, n rel.Node, predicate rex.Node) (float64, bool)
	// DistinctRowCount estimates the number of distinct values of cols.
	DistinctRowCount func(q *Query, n rel.Node, cols []int) (float64, bool)
	// ColumnsUnique reports whether cols form a unique key of n's output.
	ColumnsUnique func(q *Query, n rel.Node, cols []int) (bool, bool)
	// Collations returns the sort order n's output is known to satisfy.
	Collations func(q *Query, n rel.Node) (trait.Collation, bool)
	// NonCumulativeCost estimates the cost of executing n itself,
	// excluding its inputs.
	NonCumulativeCost func(q *Query, n rel.Node) (cost.Cost, bool)
	// AverageRowSize estimates the bytes per output row of n.
	AverageRowSize func(q *Query, n rel.Node) (float64, bool)
	// MaxParallelism is the maximum degree of parallelism for executing n.
	MaxParallelism func(q *Query, n rel.Node) (int, bool)
}

// Query is a metadata session: a provider chain plus a memoizing cache. It
// is not safe for concurrent use; each planning session owns one.
type Query struct {
	providers []Provider
	cache     map[string]any
	digests   map[rel.Node]string
	// CacheEnabled toggles memoization (for experiment E8).
	CacheEnabled bool
	// Calls counts provider invocations (cache misses), exposed for tests
	// and benchmarks.
	Calls int
}

// NewQuery builds a metadata session with the given custom providers, which
// take precedence (in order) over the built-in default provider.
func NewQuery(providers ...Provider) *Query {
	q := &Query{
		providers:    append(append([]Provider(nil), providers...), DefaultProvider()),
		cache:        map[string]any{},
		digests:      map[rel.Node]string{},
		CacheEnabled: true,
	}
	return q
}

// Prepend installs a provider at the front of the chain, taking precedence
// over existing providers. The Volcano planner uses this to resolve metadata
// for its equivalence-set placeholders; adapters use it to contribute
// backend-specific statistics.
func (q *Query) Prepend(p Provider) {
	q.providers = append([]Provider{p}, q.providers...)
}

func (q *Query) cacheKey(metric string, n rel.Node, extra string) string {
	// Digests walk the whole subtree; memoize by node identity (plan nodes
	// are immutable) so cache lookups stay cheaper than re-computation.
	d, ok := q.digests[n]
	if !ok {
		d = rel.Digest(n)
		q.digests[n] = d
	}
	return metric + "\x00" + d + "\x00" + extra
}

func lookup[T any](q *Query, metric string, n rel.Node, extra string, compute func() T) T {
	if q.CacheEnabled {
		key := q.cacheKey(metric, n, extra)
		if v, ok := q.cache[key]; ok {
			return v.(T)
		}
		v := compute()
		q.cache[key] = v
		return v
	}
	return compute()
}

// RowCount estimates the rows produced by n (never < 1).
func (q *Query) RowCount(n rel.Node) float64 {
	return lookup(q, "rowCount", n, "", func() float64 {
		q.Calls++
		for _, p := range q.providers {
			if p.RowCount != nil {
				if v, ok := p.RowCount(q, n); ok {
					return math.Max(v, 1)
				}
			}
		}
		return 1
	})
}

// Selectivity estimates the fraction of n's rows satisfying predicate.
func (q *Query) Selectivity(n rel.Node, predicate rex.Node) float64 {
	extra := ""
	if predicate != nil {
		extra = predicate.String()
	}
	return lookup(q, "selectivity", n, extra, func() float64 {
		q.Calls++
		for _, p := range q.providers {
			if p.Selectivity != nil {
				if v, ok := p.Selectivity(q, n, predicate); ok {
					return clamp01(v)
				}
			}
		}
		return 0.5
	})
}

// DistinctRowCount estimates distinct combinations of cols in n's output.
func (q *Query) DistinctRowCount(n rel.Node, cols []int) float64 {
	return lookup(q, "distinct", n, fmt.Sprint(cols), func() float64 {
		q.Calls++
		for _, p := range q.providers {
			if p.DistinctRowCount != nil {
				if v, ok := p.DistinctRowCount(q, n, cols); ok {
					return math.Max(v, 1)
				}
			}
		}
		return math.Max(q.RowCount(n)/10, 1)
	})
}

// ColumnsUnique reports whether cols form a unique key of n's output.
func (q *Query) ColumnsUnique(n rel.Node, cols []int) bool {
	return lookup(q, "unique", n, fmt.Sprint(cols), func() bool {
		q.Calls++
		for _, p := range q.providers {
			if p.ColumnsUnique != nil {
				if v, ok := p.ColumnsUnique(q, n, cols); ok {
					return v
				}
			}
		}
		return false
	})
}

// Collations returns the collation n's output is known to satisfy. This
// powers sort-elimination (§4: "if the input to the sort operator is already
// correctly ordered ... the sort operation can be removed").
func (q *Query) Collations(n rel.Node) trait.Collation {
	return lookup(q, "collations", n, "", func() trait.Collation {
		q.Calls++
		for _, p := range q.providers {
			if p.Collations != nil {
				if v, ok := p.Collations(q, n); ok {
					return v
				}
			}
		}
		return nil
	})
}

// NonCumulativeCost estimates the cost of n excluding inputs.
func (q *Query) NonCumulativeCost(n rel.Node) cost.Cost {
	return lookup(q, "selfCost", n, "", func() cost.Cost {
		q.Calls++
		for _, p := range q.providers {
			if p.NonCumulativeCost != nil {
				if v, ok := p.NonCumulativeCost(q, n); ok {
					return v
				}
			}
		}
		return cost.Tiny
	})
}

// CumulativeCost estimates the total cost of the subtree rooted at n.
func (q *Query) CumulativeCost(n rel.Node) cost.Cost {
	return lookup(q, "cumCost", n, "", func() cost.Cost {
		c := q.NonCumulativeCost(n)
		for _, in := range n.Inputs() {
			c = c.Plus(q.CumulativeCost(in))
		}
		return c
	})
}

// AverageRowSize estimates bytes per row of n's output.
func (q *Query) AverageRowSize(n rel.Node) float64 {
	return lookup(q, "rowSize", n, "", func() float64 {
		q.Calls++
		for _, p := range q.providers {
			if p.AverageRowSize != nil {
				if v, ok := p.AverageRowSize(q, n); ok {
					return v
				}
			}
		}
		return float64(8 * len(n.RowType().Fields))
	})
}

// MaxParallelism is the maximum degree of parallelism for n (§6 mentions it
// among the default provider's functions).
func (q *Query) MaxParallelism(n rel.Node) int {
	return lookup(q, "parallel", n, "", func() int {
		q.Calls++
		for _, p := range q.providers {
			if p.MaxParallelism != nil {
				if v, ok := p.MaxParallelism(q, n); ok {
					return v
				}
			}
		}
		return 1
	})
}

// InvalidateCache clears memoized results (used after the plan graph
// mutates between planner phases).
func (q *Query) InvalidateCache() {
	q.cache = map[string]any{}
}

func clamp01(v float64) float64 {
	return math.Max(0.0001, math.Min(1, v))
}
