package meta

import (
	"math"
	"testing"

	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/stats"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// analyzedScan builds a MemTable from rows, runs the statistics collector
// over it (the same path ANALYZE takes), and returns its scan node.
func analyzedScan(name string, fields []types.Field, rows [][]any) (*schema.MemTable, rel.Node) {
	t := schema.NewMemTable(name, types.Row(fields...), rows)
	c := stats.NewCollector(len(fields))
	for _, r := range rows {
		c.AddRow(r)
	}
	cols, n := c.Finish()
	t.SetStats(schema.Statistics{RowCount: n, Columns: cols, Analyzed: true})
	return t, rel.NewTableScan(trait.Logical, t, []string{name})
}

// statsFixture: 1000 rows, v uniform over [0,1000), flag has 20% nulls,
// grp has 10 distinct values.
func statsFixture() (*schema.MemTable, rel.Node) {
	fields := []types.Field{
		{Name: "id", Type: types.BigInt},
		{Name: "v", Type: types.BigInt},
		{Name: "flag", Type: types.BigInt.WithNullable(true)},
		{Name: "grp", Type: types.BigInt},
	}
	var rows [][]any
	for i := 0; i < 1000; i++ {
		var flag any
		if i%5 != 0 {
			flag = int64(i % 3)
		}
		rows = append(rows, []any{int64(i), int64(i), flag, int64(i % 10)})
	}
	return analyzedScan("t", fields, rows)
}

func ref(i int) rex.Node { return rex.NewInputRef(i, types.BigInt) }

// TestHistogramSelectivityRange: range predicates must come from the
// histogram, not the 0.5 constant.
func TestHistogramSelectivityRange(t *testing.T) {
	_, scan := statsFixture()
	q := NewQuery()
	cases := []struct {
		pred rex.Node
		want float64
	}{
		{rex.NewCall(rex.OpLess, ref(1), rex.Int(100)), 0.10},
		{rex.NewCall(rex.OpGreaterEqual, ref(1), rex.Int(900)), 0.10},
		{rex.NewCall(rex.OpLess, ref(1), rex.Int(2000)), 1.0},
		{rex.NewCall(rex.OpGreater, ref(1), rex.Int(2000)), 0.0001},
		// literal-on-the-left orientation
		{rex.NewCall(rex.OpGreater, rex.Int(100), ref(1)), 0.10},
	}
	for _, c := range cases {
		got := q.Selectivity(scan, c.pred)
		if math.Abs(got-c.want) > 0.03 {
			t.Errorf("sel(%s) = %.4f, want ~%.3f", c.pred.String(), got, c.want)
		}
	}
}

// TestHistogramSelectivityEquality: equality uses the histogram/NDV, and
// conjunctions multiply.
func TestHistogramSelectivityEquality(t *testing.T) {
	_, scan := statsFixture()
	q := NewQuery()
	if got := q.Selectivity(scan, rex.Eq(ref(1), rex.Int(42))); math.Abs(got-0.001) > 0.002 {
		t.Errorf("eq on unique-ish column: %.5f, want ~0.001", got)
	}
	if got := q.Selectivity(scan, rex.Eq(ref(3), rex.Int(4))); math.Abs(got-0.1) > 0.03 {
		t.Errorf("eq on 10-distinct column: %.4f, want ~0.1", got)
	}
	and := rex.And(
		rex.NewCall(rex.OpLess, ref(1), rex.Int(500)),
		rex.Eq(ref(3), rex.Int(4)),
	)
	if got := q.Selectivity(scan, and); math.Abs(got-0.05) > 0.02 {
		t.Errorf("conjunction: %.4f, want ~0.05", got)
	}
}

// TestNullSelectivity: IS NULL / IS NOT NULL must use the collected null
// fraction (20%), not the 0.1/0.9 constants.
func TestNullSelectivity(t *testing.T) {
	_, scan := statsFixture()
	q := NewQuery()
	isNull := rex.NewCall(rex.OpIsNull, rex.NewInputRef(2, types.BigInt.WithNullable(true)))
	if got := q.Selectivity(scan, isNull); math.Abs(got-0.2) > 0.01 {
		t.Errorf("IS NULL = %.4f, want 0.2", got)
	}
	isNotNull := rex.NewCall(rex.OpIsNotNull, rex.NewInputRef(2, types.BigInt.WithNullable(true)))
	if got := q.Selectivity(scan, isNotNull); math.Abs(got-0.8) > 0.01 {
		t.Errorf("IS NOT NULL = %.4f, want 0.8", got)
	}
}

// TestJoinCardinalityFormula: an analyzed equi-join estimates
// |L|·|R|/max(ndv(l), ndv(r)).
func TestJoinCardinalityFormula(t *testing.T) {
	dimFields := []types.Field{
		{Name: "pk", Type: types.BigInt},
		{Name: "attr", Type: types.BigInt},
	}
	var dimRows [][]any
	for i := 0; i < 100; i++ {
		dimRows = append(dimRows, []any{int64(i), int64(i % 4)})
	}
	_, dim := analyzedScan("dim", dimFields, dimRows)

	factFields := []types.Field{
		{Name: "fk", Type: types.BigInt},
		{Name: "m", Type: types.Double},
	}
	var factRows [][]any
	for i := 0; i < 5000; i++ {
		factRows = append(factRows, []any{int64(i % 100), float64(i)})
	}
	_, fact := analyzedScan("fact", factFields, factRows)

	join := rel.NewJoin(rel.InnerJoin, fact, dim,
		rex.Eq(rex.NewInputRef(0, types.BigInt), rex.NewInputRef(2, types.BigInt)))
	q := NewQuery()
	got := q.RowCount(join)
	// |L|·|R|/max(ndv) = 5000*100/max(100,100) = 5000.
	if math.Abs(got-5000) > 250 {
		t.Errorf("join cardinality = %.0f, want ~5000", got)
	}

	// Distinct counts: fk has 100 collected NDV; the pair (fk, m) caps at
	// the row count.
	if d := q.DistinctRowCount(fact, []int{0}); math.Abs(d-100) > 10 {
		t.Errorf("ndv(fk) = %.0f, want ~100", d)
	}
	if d := q.DistinctRowCount(fact, []int{0, 1}); d > 5000.5 {
		t.Errorf("ndv(fk,m) = %.0f, want <= 5000", d)
	}
}

// TestColumnOriginThroughOperators: statistics must be found through
// filters, projects and join sides.
func TestColumnOriginThroughOperators(t *testing.T) {
	_, scan := statsFixture()
	q := NewQuery()
	pred := rex.NewCall(rex.OpLess, ref(1), rex.Int(100))

	// Through a filter.
	filter := rel.NewFilter(scan, rex.NewCall(rex.OpGreater, ref(0), rex.Int(10)))
	if got := q.Selectivity(filter, pred); math.Abs(got-0.10) > 0.03 {
		t.Errorf("through filter: %.4f, want ~0.1", got)
	}

	// Through a projection that reorders columns: output 0 = input 1.
	proj := rel.NewProject(scan, []rex.Node{ref(1), ref(0)}, []string{"v", "id"})
	predOnProj := rex.NewCall(rex.OpLess, ref(0), rex.Int(100))
	if got := q.Selectivity(proj, predOnProj); math.Abs(got-0.10) > 0.03 {
		t.Errorf("through project: %.4f, want ~0.1", got)
	}
}

// TestUnanalyzedFallback: without collected statistics the textbook
// constants must still apply (0.5 for ranges, 0.15 for equality).
func TestUnanalyzedFallback(t *testing.T) {
	tab := schema.NewMemTable("plain", types.Row(
		types.Field{Name: "a", Type: types.BigInt},
	), [][]any{{int64(1)}, {int64(2)}})
	scan := rel.NewTableScan(trait.Logical, tab, []string{"plain"})
	q := NewQuery()
	if got := q.Selectivity(scan, rex.NewCall(rex.OpLess, ref(0), rex.Int(5))); got != 0.5 {
		t.Errorf("range fallback = %v, want 0.5", got)
	}
	if got := q.Selectivity(scan, rex.Eq(ref(0), rex.Int(5))); got != 0.15 {
		t.Errorf("equality fallback = %v, want 0.15", got)
	}
}
