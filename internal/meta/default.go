package meta

import (
	"math"

	"calcite/internal/cost"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/trait"
)

// DefaultProvider returns the built-in metadata provider: table statistics
// where available, textbook cardinality estimation elsewhere, and the
// CPU/IO/memory cost model of §6.
func DefaultProvider() Provider {
	return Provider{
		Name:              "default",
		RowCount:          defaultRowCount,
		Selectivity:       defaultSelectivity,
		DistinctRowCount:  defaultDistinct,
		ColumnsUnique:     defaultUnique,
		Collations:        defaultCollations,
		NonCumulativeCost: defaultSelfCost,
		AverageRowSize:    defaultRowSize,
		MaxParallelism:    defaultParallelism,
	}
}

// unwrap sees through physical wrappers to their logical prototypes so the
// estimators below need only handle the core operator types.
func unwrap(n rel.Node) rel.Node {
	for {
		w, ok := n.(rel.Wrapped)
		if !ok {
			return n
		}
		n = w.Unwrap()
	}
}

func defaultRowCount(q *Query, n rel.Node) (float64, bool) {
	n = unwrap(n)
	switch x := n.(type) {
	case *rel.TableScan:
		rc := x.Table.Stats().RowCount
		if rc <= 0 {
			rc = 100
		}
		return rc, true
	case *rel.Filter:
		return q.RowCount(x.Inputs()[0]) * q.Selectivity(x.Inputs()[0], x.Condition), true
	case *rel.Project:
		return q.RowCount(x.Inputs()[0]), true
	case *rel.Join:
		left, right := q.RowCount(x.Left()), q.RowCount(x.Right())
		switch x.Kind {
		case rel.SemiJoin, rel.AntiJoin:
			return math.Max(left*q.Selectivity(x, x.Condition), 1), true
		}
		sel := q.Selectivity(x, x.Condition)
		return math.Max(left*right*sel, 1), true
	case *rel.Aggregate:
		if len(x.GroupKeys) == 0 {
			return 1, true
		}
		return q.DistinctRowCount(x.Inputs()[0], x.GroupKeys), true
	case *rel.Sort:
		rc := q.RowCount(x.Inputs()[0])
		if x.Offset > 0 {
			rc = math.Max(rc-float64(x.Offset), 0)
		}
		if x.Fetch >= 0 {
			rc = math.Min(rc, float64(x.Fetch))
		}
		return math.Max(rc, 1), true
	case *rel.SetOp:
		total := 0.0
		for _, in := range x.Inputs() {
			total += q.RowCount(in)
		}
		switch x.Kind {
		case rel.UnionOp:
			if !x.All {
				total *= 0.7
			}
			return total, true
		case rel.IntersectOp, rel.MinusOp:
			return math.Max(q.RowCount(x.Inputs()[0])*0.5, 1), true
		}
	case *rel.Values:
		return math.Max(float64(len(x.Tuples)), 1), true
	case *rel.Window:
		return q.RowCount(x.Inputs()[0]), true
	case *rel.Converter:
		return q.RowCount(x.Inputs()[0]), true
	case *rel.TableModify:
		return 1, true
	}
	// Unknown operators (adapter-specific): pass through single input.
	if ins := n.Inputs(); len(ins) == 1 {
		return q.RowCount(ins[0]), true
	}
	return 0, false
}

// defaultSelectivity estimates predicate selectivity. Each conjunct is
// first tried against collected column statistics (histogram ranges, NDV
// equality, null fractions, and the 1/max(ndv) equi-join rule — see
// stats.go); conjuncts whose columns have no statistics fall back to the
// classic System-R constants: 0.15 per equality, 0.5 per inequality/range,
// combined multiplicatively over conjunctions.
func defaultSelectivity(q *Query, n rel.Node, predicate rex.Node) (float64, bool) {
	if predicate == nil || rex.IsAlwaysTrue(predicate) {
		return 1, true
	}
	if rex.IsAlwaysFalse(predicate) {
		return 0.0001, true
	}
	sel := 1.0
	for _, term := range rex.Conjuncts(predicate) {
		if s, ok := statsTermSelectivity(q, n, term); ok {
			sel *= s
		} else {
			sel *= termSelectivity(term)
		}
	}
	return sel, true
}

func termSelectivity(term rex.Node) float64 {
	c, ok := term.(*rex.Call)
	if !ok {
		return 0.25
	}
	switch c.Op {
	case rex.OpEquals:
		return 0.15
	case rex.OpNotEquals:
		return 0.85
	case rex.OpLess, rex.OpLessEqual, rex.OpGreater, rex.OpGreaterEqual:
		return 0.5
	case rex.OpIsNull:
		return 0.1
	case rex.OpIsNotNull:
		return 0.9
	case rex.OpLike:
		return 0.25
	case rex.OpOr:
		// 1 - Π(1 - s_i)
		inv := 1.0
		for _, o := range c.Operands {
			inv *= 1 - termSelectivity(o)
		}
		return 1 - inv
	case rex.OpNot:
		return 1 - termSelectivity(c.Operands[0])
	}
	return 0.25
}

func defaultDistinct(q *Query, n rel.Node, cols []int) (float64, bool) {
	n = unwrap(n)
	switch x := n.(type) {
	case *rel.TableScan:
		rc := q.RowCount(n)
		if x.Table.Stats().IsKey(cols) {
			return rc, true
		}
		// Collected NDVs (ANALYZE) beat the heuristic.
		if d, ok := statsDistinct(x.Table.Stats(), cols); ok {
			return d, true
		}
		// Heuristic: each column contributes sqrt of table cardinality.
		d := 1.0
		for range cols {
			d *= math.Sqrt(rc)
		}
		return math.Min(d, rc), true
	case *rel.Filter:
		d := q.DistinctRowCount(x.Inputs()[0], cols)
		return math.Min(d, q.RowCount(x)), true
	case *rel.Join:
		// Columns drawn from a single input keep that input's distinct
		// count (capped by the join output size).
		nLeft := rel.FieldCount(x.Left())
		allLeft, allRight := true, true
		for _, c := range cols {
			if c >= nLeft {
				allLeft = false
			} else {
				allRight = false
			}
		}
		if allLeft && len(cols) > 0 {
			return math.Min(q.DistinctRowCount(x.Left(), cols), q.RowCount(x)), true
		}
		if allRight && len(cols) > 0 && x.Kind.ProjectsRight() {
			shifted := make([]int, len(cols))
			for i, c := range cols {
				shifted[i] = c - nLeft
			}
			return math.Min(q.DistinctRowCount(x.Right(), shifted), q.RowCount(x)), true
		}
	case *rel.Project:
		// Map output cols to input refs where possible.
		var inCols []int
		for _, c := range cols {
			if c < len(x.Exprs) {
				if ref, ok := x.Exprs[c].(*rex.InputRef); ok {
					inCols = append(inCols, ref.Index)
					continue
				}
			}
			return math.Min(q.RowCount(x), math.Pow(q.RowCount(x), 0.7)), true
		}
		return q.DistinctRowCount(x.Inputs()[0], inCols), true
	case *rel.Converter:
		return q.DistinctRowCount(x.Inputs()[0], cols), true
	}
	rc := q.RowCount(n)
	return math.Min(math.Pow(rc, 0.8), rc), true
}

func defaultUnique(q *Query, n rel.Node, cols []int) (bool, bool) {
	n = unwrap(n)
	switch x := n.(type) {
	case *rel.TableScan:
		return x.Table.Stats().IsKey(cols), true
	case *rel.Filter:
		return q.ColumnsUnique(x.Inputs()[0], cols), true
	case *rel.Sort:
		return q.ColumnsUnique(x.Inputs()[0], cols), true
	case *rel.Aggregate:
		// The group keys are a key of the aggregate output.
		covered := true
		for i := range x.GroupKeys {
			found := false
			for _, c := range cols {
				if c == i {
					found = true
					break
				}
			}
			if !found {
				covered = false
				break
			}
		}
		return covered && len(x.GroupKeys) > 0, true
	case *rel.Project:
		var inCols []int
		for _, c := range cols {
			if c < len(x.Exprs) {
				if ref, ok := x.Exprs[c].(*rex.InputRef); ok {
					inCols = append(inCols, ref.Index)
					continue
				}
			}
			return false, true
		}
		return q.ColumnsUnique(x.Inputs()[0], inCols), true
	}
	return false, false
}

// defaultCollations propagates known sort orders: Sort establishes one,
// Filter and Limit preserve it, Project preserves it through identity
// column mappings.
func defaultCollations(q *Query, n rel.Node) (trait.Collation, bool) {
	if c := n.Traits().Collation; len(c) > 0 {
		return c, true
	}
	n = unwrap(n)
	switch x := n.(type) {
	case *rel.Sort:
		return x.Collation, true
	case *rel.Filter:
		return q.Collations(x.Inputs()[0]), true
	case *rel.Converter:
		return q.Collations(x.Inputs()[0]), true
	case *rel.Project:
		in := q.Collations(x.Inputs()[0])
		if len(in) == 0 {
			return nil, true
		}
		// input ordinal -> output ordinal for identity projections
		mapping := map[int]int{}
		for out, e := range x.Exprs {
			if ref, ok := e.(*rex.InputRef); ok {
				if _, dup := mapping[ref.Index]; !dup {
					mapping[ref.Index] = out
				}
			}
		}
		var out trait.Collation
		for _, fc := range in {
			o, ok := mapping[fc.Field]
			if !ok {
				break
			}
			out = append(out, trait.FieldCollation{Field: o, Direction: fc.Direction})
		}
		return out, true
	}
	return nil, true
}

// defaultSelfCost is the CPU/IO/memory cost model.
func defaultSelfCost(q *Query, n rel.Node) (cost.Cost, bool) {
	n = unwrap(n)
	switch x := n.(type) {
	case *rel.TableScan:
		rc := q.RowCount(n)
		return cost.New(rc, rc, rc*q.AverageRowSize(n)/1024, 0), true
	case *rel.Filter:
		in := q.RowCount(x.Inputs()[0])
		return cost.New(in, in, 0, 0), true
	case *rel.Project:
		in := q.RowCount(x.Inputs()[0])
		return cost.New(in, in*float64(len(x.Exprs))*0.1, 0, 0), true
	case *rel.Join:
		left, right := q.RowCount(x.Left()), q.RowCount(x.Right())
		// Hash join estimate: build on right, probe left.
		return cost.New(left+right, left+right, 0, right*q.AverageRowSize(x.Right())), true
	case *rel.Aggregate:
		in := q.RowCount(x.Inputs()[0])
		groups := q.RowCount(x)
		return cost.New(in, in*(1+0.2*float64(len(x.Calls))), 0, groups*q.AverageRowSize(x)), true
	case *rel.Sort:
		in := q.RowCount(x.Inputs()[0])
		// Sort is n log n CPU; pure limit is linear.
		cpu := in
		if len(x.Collation) > 0 {
			cpu = in * math.Log2(math.Max(in, 2))
		}
		return cost.New(in, cpu, 0, in*q.AverageRowSize(x)), true
	case *rel.SetOp:
		total := 0.0
		for _, in := range x.Inputs() {
			total += q.RowCount(in)
		}
		mem := 0.0
		if !x.All || x.Kind != rel.UnionOp {
			mem = total * q.AverageRowSize(x)
		}
		return cost.New(total, total, 0, mem), true
	case *rel.Values:
		return cost.New(float64(len(x.Tuples)), float64(len(x.Tuples)), 0, 0), true
	case *rel.Window:
		in := q.RowCount(x.Inputs()[0])
		return cost.New(in, in*math.Log2(math.Max(in, 2)), 0, in*q.AverageRowSize(x)), true
	case *rel.Converter:
		// Crossing an engine boundary serializes rows (IO), per Figure 2's
		// preference for plans that avoid unnecessary convention changes.
		rc := q.RowCount(x.Inputs()[0])
		return cost.New(rc, rc*0.1, rc*q.AverageRowSize(x)/1024+1, 0), true
	case *rel.TableModify:
		rc := q.RowCount(x.Inputs()[0])
		return cost.New(rc, rc, rc, 0), true
	}
	rc := q.RowCount(n)
	return cost.New(rc, rc, 0, 0), true
}

func defaultRowSize(q *Query, n rel.Node) (float64, bool) {
	return float64(8 * len(n.RowType().Fields)), true
}

func defaultParallelism(q *Query, n rel.Node) (int, bool) {
	// The enumerable engine is single-threaded; adapters may override.
	return 1, true
}
