package meta

import (
	"math"

	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/stats"
	"calcite/internal/types"
)

// Collected-statistics estimation: when ANALYZE has populated per-column
// statistics (null counts, min/max, NDV sketches, equi-depth histograms),
// the default provider derives selectivities and cardinalities from them
// instead of the textbook constants. Every function here degrades to
// (0, false) when no statistics are available, so unanalyzed tables keep
// the exact pre-statistics behaviour.

// columnOrigin resolves output column col of n to the base-table statistics
// it originates from, tracing through filters, sorts, converters, physical
// wrappers, identity projections and join input concatenation.
func columnOrigin(n rel.Node, col int) (schema.Statistics, int, bool) {
	for {
		n = unwrap(n)
		switch x := n.(type) {
		case *rel.TableScan:
			return x.Table.Stats(), col, true
		case *rel.Filter, *rel.Sort, *rel.Converter:
			n = x.Inputs()[0]
		case *rel.Project:
			if col >= len(x.Exprs) {
				return schema.Statistics{}, 0, false
			}
			ref, ok := x.Exprs[col].(*rex.InputRef)
			if !ok {
				return schema.Statistics{}, 0, false
			}
			n, col = x.Inputs()[0], ref.Index
		case *rel.Join:
			nLeft := rel.FieldCount(x.Left())
			if col < nLeft {
				n = x.Left()
			} else if x.Kind.ProjectsRight() {
				n, col = x.Right(), col-nLeft
			} else {
				return schema.Statistics{}, 0, false
			}
		default:
			return schema.Statistics{}, 0, false
		}
	}
}

// colStats returns the collected statistics of n's output column col, plus
// the row count of the originating table, when the column has been analyzed.
func colStats(n rel.Node, col int) (*stats.ColumnStats, float64, bool) {
	ts, origin, ok := columnOrigin(n, col)
	if !ok {
		return nil, 0, false
	}
	cs := ts.ColStats(origin)
	if cs == nil {
		return nil, 0, false
	}
	rows := math.Max(ts.RowCount, 1)
	return cs, rows, true
}

// statsTermSelectivity estimates one conjunct from collected statistics.
// The second result is false when the term's columns have no statistics.
func statsTermSelectivity(q *Query, n rel.Node, term rex.Node) (float64, bool) {
	c, ok := term.(*rex.Call)
	if !ok {
		return 0, false
	}
	switch c.Op {
	case rex.OpIsNull, rex.OpIsNotNull:
		ref, ok := c.Operands[0].(*rex.InputRef)
		if !ok {
			return 0, false
		}
		cs, rows, ok := colStats(n, ref.Index)
		if !ok {
			return 0, false
		}
		nullFrac := cs.NullCount / rows
		if c.Op == rex.OpIsNull {
			return nullFrac, true
		}
		return 1 - nullFrac, true
	case rex.OpNot:
		if s, ok := statsTermSelectivity(q, n, c.Operands[0]); ok {
			return 1 - s, true
		}
		return 0, false
	case rex.OpOr:
		// 1 - Π(1 - s_i), statistics-backed terms only.
		inv := 1.0
		for _, o := range c.Operands {
			s, ok := statsTermSelectivity(q, n, o)
			if !ok {
				return 0, false
			}
			inv *= 1 - s
		}
		return 1 - inv, true
	case rex.OpEquals, rex.OpNotEquals, rex.OpLess, rex.OpLessEqual,
		rex.OpGreater, rex.OpGreaterEqual:
		if s, ok := joinEquiSelectivity(q, n, c); ok {
			return s, true
		}
		return compareSelectivity(n, c)
	}
	return 0, false
}

// joinEquiSelectivity handles the equi-join conjunct l = r across the two
// inputs of a join: selectivity 1/max(ndv(l), ndv(r)), which yields the
// classic join cardinality |L|·|R|/max(ndv(l), ndv(r)). The distinct counts
// come from collected statistics when the tables are analyzed and from the
// sqrt heuristics otherwise, so join estimates stay ordering-sane either
// way — ANALYZE sharpens them.
func joinEquiSelectivity(q *Query, n rel.Node, c *rex.Call) (float64, bool) {
	if c.Op != rex.OpEquals {
		return 0, false
	}
	j, ok := unwrap(n).(*rel.Join)
	if !ok {
		return 0, false
	}
	a, aok := c.Operands[0].(*rex.InputRef)
	b, bok := c.Operands[1].(*rex.InputRef)
	if !aok || !bok {
		return 0, false
	}
	nLeft := rel.FieldCount(j.Left())
	l, r := a.Index, b.Index
	if l > r {
		l, r = r, l
	}
	if l >= nLeft || r < nLeft {
		return 0, false // both refs on the same side: not a join predicate
	}
	ndvL := q.DistinctRowCount(j.Left(), []int{l})
	ndvR := q.DistinctRowCount(j.Right(), []int{r - nLeft})
	return 1 / math.Max(math.Max(ndvL, ndvR), 1), true
}

// compareSelectivity estimates column-vs-literal comparisons from the
// column's histogram (numeric) or NDV (equality).
func compareSelectivity(n rel.Node, c *rex.Call) (float64, bool) {
	ref, lit, op, ok := normalizeComparison(c)
	if !ok {
		return 0, false
	}
	cs, rows, ok := colStats(n, ref.Index)
	if !ok {
		return 0, false
	}
	nonNullFrac := 1 - cs.NullCount/rows
	if lit.Value == nil {
		return 0.0001, true // comparisons with NULL select nothing
	}
	key, numeric := types.AsFloat(lit.Value)
	switch op {
	case rex.OpEquals, rex.OpNotEquals:
		var eq float64
		switch {
		case numeric && cs.Histogram != nil:
			eq = cs.Histogram.FracEq(key) * nonNullFrac
		case cs.NDV > 0:
			eq = nonNullFrac / cs.NDV
		default:
			return 0, false
		}
		if op == rex.OpNotEquals {
			return clamp01(nonNullFrac - eq), true
		}
		return clamp01(eq), true
	case rex.OpLess, rex.OpLessEqual:
		if !numeric || cs.Histogram == nil {
			return 0, false
		}
		return clamp01(cs.Histogram.FracLess(key, op == rex.OpLessEqual) * nonNullFrac), true
	case rex.OpGreater, rex.OpGreaterEqual:
		if !numeric || cs.Histogram == nil {
			return 0, false
		}
		le := cs.Histogram.FracLess(key, op != rex.OpGreaterEqual)
		return clamp01((1 - le) * nonNullFrac), true
	}
	return 0, false
}

// normalizeComparison orients a binary comparison into (column ref, literal,
// op) form, flipping the operator when the literal is on the left.
func normalizeComparison(c *rex.Call) (*rex.InputRef, *rex.Literal, *rex.Operator, bool) {
	if len(c.Operands) != 2 {
		return nil, nil, nil, false
	}
	if ref, ok := c.Operands[0].(*rex.InputRef); ok {
		if lit, ok := c.Operands[1].(*rex.Literal); ok {
			return ref, lit, c.Op, true
		}
	}
	if lit, ok := c.Operands[0].(*rex.Literal); ok {
		if ref, ok := c.Operands[1].(*rex.InputRef); ok {
			return ref, lit, flipComparison(c.Op), true
		}
	}
	return nil, nil, nil, false
}

func flipComparison(op *rex.Operator) *rex.Operator {
	switch op {
	case rex.OpLess:
		return rex.OpGreater
	case rex.OpLessEqual:
		return rex.OpGreaterEqual
	case rex.OpGreater:
		return rex.OpLess
	case rex.OpGreaterEqual:
		return rex.OpLessEqual
	}
	return op // =, <> are symmetric
}

// statsDistinct estimates the distinct count of cols on a table scan from
// collected NDVs: the product of per-column NDVs capped by the row count.
func statsDistinct(ts schema.Statistics, cols []int) (float64, bool) {
	if len(cols) == 0 {
		return 1, true
	}
	d := 1.0
	for _, c := range cols {
		cs := ts.ColStats(c)
		if cs == nil || cs.NDV <= 0 {
			return 0, false
		}
		d *= cs.NDV
	}
	return math.Min(d, math.Max(ts.RowCount, 1)), true
}
