package meta

import (
	"testing"

	"calcite/internal/cost"
	"calcite/internal/rel"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

func scanNode(name string, rowCount float64) rel.Node {
	t := schema.NewMemTable(name, types.Row(
		types.Field{Name: "k", Type: types.BigInt},
		types.Field{Name: "v", Type: types.Varchar},
	), nil)
	t.SetStats(schema.Statistics{RowCount: rowCount, UniqueColumns: [][]int{{0}}})
	return rel.NewTableScan(trait.Logical, t, []string{name})
}

// TestCacheHitMiss: repeated metadata calls on the same node must hit the
// memo cache (one provider invocation), and disabling the cache must re-run
// the provider every time.
func TestCacheHitMiss(t *testing.T) {
	n := scanNode("t", 500)

	q := NewQuery()
	for i := 0; i < 5; i++ {
		if rc := q.RowCount(n); rc != 500 {
			t.Fatalf("RowCount: %v", rc)
		}
	}
	if q.Calls != 1 {
		t.Fatalf("cached session made %d provider calls, want 1", q.Calls)
	}

	q2 := NewQuery()
	q2.CacheEnabled = false
	for i := 0; i < 5; i++ {
		q2.RowCount(n)
	}
	if q2.Calls != 5 {
		t.Fatalf("uncached session made %d provider calls, want 5", q2.Calls)
	}
}

// TestCacheKeySeparation: different metrics and different nodes must not
// collide in the cache.
func TestCacheKeySeparation(t *testing.T) {
	a := scanNode("a", 100)
	b := scanNode("b", 900)
	q := NewQuery()
	if q.RowCount(a) == q.RowCount(b) {
		t.Fatal("distinct nodes returned identical row counts")
	}
	// A second metric on a cached node still computes fresh.
	if q.AverageRowSize(a) <= 0 {
		t.Fatal("row size")
	}
	if got := q.RowCount(a); got != 100 {
		t.Fatalf("metric collision: RowCount(a) = %v after AverageRowSize", got)
	}
}

// TestInvalidateCache: invalidation must force recomputation.
func TestInvalidateCache(t *testing.T) {
	n := scanNode("t", 50)
	q := NewQuery()
	q.RowCount(n)
	calls := q.Calls
	q.InvalidateCache()
	q.RowCount(n)
	if q.Calls != calls+1 {
		t.Fatalf("invalidate did not evict: %d calls, want %d", q.Calls, calls+1)
	}
}

// TestProviderChain: a custom provider takes precedence, its misses fall
// through to the default provider, and Prepend outranks both.
func TestProviderChain(t *testing.T) {
	n := scanNode("t", 500)
	custom := Provider{
		Name: "custom",
		RowCount: func(q *Query, node rel.Node) (float64, bool) {
			return 42, true
		},
	}
	q := NewQuery(custom)
	if rc := q.RowCount(n); rc != 42 {
		t.Fatalf("custom provider ignored: %v", rc)
	}
	// Metrics the custom provider does not implement fall through.
	if c := q.CumulativeCost(n); c.IsInfinite() {
		t.Fatalf("fall-through cost: %v", c)
	}

	front := Provider{
		Name: "front",
		NonCumulativeCost: func(q *Query, node rel.Node) (cost.Cost, bool) {
			return cost.New(7, 7, 7, 7), true
		},
	}
	q2 := NewQuery(custom)
	q2.Prepend(front)
	if c := q2.NonCumulativeCost(n); c.Rows != 7 {
		t.Fatalf("prepended provider not consulted first: %v", c)
	}
}

// TestDefaultsAreSane: the terminal default provider must answer everything.
func TestDefaultsAreSane(t *testing.T) {
	n := scanNode("t", 1000)
	q := NewQuery()
	if s := q.Selectivity(n, nil); s <= 0 || s > 1 {
		t.Fatalf("selectivity: %v", s)
	}
	if d := q.DistinctRowCount(n, []int{0}); d < 1 {
		t.Fatalf("distinct: %v", d)
	}
	if !q.ColumnsUnique(n, []int{0}) {
		t.Fatal("declared unique key not detected")
	}
	if p := q.MaxParallelism(n); p < 1 {
		t.Fatalf("parallelism: %v", p)
	}
}
