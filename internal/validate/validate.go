// Package validate implements the SQL validator (§3 of the paper: the
// component that, together with the parser, translates SQL to relational
// algebra). It resolves identifiers against the catalog through lexical
// scopes, type-checks expressions, expands stars, and converts parsed
// expressions into typed row expressions (rex). The sql2rel converter builds
// relational operators on top of these facilities.
package validate

import (
	"fmt"
	"strconv"
	"strings"

	"calcite/internal/parser"
	"calcite/internal/rex"
	"calcite/internal/types"
)

// Namespace is one named row source visible in a scope (a FROM item).
type Namespace struct {
	// Alias is the exposed name (table alias or table name).
	Alias string
	// Fields are the columns contributed.
	Fields []types.Field
	// Offset is the position of the namespace's first column in the
	// combined input row.
	Offset int
}

// Scope is a lexical scope for identifier resolution.
type Scope struct {
	Parent     *Scope
	Namespaces []Namespace
}

// NewScope creates a scope with the given parent.
func NewScope(parent *Scope) *Scope { return &Scope{Parent: parent} }

// AddNamespace appends a row source; offsets are assigned sequentially.
func (s *Scope) AddNamespace(alias string, fields []types.Field) {
	s.Namespaces = append(s.Namespaces, Namespace{
		Alias:  alias,
		Fields: fields,
		Offset: s.Width(),
	})
}

// Width is the total number of columns visible in this scope (excluding
// parents).
func (s *Scope) Width() int {
	w := 0
	for _, ns := range s.Namespaces {
		w += len(ns.Fields)
	}
	return w
}

// AllFields returns the concatenated fields of all namespaces.
func (s *Scope) AllFields() []types.Field {
	var out []types.Field
	for _, ns := range s.Namespaces {
		out = append(out, ns.Fields...)
	}
	return out
}

// Resolve finds a column by (possibly qualified) name. It returns the
// absolute column index and type. Resolution is case-insensitive and
// reports ambiguity errors, per ANSI semantics.
func (s *Scope) Resolve(parts []string) (int, *types.Type, error) {
	switch len(parts) {
	case 1:
		name := parts[0]
		found := -1
		var ft *types.Type
		for _, ns := range s.Namespaces {
			for i, f := range ns.Fields {
				if strings.EqualFold(f.Name, name) {
					if found >= 0 {
						return 0, nil, fmt.Errorf("validate: column %q is ambiguous", name)
					}
					found = ns.Offset + i
					ft = f.Type
				}
			}
		}
		if found >= 0 {
			return found, ft, nil
		}
	case 2:
		tbl, col := parts[0], parts[1]
		for _, ns := range s.Namespaces {
			if !strings.EqualFold(ns.Alias, tbl) {
				continue
			}
			for i, f := range ns.Fields {
				if strings.EqualFold(f.Name, col) {
					return ns.Offset + i, f.Type, nil
				}
			}
			return 0, nil, fmt.Errorf("validate: column %q not found in %q", col, tbl)
		}
	default:
		// schema.table.column: try the trailing two parts.
		if len(parts) > 2 {
			return s.Resolve(parts[len(parts)-2:])
		}
	}
	if s.Parent != nil {
		return s.Parent.Resolve(parts)
	}
	return 0, nil, fmt.Errorf("validate: column %q not found", strings.Join(parts, "."))
}

// ResolveNamespace finds a namespace by alias (for "alias.*" expansion).
func (s *Scope) ResolveNamespace(alias string) (Namespace, bool) {
	for _, ns := range s.Namespaces {
		if strings.EqualFold(ns.Alias, alias) {
			return ns, true
		}
	}
	return Namespace{}, false
}

// ConvertType translates a parsed type spec into a *types.Type.
func ConvertType(ts parser.TypeSpec) (*types.Type, error) {
	switch ts.Name {
	case "BOOLEAN":
		return types.Boolean, nil
	case "TINYINT", "SMALLINT":
		return types.Scalar(types.TinyIntKind), nil
	case "INT", "INTEGER":
		return types.Integer, nil
	case "BIGINT":
		return types.BigInt, nil
	case "FLOAT", "REAL":
		return types.Scalar(types.FloatKind), nil
	case "DOUBLE", "DECIMAL", "NUMERIC":
		return types.Double, nil
	case "VARCHAR", "CHAR", "STRING", "TEXT":
		t := &types.Type{Kind: types.VarcharKind, Precision: ts.Precision}
		return t, nil
	case "TIMESTAMP":
		return types.Timestamp, nil
	case "DATE":
		return types.Date, nil
	case "TIME":
		return types.Scalar(types.TimeKind), nil
	case "GEOMETRY":
		return types.Geometry, nil
	case "ANY":
		return types.Any, nil
	case "ARRAY", "MULTISET":
		elem := types.Any
		if ts.Elem != nil {
			e, err := ConvertType(*ts.Elem)
			if err != nil {
				return nil, err
			}
			elem = e
		}
		if ts.Name == "ARRAY" {
			return types.Array(elem), nil
		}
		return types.Multiset(elem), nil
	case "MAP":
		key, val := types.Varchar, types.Any
		if ts.Key != nil {
			k, err := ConvertType(*ts.Key)
			if err != nil {
				return nil, err
			}
			key = k
		}
		if ts.Elem != nil {
			v, err := ConvertType(*ts.Elem)
			if err != nil {
				return nil, err
			}
			val = v
		}
		return types.Map(key, val), nil
	}
	return nil, fmt.Errorf("validate: unknown type %q", ts.Name)
}

// AggUse records one aggregate call discovered inside an expression.
type AggUse struct {
	Call parser.FuncCall
	// Key is the digest used to dedupe identical calls.
	Key string
}

// ExprConverter converts parsed expressions to typed rex nodes within a
// scope. When Aggs is non-nil the converter is in "aggregating" mode:
// aggregate function calls are collected into Aggs and replaced by
// placeholder references computed by the caller.
type ExprConverter struct {
	Scope *Scope
	// GroupExprMap maps the digest of a grouped expression to its output
	// ordinal in the aggregate (aggregating mode).
	GroupExprMap map[string]int
	GroupTypes   map[string]*types.Type
	// AggSink collects aggregate calls (aggregating mode); it returns the
	// output ordinal the call's result will occupy.
	AggSink func(call *parser.FuncCall) (int, *types.Type, error)
	// RawScope, in aggregating mode, is the scope of the aggregate's input
	// (used to convert aggregate arguments and grouped expressions).
	RawScope *Scope
	// SpecialFuncs intercepts function calls by upper-case name before the
	// global registry lookup; used for group-window auxiliary functions
	// (TUMBLE_END etc., §7.2).
	SpecialFuncs map[string]func(call *parser.FuncCall) (rex.Node, error)
	// WindowSink handles calls with an OVER clause (set by the select-list
	// converter while building the Window operator).
	WindowSink func(call *parser.FuncCall) (rex.Node, error)
}

var binOps = map[string]*rex.Operator{
	"=": rex.OpEquals, "<>": rex.OpNotEquals, "<": rex.OpLess,
	"<=": rex.OpLessEqual, ">": rex.OpGreater, ">=": rex.OpGreaterEqual,
	"+": rex.OpPlus, "-": rex.OpMinus, "*": rex.OpTimes, "/": rex.OpDivide,
	"%": rex.OpMod, "||": rex.OpConcat, "LIKE": rex.OpLike,
	"AND": rex.OpAnd, "OR": rex.OpOr,
}

// Convert translates e into a typed rex node.
func (c *ExprConverter) Convert(e parser.Expr) (rex.Node, error) {
	// In aggregating mode, a whole sub-expression equal to a GROUP BY
	// expression resolves to the corresponding aggregate output column.
	if c.GroupExprMap != nil {
		if idx, ok := c.GroupExprMap[ExprDigest(e)]; ok {
			return rex.NewInputRef(idx, c.GroupTypes[ExprDigest(e)]), nil
		}
	}
	switch x := e.(type) {
	case *parser.Ident:
		if c.GroupExprMap != nil {
			return nil, fmt.Errorf("validate: column %q must appear in GROUP BY or be used in an aggregate function", x.String())
		}
		idx, t, err := c.Scope.Resolve(x.Parts)
		if err != nil {
			return nil, err
		}
		return rex.NewInputRef(idx, t), nil
	case *parser.NumberLit:
		if x.IsInt {
			v, err := strconv.ParseInt(x.Text, 10, 64)
			if err == nil {
				return rex.Int(v), nil
			}
		}
		f, err := strconv.ParseFloat(x.Text, 64)
		if err != nil {
			return nil, fmt.Errorf("validate: bad number %q", x.Text)
		}
		return rex.Float(f), nil
	case *parser.StringLit:
		return rex.Str(x.Value), nil
	case *parser.BoolLit:
		return rex.Bool(x.Value), nil
	case *parser.NullLit:
		return rex.Null(), nil
	case *parser.IntervalLit:
		return rex.NewLiteral(x.Millis, types.Interval), nil
	case *parser.ParamExpr:
		return &rex.DynamicParam{Index: x.Index, T: types.Any}, nil
	case *parser.BinaryExpr:
		op, ok := binOps[x.Op]
		if !ok {
			return nil, fmt.Errorf("validate: unknown operator %q", x.Op)
		}
		l, err := c.Convert(x.Left)
		if err != nil {
			return nil, err
		}
		r, err := c.Convert(x.Right)
		if err != nil {
			return nil, err
		}
		if err := checkOperandTypes(op, l, r); err != nil {
			return nil, err
		}
		return rex.NewCall(op, l, r), nil
	case *parser.UnaryExpr:
		operand, err := c.Convert(x.Operand)
		if err != nil {
			return nil, err
		}
		if x.Op == "NOT" {
			return rex.NewCall(rex.OpNot, operand), nil
		}
		if lit, ok := operand.(*rex.Literal); ok {
			switch v := lit.Value.(type) {
			case int64:
				return rex.NewLiteral(-v, lit.T), nil
			case float64:
				return rex.NewLiteral(-v, lit.T), nil
			}
		}
		return rex.NewCall(rex.OpUnaryMinus, operand), nil
	case *parser.IsNullExpr:
		operand, err := c.Convert(x.Operand)
		if err != nil {
			return nil, err
		}
		if x.Not {
			return rex.NewCall(rex.OpIsNotNull, operand), nil
		}
		return rex.NewCall(rex.OpIsNull, operand), nil
	case *parser.BetweenExpr:
		operand, err := c.Convert(x.Operand)
		if err != nil {
			return nil, err
		}
		lo, err := c.Convert(x.Low)
		if err != nil {
			return nil, err
		}
		hi, err := c.Convert(x.High)
		if err != nil {
			return nil, err
		}
		between := rex.And(
			rex.NewCall(rex.OpGreaterEqual, operand, lo),
			rex.NewCall(rex.OpLessEqual, operand, hi),
		)
		if x.Not {
			return rex.NewCall(rex.OpNot, between), nil
		}
		return between, nil
	case *parser.InExpr:
		operand, err := c.Convert(x.Operand)
		if err != nil {
			return nil, err
		}
		var terms []rex.Node
		for _, item := range x.List {
			v, err := c.Convert(item)
			if err != nil {
				return nil, err
			}
			terms = append(terms, rex.Eq(operand, v))
		}
		in := rex.Or(terms...)
		if x.Not {
			return rex.NewCall(rex.OpNot, in), nil
		}
		return in, nil
	case *parser.CaseExpr:
		var operands []rex.Node
		for _, w := range x.Whens {
			var cond rex.Node
			var err error
			if x.Operand != nil {
				// Simple CASE: operand = when.
				base, err2 := c.Convert(x.Operand)
				if err2 != nil {
					return nil, err2
				}
				when, err2 := c.Convert(w.When)
				if err2 != nil {
					return nil, err2
				}
				cond = rex.Eq(base, when)
			} else {
				cond, err = c.Convert(w.When)
				if err != nil {
					return nil, err
				}
			}
			then, err := c.Convert(w.Then)
			if err != nil {
				return nil, err
			}
			operands = append(operands, cond, then)
		}
		if x.Else != nil {
			els, err := c.Convert(x.Else)
			if err != nil {
				return nil, err
			}
			operands = append(operands, els)
		}
		return rex.NewCall(rex.OpCase, operands...), nil
	case *parser.CastExpr:
		operand, err := c.Convert(x.Operand)
		if err != nil {
			return nil, err
		}
		t, err := ConvertType(x.Type)
		if err != nil {
			return nil, err
		}
		return rex.NewCallTyped(rex.OpCast, t.WithNullable(operand.Type().Nullable), operand), nil
	case *parser.ItemExpr:
		base, err := c.Convert(x.Base)
		if err != nil {
			return nil, err
		}
		idx, err := c.Convert(x.Index)
		if err != nil {
			return nil, err
		}
		return rex.NewCall(rex.OpItem, base, idx), nil
	case *parser.FuncCall:
		return c.convertFuncCall(x)
	}
	return nil, fmt.Errorf("validate: unsupported expression %T", e)
}

func (c *ExprConverter) convertFuncCall(x *parser.FuncCall) (rex.Node, error) {
	if x.Over != nil {
		if c.WindowSink != nil {
			return c.WindowSink(x)
		}
		return nil, fmt.Errorf("validate: window function %s is not allowed here", x.Name)
	}
	if fn, ok := c.SpecialFuncs[strings.ToUpper(x.Name)]; ok {
		return fn(x)
	}
	if k, ok := rex.LookupWindowFunc(x.Name); ok && k.WindowOnly() {
		return nil, fmt.Errorf("validate: window function %s requires an OVER clause", x.Name)
	}
	if _, isAgg := rex.LookupAggFunc(x.Name); isAgg && !x.Star || x.Star {
		if c.AggSink == nil {
			return nil, fmt.Errorf("validate: aggregate function %s is not allowed here", x.Name)
		}
		idx, t, err := c.AggSink(x)
		if err != nil {
			return nil, err
		}
		return rex.NewInputRef(idx, t), nil
	}
	op, ok := rex.LookupFunction(x.Name)
	if !ok {
		return nil, fmt.Errorf("validate: unknown function %q", x.Name)
	}
	args := make([]rex.Node, len(x.Args))
	for i, a := range x.Args {
		v, err := c.Convert(a)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	return rex.NewCall(op, args...), nil
}

// checkOperandTypes rejects statically ill-typed binary operations (e.g.
// AND over non-booleans, arithmetic over geometry).
func checkOperandTypes(op *rex.Operator, l, r rex.Node) error {
	lt, rt := l.Type(), r.Type()
	switch op {
	case rex.OpAnd, rex.OpOr:
		for _, t := range []*types.Type{lt, rt} {
			if t.Kind != types.BooleanKind && t.Kind != types.AnyKind && t.Kind != types.NullKind {
				return fmt.Errorf("validate: %s requires BOOLEAN operands, got %s", op.Name, t)
			}
		}
	case rex.OpPlus, rex.OpMinus, rex.OpTimes, rex.OpDivide:
		for _, t := range []*types.Type{lt, rt} {
			if !t.Kind.IsNumeric() && !t.Kind.IsDatetime() && t.Kind != types.IntervalKind &&
				t.Kind != types.AnyKind && t.Kind != types.NullKind {
				return fmt.Errorf("validate: %s requires numeric operands, got %s", op.Name, t)
			}
		}
	case rex.OpEquals, rex.OpNotEquals, rex.OpLess, rex.OpLessEqual, rex.OpGreater, rex.OpGreaterEqual:
		if lt.Kind == types.AnyKind || rt.Kind == types.AnyKind ||
			lt.Kind == types.NullKind || rt.Kind == types.NullKind {
			return nil
		}
		if types.LeastRestrictive(lt, rt) == nil {
			return fmt.Errorf("validate: cannot compare %s with %s", lt, rt)
		}
	}
	return nil
}

// ExprDigest renders a parsed expression canonically, for matching GROUP BY
// expressions against select-list expressions.
func ExprDigest(e parser.Expr) string {
	switch x := e.(type) {
	case *parser.Ident:
		return strings.ToLower(strings.Join(x.Parts, "."))
	case *parser.NumberLit:
		return x.Text
	case *parser.StringLit:
		return "'" + x.Value + "'"
	case *parser.BoolLit:
		return fmt.Sprint(x.Value)
	case *parser.NullLit:
		return "null"
	case *parser.IntervalLit:
		return fmt.Sprintf("interval(%d)", x.Millis)
	case *parser.ParamExpr:
		return fmt.Sprintf("?%d", x.Index)
	case *parser.BinaryExpr:
		return "(" + ExprDigest(x.Left) + " " + x.Op + " " + ExprDigest(x.Right) + ")"
	case *parser.UnaryExpr:
		return "(" + x.Op + " " + ExprDigest(x.Operand) + ")"
	case *parser.IsNullExpr:
		s := "(" + ExprDigest(x.Operand) + " is null)"
		if x.Not {
			s = "(" + ExprDigest(x.Operand) + " is not null)"
		}
		return s
	case *parser.BetweenExpr:
		return fmt.Sprintf("(%s between %s and %s not=%v)", ExprDigest(x.Operand), ExprDigest(x.Low), ExprDigest(x.High), x.Not)
	case *parser.InExpr:
		parts := make([]string, len(x.List))
		for i, it := range x.List {
			parts[i] = ExprDigest(it)
		}
		return fmt.Sprintf("(%s in (%s) not=%v)", ExprDigest(x.Operand), strings.Join(parts, ","), x.Not)
	case *parser.CaseExpr:
		var b strings.Builder
		b.WriteString("case(")
		if x.Operand != nil {
			b.WriteString(ExprDigest(x.Operand))
		}
		for _, w := range x.Whens {
			fmt.Fprintf(&b, " when %s then %s", ExprDigest(w.When), ExprDigest(w.Then))
		}
		if x.Else != nil {
			b.WriteString(" else " + ExprDigest(x.Else))
		}
		b.WriteString(")")
		return b.String()
	case *parser.CastExpr:
		return fmt.Sprintf("cast(%s as %s(%d))", ExprDigest(x.Operand), x.Type.Name, x.Type.Precision)
	case *parser.ItemExpr:
		return ExprDigest(x.Base) + "[" + ExprDigest(x.Index) + "]"
	case *parser.FuncCall:
		parts := make([]string, len(x.Args))
		for i, a := range x.Args {
			parts[i] = ExprDigest(a)
		}
		star := ""
		if x.Star {
			star = "*"
		}
		distinct := ""
		if x.Distinct {
			distinct = "distinct "
		}
		return strings.ToLower(x.Name) + "(" + distinct + star + strings.Join(parts, ",") + ")"
	}
	return fmt.Sprintf("%T", e)
}
