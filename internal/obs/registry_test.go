package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	c.Add(-3) // negative deltas are ignored: counters only go up
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Idempotent registration returns the same instrument.
	if r.Counter("reqs_total", "requests") != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Distinct label sets are distinct children of the same family.
	a := r.Counter("by_route", "h", L("route", "/a"))
	b := r.Counter("by_route", "h", L("route", "/b"))
	if a == b {
		t.Fatal("distinct label sets share a child")
	}
	// Label order does not matter for identity.
	x := r.Counter("multi", "h", L("k1", "v1"), L("k2", "v2"))
	y := r.Counter("multi", "h", L("k2", "v2"), L("k1", "v1"))
	if x != y {
		t.Fatal("label order changed child identity")
	}
}

func TestGaugeBasics(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("temp", "t")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
	r.GaugeFunc("live", "l", func() float64 { return 42 })
	var b strings.Builder
	r.WritePrometheus(&b)
	if !strings.Contains(b.String(), "live 42\n") {
		t.Fatalf("function-backed gauge missing:\n%s", b.String())
	}
}

func TestTypeMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "h")
	defer func() {
		if recover() == nil {
			t.Fatal("registering gauge over existing counter did not panic")
		}
	}()
	r.Gauge("m", "h")
}

// TestHistogramBoundaries pins the "le" bucket semantics: a value exactly on
// an upper bound lands in that bucket; values above the last bound count only
// toward +Inf.
func TestHistogramBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "l", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 1.0, 9.99, 10.0, 11.0, 1e9} {
		h.Observe(v)
	}
	if got := h.Count(); got != 8 {
		t.Fatalf("count = %d, want 8", got)
	}
	want := []int64{2, 4, 6} // cumulative: le=0.1 → 2, le=1 → 4, le=10 → 6
	got := h.BucketCounts()
	if len(got) != len(want) {
		t.Fatalf("bucket count len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("bucket[%d] = %d, want %d (cumulative)", i, got[i], want[i])
		}
	}
	wantSum := 0.05 + 0.1 + 0.5 + 1.0 + 9.99 + 10.0 + 11.0 + 1e9
	if math.Abs(h.Sum()-wantSum) > 1e-9*wantSum {
		t.Fatalf("sum = %v, want %v", h.Sum(), wantSum)
	}
	// Unsorted bounds are sorted at construction.
	h2 := r.Histogram("lat2", "l", []float64{10, 0.1, 1})
	h2.Observe(0.5)
	if c := h2.BucketCounts(); c[0] != 0 || c[1] != 1 || c[2] != 1 {
		t.Fatalf("unsorted bounds not canonicalized: %v", c)
	}
}

// TestRegistryConcurrent hammers registration, updates and scrapes from many
// goroutines; run under -race this is the registry's thread-safety proof.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			route := string(rune('a' + w%4))
			for i := 0; i < iters; i++ {
				r.Counter("conc_total", "h", L("route", route)).Inc()
				r.Gauge("conc_gauge", "h").Add(1)
				r.Histogram("conc_hist", "h", nil, L("route", route)).Observe(float64(i) / 1000)
				if i%50 == 0 {
					var b strings.Builder
					if err := r.WritePrometheus(&b); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, route := range []string{"a", "b", "c", "d"} {
		total += r.Counter("conc_total", "h", L("route", route)).Value()
	}
	if total != workers*iters {
		t.Fatalf("counter total = %d, want %d", total, workers*iters)
	}
	if g := r.Gauge("conc_gauge", "h").Value(); g != workers*iters {
		t.Fatalf("gauge = %v, want %d", g, workers*iters)
	}
}

// goldenExposition is the expected Prometheus text rendering of a small fixed
// registry — families ordered by name, children by canonical label signature,
// histograms with cumulative le buckets plus _sum/_count.
const goldenExposition = `# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{le="0.1"} 1
app_latency_seconds_bucket{le="1"} 3
app_latency_seconds_bucket{le="+Inf"} 4
app_latency_seconds_sum 7.6
app_latency_seconds_count 4
# HELP app_requests_total Requests by route.
# TYPE app_requests_total counter
app_requests_total{code="200",route="/x"} 3
app_requests_total{code="500",route="/x"} 1
# HELP app_temp_celsius Current temperature.
# TYPE app_temp_celsius gauge
app_temp_celsius 21.5
`

func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	// Register out of name order and with unsorted labels: exposition must
	// still be deterministic.
	r.Gauge("app_temp_celsius", "Current temperature.").Set(21.5)
	r.Counter("app_requests_total", "Requests by route.", L("route", "/x"), L("code", "500")).Inc()
	r.Counter("app_requests_total", "Requests by route.", L("code", "200"), L("route", "/x")).Add(3)
	h := r.Histogram("app_latency_seconds", "Request latency.", []float64{0.1, 1})
	for _, v := range []float64{0.05, 0.5, 1.0, 6.05} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.String() != goldenExposition {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", b.String(), goldenExposition)
	}
	// A second scrape of an unchanged registry is byte-identical.
	var b2 strings.Builder
	r.WritePrometheus(&b2)
	if b.String() != b2.String() {
		t.Fatal("scrape output not deterministic")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "h", L("q", "a\"b\\c\nd")).Inc()
	var b strings.Builder
	r.WritePrometheus(&b)
	want := `esc_total{q="a\"b\\c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Fatalf("escaped label missing %q in:\n%s", want, b.String())
	}
}

func TestNilInstrumentsSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments should read as zero")
	}
}

func TestHistogramQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q", "h", []float64{1, 2, 4, 8})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	// 100 observations uniformly in (0, 1]: every bucket boundary is exact.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if got := h.Quantile(0.5); got != 0.5 {
		t.Fatalf("p50 = %v, want 0.5 (interpolated within [0,1))", got)
	}
	if got := h.Quantile(1); got != 1 {
		t.Fatalf("p100 = %v, want 1", got)
	}
	// Observations beyond the last bound clamp to it.
	for i := 0; i < 1000; i++ {
		h.Observe(100)
	}
	if got := h.Quantile(0.99); got != 8 {
		t.Fatalf("p99 with +Inf mass = %v, want clamp to 8", got)
	}
	// Interpolation lands inside the right bucket.
	h2 := r.Histogram("q2", "h", []float64{10, 20})
	for i := 0; i < 10; i++ {
		h2.Observe(15)
	}
	p50 := h2.Quantile(0.5)
	if p50 <= 10 || p50 > 20 {
		t.Fatalf("p50 = %v, want within (10, 20]", p50)
	}
}

// TestHistogramQuantileEdgeCases complements TestHistogramQuantile with the
// degenerate shapes: nil receiver, a histogram with no finite bounds (all
// mass necessarily in +Inf), a single-bucket histogram, and out-of-range q.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %v, want 0", got)
	}

	r := NewRegistry()

	// No finite bounds (nil falls back to the default latency buckets, so an
	// explicitly empty slice is needed): every observation lands in +Inf and
	// there is no bound to clamp to — the estimate degrades to 0 rather than
	// inventing a value.
	unbounded := r.Histogram("edge_unbounded", "h", []float64{})
	unbounded.Observe(7)
	unbounded.Observe(9)
	if got := unbounded.Quantile(0.5); got != 0 {
		t.Fatalf("boundless histogram quantile = %v, want 0", got)
	}
	if unbounded.Count() != 2 || unbounded.Sum() != 16 {
		t.Fatalf("count/sum = %d/%v", unbounded.Count(), unbounded.Sum())
	}

	// Single bucket: interpolation spans [0, bound].
	single := r.Histogram("edge_single", "h", []float64{10})
	for i := 0; i < 4; i++ {
		single.Observe(5)
	}
	if got := single.Quantile(0.5); got != 5 {
		t.Fatalf("single-bucket p50 = %v, want 5 (midpoint of [0,10])", got)
	}
	if got := single.Quantile(1); got != 10 {
		t.Fatalf("single-bucket p100 = %v, want 10", got)
	}

	// Single bucket with all mass beyond the bound clamps to it.
	over := r.Histogram("edge_over", "h", []float64{10})
	over.Observe(1e9)
	if got := over.Quantile(0.5); got != 10 {
		t.Fatalf("overflow-only p50 = %v, want clamp to 10", got)
	}

	// q outside [0, 1] clamps instead of extrapolating.
	if got := single.Quantile(-3); got != 0 {
		t.Fatalf("q=-3 -> %v, want 0", got)
	}
	if got := single.Quantile(42); got != 10 {
		t.Fatalf("q=42 -> %v, want 10", got)
	}
}
