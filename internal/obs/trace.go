package obs

// Per-query tracing: every execution builds a tree of spans, one per
// physical operator, keyed by a fingerprint of the normalized SQL text.
// Spans accumulate rows/batches/elapsed with atomic counters (worker
// partitions of a parallel plan update the same span concurrently) and the
// memory governor's per-operator peak/spill counters are attached when the
// query finishes. A finished trace is condensed into an immutable
// TraceSnapshot — the single source of truth that EXPLAIN ANALYZE renders
// as text and /debug/queries serves as JSON.

import (
	"math"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Span is one operator's execution record. Counter updates are atomic; the
// identity fields and tree shape are fixed at construction.
type Span struct {
	// Name is the operator name (rel.Node.Op()).
	Name string
	// Attrs are the operator's own attributes (rel.Node.Attrs()).
	Attrs string
	// MemKey is the operator name used by the memory governor's
	// reservations ("Sort", "HashJoin", ...); empty when the operator never
	// reserves memory.
	MemKey string
	// Children are the input operators' spans.
	Children []*Span

	rows      atomic.Int64
	batches   atomic.Int64
	elapsedNs atomic.Int64

	// Plan-feedback identity, stamped once after span construction: the
	// stable operator path id ("0", "0.1", ...) shared with the optimizer's
	// estimate table, and the optimizer's row estimate for this operator
	// (0 = no estimate known).
	path    string
	estRows float64

	// Memory counters, attached once by AttachMemStats after execution.
	peakBytes    int64
	spilledBytes int64
	spillFiles   int
	spillEvents  int
	memAttached  bool
}

// Record accumulates one batch pull: n rows delivered in d.
func (s *Span) Record(n int64, d time.Duration) {
	if s == nil {
		return
	}
	s.batches.Add(1)
	s.rows.Add(n)
	s.elapsedNs.Add(int64(d))
}

// AddRows accumulates n rows without batch/elapsed accounting (the
// row-at-a-time shim path, where per-row clock reads would dominate).
func (s *Span) AddRows(n int64) {
	if s == nil {
		return
	}
	s.rows.Add(n)
}

// AddElapsed accumulates time spent inside the operator without a batch
// (the final Done-returning pull still does work worth attributing).
func (s *Span) AddElapsed(d time.Duration) {
	if s == nil {
		return
	}
	s.elapsedNs.Add(int64(d))
}

// Rows returns the rows delivered so far.
func (s *Span) Rows() int64 { return s.rows.Load() }

// SetEstimate stamps the span with its stable operator path id and the
// optimizer's row estimate (est <= 0 keeps the path but records no
// estimate). Called once, at span-tree construction.
func (s *Span) SetEstimate(path string, est float64) {
	if s == nil {
		return
	}
	s.path = path
	if est > 0 {
		s.estRows = est
	}
}

// EstRows returns the optimizer's row estimate for this operator (0 when
// unknown).
func (s *Span) EstRows() float64 { return s.estRows }

// Path returns the stable operator path id ("" for operators with no
// counterpart in the optimized plan, e.g. exchanges).
func (s *Span) Path() string { return s.path }

// QueryTrace is one query execution being traced. It is built by the
// framework's execute path, handed to the executor (which attaches spans to
// plan nodes), and finished into a TraceSnapshot.
type QueryTrace struct {
	ID          uint64
	SQL         string
	Fingerprint string
	Start       time.Time
	// Stage latencies, filled by the framework's execute path.
	PlanNs     int64
	OptimizeNs int64
	ExecNs     int64
	TotalNs    int64
	Rows       int64
	Error      string
	// Cached marks a plan-cache hit: the statement skipped parse+optimize
	// and executed a previously optimized plan (PlanNs and OptimizeNs are 0).
	Cached bool
	// Parallelism is the worker count the plan was prepared for.
	Parallelism int
	// Query-level memory counters (from the query's allocator).
	PeakBytes    int64
	SpilledBytes int64

	Root *Span
}

// NewSpan creates a span under parent (nil parent makes it the root).
func (t *QueryTrace) NewSpan(parent *Span, name, attrs, memKey string) *Span {
	s := &Span{Name: name, Attrs: attrs, MemKey: memKey}
	if parent == nil {
		t.Root = s
	} else {
		parent.Children = append(parent.Children, s)
	}
	return s
}

// AttachMemStats attaches the memory governor's per-operator counters to
// the first span whose MemKey matches op and has no stats yet. The governor
// aggregates by operator name, so when a plan contains several operators
// with the same reservation name the aggregate lands on the first (document
// order) — the same collapse the governor itself performs. Counters with no
// matching span are attached to a synthetic child of the root so nothing is
// dropped.
func (t *QueryTrace) AttachMemStats(op string, peak, spilled int64, files, events int) {
	if sp := findMemSpan(t.Root, op); sp != nil {
		sp.peakBytes, sp.spilledBytes = peak, spilled
		sp.spillFiles, sp.spillEvents = files, events
		sp.memAttached = true
		return
	}
	if t.Root == nil {
		t.Root = &Span{Name: "Query"}
	}
	orphan := &Span{Name: op, MemKey: op,
		peakBytes: peak, spilledBytes: spilled,
		spillFiles: files, spillEvents: events, memAttached: true}
	t.Root.Children = append(t.Root.Children, orphan)
}

func findMemSpan(s *Span, op string) *Span {
	if s == nil {
		return nil
	}
	if s.MemKey == op && !s.memAttached {
		return s
	}
	for _, c := range s.Children {
		if m := findMemSpan(c, op); m != nil {
			return m
		}
	}
	return nil
}

// SpanStats is the immutable, JSON-ready snapshot of one span.
type SpanStats struct {
	Name         string       `json:"name"`
	Attrs        string       `json:"attrs,omitempty"`
	Path         string       `json:"path,omitempty"`
	Rows         int64        `json:"rows"`
	EstRows      float64      `json:"est_rows,omitempty"`
	Batches      int64        `json:"batches"`
	ElapsedNs    int64        `json:"elapsed_ns"`
	PeakBytes    int64        `json:"peak_bytes,omitempty"`
	SpilledBytes int64        `json:"spilled_bytes,omitempty"`
	SpillFiles   int          `json:"spill_files,omitempty"`
	SpillEvents  int          `json:"spill_events,omitempty"`
	Children     []*SpanStats `json:"children,omitempty"`
}

// QError returns the estimation-error factor of this operator — the q-error
// max(est/actual, actual/est), both sides floored at one row — or 0 when the
// operator has no estimate.
func (s *SpanStats) QError() float64 {
	if s == nil || s.EstRows <= 0 {
		return 0
	}
	return QError(s.EstRows, float64(s.Rows))
}

// QError is the symmetric relative estimation error of est vs actual:
// max(est/actual, actual/est) with both values floored at 1, so a perfect
// estimate scores 1 and over- and under-estimation score alike.
func QError(est, actual float64) float64 {
	e := math.Max(est, 1)
	a := math.Max(actual, 1)
	return math.Max(e/a, a/e)
}

func (s *Span) snapshot() *SpanStats {
	if s == nil {
		return nil
	}
	out := &SpanStats{
		Name:         s.Name,
		Attrs:        s.Attrs,
		Path:         s.path,
		Rows:         s.rows.Load(),
		EstRows:      s.estRows,
		Batches:      s.batches.Load(),
		ElapsedNs:    s.elapsedNs.Load(),
		PeakBytes:    s.peakBytes,
		SpilledBytes: s.spilledBytes,
		SpillFiles:   s.spillFiles,
		SpillEvents:  s.spillEvents,
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, c.snapshot())
	}
	return out
}

// TraceSnapshot is a finished query trace: immutable, safe to share between
// the ring buffer, the slow-query log and HTTP handlers.
type TraceSnapshot struct {
	ID          uint64    `json:"id"`
	SQL         string    `json:"sql"`
	Fingerprint string    `json:"fingerprint"`
	Start       time.Time `json:"start"`
	PlanNs      int64     `json:"plan_ns"`
	OptimizeNs  int64     `json:"optimize_ns"`
	ExecNs      int64     `json:"exec_ns"`
	TotalNs     int64     `json:"total_ns"`
	Rows        int64     `json:"rows"`
	Error       string    `json:"error,omitempty"`
	Cached      bool      `json:"cached,omitempty"`
	Parallelism int       `json:"parallelism,omitempty"`
	PeakBytes   int64     `json:"peak_bytes"`
	Spilled     int64     `json:"spilled_bytes"`
	Slow        bool      `json:"slow,omitempty"`
	// MaxQError is the worst per-operator estimation error of the execution
	// (see SpanStats.QError); 0 when no operator carried an estimate.
	MaxQError float64    `json:"max_qerror,omitempty"`
	Spans     *SpanStats `json:"spans,omitempty"`
}

func maxQError(s *SpanStats) float64 {
	if s == nil {
		return 0
	}
	q := s.QError()
	for _, c := range s.Children {
		if cq := maxQError(c); cq > q {
			q = cq
		}
	}
	return q
}

// Snapshot condenses the live trace into its immutable form.
func (t *QueryTrace) Snapshot() *TraceSnapshot {
	spans := t.Root.snapshot()
	return &TraceSnapshot{
		MaxQError:   maxQError(spans),
		ID:          t.ID,
		SQL:         t.SQL,
		Fingerprint: t.Fingerprint,
		Start:       t.Start,
		PlanNs:      t.PlanNs,
		OptimizeNs:  t.OptimizeNs,
		ExecNs:      t.ExecNs,
		TotalNs:     t.TotalNs,
		Rows:        t.Rows,
		Error:       t.Error,
		Cached:      t.Cached,
		Parallelism: t.Parallelism,
		PeakBytes:   t.PeakBytes,
		Spilled:     t.SpilledBytes,
		Spans:       spans,
	}
}

// DriftQError is the per-operator q-error at which RenderSpans flags the
// operator's estimate as drifted (the "[q=N.N!]" marker) — the estimate is
// off by at least this factor in either direction.
const DriftQError = 2.0

// RenderSpans renders the span tree as indented text — the EXPLAIN ANALYZE
// operator-stats section. One line per operator:
//
//	EnumerableSort: rows=42, est=100 [q=2.4!], batches=1, elapsed=1.2ms, peak=128.0KiB, spilled=800.0KiB, spill-files=3, spill-events=2
//
// The optimizer's row estimate renders next to the actual count on operators
// that carry one, with the drift marker when the q-error reaches DriftQError.
// Memory fields appear only on operators the governor tracked; spill fields
// only when the operator spilled.
func RenderSpans(root *SpanStats) string {
	var b strings.Builder
	renderSpan(&b, root, 0)
	return b.String()
}

func renderSpan(b *strings.Builder, s *SpanStats, depth int) {
	if s == nil {
		return
	}
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(s.Name)
	b.WriteString(": rows=")
	b.WriteString(strconv.FormatInt(s.Rows, 10))
	if s.EstRows > 0 {
		b.WriteString(", est=")
		b.WriteString(strconv.FormatFloat(s.EstRows, 'g', 4, 64))
		if q := s.QError(); q >= DriftQError {
			b.WriteString(" [q=")
			b.WriteString(strconv.FormatFloat(q, 'f', 1, 64))
			b.WriteString("!]")
		}
	}
	b.WriteString(", batches=")
	b.WriteString(strconv.FormatInt(s.Batches, 10))
	b.WriteString(", elapsed=")
	b.WriteString(time.Duration(s.ElapsedNs).Round(time.Microsecond).String())
	if s.PeakBytes > 0 || s.SpillEvents > 0 {
		b.WriteString(", peak=")
		b.WriteString(formatBytes(s.PeakBytes))
	}
	if s.SpilledBytes > 0 || s.SpillEvents > 0 {
		b.WriteString(", spilled=")
		b.WriteString(formatBytes(s.SpilledBytes))
		b.WriteString(", spill-files=")
		b.WriteString(strconv.Itoa(s.SpillFiles))
		b.WriteString(", spill-events=")
		b.WriteString(strconv.Itoa(s.SpillEvents))
	}
	b.WriteByte('\n')
	for _, c := range s.Children {
		renderSpan(b, c, depth+1)
	}
}

// formatBytes renders a byte count with a binary-unit suffix (kept local so
// obs stays dependency-free; mirrors memory.FormatBytes).
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return strconv.FormatFloat(float64(n)/(1<<30), 'f', 1, 64) + "GiB"
	case n >= 1<<20:
		return strconv.FormatFloat(float64(n)/(1<<20), 'f', 1, 64) + "MiB"
	case n >= 1<<10:
		return strconv.FormatFloat(float64(n)/(1<<10), 'f', 1, 64) + "KiB"
	}
	return strconv.FormatInt(n, 10) + "B"
}

// NormalizeSQL canonicalizes a SQL text for fingerprinting: literals become
// '?', whitespace collapses to single spaces, and everything outside string
// literals is lowercased. Two invocations of the same statement shape (same
// plan, different constants) normalize identically.
func NormalizeSQL(sql string) string {
	var b strings.Builder
	b.Grow(len(sql))
	i := 0
	lastSpace := true
	last := byte(0)
	for i < len(sql) {
		c := sql[i]
		switch {
		case c == '\'':
			// String literal (with '' escapes) → ?
			j := i + 1
			for j < len(sql) {
				if sql[j] == '\'' {
					if j+1 < len(sql) && sql[j+1] == '\'' {
						j += 2
						continue
					}
					break
				}
				j++
			}
			b.WriteByte('?')
			last, lastSpace = '?', false
			if j < len(sql) {
				j++
			}
			i = j
		case c >= '0' && c <= '9':
			// Numeric literal → ?, unless part of an identifier.
			if isIdentChar(last) {
				b.WriteByte(c)
				last, lastSpace = c, false
				i++
				continue
			}
			j := i
			for j < len(sql) && (sql[j] >= '0' && sql[j] <= '9' || sql[j] == '.' ||
				sql[j] == 'e' || sql[j] == 'E' ||
				((sql[j] == '+' || sql[j] == '-') && j > i && (sql[j-1] == 'e' || sql[j-1] == 'E'))) {
				j++
			}
			b.WriteByte('?')
			last, lastSpace = '?', false
			i = j
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			if !lastSpace {
				b.WriteByte(' ')
				last, lastSpace = ' ', true
			}
			i++
		default:
			lc := c
			if c >= 'A' && c <= 'Z' {
				lc = c + ('a' - 'A')
			}
			b.WriteByte(lc)
			last, lastSpace = lc, false
			i++
		}
	}
	return strings.TrimRight(b.String(), " ")
}

func isIdentChar(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '$'
}

// Fingerprint returns the FNV-64a hash of the normalized SQL as hex — the
// plan-fingerprint key of the trace layer.
func Fingerprint(sql string) string {
	h := uint64(14695981039346656037)
	norm := NormalizeSQL(sql)
	for i := 0; i < len(norm); i++ {
		h ^= uint64(norm[i])
		h *= 1099511628211
	}
	return strconv.FormatUint(h, 16)
}
