package obs

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Default retention for the trace rings.
const (
	DefaultRecentTraces = 128
	DefaultSlowTraces   = 64
)

// Engine ties the observability pieces together for one framework instance:
// the metrics registry, the ring buffers of recent and slow traces, the
// structured slow-query log, and the engine-level instruments the query
// lifecycle updates.
type Engine struct {
	Registry *Registry
	// Recent retains the most recent finished traces; Slow retains only
	// those over the slow-query threshold.
	Recent *TraceRing
	Slow   *TraceRing

	slowNs atomic.Int64 // slow-query threshold; 0 = disabled

	logMu   sync.Mutex
	slowLog io.Writer

	nextID atomic.Uint64

	queriesStarted *Counter
	queriesOK      *Counter
	queriesErr     *Counter
	rowsReturned   *Counter
	slowQueries    *Counter
	stagePlan      *Histogram
	stageOptimize  *Histogram
	stageExec      *Histogram
	queryTotal     *Histogram
}

// NewEngine builds an Engine with a fresh registry and the engine-level
// query metrics pre-registered.
func NewEngine() *Engine {
	r := NewRegistry()
	e := &Engine{
		Registry: r,
		Recent:   NewTraceRing(DefaultRecentTraces),
		Slow:     NewTraceRing(DefaultSlowTraces),
	}
	e.queriesStarted = r.Counter("calcite_queries_started_total",
		"Statements accepted for execution.")
	e.queriesOK = r.Counter("calcite_queries_finished_total",
		"Statements finished, by status.", L("status", "ok"))
	e.queriesErr = r.Counter("calcite_queries_finished_total",
		"Statements finished, by status.", L("status", "error"))
	e.rowsReturned = r.Counter("calcite_rows_returned_total",
		"Rows delivered to clients.")
	e.slowQueries = r.Counter("calcite_slow_queries_total",
		"Queries exceeding the slow-query threshold.")
	e.stagePlan = r.Histogram("calcite_query_stage_seconds",
		"Per-stage query latency.", nil, L("stage", "plan"))
	e.stageOptimize = r.Histogram("calcite_query_stage_seconds",
		"Per-stage query latency.", nil, L("stage", "optimize"))
	e.stageExec = r.Histogram("calcite_query_stage_seconds",
		"Per-stage query latency.", nil, L("stage", "exec"))
	e.queryTotal = r.Histogram("calcite_query_seconds",
		"End-to-end statement latency.", nil)
	return e
}

// SetSlowQuery configures the slow-query threshold and, optionally, a writer
// that receives one JSON line per slow query. threshold <= 0 disables slow
// tracking; w may be nil to keep only the in-memory slow ring.
func (e *Engine) SetSlowQuery(threshold time.Duration, w io.Writer) {
	if e == nil {
		return
	}
	e.slowNs.Store(int64(threshold))
	e.logMu.Lock()
	e.slowLog = w
	e.logMu.Unlock()
}

// SlowThreshold returns the configured slow-query threshold (0 = disabled).
func (e *Engine) SlowThreshold() time.Duration {
	if e == nil {
		return 0
	}
	return time.Duration(e.slowNs.Load())
}

// Begin starts tracing one statement: assigns an ID, fingerprints the SQL
// and bumps the started counter. Safe on a nil engine (returns nil, and the
// rest of the trace API tolerates a nil trace).
func (e *Engine) Begin(sql string) *QueryTrace {
	if e == nil {
		return nil
	}
	e.queriesStarted.Inc()
	return &QueryTrace{
		ID:          e.nextID.Add(1),
		SQL:         sql,
		Fingerprint: Fingerprint(sql),
		Start:       time.Now(),
	}
}

// End finishes a trace: records stage latencies and outcome counters,
// snapshots the span tree, retains the snapshot in the recent ring (and the
// slow ring + JSON log when over threshold), and returns the snapshot.
func (e *Engine) End(t *QueryTrace) *TraceSnapshot {
	if e == nil || t == nil {
		return nil
	}
	if t.TotalNs == 0 {
		t.TotalNs = int64(time.Since(t.Start))
	}
	e.stagePlan.Observe(float64(t.PlanNs) / 1e9)
	e.stageOptimize.Observe(float64(t.OptimizeNs) / 1e9)
	e.stageExec.Observe(float64(t.ExecNs) / 1e9)
	e.queryTotal.Observe(float64(t.TotalNs) / 1e9)
	if t.Error != "" {
		e.queriesErr.Inc()
	} else {
		e.queriesOK.Inc()
	}
	e.rowsReturned.Add(t.Rows)

	snap := t.Snapshot()
	if thresh := e.slowNs.Load(); thresh > 0 && t.TotalNs >= thresh {
		snap.Slow = true
		e.slowQueries.Inc()
		e.Slow.Add(snap)
		e.logSlow(snap)
	}
	e.Recent.Add(snap)
	return snap
}

// logSlow writes one JSON line for a slow query. Errors are swallowed: the
// log is best-effort telemetry and must never fail a query.
func (e *Engine) logSlow(snap *TraceSnapshot) {
	e.logMu.Lock()
	defer e.logMu.Unlock()
	if e.slowLog == nil {
		return
	}
	line, err := json.Marshal(slowLogEntry{
		Time:        snap.Start.Format(time.RFC3339Nano),
		ID:          snap.ID,
		Fingerprint: snap.Fingerprint,
		SQL:         snap.SQL,
		TotalMs:     float64(snap.TotalNs) / 1e6,
		ExecMs:      float64(snap.ExecNs) / 1e6,
		Rows:        snap.Rows,
		PeakBytes:   snap.PeakBytes,
		Spilled:     snap.Spilled,
		MaxQError:   snap.MaxQError,
		Error:       snap.Error,
	})
	if err != nil {
		return
	}
	e.slowLog.Write(append(line, '\n'))
}

// slowLogEntry is the JSON shape of one slow-query log line.
type slowLogEntry struct {
	Time        string  `json:"time"`
	ID          uint64  `json:"id"`
	Fingerprint string  `json:"fingerprint"`
	SQL         string  `json:"sql"`
	TotalMs     float64 `json:"total_ms"`
	ExecMs      float64 `json:"exec_ms"`
	Rows        int64   `json:"rows"`
	PeakBytes   int64   `json:"peak_bytes"`
	Spilled     int64   `json:"spilled_bytes"`
	MaxQError   float64 `json:"max_qerror,omitempty"`
	Error       string  `json:"error,omitempty"`
}
