package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNormalizeSQL(t *testing.T) {
	cases := []struct{ in, want string }{
		{"SELECT * FROM t WHERE x = 5", "select * from t where x = ?"},
		{"SELECT  *\n FROM\tt", "select * from t"},
		{"SELECT 'a''b', 42, 3.14, 1e-9 FROM t", "select ?, ?, ?, ? from t"},
		// Digits inside identifiers survive; standalone literals do not.
		{"SELECT col2 FROM t2 WHERE col2 > 10", "select col2 from t2 where col2 > ?"},
		{"select X from T", "select x from t"},
		{"SELECT 'KEEP CASE' FROM t  ", "select ? from t"},
	}
	for _, c := range cases {
		if got := NormalizeSQL(c.in); got != c.want {
			t.Errorf("NormalizeSQL(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestFingerprint(t *testing.T) {
	// Same statement shape with different constants → same fingerprint.
	a := Fingerprint("SELECT name FROM emps WHERE sal > 100")
	b := Fingerprint("select name from  emps where sal > 99999")
	if a != b {
		t.Fatalf("fingerprints differ for same shape: %s vs %s", a, b)
	}
	if c := Fingerprint("SELECT name FROM depts WHERE sal > 100"); c == a {
		t.Fatal("different tables produced the same fingerprint")
	}
}

func TestSpanTreeAndSnapshot(t *testing.T) {
	tr := &QueryTrace{SQL: "SELECT 1"}
	root := tr.NewSpan(nil, "EnumerableSort", "sort=[$0]", "Sort")
	child := tr.NewSpan(root, "EnumerableTableScan", "table=[t]", "")
	root.Record(10, 2*time.Millisecond)
	root.Record(5, time.Millisecond)
	root.AddElapsed(time.Millisecond)
	child.AddRows(15)
	tr.AttachMemStats("Sort", 1<<20, 3<<20, 3, 2)

	snap := tr.Snapshot()
	s := snap.Spans
	if s == nil || s.Name != "EnumerableSort" || len(s.Children) != 1 {
		t.Fatalf("snapshot tree wrong: %+v", s)
	}
	if s.Rows != 15 || s.Batches != 2 || s.ElapsedNs != int64(4*time.Millisecond) {
		t.Fatalf("root stats = rows %d batches %d elapsed %d", s.Rows, s.Batches, s.ElapsedNs)
	}
	if s.PeakBytes != 1<<20 || s.SpilledBytes != 3<<20 || s.SpillFiles != 3 || s.SpillEvents != 2 {
		t.Fatalf("mem stats not attached: %+v", s)
	}
	if c := s.Children[0]; c.Rows != 15 || c.Batches != 0 {
		t.Fatalf("child stats = %+v", c)
	}
}

func TestAttachMemStatsOrphanAndOrder(t *testing.T) {
	tr := &QueryTrace{}
	root := tr.NewSpan(nil, "EnumerableHashJoin", "", "HashJoin")
	tr.NewSpan(root, "EnumerableHashJoin", "", "HashJoin")
	// Two same-named attachments land on distinct spans in document order.
	tr.AttachMemStats("HashJoin", 100, 0, 0, 0)
	tr.AttachMemStats("HashJoin", 200, 0, 0, 0)
	if root.peakBytes != 100 || root.Children[0].peakBytes != 200 {
		t.Fatalf("duplicate-key attach order wrong: %d, %d", root.peakBytes, root.Children[0].peakBytes)
	}
	// No matching span → synthetic orphan under the root, nothing dropped.
	tr.AttachMemStats("Window", 300, 50, 1, 1)
	last := root.Children[len(root.Children)-1]
	if last.Name != "Window" || last.peakBytes != 300 || last.spilledBytes != 50 {
		t.Fatalf("orphan not attached under root: %+v", last)
	}
}

func TestSpanConcurrentRecord(t *testing.T) {
	// Worker partitions of a parallel operator share one span.
	tr := &QueryTrace{}
	sp := tr.NewSpan(nil, "EnumerableAggregate", "", "Aggregate")
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				sp.Record(3, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if sp.Rows() != 12000 {
		t.Fatalf("rows = %d, want 12000", sp.Rows())
	}
	if got := sp.batches.Load(); got != 4000 {
		t.Fatalf("batches = %d, want 4000", got)
	}
}

func TestRenderSpans(t *testing.T) {
	s := &SpanStats{
		Name: "EnumerableSort", Rows: 42, Batches: 1, ElapsedNs: int64(1200 * time.Microsecond),
		PeakBytes: 128 << 10, SpilledBytes: 800 << 10, SpillFiles: 3, SpillEvents: 2,
		Children: []*SpanStats{{Name: "EnumerableTableScan", Rows: 42, Batches: 1}},
	}
	got := RenderSpans(s)
	want := "EnumerableSort: rows=42, batches=1, elapsed=1.2ms, peak=128.0KiB, spilled=800.0KiB, spill-files=3, spill-events=2\n" +
		"  EnumerableTableScan: rows=42, batches=1, elapsed=0s\n"
	if got != want {
		t.Fatalf("render mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestTraceRingEviction pins ring-buffer order: adding past capacity evicts
// the oldest and Snapshot returns newest first.
func TestTraceRingEviction(t *testing.T) {
	r := NewTraceRing(3)
	for i := 1; i <= 5; i++ {
		r.Add(&TraceSnapshot{ID: uint64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	got := r.Snapshot()
	want := []uint64{5, 4, 3}
	for i, tr := range got {
		if tr.ID != want[i] {
			t.Fatalf("snapshot order = %v, want newest-first %v", ids(got), want)
		}
	}
	// Nil ring and nil adds are safe.
	var nilRing *TraceRing
	nilRing.Add(&TraceSnapshot{})
	if nilRing.Len() != 0 || nilRing.Snapshot() != nil {
		t.Fatal("nil ring should be inert")
	}
	r.Add(nil)
	if r.Len() != 3 {
		t.Fatal("nil trace should not be retained")
	}
}

func ids(ts []*TraceSnapshot) []uint64 {
	out := make([]uint64, len(ts))
	for i, t := range ts {
		out[i] = t.ID
	}
	return out
}

func TestEngineLifecycleAndSlowLog(t *testing.T) {
	e := NewEngine()
	var logBuf bytes.Buffer
	e.SetSlowQuery(time.Nanosecond, &logBuf) // everything is slow

	tr := e.Begin("SELECT sal FROM emps WHERE sal > 100")
	if tr == nil || tr.ID == 0 || tr.Fingerprint == "" {
		t.Fatalf("Begin trace incomplete: %+v", tr)
	}
	tr.PlanNs, tr.OptimizeNs, tr.ExecNs = 1e6, 2e6, 3e6
	tr.Rows = 7
	tr.PeakBytes, tr.SpilledBytes = 4096, 1024
	snap := e.End(tr)
	if snap == nil || !snap.Slow {
		t.Fatalf("snapshot not marked slow: %+v", snap)
	}
	if e.Recent.Len() != 1 || e.Slow.Len() != 1 {
		t.Fatalf("rings: recent %d slow %d, want 1/1", e.Recent.Len(), e.Slow.Len())
	}

	// The slow log line is one valid JSON object with the trace fields.
	var entry map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(logBuf.Bytes()), &entry); err != nil {
		t.Fatalf("slow log not JSON: %v (%q)", err, logBuf.String())
	}
	if entry["fingerprint"] != snap.Fingerprint || entry["rows"] != float64(7) ||
		entry["peak_bytes"] != float64(4096) || entry["spilled_bytes"] != float64(1024) {
		t.Fatalf("slow log fields wrong: %v", entry)
	}

	// Counters reflect the finished query.
	if got := e.Registry.Counter("calcite_queries_started_total", "").Value(); got != 1 {
		t.Fatalf("started = %d", got)
	}
	if got := e.Registry.Counter("calcite_queries_finished_total", "", L("status", "ok")).Value(); got != 1 {
		t.Fatalf("finished ok = %d", got)
	}
	if got := e.Registry.Counter("calcite_rows_returned_total", "").Value(); got != 7 {
		t.Fatalf("rows returned = %d", got)
	}
	if got := e.Registry.Counter("calcite_slow_queries_total", "").Value(); got != 1 {
		t.Fatalf("slow queries = %d", got)
	}

	// Raising the threshold stops slow tracking; errors count as errors.
	e.SetSlowQuery(time.Hour, nil)
	tr2 := e.Begin("SELECT broken")
	tr2.Error = "boom"
	e.End(tr2)
	if e.Slow.Len() != 1 {
		t.Fatalf("fast query landed in slow ring")
	}
	if got := e.Registry.Counter("calcite_queries_finished_total", "", L("status", "error")).Value(); got != 1 {
		t.Fatalf("finished error = %d", got)
	}

	// Nil engine is inert end to end.
	var nilEng *Engine
	if nilEng.Begin("x") != nil || nilEng.End(nil) != nil {
		t.Fatal("nil engine should return nil trace/snapshot")
	}
}

func TestEngineIDsMonotonic(t *testing.T) {
	e := NewEngine()
	var mu sync.Mutex
	seen := map[uint64]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr := e.Begin(fmt.Sprintf("SELECT %d", i))
				mu.Lock()
				if seen[tr.ID] {
					t.Errorf("duplicate trace ID %d", tr.ID)
				}
				seen[tr.ID] = true
				mu.Unlock()
				e.End(tr)
			}
		}()
	}
	wg.Wait()
	if len(seen) != 400 {
		t.Fatalf("IDs assigned = %d, want 400", len(seen))
	}
}

func TestSnapshotJSONShape(t *testing.T) {
	snap := (&QueryTrace{
		ID: 9, SQL: "SELECT 1", Fingerprint: "abc",
		PlanNs: 1, OptimizeNs: 2, ExecNs: 3, TotalNs: 6, Rows: 1,
	}).Snapshot()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"id":9`, `"fingerprint":"abc"`, `"plan_ns":1`, `"exec_ns":3`, `"rows":1`} {
		if !strings.Contains(string(raw), key) {
			t.Fatalf("snapshot JSON missing %s: %s", key, raw)
		}
	}
	// Omitted optional fields stay out of the wire shape.
	for _, key := range []string{`"error"`, `"spans"`, `"slow"`} {
		if strings.Contains(string(raw), key) {
			t.Fatalf("snapshot JSON should omit empty %s: %s", key, raw)
		}
	}
}

func TestQError(t *testing.T) {
	cases := []struct{ est, actual, want float64 }{
		{100, 100, 1},
		{100, 200, 2},
		{200, 100, 2},
		{1, 50, 50},
		{0, 50, 50},   // est floors at 1
		{100, 0, 100}, // actual floors at 1
	}
	for _, c := range cases {
		if got := QError(c.est, c.actual); got != c.want {
			t.Errorf("QError(%v, %v) = %v, want %v", c.est, c.actual, got, c.want)
		}
	}
	var nilSpan *SpanStats
	if nilSpan.QError() != 0 {
		t.Fatal("nil span q-error should be 0")
	}
	if (&SpanStats{Rows: 10}).QError() != 0 {
		t.Fatal("span without estimate should report q-error 0")
	}
	if got := (&SpanStats{Rows: 10, EstRows: 40}).QError(); got != 4 {
		t.Fatalf("span q-error = %v, want 4", got)
	}
}

// TestSnapshotMaxQError: the trace-level worst q-error is the max over the
// whole span tree, and estimates stamped on live spans survive into the
// snapshot with their paths.
func TestSnapshotMaxQError(t *testing.T) {
	tr := &QueryTrace{SQL: "SELECT 1"}
	root := tr.NewSpan(nil, "EnumerableHashJoin", "", "")
	left := tr.NewSpan(root, "EnumerableTableScan", "", "")
	right := tr.NewSpan(root, "EnumerableTableScan", "", "")
	root.SetEstimate("0", 100)
	left.SetEstimate("0.0", 10)
	right.SetEstimate("0.1", 1000)
	root.AddRows(100)  // q = 1
	left.AddRows(80)   // q = 8 (worst)
	right.AddRows(500) // q = 2

	snap := tr.Snapshot()
	if snap.MaxQError != 8 {
		t.Fatalf("MaxQError = %v, want 8", snap.MaxQError)
	}
	if s := snap.Spans.Children[0]; s.Path != "0.0" || s.EstRows != 10 {
		t.Fatalf("child span path/est = %q/%v", s.Path, s.EstRows)
	}
	// max_qerror rides the JSON wire shape.
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"max_qerror":8`) {
		t.Fatalf("snapshot JSON missing max_qerror: %s", raw)
	}
}

// TestRenderSpansEstimates: operators carrying an estimate render est= next
// to rows=, with the drift marker once the q-error reaches DriftQError.
func TestRenderSpansEstimates(t *testing.T) {
	s := &SpanStats{
		Name: "EnumerableHashJoin", Rows: 500, EstRows: 100, Batches: 1,
		Children: []*SpanStats{
			{Name: "EnumerableTableScan", Rows: 95, EstRows: 100, Batches: 1},
			{Name: "EnumerableTableScan", Rows: 42, Batches: 1}, // no estimate
		},
	}
	got := RenderSpans(s)
	want := "EnumerableHashJoin: rows=500, est=100 [q=5.0!], batches=1, elapsed=0s\n" +
		"  EnumerableTableScan: rows=95, est=100, batches=1, elapsed=0s\n" +
		"  EnumerableTableScan: rows=42, batches=1, elapsed=0s\n"
	if got != want {
		t.Fatalf("render mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestSlowLogMaxQError: slow-query log lines carry the execution's worst
// per-operator estimation error.
func TestSlowLogMaxQError(t *testing.T) {
	e := NewEngine()
	var logBuf bytes.Buffer
	e.SetSlowQuery(time.Nanosecond, &logBuf)

	tr := e.Begin("SELECT * FROM t")
	sp := tr.NewSpan(nil, "EnumerableTableScan", "", "")
	sp.SetEstimate("0", 10)
	sp.AddRows(250) // q = 25
	e.End(tr)

	var entry map[string]any
	if err := json.Unmarshal(bytes.TrimSpace(logBuf.Bytes()), &entry); err != nil {
		t.Fatalf("slow log not JSON: %v (%q)", err, logBuf.String())
	}
	if entry["max_qerror"] != float64(25) {
		t.Fatalf("slow log max_qerror = %v, want 25", entry["max_qerror"])
	}
}
