package obs

import "sync"

// TraceRing is a bounded ring buffer of finished query traces. Adding past
// capacity evicts the oldest entry. Safe for concurrent use.
type TraceRing struct {
	mu   sync.Mutex
	buf  []*TraceSnapshot
	next int // index the next Add writes to
	n    int // live entries (<= len(buf))
}

// NewTraceRing returns a ring holding at most capacity traces (minimum 1).
func NewTraceRing(capacity int) *TraceRing {
	if capacity < 1 {
		capacity = 1
	}
	return &TraceRing{buf: make([]*TraceSnapshot, capacity)}
}

// Add appends a trace, evicting the oldest when full.
func (r *TraceRing) Add(t *TraceSnapshot) {
	if r == nil || t == nil {
		return
	}
	r.mu.Lock()
	r.buf[r.next] = t
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// Len returns the number of retained traces.
func (r *TraceRing) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Snapshot returns the retained traces, newest first.
func (r *TraceRing) Snapshot() []*TraceSnapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*TraceSnapshot, 0, r.n)
	for i := 1; i <= r.n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
