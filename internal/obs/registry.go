// Package obs is the framework's zero-dependency observability substrate:
// a concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms with label support and Prometheus text-format exposition) and
// a per-query trace layer (span trees keyed by normalized-SQL fingerprints,
// a bounded ring of recent traces, and a structured JSON slow-query log).
//
// The package imports only the standard library and knows nothing about
// relational plans or operators: the execution engine attaches spans to
// plan nodes and the serving layer exposes the registry over HTTP, but obs
// itself is just instruments and buffers. Every instrument is safe for
// concurrent use; hot-path updates are single atomic operations.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension (a Prometheus label pair).
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metric is anything a family can expose.
type metric interface {
	// sampleValue returns the scrape-time value (counters, gauges).
	sampleValue() float64
}

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
	// fn, when set, makes this a function-backed counter sampled at scrape
	// time instead of an accumulating one (used to expose counters that an
	// instrumented subsystem already maintains as plain atomics).
	fn func() int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	if c.fn != nil {
		return c.fn()
	}
	return c.v.Load()
}

func (c *Counter) sampleValue() float64 { return float64(c.Value()) }

// Gauge is a metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
	fn   func() float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adjusts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) sampleValue() float64 { return g.Value() }

// DefaultLatencyBuckets are the fixed histogram buckets for latency metrics,
// in seconds (100µs .. 10s, roughly logarithmic).
var DefaultLatencyBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket cumulative histogram. Observations land in the
// first bucket whose upper bound is >= the value (Prometheus "le" semantics);
// values above the last bound count only toward +Inf.
type Histogram struct {
	bounds  []float64 // sorted upper bounds, exclusive of +Inf
	counts  []atomic.Int64
	inf     atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the observation sum
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v.
	i := sort.SearchFloat64s(h.bounds, v)
	if i < len(h.bounds) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n + h.inf.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// BucketCounts returns the cumulative count per bound (le semantics),
// excluding +Inf (which equals Count()).
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.bounds))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear interpolation
// within the bucket holding the target rank — the standard Prometheus
// histogram_quantile estimate. Observations beyond the last finite bound
// clamp to that bound. Returns 0 with no observations.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.Count()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := range h.counts {
		c := h.counts[i].Load()
		prev := cum
		cum += c
		if float64(cum) >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			if c == 0 {
				return hi
			}
			return lo + (hi-lo)*(rank-float64(prev))/float64(c)
		}
	}
	// Target rank lands in the +Inf bucket: clamp to the last finite bound.
	if len(h.bounds) > 0 {
		return h.bounds[len(h.bounds)-1]
	}
	return 0
}

func (h *Histogram) sampleValue() float64 { return float64(h.Count()) }

// family is one metric name with its help text, type and children (one per
// label combination).
type family struct {
	name, help, typ string
	mu              sync.Mutex
	children        map[string]metric // keyed by canonical label signature
	labels          map[string][]Label
}

// Registry is a concurrency-safe collection of metric families with
// Prometheus text-format exposition. Registration is idempotent: asking for
// an existing (name, labels) pair returns the existing instrument, so
// instrumented code can re-register cheaply instead of threading instrument
// handles everywhere.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
	order    []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

func (r *Registry) family(name, help, typ string) *family {
	r.mu.RLock()
	f := r.families[name]
	r.mu.RUnlock()
	if f != nil {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f = r.families[name]; f != nil {
		return f
	}
	f = &family{name: name, help: help, typ: typ,
		children: map[string]metric{}, labels: map[string][]Label{}}
	r.families[name] = f
	r.order = append(r.order, name)
	sort.Strings(r.order)
	return f
}

// labelSig canonicalizes a label set (sorted by key) for child lookup.
func labelSig(labels []Label) (string, []Label) {
	if len(labels) == 0 {
		return "", nil
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(strconv.Quote(l.Value))
	}
	return b.String(), ls
}

// child returns the metric for the label set, creating it with mk on first
// use.
func (f *family) child(labels []Label, mk func() metric) metric {
	sig, ls := labelSig(labels)
	f.mu.Lock()
	defer f.mu.Unlock()
	m, ok := f.children[sig]
	if !ok {
		m = mk()
		f.children[sig] = m
		f.labels[sig] = ls
	}
	return m
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	m := r.family(name, help, "counter").child(labels, func() metric { return &Counter{} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as a different type", name))
	}
	return c
}

// CounterFunc registers a function-backed counter: the subsystem keeps its
// own atomic count and the registry samples it at scrape time.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	r.family(name, help, "counter").child(labels, func() metric { return &Counter{fn: fn} })
}

// Gauge registers (or fetches) a gauge.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	m := r.family(name, help, "gauge").child(labels, func() metric { return &Gauge{} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as a different type", name))
	}
	return g
}

// GaugeFunc registers a function-backed gauge sampled at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	r.family(name, help, "gauge").child(labels, func() metric { return &Gauge{fn: fn} })
}

// Histogram registers (or fetches) a fixed-bucket histogram. bounds are the
// upper bucket bounds; nil uses DefaultLatencyBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	m := r.family(name, help, "histogram").child(labels, func() metric { return newHistogram(bounds) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: metric %q already registered as a different type", name))
	}
	return h
}

// formatValue renders a sample the way Prometheus clients do: integers
// without exponent, floats with full precision.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return strings.ReplaceAll(s, `"`, `\"`)
}

func renderLabels(ls []Label, extra ...Label) string {
	all := append(append([]Label(nil), ls...), extra...)
	if len(all) == 0 {
		return ""
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Key < all[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabel(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders every family in the Prometheus text exposition
// format (version 0.0.4). Families are ordered by name and children by label
// signature, so the output is deterministic — golden-file friendly.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := append([]string(nil), r.order...)
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.RUnlock()
	for _, f := range fams {
		f.mu.Lock()
		sigs := make([]string, 0, len(f.children))
		for sig := range f.children {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		children := make([]metric, len(sigs))
		labelSets := make([][]Label, len(sigs))
		for i, sig := range sigs {
			children[i] = f.children[sig]
			labelSets[i] = f.labels[sig]
		}
		f.mu.Unlock()
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ); err != nil {
			return err
		}
		for i, m := range children {
			ls := labelSets[i]
			switch x := m.(type) {
			case *Histogram:
				cum := x.BucketCounts()
				for bi, bound := range x.bounds {
					le := strconv.FormatFloat(bound, 'g', -1, 64)
					fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(ls, L("le", le)), cum[bi])
				}
				fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, renderLabels(ls, L("le", "+Inf")), x.Count())
				fmt.Fprintf(w, "%s_sum%s %s\n", f.name, renderLabels(ls), formatValue(x.Sum()))
				fmt.Fprintf(w, "%s_count%s %d\n", f.name, renderLabels(ls), x.Count())
			default:
				if _, err := fmt.Fprintf(w, "%s%s %s\n", f.name, renderLabels(ls), formatValue(m.sampleValue())); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
