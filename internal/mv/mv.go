// Package mv implements the two materialized-view rewriting algorithms of
// §6 of the paper:
//
//   - view substitution: a registered (definition plan, storage table) pair
//     lets the planner substitute part of the algebra tree with a scan of
//     the materialization, including partial rewritings that add residual
//     filters or rollup aggregates on top;
//
//   - lattices: data sources declared to form a star schema expose their
//     materializations as tiles; an aggregate query over the lattice is
//     answered from the smallest tile whose dimensions cover the query.
package mv

import (
	"sync"

	"calcite/internal/plan"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/trait"
)

// MaterializedView pairs a view's definition plan with the table that holds
// its materialized rows.
type MaterializedView struct {
	Name  string
	Plan  rel.Node
	Table schema.Table
}

// Registry holds materialized views and lattices known to the planner.
type Registry struct {
	mu       sync.RWMutex
	views    []*MaterializedView
	lattices []*Lattice
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a materialized view.
func (r *Registry) Register(v *MaterializedView) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.views = append(r.views, v)
}

// RegisterLattice adds a lattice.
func (r *Registry) RegisterLattice(l *Lattice) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lattices = append(r.lattices, l)
}

// Views returns the registered views.
func (r *Registry) Views() []*MaterializedView {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*MaterializedView(nil), r.views...)
}

// Lattices returns the registered lattices.
func (r *Registry) Lattices() []*Lattice {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]*Lattice(nil), r.lattices...)
}

// SubstitutionRules returns the planner rules for all registered views and
// lattices. Per §6, "the scan operator over the materialized view and the
// materialized view definition plan are registered with the planner, and
// transformation rules that try to unify expressions in the plan are
// triggered".
func (r *Registry) SubstitutionRules() []plan.Rule {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []plan.Rule
	if len(r.views) > 0 {
		out = append(out, r.substitutionRule())
	}
	for _, l := range r.lattices {
		out = append(out, l.Rule())
	}
	return out
}

// substitutionRule matches any logical node and attempts view unification.
func (r *Registry) substitutionRule() plan.Rule {
	return &plan.FuncRule{
		Name: "MaterializedViewSubstitutionRule",
		Op: plan.MatchNode(func(n rel.Node) bool {
			return trait.SameConvention(n.Traits().Convention, trait.Logical)
		}),
		Fire: func(call *plan.Call) {
			node := call.Rel(0)
			for _, v := range r.Views() {
				if sub := r.unify(node, v); sub != nil {
					call.Transform(sub)
				}
			}
		},
	}
}

// unify attempts to rewrite node to use view v. Supported unifications:
//
//  1. exact match: digest(node) == digest(view plan) → scan(view table);
//  2. residual filter: node = Filter(cond, X) where X matches the view →
//     Filter(cond, scan) — the "partial rewritings that include additional
//     operators, e.g. filters with residual predicate conditions" of §6;
//  3. aggregate rollup: node = Aggregate(keys ⊆ view keys, rollupable
//     calls) over the same input as an aggregate view → rollup over scan.
func (r *Registry) unify(node rel.Node, v *MaterializedView) rel.Node {
	viewDigest := rel.Digest(v.Plan)
	scan := rel.NewTableScan(trait.Logical, v.Table, []string{v.Name})

	// (1) exact
	if rel.Digest(node) == viewDigest {
		return scan
	}

	// (2) residual filter above a view match
	if f, ok := node.(*rel.Filter); ok {
		if rel.Digest(f.Inputs()[0]) == viewDigest {
			return rel.NewFilter(scan, f.Condition)
		}
	}

	// (3) aggregate rollup: query GROUP BY keys are a subset of the view's.
	qAgg, ok := node.(*rel.Aggregate)
	if !ok {
		return nil
	}
	vAgg, ok := v.Plan.(*rel.Aggregate)
	if !ok {
		return nil
	}
	if rel.Digest(qAgg.Inputs()[0]) != rel.Digest(vAgg.Inputs()[0]) {
		return nil
	}
	return RollupAggregate(qAgg, vAgg, scan)
}

// RollupAggregate rewrites query aggregate qAgg as a rollup over a
// materialized aggregate vAgg stored in `scan`. Returns nil when the rollup
// is not derivable.
func RollupAggregate(qAgg, vAgg *rel.Aggregate, scan rel.Node) rel.Node {
	// Map query group keys (input ordinals) to view output positions.
	viewKeyPos := map[int]int{} // input ordinal -> view output ordinal
	for i, k := range vAgg.GroupKeys {
		viewKeyPos[k] = i
	}
	newKeys := make([]int, len(qAgg.GroupKeys))
	for i, k := range qAgg.GroupKeys {
		pos, ok := viewKeyPos[k]
		if !ok {
			return nil // query groups by a dimension the view lost
		}
		newKeys[i] = pos
	}
	// Each query aggregate call must be derivable from a view call.
	viewCallPos := func(c rex.AggCall) int {
		for i, vc := range vAgg.Calls {
			if vc.Func == c.Func && vc.Distinct == c.Distinct && sameInts(vc.Args, c.Args) {
				return len(vAgg.GroupKeys) + i
			}
		}
		return -1
	}
	newCalls := make([]rex.AggCall, len(qAgg.Calls))
	for i, c := range qAgg.Calls {
		if c.Distinct {
			return nil // DISTINCT aggregates do not roll up
		}
		pos := viewCallPos(c)
		if pos < 0 {
			return nil
		}
		switch c.Func {
		case rex.AggSum, rex.AggMin, rex.AggMax:
			newCalls[i] = rex.NewAggCall(c.Func, []int{pos}, false, c.Name)
		case rex.AggCount:
			// COUNT rolls up as SUM of partial counts.
			newCalls[i] = rex.NewAggCall(rex.AggSum, []int{pos}, false, c.Name)
		default:
			return nil // AVG etc. are not directly rollupable
		}
	}
	return rel.NewAggregate(scan, newKeys, newCalls)
}

func sameInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
