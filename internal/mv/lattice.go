package mv

import (
	"calcite/internal/plan"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/trait"
)

// Lattice declares that a fact table (with optional dimension joins
// pre-denormalized) forms a star schema whose aggregations are organized in
// a lattice of tiles (§6, after [22] "Implementing Data Cubes Efficiently").
// Each tile is a materialization of the fact table grouped by a subset of
// dimension columns; incoming aggregate queries are answered from the
// smallest covering tile. The lattice approach "is especially efficient in
// matching expressions over data sources organized in a star schema" but
// "more restrictive than view substitution".
type Lattice struct {
	// Name labels the lattice.
	Name string
	// Fact is the fact table all tiles summarize.
	Fact schema.Table
	// FactName is the qualified name used for scans of the fact table.
	FactName []string
	// Tiles, from coarsest to finest; Rule picks the first (i.e. smallest)
	// covering tile.
	Tiles []*Tile
}

// Tile is one materialization of the lattice: the fact table grouped by
// Dims with Measures computed.
type Tile struct {
	// Dims are the fact-table column ordinals the tile groups by.
	Dims []int
	// Measures are the aggregate calls materialized (args are fact-table
	// ordinals).
	Measures []rex.AggCall
	// Table stores the tile rows: [dims..., measures...].
	Table schema.Table
	// Name is the tile's table name.
	Name string
}

// covers reports whether the tile's dimensions include all of dims, and
// returns the mapping dim ordinal -> tile output position.
func (t *Tile) covers(dims []int) (map[int]int, bool) {
	pos := map[int]int{}
	for i, d := range t.Dims {
		pos[d] = i
	}
	for _, d := range dims {
		if _, ok := pos[d]; !ok {
			return nil, false
		}
	}
	return pos, true
}

// Rule returns the planner rule that answers Aggregate(Scan(fact)) queries
// from tiles.
func (l *Lattice) Rule() plan.Rule {
	return &plan.FuncRule{
		Name: "LatticeTileRule(" + l.Name + ")",
		Op: plan.MatchNode(func(n rel.Node) bool {
			a, ok := n.(*rel.Aggregate)
			return ok && trait.SameConvention(a.Traits().Convention, trait.Logical)
		}),
		Fire: func(call *plan.Call) {
			agg := call.Rel(0).(*rel.Aggregate)
			scan, ok := agg.Inputs()[0].(*rel.TableScan)
			if !ok || scan.Table != l.Fact {
				return
			}
			for _, tile := range l.Tiles {
				if rewritten := l.rewriteWithTile(agg, tile); rewritten != nil {
					call.Transform(rewritten)
					return
				}
			}
		},
	}
}

// rewriteWithTile answers agg from tile when the tile's dimensions cover the
// query's group keys and every measure is derivable.
func (l *Lattice) rewriteWithTile(agg *rel.Aggregate, tile *Tile) rel.Node {
	dimPos, ok := tile.covers(agg.GroupKeys)
	if !ok {
		return nil
	}
	measurePos := func(c rex.AggCall) int {
		for i, m := range tile.Measures {
			if m.Func == c.Func && m.Distinct == c.Distinct && sameInts(m.Args, c.Args) {
				return len(tile.Dims) + i
			}
		}
		return -1
	}
	newKeys := make([]int, len(agg.GroupKeys))
	for i, k := range agg.GroupKeys {
		newKeys[i] = dimPos[k]
	}
	newCalls := make([]rex.AggCall, len(agg.Calls))
	for i, c := range agg.Calls {
		if c.Distinct {
			return nil
		}
		pos := measurePos(c)
		if pos < 0 {
			return nil
		}
		switch c.Func {
		case rex.AggSum, rex.AggMin, rex.AggMax:
			newCalls[i] = rex.NewAggCall(c.Func, []int{pos}, false, c.Name)
		case rex.AggCount:
			newCalls[i] = rex.NewAggCall(rex.AggSum, []int{pos}, false, c.Name)
		default:
			return nil
		}
	}
	scan := rel.NewTableScan(trait.Logical, tile.Table, []string{tile.Name})
	return rel.NewAggregate(scan, newKeys, newCalls)
}

// BuildTile materializes a tile from the fact table's current contents
// (used by tests, benchmarks and the OLAP example to simulate the engines —
// e.g. Kylin's HBase cubes — that maintain tiles for Calcite, §8.1).
func BuildTile(fact schema.ScannableTable, factName []string, dims []int, measures []rex.AggCall, name string) (*Tile, error) {
	scan := rel.NewTableScan(trait.Logical, fact, factName)
	agg := rel.NewAggregate(scan, dims, measures)
	rows, err := executeSimpleAggregate(fact, dims, measures)
	if err != nil {
		return nil, err
	}
	table := schema.NewMemTable(name, agg.RowType(), rows)
	return &Tile{Dims: dims, Measures: measures, Table: table, Name: name}, nil
}

// executeSimpleAggregate computes a grouped aggregate directly over a
// scannable table (a tiny standalone executor so that mv does not depend on
// the exec package).
func executeSimpleAggregate(t schema.ScannableTable, dims []int, measures []rex.AggCall) ([][]any, error) {
	cur, err := t.Scan()
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	type group struct {
		key  []any
		accs []rex.Accumulator
	}
	groups := map[string]*group{}
	var order []string
	for {
		row, err := cur.Next()
		if err == schema.Done {
			break
		}
		if err != nil {
			return nil, err
		}
		k := ""
		for _, d := range dims {
			k += "\x00" + rex.NewLiteral(row[d], nil).String()
		}
		g, ok := groups[k]
		if !ok {
			key := make([]any, len(dims))
			for i, d := range dims {
				key[i] = row[d]
			}
			accs := make([]rex.Accumulator, len(measures))
			for i, m := range measures {
				accs[i] = rex.NewAccumulator(m)
			}
			g = &group{key: key, accs: accs}
			groups[k] = g
			order = append(order, k)
		}
		for _, acc := range g.accs {
			if err := acc.Add(row); err != nil {
				return nil, err
			}
		}
	}
	out := make([][]any, 0, len(order))
	for _, k := range order {
		g := groups[k]
		row := append([]any{}, g.key...)
		for _, acc := range g.accs {
			row = append(row, acc.Result())
		}
		out = append(out, row)
	}
	return out, nil
}
