package mv_test

import (
	"strings"
	"testing"

	"calcite"
	"calcite/internal/mv"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/types"
)

func salesConn() (*calcite.Connection, *schema.MemTable) {
	conn := calcite.Open()
	var rows [][]any
	for i := 0; i < 1000; i++ {
		rows = append(rows, []any{
			[]string{"EU", "US"}[i%2],
			[]string{"A", "B", "C"}[i%3],
			float64(i % 50),
		})
	}
	fact := conn.AddTable("sales", calcite.Columns{
		{Name: "region", Type: calcite.VarcharType},
		{Name: "product", Type: calcite.VarcharType},
		{Name: "revenue", Type: calcite.DoubleType},
	}, rows)
	return conn, fact
}

func TestExactSubstitution(t *testing.T) {
	conn, _ := salesConn()
	if _, err := conn.Exec(`CREATE MATERIALIZED VIEW rev AS
		SELECT region, SUM(revenue) AS total FROM sales GROUP BY region`); err != nil {
		t.Fatal(err)
	}
	plan, err := conn.Explain("SELECT region, SUM(revenue) AS total FROM sales GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "rev") || strings.Contains(plan, "table=[sales]") {
		t.Errorf("query not answered from view:\n%s", plan)
	}
	// Results must match the base computation.
	conn2, _ := salesConn()
	want, err := conn2.Query("SELECT region, SUM(revenue) AS total FROM sales GROUP BY region ORDER BY region")
	if err != nil {
		t.Fatal(err)
	}
	got, err := conn.Query("SELECT region, SUM(revenue) AS total FROM sales GROUP BY region ORDER BY region")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Rows {
		if types.Compare(want.Rows[i][1], got.Rows[i][1]) != 0 {
			t.Errorf("row %d: %v vs %v", i, want.Rows[i], got.Rows[i])
		}
	}
}

func TestResidualFilterSubstitution(t *testing.T) {
	conn, _ := salesConn()
	if _, err := conn.Exec(`CREATE MATERIALIZED VIEW rev AS
		SELECT region, SUM(revenue) AS total FROM sales GROUP BY region`); err != nil {
		t.Fatal(err)
	}
	// A filter over the view's expression: partial rewriting with a
	// residual predicate (§6).
	sql := `SELECT t.region, t.total FROM (
		SELECT region, SUM(revenue) AS total FROM sales GROUP BY region
	) t WHERE t.total > 1000`
	plan, err := conn.Explain(sql)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "rev") {
		t.Errorf("residual rewrite missed:\n%s", plan)
	}
	if _, err := conn.Query(sql); err != nil {
		t.Fatal(err)
	}
}

func TestLatticeTileSelection(t *testing.T) {
	conn, fact := salesConn()
	measures := []rex.AggCall{
		rex.NewAggCall(rex.AggSum, []int{2}, false, "rev"),
		rex.NewAggCall(rex.AggCount, nil, false, "cnt"),
	}
	tileRegion, err := mv.BuildTile(fact, []string{"sales"}, []int{0}, measures, "tile_region")
	if err != nil {
		t.Fatal(err)
	}
	tileBoth, err := mv.BuildTile(fact, []string{"sales"}, []int{0, 1}, measures, "tile_both")
	if err != nil {
		t.Fatal(err)
	}
	conn.RegisterLattice(&mv.Lattice{
		Name:  "cube",
		Fact:  fact,
		Tiles: []*mv.Tile{tileRegion, tileBoth},
	})

	// GROUP BY region: covered by the smaller tile_region.
	plan, err := conn.Explain("SELECT region, SUM(revenue) FROM sales GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "tile_region") {
		t.Errorf("smallest covering tile not used:\n%s", plan)
	}
	// GROUP BY product: only tile_both covers it.
	plan, err = conn.Explain("SELECT product, SUM(revenue) FROM sales GROUP BY product")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan, "tile_both") {
		t.Errorf("rollup tile not used:\n%s", plan)
	}
	// COUNT rolls up as SUM of partial counts: verify the numbers.
	res, err := conn.Query("SELECT product, COUNT(*) AS c FROM sales GROUP BY product ORDER BY product")
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, row := range res.Rows {
		v, _ := types.AsInt(row[1])
		total += v
	}
	if total != 1000 {
		t.Errorf("rolled-up counts sum to %d, want 1000", total)
	}
}

func TestDistinctAggregatesDoNotRollUp(t *testing.T) {
	conn, fact := salesConn()
	measures := []rex.AggCall{rex.NewAggCall(rex.AggSum, []int{2}, false, "rev")}
	tile, err := mv.BuildTile(fact, []string{"sales"}, []int{0}, measures, "tile_region")
	if err != nil {
		t.Fatal(err)
	}
	conn.RegisterLattice(&mv.Lattice{Name: "cube", Fact: fact, Tiles: []*mv.Tile{tile}})
	plan, err := conn.Explain("SELECT region, COUNT(DISTINCT product) FROM sales GROUP BY region")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan, "tile_region") {
		t.Errorf("DISTINCT aggregate must not use tiles:\n%s", plan)
	}
}
