// Package stream implements the streaming extensions of §7.2 of the paper:
// windows over time-ordered event streams. Tumbling windows are also
// reachable from SQL (GROUP BY TUMBLE(...)); hopping and session windows —
// which require assigning one input row to multiple (or data-dependent)
// windows — are provided here as first-class stream transforms, mirroring
// the TUMBLE/HOPPING/SESSION functions the paper describes.
package stream

import (
	"fmt"
	"sort"
	"time"

	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/types"
)

// rowtimeMillis coerces a rowtime value to epoch milliseconds: time.Time
// and every integer type are accepted; anything else is rejected.
func rowtimeMillis(v any) (int64, bool) {
	if ts, ok := v.(time.Time); ok {
		return ts.UnixMilli(), true
	}
	return types.AsInt(v)
}

// Event is one element of a stream: a row plus its event time (epoch
// millis). Rowtime must be non-decreasing within a stream ("streams as
// time-ordered sets of records or events").
type Event struct {
	Rowtime int64
	Row     []any
}

// Window is one time window with its aggregate results.
type Window struct {
	Start, End int64
	// Key holds the grouping key values (nil for global windows).
	Key []any
	// Values holds one result per aggregate call.
	Values []any
}

// windowAgg aggregates the events assigned to one (window, key) pair.
func aggregate(events []Event, calls []rex.AggCall) ([]any, error) {
	accs := make([]rex.Accumulator, len(calls))
	for i, c := range calls {
		accs[i] = rex.NewAccumulator(c)
	}
	for _, e := range events {
		for _, acc := range accs {
			if err := acc.Add(e.Row); err != nil {
				return nil, err
			}
		}
	}
	out := make([]any, len(accs))
	for i, acc := range accs {
		out[i] = acc.Result()
	}
	return out, nil
}

// groupKeyOf extracts the key columns of an event row.
func groupKeyOf(e Event, keyCols []int) (string, []any) {
	key := make([]any, len(keyCols))
	for i, c := range keyCols {
		key[i] = e.Row[c]
	}
	cols := make([]int, len(keyCols))
	copy(cols, keyCols)
	return fmt.Sprint(key), key
}

// slot accumulates the events of one (window, key) pair.
type slot struct {
	start int64
	key   []any
	evs   []Event
}

// Tumble assigns each event to exactly one fixed-size window
// [n*size, (n+1)*size) and aggregates per (window, key).
func Tumble(events []Event, size int64, keyCols []int, calls []rex.AggCall) ([]Window, error) {
	if size <= 0 {
		return nil, fmt.Errorf("stream: tumble size must be positive")
	}
	slots := map[string]*slot{}
	var order []string
	for _, e := range events {
		start := e.Rowtime - mod(e.Rowtime, size)
		ks, key := groupKeyOf(e, keyCols)
		id := fmt.Sprintf("%d|%s", start, ks)
		s, ok := slots[id]
		if !ok {
			s = &slot{start: start, key: key}
			slots[id] = s
			order = append(order, id)
		}
		s.evs = append(s.evs, e)
	}
	return finish(slots, order, size, calls)
}

// Hop assigns each event to every window of length size that starts each
// slide period and contains the event (hopping windows emit overlapping
// results).
func Hop(events []Event, slide, size int64, keyCols []int, calls []rex.AggCall) ([]Window, error) {
	if slide <= 0 || size <= 0 {
		return nil, fmt.Errorf("stream: hop slide and size must be positive")
	}
	slots := map[string]*slot{}
	var order []string
	for _, e := range events {
		// Windows with start in (rowtime-size, rowtime] aligned to slide.
		first := e.Rowtime - mod(e.Rowtime, slide)
		for start := first; start > e.Rowtime-size; start -= slide {
			ks, key := groupKeyOf(e, keyCols)
			id := fmt.Sprintf("%d|%s", start, ks)
			s, ok := slots[id]
			if !ok {
				s = &slot{start: start, key: key}
				slots[id] = s
				order = append(order, id)
			}
			s.evs = append(s.evs, e)
		}
	}
	return finish(slots, order, size, calls)
}

// Session groups consecutive events of the same key separated by gaps of
// less than `gap` into one window; a quiet period of at least `gap` closes
// the session.
func Session(events []Event, gap int64, keyCols []int, calls []rex.AggCall) ([]Window, error) {
	if gap <= 0 {
		return nil, fmt.Errorf("stream: session gap must be positive")
	}
	// Split events per key, preserving time order.
	byKey := map[string][]Event{}
	keys := map[string][]any{}
	var order []string
	for _, e := range events {
		ks, key := groupKeyOf(e, keyCols)
		if _, ok := byKey[ks]; !ok {
			order = append(order, ks)
			keys[ks] = key
		}
		byKey[ks] = append(byKey[ks], e)
	}
	var out []Window
	for _, ks := range order {
		evs := byKey[ks]
		sort.SliceStable(evs, func(i, j int) bool { return evs[i].Rowtime < evs[j].Rowtime })
		var cur []Event
		flush := func() error {
			if len(cur) == 0 {
				return nil
			}
			vals, err := aggregate(cur, calls)
			if err != nil {
				return err
			}
			out = append(out, Window{
				Start:  cur[0].Rowtime,
				End:    cur[len(cur)-1].Rowtime + gap,
				Key:    keys[ks],
				Values: vals,
			})
			cur = nil
			return nil
		}
		for _, e := range evs {
			if len(cur) > 0 && e.Rowtime-cur[len(cur)-1].Rowtime >= gap {
				if err := flush(); err != nil {
					return nil, err
				}
			}
			cur = append(cur, e)
		}
		if err := flush(); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func finish(slots map[string]*slot, order []string, size int64, calls []rex.AggCall) ([]Window, error) {
	out := make([]Window, 0, len(order))
	for _, id := range order {
		s := slots[id]
		vals, err := aggregate(s.evs, calls)
		if err != nil {
			return nil, err
		}
		out = append(out, Window{Start: s.start, End: s.start + size, Key: s.key, Values: vals})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return fmt.Sprint(out[i].Key) < fmt.Sprint(out[j].Key)
	})
	return out, nil
}

func mod(a, b int64) int64 {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// EventsFromCursor reads a cursor into events using rowtimeCol as the event
// time column.
func EventsFromCursor(cur schema.Cursor, rowtimeCol int) ([]Event, error) {
	defer cur.Close()
	var out []Event
	for {
		row, err := cur.Next()
		if err == schema.Done {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
		ts, ok := rowtimeMillis(row[rowtimeCol])
		if !ok {
			return nil, fmt.Errorf("stream: rowtime column %d is %T, want a timestamp (time.Time or integer millis)", rowtimeCol, row[rowtimeCol])
		}
		out = append(out, Event{Rowtime: ts, Row: row})
	}
}
