package stream

import (
	"testing"

	"calcite/internal/rex"
	"calcite/internal/types"
)

func evts(ts ...int64) []Event {
	out := make([]Event, len(ts))
	for i, t := range ts {
		out[i] = Event{Rowtime: t, Row: []any{t, int64(i % 2), int64(10)}}
	}
	return out
}

var countCall = []rex.AggCall{rex.NewAggCall(rex.AggCount, nil, false, "c")}

func TestTumble(t *testing.T) {
	events := evts(0, 10, 99, 100, 150, 250)
	ws, err := Tumble(events, 100, nil, countCall)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("windows: %+v", ws)
	}
	wantCounts := []int64{3, 2, 1}
	for i, w := range ws {
		if w.End-w.Start != 100 {
			t.Errorf("window %d size %d", i, w.End-w.Start)
		}
		if w.Values[0] != wantCounts[i] {
			t.Errorf("window %d count %v want %v", i, w.Values[0], wantCounts[i])
		}
	}
}

func TestTumbleKeyed(t *testing.T) {
	events := evts(0, 10, 20, 30)
	ws, err := Tumble(events, 100, []int{1}, countCall)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("expected 2 key groups: %+v", ws)
	}
}

func TestHopOverlap(t *testing.T) {
	// Window size 100, slide 50: each event lands in exactly 2 windows.
	events := evts(60)
	ws, err := Hop(events, 50, 100, nil, countCall)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("hop windows: %+v", ws)
	}
	// Every window containing the event must actually cover rowtime 60.
	for _, w := range ws {
		if !(w.Start <= 60 && 60 < w.End) {
			t.Errorf("window [%d,%d) does not cover event", w.Start, w.End)
		}
	}
}

// Property: hop with slide == size equals tumble.
func TestHopEqualsTumbleWhenNoOverlap(t *testing.T) {
	events := evts(0, 10, 99, 100, 150, 250, 260, 399)
	tw, err := Tumble(events, 100, nil, countCall)
	if err != nil {
		t.Fatal(err)
	}
	hw, err := Hop(events, 100, 100, nil, countCall)
	if err != nil {
		t.Fatal(err)
	}
	if len(tw) != len(hw) {
		t.Fatalf("tumble %d vs hop %d windows", len(tw), len(hw))
	}
	for i := range tw {
		if tw[i].Start != hw[i].Start || tw[i].Values[0] != hw[i].Values[0] {
			t.Errorf("window %d differs: %+v vs %+v", i, tw[i], hw[i])
		}
	}
}

func TestSession(t *testing.T) {
	// Gaps >= 100 split sessions.
	events := evts(0, 10, 20, 200, 210, 500)
	ws, err := Session(events, 100, nil, countCall)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 3 {
		t.Fatalf("sessions: %+v", ws)
	}
	if ws[0].Values[0] != int64(3) || ws[1].Values[0] != int64(2) || ws[2].Values[0] != int64(1) {
		t.Errorf("session counts: %+v", ws)
	}
}

func TestSessionPerKey(t *testing.T) {
	events := []Event{
		{Rowtime: 0, Row: []any{int64(0), "a"}},
		{Rowtime: 50, Row: []any{int64(50), "b"}},
		{Rowtime: 60, Row: []any{int64(60), "a"}},
	}
	ws, err := Session(events, 100, []int{1}, countCall)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 2 {
		t.Fatalf("per-key sessions: %+v", ws)
	}
}

func TestWindowSums(t *testing.T) {
	sum := []rex.AggCall{rex.NewAggCall(rex.AggSum, []int{2}, false, "s")}
	ws, err := Tumble(evts(0, 10, 20), 100, nil, sum)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := types.AsInt(ws[0].Values[0]); v != 30 {
		t.Errorf("sum: %v", ws[0].Values[0])
	}
}

func TestErrors(t *testing.T) {
	if _, err := Tumble(nil, 0, nil, countCall); err == nil {
		t.Error("zero tumble size should error")
	}
	if _, err := Hop(nil, 0, 10, nil, countCall); err == nil {
		t.Error("zero slide should error")
	}
	if _, err := Session(nil, -1, nil, countCall); err == nil {
		t.Error("negative gap should error")
	}
}
