package stats

import (
	"fmt"
	"math"
	"testing"
)

// TestHLLAccuracy: the sketch must stay within a few percent of the true
// cardinality across magnitudes (standard error at p=12 is ~1.6%; allow 5%).
func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{100, 1000, 10000, 100000, 1000000} {
		var h HLL
		for i := 0; i < n; i++ {
			h.AddHash(HashValue(fmt.Sprintf("value-%d", i)))
		}
		est := h.Estimate()
		relErr := math.Abs(est-float64(n)) / float64(n)
		if relErr > 0.05 {
			t.Errorf("n=%d: estimate %.0f, relative error %.3f > 0.05", n, est, relErr)
		}
	}
}

// TestHLLDuplicates: repeated values must not inflate the estimate.
func TestHLLDuplicates(t *testing.T) {
	var h HLL
	for i := 0; i < 100000; i++ {
		h.AddHash(HashValue(int64(i % 10)))
	}
	if est := h.Estimate(); est < 5 || est > 20 {
		t.Errorf("10 distinct values estimated as %.1f", est)
	}
}

// TestHashValueNumericEquivalence: values that compare equal must hash
// equal so NDV matches the engine's equality semantics.
func TestHashValueNumericEquivalence(t *testing.T) {
	if HashValue(int64(3)) != HashValue(float64(3)) {
		t.Error("int64(3) and float64(3) hash differently")
	}
	if HashValue("a") == HashValue("b") {
		t.Error("distinct strings collide")
	}
}

func uniformHistogram(n int) *Histogram {
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = float64(i)
	}
	return NewHistogram(keys, DefaultBuckets)
}

// TestHistogramRange: range estimates over a uniform column must track the
// true fraction closely.
func TestHistogramRange(t *testing.T) {
	h := uniformHistogram(10000)
	cases := []struct {
		x    float64
		incl bool
		want float64
	}{
		{2500, false, 0.25},
		{5000, false, 0.5},
		{9999, true, 1.0},
		{0, false, 0.0},
		{-5, false, 0.0},
		{20000, true, 1.0},
	}
	for _, c := range cases {
		got := h.FracLess(c.x, c.incl)
		if math.Abs(got-c.want) > 0.02 {
			t.Errorf("FracLess(%v, %v) = %.4f, want ~%.4f", c.x, c.incl, got, c.want)
		}
	}
}

// TestHistogramBoundaryInclusive: an inclusive bound landing exactly on a
// bucket's upper edge must not double-count the run at the boundary — the
// fraction stays within [0, 1] and ≈ the true fraction.
func TestHistogramBoundaryInclusive(t *testing.T) {
	h := uniformHistogram(1000)
	for _, b := range h.Buckets {
		got := h.FracLess(b.Hi, true)
		want := (b.Hi + 1) / 1000 // keys 0..999 uniform: |{k <= Hi}| = Hi+1
		if got > 1.0000001 || math.Abs(got-want) > 0.01 {
			t.Errorf("FracLess(%v, true) = %.4f, want ~%.4f", b.Hi, got, want)
		}
	}
	// Degenerate single-bucket case from the review: Lo=1, Hi=100, 100 keys.
	keys := make([]float64, 100)
	for i := range keys {
		keys[i] = float64(i + 1)
	}
	one := NewHistogram(keys, 1)
	if got := one.FracLess(100, true); got > 1 {
		t.Errorf("inclusive boundary fraction %v > 1", got)
	}
}

// TestHistogramEquality: point estimates on uniform data ≈ 1/n, and on
// skewed data the heavy bucket must dominate.
func TestHistogramEquality(t *testing.T) {
	h := uniformHistogram(10000)
	if got := h.FracEq(1234); math.Abs(got-1.0/10000) > 0.001 {
		t.Errorf("uniform FracEq = %v, want ~1e-4", got)
	}
	// Skew: 9900 rows of value 0, 100 distinct others.
	keys := make([]float64, 0, 10000)
	for i := 0; i < 9900; i++ {
		keys = append(keys, 0)
	}
	for i := 1; i <= 100; i++ {
		keys = append(keys, float64(i))
	}
	hs := NewHistogram(keys, DefaultBuckets)
	if got := hs.FracEq(0); got < 0.5 {
		t.Errorf("heavy value FracEq = %v, want > 0.5", got)
	}
	if got := hs.FracEq(50); got > 0.1 {
		t.Errorf("light value FracEq = %v, want small", got)
	}
}

// TestHistogramSkewedBuckets: a run of equal keys never splits across
// buckets, so bucket counts reflect the skew.
func TestHistogramSkewedBuckets(t *testing.T) {
	keys := make([]float64, 0, 1000)
	for i := 0; i < 990; i++ {
		keys = append(keys, 7)
	}
	for i := 0; i < 10; i++ {
		keys = append(keys, float64(100+i))
	}
	h := NewHistogram(keys, 8)
	total := 0.0
	for _, b := range h.Buckets {
		total += b.Count
		if b.Lo > b.Hi {
			t.Errorf("inverted bucket %+v", b)
		}
	}
	if total != 1000 {
		t.Errorf("bucket counts sum to %v, want 1000", total)
	}
	if h.FracEq(7) < 0.9 {
		t.Errorf("FracEq(7) = %v, want ~0.99", h.FracEq(7))
	}
}

// TestCollector: null counts, min/max, exact NDV and histogram presence.
func TestCollector(t *testing.T) {
	c := NewCollector(3)
	for i := 0; i < 1000; i++ {
		var v any
		if i%10 == 0 {
			v = nil // 10% nulls
		} else {
			v = int64(i % 50)
		}
		c.AddRow([]any{int64(i), v, fmt.Sprintf("s%d", i%7)})
	}
	cols, rows := c.Finish()
	if rows != 1000 {
		t.Fatalf("rows = %v", rows)
	}
	// Column 0: dense unique ints.
	if cols[0].NullCount != 0 || cols[0].NDV != 1000 {
		t.Errorf("col0 = %+v", cols[0])
	}
	if cols[0].Min != int64(0) || cols[0].Max != int64(999) {
		t.Errorf("col0 min/max = %v/%v", cols[0].Min, cols[0].Max)
	}
	if cols[0].Histogram == nil {
		t.Error("col0 missing histogram")
	}
	// Column 1: nulls + 45 distinct (i%50 values that are ≡0 mod 10 are
	// exactly the nulled rows, leaving 45 distinct non-null values).
	if cols[1].NullCount != 100 {
		t.Errorf("col1 nulls = %v", cols[1].NullCount)
	}
	if cols[1].NDV != 45 {
		t.Errorf("col1 ndv = %v", cols[1].NDV)
	}
	if cols[1].Histogram == nil || cols[1].Histogram.Rows != 900 {
		t.Errorf("col1 histogram = %+v", cols[1].Histogram)
	}
	// Column 2: strings — NDV but no histogram.
	if cols[2].NDV != 7 {
		t.Errorf("col2 ndv = %v", cols[2].NDV)
	}
	if cols[2].Histogram != nil {
		t.Error("string column grew a histogram")
	}
	if cols[2].Min != "s0" || cols[2].Max != "s6" {
		t.Errorf("col2 min/max = %v/%v", cols[2].Min, cols[2].Max)
	}
}

// TestCollectorBatchPath: AddCol with and without a selection vector must
// match the row path.
func TestCollectorBatchPath(t *testing.T) {
	c := NewCollector(1)
	col := []any{int64(1), int64(2), int64(3), int64(4)}
	c.AddCol(0, col, nil)
	c.AddRows(4)
	c.AddCol(0, col, []int32{0, 2})
	c.AddRows(2)
	cols, rows := c.Finish()
	if rows != 6 {
		t.Fatalf("rows = %v", rows)
	}
	if cols[0].NDV != 4 {
		t.Errorf("ndv = %v", cols[0].NDV)
	}
}
