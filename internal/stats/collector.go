package stats

import (
	"fmt"
	"math"
	"math/rand"

	"calcite/internal/types"
)

// ColumnStats is the collected statistics of one table column. All fields
// are estimates except NullCount and Min/Max, which are exact over the
// analyzed snapshot.
type ColumnStats struct {
	// NullCount is the number of NULL values.
	NullCount float64
	// Min and Max bound the non-null values (nil when the column is all-null
	// or its values are not totally ordered by types.Compare).
	Min, Max any
	// NDV is the estimated number of distinct non-null values: exact while
	// the column stays under the exact-tracking threshold, a HyperLogLog
	// estimate beyond it.
	NDV float64
	// Histogram is an equi-depth histogram over the non-null values;
	// non-numeric columns have none.
	Histogram *Histogram
}

// exactNDVLimit is the number of distinct values tracked exactly before the
// collector falls back to the HyperLogLog estimate alone.
const exactNDVLimit = 1 << 14

// sampleLimit caps the per-column reservoir feeding the histogram, bounding
// ANALYZE memory on large tables.
const sampleLimit = 1 << 17

// Collector accumulates per-column statistics over a stream of rows.
type Collector struct {
	rows float64
	cols []*colAcc
}

type colAcc struct {
	nulls    float64
	min, max any
	hll      HLL
	exact    map[uint64]struct{} // nil once the exact limit is exceeded
	exactNDV float64

	// reservoir sample of numeric keys for the histogram; numeric stays
	// true only while every non-null value coerces to float64.
	numeric bool
	seen    float64
	sample  []float64
	rng     *rand.Rand
}

// NewCollector creates a collector for rows of the given width.
func NewCollector(width int) *Collector {
	c := &Collector{cols: make([]*colAcc, width)}
	for i := range c.cols {
		c.cols[i] = &colAcc{
			numeric: true,
			exact:   map[uint64]struct{}{},
			// Deterministic seed: ANALYZE of the same data yields the same
			// statistics (and therefore the same plans) on every run.
			rng: rand.New(rand.NewSource(int64(i)*2654435761 + 97)),
		}
	}
	return c
}

// AddRow folds one row into the statistics.
func (c *Collector) AddRow(row []any) {
	c.rows++
	for i, acc := range c.cols {
		var v any
		if i < len(row) {
			v = row[i]
		}
		acc.add(v)
	}
}

// AddCol folds a column vector (one batch's column) into column i. sel, when
// non-nil, selects the live rows. The caller is responsible for bumping the
// row count once per batch via AddRows.
func (c *Collector) AddCol(i int, col []any, sel []int32) {
	acc := c.cols[i]
	if sel == nil {
		for _, v := range col {
			acc.add(v)
		}
		return
	}
	for _, r := range sel {
		acc.add(col[r])
	}
}

// AddRows advances the row count by n (used with AddCol).
func (c *Collector) AddRows(n int) { c.rows += float64(n) }

func (a *colAcc) add(v any) {
	if v == nil {
		a.nulls++
		return
	}
	if a.min == nil || types.Compare(v, a.min) < 0 {
		a.min = v
	}
	if a.max == nil || types.Compare(v, a.max) > 0 {
		a.max = v
	}
	h := HashValue(v)
	a.hll.AddHash(h)
	if a.exact != nil {
		a.exact[h] = struct{}{}
		if len(a.exact) > exactNDVLimit {
			a.exact = nil
		}
	}
	if a.numeric {
		f, ok := types.AsFloat(v)
		if !ok {
			a.numeric = false
			a.sample = nil
		} else {
			a.seen++
			if len(a.sample) < sampleLimit {
				a.sample = append(a.sample, f)
			} else if j := a.rng.Int63n(int64(a.seen)); j < sampleLimit {
				a.sample[int(j)] = f
			}
		}
	}
}

// Finish returns the per-column statistics and the total row count.
func (c *Collector) Finish() ([]*ColumnStats, float64) {
	out := make([]*ColumnStats, len(c.cols))
	for i, acc := range c.cols {
		cs := &ColumnStats{
			NullCount: acc.nulls,
			Min:       acc.min,
			Max:       acc.max,
		}
		if acc.exact != nil {
			cs.NDV = float64(len(acc.exact))
		} else {
			cs.NDV = acc.hll.Estimate()
		}
		if acc.numeric && len(acc.sample) > 0 {
			cs.Histogram = NewHistogram(acc.sample, DefaultBuckets)
			if acc.seen > float64(len(acc.sample)) {
				// Scale the sampled histogram back to the full column. Bucket
				// counts scale linearly with the sampling rate; bucket NDVs do
				// not, so they are rescaled against the column-level sketch:
				// buckets cover disjoint key ranges, so their true NDVs sum to
				// the column NDV.
				scale := acc.seen / float64(len(acc.sample))
				sampleNDV := 0.0
				for _, b := range cs.Histogram.Buckets {
					sampleNDV += b.NDV
				}
				ndvScale := 1.0
				if sampleNDV > 0 && cs.NDV > sampleNDV {
					ndvScale = cs.NDV / sampleNDV
				}
				for bi := range cs.Histogram.Buckets {
					b := &cs.Histogram.Buckets[bi]
					b.Count *= scale
					b.NDV = math.Min(b.NDV*ndvScale, b.Count)
				}
				cs.Histogram.Rows = acc.seen
			}
		}
		out[i] = cs
	}
	return out, c.rows
}

func formatFallback(v any) string { return fmt.Sprintf("%v", v) }
