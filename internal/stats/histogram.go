package stats

import "sort"

// DefaultBuckets is the equi-depth histogram resolution used by ANALYZE.
const DefaultBuckets = 64

// Bucket is one span of an equi-depth histogram: the rows r with
// Lo <= key(r) <= Hi. Buckets are stored in ascending, non-overlapping key
// order; a value run (all rows of one key) never splits across buckets, so
// Count can exceed the target depth on heavily skewed columns — which is
// exactly the skew the histogram exists to expose.
type Bucket struct {
	Lo, Hi float64
	// Count is the number of rows in the bucket.
	Count float64
	// NDV is the exact number of distinct keys in the bucket.
	NDV float64
}

// Histogram is an equi-depth (equal-height) histogram over the non-null
// values of a numeric column. Rows is the total row count across buckets.
type Histogram struct {
	Buckets []Bucket
	Rows    float64
}

// NewHistogram builds an equi-depth histogram with at most maxBuckets
// buckets from an unsorted sample of keys (sorted in place). Returns nil for
// an empty sample.
func NewHistogram(keys []float64, maxBuckets int) *Histogram {
	if len(keys) == 0 {
		return nil
	}
	if maxBuckets <= 0 {
		maxBuckets = DefaultBuckets
	}
	sort.Float64s(keys)
	depth := (len(keys) + maxBuckets - 1) / maxBuckets
	h := &Histogram{Rows: float64(len(keys))}
	cur := Bucket{Lo: keys[0], Hi: keys[0], Count: 0, NDV: 0}
	last := keys[0]
	for i := 0; i < len(keys); {
		// Consume the full run of equal keys.
		v := keys[i]
		run := i
		for run < len(keys) && keys[run] == v {
			run++
		}
		runLen := run - i
		if cur.Count > 0 && int(cur.Count) >= depth {
			// Close the bucket at a key boundary.
			cur.Hi = last
			h.Buckets = append(h.Buckets, cur)
			cur = Bucket{Lo: v, Hi: v}
		}
		cur.Count += float64(runLen)
		cur.NDV++
		last = v
		i = run
	}
	cur.Hi = last
	h.Buckets = append(h.Buckets, cur)
	return h
}

// FracLess estimates the fraction of the histogram's rows with key < x
// (inclusive adds the rows with key == x). Within a bucket the distribution
// is assumed uniform over [Lo, Hi].
func (h *Histogram) FracLess(x float64, inclusive bool) float64 {
	if h == nil || h.Rows == 0 {
		return 0.5
	}
	rows := 0.0
	for _, b := range h.Buckets {
		switch {
		case x > b.Hi:
			rows += b.Count
		case x < b.Lo:
			return rows / h.Rows
		default:
			// x falls inside the bucket: interpolate the rows strictly below
			// x, capped so the run at x itself is never counted twice when x
			// sits at the bucket's upper boundary.
			within := 0.0
			if b.Hi > b.Lo {
				within = (x - b.Lo) / (b.Hi - b.Lo)
			}
			below := b.Count * within
			if maxBelow := b.Count - b.Count/b.NDV; below > maxBelow {
				below = maxBelow
			}
			rows += below
			if inclusive {
				rows += b.Count / b.NDV // the run at x itself
			}
			return rows / h.Rows
		}
	}
	return rows / h.Rows
}

// FracEq estimates the fraction of the histogram's rows with key == x: the
// containing bucket's rows spread over its distinct keys.
func (h *Histogram) FracEq(x float64) float64 {
	if h == nil || h.Rows == 0 {
		return 0
	}
	for _, b := range h.Buckets {
		if x < b.Lo {
			return 0
		}
		if x <= b.Hi {
			return b.Count / b.NDV / h.Rows
		}
	}
	return 0
}

// FracBetween estimates the fraction of rows with lo <= key <= hi.
func (h *Histogram) FracBetween(lo, hi float64) float64 {
	if h == nil || h.Rows == 0 {
		return 0.25
	}
	f := h.FracLess(hi, true) - h.FracLess(lo, false)
	if f < 0 {
		return 0
	}
	return f
}
