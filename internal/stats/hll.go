// Package stats implements collected table statistics — the concrete
// metadata §6 of the paper says adapters should supply ("for many of the
// available metadata, statistics"): per-column null counts, min/max bounds,
// distinct-value counts estimated with a HyperLogLog sketch, and equi-depth
// histograms over numeric columns.
//
// The package is deliberately free of planner and catalog dependencies: a
// Collector consumes column values (fed by ANALYZE TABLE scanning a table's
// batches), and the resulting ColumnStats hang off schema.Statistics, where
// the metadata providers in internal/meta read them to turn textbook
// selectivity constants into estimates derived from the data itself.
package stats

import (
	"math"
	"math/bits"
	"time"
)

// hllPrecision is the HyperLogLog precision p: 2^p registers. p=12 gives a
// standard error of 1.04/sqrt(4096) ≈ 1.6% using 4 KiB per sketch.
const hllPrecision = 12

const hllRegisters = 1 << hllPrecision

// HLL is a HyperLogLog cardinality sketch (Flajolet et al.). Add values via
// AddHash with any well-mixed 64-bit hash; Estimate returns the approximate
// number of distinct hashes seen.
type HLL struct {
	registers [hllRegisters]uint8
}

// AddHash folds one hashed observation into the sketch.
func (h *HLL) AddHash(hash uint64) {
	idx := hash >> (64 - hllPrecision)
	rest := hash << hllPrecision
	// rank = position of the leftmost 1-bit in the remaining bits, 1-based;
	// all-zero rest gets the maximum rank.
	rank := uint8(bits.LeadingZeros64(rest)) + 1
	if rank > 64-hllPrecision+1 {
		rank = 64 - hllPrecision + 1
	}
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// Estimate returns the estimated number of distinct values added.
func (h *HLL) Estimate() float64 {
	const m = float64(hllRegisters)
	// alpha_m for m >= 128.
	alpha := 0.7213 / (1 + 1.079/m)
	sum := 0.0
	zeros := 0
	for _, r := range h.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	est := alpha * m * m / sum
	// Small-range correction: linear counting while registers are sparse.
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	return est
}

// HashValue hashes a runtime value (the []any representation of package
// types) for the sketch. Numeric types that compare equal hash equal
// (int64(3) and float64(3) count as one distinct value, matching the
// engine's comparison semantics).
func HashValue(v any) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	step := func(b byte) { h ^= uint64(b); h *= prime64 }
	write64 := func(u uint64) {
		for i := 0; i < 8; i++ {
			step(byte(u >> (8 * i)))
		}
	}
	switch x := v.(type) {
	case nil:
		step(0)
	case int64:
		step(1)
		write64(math.Float64bits(float64(x)))
	case int:
		step(1)
		write64(math.Float64bits(float64(x)))
	case float64:
		step(1)
		write64(math.Float64bits(x))
	case bool:
		step(2)
		if x {
			step(1)
		} else {
			step(0)
		}
	case string:
		step(3)
		for i := 0; i < len(x); i++ {
			step(x[i])
		}
	case time.Time:
		step(4)
		write64(uint64(x.UnixNano()))
	default:
		step(5)
		// Fall back to the formatted form for composite values.
		s := formatFallback(x)
		for i := 0; i < len(s); i++ {
			step(s[i])
		}
	}
	// Finalize with a 64-bit mixer so low-entropy inputs still spread
	// across registers (FNV alone leaves the high bits poorly mixed).
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
