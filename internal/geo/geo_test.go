package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFromTextRoundTrip(t *testing.T) {
	for _, wkt := range []string{
		"POINT (4.9 52.37)",
		"LINESTRING (0 0, 1 1, 2 0)",
		"POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))",
	} {
		g, err := FromText(wkt)
		if err != nil {
			t.Fatalf("FromText(%q): %v", wkt, err)
		}
		g2, err := FromText(g.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", g.String(), err)
		}
		if g2.Kind != g.Kind || len(g2.Points) != len(g.Points) {
			t.Errorf("round trip changed %q -> %q", wkt, g2.String())
		}
	}
	if _, err := FromText("CIRCLE (1 1)"); err == nil {
		t.Error("unsupported WKT should error")
	}
	if _, err := FromText("POINT (x y)"); err == nil {
		t.Error("bad coordinates should error")
	}
}

func TestContains(t *testing.T) {
	square, _ := FromText("POLYGON ((0 0, 10 0, 10 10, 0 10, 0 0))")
	inner, _ := FromText("POLYGON ((2 2, 4 2, 4 4, 2 4, 2 2))")
	if !Contains(square, NewPoint(5, 5)) {
		t.Error("center should be contained")
	}
	if Contains(square, NewPoint(15, 5)) {
		t.Error("outside point contained")
	}
	if !Contains(square, NewPoint(0, 5)) {
		t.Error("boundary counts as contained")
	}
	if !Contains(square, inner) {
		t.Error("inner polygon should be contained")
	}
	if Contains(inner, square) {
		t.Error("outer polygon must not be contained in inner")
	}
}

// Property: points strictly inside a random axis-aligned box are contained,
// points strictly outside are not.
func TestContainsBoxProperty(t *testing.T) {
	f := func(cx, cy int16, w, h uint8) bool {
		x, y := float64(cx), float64(cy)
		dw, dh := float64(w%50)+1, float64(h%50)+1
		box := NewPolygon([]Point{{x, y}, {x + dw, y}, {x + dw, y + dh}, {x, y + dh}})
		if !Contains(box, NewPoint(x+dw/2, y+dh/2)) {
			return false
		}
		return !Contains(box, NewPoint(x+dw+1, y+dh+1))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntersects(t *testing.T) {
	a, _ := FromText("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	b, _ := FromText("POLYGON ((2 2, 6 2, 6 6, 2 6, 2 2))")
	c, _ := FromText("POLYGON ((10 10, 12 10, 12 12, 10 12, 10 10))")
	if !Intersects(a, b) {
		t.Error("overlapping polygons should intersect")
	}
	if Intersects(a, c) {
		t.Error("distant polygons should not intersect")
	}
	line, _ := FromText("LINESTRING (-1 2, 5 2)")
	if !Intersects(a, line) {
		t.Error("crossing line should intersect")
	}
}

func TestDistance(t *testing.T) {
	a := NewPoint(0, 0)
	b := NewPoint(3, 4)
	if d := Distance(a, b); math.Abs(d-5) > 1e-9 {
		t.Errorf("distance = %v, want 5", d)
	}
	square, _ := FromText("POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))")
	if d := Distance(square, NewPoint(1, 1)); d != 0 {
		t.Errorf("inside point distance = %v", d)
	}
	if d := Distance(square, NewPoint(4, 0)); math.Abs(d-2) > 1e-9 {
		t.Errorf("edge distance = %v, want 2", d)
	}
}

func TestAreaAndEnvelope(t *testing.T) {
	square, _ := FromText("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))")
	if a := Area(square); a != 16 {
		t.Errorf("area = %v", a)
	}
	if a := Area(NewPoint(1, 1)); a != 0 {
		t.Errorf("point area = %v", a)
	}
	line, _ := FromText("LINESTRING (1 2, 5 8)")
	env := Envelope(line)
	if env.Kind != PolygonKind || !Contains(env, NewPoint(3, 5)) {
		t.Errorf("envelope wrong: %v", env)
	}
}
