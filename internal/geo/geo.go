// Package geo implements the GEOMETRY data type and the OpenGIS-style ST_*
// functions of §7.3 of the paper: points, linestrings and polygons parsed
// from WKT (well-known text), with containment, intersection and distance
// predicates sufficient to run the paper's example queries (e.g. finding the
// country that contains Amsterdam).
package geo

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Point is a 2-D coordinate.
type Point struct {
	X, Y float64
}

// GeomKind enumerates geometry kinds.
type GeomKind int

const (
	PointKind GeomKind = iota
	LineStringKind
	PolygonKind
)

func (k GeomKind) String() string {
	switch k {
	case PointKind:
		return "POINT"
	case LineStringKind:
		return "LINESTRING"
	case PolygonKind:
		return "POLYGON"
	}
	return "GEOMETRY"
}

// Geometry is a geometric object: a point, a linestring, or a polygon with
// an exterior ring (holes are not supported). Geometry values are immutable.
type Geometry struct {
	Kind   GeomKind
	Points []Point // the point, the line, or the exterior ring (closed)
}

// NewPoint returns a point geometry.
func NewPoint(x, y float64) *Geometry {
	return &Geometry{Kind: PointKind, Points: []Point{{x, y}}}
}

// NewPolygon returns a polygon geometry from a ring. The ring is closed
// automatically if its last point differs from its first.
func NewPolygon(ring []Point) *Geometry {
	if len(ring) > 0 && ring[0] != ring[len(ring)-1] {
		ring = append(append([]Point(nil), ring...), ring[0])
	}
	return &Geometry{Kind: PolygonKind, Points: ring}
}

// String renders the geometry as WKT.
func (g *Geometry) String() string {
	var b strings.Builder
	coords := func() string {
		parts := make([]string, len(g.Points))
		for i, p := range g.Points {
			parts[i] = fmt.Sprintf("%s %s",
				strconv.FormatFloat(p.X, 'g', -1, 64),
				strconv.FormatFloat(p.Y, 'g', -1, 64))
		}
		return strings.Join(parts, ", ")
	}
	switch g.Kind {
	case PointKind:
		fmt.Fprintf(&b, "POINT (%s)", coords())
	case LineStringKind:
		fmt.Fprintf(&b, "LINESTRING (%s)", coords())
	case PolygonKind:
		fmt.Fprintf(&b, "POLYGON ((%s))", coords())
	}
	return b.String()
}

// FromText parses a WKT string into a Geometry (ST_GeomFromText).
func FromText(wkt string) (*Geometry, error) {
	s := strings.TrimSpace(wkt)
	upper := strings.ToUpper(s)
	switch {
	case strings.HasPrefix(upper, "POINT"):
		pts, err := parseCoords(s[len("POINT"):], 1)
		if err != nil {
			return nil, err
		}
		return &Geometry{Kind: PointKind, Points: pts}, nil
	case strings.HasPrefix(upper, "LINESTRING"):
		pts, err := parseCoords(s[len("LINESTRING"):], 1)
		if err != nil {
			return nil, err
		}
		return &Geometry{Kind: LineStringKind, Points: pts}, nil
	case strings.HasPrefix(upper, "POLYGON"):
		pts, err := parseCoords(s[len("POLYGON"):], 2)
		if err != nil {
			return nil, err
		}
		return NewPolygon(pts), nil
	}
	return nil, fmt.Errorf("geo: unsupported WKT %q", wkt)
}

// parseCoords parses "(x y, x y, ...)" with depth levels of parentheses.
func parseCoords(s string, depth int) ([]Point, error) {
	s = strings.TrimSpace(s)
	for i := 0; i < depth; i++ {
		if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
			return nil, fmt.Errorf("geo: malformed WKT coordinates %q", s)
		}
		s = strings.TrimSpace(s[1 : len(s)-1])
	}
	var pts []Point
	for _, pair := range strings.Split(s, ",") {
		fields := strings.Fields(strings.TrimSpace(pair))
		if len(fields) != 2 {
			return nil, fmt.Errorf("geo: malformed WKT coordinate %q", pair)
		}
		x, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("geo: bad X coordinate %q: %v", fields[0], err)
		}
		y, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("geo: bad Y coordinate %q: %v", fields[1], err)
		}
		pts = append(pts, Point{x, y})
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("geo: empty WKT geometry")
	}
	return pts, nil
}

// containsPoint reports whether polygon ring contains p (ray casting;
// boundary points count as contained).
func containsPoint(ring []Point, p Point) bool {
	n := len(ring)
	if n < 4 {
		return false
	}
	for i := 0; i < n-1; i++ {
		if onSegment(ring[i], ring[i+1], p) {
			return true
		}
	}
	inside := false
	for i, j := 0, n-2; i < n-1; j, i = i, i+1 {
		pi, pj := ring[i], ring[j]
		if (pi.Y > p.Y) != (pj.Y > p.Y) {
			xCross := (pj.X-pi.X)*(p.Y-pi.Y)/(pj.Y-pi.Y) + pi.X
			if p.X < xCross {
				inside = !inside
			}
		}
	}
	return inside
}

func onSegment(a, b, p Point) bool {
	cross := (b.X-a.X)*(p.Y-a.Y) - (b.Y-a.Y)*(p.X-a.X)
	if math.Abs(cross) > 1e-12 {
		return false
	}
	return p.X >= math.Min(a.X, b.X)-1e-12 && p.X <= math.Max(a.X, b.X)+1e-12 &&
		p.Y >= math.Min(a.Y, b.Y)-1e-12 && p.Y <= math.Max(a.Y, b.Y)+1e-12
}

// Contains reports whether g spatially contains o (ST_Contains). Supported:
// polygon⊇point, polygon⊇polygon (every vertex contained), polygon⊇line,
// point⊇point.
func Contains(g, o *Geometry) bool {
	if g == nil || o == nil {
		return false
	}
	switch g.Kind {
	case PolygonKind:
		for _, p := range o.Points {
			if !containsPoint(g.Points, p) {
				return false
			}
		}
		return true
	case PointKind:
		return o.Kind == PointKind && g.Points[0] == o.Points[0]
	}
	return false
}

// Intersects reports whether the two geometries share at least one point
// (approximate for line/line: segment intersection tests).
func Intersects(a, b *Geometry) bool {
	if a == nil || b == nil {
		return false
	}
	// Any vertex containment counts.
	if a.Kind == PolygonKind {
		for _, p := range b.Points {
			if containsPoint(a.Points, p) {
				return true
			}
		}
	}
	if b.Kind == PolygonKind {
		for _, p := range a.Points {
			if containsPoint(b.Points, p) {
				return true
			}
		}
	}
	// Segment/segment intersection for the outlines.
	segA, segB := segments(a), segments(b)
	for _, s1 := range segA {
		for _, s2 := range segB {
			if segmentsIntersect(s1[0], s1[1], s2[0], s2[1]) {
				return true
			}
		}
	}
	if a.Kind == PointKind && b.Kind == PointKind {
		return a.Points[0] == b.Points[0]
	}
	return false
}

func segments(g *Geometry) [][2]Point {
	var out [][2]Point
	for i := 0; i+1 < len(g.Points); i++ {
		out = append(out, [2]Point{g.Points[i], g.Points[i+1]})
	}
	return out
}

func segmentsIntersect(p1, p2, p3, p4 Point) bool {
	d1 := cross(p3, p4, p1)
	d2 := cross(p3, p4, p2)
	d3 := cross(p1, p2, p3)
	d4 := cross(p1, p2, p4)
	if ((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
		((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0)) {
		return true
	}
	return (d1 == 0 && onSegment(p3, p4, p1)) ||
		(d2 == 0 && onSegment(p3, p4, p2)) ||
		(d3 == 0 && onSegment(p1, p2, p3)) ||
		(d4 == 0 && onSegment(p1, p2, p4))
}

func cross(a, b, c Point) float64 {
	return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
}

// Distance returns the minimum Euclidean distance between the two
// geometries' outlines/points (0 if they intersect).
func Distance(a, b *Geometry) float64 {
	if Intersects(a, b) {
		return 0
	}
	min := math.Inf(1)
	for _, p := range a.Points {
		for _, s := range segmentsOrSelf(b) {
			if d := pointSegDistance(p, s[0], s[1]); d < min {
				min = d
			}
		}
	}
	for _, p := range b.Points {
		for _, s := range segmentsOrSelf(a) {
			if d := pointSegDistance(p, s[0], s[1]); d < min {
				min = d
			}
		}
	}
	return min
}

func segmentsOrSelf(g *Geometry) [][2]Point {
	if segs := segments(g); len(segs) > 0 {
		return segs
	}
	return [][2]Point{{g.Points[0], g.Points[0]}}
}

func pointSegDistance(p, a, b Point) float64 {
	dx, dy := b.X-a.X, b.Y-a.Y
	lenSq := dx*dx + dy*dy
	t := 0.0
	if lenSq > 0 {
		t = ((p.X-a.X)*dx + (p.Y-a.Y)*dy) / lenSq
		t = math.Max(0, math.Min(1, t))
	}
	cx, cy := a.X+t*dx, a.Y+t*dy
	return math.Hypot(p.X-cx, p.Y-cy)
}

// Area returns the area enclosed by a polygon (0 for other kinds).
func Area(g *Geometry) float64 {
	if g == nil || g.Kind != PolygonKind {
		return 0
	}
	sum := 0.0
	for i := 0; i+1 < len(g.Points); i++ {
		a, b := g.Points[i], g.Points[i+1]
		sum += a.X*b.Y - b.X*a.Y
	}
	return math.Abs(sum) / 2
}

// Envelope returns the bounding box of g as a polygon.
func Envelope(g *Geometry) *Geometry {
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range g.Points {
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	return NewPolygon([]Point{{minX, minY}, {maxX, minY}, {maxX, maxY}, {minX, maxY}})
}
