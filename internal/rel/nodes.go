package rel

import (
	"fmt"
	"strings"

	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// TableScan reads all rows of a table. It is created in the convention of the
// table's adapter (§5: "an operator is created for each table representing a
// scan of the data on that table — the minimal interface an adapter must
// implement").
type TableScan struct {
	base
	Table schema.Table
	// QualifiedName is the schema-qualified path, e.g. ["splunk","orders"].
	QualifiedName []string
}

// NewTableScan creates a scan in the given convention.
func NewTableScan(conv trait.Convention, table schema.Table, qualifiedName []string) *TableScan {
	name := "LogicalTableScan"
	if !trait.SameConvention(conv, trait.Logical) {
		name = conventionOpName(conv, "TableScan")
	}
	return &TableScan{
		base:          newBase(name, trait.NewSet(conv), table.RowType()),
		Table:         table,
		QualifiedName: qualifiedName,
	}
}

func conventionOpName(conv trait.Convention, suffix string) string {
	n := conv.ConventionName()
	if n == "" {
		return "Logical" + suffix
	}
	return strings.ToUpper(n[:1]) + n[1:] + suffix
}

func (s *TableScan) Attrs() string {
	return "table=[" + strings.Join(s.QualifiedName, ".") + "]"
}

func (s *TableScan) WithNewInputs(inputs []Node) Node {
	checkInputs(s.op, len(inputs), 0)
	return s
}

// WithConvention returns a copy of the scan in another convention.
func (s *TableScan) WithConvention(conv trait.Convention) *TableScan {
	return NewTableScan(conv, s.Table, s.QualifiedName)
}

// Filter keeps rows satisfying a boolean condition.
type Filter struct {
	base
	Condition rex.Node
}

// NewFilter creates a logical filter.
func NewFilter(input Node, condition rex.Node) *Filter {
	return newFilter("LogicalFilter", input.Traits().WithConvention(trait.Logical), input, condition)
}

// NewFilterTraits creates a filter with explicit op name and traits (used by
// adapters to create, e.g., a SplunkFilter or CassandraFilter).
func NewFilterTraits(op string, ts trait.Set, input Node, condition rex.Node) *Filter {
	return newFilter(op, ts, input, condition)
}

func newFilter(op string, ts trait.Set, input Node, condition rex.Node) *Filter {
	return &Filter{
		base:      newBase(op, ts, input.RowType(), input),
		Condition: condition,
	}
}

func (f *Filter) Attrs() string { return "condition=[" + f.Condition.String() + "]" }

func (f *Filter) WithNewInputs(inputs []Node) Node {
	checkInputs(f.op, len(inputs), 1)
	return newFilter(f.op, f.traits, inputs[0], f.Condition)
}

// Project computes an output row from expressions over the input row.
type Project struct {
	base
	Exprs []rex.Node
}

// NewProject creates a logical projection with the given output field names.
func NewProject(input Node, exprs []rex.Node, names []string) *Project {
	return NewProjectTraits("LogicalProject", input.Traits().WithConvention(trait.Logical).WithCollation(nil), input, exprs, names)
}

// NewProjectTraits creates a projection with explicit op name and traits.
func NewProjectTraits(op string, ts trait.Set, input Node, exprs []rex.Node, names []string) *Project {
	fields := make([]types.Field, len(exprs))
	for i, e := range exprs {
		name := ""
		if i < len(names) {
			name = names[i]
		}
		if name == "" {
			name = fmt.Sprintf("EXPR$%d", i)
		}
		fields[i] = types.Field{Name: name, Type: e.Type()}
	}
	return &Project{
		base:  newBase(op, ts, types.Row(fields...), input),
		Exprs: exprs,
	}
}

func (p *Project) Attrs() string {
	parts := make([]string, len(p.Exprs))
	for i, e := range p.Exprs {
		parts[i] = p.rowType.Fields[i].Name + "=[" + e.String() + "]"
	}
	return strings.Join(parts, ", ")
}

func (p *Project) FieldNames() []string { return p.rowType.FieldNames() }

func (p *Project) WithNewInputs(inputs []Node) Node {
	checkInputs(p.op, len(inputs), 1)
	return NewProjectTraits(p.op, p.traits, inputs[0], p.Exprs, p.FieldNames())
}

// JoinKind enumerates join types.
type JoinKind int

const (
	InnerJoin JoinKind = iota
	LeftJoin
	RightJoin
	FullJoin
	SemiJoin
	AntiJoin
)

func (k JoinKind) String() string {
	switch k {
	case InnerJoin:
		return "inner"
	case LeftJoin:
		return "left"
	case RightJoin:
		return "right"
	case FullJoin:
		return "full"
	case SemiJoin:
		return "semi"
	case AntiJoin:
		return "anti"
	}
	return "?"
}

// GeneratesNullsOnLeft reports whether left-side columns may be NULL-padded.
func (k JoinKind) GeneratesNullsOnLeft() bool { return k == RightJoin || k == FullJoin }

// GeneratesNullsOnRight reports whether right-side columns may be NULL-padded.
func (k JoinKind) GeneratesNullsOnRight() bool { return k == LeftJoin || k == FullJoin }

// ProjectsRight reports whether right-side columns appear in the output.
func (k JoinKind) ProjectsRight() bool { return k != SemiJoin && k != AntiJoin }

// Join combines two inputs on a condition. The output row is the
// concatenation left ++ right (left only, for semi/anti joins).
type Join struct {
	base
	Kind      JoinKind
	Condition rex.Node
}

// JoinRowType computes the output type of a join.
func JoinRowType(kind JoinKind, left, right Node) *types.Type {
	lf := left.RowType().Fields
	if !kind.ProjectsRight() {
		return types.Row(append([]types.Field(nil), lf...)...)
	}
	rf := right.RowType().Fields
	if kind.GeneratesNullsOnLeft() {
		lf = nullableFields(lf)
	}
	if kind.GeneratesNullsOnRight() {
		rf = nullableFields(rf)
	}
	return types.Row(types.ConcatFields(lf, rf)...)
}

func nullableFields(fs []types.Field) []types.Field {
	out := make([]types.Field, len(fs))
	for i, f := range fs {
		out[i] = types.Field{Name: f.Name, Type: f.Type.WithNullable(true)}
	}
	return out
}

// NewJoin creates a logical join.
func NewJoin(kind JoinKind, left, right Node, condition rex.Node) *Join {
	return NewJoinTraits("LogicalJoin", trait.NewSet(trait.Logical), kind, left, right, condition)
}

// NewJoinTraits creates a join with explicit op name and traits.
func NewJoinTraits(op string, ts trait.Set, kind JoinKind, left, right Node, condition rex.Node) *Join {
	if condition == nil {
		condition = rex.Bool(true)
	}
	return &Join{
		base:      newBase(op, ts, JoinRowType(kind, left, right), left, right),
		Kind:      kind,
		Condition: condition,
	}
}

func (j *Join) Attrs() string {
	return fmt.Sprintf("condition=[%s], joinType=[%s]", j.Condition.String(), j.Kind)
}

func (j *Join) Left() Node  { return j.inputs[0] }
func (j *Join) Right() Node { return j.inputs[1] }

func (j *Join) WithNewInputs(inputs []Node) Node {
	checkInputs(j.op, len(inputs), 2)
	return NewJoinTraits(j.op, j.traits, j.Kind, inputs[0], inputs[1], j.Condition)
}

// Aggregate groups rows by key columns and computes aggregate calls.
// The output row is [group keys..., agg results...].
type Aggregate struct {
	base
	GroupKeys []int
	Calls     []rex.AggCall
}

// AggregateRowType computes the output type of an aggregate.
func AggregateRowType(input Node, groupKeys []int, calls []rex.AggCall) *types.Type {
	inFields := input.RowType().Fields
	fields := make([]types.Field, 0, len(groupKeys)+len(calls))
	for _, k := range groupKeys {
		fields = append(fields, inFields[k])
	}
	for _, c := range calls {
		name := c.Name
		if name == "" {
			name = c.Func.String()
		}
		fields = append(fields, types.Field{Name: name, Type: c.ResultType(inFields)})
	}
	return types.Row(fields...)
}

// NewAggregate creates a logical aggregate.
func NewAggregate(input Node, groupKeys []int, calls []rex.AggCall) *Aggregate {
	return NewAggregateTraits("LogicalAggregate", trait.NewSet(trait.Logical), input, groupKeys, calls)
}

// NewAggregateTraits creates an aggregate with explicit op name and traits.
func NewAggregateTraits(op string, ts trait.Set, input Node, groupKeys []int, calls []rex.AggCall) *Aggregate {
	return &Aggregate{
		base:      newBase(op, ts, AggregateRowType(input, groupKeys, calls), input),
		GroupKeys: groupKeys,
		Calls:     calls,
	}
}

func (a *Aggregate) Attrs() string {
	var b strings.Builder
	b.WriteString("group=[")
	for i, k := range a.GroupKeys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "$%d", k)
	}
	b.WriteString("]")
	for _, c := range a.Calls {
		b.WriteString(", ")
		b.WriteString(c.String())
	}
	return b.String()
}

func (a *Aggregate) WithNewInputs(inputs []Node) Node {
	checkInputs(a.op, len(inputs), 1)
	return NewAggregateTraits(a.op, a.traits, inputs[0], a.GroupKeys, a.Calls)
}

// Sort orders rows and optionally applies OFFSET/FETCH. Fetch < 0 means no
// limit. A Sort with an empty collation is a pure limit.
type Sort struct {
	base
	Collation trait.Collation
	Offset    int64
	Fetch     int64
}

// NewSort creates a logical sort.
func NewSort(input Node, collation trait.Collation, offset, fetch int64) *Sort {
	return NewSortTraits("LogicalSort", trait.NewSet(trait.Logical).WithCollation(collation), input, collation, offset, fetch)
}

// NewSortTraits creates a sort with explicit op name and traits.
func NewSortTraits(op string, ts trait.Set, input Node, collation trait.Collation, offset, fetch int64) *Sort {
	return &Sort{
		base:      newBase(op, ts, input.RowType(), input),
		Collation: collation,
		Offset:    offset,
		Fetch:     fetch,
	}
}

func (s *Sort) Attrs() string {
	parts := []string{"sort=" + s.Collation.String()}
	if s.Offset > 0 {
		parts = append(parts, fmt.Sprintf("offset=%d", s.Offset))
	}
	if s.Fetch >= 0 {
		parts = append(parts, fmt.Sprintf("fetch=%d", s.Fetch))
	}
	return strings.Join(parts, ", ")
}

func (s *Sort) WithNewInputs(inputs []Node) Node {
	checkInputs(s.op, len(inputs), 1)
	return NewSortTraits(s.op, s.traits, inputs[0], s.Collation, s.Offset, s.Fetch)
}

// SetOpKind enumerates set operations.
type SetOpKind int

const (
	UnionOp SetOpKind = iota
	IntersectOp
	MinusOp
)

func (k SetOpKind) String() string {
	switch k {
	case UnionOp:
		return "union"
	case IntersectOp:
		return "intersect"
	case MinusOp:
		return "minus"
	}
	return "?"
}

// SetOp is UNION / INTERSECT / EXCEPT over two or more inputs.
type SetOp struct {
	base
	Kind SetOpKind
	All  bool
}

// NewSetOp creates a logical set operation; all inputs must be
// union-compatible (validated upstream).
func NewSetOp(kind SetOpKind, all bool, inputs ...Node) *SetOp {
	op := "Logical" + strings.ToUpper(kind.String()[:1]) + kind.String()[1:]
	return NewSetOpTraits(op, trait.NewSet(trait.Logical), kind, all, inputs...)
}

// NewSetOpTraits creates a set operation with explicit op name and traits.
func NewSetOpTraits(op string, ts trait.Set, kind SetOpKind, all bool, inputs ...Node) *SetOp {
	// Output type: first input's fields, nullability widened across inputs.
	fields := append([]types.Field(nil), inputs[0].RowType().Fields...)
	for _, in := range inputs[1:] {
		for i, f := range in.RowType().Fields {
			if i < len(fields) && f.Type.Nullable {
				fields[i].Type = fields[i].Type.WithNullable(true)
			}
		}
	}
	return &SetOp{
		base: newBase(op, ts, types.Row(fields...), inputs...),
		Kind: kind,
		All:  all,
	}
}

func (s *SetOp) Attrs() string { return fmt.Sprintf("all=[%v]", s.All) }

func (s *SetOp) WithNewInputs(inputs []Node) Node {
	return NewSetOpTraits(s.op, s.traits, s.Kind, s.All, inputs...)
}

// Values produces a constant set of rows (literal tuples).
type Values struct {
	base
	Tuples [][]rex.Node
}

// NewValues creates a logical Values with the given row type.
func NewValues(rowType *types.Type, tuples [][]rex.Node) *Values {
	return NewValuesTraits("LogicalValues", trait.NewSet(trait.Logical), rowType, tuples)
}

// NewValuesTraits creates a Values with explicit op name and traits.
func NewValuesTraits(op string, ts trait.Set, rowType *types.Type, tuples [][]rex.Node) *Values {
	return &Values{base: newBase(op, ts, rowType), Tuples: tuples}
}

func (v *Values) Attrs() string {
	var b strings.Builder
	b.WriteString("tuples=[")
	for i, t := range v.Tuples {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('{')
		for j, e := range t {
			if j > 0 {
				b.WriteString(", ")
			}
			b.WriteString(e.String())
		}
		b.WriteByte('}')
	}
	b.WriteString("]")
	return b.String()
}

func (v *Values) WithNewInputs(inputs []Node) Node {
	checkInputs(v.op, len(inputs), 0)
	return v
}

// WindowFrame describes the bounds of a window aggregate (§4: the window
// operator "encapsulates the window definition, i.e. upper and lower bound,
// partitioning etc."). Rows=false means RANGE (value-based, over the order
// key). Lo and Hi are signed offsets from the current row measured along the
// sort direction — negative toward the partition start (PRECEDING), positive
// toward its end (FOLLOWING), 0 meaning CURRENT ROW (for RANGE: the current
// row's peer group). ROWS offsets count rows; RANGE offsets are order-key
// units (e.g. interval milliseconds over a rowtime column, §7.2). The
// unbounded flags override the corresponding offset.
type WindowFrame struct {
	Rows        bool
	LoUnbounded bool
	Lo          int64
	HiUnbounded bool
	Hi          int64
}

// DefaultFrame is the implicit frame of an OVER clause with no frame spec:
// RANGE BETWEEN UNBOUNDED PRECEDING AND CURRENT ROW.
func DefaultFrame() WindowFrame { return WindowFrame{LoUnbounded: true} }

func frameBoundString(unbounded bool, off int64, lower bool) string {
	switch {
	case unbounded && lower:
		return "UNBOUNDED PRECEDING"
	case unbounded:
		return "UNBOUNDED FOLLOWING"
	case off < 0:
		return fmt.Sprintf("%d PRECEDING", -off)
	case off > 0:
		return fmt.Sprintf("%d FOLLOWING", off)
	}
	return "CURRENT ROW"
}

func (f WindowFrame) String() string {
	unit := "RANGE"
	if f.Rows {
		unit = "ROWS"
	}
	return fmt.Sprintf("%s BETWEEN %s AND %s", unit,
		frameBoundString(f.LoUnbounded, f.Lo, true),
		frameBoundString(f.HiUnbounded, f.Hi, false))
}

// WindowGroup is one OVER clause shared by one or more aggregate calls.
type WindowGroup struct {
	PartitionKeys []int
	OrderKeys     trait.Collation
	Frame         WindowFrame
	Calls         []rex.AggCall
}

// Window computes windowed aggregates; output = input fields ++ one field
// per aggregate call across all groups.
type Window struct {
	base
	Groups []WindowGroup
}

// NewWindow creates a logical window operator.
func NewWindow(input Node, groups []WindowGroup) *Window {
	return NewWindowTraits("LogicalWindow", trait.NewSet(trait.Logical), input, groups)
}

// NewWindowTraits creates a window with explicit op name and traits.
func NewWindowTraits(op string, ts trait.Set, input Node, groups []WindowGroup) *Window {
	fields := append([]types.Field(nil), input.RowType().Fields...)
	for _, g := range groups {
		for _, c := range g.Calls {
			name := c.Name
			if name == "" {
				name = c.Func.String()
			}
			fields = append(fields, types.Field{
				Name: name,
				Type: c.ResultType(input.RowType().Fields).WithNullable(true),
			})
		}
	}
	return &Window{
		base:   newBase(op, ts, types.Row(fields...), input),
		Groups: groups,
	}
}

func (w *Window) Attrs() string {
	var b strings.Builder
	for gi, g := range w.Groups {
		if gi > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "partition=%v order=%s frame=[%s] calls=[", g.PartitionKeys, g.OrderKeys, g.Frame)
		for i, c := range g.Calls {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.String())
		}
		b.WriteString("]")
	}
	return b.String()
}

func (w *Window) WithNewInputs(inputs []Node) Node {
	checkInputs(w.op, len(inputs), 1)
	return NewWindowTraits(w.op, w.traits, inputs[0], w.Groups)
}

// Converter changes only the convention of its input — the converter
// interface of §4 ("relational operators can implement a converter interface
// that indicates how to convert traits of an expression from one value to
// another"). Concrete converters (e.g. splunk-to-enumerable) embed it.
type Converter struct {
	base
	// FromConv is the input's convention; the target is Traits().Convention.
	FromConv trait.Convention
}

// NewConverter creates a converter from the input's convention to `to`.
func NewConverter(op string, to trait.Convention, input Node) *Converter {
	return &Converter{
		base:     newBase(op, input.Traits().WithConvention(to), input.RowType(), input),
		FromConv: input.Traits().Convention,
	}
}

func (c *Converter) Attrs() string {
	return fmt.Sprintf("from=[%s]", c.FromConv.ConventionName())
}

func (c *Converter) WithNewInputs(inputs []Node) Node {
	checkInputs(c.op, len(inputs), 1)
	return NewConverter(c.op, c.traits.Convention, inputs[0])
}

// TableModify applies INSERT (the only DML in this reproduction, §9 DDL/DML
// future work) to a modifiable table; it returns a single row with the count
// of affected rows.
type TableModify struct {
	base
	Table         schema.ModifiableTable
	QualifiedName []string
}

// NewTableModify creates an insert node over input rows.
func NewTableModify(table schema.ModifiableTable, qualifiedName []string, input Node) *TableModify {
	rt := types.Row(types.Field{Name: "ROWCOUNT", Type: types.BigInt})
	return &TableModify{
		base:          newBase("LogicalTableModify", trait.NewSet(trait.Logical), rt, input),
		Table:         table,
		QualifiedName: qualifiedName,
	}
}

func (m *TableModify) Attrs() string {
	return "table=[" + strings.Join(m.QualifiedName, ".") + "], operation=[INSERT]"
}

func (m *TableModify) WithNewInputs(inputs []Node) Node {
	checkInputs(m.op, len(inputs), 1)
	return NewTableModify(m.Table, m.QualifiedName, inputs[0])
}
