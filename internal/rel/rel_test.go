package rel_test

import (
	"strings"
	"testing"

	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

func scan() *rel.TableScan {
	t := schema.NewMemTable("t", types.Row(
		types.Field{Name: "a", Type: types.BigInt},
		types.Field{Name: "b", Type: types.Varchar},
	), nil)
	return rel.NewTableScan(trait.Logical, t, []string{"t"})
}

func TestDigestDistinguishesAndUnifies(t *testing.T) {
	s := scan()
	cond := rex.NewCall(rex.OpGreater, rex.NewInputRef(0, types.BigInt), rex.Int(1))
	f1 := rel.NewFilter(s, cond)
	f2 := rel.NewFilter(s, cond)
	if rel.Digest(f1) != rel.Digest(f2) {
		t.Error("identical trees must share digests")
	}
	f3 := rel.NewFilter(s, rex.NewCall(rex.OpGreater, rex.NewInputRef(0, types.BigInt), rex.Int(2)))
	if rel.Digest(f1) == rel.Digest(f3) {
		t.Error("different conditions must differ")
	}
	// Convention is part of the digest.
	sEnum := s.WithConvention(trait.Enumerable)
	if rel.Digest(s) == rel.Digest(sEnum) {
		t.Error("conventions must distinguish digests")
	}
}

func TestJoinRowTypes(t *testing.T) {
	l, r := scan(), scan()
	inner := rel.NewJoin(rel.InnerJoin, l, r, rex.Bool(true))
	if rel.FieldCount(inner) != 4 {
		t.Errorf("inner width: %d", rel.FieldCount(inner))
	}
	semi := rel.NewJoin(rel.SemiJoin, l, r, rex.Bool(true))
	if rel.FieldCount(semi) != 2 {
		t.Errorf("semi width: %d", rel.FieldCount(semi))
	}
	left := rel.NewJoin(rel.LeftJoin, l, r, rex.Bool(true))
	if !left.RowType().Fields[2].Type.Nullable {
		t.Error("left join right side must be nullable")
	}
	full := rel.NewJoin(rel.FullJoin, l, r, rex.Bool(true))
	if !full.RowType().Fields[0].Type.Nullable {
		t.Error("full join left side must be nullable")
	}
}

func TestAggregateRowType(t *testing.T) {
	agg := rel.NewAggregate(scan(), []int{1}, []rex.AggCall{
		rex.NewAggCall(rex.AggCount, nil, false, "c"),
		rex.NewAggCall(rex.AggMin, []int{0}, false, "m"),
	})
	fields := agg.RowType().Fields
	if len(fields) != 3 || fields[0].Name != "b" || fields[1].Name != "c" {
		t.Errorf("fields: %v", fields)
	}
	if fields[1].Type.Kind != types.BigIntKind {
		t.Errorf("count type: %s", fields[1].Type)
	}
	if !fields[2].Type.Nullable {
		t.Error("MIN result should be nullable")
	}
}

func TestWithNewInputsPreservesShape(t *testing.T) {
	s := scan()
	f := rel.NewFilter(s, rex.Bool(true))
	p := rel.NewProject(f, []rex.Node{rex.NewInputRef(0, types.BigInt)}, []string{"a"})
	s2 := scan()
	f2 := f.WithNewInputs([]rel.Node{s2})
	if f2.(*rel.Filter).Condition != f.Condition {
		t.Error("condition lost")
	}
	p2 := p.WithNewInputs([]rel.Node{f2})
	if rel.Digest(p2) != rel.Digest(p) {
		t.Error("rebuilt tree digest changed")
	}
}

func TestExplainAndWalk(t *testing.T) {
	f := rel.NewFilter(scan(), rex.Bool(true))
	text := rel.Explain(f)
	if !strings.Contains(text, "LogicalFilter") || !strings.Contains(text, "LogicalTableScan") {
		t.Errorf("explain: %s", text)
	}
	if rel.Count(f) != 2 {
		t.Errorf("count: %d", rel.Count(f))
	}
	seen := 0
	rel.Walk(f, func(rel.Node) bool { seen++; return true })
	if seen != 2 {
		t.Errorf("walk: %d", seen)
	}
	out := rel.TransformUp(f, func(n rel.Node) rel.Node { return n })
	if out != f {
		t.Error("identity transform should preserve node")
	}
}

func TestWindowRowType(t *testing.T) {
	w := rel.NewWindow(scan(), []rel.WindowGroup{{
		OrderKeys: trait.Collation{{Field: 0, Direction: trait.Ascending}},
		Frame:     rel.DefaultFrame(),
		Calls:     []rex.AggCall{rex.NewAggCall(rex.AggSum, []int{0}, false, "s")},
	}})
	if rel.FieldCount(w) != 3 {
		t.Errorf("window width: %d", rel.FieldCount(w))
	}
	if !strings.Contains(w.Attrs(), "UNBOUNDED PRECEDING") {
		t.Errorf("frame attrs: %s", w.Attrs())
	}
}

func TestValuesAndSetOpDigests(t *testing.T) {
	rt := types.Row(types.Field{Name: "x", Type: types.BigInt})
	v1 := rel.NewValues(rt, [][]rex.Node{{rex.Int(1)}})
	v2 := rel.NewValues(rt, [][]rex.Node{{rex.Int(2)}})
	if rel.Digest(v1) == rel.Digest(v2) {
		t.Error("values digests must include tuples")
	}
	u := rel.NewSetOp(rel.UnionOp, true, v1, v2)
	if u.Kind != rel.UnionOp || len(u.Inputs()) != 2 {
		t.Errorf("setop: %+v", u)
	}
}
