package rel

// Streaming relational operators (§7.2 of the paper): a continuous query
// over a time-ordered stream is planned as a StreamAggregate — one node
// carrying the group-window specification (TUMBLE/HOP/SESSION over the
// rowtime column), the watermark policy (bounded out-of-orderness), the
// grouping keys and the aggregate calls. The executor maintains per-
// (window, key) incremental state and emits finished windows as the
// watermark advances; the planner treats the node like any other logical
// operator (digests, traits, conversion rules).

import (
	"fmt"
	"strings"

	"calcite/internal/rex"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// WindowKind enumerates the group-window functions of §7.2.
type WindowKind int

const (
	// TumbleWindow assigns each row to exactly one fixed [n·size, (n+1)·size)
	// window.
	TumbleWindow WindowKind = iota
	// HopWindow assigns each row to every window of length Size starting each
	// Slide period that contains it (overlapping windows).
	HopWindow
	// SessionWindow groups rows of one key separated by gaps < Gap into one
	// data-dependent window.
	SessionWindow
)

func (k WindowKind) String() string {
	switch k {
	case TumbleWindow:
		return "TUMBLE"
	case HopWindow:
		return "HOP"
	case SessionWindow:
		return "SESSION"
	}
	return "?"
}

// StreamWindow is the window specification of a streaming aggregation.
type StreamWindow struct {
	Kind WindowKind
	// RowtimeCol is the input ordinal of the monotonic event-time column
	// (epoch milliseconds).
	RowtimeCol int
	// SizeMs is the window length (TUMBLE, HOP).
	SizeMs int64
	// SlideMs is the hop period (HOP; equals SizeMs for TUMBLE).
	SlideMs int64
	// GapMs is the session inactivity gap (SESSION).
	GapMs int64
}

func (w StreamWindow) String() string {
	switch w.Kind {
	case HopWindow:
		return fmt.Sprintf("HOP($%d, slide=%d, size=%d)", w.RowtimeCol, w.SlideMs, w.SizeMs)
	case SessionWindow:
		return fmt.Sprintf("SESSION($%d, gap=%d)", w.RowtimeCol, w.GapMs)
	}
	return fmt.Sprintf("TUMBLE($%d, size=%d)", w.RowtimeCol, w.SizeMs)
}

// StreamAggregate is the continuous windowed aggregation over a stream.
// The output row is [window_start, window_end, group keys…, agg results…].
type StreamAggregate struct {
	base
	Window StreamWindow
	// LatenessMs is the watermark policy: the bounded out-of-orderness the
	// operator tolerates. The watermark trails the maximum rowtime seen by
	// this many milliseconds; a window is emitted once the watermark passes
	// its end, and rows arriving after every window containing them has been
	// emitted are dropped as late.
	LatenessMs int64
	// GroupKeys are the input ordinals of the non-window grouping columns.
	GroupKeys []int
	Calls     []rex.AggCall
}

// StreamAggregateRowType computes the output type: window bounds, then the
// key columns, then one column per aggregate call.
func StreamAggregateRowType(input Node, groupKeys []int, calls []rex.AggCall) *types.Type {
	inFields := input.RowType().Fields
	fields := make([]types.Field, 0, 2+len(groupKeys)+len(calls))
	fields = append(fields,
		types.Field{Name: "window_start", Type: types.Timestamp},
		types.Field{Name: "window_end", Type: types.Timestamp})
	for _, k := range groupKeys {
		fields = append(fields, inFields[k])
	}
	for _, c := range calls {
		name := c.Name
		if name == "" {
			name = c.Func.String()
		}
		fields = append(fields, types.Field{Name: name, Type: c.ResultType(inFields)})
	}
	return types.Row(fields...)
}

// NewStreamAggregate creates a logical streaming aggregation.
func NewStreamAggregate(input Node, win StreamWindow, latenessMs int64, groupKeys []int, calls []rex.AggCall) *StreamAggregate {
	return NewStreamAggregateTraits("LogicalStreamAggregate", trait.NewSet(trait.Logical),
		input, win, latenessMs, groupKeys, calls)
}

// NewStreamAggregateTraits creates a streaming aggregation with explicit op
// name and traits.
func NewStreamAggregateTraits(op string, ts trait.Set, input Node, win StreamWindow, latenessMs int64, groupKeys []int, calls []rex.AggCall) *StreamAggregate {
	return &StreamAggregate{
		base:       newBase(op, ts, StreamAggregateRowType(input, groupKeys, calls), input),
		Window:     win,
		LatenessMs: latenessMs,
		GroupKeys:  groupKeys,
		Calls:      calls,
	}
}

func (a *StreamAggregate) Attrs() string {
	var b strings.Builder
	b.WriteString("window=[")
	b.WriteString(a.Window.String())
	b.WriteString("]")
	if a.LatenessMs > 0 {
		fmt.Fprintf(&b, ", lateness=%dms", a.LatenessMs)
	}
	b.WriteString(", group=[")
	for i, k := range a.GroupKeys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "$%d", k)
	}
	b.WriteString("]")
	for _, c := range a.Calls {
		b.WriteString(", ")
		b.WriteString(c.String())
	}
	return b.String()
}

func (a *StreamAggregate) WithNewInputs(inputs []Node) Node {
	checkInputs(a.op, len(inputs), 1)
	return NewStreamAggregateTraits(a.op, a.traits, inputs[0], a.Window, a.LatenessMs, a.GroupKeys, a.Calls)
}
