// Package rel implements the relational algebra at the core of the framework
// (§4 of the paper). A query is represented as a tree of relational operators
// (Node). Every node carries a trait set describing its physical properties
// (calling convention, collation); logical and physical operators share the
// same representation and differ only in traits, exactly as in Calcite.
//
// Node digests — canonical strings over the operator, its attributes and its
// input digests — drive duplicate detection in the cost-based planner (§6).
package rel

import (
	"fmt"
	"strings"

	"calcite/internal/trait"
	"calcite/internal/types"
)

// Node is a relational expression.
type Node interface {
	// Op returns the operator name for display and digesting, e.g.
	// "LogicalFilter" or "EnumerableHashJoin".
	Op() string
	// Inputs returns the child expressions.
	Inputs() []Node
	// RowType returns the type of the rows produced (a ROW type).
	RowType() *types.Type
	// Traits returns the node's physical traits.
	Traits() trait.Set
	// Attrs renders the node's own attributes (no inputs) for digests and
	// EXPLAIN, e.g. "condition=[>($1, 25)]".
	Attrs() string
	// WithNewInputs returns a copy of the node with the inputs replaced.
	// len(inputs) must match len(Inputs()).
	WithNewInputs(inputs []Node) Node
}

// Wrapped is implemented by physical operators that wrap a logical
// prototype; Unwrap returns an equivalent logical node with the same inputs.
// The metadata layer uses it to derive logical properties (row counts,
// collations) of physical operators it does not know about.
type Wrapped interface {
	Unwrap() Node
}

// Synthetic marks physical operators materialized after optimization —
// exchanges, partition sources, partial-aggregation stages inserted by the
// parallel rewrite. They have no counterpart in the optimized plan, so the
// trace layer skips them when computing stable operator path ids: a
// synthetic node passes its position in the optimized tree through to its
// (single) input unchanged.
type Synthetic interface {
	SyntheticNode()
}

// Digest returns the canonical digest of the subtree rooted at n. Two nodes
// with equal digests produce the same multiset of rows.
func Digest(n Node) string {
	var b strings.Builder
	writeDigest(n, &b)
	return b.String()
}

func writeDigest(n Node, b *strings.Builder) {
	b.WriteString(n.Op())
	conv := n.Traits().Convention
	if conv != nil && !trait.SameConvention(conv, trait.Logical) {
		b.WriteByte('.')
		b.WriteString(conv.ConventionName())
	}
	if a := n.Attrs(); a != "" {
		b.WriteByte('{')
		b.WriteString(a)
		b.WriteByte('}')
	}
	inputs := n.Inputs()
	if len(inputs) > 0 {
		b.WriteByte('(')
		for i, in := range inputs {
			if i > 0 {
				b.WriteByte(',')
			}
			writeDigest(in, b)
		}
		b.WriteByte(')')
	}
}

// Explain renders the subtree as an indented multi-line plan, the format
// used by EXPLAIN and by the paper-figure reproductions.
func Explain(n Node) string {
	return ExplainAnnotated(n, nil)
}

// ExplainAnnotated renders the subtree like Explain, appending the result of
// annotate (when non-nil and non-empty) to each node's line. The connection
// layer uses it to surface the optimizer's estimated row counts and costs in
// EXPLAIN output.
func ExplainAnnotated(n Node, annotate func(Node) string) string {
	var b strings.Builder
	explain(n, 0, &b, annotate)
	return b.String()
}

func explain(n Node, depth int, b *strings.Builder, annotate func(Node) string) {
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(n.Op())
	var parts []string
	if a := n.Attrs(); a != "" {
		parts = append(parts, a)
	}
	conv := n.Traits().Convention
	if conv != nil && !trait.SameConvention(conv, trait.Logical) {
		parts = append(parts, "convention="+conv.ConventionName())
	}
	if len(parts) > 0 {
		b.WriteString("(" + strings.Join(parts, ", ") + ")")
	}
	if annotate != nil {
		if extra := annotate(n); extra != "" {
			b.WriteString(": ")
			b.WriteString(extra)
		}
	}
	b.WriteByte('\n')
	for _, in := range n.Inputs() {
		explain(in, depth+1, b, annotate)
	}
}

// Walk visits n and all descendants pre-order; visit returns false to prune.
func Walk(n Node, visit func(Node) bool) {
	if n == nil || !visit(n) {
		return
	}
	for _, in := range n.Inputs() {
		Walk(in, visit)
	}
}

// Count returns the number of nodes in the subtree.
func Count(n Node) int {
	c := 0
	Walk(n, func(Node) bool { c++; return true })
	return c
}

// TransformUp rewrites the tree bottom-up: fn is applied to each node after
// its children have been rewritten.
func TransformUp(n Node, fn func(Node) Node) Node {
	inputs := n.Inputs()
	if len(inputs) > 0 {
		newInputs := make([]Node, len(inputs))
		changed := false
		for i, in := range inputs {
			newInputs[i] = TransformUp(in, fn)
			if newInputs[i] != in {
				changed = true
			}
		}
		if changed {
			n = n.WithNewInputs(newInputs)
		}
	}
	return fn(n)
}

// FieldCount returns the number of output fields of n.
func FieldCount(n Node) int { return len(n.RowType().Fields) }

// base carries the pieces every operator shares.
type base struct {
	op      string
	inputs  []Node
	rowType *types.Type
	traits  trait.Set
}

func newBase(op string, traits trait.Set, rowType *types.Type, inputs ...Node) base {
	return base{op: op, inputs: inputs, rowType: rowType, traits: traits}
}

func (b *base) Op() string           { return b.op }
func (b *base) Inputs() []Node       { return b.inputs }
func (b *base) RowType() *types.Type { return b.rowType }
func (b *base) Traits() trait.Set    { return b.traits }

func checkInputs(op string, got, want int) {
	if got != want {
		panic(fmt.Sprintf("rel: %s requires %d inputs, got %d", op, want, got))
	}
}
