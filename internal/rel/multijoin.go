package rel

import (
	"strings"

	"calcite/internal/rex"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// MultiJoin is a flattened n-way inner join: the intermediate form the
// join-order enumeration works on (Calcite's MultiJoin / LoptMultiJoin
// pair). JoinToMultiJoinRule collapses trees of binary inner joins into one
// MultiJoin; LoptOptimizeJoinRule expands it back into a binary join tree
// ordered by estimated cardinalities. The output row is the concatenation of
// the factor rows in input order, and Conjuncts — the accumulated join
// conditions — reference columns in that concatenated coordinate space.
//
// MultiJoin is a planning-only operator: it never survives into a physical
// plan, because the ordering rule rewrites every occurrence.
type MultiJoin struct {
	base
	Conjuncts []rex.Node
}

// NewMultiJoin creates a MultiJoin over the given factors.
func NewMultiJoin(factors []Node, conjuncts []rex.Node) *MultiJoin {
	var fields []types.Field
	for _, f := range factors {
		fields = append(fields, f.RowType().Fields...)
	}
	return &MultiJoin{
		base:      newBase("MultiJoin", trait.NewSet(trait.Logical), types.Row(fields...), factors...),
		Conjuncts: conjuncts,
	}
}

func (m *MultiJoin) Attrs() string {
	parts := make([]string, len(m.Conjuncts))
	for i, c := range m.Conjuncts {
		parts[i] = c.String()
	}
	return "conjuncts=[" + strings.Join(parts, " AND ") + "]"
}

func (m *MultiJoin) WithNewInputs(inputs []Node) Node {
	checkInputs(m.op, len(inputs), len(m.inputs))
	return NewMultiJoin(inputs, m.Conjuncts)
}
