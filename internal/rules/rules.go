// Package rules implements the built-in planner rule library (§6 of the
// paper: "Calcite includes several hundred optimization rules"; this
// reproduction implements the canonical core — transposes, merges, pruning,
// expression reduction, join reordering — including FilterIntoJoinRule, the
// worked example of Figure 4). Adapter-specific pushdown rules live with
// their adapters.
package rules

import (
	"calcite/internal/plan"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// logical matches nodes of type T in the logical convention.
func logical[T rel.Node](children ...*plan.Operand) *plan.Operand {
	return plan.MatchNode(func(n rel.Node) bool {
		if _, ok := n.(T); !ok {
			return false
		}
		return trait.SameConvention(n.Traits().Convention, trait.Logical)
	}, children...)
}

// DefaultLogicalRules returns the standard logical rewrite set applied to
// every query before physical planning.
func DefaultLogicalRules() []plan.Rule {
	return []plan.Rule{
		FilterIntoJoinRule(),
		FilterProjectTransposeRule(),
		FilterMergeRule(),
		FilterAggregateTransposeRule(),
		FilterSetOpTransposeRule(),
		ProjectMergeRule(),
		ProjectRemoveRule(),
		FilterReduceExpressionsRule(),
		ProjectReduceExpressionsRule(),
		JoinReduceExpressionsRule(),
		PruneEmptyFilterRule(),
		PruneEmptyProjectRule(),
		PruneEmptyJoinRule(),
		PruneEmptySortRule(),
		PruneEmptyAggregateRule(),
		PruneEmptyUnionBranchRule(),
		SortRemoveRule(),
		SortProjectTransposeRule(),
		LimitOverSortRule(),
		UnionMergeRule(),
		AggregateRemoveRule(),
		AggregateProjectMergeRule(),
	}
}

// JoinReorderRules returns the rules exploring the join-order space
// (commute + associate), used by the cost-based planner experiments (E7).
func JoinReorderRules() []plan.Rule {
	return []plan.Rule{JoinCommuteRule(), JoinAssociateRule()}
}

// FilterIntoJoinRule pushes a Filter below a Join — the rule of Figure 4.
// Conjuncts that reference only one join input move to that input; for inner
// joins the remaining conjuncts merge into the join condition. "This
// optimization can significantly reduce query execution time since we do not
// need to perform the join for rows which do [not] match the predicate" (§6).
func FilterIntoJoinRule() plan.Rule {
	return &plan.FuncRule{
		Name: "FilterIntoJoinRule",
		Op:   logical[*rel.Filter](logical[*rel.Join]()),
		Fire: func(call *plan.Call) {
			filter := call.Rel(0).(*rel.Filter)
			join := call.Rel(1).(*rel.Join)
			nLeft := rel.FieldCount(join.Left())

			var leftConds, rightConds, joinConds, aboveConds []rex.Node
			for _, term := range rex.Conjuncts(filter.Condition) {
				refs := rex.InputBitmap(term)
				onlyLeft, onlyRight := true, true
				for i := range refs {
					if i >= nLeft {
						onlyLeft = false
					} else {
						onlyRight = false
					}
				}
				switch {
				case onlyLeft && !join.Kind.GeneratesNullsOnLeft():
					leftConds = append(leftConds, term)
				case onlyRight && !join.Kind.GeneratesNullsOnRight() && join.Kind.ProjectsRight():
					rightConds = append(rightConds, rex.Shift(term, -nLeft))
				case join.Kind == rel.InnerJoin:
					joinConds = append(joinConds, term)
				default:
					aboveConds = append(aboveConds, term)
				}
			}
			if len(leftConds) == 0 && len(rightConds) == 0 && len(joinConds) == 0 {
				return // nothing to push
			}
			left, right := join.Left(), join.Right()
			if len(leftConds) > 0 {
				left = rel.NewFilter(left, rex.And(leftConds...))
			}
			if len(rightConds) > 0 {
				right = rel.NewFilter(right, rex.And(rightConds...))
			}
			cond := join.Condition
			if len(joinConds) > 0 {
				cond = rex.Simplify(rex.And(append([]rex.Node{cond}, joinConds...)...))
			}
			var result rel.Node = rel.NewJoin(join.Kind, left, right, cond)
			if len(aboveConds) > 0 {
				result = rel.NewFilter(result, rex.And(aboveConds...))
			}
			call.Transform(result)
		},
	}
}

// FilterProjectTransposeRule pushes a Filter below a Project by substituting
// the project expressions into the condition.
func FilterProjectTransposeRule() plan.Rule {
	return &plan.FuncRule{
		Name: "FilterProjectTransposeRule",
		Op:   logical[*rel.Filter](logical[*rel.Project]()),
		Fire: func(call *plan.Call) {
			filter := call.Rel(0).(*rel.Filter)
			project := call.Rel(1).(*rel.Project)
			newCond := rex.Substitute(filter.Condition, project.Exprs)
			call.Transform(project.WithNewInputs([]rel.Node{
				rel.NewFilter(project.Inputs()[0], newCond),
			}))
		},
	}
}

// FilterMergeRule combines stacked Filters into one conjunction.
func FilterMergeRule() plan.Rule {
	return &plan.FuncRule{
		Name: "FilterMergeRule",
		Op:   logical[*rel.Filter](logical[*rel.Filter]()),
		Fire: func(call *plan.Call) {
			top := call.Rel(0).(*rel.Filter)
			bottom := call.Rel(1).(*rel.Filter)
			call.Transform(rel.NewFilter(bottom.Inputs()[0],
				rex.And(bottom.Condition, top.Condition)))
		},
	}
}

// ProjectMergeRule collapses stacked Projects by substitution.
func ProjectMergeRule() plan.Rule {
	return &plan.FuncRule{
		Name: "ProjectMergeRule",
		Op:   logical[*rel.Project](logical[*rel.Project]()),
		Fire: func(call *plan.Call) {
			top := call.Rel(0).(*rel.Project)
			bottom := call.Rel(1).(*rel.Project)
			exprs := make([]rex.Node, len(top.Exprs))
			for i, e := range top.Exprs {
				exprs[i] = rex.Substitute(e, bottom.Exprs)
			}
			call.Transform(rel.NewProject(bottom.Inputs()[0], exprs, top.FieldNames()))
		},
	}
}

// ProjectRemoveRule drops identity projections (a pure field-preserving
// Project is a no-op).
func ProjectRemoveRule() plan.Rule {
	return &plan.FuncRule{
		Name: "ProjectRemoveRule",
		Op:   logical[*rel.Project](),
		Fire: func(call *plan.Call) {
			p := call.Rel(0).(*rel.Project)
			input := p.Inputs()[0]
			if !rex.IsIdentityProjection(p.Exprs, rel.FieldCount(input)) {
				return
			}
			// Identity also requires matching field names, otherwise the
			// projection performs a rename that consumers may rely on for
			// output labeling. Positional execution is unaffected, so for
			// planning purposes the child is equivalent.
			call.Transform(input)
		},
	}
}

// FilterAggregateTransposeRule pushes a Filter on group keys below the
// Aggregate.
func FilterAggregateTransposeRule() plan.Rule {
	return &plan.FuncRule{
		Name: "FilterAggregateTransposeRule",
		Op:   logical[*rel.Filter](logical[*rel.Aggregate]()),
		Fire: func(call *plan.Call) {
			filter := call.Rel(0).(*rel.Filter)
			agg := call.Rel(1).(*rel.Aggregate)
			// Every referenced output must be a group key.
			mapping := map[int]int{}
			for out, in := range agg.GroupKeys {
				mapping[out] = in
			}
			var pushed, kept []rex.Node
			for _, term := range rex.Conjuncts(filter.Condition) {
				ok := true
				for ref := range rex.InputBitmap(term) {
					if _, isKey := mapping[ref]; !isKey {
						ok = false
						break
					}
				}
				if ok {
					pushed = append(pushed, rex.Remap(term, mapping))
				} else {
					kept = append(kept, term)
				}
			}
			if len(pushed) == 0 {
				return
			}
			var result rel.Node = agg.WithNewInputs([]rel.Node{
				rel.NewFilter(agg.Inputs()[0], rex.And(pushed...)),
			})
			if len(kept) > 0 {
				result = rel.NewFilter(result, rex.And(kept...))
			}
			call.Transform(result)
		},
	}
}

// FilterSetOpTransposeRule pushes a Filter into every branch of a set
// operation.
func FilterSetOpTransposeRule() plan.Rule {
	return &plan.FuncRule{
		Name: "FilterSetOpTransposeRule",
		Op:   logical[*rel.Filter](logical[*rel.SetOp]()),
		Fire: func(call *plan.Call) {
			filter := call.Rel(0).(*rel.Filter)
			setop := call.Rel(1).(*rel.SetOp)
			inputs := make([]rel.Node, len(setop.Inputs()))
			for i, in := range setop.Inputs() {
				inputs[i] = rel.NewFilter(in, filter.Condition)
			}
			call.Transform(setop.WithNewInputs(inputs))
		},
	}
}

// UnionMergeRule flattens nested unions with the same ALL-ness.
func UnionMergeRule() plan.Rule {
	return &plan.FuncRule{
		Name: "UnionMergeRule",
		Op:   logical[*rel.SetOp](),
		Fire: func(call *plan.Call) {
			u := call.Rel(0).(*rel.SetOp)
			if u.Kind != rel.UnionOp {
				return
			}
			var flat []rel.Node
			changed := false
			for _, in := range u.Inputs() {
				if cu, ok := in.(*rel.SetOp); ok && cu.Kind == rel.UnionOp && cu.All == u.All &&
					trait.SameConvention(cu.Traits().Convention, trait.Logical) {
					flat = append(flat, cu.Inputs()...)
					changed = true
				} else {
					flat = append(flat, in)
				}
			}
			if changed {
				call.Transform(rel.NewSetOp(rel.UnionOp, u.All, flat...))
			}
		},
	}
}

// FilterReduceExpressionsRule simplifies filter conditions; a constant TRUE
// filter becomes its input and a constant FALSE filter becomes empty Values.
func FilterReduceExpressionsRule() plan.Rule {
	return &plan.FuncRule{
		Name: "FilterReduceExpressionsRule",
		Op:   logical[*rel.Filter](),
		Fire: func(call *plan.Call) {
			f := call.Rel(0).(*rel.Filter)
			simplified := rex.Simplify(f.Condition)
			switch {
			case rex.IsAlwaysTrue(simplified):
				call.Transform(f.Inputs()[0])
			case rex.IsAlwaysFalse(simplified):
				call.Transform(rel.NewValues(f.RowType(), nil))
			case simplified.String() != f.Condition.String():
				call.Transform(rel.NewFilter(f.Inputs()[0], simplified))
			}
		},
	}
}

// ProjectReduceExpressionsRule simplifies projection expressions.
func ProjectReduceExpressionsRule() plan.Rule {
	return &plan.FuncRule{
		Name: "ProjectReduceExpressionsRule",
		Op:   logical[*rel.Project](),
		Fire: func(call *plan.Call) {
			p := call.Rel(0).(*rel.Project)
			exprs := make([]rex.Node, len(p.Exprs))
			changed := false
			for i, e := range p.Exprs {
				exprs[i] = rex.Simplify(e)
				if exprs[i].String() != e.String() {
					changed = true
				}
			}
			if changed {
				call.Transform(rel.NewProject(p.Inputs()[0], exprs, p.FieldNames()))
			}
		},
	}
}

// JoinReduceExpressionsRule simplifies join conditions.
func JoinReduceExpressionsRule() plan.Rule {
	return &plan.FuncRule{
		Name: "JoinReduceExpressionsRule",
		Op:   logical[*rel.Join](),
		Fire: func(call *plan.Call) {
			j := call.Rel(0).(*rel.Join)
			simplified := rex.Simplify(j.Condition)
			if simplified.String() != j.Condition.String() {
				call.Transform(rel.NewJoin(j.Kind, j.Left(), j.Right(), simplified))
			}
		},
	}
}

// isEmptyValues recognizes the canonical empty relation.
func isEmptyValues(n rel.Node) bool {
	v, ok := n.(*rel.Values)
	return ok && len(v.Tuples) == 0
}

func emptyOf(t *types.Type) rel.Node { return rel.NewValues(t, nil) }

// PruneEmptyFilterRule: Filter(empty) -> empty.
func PruneEmptyFilterRule() plan.Rule {
	return pruneSingleInput("PruneEmptyFilterRule", logical[*rel.Filter](logical[*rel.Values]()))
}

// PruneEmptyProjectRule: Project(empty) -> empty.
func PruneEmptyProjectRule() plan.Rule {
	return pruneSingleInput("PruneEmptyProjectRule", logical[*rel.Project](logical[*rel.Values]()))
}

// PruneEmptySortRule: Sort(empty) -> empty.
func PruneEmptySortRule() plan.Rule {
	return pruneSingleInput("PruneEmptySortRule", logical[*rel.Sort](logical[*rel.Values]()))
}

func pruneSingleInput(name string, op *plan.Operand) plan.Rule {
	return &plan.FuncRule{
		Name: name,
		Op:   op,
		Fire: func(call *plan.Call) {
			if isEmptyValues(call.Rel(1)) {
				call.Transform(emptyOf(call.Rel(0).RowType()))
			}
		},
	}
}

// PruneEmptyAggregateRule: grouped Aggregate over empty input -> empty (a
// global aggregate still returns one row and is preserved).
func PruneEmptyAggregateRule() plan.Rule {
	return &plan.FuncRule{
		Name: "PruneEmptyAggregateRule",
		Op:   logical[*rel.Aggregate](logical[*rel.Values]()),
		Fire: func(call *plan.Call) {
			agg := call.Rel(0).(*rel.Aggregate)
			if len(agg.GroupKeys) > 0 && isEmptyValues(call.Rel(1)) {
				call.Transform(emptyOf(agg.RowType()))
			}
		},
	}
}

// PruneEmptyJoinRule: inner/semi join with an empty input -> empty.
func PruneEmptyJoinRule() plan.Rule {
	return &plan.FuncRule{
		Name: "PruneEmptyJoinRule",
		Op:   logical[*rel.Join](),
		Fire: func(call *plan.Call) {
			j := call.Rel(0).(*rel.Join)
			leftEmpty := isEmptyValues(j.Left())
			rightEmpty := isEmptyValues(j.Right())
			switch j.Kind {
			case rel.InnerJoin, rel.SemiJoin:
				if leftEmpty || rightEmpty {
					call.Transform(emptyOf(j.RowType()))
				}
			case rel.LeftJoin:
				if leftEmpty {
					call.Transform(emptyOf(j.RowType()))
				}
			case rel.RightJoin:
				if rightEmpty {
					call.Transform(emptyOf(j.RowType()))
				}
			case rel.AntiJoin:
				if leftEmpty {
					call.Transform(emptyOf(j.RowType()))
				}
			}
		},
	}
}

// PruneEmptyUnionBranchRule drops empty branches from unions.
func PruneEmptyUnionBranchRule() plan.Rule {
	return &plan.FuncRule{
		Name: "PruneEmptyUnionBranchRule",
		Op:   logical[*rel.SetOp](),
		Fire: func(call *plan.Call) {
			u := call.Rel(0).(*rel.SetOp)
			if u.Kind != rel.UnionOp {
				return
			}
			var kept []rel.Node
			for _, in := range u.Inputs() {
				if !isEmptyValues(in) {
					kept = append(kept, in)
				}
			}
			switch {
			case len(kept) == len(u.Inputs()):
				return
			case len(kept) == 0:
				call.Transform(emptyOf(u.RowType()))
			case len(kept) == 1 && u.All:
				call.Transform(kept[0])
			default:
				call.Transform(rel.NewSetOp(u.Kind, u.All, kept...))
			}
		},
	}
}

// SortRemoveRule removes a Sort whose input already satisfies the required
// collation — the trait-based optimization highlighted in §4 ("if the input
// to the sort operator is already correctly ordered ... the sort operation
// can be removed"). Sorts with OFFSET/FETCH keep their limiting behaviour
// and are not removed.
func SortRemoveRule() plan.Rule {
	return &plan.FuncRule{
		Name: "SortRemoveRule",
		Op:   logical[*rel.Sort](),
		Fire: func(call *plan.Call) {
			s := call.Rel(0).(*rel.Sort)
			if s.Offset > 0 || s.Fetch >= 0 || len(s.Collation) == 0 {
				return
			}
			inputCollation := call.Meta.Collations(s.Inputs()[0])
			if inputCollation.Satisfies(s.Collation) {
				call.Transform(s.Inputs()[0])
			}
		},
	}
}

// SortProjectTransposeRule pushes a Sort below a Project when every sort
// key maps to a plain column of the project's input, enabling adapters to
// see (and absorb) the sort (§6's CassandraSort example).
func SortProjectTransposeRule() plan.Rule {
	return &plan.FuncRule{
		Name: "SortProjectTransposeRule",
		Op:   logical[*rel.Sort](logical[*rel.Project]()),
		Fire: func(call *plan.Call) {
			s := call.Rel(0).(*rel.Sort)
			p := call.Rel(1).(*rel.Project)
			if len(s.Collation) == 0 {
				return // pure limits stay above
			}
			mapped := make(trait.Collation, len(s.Collation))
			for i, fc := range s.Collation {
				ref, ok := p.Exprs[fc.Field].(*rex.InputRef)
				if !ok {
					return
				}
				mapped[i] = trait.FieldCollation{Field: ref.Index, Direction: fc.Direction}
			}
			sorted := rel.NewSort(p.Inputs()[0], mapped, s.Offset, s.Fetch)
			call.Transform(p.WithNewInputs([]rel.Node{sorted}))
		},
	}
}

// LimitOverSortRule merges a pure limit over a Sort into a single Sort with
// OFFSET/FETCH (top-N).
func LimitOverSortRule() plan.Rule {
	return &plan.FuncRule{
		Name: "LimitOverSortRule",
		Op:   logical[*rel.Sort](logical[*rel.Sort]()),
		Fire: func(call *plan.Call) {
			limit := call.Rel(0).(*rel.Sort)
			inner := call.Rel(1).(*rel.Sort)
			if len(limit.Collation) != 0 || (limit.Offset == 0 && limit.Fetch < 0) {
				return
			}
			if inner.Offset > 0 || inner.Fetch >= 0 {
				return
			}
			call.Transform(rel.NewSort(inner.Inputs()[0], inner.Collation, limit.Offset, limit.Fetch))
		},
	}
}

// AggregateRemoveRule removes an Aggregate with no aggregate calls whose
// group keys are already unique in the input (e.g. DISTINCT on a key).
func AggregateRemoveRule() plan.Rule {
	return &plan.FuncRule{
		Name: "AggregateRemoveRule",
		Op:   logical[*rel.Aggregate](),
		Fire: func(call *plan.Call) {
			agg := call.Rel(0).(*rel.Aggregate)
			if len(agg.Calls) != 0 || len(agg.GroupKeys) == 0 {
				return
			}
			input := agg.Inputs()[0]
			if !call.Meta.ColumnsUnique(input, agg.GroupKeys) {
				return
			}
			exprs := make([]rex.Node, len(agg.GroupKeys))
			names := make([]string, len(agg.GroupKeys))
			for i, k := range agg.GroupKeys {
				f := input.RowType().Fields[k]
				exprs[i] = rex.NewInputRef(k, f.Type)
				names[i] = f.Name
			}
			call.Transform(rel.NewProject(input, exprs, names))
		},
	}
}

// AggregateProjectMergeRule merges an Aggregate with its input Project when
// all used expressions are direct column references.
func AggregateProjectMergeRule() plan.Rule {
	return &plan.FuncRule{
		Name: "AggregateProjectMergeRule",
		Op:   logical[*rel.Aggregate](logical[*rel.Project]()),
		Fire: func(call *plan.Call) {
			agg := call.Rel(0).(*rel.Aggregate)
			project := call.Rel(1).(*rel.Project)
			resolve := func(col int) (int, bool) {
				if col >= len(project.Exprs) {
					return 0, false
				}
				ref, ok := project.Exprs[col].(*rex.InputRef)
				if !ok {
					return 0, false
				}
				return ref.Index, true
			}
			keys := make([]int, len(agg.GroupKeys))
			for i, k := range agg.GroupKeys {
				nk, ok := resolve(k)
				if !ok {
					return
				}
				keys[i] = nk
			}
			calls := make([]rex.AggCall, len(agg.Calls))
			for i, c := range agg.Calls {
				nc := c
				nc.Args = make([]int, len(c.Args))
				for ai, a := range c.Args {
					na, ok := resolve(a)
					if !ok {
						return
					}
					nc.Args[ai] = na
				}
				if c.FilterArg >= 0 {
					nf, ok := resolve(c.FilterArg)
					if !ok {
						return
					}
					nc.FilterArg = nf
				}
				calls[i] = nc
			}
			call.Transform(rel.NewAggregate(project.Inputs()[0], keys, calls))
		},
	}
}
