package rules

import (
	"strings"
	"testing"

	"calcite/internal/meta"
	"calcite/internal/plan"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

func mjScan(name string, rowCount float64) rel.Node {
	t := schema.NewMemTable(name, types.Row(
		types.Field{Name: name + "_k", Type: types.BigInt},
		types.Field{Name: name + "_v", Type: types.BigInt},
	), nil)
	t.SetStats(schema.Statistics{RowCount: rowCount})
	return rel.NewTableScan(trait.Logical, t, []string{name})
}

func eqRef(a, b int) rex.Node {
	return rex.Eq(rex.NewInputRef(a, types.BigInt), rex.NewInputRef(b, types.BigInt))
}

// chain3 builds (a ⋈ b) ⋈ c with equi-conditions a.k=b.k and b.k=c.k.
func chain3(a, b, c rel.Node) rel.Node {
	ab := rel.NewJoin(rel.InnerJoin, a, b, eqRef(0, 2))
	return rel.NewJoin(rel.InnerJoin, ab, c, eqRef(2, 4))
}

// TestJoinToMultiJoinCollapse: a three-way inner-join chain collapses into
// one flat MultiJoin with both conjuncts.
func TestJoinToMultiJoinCollapse(t *testing.T) {
	root := chain3(mjScan("a", 10), mjScan("b", 1000), mjScan("c", 100))
	hep := plan.NewHepPlanner(JoinToMultiJoinRule())
	hep.Meta = meta.NewQuery()
	out := hep.Optimize(root)
	mj, ok := out.(*rel.MultiJoin)
	if !ok {
		t.Fatalf("expected MultiJoin, got:\n%s", rel.Explain(out))
	}
	if len(mj.Inputs()) != 3 {
		t.Fatalf("factors = %d, want 3", len(mj.Inputs()))
	}
	if len(mj.Conjuncts) != 2 {
		t.Fatalf("conjuncts = %d, want 2: %s", len(mj.Conjuncts), mj.Attrs())
	}
	if rel.FieldCount(mj) != 6 {
		t.Fatalf("field count = %d, want 6", rel.FieldCount(mj))
	}
}

// TestTwoWayJoinNotCollapsed: a plain binary join keeps its written form —
// the enumeration only engages at three or more factors.
func TestTwoWayJoinNotCollapsed(t *testing.T) {
	j := rel.NewJoin(rel.InnerJoin, mjScan("a", 10), mjScan("b", 1000), eqRef(0, 2))
	hep := plan.NewHepPlanner(JoinToMultiJoinRule())
	hep.Meta = meta.NewQuery()
	if _, ok := hep.Optimize(j).(*rel.Join); !ok {
		t.Fatal("two-way join was collapsed")
	}
}

// TestOuterJoinStopsFlattening: a left join becomes an opaque factor.
func TestOuterJoinStopsFlattening(t *testing.T) {
	left := rel.NewJoin(rel.LeftJoin, mjScan("a", 10), mjScan("b", 1000), eqRef(0, 2))
	root := rel.NewJoin(rel.InnerJoin,
		rel.NewJoin(rel.InnerJoin, left, mjScan("c", 100), eqRef(2, 4)),
		mjScan("d", 50), eqRef(4, 6))
	hep := plan.NewHepPlanner(JoinToMultiJoinRule())
	hep.Meta = meta.NewQuery()
	out := hep.Optimize(root)
	mj, ok := out.(*rel.MultiJoin)
	if !ok {
		t.Fatalf("expected MultiJoin, got:\n%s", rel.Explain(out))
	}
	// Factors: the left join (opaque), c, d.
	if len(mj.Inputs()) != 3 {
		t.Fatalf("factors = %d, want 3:\n%s", len(mj.Inputs()), rel.Explain(out))
	}
	if _, ok := mj.Inputs()[0].(*rel.Join); !ok {
		t.Fatal("outer join was not kept as an opaque factor")
	}
}

// TestLoptOrdersBySelectivity: the expansion must join the small table
// first and leave no MultiJoin behind, preserving the original column
// order through a restoring projection.
func TestLoptOrdersBySelectivity(t *testing.T) {
	root := chain3(mjScan("big", 10000), mjScan("mid", 1000), mjScan("tiny", 10))
	mq := meta.NewQuery()
	collapse, order := JoinOrderRules()
	hep1 := plan.NewHepPlanner(collapse...)
	hep1.Meta = mq
	hep2 := plan.NewHepPlanner(order...)
	hep2.Meta = mq
	out := hep2.Optimize(hep1.Optimize(root))

	sawMulti := false
	joins := 0
	rel.Walk(out, func(n rel.Node) bool {
		switch n.(type) {
		case *rel.MultiJoin:
			sawMulti = true
		case *rel.Join:
			joins++
		}
		return true
	})
	if sawMulti {
		t.Fatalf("MultiJoin survived ordering:\n%s", rel.Explain(out))
	}
	if joins != 2 {
		t.Fatalf("joins = %d, want 2:\n%s", joins, rel.Explain(out))
	}
	// Output schema must be unchanged (a restoring projection if needed).
	want := []string{"big_k", "big_v", "mid_k", "mid_v", "tiny_k", "tiny_v"}
	got := out.RowType().FieldNames()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("field names %v, want %v", got, want)
	}
}

// TestLoptCrossProductOnlyWhenForced: disconnected factors still produce a
// valid plan (with a cross join), but connected factors never cross-join.
func TestLoptCrossProductOnlyWhenForced(t *testing.T) {
	// a and c are connected through b; all splits are connected.
	root := chain3(mjScan("a", 100), mjScan("b", 100), mjScan("c", 100))
	mq := meta.NewQuery()
	collapse, order := JoinOrderRules()
	hep1 := plan.NewHepPlanner(collapse...)
	hep1.Meta = mq
	hep2 := plan.NewHepPlanner(order...)
	hep2.Meta = mq
	out := hep2.Optimize(hep1.Optimize(root))
	rel.Walk(out, func(n rel.Node) bool {
		if j, ok := n.(*rel.Join); ok && rex.IsAlwaysTrue(j.Condition) {
			t.Fatalf("cross join in a connected query:\n%s", rel.Explain(out))
		}
		return true
	})

	// A genuine cartesian query must still plan.
	cross := rel.NewJoin(rel.InnerJoin,
		rel.NewJoin(rel.InnerJoin, mjScan("x", 5), mjScan("y", 5), rex.Bool(true)),
		mjScan("z", 5), rex.Bool(true))
	out2 := hep2.Optimize(hep1.Optimize(cross))
	if _, ok := out2.(*rel.MultiJoin); ok {
		t.Fatal("cartesian MultiJoin not expanded")
	}
	if rel.FieldCount(out2) != 6 {
		t.Fatalf("field count = %d, want 6", rel.FieldCount(out2))
	}
}
