package rules

import (
	"math"
	"math/bits"

	"calcite/internal/meta"
	"calcite/internal/plan"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/trait"
)

// Cost-based join-order enumeration (§2 of the paper: the "dynamic
// programming approach" that avoids the local minima of purely heuristic
// optimizers, made tractable by collapsing the commute/associate search
// space into one enumeration pass). It runs as two consecutive Hep phases
// (see core.Framework.Optimize):
//
//  1. JoinToMultiJoinRule collapses every tree of binary inner joins into a
//     single flat rel.MultiJoin holding the factors and all join conjuncts;
//  2. LoptOptimizeJoinRule expands each MultiJoin back into a binary join
//     tree chosen from estimated cardinalities — exact dynamic programming
//     over connected subsets up to dpFactorLimit factors, a greedy
//     cheapest-pair construction beyond.
//
// Because the second phase rewrites every MultiJoin, the flat form never
// reaches physical planning or execution.

// dpFactorLimit is the largest factor count planned with exact dynamic
// programming (3^k subset-split work); larger joins use the greedy builder.
const dpFactorLimit = 10

// JoinToMultiJoinRule collapses a tree of binary inner joins (whose inputs
// may already be MultiJoins) into a flat MultiJoin. Non-inner joins stop the
// flattening and become opaque factors. A plain two-way join with nothing to
// flatten is left alone: it keeps its written input order, so single-join
// plans (and the adapter pushdown rules that pattern-match them) are
// untouched — the enumeration only engages where there is an order to
// choose, i.e. three or more factors.
func JoinToMultiJoinRule() plan.Rule {
	return &plan.FuncRule{
		Name: "JoinToMultiJoinRule",
		Op:   logical[*rel.Join](),
		Fire: func(call *plan.Call) {
			j := call.Rel(0).(*rel.Join)
			if j.Kind != rel.InnerJoin {
				return
			}
			if !flattenable(j.Left()) && !flattenable(j.Right()) {
				return
			}
			var factors []rel.Node
			var conjuncts []rex.Node
			var splice func(n rel.Node, shift int)
			splice = func(n rel.Node, shift int) {
				switch x := n.(type) {
				case *rel.MultiJoin:
					factors = append(factors, x.Inputs()...)
					for _, c := range x.Conjuncts {
						conjuncts = append(conjuncts, rex.Shift(c, shift))
					}
				case *rel.Join:
					if !flattenable(n) {
						factors = append(factors, n)
						return
					}
					splice(x.Left(), shift)
					splice(x.Right(), shift+rel.FieldCount(x.Left()))
					for _, c := range rex.Conjuncts(x.Condition) {
						conjuncts = append(conjuncts, rex.Shift(c, shift))
					}
				default:
					factors = append(factors, n)
				}
			}
			splice(j.Left(), 0)
			splice(j.Right(), rel.FieldCount(j.Left()))
			if len(factors) > 63 {
				return // beyond the enumeration bitmask; keep binary joins
			}
			// The join's own condition is already in concatenated
			// [left, right] coordinates.
			conjuncts = append(conjuncts, rex.Conjuncts(j.Condition)...)
			call.Transform(rel.NewMultiJoin(factors, conjuncts))
		},
	}
}

// flattenable reports whether n can be spliced into an enclosing MultiJoin:
// a logical MultiJoin or a logical inner Join.
func flattenable(n rel.Node) bool {
	if !trait.SameConvention(n.Traits().Convention, trait.Logical) {
		return false
	}
	switch x := n.(type) {
	case *rel.MultiJoin:
		return true
	case *rel.Join:
		return x.Kind == rel.InnerJoin
	}
	return false
}

// LoptOptimizeJoinRule orders the factors of a MultiJoin into a binary
// inner-join tree by estimated cardinality and cost, mirroring Calcite's
// LoptOptimizeJoinRule. Conjuncts referencing a single factor are pushed
// onto that factor as filters before enumeration; factor-free conjuncts end
// up in a filter above the tree; a projection restores the original column
// order when the chosen factor order differs from the input order.
func LoptOptimizeJoinRule() plan.Rule {
	return &plan.FuncRule{
		Name: "LoptOptimizeJoinRule",
		Op:   plan.MatchType[*rel.MultiJoin](),
		Fire: func(call *plan.Call) {
			mj := call.Rel(0).(*rel.MultiJoin)
			if ordered := orderMultiJoin(call.Meta, mj); ordered != nil {
				call.Transform(ordered)
			}
		},
	}
}

// joinVertex is one factor of the enumeration, with its global column
// offset in the MultiJoin's concatenated coordinate space.
type joinVertex struct {
	node   rel.Node
	offset int
	width  int
}

// joinTree is a partially built join over a set of factors. order lists the
// factor indices in output-column order.
type joinTree struct {
	node  rel.Node
	mask  uint64
	order []int
	rows  float64
	cost  float64
}

// orderMultiJoin plans a binary join tree for the MultiJoin, or returns nil
// when no reordering is possible (e.g. too many factors for the bitmask).
func orderMultiJoin(mq *meta.Query, mj *rel.MultiJoin) rel.Node {
	factors := mj.Inputs()
	k := len(factors)
	if k < 2 || k > 63 {
		return nil
	}
	vertices := make([]*joinVertex, k)
	offset := 0
	for i, f := range factors {
		vertices[i] = &joinVertex{node: f, offset: offset, width: rel.FieldCount(f)}
		offset += vertices[i].width
	}
	factorOf := func(col int) int {
		for i := k - 1; i >= 0; i-- {
			if col >= vertices[i].offset {
				return i
			}
		}
		return 0
	}

	// Partition conjuncts by factor support.
	type edge struct {
		cond    rex.Node
		support uint64
	}
	var edges []edge
	var topConds []rex.Node
	perFactor := make([][]rex.Node, k)
	for _, c := range mj.Conjuncts {
		if rex.IsAlwaysTrue(c) {
			continue
		}
		var support uint64
		for col := range rex.InputBitmap(c) {
			support |= 1 << uint(factorOf(col))
		}
		switch bits.OnesCount64(support) {
		case 0:
			topConds = append(topConds, c)
		case 1:
			fi := bits.TrailingZeros64(support)
			perFactor[fi] = append(perFactor[fi], rex.Shift(c, -vertices[fi].offset))
		default:
			edges = append(edges, edge{cond: c, support: support})
		}
	}
	for fi, conds := range perFactor {
		if len(conds) > 0 {
			vertices[fi].node = rel.NewFilter(vertices[fi].node, rex.And(conds...))
		}
	}

	base := func(i int) *joinTree {
		return &joinTree{
			node:  vertices[i].node,
			mask:  1 << uint(i),
			order: []int{i},
			rows:  mq.RowCount(vertices[i].node),
		}
	}

	connected := func(a, b uint64) bool {
		union := a | b
		for _, e := range edges {
			if e.support&^union == 0 && e.support&a != 0 && e.support&b != 0 {
				return true
			}
		}
		return false
	}

	// combine joins L and R (L as the streamed/probe side, R as the build
	// side), applying every not-yet-applied conjunct contained in the union.
	combine := func(l, r *joinTree) *joinTree {
		union := l.mask | r.mask
		layout := append(append([]int(nil), l.order...), r.order...)
		// layoutOffset[f] = column offset of factor f in the new output.
		layoutOffset := map[int]int{}
		at := 0
		for _, f := range layout {
			layoutOffset[f] = at
			at += vertices[f].width
		}
		var conds []rex.Node
		for _, e := range edges {
			if e.support&^union != 0 || e.support&l.mask == 0 || e.support&r.mask == 0 {
				continue
			}
			mapping := map[int]int{}
			for col := range rex.InputBitmap(e.cond) {
				f := factorOf(col)
				mapping[col] = layoutOffset[f] + (col - vertices[f].offset)
			}
			conds = append(conds, rex.Remap(e.cond, mapping))
		}
		node := rel.NewJoin(rel.InnerJoin, l.node, r.node, rex.And(conds...))
		rows := mq.RowCount(node)
		// Cost mirrors the physical hash join (probe left once, build the
		// right side at double weight) plus the intermediate result size.
		cost := l.cost + r.cost + rows + l.rows + 2*r.rows
		return &joinTree{node: node, mask: union, order: layout, rows: rows, cost: cost}
	}

	full := uint64(1)<<uint(k) - 1
	var result *joinTree
	if k <= dpFactorLimit {
		result = dpOrder(k, base, connected, combine)
	} else {
		result = greedyOrder(k, base, connected, combine)
	}
	if result == nil {
		return nil
	}
	if result.mask != full {
		return nil
	}

	out := result.node
	if len(topConds) > 0 {
		out = rel.NewFilter(out, rex.And(topConds...))
	}
	// Restore the original column order unless the enumeration kept it.
	identity := true
	for i, f := range result.order {
		if f != i {
			identity = false
			break
		}
	}
	if !identity {
		layoutOffset := map[int]int{}
		at := 0
		for _, f := range result.order {
			layoutOffset[f] = at
			at += vertices[f].width
		}
		fields := mj.RowType().Fields
		exprs := make([]rex.Node, len(fields))
		names := make([]string, len(fields))
		for f, v := range vertices {
			for i := 0; i < v.width; i++ {
				global := v.offset + i
				exprs[global] = rex.NewInputRef(layoutOffset[f]+i, fields[global].Type)
				names[global] = fields[global].Name
			}
		}
		out = rel.NewProject(out, exprs, names)
	}
	return out
}

// dpOrder runs Selinger-style dynamic programming over factor subsets,
// considering bushy shapes. Cross products are admitted only for subsets
// with no connected split.
func dpOrder(k int, base func(int) *joinTree, connected func(a, b uint64) bool,
	combine func(l, r *joinTree) *joinTree) *joinTree {
	best := make([]*joinTree, 1<<uint(k))
	for i := 0; i < k; i++ {
		best[1<<uint(i)] = base(i)
	}
	for mask := uint64(1); mask < 1<<uint(k); mask++ {
		if bits.OnesCount64(mask) < 2 {
			continue
		}
		for pass := 0; pass < 2 && best[mask] == nil; pass++ {
			allowCross := pass == 1
			for sub := (mask - 1) & mask; sub > 0; sub = (sub - 1) & mask {
				other := mask ^ sub
				l, r := best[sub], best[other]
				if l == nil || r == nil {
					continue
				}
				if !allowCross && !connected(sub, other) {
					continue
				}
				cand := combine(l, r)
				if best[mask] == nil || cand.cost < best[mask].cost {
					best[mask] = cand
				}
			}
		}
	}
	return best[(uint64(1)<<uint(k))-1]
}

// greedyOrder builds the tree by repeatedly merging the pair of partial
// trees with the cheapest combined cost, preferring connected pairs.
func greedyOrder(k int, base func(int) *joinTree, connected func(a, b uint64) bool,
	combine func(l, r *joinTree) *joinTree) *joinTree {
	parts := make([]*joinTree, k)
	for i := range parts {
		parts[i] = base(i)
	}
	for len(parts) > 1 {
		bestI, bestJ := -1, -1
		var bestTree *joinTree
		bestCost := math.Inf(1)
		for pass := 0; pass < 2 && bestTree == nil; pass++ {
			allowCross := pass == 1
			for i := 0; i < len(parts); i++ {
				for j := 0; j < len(parts); j++ {
					if i == j {
						continue
					}
					if !allowCross && !connected(parts[i].mask, parts[j].mask) {
						continue
					}
					cand := combine(parts[i], parts[j])
					if cand.cost < bestCost {
						bestCost, bestTree, bestI, bestJ = cand.cost, cand, i, j
					}
				}
			}
		}
		if bestTree == nil {
			return nil
		}
		lo, hi := bestI, bestJ
		if lo > hi {
			lo, hi = hi, lo
		}
		parts[lo] = bestTree
		parts = append(parts[:hi], parts[hi+1:]...)
	}
	return parts[0]
}

// JoinOrderRules returns the two-phase join-order enumeration rule sets:
// phase one collapses inner-join trees into MultiJoins, phase two expands
// them into cardinality-ordered binary join trees. The phases must run in
// separate Hep passes (the expansion's output would otherwise re-trigger
// the collapse).
func JoinOrderRules() (collapse, order []plan.Rule) {
	return []plan.Rule{JoinToMultiJoinRule()}, []plan.Rule{LoptOptimizeJoinRule()}
}
