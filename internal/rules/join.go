package rules

import (
	"calcite/internal/plan"
	"calcite/internal/rel"
	"calcite/internal/rex"
)

// JoinCommuteRule swaps the inputs of an inner join, adding a projection
// that restores the original column order. Combined with JoinAssociateRule
// it spans the join-order search space explored by the cost-based planner —
// the "dynamic programming approach" §2 contrasts with heuristic optimizers
// that "risk falling into local minima".
func JoinCommuteRule() plan.Rule {
	return &plan.FuncRule{
		Name: "JoinCommuteRule",
		Op:   logical[*rel.Join](),
		Fire: func(call *plan.Call) {
			j := call.Rel(0).(*rel.Join)
			if j.Kind != rel.InnerJoin {
				return
			}
			nLeft := rel.FieldCount(j.Left())
			nRight := rel.FieldCount(j.Right())

			// Remap condition refs: old left i -> nRight+i; old right
			// nLeft+k -> k.
			mapping := make(map[int]int, nLeft+nRight)
			for i := 0; i < nLeft; i++ {
				mapping[i] = nRight + i
			}
			for k := 0; k < nRight; k++ {
				mapping[nLeft+k] = k
			}
			cond := rex.Remap(j.Condition, mapping)
			swapped := rel.NewJoin(rel.InnerJoin, j.Right(), j.Left(), cond)

			// Restore original output order: [left, right].
			fields := j.RowType().Fields
			exprs := make([]rex.Node, len(fields))
			names := make([]string, len(fields))
			for i := 0; i < nLeft; i++ {
				exprs[i] = rex.NewInputRef(nRight+i, fields[i].Type)
				names[i] = fields[i].Name
			}
			for k := 0; k < nRight; k++ {
				exprs[nLeft+k] = rex.NewInputRef(k, fields[nLeft+k].Type)
				names[nLeft+k] = fields[nLeft+k].Name
			}
			call.Transform(rel.NewProject(swapped, exprs, names))
		},
	}
}

// JoinAssociateRule rewrites (A ⋈ B) ⋈ C into A ⋈ (B ⋈ C), redistributing
// the combined condition conjuncts to the lowest join that can evaluate
// them. Inner joins only.
func JoinAssociateRule() plan.Rule {
	return &plan.FuncRule{
		Name: "JoinAssociateRule",
		Op:   logical[*rel.Join](logical[*rel.Join](), plan.AnyNode()),
		Fire: func(call *plan.Call) {
			top := call.Rel(0).(*rel.Join)
			bottom := call.Rel(1).(*rel.Join)
			if top.Kind != rel.InnerJoin || bottom.Kind != rel.InnerJoin {
				return
			}
			a, b := bottom.Left(), bottom.Right()
			c := top.Right()
			nA, nB := rel.FieldCount(a), rel.FieldCount(b)
			nC := rel.FieldCount(c)
			total := nA + nB + nC

			// All conjuncts, in top coordinates [A, B, C].
			var all []rex.Node
			all = append(all, rex.Conjuncts(bottom.Condition)...) // already [A,B] coords, valid in [A,B,C]
			all = append(all, rex.Conjuncts(top.Condition)...)

			// New bottom (B ⋈ C) sees [B, C] = old coords shifted by -nA.
			var newBottomConds, newTopConds []rex.Node
			for _, term := range all {
				refs := rex.InputBitmap(term)
				onlyBC := true
				for r := range refs {
					if r < nA || r >= total {
						onlyBC = false
						break
					}
				}
				if onlyBC {
					newBottomConds = append(newBottomConds, rex.Shift(term, -nA))
				} else {
					newTopConds = append(newTopConds, term)
				}
			}
			newBottom := rel.NewJoin(rel.InnerJoin, b, c, rex.And(newBottomConds...))
			// New top (A ⋈ (B⋈C)) output layout is [A, B, C]: identical to
			// the old layout, so the remaining conjuncts keep their refs.
			newTop := rel.NewJoin(rel.InnerJoin, a, newBottom, rex.And(newTopConds...))
			call.Transform(newTop)
		},
	}
}
