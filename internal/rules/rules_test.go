package rules_test

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"calcite/internal/exec"
	"calcite/internal/meta"
	"calcite/internal/plan"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/rules"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// randTable builds a random two-column table.
func randTable(r *rand.Rand, name string, rows int) *schema.MemTable {
	data := make([][]any, rows)
	for i := range data {
		var v any
		if r.Intn(5) > 0 {
			v = int64(r.Intn(20))
		}
		data[i] = []any{int64(r.Intn(10)), v}
	}
	return schema.NewMemTable(name, types.Row(
		types.Field{Name: name + "_k", Type: types.BigInt},
		types.Field{Name: name + "_v", Type: types.BigInt.WithNullable(true)},
	), data)
}

// execute runs a logical plan through the given rules and returns the rows
// as a sorted multiset of strings.
func execute(t *testing.T, logical rel.Node, logicalRules []plan.Rule) []string {
	t.Helper()
	node := logical
	if logicalRules != nil {
		hp := plan.NewHepPlanner(logicalRules...)
		hp.Meta = meta.NewQuery()
		node = hp.Optimize(node)
	}
	vp := plan.NewVolcanoPlanner(exec.Rules()...)
	vp.Meta = meta.NewQuery(exec.MetadataProvider())
	best, err := vp.Optimize(node, trait.Enumerable)
	if err != nil {
		t.Fatalf("optimize: %v\n%s", err, rel.Explain(node))
	}
	rows, err := exec.Execute(exec.NewContext(), best)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, rel.Explain(best))
	}
	out := make([]string, len(rows))
	for i, row := range rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = types.FormatValue(v)
		}
		out[i] = strings.Join(parts, "|")
	}
	sort.Strings(out)
	return out
}

// randPlan builds a random logical plan over two tables: scans with random
// filters, an optional join, optional project and aggregate.
func randPlan(r *rand.Rand, a, b *schema.MemTable) rel.Node {
	scanA := rel.NewTableScan(trait.Logical, a, []string{a.Name()})
	scanB := rel.NewTableScan(trait.Logical, b, []string{b.Name()})
	cmp := func(col int, width int) rex.Node {
		ops := []*rex.Operator{rex.OpGreater, rex.OpLess, rex.OpEquals, rex.OpGreaterEqual}
		return rex.NewCall(ops[r.Intn(len(ops))],
			rex.NewInputRef(r.Intn(width), types.BigInt),
			rex.Int(int64(r.Intn(15))))
	}
	var node rel.Node
	switch r.Intn(3) {
	case 0: // single table
		node = scanA
	default: // join
		join := rel.NewJoin(rel.InnerJoin, scanA, scanB,
			rex.Eq(rex.NewInputRef(0, types.BigInt), rex.NewInputRef(2, types.BigInt)))
		node = join
	}
	width := rel.FieldCount(node)
	// Random filter stack (exercises merge + pushdown rules).
	for i := 0; i < r.Intn(3); i++ {
		node = rel.NewFilter(node, cmp(0, width))
	}
	if r.Intn(2) == 0 {
		// Projection with an expression.
		exprs := []rex.Node{
			rex.NewInputRef(0, types.BigInt),
			rex.NewCall(rex.OpPlus, rex.NewInputRef(r.Intn(width), types.BigInt), rex.Int(1)),
		}
		node = rel.NewProject(node, exprs, []string{"k", "e"})
		if r.Intn(2) == 0 {
			node = rel.NewFilter(node, cmp(0, 2))
		}
	}
	if r.Intn(3) == 0 {
		node = rel.NewAggregate(node, []int{0}, []rex.AggCall{
			rex.NewAggCall(rex.AggCount, nil, false, "c"),
		})
	}
	return node
}

// TestRulesPreserveSemantics is the central property test of the rule
// library: for random plans over random data, optimizing with the full
// logical rule set yields exactly the same row multiset as not optimizing.
func TestRulesPreserveSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		a := randTable(r, "ta", 30)
		b := randTable(r, "tb", 25)
		logical := randPlan(r, a, b)
		plain := execute(t, logical, nil)
		optimized := execute(t, logical, rules.DefaultLogicalRules())
		if strings.Join(plain, "\n") != strings.Join(optimized, "\n") {
			t.Fatalf("trial %d: optimization changed results\nplan:\n%s\nplain: %v\noptimized: %v",
				trial, rel.Explain(logical), plain, optimized)
		}
	}
}

// TestJoinReorderPreservesSemantics: commute/associate keep results.
func TestJoinReorderPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 15; trial++ {
		a := randTable(r, "ta", 15)
		b := randTable(r, "tb", 12)
		c := randTable(r, "tc", 10)
		sa := rel.NewTableScan(trait.Logical, a, []string{"ta"})
		sb := rel.NewTableScan(trait.Logical, b, []string{"tb"})
		sc := rel.NewTableScan(trait.Logical, c, []string{"tc"})
		j1 := rel.NewJoin(rel.InnerJoin, sa, sb,
			rex.Eq(rex.NewInputRef(0, types.BigInt), rex.NewInputRef(2, types.BigInt)))
		j2 := rel.NewJoin(rel.InnerJoin, j1, sc,
			rex.Eq(rex.NewInputRef(2, types.BigInt), rex.NewInputRef(4, types.BigInt)))

		plain := execute(t, j2, nil)

		all := append(exec.Rules(), rules.JoinReorderRules()...)
		all = append(all, rules.ProjectMergeRule(), rules.ProjectRemoveRule())
		vp := plan.NewVolcanoPlanner(all...)
		vp.Meta = meta.NewQuery(exec.MetadataProvider())
		best, err := vp.Optimize(j2, trait.Enumerable)
		if err != nil {
			t.Fatal(err)
		}
		rows, err := exec.Execute(exec.NewContext(), best)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]string, len(rows))
		for i, row := range rows {
			parts := make([]string, len(row))
			for j, v := range row {
				parts[j] = types.FormatValue(v)
			}
			got[i] = strings.Join(parts, "|")
		}
		sort.Strings(got)
		if strings.Join(plain, "\n") != strings.Join(got, "\n") {
			t.Fatalf("trial %d: reorder changed results (%d vs %d rows)", trial, len(plain), len(got))
		}
	}
}

// TestFilterIntoJoinOuterSafety: predicates on the null-generating side of
// an outer join must not be pushed below it.
func TestFilterIntoJoinOuterSafety(t *testing.T) {
	a := schema.NewMemTable("l", types.Row(types.Field{Name: "k", Type: types.BigInt}),
		[][]any{{int64(1)}, {int64(2)}})
	b := schema.NewMemTable("r", types.Row(types.Field{Name: "k2", Type: types.BigInt}),
		[][]any{{int64(1)}})
	sl := rel.NewTableScan(trait.Logical, a, []string{"l"})
	sr := rel.NewTableScan(trait.Logical, b, []string{"r"})
	join := rel.NewJoin(rel.LeftJoin, sl, sr,
		rex.Eq(rex.NewInputRef(0, types.BigInt), rex.NewInputRef(1, types.BigInt)))
	// IS NULL on the right side keeps only the null-extended row.
	filter := rel.NewFilter(join, rex.NewCall(rex.OpIsNull, rex.NewInputRef(1, types.BigInt.WithNullable(true))))

	plain := execute(t, filter, nil)
	optimized := execute(t, filter, rules.DefaultLogicalRules())
	if strings.Join(plain, "\n") != strings.Join(optimized, "\n") {
		t.Fatalf("outer-join pushdown broke semantics: %v vs %v", plain, optimized)
	}
	if len(plain) != 1 {
		t.Fatalf("expected the anti-join row, got %v", plain)
	}
}

// TestPruneEmpty: a constant-false filter collapses the whole subtree.
func TestPruneEmpty(t *testing.T) {
	a := randTable(rand.New(rand.NewSource(1)), "t", 10)
	scan := rel.NewTableScan(trait.Logical, a, []string{"t"})
	filter := rel.NewFilter(scan, rex.Bool(false))
	join := rel.NewJoin(rel.InnerJoin, filter, scan, rex.Bool(true))
	hp := plan.NewHepPlanner(rules.DefaultLogicalRules()...)
	hp.Meta = meta.NewQuery()
	out := hp.Optimize(join)
	if v, ok := out.(*rel.Values); !ok || len(v.Tuples) != 0 {
		t.Fatalf("expected empty Values, got:\n%s", rel.Explain(out))
	}
}

// TestSortRemove: a sort over already-sorted input disappears.
func TestSortRemove(t *testing.T) {
	a := randTable(rand.New(rand.NewSource(2)), "t", 10)
	scan := rel.NewTableScan(trait.Logical, a, []string{"t"})
	inner := rel.NewSort(scan, trait.Collation{{Field: 0, Direction: trait.Ascending}}, 0, -1)
	outer := rel.NewSort(inner, trait.Collation{{Field: 0, Direction: trait.Ascending}}, 0, -1)
	hp := plan.NewHepPlanner(rules.SortRemoveRule())
	hp.Meta = meta.NewQuery()
	out := hp.Optimize(outer)
	count := 0
	rel.Walk(out, func(n rel.Node) bool {
		if _, ok := n.(*rel.Sort); ok {
			count++
		}
		return true
	})
	if count != 1 {
		t.Fatalf("expected one sort to remain, got %d:\n%s", count, rel.Explain(out))
	}
}
