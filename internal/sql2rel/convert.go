// Package sql2rel converts validated SQL ASTs into logical relational
// algebra (§3 of the paper: the parser/validator "translate[s] a SQL query
// to a tree of relational operators"). It implements star expansion,
// aggregate and window construction, view expansion, set operations, the
// STREAM directive with group windows and monotonicity validation (§7.2),
// and INSERT.
package sql2rel

import (
	"fmt"
	"strings"

	"calcite/internal/parser"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
	"calcite/internal/validate"
)

// Converter translates statements against a root catalog schema.
type Converter struct {
	Catalog schema.Schema
	// viewDepth guards against recursive view definitions.
	viewDepth int
}

// New returns a converter over the given root schema.
func New(catalog schema.Schema) *Converter { return &Converter{Catalog: catalog} }

// Convert translates a query statement (SELECT/VALUES/set operation/INSERT)
// into a logical plan. DDL statements are handled by the connection layer,
// not here.
func (c *Converter) Convert(stmt parser.Statement) (rel.Node, error) {
	switch s := stmt.(type) {
	case *parser.SelectStmt:
		return c.convertSelect(s)
	case *parser.SetOpStmt:
		return c.convertSetOp(s)
	case *parser.ValuesStmt:
		return c.convertValues(s)
	case *parser.InsertStmt:
		return c.convertInsert(s)
	}
	return nil, fmt.Errorf("sql2rel: unsupported statement %T", stmt)
}

func (c *Converter) convertValues(v *parser.ValuesStmt) (rel.Node, error) {
	if len(v.Rows) == 0 {
		return nil, fmt.Errorf("sql2rel: empty VALUES")
	}
	width := len(v.Rows[0])
	conv := &validate.ExprConverter{Scope: validate.NewScope(nil)}
	tuples := make([][]rex.Node, len(v.Rows))
	colTypes := make([]*types.Type, width)
	for ri, row := range v.Rows {
		if len(row) != width {
			return nil, fmt.Errorf("sql2rel: VALUES rows have unequal widths (%d vs %d)", len(row), width)
		}
		tuple := make([]rex.Node, width)
		for ci, e := range row {
			n, err := conv.Convert(e)
			if err != nil {
				return nil, err
			}
			tuple[ci] = n
			if colTypes[ci] == nil {
				colTypes[ci] = n.Type()
			} else if lr := types.LeastRestrictive(colTypes[ci], n.Type()); lr != nil {
				colTypes[ci] = lr
			}
		}
		tuples[ri] = tuple
	}
	fields := make([]types.Field, width)
	for i, t := range colTypes {
		fields[i] = types.Field{Name: fmt.Sprintf("EXPR$%d", i), Type: t}
	}
	return rel.NewValues(types.Row(fields...), tuples), nil
}

func (c *Converter) convertSetOp(s *parser.SetOpStmt) (rel.Node, error) {
	left, err := c.Convert(s.Left)
	if err != nil {
		return nil, err
	}
	right, err := c.Convert(s.Right)
	if err != nil {
		return nil, err
	}
	if rel.FieldCount(left) != rel.FieldCount(right) {
		return nil, fmt.Errorf("sql2rel: %s operands have different column counts (%d vs %d)",
			s.Op, rel.FieldCount(left), rel.FieldCount(right))
	}
	var kind rel.SetOpKind
	switch s.Op {
	case "UNION":
		kind = rel.UnionOp
	case "INTERSECT":
		kind = rel.IntersectOp
	case "EXCEPT":
		kind = rel.MinusOp
	default:
		return nil, fmt.Errorf("sql2rel: unknown set operator %q", s.Op)
	}
	var node rel.Node = rel.NewSetOp(kind, s.All, left, right)
	return c.applyOrderLimit(node, s.OrderBy, s.Offset, s.Limit, nil)
}

func (c *Converter) convertInsert(ins *parser.InsertStmt) (rel.Node, error) {
	table, path, err := schema.Resolve(c.Catalog, ins.Table)
	if err != nil {
		return nil, err
	}
	mod, ok := table.(schema.ModifiableTable)
	if !ok {
		return nil, fmt.Errorf("sql2rel: table %q is not modifiable", strings.Join(ins.Table, "."))
	}
	source, err := c.Convert(ins.Source)
	if err != nil {
		return nil, err
	}
	target := table.RowType().Fields
	if len(ins.Columns) == 0 {
		if rel.FieldCount(source) != len(target) {
			return nil, fmt.Errorf("sql2rel: INSERT has %d values for %d columns",
				rel.FieldCount(source), len(target))
		}
		return rel.NewTableModify(mod, path, source), nil
	}
	if rel.FieldCount(source) != len(ins.Columns) {
		return nil, fmt.Errorf("sql2rel: INSERT has %d values for %d named columns",
			rel.FieldCount(source), len(ins.Columns))
	}
	// Map named columns onto the table layout, NULL-filling the rest.
	colPos := map[string]int{}
	for i, name := range ins.Columns {
		colPos[strings.ToLower(name)] = i
	}
	exprs := make([]rex.Node, len(target))
	names := make([]string, len(target))
	srcFields := source.RowType().Fields
	for i, f := range target {
		names[i] = f.Name
		if srcIdx, ok := colPos[strings.ToLower(f.Name)]; ok {
			exprs[i] = rex.NewInputRef(srcIdx, srcFields[srcIdx].Type)
		} else {
			exprs[i] = rex.NewLiteral(nil, f.Type.WithNullable(true))
		}
	}
	project := rel.NewProject(source, exprs, names)
	return rel.NewTableModify(mod, path, project), nil
}

// fromResult carries the converted FROM clause.
type fromResult struct {
	node  rel.Node
	scope *validate.Scope
	// monotonicCols marks absolute column offsets carrying event time of
	// streamed tables (for §7.2 monotonicity validation).
	monotonicCols map[int]bool
}

// streamView exposes a streamable table's incoming records (the STREAM
// directive, §7.2): scanning it yields the stream rather than the history.
type streamView struct {
	schema.StreamableTable
}

func (v streamView) Scan() (schema.Cursor, error) {
	if ss, ok := v.StreamableTable.(interface {
		StreamScan() (schema.Cursor, error)
	}); ok {
		return ss.StreamScan()
	}
	if sc, ok := v.StreamableTable.(schema.ScannableTable); ok {
		return sc.Scan()
	}
	return nil, fmt.Errorf("sql2rel: stream table %s is not scannable", v.Name())
}

// ScanBatches forwards batch-native stream enumeration when the table
// supports it, falling back to batching the row stream: continuous queries
// then ingest typed columnar batches end to end.
func (v streamView) ScanBatches(batchSize int) (schema.BatchCursor, error) {
	if sb, ok := v.StreamableTable.(interface {
		StreamScanBatches(batchSize int) (schema.BatchCursor, error)
	}); ok {
		return sb.StreamScanBatches(batchSize)
	}
	cur, err := v.Scan()
	if err != nil {
		return nil, err
	}
	return schema.BatchCursorFromCursor(cur, len(v.RowType().Fields), batchSize), nil
}

func (c *Converter) convertFrom(te parser.TableExpr, stream bool) (*fromResult, error) {
	switch t := te.(type) {
	case *parser.TableName:
		table, path, err := schema.Resolve(c.Catalog, t.Path)
		if err != nil {
			return nil, err
		}
		alias := t.Alias
		if alias == "" {
			alias = t.Path[len(t.Path)-1]
		}
		// Views expand inline.
		if view, ok := table.(*schema.ViewTable); ok {
			return c.expandView(view, alias)
		}
		res := &fromResult{monotonicCols: map[int]bool{}}
		scanTable := table
		if stream {
			st, ok := table.(schema.StreamableTable)
			if !ok {
				return nil, fmt.Errorf("sql2rel: table %q is not a stream; the STREAM directive requires a stream table", alias)
			}
			scanTable = streamView{st}
			res.monotonicCols[st.RowtimeColumn()] = true
		} else if st, ok := table.(schema.StreamableTable); ok {
			// Even without STREAM the rowtime column stays monotonic.
			res.monotonicCols[st.RowtimeColumn()] = true
		}
		res.node = rel.NewTableScan(trait.Logical, scanTable, path)
		res.scope = validate.NewScope(nil)
		res.scope.AddNamespace(alias, table.RowType().Fields)
		return res, nil
	case *parser.SubqueryTable:
		inner, err := c.Convert(t.Query)
		if err != nil {
			return nil, err
		}
		alias := t.Alias
		if alias == "" {
			alias = fmt.Sprintf("EXPR$%d", 0)
		}
		res := &fromResult{node: inner, monotonicCols: map[int]bool{}}
		res.scope = validate.NewScope(nil)
		res.scope.AddNamespace(alias, inner.RowType().Fields)
		return res, nil
	case *parser.JoinExpr:
		return c.convertJoin(t, stream)
	}
	return nil, fmt.Errorf("sql2rel: unsupported FROM item %T", te)
}

func (c *Converter) convertJoin(j *parser.JoinExpr, stream bool) (*fromResult, error) {
	left, err := c.convertFrom(j.Left, stream)
	if err != nil {
		return nil, err
	}
	right, err := c.convertFrom(j.Right, stream)
	if err != nil {
		return nil, err
	}
	leftWidth := rel.FieldCount(left.node)

	// Combined scope: left namespaces then right namespaces (shifted).
	combined := validate.NewScope(nil)
	for _, ns := range left.scope.Namespaces {
		combined.AddNamespace(ns.Alias, ns.Fields)
	}
	for _, ns := range right.scope.Namespaces {
		combined.AddNamespace(ns.Alias, ns.Fields)
	}
	mono := map[int]bool{}
	for col := range left.monotonicCols {
		mono[col] = true
	}
	for col := range right.monotonicCols {
		mono[col+leftWidth] = true
	}

	var kind rel.JoinKind
	switch j.Kind {
	case "INNER", "CROSS", "COMMA":
		kind = rel.InnerJoin
	case "LEFT":
		kind = rel.LeftJoin
	case "RIGHT":
		kind = rel.RightJoin
	case "FULL":
		kind = rel.FullJoin
	default:
		return nil, fmt.Errorf("sql2rel: unsupported join kind %q", j.Kind)
	}

	var condition rex.Node = rex.Bool(true)
	switch {
	case j.On != nil:
		conv := &validate.ExprConverter{Scope: combined}
		cond, err := conv.Convert(j.On)
		if err != nil {
			return nil, err
		}
		if cond.Type().Kind != types.BooleanKind && cond.Type().Kind != types.AnyKind {
			return nil, fmt.Errorf("sql2rel: JOIN condition must be BOOLEAN, got %s", cond.Type())
		}
		condition = cond
	case len(j.Using) > 0:
		var terms []rex.Node
		for _, col := range j.Using {
			li, lt, err := left.scope.Resolve([]string{col})
			if err != nil {
				return nil, fmt.Errorf("sql2rel: USING column %q: %v", col, err)
			}
			ri, rt, err := right.scope.Resolve([]string{col})
			if err != nil {
				return nil, fmt.Errorf("sql2rel: USING column %q: %v", col, err)
			}
			terms = append(terms, rex.Eq(
				rex.NewInputRef(li, lt),
				rex.NewInputRef(ri+leftWidth, rt),
			))
		}
		condition = rex.And(terms...)
	}

	// §7.2: a stream-to-stream join requires an implicit window — the join
	// condition must bound both rowtime columns.
	if stream && len(left.monotonicCols) > 0 && len(right.monotonicCols) > 0 {
		refs := rex.InputBitmap(condition)
		leftOK, rightOK := false, false
		for col := range left.monotonicCols {
			if refs[col] {
				leftOK = true
			}
		}
		for col := range right.monotonicCols {
			if refs[col+leftWidth] {
				rightOK = true
			}
		}
		if !leftOK || !rightOK {
			return nil, fmt.Errorf("sql2rel: stream-to-stream join requires an implicit window over both rowtime columns in the JOIN condition (§7.2)")
		}
	}

	return &fromResult{
		node:          rel.NewJoin(kind, left.node, right.node, condition),
		scope:         combined,
		monotonicCols: mono,
	}, nil
}

// expandView parses and converts a stored view body.
func (c *Converter) expandView(view *schema.ViewTable, alias string) (*fromResult, error) {
	if c.viewDepth > 16 {
		return nil, fmt.Errorf("sql2rel: view expansion too deep (cyclic view %q?)", view.ViewName)
	}
	stmt, err := parser.Parse(view.SQL)
	if err != nil {
		return nil, fmt.Errorf("sql2rel: parsing view %q: %v", view.ViewName, err)
	}
	c.viewDepth++
	inner, err := c.Convert(stmt)
	c.viewDepth--
	if err != nil {
		return nil, fmt.Errorf("sql2rel: expanding view %q: %v", view.ViewName, err)
	}
	res := &fromResult{node: inner, monotonicCols: map[int]bool{}}
	res.scope = validate.NewScope(nil)
	res.scope.AddNamespace(alias, inner.RowType().Fields)
	return res, nil
}

// ConvertTypeSpec exposes parsed-type conversion to the connection layer
// (CREATE TABLE).
func ConvertTypeSpec(ts parser.TypeSpec) (*types.Type, error) {
	return validate.ConvertType(ts)
}
