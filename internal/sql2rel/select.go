package sql2rel

import (
	"fmt"
	"strconv"
	"strings"

	"calcite/internal/parser"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/trait"
	"calcite/internal/types"
	"calcite/internal/validate"
)

// groupWindowFuncs are the group-window functions of §7.2 recognized in
// GROUP BY.
var groupWindowFuncs = map[string]bool{"TUMBLE": true, "HOP": true, "SESSION": true}

func (c *Converter) convertSelect(sel *parser.SelectStmt) (rel.Node, error) {
	// ---- FROM ----
	var input rel.Node
	var scope *validate.Scope
	mono := map[int]bool{}
	if sel.From != nil {
		from, err := c.convertFrom(sel.From, sel.Stream)
		if err != nil {
			return nil, err
		}
		input, scope, mono = from.node, from.scope, from.monotonicCols
	} else {
		// SELECT without FROM: a single empty row.
		input = rel.NewValues(types.Row(), [][]rex.Node{{}})
		scope = validate.NewScope(nil)
	}

	// ---- WHERE ----
	if sel.Where != nil {
		conv := &validate.ExprConverter{Scope: scope}
		cond, err := conv.Convert(sel.Where)
		if err != nil {
			return nil, err
		}
		if cond.Type().Kind != types.BooleanKind && cond.Type().Kind != types.AnyKind {
			return nil, fmt.Errorf("sql2rel: WHERE must be BOOLEAN, got %s", cond.Type())
		}
		input = rel.NewFilter(input, cond)
	}

	// ---- expand stars ----
	items, err := expandStars(sel.Items, scope)
	if err != nil {
		return nil, err
	}

	// ---- aggregate or plain path ----
	hasAgg := len(sel.GroupBy) > 0 || sel.Having != nil
	for _, it := range items {
		if exprHasAggregate(it.Expr) {
			hasAgg = true
		}
	}

	var projectExprs []rex.Node
	var projectNames []string
	var selConv *validate.ExprConverter

	if hasAgg {
		var node rel.Node
		var conv *validate.ExprConverter
		var err error
		if sel.Stream && hasGroupWindow(sel.GroupBy) {
			// Continuous query: SELECT STREAM with a group window becomes a
			// StreamAggregate (incremental window maintenance, §7.2).
			node, conv, err = c.buildStreamAggregate(sel, input, scope, mono)
		} else {
			node, conv, err = c.buildAggregate(sel, input, scope, mono)
		}
		if err != nil {
			return nil, err
		}
		input = node
		selConv = conv
	} else {
		selConv = &validate.ExprConverter{Scope: scope}
		// Window functions (OVER) are only supported in the non-aggregated
		// path (matching the paper's streaming examples).
		node, conv, err := c.attachWindows(sel, items, input, scope, mono, selConv)
		if err != nil {
			return nil, err
		}
		input = node
		selConv = conv
	}

	// ---- final projection ----
	for i, it := range items {
		e, err := selConv.Convert(it.Expr)
		if err != nil {
			return nil, err
		}
		projectExprs = append(projectExprs, e)
		projectNames = append(projectNames, deriveName(it, i))
	}
	project := rel.NewProject(input, projectExprs, projectNames)
	var node rel.Node = project

	// ---- HAVING ---- (converted against the aggregate, applied above it,
	// below the final projection: we filter the aggregate output directly.)
	// Handled inside buildAggregate via havingFilter.

	// ---- DISTINCT ----
	if sel.Distinct {
		keys := make([]int, len(projectExprs))
		for i := range keys {
			keys[i] = i
		}
		node = rel.NewAggregate(node, keys, nil)
	}

	// ---- ORDER BY / OFFSET / LIMIT ----
	return c.applyOrderLimit(node, sel.OrderBy, sel.Offset, sel.Limit, selConv)
}

// expandStars replaces * and alias.* with explicit column items.
func expandStars(items []parser.SelectItem, scope *validate.Scope) ([]parser.SelectItem, error) {
	var out []parser.SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		if it.Table != "" {
			ns, ok := scope.ResolveNamespace(it.Table)
			if !ok {
				return nil, fmt.Errorf("sql2rel: unknown table alias %q in %s.*", it.Table, it.Table)
			}
			for _, f := range ns.Fields {
				out = append(out, parser.SelectItem{
					Expr:  &parser.Ident{Parts: []string{it.Table, f.Name}},
					Alias: f.Name,
				})
			}
			continue
		}
		for _, ns := range scope.Namespaces {
			for _, f := range ns.Fields {
				out = append(out, parser.SelectItem{
					Expr:  &parser.Ident{Parts: []string{ns.Alias, f.Name}},
					Alias: f.Name,
				})
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("sql2rel: empty select list")
	}
	return out, nil
}

// exprHasAggregate walks a parsed expression for non-windowed aggregate
// calls.
func exprHasAggregate(e parser.Expr) bool {
	found := false
	walkExpr(e, func(x parser.Expr) {
		if f, ok := x.(*parser.FuncCall); ok && f.Over == nil {
			if _, isAgg := rex.LookupAggFunc(f.Name); isAgg || f.Star {
				found = true
			}
		}
	})
	return found
}

func walkExpr(e parser.Expr, visit func(parser.Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case *parser.BinaryExpr:
		walkExpr(x.Left, visit)
		walkExpr(x.Right, visit)
	case *parser.UnaryExpr:
		walkExpr(x.Operand, visit)
	case *parser.IsNullExpr:
		walkExpr(x.Operand, visit)
	case *parser.BetweenExpr:
		walkExpr(x.Operand, visit)
		walkExpr(x.Low, visit)
		walkExpr(x.High, visit)
	case *parser.InExpr:
		walkExpr(x.Operand, visit)
		for _, i := range x.List {
			walkExpr(i, visit)
		}
	case *parser.CaseExpr:
		walkExpr(x.Operand, visit)
		for _, w := range x.Whens {
			walkExpr(w.When, visit)
			walkExpr(w.Then, visit)
		}
		walkExpr(x.Else, visit)
	case *parser.CastExpr:
		walkExpr(x.Operand, visit)
	case *parser.ItemExpr:
		walkExpr(x.Base, visit)
		walkExpr(x.Index, visit)
	case *parser.FuncCall:
		for _, a := range x.Args {
			walkExpr(a, visit)
		}
	}
}

// buildAggregate constructs pre-projection + Aggregate (+ HAVING filter) and
// returns the node plus the converter for select items over the aggregate
// output.
func (c *Converter) buildAggregate(sel *parser.SelectStmt, input rel.Node, scope *validate.Scope, mono map[int]bool) (rel.Node, *validate.ExprConverter, error) {
	rawConv := &validate.ExprConverter{Scope: scope}
	inFields := scope.AllFields()

	// Pre-projection expressions: group keys first, aggregate arguments
	// after.
	var preExprs []rex.Node
	var preNames []string
	groupMap := map[string]int{}
	groupTypes := map[string]*types.Type{}
	special := map[string]func(call *parser.FuncCall) (rex.Node, error){}
	monotonicGroup := false

	for gi, g := range sel.GroupBy {
		digest := validate.ExprDigest(g)
		if _, dup := groupMap[digest]; dup {
			continue
		}
		// Group-window function (§7.2)?
		if f, ok := g.(*parser.FuncCall); ok && groupWindowFuncs[strings.ToUpper(f.Name)] {
			name := strings.ToUpper(f.Name)
			if name != "TUMBLE" {
				return nil, nil, fmt.Errorf("sql2rel: %s windows require SELECT STREAM over a stream table (§7.2); batch GROUP BY supports TUMBLE only", name)
			}
			if len(f.Args) != 2 {
				return nil, nil, fmt.Errorf("sql2rel: TUMBLE requires (rowtime, interval)")
			}
			tsExpr, err := rawConv.Convert(f.Args[0])
			if err != nil {
				return nil, nil, err
			}
			sizeExpr, err := rawConv.Convert(f.Args[1])
			if err != nil {
				return nil, nil, err
			}
			size, err := rex.EvalConstant(sizeExpr)
			if err != nil {
				return nil, nil, fmt.Errorf("sql2rel: TUMBLE interval must be constant: %v", err)
			}
			sizeMs, ok := types.AsInt(size)
			if !ok || sizeMs <= 0 {
				return nil, nil, fmt.Errorf("sql2rel: bad TUMBLE interval %v", size)
			}
			// window_start = ts - (ts % size)
			start := rex.NewCallTyped(rex.OpCast, types.Timestamp,
				rex.NewCall(rex.OpMinus, tsExpr, rex.NewCall(rex.OpMod, tsExpr, rex.Int(sizeMs))))
			idx := len(preExprs)
			preExprs = append(preExprs, start)
			preNames = append(preNames, fmt.Sprintf("$w%d_start", gi))
			groupMap[digest] = idx
			groupTypes[digest] = types.Timestamp
			monotonicGroup = true

			argDigest := validate.ExprDigest(f.Args[0]) + "," + validate.ExprDigest(f.Args[1])
			registerTumbleAux(special, argDigest, idx, sizeMs)
			continue
		}
		e, err := rawConv.Convert(g)
		if err != nil {
			return nil, nil, err
		}
		// Ordinal GROUP BY (GROUP BY 1) refers to the select item.
		if lit, ok := e.(*rex.Literal); ok {
			if ord, isInt := lit.Value.(int64); isInt && int(ord) >= 1 {
				items, _ := expandStars(sel.Items, scope)
				if int(ord) <= len(items) {
					g = items[ord-1].Expr
					digest = validate.ExprDigest(g)
					e, err = rawConv.Convert(g)
					if err != nil {
						return nil, nil, err
					}
				}
			}
		}
		if ref, ok := e.(*rex.InputRef); ok && mono[ref.Index] {
			monotonicGroup = true
		}
		idx := len(preExprs)
		preExprs = append(preExprs, e)
		preNames = append(preNames, groupFieldName(g, inFields, e))
		groupMap[digest] = idx
		groupTypes[digest] = e.Type()
	}
	nGroups := len(preExprs)

	// §7.2: "Streaming queries involving window aggregates require the
	// presence of monotonic or quasi-monotonic expressions in the GROUP BY
	// clause".
	if sel.Stream && len(sel.GroupBy) > 0 && !monotonicGroup {
		return nil, nil, fmt.Errorf("sql2rel: streaming aggregation requires a monotonic expression (rowtime or a group window such as TUMBLE) in GROUP BY (§7.2)")
	}

	// Aggregate calls collected from the select list / HAVING.
	var calls []rex.AggCall
	callIdx := map[string]int{}
	sink := func(f *parser.FuncCall) (int, *types.Type, error) {
		digest := validate.ExprDigest(f)
		if i, ok := callIdx[digest]; ok {
			return nGroups + i, calls[i].ResultType(fieldsOf(preExprs, preNames)), nil
		}
		kind, ok := rex.LookupAggFunc(f.Name)
		if !ok && f.Star {
			kind = rex.AggCount
		} else if !ok {
			return 0, nil, fmt.Errorf("sql2rel: unknown aggregate %q", f.Name)
		}
		var args []int
		if !f.Star {
			for _, a := range f.Args {
				e, err := rawConv.Convert(a)
				if err != nil {
					return 0, nil, err
				}
				args = append(args, len(preExprs))
				preExprs = append(preExprs, e)
				preNames = append(preNames, fmt.Sprintf("$agg_arg%d", len(preExprs)))
			}
		}
		call := rex.NewAggCall(kind, args, f.Distinct, strings.ToUpper(f.Name))
		i := len(calls)
		calls = append(calls, call)
		callIdx[digest] = i
		return nGroups + i, call.ResultType(fieldsOf(preExprs, preNames)), nil
	}

	aggConv := &validate.ExprConverter{
		Scope:        scope, // unused for idents in agg mode (errors instead)
		GroupExprMap: groupMap,
		GroupTypes:   groupTypes,
		AggSink:      sink,
		RawScope:     scope,
		SpecialFuncs: special,
	}

	// Pre-convert select items and HAVING so every aggregate argument lands
	// in the pre-projection before we materialize the Aggregate node.
	items, err := expandStars(sel.Items, scope)
	if err != nil {
		return nil, nil, err
	}
	for _, it := range items {
		if _, err := aggConv.Convert(it.Expr); err != nil {
			return nil, nil, err
		}
	}
	var havingExpr rex.Node
	if sel.Having != nil {
		havingExpr, err = aggConv.Convert(sel.Having)
		if err != nil {
			return nil, nil, err
		}
	}
	for _, o := range sel.OrderBy {
		// ORDER BY over aggregates (e.g. ORDER BY COUNT(*) DESC) must also
		// register their calls; ordinals and aliases are skipped here.
		if exprHasAggregate(o.Expr) {
			if _, err := aggConv.Convert(o.Expr); err != nil {
				return nil, nil, err
			}
		}
	}

	var node rel.Node = input
	if !rex.IsIdentityProjection(preExprs, rel.FieldCount(input)) {
		node = rel.NewProject(input, preExprs, preNames)
	}
	keys := make([]int, nGroups)
	for i := range keys {
		keys[i] = i
	}
	node = rel.NewAggregate(node, keys, calls)
	if havingExpr != nil {
		node = rel.NewFilter(node, havingExpr)
	}

	// The select-item converter over the aggregate output reuses the same
	// group/agg mappings (all aggregate args already registered; the sink
	// now only resolves digests).
	outConv := &validate.ExprConverter{
		Scope:        validate.NewScope(nil),
		GroupExprMap: groupMap,
		GroupTypes:   groupTypes,
		SpecialFuncs: special,
		AggSink: func(f *parser.FuncCall) (int, *types.Type, error) {
			digest := validate.ExprDigest(f)
			if i, ok := callIdx[digest]; ok {
				return nGroups + i, node.RowType().Fields[nGroups+i].Type, nil
			}
			return 0, nil, fmt.Errorf("sql2rel: aggregate %s not registered", f.Name)
		},
	}
	return node, outConv, nil
}

// registerTumbleAux wires TUMBLE_START/TUMBLE_END for a TUMBLE group key.
func registerTumbleAux(special map[string]func(*parser.FuncCall) (rex.Node, error), argDigest string, keyIdx int, sizeMs int64) {
	match := func(f *parser.FuncCall) bool {
		if len(f.Args) != 2 {
			return false
		}
		return validate.ExprDigest(f.Args[0])+","+validate.ExprDigest(f.Args[1]) == argDigest
	}
	special["TUMBLE_START"] = func(f *parser.FuncCall) (rex.Node, error) {
		if !match(f) {
			return nil, fmt.Errorf("sql2rel: TUMBLE_START arguments do not match the GROUP BY TUMBLE")
		}
		return rex.NewInputRef(keyIdx, types.Timestamp), nil
	}
	special["TUMBLE_END"] = func(f *parser.FuncCall) (rex.Node, error) {
		if !match(f) {
			return nil, fmt.Errorf("sql2rel: TUMBLE_END arguments do not match the GROUP BY TUMBLE")
		}
		return rex.NewCallTyped(rex.OpCast, types.Timestamp,
			rex.NewCall(rex.OpPlus, rex.NewInputRef(keyIdx, types.Timestamp), rex.Int(sizeMs))), nil
	}
}

func fieldsOf(exprs []rex.Node, names []string) []types.Field {
	out := make([]types.Field, len(exprs))
	for i, e := range exprs {
		out[i] = types.Field{Name: names[i], Type: e.Type()}
	}
	return out
}

// groupFieldName derives a good output name for a grouped expression.
func groupFieldName(g parser.Expr, inFields []types.Field, e rex.Node) string {
	if id, ok := g.(*parser.Ident); ok {
		return id.Parts[len(id.Parts)-1]
	}
	if ref, ok := e.(*rex.InputRef); ok && ref.Index < len(inFields) {
		return inFields[ref.Index].Name
	}
	return "EXPR$" + validate.ExprDigest(g)
}

// attachWindows builds a rel.Window for OVER-clause calls in the select list
// and returns a converter that resolves those calls to window output columns.
func (c *Converter) attachWindows(sel *parser.SelectStmt, items []parser.SelectItem, input rel.Node, scope *validate.Scope, mono map[int]bool, base *validate.ExprConverter) (rel.Node, *validate.ExprConverter, error) {
	// Collect windowed calls.
	var winCalls []*parser.FuncCall
	for _, it := range items {
		walkExpr(it.Expr, func(x parser.Expr) {
			if f, ok := x.(*parser.FuncCall); ok && f.Over != nil {
				winCalls = append(winCalls, f)
			}
		})
	}
	if len(winCalls) == 0 {
		return input, base, nil
	}

	rawConv := &validate.ExprConverter{Scope: scope}
	inWidth := rel.FieldCount(input)
	inFields := input.RowType().Fields

	// Pre-projection: input columns plus any non-column expressions needed
	// as partition keys, order keys or aggregate arguments.
	preExprs := make([]rex.Node, inWidth)
	preNames := make([]string, inWidth)
	for i, f := range inFields {
		preExprs[i] = rex.NewInputRef(i, f.Type)
		preNames[i] = f.Name
	}
	colOf := func(e parser.Expr) (int, error) {
		n, err := rawConv.Convert(e)
		if err != nil {
			return 0, err
		}
		if ref, ok := n.(*rex.InputRef); ok {
			return ref.Index, nil
		}
		idx := len(preExprs)
		preExprs = append(preExprs, n)
		preNames = append(preNames, fmt.Sprintf("$w_expr%d", idx))
		return idx, nil
	}

	type groupKey struct {
		spec string
	}
	type groupBuild struct {
		group   *rel.WindowGroup
		digests []string
	}
	groups := map[groupKey]*groupBuild{}
	var groupOrder []groupKey
	callSlot := map[string]int{} // call digest -> output ordinal
	seenCall := map[string]bool{}

	for _, f := range winCalls {
		digest := validate.ExprDigest(f)
		if seenCall[digest] {
			continue
		}
		seenCall[digest] = true
		kind, ok := rex.LookupWindowFunc(f.Name)
		if !ok && f.Star {
			kind = rex.AggCount
		} else if !ok {
			return nil, nil, fmt.Errorf("sql2rel: unknown window function %q", f.Name)
		}
		switch kind {
		case rex.AggRowNumber, rex.AggRank, rex.AggDenseRank:
			if len(f.Args) != 0 || f.Star {
				return nil, nil, fmt.Errorf("sql2rel: %s takes no arguments", kind)
			}
			if kind != rex.AggRowNumber && len(f.Over.OrderBy) == 0 {
				return nil, nil, fmt.Errorf("sql2rel: %s requires ORDER BY in its OVER clause", kind)
			}
		case rex.AggLag, rex.AggLead:
			if len(f.Args) < 1 || len(f.Args) > 3 {
				return nil, nil, fmt.Errorf("sql2rel: %s takes 1 to 3 arguments (value, offset, default)", kind)
			}
		}
		if f.Distinct && kind.WindowOnly() {
			return nil, nil, fmt.Errorf("sql2rel: DISTINCT is not allowed with %s", kind)
		}
		var args []int
		if !f.Star {
			for _, a := range f.Args {
				col, err := colOf(a)
				if err != nil {
					return nil, nil, err
				}
				args = append(args, col)
			}
		}
		// Window spec -> group.
		var partCols []int
		for _, pe := range f.Over.PartitionBy {
			col, err := colOf(pe)
			if err != nil {
				return nil, nil, err
			}
			partCols = append(partCols, col)
		}
		var orderKeys trait.Collation
		for _, oe := range f.Over.OrderBy {
			col, err := colOf(oe.Expr)
			if err != nil {
				return nil, nil, err
			}
			dir := trait.Ascending
			if oe.Desc {
				dir = trait.Descending
			}
			orderKeys = append(orderKeys, trait.FieldCollation{Field: col, Direction: dir})
		}
		// §7.2: in a STREAM query, a sliding window must be ordered by a
		// monotonic expression.
		if sel.Stream {
			okMono := false
			for _, k := range orderKeys {
				if mono[k.Field] {
					okMono = true
				}
			}
			if !okMono {
				return nil, nil, fmt.Errorf("sql2rel: streaming window aggregation requires ORDER BY on a monotonic (rowtime) column (§7.2)")
			}
		}
		frame, err := c.convertFrame(f.Over, orderKeys, rawConv)
		if err != nil {
			return nil, nil, err
		}
		key := groupKey{spec: fmt.Sprintf("%v|%s|%s", partCols, orderKeys, frame)}
		gb, ok := groups[key]
		if !ok {
			gb = &groupBuild{group: &rel.WindowGroup{PartitionKeys: partCols, OrderKeys: orderKeys, Frame: frame}}
			groups[key] = gb
			groupOrder = append(groupOrder, key)
		}
		name := strings.ToUpper(f.Name)
		gb.group.Calls = append(gb.group.Calls, rex.NewAggCall(kind, args, f.Distinct, name))
		gb.digests = append(gb.digests, digest)
	}

	// Assign output ordinals: window output = pre-projected fields then one
	// column per call, in group order.
	finalGroups := make([]rel.WindowGroup, 0, len(groupOrder))
	slot := len(preExprs)
	for _, key := range groupOrder {
		gb := groups[key]
		finalGroups = append(finalGroups, *gb.group)
		for _, d := range gb.digests {
			callSlot[d] = slot
			slot++
		}
	}

	var node rel.Node = input
	if len(preExprs) != inWidth {
		node = rel.NewProject(input, preExprs, preNames)
	}
	node = rel.NewWindow(node, finalGroups)
	winFields := node.RowType().Fields

	outConv := &validate.ExprConverter{
		Scope: scopeOf(winFields),
		WindowSink: func(f *parser.FuncCall) (rex.Node, error) {
			idx, ok := callSlot[validate.ExprDigest(f)]
			if !ok {
				return nil, fmt.Errorf("sql2rel: window call %s not registered", f.Name)
			}
			return rex.NewInputRef(idx, winFields[idx].Type), nil
		},
	}
	// Give the original namespaces to the window output scope so qualified
	// references (o.rowtime) still resolve (offsets are unchanged).
	outConv.Scope = validate.NewScope(nil)
	for _, ns := range scope.Namespaces {
		outConv.Scope.AddNamespace(ns.Alias, ns.Fields)
	}
	return node, outConv, nil
}

// convertFrame builds the physical frame of one OVER clause: the implicit
// RANGE UNBOUNDED PRECEDING .. CURRENT ROW when no spec is written,
// otherwise the parsed bounds folded to signed constant offsets, with the
// static checks the executor relies on (non-negative constant offsets, a
// coherent lower/upper pair, and — for value-based RANGE offsets — exactly
// one ORDER BY key to measure the offset against).
func (c *Converter) convertFrame(over *parser.WindowSpec, orderKeys trait.Collation, rawConv *validate.ExprConverter) (rel.WindowFrame, error) {
	frame := rel.DefaultFrame()
	if over.Frame == nil {
		return frame, nil
	}
	fs := over.Frame
	frame.Rows = fs.Rows
	bound := func(b parser.FrameBound) (unbounded bool, off int64, err error) {
		if b.Unbounded {
			return true, 0, nil
		}
		if b.Current {
			return false, 0, nil
		}
		n, err := rawConv.Convert(b.Offset)
		if err != nil {
			return false, 0, err
		}
		v, err := rex.EvalConstant(n)
		if err != nil {
			return false, 0, fmt.Errorf("sql2rel: frame bound must be constant: %v", err)
		}
		iv, ok := types.AsInt(v)
		if !ok || iv < 0 {
			return false, 0, fmt.Errorf("sql2rel: frame offset must be a non-negative constant, got %v", v)
		}
		if !b.Following {
			iv = -iv
		}
		return false, iv, nil
	}
	var err error
	if frame.LoUnbounded, frame.Lo, err = bound(fs.Lo); err != nil {
		return frame, err
	}
	if frame.HiUnbounded, frame.Hi, err = bound(fs.Hi); err != nil {
		return frame, err
	}
	if !frame.LoUnbounded && !frame.HiUnbounded && frame.Lo > frame.Hi {
		return frame, fmt.Errorf("sql2rel: frame lower bound is beyond its upper bound")
	}
	if !frame.Rows {
		hasOffset := (!frame.LoUnbounded && frame.Lo != 0) || (!frame.HiUnbounded && frame.Hi != 0)
		if hasOffset && len(orderKeys) != 1 {
			return frame, fmt.Errorf("sql2rel: a RANGE frame with an offset requires exactly one ORDER BY key")
		}
	}
	return frame, nil
}

// deriveName picks the output column name for a select item.
func deriveName(it parser.SelectItem, i int) string {
	if it.Alias != "" {
		return it.Alias
	}
	if id, ok := it.Expr.(*parser.Ident); ok {
		return id.Parts[len(id.Parts)-1]
	}
	return fmt.Sprintf("EXPR$%d", i)
}

func scopeOf(fields []types.Field) *validate.Scope {
	s := validate.NewScope(nil)
	s.AddNamespace("", fields)
	return s
}

// applyOrderLimit attaches ORDER BY / OFFSET / LIMIT above a plan whose
// output columns were produced by selConv (nil when ordering a set
// operation).
func (c *Converter) applyOrderLimit(node rel.Node, orderBy []parser.OrderItem, offsetE, limitE parser.Expr, selConv *validate.ExprConverter) (rel.Node, error) {
	offset, fetch := int64(0), int64(-1)
	if offsetE != nil {
		v, err := constInt(offsetE)
		if err != nil {
			return nil, fmt.Errorf("sql2rel: OFFSET must be a constant integer: %v", err)
		}
		offset = v
	}
	if limitE != nil {
		v, err := constInt(limitE)
		if err != nil {
			return nil, fmt.Errorf("sql2rel: LIMIT must be a constant integer: %v", err)
		}
		fetch = v
	}
	if len(orderBy) == 0 {
		if offset == 0 && fetch < 0 {
			return node, nil
		}
		return rel.NewSort(node, nil, offset, fetch), nil
	}

	fields := node.RowType().Fields
	var collation trait.Collation
	hidden := 0
	project, isProject := node.(*rel.Project)

	for _, o := range orderBy {
		dir := trait.Ascending
		if o.Desc {
			dir = trait.Descending
		}
		// 1) ordinal
		if n, ok := o.Expr.(*parser.NumberLit); ok && n.IsInt {
			ord, _ := strconv.ParseInt(n.Text, 10, 64)
			if ord < 1 || int(ord) > len(fields) {
				return nil, fmt.Errorf("sql2rel: ORDER BY ordinal %d out of range", ord)
			}
			collation = append(collation, trait.FieldCollation{Field: int(ord - 1), Direction: dir})
			continue
		}
		// 2) output column name / alias
		if id, ok := o.Expr.(*parser.Ident); ok && len(id.Parts) == 1 {
			found := -1
			for i, f := range fields {
				if strings.EqualFold(f.Name, id.Parts[0]) {
					found = i
					break
				}
			}
			if found >= 0 {
				collation = append(collation, trait.FieldCollation{Field: found, Direction: dir})
				continue
			}
		}
		// 3) expression over the select input (hidden sort column).
		if selConv == nil || !isProject {
			return nil, fmt.Errorf("sql2rel: cannot ORDER BY expression here")
		}
		e, err := selConv.Convert(o.Expr)
		if err != nil {
			return nil, err
		}
		// Same expression as an existing projected column?
		found := -1
		for i, pe := range project.Exprs {
			if pe.String() == e.String() {
				found = i
				break
			}
		}
		if found < 0 {
			exprs := append(append([]rex.Node(nil), project.Exprs...), e)
			names := append(append([]string(nil), project.FieldNames()...), fmt.Sprintf("$sort%d", hidden))
			project = rel.NewProject(project.Inputs()[0], exprs, names)
			node = project
			found = len(exprs) - 1
			hidden++
		}
		collation = append(collation, trait.FieldCollation{Field: found, Direction: dir})
	}

	var sorted rel.Node = rel.NewSort(node, collation, offset, fetch)
	if hidden > 0 {
		// Re-project to drop hidden sort columns.
		visible := len(fields)
		exprs := make([]rex.Node, visible)
		names := make([]string, visible)
		for i := 0; i < visible; i++ {
			exprs[i] = rex.NewInputRef(i, fields[i].Type)
			names[i] = fields[i].Name
		}
		sorted = rel.NewProject(sorted, exprs, names)
	}
	return sorted, nil
}

func constInt(e parser.Expr) (int64, error) {
	if n, ok := e.(*parser.NumberLit); ok && n.IsInt {
		return strconv.ParseInt(n.Text, 10, 64)
	}
	return 0, fmt.Errorf("not an integer literal")
}
