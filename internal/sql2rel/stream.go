package sql2rel

// Continuous-query lowering (§7.2): SELECT STREAM with a group window
// (TUMBLE/HOP/SESSION over the rowtime column) in GROUP BY becomes a
// rel.StreamAggregate — one node carrying the window spec, the watermark
// policy and the aggregate calls — instead of the batch TUMBLE rewrite.
// The auxiliary functions ({TUMBLE,HOP,SESSION}_{START,END}) resolve to the
// window_start / window_end columns the operator emits.

import (
	"fmt"
	"strings"

	"calcite/internal/parser"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/types"
	"calcite/internal/validate"
)

// hasGroupWindow reports whether any GROUP BY item is a group-window call.
func hasGroupWindow(groupBy []parser.Expr) bool {
	for _, g := range groupBy {
		if f, ok := g.(*parser.FuncCall); ok && groupWindowFuncs[strings.ToUpper(f.Name)] {
			return true
		}
	}
	return false
}

// groupWindowArity gives the required argument counts per window kind: the
// core arguments, before the optional trailing lateness interval.
var groupWindowCoreArgs = map[string]int{"TUMBLE": 2, "HOP": 3, "SESSION": 2}

// buildStreamAggregate lowers SELECT STREAM … GROUP BY TUMBLE/HOP/SESSION
// into pre-projection + rel.StreamAggregate (+ HAVING filter). The
// pre-projection lays out [plain group keys…, aggregate arguments…, rowtime];
// the operator's output is [window_start, window_end, keys…, agg results…].
func (c *Converter) buildStreamAggregate(sel *parser.SelectStmt, input rel.Node, scope *validate.Scope, mono map[int]bool) (rel.Node, *validate.ExprConverter, error) {
	rawConv := &validate.ExprConverter{Scope: scope}
	inFields := scope.AllFields()

	// Split GROUP BY into the one group window and the plain keys.
	var winCall *parser.FuncCall
	var plainKeys []parser.Expr
	for _, g := range sel.GroupBy {
		if f, ok := g.(*parser.FuncCall); ok && groupWindowFuncs[strings.ToUpper(f.Name)] {
			if winCall != nil {
				return nil, nil, fmt.Errorf("sql2rel: at most one group window (TUMBLE/HOP/SESSION) is allowed in GROUP BY")
			}
			winCall = f
			continue
		}
		plainKeys = append(plainKeys, g)
	}
	name := strings.ToUpper(winCall.Name)

	constMs := func(e parser.Expr, what string) (int64, error) {
		n, err := rawConv.Convert(e)
		if err != nil {
			return 0, err
		}
		v, err := rex.EvalConstant(n)
		if err != nil {
			return 0, fmt.Errorf("sql2rel: %s %s must be a constant interval: %v", name, what, err)
		}
		ms, ok := types.AsInt(v)
		if !ok {
			return 0, fmt.Errorf("sql2rel: bad %s %s %v", name, what, v)
		}
		return ms, nil
	}

	coreArgs := groupWindowCoreArgs[name]
	if len(winCall.Args) < coreArgs || len(winCall.Args) > coreArgs+1 {
		switch name {
		case "HOP":
			return nil, nil, fmt.Errorf("sql2rel: HOP requires (rowtime, slide, size [, lateness])")
		case "SESSION":
			return nil, nil, fmt.Errorf("sql2rel: SESSION requires (rowtime, gap [, lateness])")
		}
		return nil, nil, fmt.Errorf("sql2rel: TUMBLE requires (rowtime, size [, lateness])")
	}

	win := rel.StreamWindow{}
	switch name {
	case "TUMBLE":
		size, err := constMs(winCall.Args[1], "size")
		if err != nil {
			return nil, nil, err
		}
		if size <= 0 {
			return nil, nil, fmt.Errorf("sql2rel: TUMBLE size must be a positive interval, got %d ms", size)
		}
		win = rel.StreamWindow{Kind: rel.TumbleWindow, SizeMs: size, SlideMs: size}
	case "HOP":
		slide, err := constMs(winCall.Args[1], "slide")
		if err != nil {
			return nil, nil, err
		}
		size, err := constMs(winCall.Args[2], "size")
		if err != nil {
			return nil, nil, err
		}
		if slide <= 0 || size <= 0 {
			return nil, nil, fmt.Errorf("sql2rel: HOP slide and size must be positive intervals, got slide=%d ms size=%d ms", slide, size)
		}
		if size%slide != 0 {
			return nil, nil, fmt.Errorf("sql2rel: HOP size (%d ms) must be a multiple of its slide (%d ms)", size, slide)
		}
		win = rel.StreamWindow{Kind: rel.HopWindow, SizeMs: size, SlideMs: slide}
	case "SESSION":
		gap, err := constMs(winCall.Args[1], "gap")
		if err != nil {
			return nil, nil, err
		}
		if gap <= 0 {
			return nil, nil, fmt.Errorf("sql2rel: SESSION gap must be a positive interval, got %d ms", gap)
		}
		win = rel.StreamWindow{Kind: rel.SessionWindow, GapMs: gap}
	}
	var latenessMs int64
	if len(winCall.Args) == coreArgs+1 {
		v, err := constMs(winCall.Args[coreArgs], "lateness")
		if err != nil {
			return nil, nil, err
		}
		if v < 0 {
			return nil, nil, fmt.Errorf("sql2rel: %s lateness must be non-negative, got %d ms", name, v)
		}
		latenessMs = v
	}

	// §7.2: the window's time argument must be a monotonic (rowtime) column.
	tsNode, err := rawConv.Convert(winCall.Args[0])
	if err != nil {
		return nil, nil, err
	}
	tsRef, ok := tsNode.(*rex.InputRef)
	if !ok || !mono[tsRef.Index] {
		return nil, nil, fmt.Errorf("sql2rel: %s requires a monotonic rowtime column as its first argument (§7.2)", name)
	}

	// Pre-projection: plain group keys first; aggregate arguments are
	// appended by the sink; the rowtime column is appended last.
	var preExprs []rex.Node
	var preNames []string
	groupMap := map[string]int{}               // digest -> StreamAggregate OUTPUT ordinal
	groupTypes := map[string]*types.Type{}     // digest -> output type
	groupMap[validate.ExprDigest(winCall)] = 0 // the window expr itself selects window_start
	groupTypes[validate.ExprDigest(winCall)] = types.Timestamp

	for _, g := range plainKeys {
		digest := validate.ExprDigest(g)
		if _, dup := groupMap[digest]; dup {
			continue
		}
		e, err := rawConv.Convert(g)
		if err != nil {
			return nil, nil, err
		}
		idx := len(preExprs)
		preExprs = append(preExprs, e)
		preNames = append(preNames, groupFieldName(g, inFields, e))
		groupMap[digest] = 2 + idx // output space: window_start, window_end first
		groupTypes[digest] = e.Type()
	}
	nKeys := len(preExprs)

	// Aggregate calls collected from the select list / HAVING / ORDER BY.
	var calls []rex.AggCall
	callIdx := map[string]int{}
	sink := func(f *parser.FuncCall) (int, *types.Type, error) {
		digest := validate.ExprDigest(f)
		if i, ok := callIdx[digest]; ok {
			return 2 + nKeys + i, calls[i].ResultType(fieldsOf(preExprs, preNames)), nil
		}
		kind, ok := rex.LookupAggFunc(f.Name)
		if !ok && f.Star {
			kind = rex.AggCount
		} else if !ok {
			return 0, nil, fmt.Errorf("sql2rel: unknown aggregate %q", f.Name)
		}
		var args []int
		if !f.Star {
			for _, a := range f.Args {
				e, err := rawConv.Convert(a)
				if err != nil {
					return 0, nil, err
				}
				args = append(args, len(preExprs))
				preExprs = append(preExprs, e)
				preNames = append(preNames, fmt.Sprintf("$agg_arg%d", len(preExprs)))
			}
		}
		call := rex.NewAggCall(kind, args, f.Distinct, strings.ToUpper(f.Name))
		i := len(calls)
		calls = append(calls, call)
		callIdx[digest] = i
		return 2 + nKeys + i, call.ResultType(fieldsOf(preExprs, preNames)), nil
	}

	special := map[string]func(*parser.FuncCall) (rex.Node, error){}
	registerStreamWindowAux(special, name, winCall.Args[:coreArgs])

	aggConv := &validate.ExprConverter{
		Scope:        scope,
		GroupExprMap: groupMap,
		GroupTypes:   groupTypes,
		AggSink:      sink,
		RawScope:     scope,
		SpecialFuncs: special,
	}

	// Pre-convert select items, HAVING and aggregated ORDER BY expressions so
	// every aggregate argument lands in the pre-projection before the node is
	// materialized.
	items, err := expandStars(sel.Items, scope)
	if err != nil {
		return nil, nil, err
	}
	for _, it := range items {
		if _, err := aggConv.Convert(it.Expr); err != nil {
			return nil, nil, err
		}
	}
	var havingExpr rex.Node
	if sel.Having != nil {
		havingExpr, err = aggConv.Convert(sel.Having)
		if err != nil {
			return nil, nil, err
		}
	}
	for _, o := range sel.OrderBy {
		if exprHasAggregate(o.Expr) {
			if _, err := aggConv.Convert(o.Expr); err != nil {
				return nil, nil, err
			}
		}
	}

	// The rowtime column rides last in the pre-projection.
	win.RowtimeCol = len(preExprs)
	preExprs = append(preExprs, tsNode)
	preNames = append(preNames, "$rowtime")

	var node rel.Node = input
	if !rex.IsIdentityProjection(preExprs, rel.FieldCount(input)) {
		node = rel.NewProject(input, preExprs, preNames)
	}
	keys := make([]int, nKeys)
	for i := range keys {
		keys[i] = i
	}
	node = rel.NewStreamAggregate(node, win, latenessMs, keys, calls)
	if havingExpr != nil {
		node = rel.NewFilter(node, havingExpr)
	}

	outConv := &validate.ExprConverter{
		Scope:        validate.NewScope(nil),
		GroupExprMap: groupMap,
		GroupTypes:   groupTypes,
		SpecialFuncs: special,
		AggSink: func(f *parser.FuncCall) (int, *types.Type, error) {
			digest := validate.ExprDigest(f)
			if i, ok := callIdx[digest]; ok {
				return 2 + nKeys + i, node.RowType().Fields[2+nKeys+i].Type, nil
			}
			return 0, nil, fmt.Errorf("sql2rel: aggregate %s not registered", f.Name)
		},
	}
	return node, outConv, nil
}

// registerStreamWindowAux wires {KIND}_START and {KIND}_END to the
// window_start / window_end output columns of the StreamAggregate. The
// auxiliary call must repeat the window's core arguments (the optional
// lateness interval is not repeated).
func registerStreamWindowAux(special map[string]func(*parser.FuncCall) (rex.Node, error), kind string, coreArgs []parser.Expr) {
	var want strings.Builder
	for i, a := range coreArgs {
		if i > 0 {
			want.WriteString(",")
		}
		want.WriteString(validate.ExprDigest(a))
	}
	match := func(f *parser.FuncCall) bool {
		if len(f.Args) != len(coreArgs) {
			return false
		}
		var got strings.Builder
		for i, a := range f.Args {
			if i > 0 {
				got.WriteString(",")
			}
			got.WriteString(validate.ExprDigest(a))
		}
		return got.String() == want.String()
	}
	special[kind+"_START"] = func(f *parser.FuncCall) (rex.Node, error) {
		if !match(f) {
			return nil, fmt.Errorf("sql2rel: %s_START arguments do not match the GROUP BY %s", kind, kind)
		}
		return rex.NewInputRef(0, types.Timestamp), nil
	}
	special[kind+"_END"] = func(f *parser.FuncCall) (rex.Node, error) {
		if !match(f) {
			return nil, fmt.Errorf("sql2rel: %s_END arguments do not match the GROUP BY %s", kind, kind)
		}
		return rex.NewInputRef(1, types.Timestamp), nil
	}
}
