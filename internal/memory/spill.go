package memory

// Spill runs: temp files of encoded batches. Every run lives in the owning
// Allocator's per-query spill directory, which Allocator.Close removes
// wholesale — the teardown path queries take on error or cancellation — so
// a run leaking past its operator can never leak past the query.

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"

	"calcite/internal/schema"
)

// spillBufSize is the buffered-I/O window of run writers and readers.
const spillBufSize = 64 << 10

// spillDir returns the allocator's spill directory, creating it lazily.
func (a *Allocator) spillDir() (string, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.closed {
		return "", fmt.Errorf("memory: allocator closed")
	}
	if a.dir == "" {
		dir, err := os.MkdirTemp("", "calcite-spill-")
		if err != nil {
			return "", fmt.Errorf("memory: creating spill directory: %w", err)
		}
		a.dir = dir
	}
	return a.dir, nil
}

// SpillDir exposes the query's spill directory for tests ("" until the
// first run is created).
func (a *Allocator) SpillDir() string {
	if a == nil {
		return ""
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dir
}

func removeSpillDir(dir string) error {
	if dir == "" {
		return nil
	}
	return os.RemoveAll(dir)
}

// NewRun opens a spill run for writing on behalf of operator op.
func (a *Allocator) NewRun(op string) (*RunWriter, error) {
	if a == nil {
		return nil, fmt.Errorf("memory: no allocator; spilling requires a memory budget")
	}
	dir, err := a.spillDir()
	if err != nil {
		return nil, err
	}
	a.mu.Lock()
	a.nfiles++
	seq := a.nfiles
	a.mu.Unlock()
	path := filepath.Join(dir, fmt.Sprintf("run-%04d.spill", seq))
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("memory: creating spill file: %w", err)
	}
	return &RunWriter{a: a, op: op, f: f, w: bufio.NewWriterSize(f, spillBufSize)}, nil
}

// RunWriter streams batches into one spill file.
type RunWriter struct {
	a    *Allocator
	op   string
	f    *os.File
	w    *bufio.Writer
	rows int64
}

// WriteBatch appends a batch (compacted — selection applied) to the run.
func (w *RunWriter) WriteBatch(b *schema.Batch) error {
	w.rows += int64(b.NumRows())
	return EncodeBatch(w.w, b)
}

// WriteRows appends materialized rows as one dense batch.
func (w *RunWriter) WriteRows(rows [][]any, width int) error {
	if len(rows) == 0 {
		return nil
	}
	return w.WriteBatch(schema.BatchFromRows(rows, width))
}

// Rows returns the number of rows written so far.
func (w *RunWriter) Rows() int64 { return w.rows }

// Finish flushes the run and returns its readable handle. The written byte
// count is recorded against the operator's spill counters.
func (w *RunWriter) Finish() (*Run, error) {
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return nil, err
	}
	size, err := w.f.Seek(0, 1)
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	w.a.noteSpill(w.op, size, 1, 0)
	return &Run{path: w.f.Name(), rows: w.rows, bytes: size}, nil
}

// Abandon discards a partially written run.
func (w *RunWriter) Abandon() {
	w.f.Close()
	os.Remove(w.f.Name())
}

// Run is a finished spill file, ready to be re-read.
type Run struct {
	path  string
	rows  int64
	bytes int64
}

// Rows returns the number of rows in the run.
func (r *Run) Rows() int64 { return r.rows }

// Bytes returns the on-disk size of the run.
func (r *Run) Bytes() int64 { return r.bytes }

// Open returns a batch cursor over the run's contents.
func (r *Run) Open() (*RunReader, error) {
	f, err := os.Open(r.path)
	if err != nil {
		return nil, fmt.Errorf("memory: reopening spill file: %w", err)
	}
	return &RunReader{f: f, r: bufio.NewReaderSize(f, spillBufSize)}, nil
}

// Remove deletes the run's file. Runs are also removed wholesale when the
// allocator closes; eager removal just returns disk earlier.
func (r *Run) Remove() error { return os.Remove(r.path) }

// RunReader iterates the batches of a spill run (a schema.BatchCursor).
type RunReader struct {
	f *os.File
	r *bufio.Reader
}

// NextBatch returns the next spilled batch, or schema.Done at end of run.
func (rr *RunReader) NextBatch() (*schema.Batch, error) {
	return DecodeBatch(rr.r)
}

// Close closes the underlying file (the file itself stays for re-reads
// until Remove or allocator close).
func (rr *RunReader) Close() error { return rr.f.Close() }
