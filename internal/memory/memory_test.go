package memory

import (
	"errors"
	"os"
	"sync"
	"testing"
)

func TestPoolReserveRelease(t *testing.T) {
	p := NewPool(1000)
	if err := p.Reserve(600); err != nil {
		t.Fatalf("reserve 600: %v", err)
	}
	if err := p.Reserve(500); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-reservation: got %v, want ErrBudgetExceeded", err)
	}
	p.Release(600)
	if err := p.Reserve(1000); err != nil {
		t.Fatalf("reserve after release: %v", err)
	}
	if got := p.Used(); got != 1000 {
		t.Fatalf("used = %d, want 1000", got)
	}
}

func TestPoolUnlimited(t *testing.T) {
	p := NewPool(0)
	if err := p.Reserve(1 << 40); err != nil {
		t.Fatalf("unlimited pool refused: %v", err)
	}
	var nilPool *Pool
	if err := nilPool.Reserve(1 << 40); err != nil {
		t.Fatalf("nil pool refused: %v", err)
	}
	nilPool.Release(5) // must not panic
}

// TestPoolConcurrentQueries hammers one pool from many allocators: the
// pool's accounting must end balanced and never exceed the limit.
func TestPoolConcurrentQueries(t *testing.T) {
	const limit = 1 << 20
	p := NewPool(limit)
	var wg sync.WaitGroup
	for q := 0; q < 8; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			a := NewAllocator(p, 0, true)
			defer a.Close()
			res := Reserve(a, "op")
			for i := 0; i < 1000; i++ {
				if err := res.Grow(512); err != nil {
					// Budget contention is expected; shed and continue.
					res.Shrink(res.Held())
					continue
				}
				if i%7 == 0 {
					res.Shrink(256)
				}
			}
			res.Free()
		}()
	}
	wg.Wait()
	if got := p.Used(); got != 0 {
		t.Fatalf("pool leaked %d bytes", got)
	}
}

func TestAllocatorQueryLimit(t *testing.T) {
	a := NewAllocator(nil, 100, true)
	defer a.Close()
	res := Reserve(a, "Sort")
	if err := res.Grow(80); err != nil {
		t.Fatalf("grow 80: %v", err)
	}
	err := res.Grow(40)
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("query-limit overflow: got %v", err)
	}
	// A failed grow leaves the reservation unchanged.
	if res.Held() != 80 {
		t.Fatalf("held = %d, want 80", res.Held())
	}
	res.Shrink(50)
	if err := res.Grow(40); err != nil {
		t.Fatalf("grow after shrink: %v", err)
	}
	// Held went 80 → 30 → 70; the high-water mark stays 80.
	if a.Peak() != 80 {
		t.Fatalf("peak = %d, want 80", a.Peak())
	}
	res.Free()
	if a.Used() != 0 {
		t.Fatalf("used after free = %d", a.Used())
	}
}

func TestAllocatorCloseReturnsGrantsAndRemovesSpillDir(t *testing.T) {
	p := NewPool(1 << 20)
	a := NewAllocator(p, 0, true)
	res := Reserve(a, "HashJoin")
	if err := res.Grow(4096); err != nil {
		t.Fatal(err)
	}
	w, err := a.NewRun("HashJoin")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRows([][]any{{int64(1), "x"}}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	dir := a.SpillDir()
	if dir == "" {
		t.Fatal("no spill dir created")
	}
	if err := a.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("spill dir %s survived Close (err=%v)", dir, err)
	}
	if p.Used() != 0 {
		t.Fatalf("pool still holds %d bytes after Close", p.Used())
	}
	// Double close is fine; new runs are refused.
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := a.NewRun("HashJoin"); err == nil {
		t.Fatal("NewRun after Close should fail")
	}
}

func TestNilAllocatorIsUngoverned(t *testing.T) {
	var a *Allocator
	res := Reserve(a, "Sort")
	if res != nil {
		t.Fatal("nil allocator should give nil reservation")
	}
	if err := res.Grow(1 << 40); err != nil {
		t.Fatalf("nil reservation refused: %v", err)
	}
	res.Shrink(5)
	res.Free()
	if res.SpillAllowed() {
		t.Fatal("nil reservation must not claim spill support")
	}
	if a.SpillAllowed() {
		t.Fatal("nil allocator must not claim spill support")
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestOpStatsSnapshot(t *testing.T) {
	a := NewAllocator(nil, 0, true)
	defer a.Close()
	r1 := Reserve(a, "Sort")
	r2 := Reserve(a, "HashJoin")
	if err := r1.Grow(100); err != nil {
		t.Fatal(err)
	}
	if err := r2.Grow(300); err != nil {
		t.Fatal(err)
	}
	r1.Shrink(50)
	r1.NoteSpillEvent()
	sn := a.Snapshot()
	if len(sn) != 2 || sn[0].Name != "Sort" || sn[1].Name != "HashJoin" {
		t.Fatalf("snapshot order: %+v", sn)
	}
	if sn[0].PeakBytes != 100 || sn[1].PeakBytes != 300 {
		t.Fatalf("peaks: %+v", sn)
	}
	if sn[0].SpillEvents != 1 {
		t.Fatalf("spill events: %+v", sn[0])
	}
	if a.Peak() != 400 {
		t.Fatalf("allocator peak = %d, want 400", a.Peak())
	}
}

func TestParseBytes(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"1024", 1024, false},
		{"64KB", 64 << 10, false},
		{"64KiB", 64 << 10, false},
		{"1.5MB", 3 << 19, false},
		{"2GiB", 2 << 30, false},
		{"512B", 512, false},
		{"7m", 7 << 20, false},
		{" 8 MB ", 8 << 20, false},
		{"", 0, true},
		{"abc", 0, true},
		{"-5MB", 0, true},
	}
	for _, c := range cases {
		got, err := ParseBytes(c.in)
		if (err != nil) != c.err {
			t.Errorf("ParseBytes(%q) err=%v, want err=%v", c.in, err, c.err)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("ParseBytes(%q) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestPartitionDeterministicAndSeedSensitive(t *testing.T) {
	keys := []string{"a", "bb", "ccc", "dddd", "\x00i42|"}
	for _, k := range keys {
		if Partition(k, 8, 1) != Partition(k, 8, 1) {
			t.Fatalf("partition of %q not deterministic", k)
		}
		if p := Partition(k, 8, 0); p < 0 || p >= 8 {
			t.Fatalf("partition out of range: %d", p)
		}
	}
	// Different seeds must re-shuffle at least one key (the Grace recursion
	// contract).
	moved := false
	for _, k := range keys {
		if Partition(k, 8, 0) != Partition(k, 8, 1) {
			moved = true
		}
	}
	if !moved {
		t.Fatal("seed change did not move any key")
	}
}

// TestChildPoolChargesParent verifies the per-tenant budget scheme: a child
// grant charges both budgets, a child denial leaves the parent untouched,
// and a parent denial rolls the child's charge back.
func TestChildPoolChargesParent(t *testing.T) {
	parent := NewPool(1000)
	a := NewChildPool(parent, 600)
	b := NewChildPool(parent, 600)

	if err := a.Reserve(500); err != nil {
		t.Fatalf("child a reserve: %v", err)
	}
	if parent.Used() != 500 || a.Used() != 500 {
		t.Fatalf("used parent=%d a=%d, want 500/500", parent.Used(), a.Used())
	}
	// Child limit enforced independently of the parent's headroom.
	if err := a.Reserve(200); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("child over own limit: got %v, want ErrBudgetExceeded", err)
	}
	if parent.Used() != 500 {
		t.Fatalf("parent charged %d by a denied child grant", parent.Used()-500)
	}
	// Parent denial rolls back the child's optimistic charge.
	if err := b.Reserve(600); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("parent exhaustion: got %v, want ErrBudgetExceeded", err)
	}
	if b.Used() != 0 {
		t.Fatalf("child b kept %d after parent denial", b.Used())
	}
	// Release flows back up.
	a.Release(500)
	if parent.Used() != 0 || a.Used() != 0 {
		t.Fatalf("after release: parent=%d a=%d, want 0/0", parent.Used(), a.Used())
	}
	if err := b.Reserve(600); err != nil {
		t.Fatalf("child b after release: %v", err)
	}
}

// TestChildPoolSpillPropagates checks that a child's spill totals roll up
// into the parent's counters (the global /metrics series).
func TestChildPoolSpillPropagates(t *testing.T) {
	parent := NewPool(0)
	child := NewChildPool(parent, 0)
	child.noteSpill(1024, 2, 1)
	if c := child.Counters(); c.SpillBytes != 1024 || c.SpillFiles != 2 || c.SpillEvents != 1 {
		t.Fatalf("child counters: %+v", c)
	}
	if c := parent.Counters(); c.SpillBytes != 1024 || c.SpillFiles != 2 || c.SpillEvents != 1 {
		t.Fatalf("parent counters: %+v", c)
	}
}

// TestChildPoolConcurrent hammers two children of one parent under -race:
// accounting must balance and the parent cap must hold throughout.
func TestChildPoolConcurrent(t *testing.T) {
	parent := NewPool(10000)
	children := []*Pool{NewChildPool(parent, 8000), NewChildPool(parent, 8000)}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := children[w%2]
			for i := 0; i < 500; i++ {
				if p.Reserve(100) == nil {
					if parent.Used() > 10000 {
						t.Error("parent cap exceeded")
					}
					p.Release(100)
				}
			}
		}(w)
	}
	wg.Wait()
	if parent.Used() != 0 || children[0].Used() != 0 || children[1].Used() != 0 {
		t.Fatalf("unbalanced: parent=%d c0=%d c1=%d",
			parent.Used(), children[0].Used(), children[1].Used())
	}
}
