package memory

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
	"time"

	"calcite/internal/schema"
)

func roundTrip(t *testing.T, b *schema.Batch) *schema.Batch {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := EncodeBatch(w, b); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

// TestCodecRoundTripAllTypes spills one batch holding every runtime value
// kind and requires an exact round-trip.
func TestCodecRoundTripAllTypes(t *testing.T) {
	ts := time.Date(2026, 7, 26, 12, 30, 0, 0, time.UTC)
	rows := [][]any{
		{nil, true, int64(-42), 3.25, "hello", []any{int64(1), "a", nil}, map[string]any{"k": int64(9), "j": "v"}, int(7), ts},
		{nil, false, int64(1 << 40), -0.0, "", []any{}, map[string]any{}, int(-3), ts.Add(time.Hour)},
	}
	b := schema.BatchFromRows(rows, 9)
	b.Seq = 17
	got := roundTrip(t, b)
	if got.Seq != 17 {
		t.Fatalf("seq = %d, want 17", got.Seq)
	}
	if got.NumRows() != 2 || got.Width() != 9 {
		t.Fatalf("shape = %dx%d", got.NumRows(), got.Width())
	}
	for i := range rows {
		if !reflect.DeepEqual(got.Row(i), rows[i]) {
			t.Errorf("row %d: got %#v want %#v", i, got.Row(i), rows[i])
		}
	}
}

// TestCodecAppliesSelectionVector: a batch with a selection vector decodes
// as the compacted batch — only live rows, in selection order.
func TestCodecAppliesSelectionVector(t *testing.T) {
	b := &schema.Batch{
		Len: 4,
		Cols: [][]any{
			{int64(0), int64(1), int64(2), int64(3)},
			{"a", "b", "c", "d"},
		},
		Sel: []int32{3, 1},
	}
	got := roundTrip(t, b)
	if got.Sel != nil {
		t.Fatal("decoded batch should be dense")
	}
	want := [][]any{{int64(3), "d"}, {int64(1), "b"}}
	for i := range want {
		if !reflect.DeepEqual(got.Row(i), want[i]) {
			t.Errorf("row %d: got %#v want %#v", i, got.Row(i), want[i])
		}
	}
}

// TestCodecStreamBatchSize3 writes a stream of batchSize=3 batches (the
// boundary-shakeout configuration) and reads them back through a run file.
func TestCodecStreamBatchSize3(t *testing.T) {
	a := NewAllocator(nil, 0, true)
	defer a.Close()
	w, err := a.NewRun("Sort")
	if err != nil {
		t.Fatal(err)
	}
	var want [][]any
	seq := int64(0)
	for start := 0; start < 10; start += 3 {
		var rows [][]any
		for i := start; i < start+3 && i < 10; i++ {
			row := []any{int64(i), float64(i) / 4, nil}
			rows = append(rows, row)
			want = append(want, row)
		}
		b := schema.BatchFromRows(rows, 3)
		b.Seq = seq
		seq++
		if err := w.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if run.Rows() != 10 {
		t.Fatalf("run rows = %d, want 10", run.Rows())
	}
	rr, err := run.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	var got [][]any
	wantSeq := int64(0)
	for {
		b, err := rr.NextBatch()
		if err == schema.Done {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Seq != wantSeq {
			t.Fatalf("batch seq = %d, want %d", b.Seq, wantSeq)
		}
		wantSeq++
		got = b.AppendRows(got)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream mismatch:\n got %v\nwant %v", got, want)
	}
}

// TestCodecRejectsUnspillable: opaque values fail with a clear error
// instead of corrupting the stream.
func TestCodecRejectsUnspillable(t *testing.T) {
	type opaque struct{ x int }
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	err := EncodeBatch(w, schema.BatchFromRows([][]any{{opaque{1}}}, 1))
	if err == nil {
		t.Fatal("expected error for unspillable value")
	}
}

// TestCodecZeroWidthAndEmpty round-trips degenerate shapes.
func TestCodecZeroWidthAndEmpty(t *testing.T) {
	got := roundTrip(t, &schema.Batch{Len: 0, Cols: [][]any{{}, {}}})
	if got.NumRows() != 0 || got.Width() != 2 {
		t.Fatalf("empty batch shape = %dx%d", got.NumRows(), got.Width())
	}
}
