package memory

import (
	"bufio"
	"bytes"
	"reflect"
	"testing"
	"time"

	"calcite/internal/schema"
)

func roundTrip(t *testing.T, b *schema.Batch) *schema.Batch {
	t.Helper()
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	if err := EncodeBatch(w, b); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeBatch(bufio.NewReader(&buf))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	return got
}

// TestCodecRoundTripAllTypes spills one batch holding every runtime value
// kind and requires an exact round-trip.
func TestCodecRoundTripAllTypes(t *testing.T) {
	ts := time.Date(2026, 7, 26, 12, 30, 0, 0, time.UTC)
	rows := [][]any{
		{nil, true, int64(-42), 3.25, "hello", []any{int64(1), "a", nil}, map[string]any{"k": int64(9), "j": "v"}, int(7), ts},
		{nil, false, int64(1 << 40), -0.0, "", []any{}, map[string]any{}, int(-3), ts.Add(time.Hour)},
	}
	b := schema.BatchFromRows(rows, 9)
	b.Seq = 17
	got := roundTrip(t, b)
	if got.Seq != 17 {
		t.Fatalf("seq = %d, want 17", got.Seq)
	}
	if got.NumRows() != 2 || got.Width() != 9 {
		t.Fatalf("shape = %dx%d", got.NumRows(), got.Width())
	}
	for i := range rows {
		if !reflect.DeepEqual(got.Row(i), rows[i]) {
			t.Errorf("row %d: got %#v want %#v", i, got.Row(i), rows[i])
		}
	}
}

// TestCodecAppliesSelectionVector: a batch with a selection vector decodes
// as the compacted batch — only live rows, in selection order.
func TestCodecAppliesSelectionVector(t *testing.T) {
	b := &schema.Batch{
		Len: 4,
		Cols: [][]any{
			{int64(0), int64(1), int64(2), int64(3)},
			{"a", "b", "c", "d"},
		},
		Sel: []int32{3, 1},
	}
	got := roundTrip(t, b)
	if got.Sel != nil {
		t.Fatal("decoded batch should be dense")
	}
	want := [][]any{{int64(3), "d"}, {int64(1), "b"}}
	for i := range want {
		if !reflect.DeepEqual(got.Row(i), want[i]) {
			t.Errorf("row %d: got %#v want %#v", i, got.Row(i), want[i])
		}
	}
}

// TestCodecStreamBatchSize3 writes a stream of batchSize=3 batches (the
// boundary-shakeout configuration) and reads them back through a run file.
func TestCodecStreamBatchSize3(t *testing.T) {
	a := NewAllocator(nil, 0, true)
	defer a.Close()
	w, err := a.NewRun("Sort")
	if err != nil {
		t.Fatal(err)
	}
	var want [][]any
	seq := int64(0)
	for start := 0; start < 10; start += 3 {
		var rows [][]any
		for i := start; i < start+3 && i < 10; i++ {
			row := []any{int64(i), float64(i) / 4, nil}
			rows = append(rows, row)
			want = append(want, row)
		}
		b := schema.BatchFromRows(rows, 3)
		b.Seq = seq
		seq++
		if err := w.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if run.Rows() != 10 {
		t.Fatalf("run rows = %d, want 10", run.Rows())
	}
	rr, err := run.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	var got [][]any
	wantSeq := int64(0)
	for {
		b, err := rr.NextBatch()
		if err == schema.Done {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Seq != wantSeq {
			t.Fatalf("batch seq = %d, want %d", b.Seq, wantSeq)
		}
		wantSeq++
		got = b.AppendRows(got)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream mismatch:\n got %v\nwant %v", got, want)
	}
}

// TestCodecRejectsUnspillable: opaque values fail with a clear error
// instead of corrupting the stream.
func TestCodecRejectsUnspillable(t *testing.T) {
	type opaque struct{ x int }
	var buf bytes.Buffer
	w := bufio.NewWriter(&buf)
	err := EncodeBatch(w, schema.BatchFromRows([][]any{{opaque{1}}}, 1))
	if err == nil {
		t.Fatal("expected error for unspillable value")
	}
}

// TestCodecZeroWidthAndEmpty round-trips degenerate shapes.
func TestCodecZeroWidthAndEmpty(t *testing.T) {
	got := roundTrip(t, &schema.Batch{Len: 0, Cols: [][]any{{}, {}}})
	if got.NumRows() != 0 || got.Width() != 2 {
		t.Fatalf("empty batch shape = %dx%d", got.NumRows(), got.Width())
	}
}

// typedPageBatch builds a vector-backed batch with one column per core
// vector kind, each carrying a NULL, so every typed page encoder sees its
// null bitmap.
func typedPageBatch(t *testing.T) (*schema.Batch, [][]any) {
	t.Helper()
	ts := time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC)
	cols := [][]any{
		{int64(-5), nil, int64(1 << 50)},
		{1.25, -0.5, nil},
		{nil, true, false},
		{"alpha", "", nil},
		{ts, nil, ts.Add(time.Minute)},
		{[]any{int64(1)}, nil, map[string]any{"k": int64(2)}}, // dynamic → VecAny page
	}
	b := &schema.Batch{Len: 3, Vecs: make([]*schema.Vector, len(cols))}
	for c, col := range cols {
		b.Vecs[c] = schema.BuildVector(col, schema.VecAny)
	}
	wantKinds := []schema.VecKind{
		schema.VecInt64, schema.VecFloat64, schema.VecBool,
		schema.VecString, schema.VecTime, schema.VecAny,
	}
	for c, want := range wantKinds {
		if b.Vecs[c].Kind != want {
			t.Fatalf("fixture col %d built as %v, want %v", c, b.Vecs[c].Kind, want)
		}
	}
	return b, cols
}

// TestCodecTypedPagesRoundTrip spills a vector-backed batch and requires
// the decoded batch to come back typed: same kinds, same values, same NULLs.
func TestCodecTypedPagesRoundTrip(t *testing.T) {
	if schema.ForceBoxed() {
		t.Skip("CALCITE_FORCE_BOXED set")
	}
	b, cols := typedPageBatch(t)
	got := roundTrip(t, b)
	if got.Vecs == nil {
		t.Fatal("decode did not produce typed vectors")
	}
	for c := range cols {
		if got.Vecs[c].Kind != b.Vecs[c].Kind {
			t.Errorf("col %d decoded as %v, want %v", c, got.Vecs[c].Kind, b.Vecs[c].Kind)
		}
	}
	for r := range cols[0] {
		for c := range cols {
			if !reflect.DeepEqual(got.Vecs[c].Get(r), cols[c][r]) {
				t.Errorf("col %d row %d: got %#v want %#v", c, r, got.Vecs[c].Get(r), cols[c][r])
			}
		}
	}
}

// TestCodecTypedPagesStreamBatchSize3 streams a typed run through a spill
// file at batchSize=3 and checks the reassembled rows, exercising page
// framing across many tiny batches.
func TestCodecTypedPagesStreamBatchSize3(t *testing.T) {
	if schema.ForceBoxed() {
		t.Skip("CALCITE_FORCE_BOXED set")
	}
	a := NewAllocator(nil, 0, true)
	defer a.Close()
	w, err := a.NewRun("Sort")
	if err != nil {
		t.Fatal(err)
	}
	var want [][]any
	ts := time.Date(2026, 8, 7, 9, 0, 0, 0, time.UTC)
	for chunk := 0; chunk < 4; chunk++ {
		cols := make([][]any, 4)
		for i := 0; i < 3; i++ {
			n := chunk*3 + i
			var f any
			if n%3 != 1 {
				f = float64(n) / 4
			}
			row := []any{int64(n), f, "s" + string(rune('a'+n)), ts.Add(time.Duration(n) * time.Second)}
			want = append(want, row)
			for c, v := range row {
				cols[c] = append(cols[c], v)
			}
		}
		b := &schema.Batch{Len: 3, Vecs: make([]*schema.Vector, len(cols))}
		for c, col := range cols {
			b.Vecs[c] = schema.BuildVector(col, schema.VecAny)
		}
		if err := w.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	rr, err := run.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Close()
	var got [][]any
	for {
		b, err := rr.NextBatch()
		if err == schema.Done {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Vecs == nil {
			t.Fatal("spilled typed run decoded without vectors")
		}
		got = b.AppendRows(got)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("stream mismatch:\n got %v\nwant %v", got, want)
	}
}

// TestCodecForceBoxedWritesAnyPages pins the escape hatch: under the boxed
// fallback the codec must not emit typed pages, and the round-trip must
// still be exact.
func TestCodecForceBoxedWritesAnyPages(t *testing.T) {
	prev := schema.SetForceBoxed(true)
	defer schema.SetForceBoxed(prev)
	b, cols := typedPageBatch(t)
	got := roundTrip(t, b)
	if got.Vecs != nil {
		for c, v := range got.Vecs {
			if v.Kind != schema.VecAny {
				t.Errorf("forced-boxed decode produced typed col %d (%v)", c, v.Kind)
			}
		}
	}
	for r := range cols[0] {
		row := got.Row(r)
		for c := range cols {
			if !reflect.DeepEqual(row[c], cols[c][r]) {
				t.Errorf("col %d row %d: got %#v want %#v", c, r, row[c], cols[c][r])
			}
		}
	}
}

// TestCodecTypedPageWithSelection spills a typed batch through a selection
// vector: only live rows survive, in selection order, still typed.
func TestCodecTypedPageWithSelection(t *testing.T) {
	if schema.ForceBoxed() {
		t.Skip("CALCITE_FORCE_BOXED set")
	}
	b := &schema.Batch{Len: 4, Vecs: []*schema.Vector{
		schema.BuildVector([]any{int64(0), int64(1), nil, int64(3)}, schema.VecAny),
		schema.BuildVector([]any{"a", "b", "c", "d"}, schema.VecAny),
	}}
	b.Sel = []int32{3, 2, 0}
	got := roundTrip(t, b)
	if got.NumRows() != 3 {
		t.Fatalf("rows = %d, want 3", got.NumRows())
	}
	want := [][]any{{int64(3), "d"}, {nil, "c"}, {int64(0), "a"}}
	for i := range want {
		if !reflect.DeepEqual(got.Row(i), want[i]) {
			t.Errorf("row %d: got %#v want %#v", i, got.Row(i), want[i])
		}
	}
	if got.Vecs == nil || got.Vecs[0].Kind != schema.VecInt64 {
		t.Fatal("selection round-trip lost typed representation")
	}
}
