// Package memory is the framework's memory governor: a per-Framework Pool
// holding the global budget, per-query Allocators that draw grants from it,
// and the spill machinery (temp-file registry plus a batch codec) that lets
// operators overflow to disk instead of failing when their grant is
// exhausted.
//
// The design follows the usual two-level budget scheme of analytic engines:
//
//   - Pool: one per Framework, sized by SetMemoryLimit. Every concurrent
//     query reserves against it, so a burst of heavy queries degrades into
//     spilling (or clean budget errors) instead of an OOM kill.
//   - Allocator: one per query execution, optionally capped below the pool
//     by a per-query limit. It is handed down the operator tree through the
//     execution context; every worker partition of a parallel plan charges
//     the same Allocator, so parallelism does not multiply the budget.
//   - Reservation: one per memory-hungry operator instance. It tags grants
//     with the operator name for the per-operator peak/spill counters that
//     EXPLAIN ANALYZE reports, and releases everything on Free.
//
// All Reservation and Allocator methods are nil-receiver safe: an ungoverned
// query (no limits configured) passes a nil *Allocator down the tree and
// every charge is a no-op, which keeps the operators' fast paths free of
// conditionals.
package memory

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// ErrBudgetExceeded is the sentinel cause of every budget failure. Operators
// that can spill treat it as the signal to overflow to disk; with spilling
// disabled it surfaces to the client wrapped with the operator and sizes.
var ErrBudgetExceeded = errors.New("memory budget exceeded")

// Pool is the framework-wide memory budget shared by all concurrent queries.
// A Pool may also be a child carved from a parent pool (NewChildPool): every
// grant then charges both budgets, which is how the serving tier gives each
// tenant a private cap inside the global budget.
type Pool struct {
	// parent, when set, is charged for every reservation this pool grants,
	// so a child can never exceed the budget it was carved from. Immutable
	// after construction (no lock needed).
	parent *Pool

	mu    sync.Mutex
	limit int64 // <= 0: unlimited
	used  int64

	// Cumulative accounting, kept as plain atomics so this package stays
	// free of observability imports; the metrics registry samples them
	// through function-backed counters at scrape time.
	grantedBytes  atomic.Int64
	deniedBytes   atomic.Int64
	releasedBytes atomic.Int64
	denials       atomic.Int64
	spillEvents   atomic.Int64
	spillBytes    atomic.Int64
	spillFiles    atomic.Int64
}

// NewPool returns a pool with the given byte limit (<= 0 means unlimited).
func NewPool(limit int64) *Pool { return &Pool{limit: limit} }

// NewChildPool carves a sub-budget out of parent: reservations must fit under
// the child's own limit (<= 0: bounded by the parent only) AND succeed against
// the parent, so the sum of all children can never exceed the parent's budget.
// Used by the serving tier for per-tenant budgets — one tenant's spill storm
// exhausts its child pool and degrades that tenant only.
func NewChildPool(parent *Pool, limit int64) *Pool {
	return &Pool{parent: parent, limit: limit}
}

// SetLimit replaces the pool's byte limit (<= 0 means unlimited). Grants
// already outstanding are unaffected.
func (p *Pool) SetLimit(limit int64) {
	p.mu.Lock()
	p.limit = limit
	p.mu.Unlock()
}

// Limit returns the configured byte limit (<= 0 means unlimited).
func (p *Pool) Limit() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.limit
}

// Used returns the bytes currently reserved by all queries.
func (p *Pool) Used() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// Reserve charges n bytes against the pool. A nil pool is unlimited. For a
// child pool the grant must also succeed against the parent; a parent denial
// rolls the child's charge back, so the two budgets never drift apart.
func (p *Pool) Reserve(n int64) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	if p.limit > 0 && p.used+n > p.limit {
		p.denials.Add(1)
		p.deniedBytes.Add(n)
		err := fmt.Errorf("%w: pool limit %s, in use %s, requested %s",
			ErrBudgetExceeded, FormatBytes(p.limit), FormatBytes(p.used), FormatBytes(n))
		p.mu.Unlock()
		return err
	}
	p.used += n
	p.mu.Unlock()
	if err := p.parent.Reserve(n); err != nil {
		p.mu.Lock()
		p.used -= n
		if p.used < 0 {
			p.used = 0
		}
		p.mu.Unlock()
		p.denials.Add(1)
		p.deniedBytes.Add(n)
		return err
	}
	p.grantedBytes.Add(n)
	return nil
}

// Release returns n bytes to the pool (and, for a child, to its parent).
func (p *Pool) Release(n int64) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.used -= n
	if p.used < 0 {
		p.used = 0
	}
	p.mu.Unlock()
	p.parent.Release(n)
	p.releasedBytes.Add(n)
}

// noteSpill accumulates the pool-wide spill totals (and the parent's, so the
// global counters cover every tenant).
func (p *Pool) noteSpill(bytes int64, files, events int) {
	if p == nil {
		return
	}
	p.spillBytes.Add(bytes)
	p.spillFiles.Add(int64(files))
	p.spillEvents.Add(int64(events))
	p.parent.noteSpill(bytes, files, events)
}

// PoolCounters is a point-in-time read of the pool's cumulative accounting.
type PoolCounters struct {
	GrantedBytes  int64
	DeniedBytes   int64
	ReleasedBytes int64
	Denials       int64
	SpillEvents   int64
	SpillBytes    int64
	SpillFiles    int64
}

// Counters returns the cumulative grant/denial/spill totals since the pool
// was created.
func (p *Pool) Counters() PoolCounters {
	if p == nil {
		return PoolCounters{}
	}
	return PoolCounters{
		GrantedBytes:  p.grantedBytes.Load(),
		DeniedBytes:   p.deniedBytes.Load(),
		ReleasedBytes: p.releasedBytes.Load(),
		Denials:       p.denials.Load(),
		SpillEvents:   p.spillEvents.Load(),
		SpillBytes:    p.spillBytes.Load(),
		SpillFiles:    p.spillFiles.Load(),
	}
}

// OpStats are the per-operator memory counters of one query execution,
// surfaced by EXPLAIN ANALYZE.
type OpStats struct {
	Name         string
	PeakBytes    int64
	SpilledBytes int64
	SpillFiles   int
	SpillEvents  int

	cur int64
}

// Allocator is the per-query memory account. It draws grants from the
// framework pool (when one is configured), enforces the optional per-query
// cap, and owns the query's spill directory so that every temp file is
// removed when the query ends — success, error or cancellation alike.
type Allocator struct {
	pool         *Pool
	queryLimit   int64 // <= 0: bounded by the pool only
	spillEnabled bool

	mu      sync.Mutex
	used    int64
	peak    int64
	ops     map[string]*OpStats
	opOrder []string
	dir     string
	nfiles  int
	closed  bool
}

// NewAllocator opens a per-query account against pool (which may be nil)
// with an optional per-query cap. spillEnabled controls whether operators
// may overflow to disk when a grant fails.
func NewAllocator(pool *Pool, queryLimit int64, spillEnabled bool) *Allocator {
	return &Allocator{
		pool:         pool,
		queryLimit:   queryLimit,
		spillEnabled: spillEnabled,
		ops:          map[string]*OpStats{},
	}
}

// SpillAllowed reports whether operators may overflow to disk. A nil
// allocator never spills (it also never fails a grant).
func (a *Allocator) SpillAllowed() bool { return a != nil && a.spillEnabled }

// Used returns the bytes currently granted.
func (a *Allocator) Used() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// Peak returns the high-water mark of granted bytes.
func (a *Allocator) Peak() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peak
}

// QueryLimit returns the per-query cap (<= 0: bounded by the pool only).
func (a *Allocator) QueryLimit() int64 {
	if a == nil {
		return 0
	}
	return a.queryLimit
}

func (a *Allocator) op(name string) *OpStats {
	st, ok := a.ops[name]
	if !ok {
		st = &OpStats{Name: name}
		a.ops[name] = st
		a.opOrder = append(a.opOrder, name)
	}
	return st
}

// grant charges n bytes on behalf of operator op.
func (a *Allocator) grant(op string, n int64) error {
	if a == nil || n <= 0 {
		return nil
	}
	a.mu.Lock()
	if a.queryLimit > 0 && a.used+n > a.queryLimit {
		used := a.used
		a.mu.Unlock()
		return fmt.Errorf("%s: %w: query limit %s, in use %s, requested %s",
			op, ErrBudgetExceeded, FormatBytes(a.queryLimit), FormatBytes(used), FormatBytes(n))
	}
	a.mu.Unlock()
	// Pool reservation happens outside the allocator lock: concurrent
	// queries contend on the pool's own mutex only.
	if err := a.pool.Reserve(n); err != nil {
		return fmt.Errorf("%s: %w", op, err)
	}
	a.mu.Lock()
	a.used += n
	if a.used > a.peak {
		a.peak = a.used
	}
	st := a.op(op)
	st.cur += n
	if st.cur > st.PeakBytes {
		st.PeakBytes = st.cur
	}
	a.mu.Unlock()
	return nil
}

// release returns n bytes granted on behalf of operator op.
func (a *Allocator) release(op string, n int64) {
	if a == nil || n <= 0 {
		return
	}
	a.pool.Release(n)
	a.mu.Lock()
	a.used -= n
	if a.used < 0 {
		a.used = 0
	}
	st := a.op(op)
	st.cur -= n
	a.mu.Unlock()
}

// noteSpill records spilled bytes/files for operator op.
func (a *Allocator) noteSpill(op string, bytes int64, files, events int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	st := a.op(op)
	st.SpilledBytes += bytes
	st.SpillFiles += files
	st.SpillEvents += events
	a.mu.Unlock()
	a.pool.noteSpill(bytes, files, events)
}

// Snapshot returns the per-operator counters in first-registration order.
func (a *Allocator) Snapshot() []OpStats {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make([]OpStats, 0, len(a.opOrder))
	for _, name := range a.opOrder {
		out = append(out, *a.ops[name])
	}
	return out
}

// Spilled reports the total bytes this query wrote to spill files.
func (a *Allocator) Spilled() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	var n int64
	for _, st := range a.ops {
		n += st.SpilledBytes
	}
	return n
}

// Close ends the query's memory account: every remaining grant is returned
// to the pool and the spill directory (with all temp files in it) is
// removed. It is safe to call more than once and must run on every exit
// path — success, error and cancellation.
func (a *Allocator) Close() error {
	if a == nil {
		return nil
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil
	}
	a.closed = true
	leak := a.used
	a.used = 0
	dir := a.dir
	a.dir = ""
	a.mu.Unlock()
	a.pool.Release(leak)
	return removeSpillDir(dir)
}

// Reservation is one operator's handle on the query budget: grants are
// accumulated so a single Free returns everything the operator held.
type Reservation struct {
	a    *Allocator
	op   string
	held int64
}

// Reserve opens a reservation tagged with the operator name. A nil
// allocator yields a nil reservation, whose methods are all no-ops that
// always grant.
func Reserve(a *Allocator, op string) *Reservation {
	if a == nil {
		return nil
	}
	return &Reservation{a: a, op: op}
}

// Grow charges n more bytes; on failure the reservation is unchanged.
func (r *Reservation) Grow(n int64) error {
	if r == nil {
		return nil
	}
	if err := r.a.grant(r.op, n); err != nil {
		return err
	}
	r.held += n
	return nil
}

// Shrink returns n bytes (capped at the held amount).
func (r *Reservation) Shrink(n int64) {
	if r == nil {
		return
	}
	if n > r.held {
		n = r.held
	}
	r.a.release(r.op, n)
	r.held -= n
}

// Held returns the bytes currently held by this reservation.
func (r *Reservation) Held() int64 {
	if r == nil {
		return 0
	}
	return r.held
}

// Free returns everything the reservation holds.
func (r *Reservation) Free() {
	if r == nil {
		return
	}
	r.a.release(r.op, r.held)
	r.held = 0
}

// SpillAllowed reports whether the owning allocator permits spilling.
func (r *Reservation) SpillAllowed() bool {
	return r != nil && r.a.SpillAllowed()
}

// NoteSpillEvent counts one spill decision (bytes and file counts are
// recorded by the run writers themselves).
func (r *Reservation) NoteSpillEvent() {
	if r == nil {
		return
	}
	r.a.noteSpill(r.op, 0, 0, 1)
}

// Alloc returns the owning allocator (nil for the no-op reservation).
func (r *Reservation) Alloc() *Allocator {
	if r == nil {
		return nil
	}
	return r.a
}

// Partition routes a canonical key string to one of p spill partitions.
// seed varies the hash between Grace-join/aggregation recursion levels so a
// partition that would not subdivide under one hash splits under the next.
func Partition(key string, p, seed int) int {
	h := uint32(2166136261) ^ uint32(seed)*0x9e3779b9
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(p))
}

// FormatBytes renders a byte count with a binary-unit suffix.
func FormatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return strconv.FormatFloat(float64(n)/(1<<30), 'f', 1, 64) + "GiB"
	case n >= 1<<20:
		return strconv.FormatFloat(float64(n)/(1<<20), 'f', 1, 64) + "MiB"
	case n >= 1<<10:
		return strconv.FormatFloat(float64(n)/(1<<10), 'f', 1, 64) + "KiB"
	}
	return strconv.FormatInt(n, 10) + "B"
}

// ParseBytes parses a human byte size: a plain integer (bytes) or an
// integer/decimal with a KB/MB/GB/KiB/MiB/GiB suffix (binary multiples
// either way, matching the shell flag convention).
func ParseBytes(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	if t == "" {
		return 0, fmt.Errorf("memory: empty size")
	}
	mult := int64(1)
	for _, suf := range []struct {
		text string
		mult int64
	}{
		{"GIB", 1 << 30}, {"GB", 1 << 30}, {"G", 1 << 30},
		{"MIB", 1 << 20}, {"MB", 1 << 20}, {"M", 1 << 20},
		{"KIB", 1 << 10}, {"KB", 1 << 10}, {"K", 1 << 10},
		{"B", 1},
	} {
		if strings.HasSuffix(t, suf.text) {
			mult = suf.mult
			t = strings.TrimSpace(strings.TrimSuffix(t, suf.text))
			break
		}
	}
	f, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("memory: cannot parse size %q", s)
	}
	if f < 0 {
		return 0, fmt.Errorf("memory: negative size %q", s)
	}
	return int64(f * float64(mult)), nil
}
