package memory

// The batch spill codec: a compact, self-delimiting binary encoding of
// schema.Batch streams for spill files. Batches are written compacted
// (selection vectors applied) and column-major, each value tagged with its
// runtime kind; the closed set of runtime value types (internal/types)
// keeps the codec total without reflection. The format is private to one
// process run — spill files never outlive the query that wrote them — so
// there is no versioning beyond a magic byte per batch.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"calcite/internal/schema"
)

const batchMagic = 0xB7

// Value tags of the spill encoding.
const (
	tagNull byte = iota
	tagFalse
	tagTrue
	tagInt64
	tagFloat64
	tagString
	tagArray
	tagMap
	tagInt
	tagTime
)

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeVarint(w *bufio.Writer, v int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func encodeValue(w *bufio.Writer, v any) error {
	switch x := v.(type) {
	case nil:
		return w.WriteByte(tagNull)
	case bool:
		if x {
			return w.WriteByte(tagTrue)
		}
		return w.WriteByte(tagFalse)
	case int64:
		if err := w.WriteByte(tagInt64); err != nil {
			return err
		}
		return writeVarint(w, x)
	case int:
		if err := w.WriteByte(tagInt); err != nil {
			return err
		}
		return writeVarint(w, int64(x))
	case float64:
		if err := w.WriteByte(tagFloat64); err != nil {
			return err
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		_, err := w.Write(buf[:])
		return err
	case string:
		if err := w.WriteByte(tagString); err != nil {
			return err
		}
		if err := writeUvarint(w, uint64(len(x))); err != nil {
			return err
		}
		_, err := w.WriteString(x)
		return err
	case []any:
		if err := w.WriteByte(tagArray); err != nil {
			return err
		}
		if err := writeUvarint(w, uint64(len(x))); err != nil {
			return err
		}
		for _, e := range x {
			if err := encodeValue(w, e); err != nil {
				return err
			}
		}
		return nil
	case map[string]any:
		if err := w.WriteByte(tagMap); err != nil {
			return err
		}
		if err := writeUvarint(w, uint64(len(x))); err != nil {
			return err
		}
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := writeUvarint(w, uint64(len(k))); err != nil {
				return err
			}
			if _, err := w.WriteString(k); err != nil {
				return err
			}
			if err := encodeValue(w, x[k]); err != nil {
				return err
			}
		}
		return nil
	case time.Time:
		if err := w.WriteByte(tagTime); err != nil {
			return err
		}
		b, err := x.MarshalBinary()
		if err != nil {
			return err
		}
		if err := writeUvarint(w, uint64(len(b))); err != nil {
			return err
		}
		_, err = w.Write(b)
		return err
	default:
		return fmt.Errorf("memory: cannot spill value of type %T", v)
	}
}

func decodeValue(r *bufio.Reader) (any, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNull:
		return nil, nil
	case tagFalse:
		return false, nil
	case tagTrue:
		return true, nil
	case tagInt64:
		return binary.ReadVarint(r)
	case tagInt:
		v, err := binary.ReadVarint(r)
		return int(v), err
	case tagFloat64:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
	case tagString:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return string(buf), nil
	case tagArray:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		out := make([]any, n)
		for i := range out {
			if out[i], err = decodeValue(r); err != nil {
				return nil, err
			}
		}
		return out, nil
	case tagMap:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		out := make(map[string]any, n)
		for i := uint64(0); i < n; i++ {
			kl, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			kb := make([]byte, kl)
			if _, err := io.ReadFull(r, kb); err != nil {
				return nil, err
			}
			v, err := decodeValue(r)
			if err != nil {
				return nil, err
			}
			out[string(kb)] = v
		}
		return out, nil
	case tagTime:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		var t time.Time
		if err := t.UnmarshalBinary(buf); err != nil {
			return nil, err
		}
		return t, nil
	default:
		return nil, fmt.Errorf("memory: corrupt spill stream (tag %d)", tag)
	}
}

// EncodeBatch writes one batch to the stream. The selection vector is
// applied: only live rows are written, so the decoded batch is dense.
func EncodeBatch(w *bufio.Writer, b *schema.Batch) error {
	if err := w.WriteByte(batchMagic); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(b.Width())); err != nil {
		return err
	}
	n := b.NumRows()
	if err := writeUvarint(w, uint64(n)); err != nil {
		return err
	}
	if err := writeVarint(w, b.Seq); err != nil {
		return err
	}
	for _, col := range b.Cols {
		for i := 0; i < n; i++ {
			r := i
			if b.Sel != nil {
				r = int(b.Sel[i])
			}
			if err := encodeValue(w, col[r]); err != nil {
				return err
			}
		}
	}
	return nil
}

// DecodeBatch reads one batch; it returns schema.Done at a clean
// end-of-stream.
func DecodeBatch(r *bufio.Reader) (*schema.Batch, error) {
	magic, err := r.ReadByte()
	if err == io.EOF {
		return nil, schema.Done
	}
	if err != nil {
		return nil, err
	}
	if magic != batchMagic {
		return nil, fmt.Errorf("memory: corrupt spill stream (bad batch magic %#x)", magic)
	}
	width, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	seq, err := binary.ReadVarint(r)
	if err != nil {
		return nil, err
	}
	cols := make([][]any, width)
	for c := range cols {
		col := make([]any, n)
		for i := range col {
			if col[i], err = decodeValue(r); err != nil {
				return nil, err
			}
		}
		cols[c] = col
	}
	return &schema.Batch{Len: int(n), Cols: cols, Seq: seq}, nil
}
