package memory

// The batch spill codec: a compact, self-delimiting binary encoding of
// schema.Batch streams for spill files. Batches are written compacted
// (selection vectors applied) and column-major as typed pages: each column
// carries one kind byte and (when any live row is NULL) one packed null
// bitmap — one bit per row, the on-disk counterpart of the in-memory
// byte-per-row mask — followed by a monomorphic payload (varint int64s, raw
// 8-byte float64s, bit-packed bools, length-prefixed strings). Columns
// outside the core kinds, and every column when the boxed fallback is forced
// (schema.ForceBoxed), ride an "any" page that tags each value with its
// runtime kind; the closed set of runtime value types (internal/types) keeps
// the codec total without reflection. Decoded batches are vector-backed, so
// a spill round-trip re-enters the typed kernels directly. The format is
// private to one process run — spill files never outlive the query that
// wrote them — so there is no versioning beyond a magic byte per batch.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"calcite/internal/schema"
)

const batchMagic = 0xB8

// Value tags of the spill encoding.
const (
	tagNull byte = iota
	tagFalse
	tagTrue
	tagInt64
	tagFloat64
	tagString
	tagArray
	tagMap
	tagInt
	tagTime
)

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func writeVarint(w *bufio.Writer, v int64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutVarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func encodeValue(w *bufio.Writer, v any) error {
	switch x := v.(type) {
	case nil:
		return w.WriteByte(tagNull)
	case bool:
		if x {
			return w.WriteByte(tagTrue)
		}
		return w.WriteByte(tagFalse)
	case int64:
		if err := w.WriteByte(tagInt64); err != nil {
			return err
		}
		return writeVarint(w, x)
	case int:
		if err := w.WriteByte(tagInt); err != nil {
			return err
		}
		return writeVarint(w, int64(x))
	case float64:
		if err := w.WriteByte(tagFloat64); err != nil {
			return err
		}
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		_, err := w.Write(buf[:])
		return err
	case string:
		if err := w.WriteByte(tagString); err != nil {
			return err
		}
		if err := writeUvarint(w, uint64(len(x))); err != nil {
			return err
		}
		_, err := w.WriteString(x)
		return err
	case []any:
		if err := w.WriteByte(tagArray); err != nil {
			return err
		}
		if err := writeUvarint(w, uint64(len(x))); err != nil {
			return err
		}
		for _, e := range x {
			if err := encodeValue(w, e); err != nil {
				return err
			}
		}
		return nil
	case map[string]any:
		if err := w.WriteByte(tagMap); err != nil {
			return err
		}
		if err := writeUvarint(w, uint64(len(x))); err != nil {
			return err
		}
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := writeUvarint(w, uint64(len(k))); err != nil {
				return err
			}
			if _, err := w.WriteString(k); err != nil {
				return err
			}
			if err := encodeValue(w, x[k]); err != nil {
				return err
			}
		}
		return nil
	case time.Time:
		if err := w.WriteByte(tagTime); err != nil {
			return err
		}
		b, err := x.MarshalBinary()
		if err != nil {
			return err
		}
		if err := writeUvarint(w, uint64(len(b))); err != nil {
			return err
		}
		_, err = w.Write(b)
		return err
	default:
		return fmt.Errorf("memory: cannot spill value of type %T", v)
	}
}

func decodeValue(r *bufio.Reader) (any, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNull:
		return nil, nil
	case tagFalse:
		return false, nil
	case tagTrue:
		return true, nil
	case tagInt64:
		return binary.ReadVarint(r)
	case tagInt:
		v, err := binary.ReadVarint(r)
		return int(v), err
	case tagFloat64:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, err
		}
		return math.Float64frombits(binary.LittleEndian.Uint64(buf[:])), nil
	case tagString:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		return string(buf), nil
	case tagArray:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		out := make([]any, n)
		for i := range out {
			if out[i], err = decodeValue(r); err != nil {
				return nil, err
			}
		}
		return out, nil
	case tagMap:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		out := make(map[string]any, n)
		for i := uint64(0); i < n; i++ {
			kl, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			kb := make([]byte, kl)
			if _, err := io.ReadFull(r, kb); err != nil {
				return nil, err
			}
			v, err := decodeValue(r)
			if err != nil {
				return nil, err
			}
			out[string(kb)] = v
		}
		return out, nil
	case tagTime:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		buf := make([]byte, n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, err
		}
		var t time.Time
		if err := t.UnmarshalBinary(buf); err != nil {
			return nil, err
		}
		return t, nil
	default:
		return nil, fmt.Errorf("memory: corrupt spill stream (tag %d)", tag)
	}
}

// rowAt resolves live-row index i through an optional selection vector.
func rowAt(sel []int32, i int) int {
	if sel != nil {
		return int(sel[i])
	}
	return i
}

// writeNullBitmap writes the null-presence byte and, when any of the n live
// rows is NULL per isNull, the packed one-bit-per-row bitmap.
func writeNullBitmap(w *bufio.Writer, n int, isNull func(i int) bool) error {
	has := false
	for i := 0; i < n; i++ {
		if isNull(i) {
			has = true
			break
		}
	}
	if !has {
		return w.WriteByte(0)
	}
	if err := w.WriteByte(1); err != nil {
		return err
	}
	bits := make([]byte, (n+7)/8)
	for i := 0; i < n; i++ {
		if isNull(i) {
			bits[i/8] |= 1 << (i % 8)
		}
	}
	_, err := w.Write(bits)
	return err
}

// readNullBitmap reads the null-presence byte and bitmap, returning the
// byte-per-row mask (nil when the page has no NULLs).
func readNullBitmap(r *bufio.Reader, n int) ([]bool, error) {
	has, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	switch has {
	case 0:
		return nil, nil
	case 1:
		bits := make([]byte, (n+7)/8)
		if _, err := io.ReadFull(r, bits); err != nil {
			return nil, err
		}
		nulls := make([]bool, n)
		for i := 0; i < n; i++ {
			nulls[i] = bits[i/8]&(1<<(i%8)) != 0
		}
		return nulls, nil
	default:
		return nil, fmt.Errorf("memory: corrupt spill stream (null flag %d)", has)
	}
}

// pageKindOf detects the uniform monomorphic kind of a boxed column's live
// rows, VecAny when mixed or outside the core set.
func pageKindOf(col []any, n int, sel []int32) schema.VecKind {
	kind := schema.VecAny
	for i := 0; i < n; i++ {
		v := col[rowAt(sel, i)]
		var k schema.VecKind
		switch v.(type) {
		case nil:
			continue
		case int64:
			k = schema.VecInt64
		case float64:
			k = schema.VecFloat64
		case bool:
			k = schema.VecBool
		case string:
			k = schema.VecString
		case time.Time:
			k = schema.VecTime
		default:
			return schema.VecAny
		}
		if kind == schema.VecAny {
			kind = k
		} else if kind != k {
			return schema.VecAny
		}
	}
	return kind
}

// encodeTypedPage writes one column page of the given kind, reading live row
// i through get (which returns the boxed value, nil for NULL).
func encodeTypedPage(w *bufio.Writer, kind schema.VecKind, n int, get func(i int) any) error {
	if err := w.WriteByte(byte(kind)); err != nil {
		return err
	}
	if kind == schema.VecAny {
		// Any-page rows carry their own tags; NULL is tagNull.
		if err := w.WriteByte(0); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			if err := encodeValue(w, get(i)); err != nil {
				return err
			}
		}
		return nil
	}
	if err := writeNullBitmap(w, n, func(i int) bool { return get(i) == nil }); err != nil {
		return err
	}
	switch kind {
	case schema.VecInt64:
		for i := 0; i < n; i++ {
			var x int64
			if v := get(i); v != nil {
				x = v.(int64)
			}
			if err := writeVarint(w, x); err != nil {
				return err
			}
		}
	case schema.VecFloat64:
		var buf [8]byte
		for i := 0; i < n; i++ {
			var x float64
			if v := get(i); v != nil {
				x = v.(float64)
			}
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
			if _, err := w.Write(buf[:]); err != nil {
				return err
			}
		}
	case schema.VecBool:
		bits := make([]byte, (n+7)/8)
		for i := 0; i < n; i++ {
			if v := get(i); v != nil && v.(bool) {
				bits[i/8] |= 1 << (i % 8)
			}
		}
		if _, err := w.Write(bits); err != nil {
			return err
		}
	case schema.VecString:
		for i := 0; i < n; i++ {
			var x string
			if v := get(i); v != nil {
				x = v.(string)
			}
			if err := writeUvarint(w, uint64(len(x))); err != nil {
				return err
			}
			if _, err := w.WriteString(x); err != nil {
				return err
			}
		}
	case schema.VecTime:
		for i := 0; i < n; i++ {
			v := get(i)
			if v == nil {
				if err := writeUvarint(w, 0); err != nil {
					return err
				}
				continue
			}
			mb, err := v.(time.Time).MarshalBinary()
			if err != nil {
				return err
			}
			if err := writeUvarint(w, uint64(len(mb))); err != nil {
				return err
			}
			if _, err := w.Write(mb); err != nil {
				return err
			}
		}
	}
	return nil
}

// encodeColumn writes column c of the batch as one typed page, preferring
// the vector representation when present (and the boxed fallback is not
// forced).
func encodeColumn(w *bufio.Writer, b *schema.Batch, c, n int, sel []int32) error {
	forced := schema.ForceBoxed()
	if b.Vecs != nil && !forced {
		v := b.Vecs[c]
		if v.Kind != schema.VecAny {
			// Typed vector: page out the payload slices directly.
			if err := w.WriteByte(byte(v.Kind)); err != nil {
				return err
			}
			isNull := func(i int) bool { return v.Nulls != nil && v.Nulls[rowAt(sel, i)] }
			if err := writeNullBitmap(w, n, isNull); err != nil {
				return err
			}
			switch v.Kind {
			case schema.VecInt64:
				for i := 0; i < n; i++ {
					if err := writeVarint(w, v.I64[rowAt(sel, i)]); err != nil {
						return err
					}
				}
			case schema.VecFloat64:
				var buf [8]byte
				for i := 0; i < n; i++ {
					binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.F64[rowAt(sel, i)]))
					if _, err := w.Write(buf[:]); err != nil {
						return err
					}
				}
			case schema.VecBool:
				bits := make([]byte, (n+7)/8)
				for i := 0; i < n; i++ {
					if v.B[rowAt(sel, i)] {
						bits[i/8] |= 1 << (i % 8)
					}
				}
				if _, err := w.Write(bits); err != nil {
					return err
				}
			case schema.VecString:
				for i := 0; i < n; i++ {
					s := v.S[rowAt(sel, i)]
					if isNull(i) {
						s = ""
					}
					if err := writeUvarint(w, uint64(len(s))); err != nil {
						return err
					}
					if _, err := w.WriteString(s); err != nil {
						return err
					}
				}
			case schema.VecTime:
				for i := 0; i < n; i++ {
					if isNull(i) {
						if err := writeUvarint(w, 0); err != nil {
							return err
						}
						continue
					}
					mb, err := v.T[rowAt(sel, i)].MarshalBinary()
					if err != nil {
						return err
					}
					if err := writeUvarint(w, uint64(len(mb))); err != nil {
						return err
					}
					if _, err := w.Write(mb); err != nil {
						return err
					}
				}
			}
			return nil
		}
	}
	// Boxed column (or VecAny vector): detect the page kind over live rows;
	// the forced-boxed knob pins it to an any-page so the differential suites
	// also cover the per-value encoding.
	var col []any
	if b.Cols != nil {
		col = b.Cols[c]
	} else {
		col = b.Vecs[c].Boxed()
	}
	kind := schema.VecAny
	if !forced {
		kind = pageKindOf(col, n, sel)
	}
	return encodeTypedPage(w, kind, n, func(i int) any { return col[rowAt(sel, i)] })
}

// EncodeBatch writes one batch to the stream. The selection vector is
// applied: only live rows are written, so the decoded batch is dense.
func EncodeBatch(w *bufio.Writer, b *schema.Batch) error {
	if err := w.WriteByte(batchMagic); err != nil {
		return err
	}
	width := b.Width()
	if err := writeUvarint(w, uint64(width)); err != nil {
		return err
	}
	n := b.NumRows()
	if err := writeUvarint(w, uint64(n)); err != nil {
		return err
	}
	if err := writeVarint(w, b.Seq); err != nil {
		return err
	}
	for c := 0; c < width; c++ {
		if err := encodeColumn(w, b, c, n, b.Sel); err != nil {
			return err
		}
	}
	return nil
}

// decodeColumn reads one typed column page of n rows into a vector.
func decodeColumn(r *bufio.Reader, n int) (*schema.Vector, error) {
	kb, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	kind := schema.VecKind(kb)
	if kind > schema.VecTime {
		return nil, fmt.Errorf("memory: corrupt spill stream (column kind %d)", kb)
	}
	nulls, err := readNullBitmap(r, n)
	if err != nil {
		return nil, err
	}
	v := &schema.Vector{Kind: kind, Nulls: nulls}
	switch kind {
	case schema.VecAny:
		d := make([]any, n)
		for i := range d {
			if d[i], err = decodeValue(r); err != nil {
				return nil, err
			}
		}
		v.A = d
	case schema.VecInt64:
		d := make([]int64, n)
		for i := range d {
			if d[i], err = binary.ReadVarint(r); err != nil {
				return nil, err
			}
		}
		v.I64 = d
	case schema.VecFloat64:
		d := make([]float64, n)
		var buf [8]byte
		for i := range d {
			if _, err := io.ReadFull(r, buf[:]); err != nil {
				return nil, err
			}
			d[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))
		}
		v.F64 = d
	case schema.VecBool:
		bits := make([]byte, (n+7)/8)
		if _, err := io.ReadFull(r, bits); err != nil {
			return nil, err
		}
		d := make([]bool, n)
		for i := range d {
			d[i] = bits[i/8]&(1<<(i%8)) != 0
		}
		v.B = d
	case schema.VecString:
		d := make([]string, n)
		for i := range d {
			l, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			if l == 0 {
				continue
			}
			buf := make([]byte, l)
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, err
			}
			d[i] = string(buf)
		}
		v.S = d
	case schema.VecTime:
		d := make([]time.Time, n)
		for i := range d {
			l, err := binary.ReadUvarint(r)
			if err != nil {
				return nil, err
			}
			if l == 0 {
				continue
			}
			buf := make([]byte, l)
			if _, err := io.ReadFull(r, buf); err != nil {
				return nil, err
			}
			if err := d[i].UnmarshalBinary(buf); err != nil {
				return nil, err
			}
		}
		v.T = d
	}
	return v, nil
}

// DecodeBatch reads one batch; it returns schema.Done at a clean
// end-of-stream. Decoded batches are dense and vector-backed.
func DecodeBatch(r *bufio.Reader) (*schema.Batch, error) {
	magic, err := r.ReadByte()
	if err == io.EOF {
		return nil, schema.Done
	}
	if err != nil {
		return nil, err
	}
	if magic != batchMagic {
		return nil, fmt.Errorf("memory: corrupt spill stream (bad batch magic %#x)", magic)
	}
	width, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	seq, err := binary.ReadVarint(r)
	if err != nil {
		return nil, err
	}
	vecs := make([]*schema.Vector, width)
	for c := range vecs {
		if vecs[c], err = decodeColumn(r, int(n)); err != nil {
			return nil, err
		}
	}
	return &schema.Batch{Len: int(n), Vecs: vecs, Seq: seq}, nil
}
