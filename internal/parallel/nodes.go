package parallel

// Physical operators of the parallel convention. Each node here is a
// rel.Node that additionally binds as p independent partition cursors
// (PartitionedNode), so a tree of them executes as p workers pulling morsels
// from a shared dispenser through their own copy of the pipeline. Stateless
// stages (filter, project) are not duplicated as new node types: the binder
// replicates the existing enumerable operators once per partition, so the
// serial and parallel engines share one implementation of every expression
// kernel.
//
// Every node also keeps the plain serial BatchBound contract, binding
// straight through to its serial equivalent — a parallel plan handed to the
// serial executor degrades gracefully instead of failing.

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"calcite/internal/exec"
	"calcite/internal/memory"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// ctxT abbreviates the cancellation context threaded through worker
// callbacks; a nil context means "no cancellation".
type ctxT = context.Context

// PartitionedNode is a physical operator that can produce its output as p
// independent partition cursors, each safe to drive from its own worker.
type PartitionedNode interface {
	rel.Node
	BindPartitions(ctx *exec.Context) ([]schema.BatchCursor, error)
}

// BindPartitions binds n as partition cursors: partition-aware nodes bind
// natively, stateless per-batch stages (filter, project) are replicated over
// their input's partitions, and everything else binds serially as a single
// partition.
func BindPartitions(ctx *exec.Context, n rel.Node) ([]schema.BatchCursor, error) {
	if pn, ok := n.(PartitionedNode); ok {
		parts, err := pn.BindPartitions(ctx)
		if err != nil {
			return nil, err
		}
		// All partitions of one operator share its span: counters are
		// atomic, so per-partition wrappers sum into one set of totals.
		if sp := ctx.SpanFor(n); sp != nil {
			for i, part := range parts {
				parts[i] = exec.TraceBatch(sp, part)
			}
		}
		return parts, nil
	}
	switch n.(type) {
	case *exec.Filter, *exec.Project:
		return replicate(ctx, n)
	}
	bc, err := exec.BindBatch(ctx, n)
	if err != nil {
		return nil, err
	}
	return []schema.BatchCursor{bc}, nil
}

// replicate binds a one-input per-batch operator once per input partition:
// the operator node is cloned with a leaf source wrapping the partition
// cursor, so each worker gets private operator state (selection buffers,
// compiled kernels) over shared immutable inputs.
func replicate(ctx *exec.Context, n rel.Node) ([]schema.BatchCursor, error) {
	in := n.Inputs()[0]
	parts, err := BindPartitions(ctx, in)
	if err != nil {
		return nil, err
	}
	out := make([]schema.BatchCursor, len(parts))
	sp := ctx.SpanFor(n) // clones are not in the span index; wrap explicitly
	for i, part := range parts {
		clone := n.WithNewInputs([]rel.Node{&leafSource{cur: part, rowType: in.RowType()}})
		bc, err := exec.BindBatch(ctx, clone)
		if err != nil {
			closeAll(parts[i:])
			closeAll(out[:i])
			return nil, err
		}
		out[i] = exec.TraceBatch(sp, bc)
	}
	return out, nil
}

func closeAll(parts []schema.BatchCursor) {
	for _, p := range parts {
		if p != nil {
			p.Close()
		}
	}
}

// leafSource is a plan leaf over a pre-bound partition cursor, used to
// replicate per-batch operators across partitions.
type leafSource struct {
	cur     schema.BatchCursor
	rowType *types.Type
}

func (l *leafSource) Op() string { return "PartitionSource" }

// SyntheticNode marks the leaf as a post-optimization artifact (rel.Synthetic).
func (l *leafSource) SyntheticNode()                           {}
func (l *leafSource) Inputs() []rel.Node                       { return nil }
func (l *leafSource) RowType() *types.Type                     { return l.rowType }
func (l *leafSource) Traits() trait.Set                        { return trait.NewSet(trait.Enumerable) }
func (l *leafSource) Attrs() string                            { return "" }
func (l *leafSource) WithNewInputs(inputs []rel.Node) rel.Node { return l }

func (l *leafSource) Bind(ctx *exec.Context) (schema.Cursor, error) {
	return schema.RowCursorFromBatches(l.cur), nil
}

func (l *leafSource) BindBatch(ctx *exec.Context) (schema.BatchCursor, error) {
	return l.cur, nil
}

// --- morsel scan ---

// MorselScan is the parallel table source: it splits the scan of a
// batch-scannable table into morsels that p workers claim dynamically.
type MorselScan struct {
	// Inner is the enumerable scan being parallelized.
	Inner rel.Node
	pool  *Pool
	p     int
}

// NewMorselScan wraps an enumerable scan as a morsel source for p workers.
func NewMorselScan(inner rel.Node, pool *Pool, p int) *MorselScan {
	return &MorselScan{Inner: inner, pool: pool, p: p}
}

func (s *MorselScan) Op() string           { return "MorselScan" }
func (s *MorselScan) Inputs() []rel.Node   { return nil }
func (s *MorselScan) RowType() *types.Type { return s.Inner.RowType() }
func (s *MorselScan) Traits() trait.Set {
	return s.Inner.Traits().WithDistribution(trait.RandomDist())
}
func (s *MorselScan) Attrs() string {
	return fmt.Sprintf("%s, workers=%d", s.Inner.Attrs(), s.p)
}
func (s *MorselScan) WithNewInputs(inputs []rel.Node) rel.Node { return s }

func (s *MorselScan) Bind(ctx *exec.Context) (schema.Cursor, error) {
	return s.Inner.(exec.Bound).Bind(ctx)
}

// BindBatch is the serial fallback: a plain scan.
func (s *MorselScan) BindBatch(ctx *exec.Context) (schema.BatchCursor, error) {
	return s.Inner.(exec.BatchBound).BindBatch(ctx)
}

func (s *MorselScan) BindPartitions(ctx *exec.Context) ([]schema.BatchCursor, error) {
	bc, err := s.Inner.(exec.BatchBound).BindBatch(ctx)
	if err != nil {
		return nil, err
	}
	return MorselsOn(s.pool, bc, s.p), nil
}

// --- exchange ---

// ExchangeKind selects the data movement pattern of an Exchange node.
type ExchangeKind int

const (
	// GatherKind merges p partitions into one stream in morsel order.
	GatherKind ExchangeKind = iota
	// MergeGatherKind merges p sorted partitions into one sorted stream.
	MergeGatherKind
	// HashKind repartitions rows by a hash of key columns.
	HashKind
	// RoundRobinKind scatters batches round-robin across p partitions.
	RoundRobinKind
)

func (k ExchangeKind) String() string {
	switch k {
	case GatherKind:
		return "GatherExchange"
	case MergeGatherKind:
		return "MergeGatherExchange"
	case HashKind:
		return "HashExchange"
	}
	return "RoundRobinExchange"
}

// Exchange is the explicit data-movement operator the parallel planner
// inserts wherever a node's required distribution is not satisfied by its
// input's distribution.
type Exchange struct {
	input rel.Node
	Kind  ExchangeKind
	// Keys are the hash partitioning columns (HashKind).
	Keys []int
	// Collation is the merge order (MergeGatherKind); it may reference
	// hidden trailing columns that DropTail strips from the output.
	Collation trait.Collation
	// DropTail hidden ordering columns are removed after the merge.
	DropTail int
	// Offset/Fetch apply after a merge-gather (parallel sort's limit).
	Offset, Fetch int64
	dist          trait.Distribution
	pool          *Pool
	p             int
}

// NewGatherExchange merges the partitions of input into a single stream.
func NewGatherExchange(input rel.Node, pool *Pool, p int) *Exchange {
	return &Exchange{input: input, Kind: GatherKind, Fetch: -1,
		dist: trait.Singleton(), pool: pool, p: p}
}

// NewMergeGatherExchange merges sorted partitions by collation, stripping
// dropTail hidden columns and applying offset/fetch.
func NewMergeGatherExchange(input rel.Node, collation trait.Collation, dropTail int,
	offset, fetch int64, pool *Pool, p int) *Exchange {
	return &Exchange{input: input, Kind: MergeGatherKind, Collation: collation,
		DropTail: dropTail, Offset: offset, Fetch: fetch,
		dist: trait.Singleton(), pool: pool, p: p}
}

// NewHashExchange repartitions input rows by a hash of the key columns.
func NewHashExchange(input rel.Node, keys []int, pool *Pool, p int) *Exchange {
	return &Exchange{input: input, Kind: HashKind, Keys: keys, Fetch: -1,
		dist: trait.Hashed(keys...), pool: pool, p: p}
}

// NewRoundRobinExchange scatters a (typically serial) input across p
// partitions so the operators above it can run in parallel.
func NewRoundRobinExchange(input rel.Node, pool *Pool, p int) *Exchange {
	return &Exchange{input: input, Kind: RoundRobinKind, Fetch: -1,
		dist: trait.RandomDist(), pool: pool, p: p}
}

func (e *Exchange) Op() string         { return e.Kind.String() }
func (e *Exchange) Inputs() []rel.Node { return []rel.Node{e.input} }

// SyntheticNode marks exchanges as post-optimization artifacts
// (rel.Synthetic): they carry no optimizer estimate of their own.
func (e *Exchange) SyntheticNode() {}

func (e *Exchange) RowType() *types.Type {
	t := e.input.RowType()
	if e.DropTail > 0 {
		return types.Row(t.Fields[:len(t.Fields)-e.DropTail]...)
	}
	return t
}

func (e *Exchange) Traits() trait.Set {
	return trait.NewSet(trait.Enumerable).WithDistribution(e.dist)
}

func (e *Exchange) Attrs() string {
	var parts []string
	parts = append(parts, "dist="+e.dist.String())
	if e.Kind == HashKind {
		keys := make([]string, len(e.Keys))
		for i, k := range e.Keys {
			keys[i] = fmt.Sprintf("$%d", k)
		}
		parts = append(parts, "keys=["+strings.Join(keys, ", ")+"]")
	}
	if e.Kind == MergeGatherKind && len(e.Collation) > 0 {
		parts = append(parts, "order="+e.Collation.String())
	}
	return strings.Join(parts, ", ")
}

func (e *Exchange) WithNewInputs(inputs []rel.Node) rel.Node {
	c := *e
	c.input = inputs[0]
	return &c
}

func (e *Exchange) Bind(ctx *exec.Context) (schema.Cursor, error) {
	bc, err := e.BindBatch(ctx)
	if err != nil {
		return nil, err
	}
	return schema.RowCursorFromBatches(bc), nil
}

// BindBatch binds the gathering exchanges as single cursors; for the
// scattering kinds it is the serial fallback (a pass-through).
func (e *Exchange) BindBatch(ctx *exec.Context) (schema.BatchCursor, error) {
	switch e.Kind {
	case GatherKind:
		parts, err := BindPartitions(ctx, e.input)
		if err != nil {
			return nil, err
		}
		return Gather(e.pool, parts), nil
	case MergeGatherKind:
		parts, err := BindPartitions(ctx, e.input)
		if err != nil {
			return nil, err
		}
		coll := e.Collation
		cmp := func(a, b []any) int { return exec.CompareRows(a, b, coll) }
		width := len(e.RowType().Fields)
		return MergeGather(e.pool, parts, cmp, e.Offset, e.Fetch, e.DropTail, width, batchSize(ctx)), nil
	}
	return exec.BindBatch(ctx, e.input)
}

// BindPartitions implements the scattering exchanges (hash, round-robin).
// The gathering kinds present their single stream as one partition.
func (e *Exchange) BindPartitions(ctx *exec.Context) ([]schema.BatchCursor, error) {
	switch e.Kind {
	case HashKind:
		parts, err := BindPartitions(ctx, e.input)
		if err != nil {
			return nil, err
		}
		return Scatter(parts, e.p, e.Keys), nil
	case RoundRobinKind:
		parts, err := BindPartitions(ctx, e.input)
		if err != nil {
			return nil, err
		}
		return Scatter(parts, e.p, nil), nil
	}
	bc, err := e.BindBatch(ctx)
	if err != nil {
		return nil, err
	}
	return []schema.BatchCursor{bc}, nil
}

func batchSize(ctx *exec.Context) int {
	if ctx.BatchSize > 0 {
		return ctx.BatchSize
	}
	return schema.DefaultBatchSize
}

// --- partitioned hash join ---

// HashJoinPar is the partitioned hash join: the build side is drained in
// parallel into p hash-table shards (rows routed by key hash), then each
// probe partition streams against the completed shards, which are read-only
// during the probe phase. Probe-local emission preserves the probe side's
// partitioning and batch order, so the join output stays deterministic.
// Right/full joins need cross-partition unmatched tracking and stay serial.
type HashJoinPar struct {
	*exec.HashJoin
	pool *Pool
	p    int
}

// NewHashJoinPar wraps an enumerable hash join for partitioned execution.
func NewHashJoinPar(j *exec.HashJoin, pool *Pool, p int) *HashJoinPar {
	return &HashJoinPar{HashJoin: j, pool: pool, p: p}
}

func (j *HashJoinPar) Op() string { return "ParallelHashJoin" }

func (j *HashJoinPar) Traits() trait.Set {
	return j.HashJoin.Traits().WithDistribution(trait.RandomDist())
}

func (j *HashJoinPar) WithNewInputs(inputs []rel.Node) rel.Node {
	inner := j.HashJoin.WithNewInputs(inputs).(*exec.HashJoin)
	return NewHashJoinPar(inner, j.pool, j.p)
}

// buildRow is one build-side row plus its hash key and global input
// position, which orders candidate lists the way the serial build
// (sequential drain) would.
type buildRow struct {
	row []any
	key string
	seq int64
	idx int
}

// keyOfCols is the join's match key: the shared canonical encoding, with
// NULL keys rejected (SQL equi-join: NULL never matches).
func keyOfCols(cols [][]any, r int, keys []int) (string, bool) {
	for _, c := range keys {
		if cols[c][r] == nil {
			return "", false
		}
	}
	return types.HashColsKey(cols, r, keys), true
}

func shardOfKey(key string, p int) int {
	// FNV-1a inlined over the canonical key encoding.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return int(h % uint32(p))
}

func (j *HashJoinPar) BindPartitions(ctx *exec.Context) ([]schema.BatchCursor, error) {
	info := j.Info
	// Build phase 1: drain the build partitions in parallel, each worker
	// routing its rows into per-worker shard buckets (no shared writes).
	buildParts, err := BindPartitions(ctx, j.Right())
	if err != nil {
		return nil, err
	}
	nb := len(buildParts)
	locals := make([][][]buildRow, nb)
	err = j.pool.Run(nil, nb, func(rctx ctxT, w int) error {
		part := buildParts[w]
		defer part.Close()
		shards := make([][]buildRow, j.p)
		for {
			if rctx.Err() != nil {
				return rctx.Err()
			}
			b, err := part.NextBatch()
			if err == schema.Done {
				break
			}
			if err != nil {
				return err
			}
			n := b.NumRows()
			for i := 0; i < n; i++ {
				row := b.Row(i)
				ok := true
				for _, c := range info.RightKeys {
					if row[c] == nil {
						ok = false
						break
					}
				}
				if !ok {
					continue
				}
				key := types.HashRowKey(row, info.RightKeys)
				s := shardOfKey(key, j.p)
				shards[s] = append(shards[s], buildRow{row: row, key: key, seq: b.Seq, idx: i})
			}
		}
		locals[w] = shards
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Build phase 2: one worker per shard merges the per-worker buckets
	// into that shard's hash table, in global input order so candidate
	// lists match the serial build exactly.
	tables := make([]map[string][]buildRow, j.p)
	err = j.pool.Run(nil, j.p, func(_ ctxT, s int) error {
		var all []buildRow
		for w := 0; w < nb; w++ {
			all = append(all, locals[w][s]...)
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].seq != all[b].seq {
				return all[a].seq < all[b].seq
			}
			return all[a].idx < all[b].idx
		})
		m := make(map[string][]buildRow)
		for _, br := range all {
			m[br.key] = append(m[br.key], br)
		}
		tables[s] = m
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Probe phase: each probe partition streams against the shards.
	probeParts, err := BindPartitions(ctx, j.Left())
	if err != nil {
		return nil, err
	}
	leftWidth := rel.FieldCount(j.Left())
	rightWidth := rel.FieldCount(j.Right())
	out := make([]schema.BatchCursor, len(probeParts))
	for i, part := range probeParts {
		pc := &probeCursor{
			in:         part,
			tables:     tables,
			p:          j.p,
			kind:       j.Kind,
			info:       info,
			leftWidth:  leftWidth,
			rightWidth: rightWidth,
			emitRight:  j.Kind != rel.SemiJoin && j.Kind != rel.AntiJoin,
		}
		if info.Residual != nil {
			if fn, err := rex.CompileBool(info.Residual); err == nil {
				pc.residual = fn
			} else {
				ev := ctx.Evaluator
				cond := info.Residual
				pc.residual = func(row []any) (bool, error) { return ev.EvalBool(cond, row) }
			}
		}
		out[i] = pc
	}
	return out, nil
}

// probeCursor probes one probe partition against the shared (read-only)
// build shards, emitting one columnar output batch per probe batch with the
// probe batch's sequence number — which is what keeps the gathered join
// output in serial order.
type probeCursor struct {
	in         schema.BatchCursor
	tables     []map[string][]buildRow
	p          int
	kind       rel.JoinKind
	info       exec.JoinInfo
	leftWidth  int
	rightWidth int
	emitRight  bool
	residual   func(row []any) (bool, error)
	combined   []any
	dense      []int32
}

func (c *probeCursor) NextBatch() (*schema.Batch, error) {
	for {
		b, err := c.in.NextBatch()
		if err != nil {
			return nil, err
		}
		outWidth := c.leftWidth
		if c.emitRight {
			outWidth += c.rightWidth
		}
		cols := b.BoxedCols()
		outCols := make([][]any, outWidth)
		nRows := 0
		emit := func(l int, rrow []any) {
			for col := 0; col < c.leftWidth; col++ {
				outCols[col] = append(outCols[col], cols[col][l])
			}
			if c.emitRight {
				for col := 0; col < c.rightWidth; col++ {
					if rrow == nil {
						outCols[c.leftWidth+col] = append(outCols[c.leftWidth+col], nil)
					} else {
						outCols[c.leftWidth+col] = append(outCols[c.leftWidth+col], rrow[col])
					}
				}
			}
			nRows++
		}
		if c.combined == nil {
			c.combined = make([]any, c.leftWidth+c.rightWidth)
		}
		sel := b.Sel
		if sel == nil {
			if cap(c.dense) < b.Len {
				c.dense = make([]int32, b.Len)
			}
			c.dense = c.dense[:b.Len]
			for i := range c.dense {
				c.dense[i] = int32(i)
			}
			sel = c.dense
		}
		for _, li := range sel {
			l := int(li)
			var candidates []buildRow
			if key, ok := keyOfCols(cols, l, c.info.LeftKeys); ok {
				candidates = c.tables[shardOfKey(key, c.p)][key]
			}
			matched := false
			for _, br := range candidates {
				if c.residual != nil {
					for col := 0; col < c.leftWidth; col++ {
						c.combined[col] = cols[col][l]
					}
					copy(c.combined[c.leftWidth:], br.row)
					ok, err := c.residual(c.combined)
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
				}
				matched = true
				if c.kind == rel.SemiJoin || c.kind == rel.AntiJoin {
					break
				}
				emit(l, br.row)
			}
			switch c.kind {
			case rel.SemiJoin:
				if matched {
					emit(l, nil)
				}
			case rel.AntiJoin:
				if !matched {
					emit(l, nil)
				}
			case rel.LeftJoin:
				if !matched {
					emit(l, nil)
				}
			}
		}
		if nRows == 0 {
			continue
		}
		return &schema.Batch{Len: nRows, Cols: outCols, Seq: b.Seq}, nil
	}
}

func (c *probeCursor) Close() error { return c.in.Close() }

// --- partitioned aggregate ---

// aggHiddenFields are the trailing first-seen position columns the parallel
// aggregate threads through its stages to reproduce the serial group order.
func aggHiddenFields() []types.Field {
	return []types.Field{
		{Name: "$fs_seq", Type: types.BigInt},
		{Name: "$fs_idx", Type: types.BigInt},
	}
}

// PartialAgg is the thread-local pre-aggregation stage: each worker drains
// its partition into private groups and emits one batch of partial rows
// [group keys…, accumulator states…, first-seen position]. The accumulator
// objects travel as ordinary column values to the final stage.
type PartialAgg struct {
	inner *exec.Aggregate
	pool  *Pool
	p     int
}

// NewPartialAgg wraps an enumerable aggregate as its partial stage.
func NewPartialAgg(inner *exec.Aggregate, pool *Pool, p int) *PartialAgg {
	return &PartialAgg{inner: inner, pool: pool, p: p}
}

func (a *PartialAgg) Op() string         { return "ParallelPartialAggregate" }
func (a *PartialAgg) Inputs() []rel.Node { return a.inner.Inputs() }
func (a *PartialAgg) Attrs() string      { return a.inner.Attrs() }

// SyntheticNode marks the partial stage as a post-optimization artifact
// (rel.Synthetic): the optimized plan's Aggregate corresponds to the final
// stage above it.
func (a *PartialAgg) SyntheticNode() {}

func (a *PartialAgg) RowType() *types.Type {
	innerT := a.inner.RowType()
	fields := make([]types.Field, 0, len(innerT.Fields)+2)
	fields = append(fields, innerT.Fields...)
	fields = append(fields, aggHiddenFields()...)
	return types.Row(fields...)
}

func (a *PartialAgg) Traits() trait.Set {
	return trait.NewSet(trait.Enumerable).WithDistribution(trait.RandomDist())
}

func (a *PartialAgg) WithNewInputs(inputs []rel.Node) rel.Node {
	return NewPartialAgg(a.inner.WithNewInputs(inputs).(*exec.Aggregate), a.pool, a.p)
}

func (a *PartialAgg) Bind(ctx *exec.Context) (schema.Cursor, error) {
	bc, err := a.BindBatch(ctx)
	if err != nil {
		return nil, err
	}
	return schema.RowCursorFromBatches(bc), nil
}

// BindBatch is the serial fallback: partial rows from a single partition.
func (a *PartialAgg) BindBatch(ctx *exec.Context) (schema.BatchCursor, error) {
	parts, err := a.BindPartitions(ctx)
	if err != nil {
		return nil, err
	}
	return Gather(a.pool, parts), nil
}

// partialGroup is one thread-local group of the pre-aggregation stage.
type partialGroup struct {
	key   []any
	accs  []rex.Accumulator
	fsSeq int64
	fsIdx int64
}

// BindPartitions runs the pre-aggregation eagerly across the pool (the
// aggregate is a pipeline breaker) and returns the partial batches, one
// partition per worker. Under a memory allocator every worker charges its
// group table against the shared query budget and, when a grant fails,
// flushes the dehydrated partial states to a spill run; the flushed rows
// are re-hydrated when the partition is read, and the final stage's
// MergeAccumulators folds the duplicate groups the flushes introduced.
func (a *PartialAgg) BindPartitions(ctx *exec.Context) ([]schema.BatchCursor, error) {
	parts, err := BindPartitions(ctx, a.inner.Inputs()[0])
	if err != nil {
		return nil, err
	}
	keys := a.inner.GroupKeys
	calls := a.inner.Calls
	width := len(keys) + len(calls) + 2
	results := make([]schema.BatchCursor, len(parts))
	err = a.pool.Run(nil, len(parts), func(rctx ctxT, w int) error {
		part := parts[w]
		defer part.Close()
		res := memory.Reserve(ctx.Alloc, "ParallelPartialAggregate")
		var spillW *memory.RunWriter
		groups := map[string]*partialGroup{}
		var order []*partialGroup
		// flush dehydrates every group into the worker's spill run and
		// resets the table (duplicate groups across flushes are merged by
		// the final stage).
		flush := func() error {
			if spillW == nil {
				sw, err := ctx.Alloc.NewRun("ParallelPartialAggregate")
				if err != nil {
					return err
				}
				spillW = sw
				res.NoteSpillEvent()
			}
			buf := make([][]any, 0, spillFlushChunk)
			for _, g := range order {
				row := make([]any, 0, width)
				row = append(row, g.key...)
				for _, acc := range g.accs {
					st, err := rex.DehydrateAccumulator(acc)
					if err != nil {
						return err
					}
					row = append(row, st)
				}
				row = append(row, g.fsSeq, g.fsIdx)
				buf = append(buf, row)
				if len(buf) >= spillFlushChunk {
					if err := spillW.WriteRows(buf, width); err != nil {
						return err
					}
					buf = buf[:0]
				}
			}
			if err := spillW.WriteRows(buf, width); err != nil {
				return err
			}
			groups = map[string]*partialGroup{}
			order = order[:0]
			res.Shrink(res.Held())
			return nil
		}
		scratch := []any(nil)
		for {
			if rctx.Err() != nil {
				res.Free()
				return rctx.Err()
			}
			b, err := part.NextBatch()
			if err == schema.Done {
				break
			}
			if err != nil {
				res.Free()
				return err
			}
			n := b.NumRows()
			if scratch == nil {
				scratch = make([]any, b.Width())
			}
			cols := b.BoxedCols()
			for i := 0; i < n; i++ {
				r := i
				if b.Sel != nil {
					r = int(b.Sel[i])
				}
				for c := range scratch {
					scratch[c] = cols[c][r]
				}
				k := types.HashRowKey(scratch, keys)
				newGroup := func() *partialGroup {
					key := make([]any, len(keys))
					for ki, gk := range keys {
						key[ki] = scratch[gk]
					}
					accs := make([]rex.Accumulator, len(calls))
					for ci, call := range calls {
						accs[ci] = rex.NewAccumulator(call)
					}
					g := &partialGroup{key: key, accs: accs, fsSeq: b.Seq, fsIdx: int64(i)}
					groups[k] = g
					order = append(order, g)
					return g
				}
				g, ok := groups[k]
				if !ok {
					charge := exec.AggGroupCharge(keys, calls, scratch, len(k))
					if err := res.Grow(charge); err != nil {
						if !res.SpillAllowed() {
							res.Free()
							return err
						}
						if len(order) > 0 {
							if err := flush(); err != nil {
								res.Free()
								return err
							}
						}
						// Post-flush best effort: siblings may hold the rest
						// of the budget; proceed untracked rather than starve.
						_ = res.Grow(charge)
					}
					g = newGroup()
				}
				if retained := exec.AggRetainedBytes(calls, scratch); retained > 0 {
					if err := res.Grow(retained); err != nil {
						if !res.SpillAllowed() {
							res.Free()
							return err
						}
						// Flush-then-proceed, exactly like the serial
						// spillable aggregate: the flush moves every group's
						// retained values to disk (accumulators restart
						// empty), so memory genuinely drops even when no new
						// group will ever be created again (e.g. a global
						// COLLECT). Never ignore the failure — that is
						// unbounded untracked growth.
						if err := flush(); err != nil {
							res.Free()
							return err
						}
						g = newGroup()
						_ = res.Grow(retained) // post-flush best effort
					}
				}
				for _, acc := range g.accs {
					if err := acc.Add(scratch); err != nil {
						res.Free()
						return err
					}
				}
			}
		}
		// A global aggregate emits its single group even over empty input,
		// mirroring the serial engine.
		if len(keys) == 0 && len(order) == 0 && spillW == nil {
			accs := make([]rex.Accumulator, len(calls))
			for ci, call := range calls {
				accs[ci] = rex.NewAccumulator(call)
			}
			order = append(order, &partialGroup{accs: accs})
		}
		if spillW != nil {
			// Spill the tail too and serve the whole partition from disk.
			if err := flush(); err != nil {
				res.Free()
				spillW.Abandon()
				return err
			}
			run, err := spillW.Finish()
			if err != nil {
				res.Free()
				return err
			}
			res.Free()
			rr, err := run.Open()
			if err != nil {
				run.Remove()
				return err
			}
			results[w] = &hydratingCursor{rr: rr, run: run, calls: calls, nKeys: len(keys)}
			return nil
		}
		rows := make([][]any, len(order))
		for gi, g := range order {
			row := make([]any, 0, width)
			row = append(row, g.key...)
			for _, acc := range g.accs {
				row = append(row, acc)
			}
			row = append(row, g.fsSeq, g.fsIdx)
			rows[gi] = row
		}
		b := schema.BatchFromRows(rows, width)
		b.Seq = int64(w)
		results[w] = &reservedSliceCursor{
			SliceBatchCursor: schema.NewSliceBatchCursor([]*schema.Batch{b}),
			res:              res,
		}
		return nil
	})
	if err != nil {
		for _, bc := range results {
			if bc != nil {
				bc.Close()
			}
		}
		return nil, err
	}
	return results, nil
}

// spillFlushChunk is how many dehydrated rows a flush encodes per batch.
const spillFlushChunk = 512

// reservedSliceCursor frees its reservation when the partial batch has been
// handed off.
type reservedSliceCursor struct {
	*schema.SliceBatchCursor
	res *memory.Reservation
}

func (c *reservedSliceCursor) Close() error {
	c.res.Free()
	return c.SliceBatchCursor.Close()
}

// hydratingCursor replays a spilled partial-aggregation run, rebuilding the
// accumulator objects of each row so downstream stages see exactly what an
// in-memory partial batch would have carried.
type hydratingCursor struct {
	rr    *memory.RunReader
	run   *memory.Run
	calls []rex.AggCall
	nKeys int
	seq   int64
}

func (c *hydratingCursor) NextBatch() (*schema.Batch, error) {
	b, err := c.rr.NextBatch()
	if err != nil {
		return nil, err
	}
	// The spill codec may hand back vector-backed batches; hydration mutates
	// the accumulator columns in place, so pin the boxed representation and
	// drop the vectors to keep the two in sync.
	b.BoxedCols()
	b.Vecs = nil
	for ci, call := range c.calls {
		col := b.Cols[c.nKeys+ci]
		for i, st := range col {
			acc, err := rex.HydrateAccumulator(call, st)
			if err != nil {
				return nil, err
			}
			col[i] = acc
		}
	}
	b.Seq = c.seq
	c.seq++
	return b, nil
}

func (c *hydratingCursor) Close() error {
	err := c.rr.Close()
	c.run.Remove()
	return err
}

// FinalAgg merges partial rows into final groups. With group keys it is
// partitioned — each worker merges the (hash-exchanged) partials of its key
// range and emits value rows still carrying the first-seen position, which
// the merge-gather above uses to restore the serial group order. Without
// keys it is a singleton merge of the per-worker global states.
type FinalAgg struct {
	inner *exec.Aggregate
	input rel.Node
	pool  *Pool
	p     int
}

// NewFinalAgg builds the final stage over the (exchanged) partial stream.
func NewFinalAgg(inner *exec.Aggregate, input rel.Node, pool *Pool, p int) *FinalAgg {
	return &FinalAgg{inner: inner, input: input, pool: pool, p: p}
}

func (a *FinalAgg) global() bool       { return len(a.inner.GroupKeys) == 0 }
func (a *FinalAgg) Op() string         { return "ParallelFinalAggregate" }
func (a *FinalAgg) Inputs() []rel.Node { return []rel.Node{a.input} }
func (a *FinalAgg) Attrs() string      { return a.inner.Attrs() }

func (a *FinalAgg) RowType() *types.Type {
	if a.global() {
		return a.inner.RowType()
	}
	innerT := a.inner.RowType()
	fields := make([]types.Field, 0, len(innerT.Fields)+2)
	fields = append(fields, innerT.Fields...)
	fields = append(fields, aggHiddenFields()...)
	return types.Row(fields...)
}

func (a *FinalAgg) Traits() trait.Set {
	if a.global() {
		return trait.NewSet(trait.Enumerable).WithDistribution(trait.Singleton())
	}
	// Output rows lead with the group key columns, so the hash keys are the
	// first len(GroupKeys) output ordinals (not the input ordinals).
	keys := make([]int, len(a.inner.GroupKeys))
	for i := range keys {
		keys[i] = i
	}
	return trait.NewSet(trait.Enumerable).WithDistribution(trait.Hashed(keys...))
}

func (a *FinalAgg) WithNewInputs(inputs []rel.Node) rel.Node {
	return NewFinalAgg(a.inner, inputs[0], a.pool, a.p)
}

func (a *FinalAgg) Bind(ctx *exec.Context) (schema.Cursor, error) {
	bc, err := a.BindBatch(ctx)
	if err != nil {
		return nil, err
	}
	return schema.RowCursorFromBatches(bc), nil
}

// mergeRows folds partial rows (keys…, accumulators…, first-seen) into
// final groups, preserving the smallest first-seen position per group.
type finalGroup struct {
	key   []any
	accs  []rex.Accumulator
	fsSeq int64
	fsIdx int64
}

func (a *FinalAgg) mergeRows(in schema.BatchCursor, rctx ctxT, res *memory.Reservation) ([]*finalGroup, error) {
	nKeys := len(a.inner.GroupKeys)
	nCalls := len(a.inner.Calls)
	keyOrds := make([]int, nKeys)
	for i := range keyOrds {
		keyOrds[i] = i
	}
	groups := map[string]*finalGroup{}
	var order []*finalGroup
	for {
		if rctx != nil && rctx.Err() != nil {
			return nil, rctx.Err()
		}
		b, err := in.NextBatch()
		if err == schema.Done {
			break
		}
		if err != nil {
			return nil, err
		}
		n := b.NumRows()
		for i := 0; i < n; i++ {
			row := b.Row(i)
			fsSeq, _ := row[nKeys+nCalls].(int64)
			fsIdx, _ := row[nKeys+nCalls+1].(int64)
			k := types.HashRowKey(row, keyOrds)
			g, ok := groups[k]
			if !ok {
				// The merged group set is the post-aggregation result of this
				// key range — orders of magnitude below the input. It is
				// charged but not spillable: a budget too small for the
				// result itself fails here with a clean error.
				if err := res.Grow(int64(96+len(k)) + types.SizeOfRow(row)); err != nil {
					return nil, err
				}
				g = &finalGroup{
					key:   row[:nKeys],
					accs:  make([]rex.Accumulator, nCalls),
					fsSeq: fsSeq,
					fsIdx: fsIdx,
				}
				for ci := range g.accs {
					g.accs[ci] = row[nKeys+ci].(rex.Accumulator)
				}
				groups[k] = g
				order = append(order, g)
				continue
			}
			for ci := range g.accs {
				src := row[nKeys+ci].(rex.Accumulator)
				if err := rex.MergeAccumulators(g.accs[ci], src); err != nil {
					return nil, err
				}
			}
			if fsSeq < g.fsSeq || (fsSeq == g.fsSeq && fsIdx < g.fsIdx) {
				g.fsSeq, g.fsIdx = fsSeq, fsIdx
			}
		}
	}
	return order, nil
}

// emitGroups sorts merged groups into first-seen (serial) order and
// materializes the result rows, optionally keeping the hidden first-seen
// columns for an upstream merge-gather.
func (a *FinalAgg) emitGroups(order []*finalGroup, hidden bool) *schema.Batch {
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].fsSeq != order[j].fsSeq {
			return order[i].fsSeq < order[j].fsSeq
		}
		return order[i].fsIdx < order[j].fsIdx
	})
	nKeys := len(a.inner.GroupKeys)
	width := len(a.inner.RowType().Fields)
	if hidden {
		width += 2
	}
	rows := make([][]any, len(order))
	for i, g := range order {
		row := make([]any, 0, width)
		row = append(row, g.key[:nKeys]...)
		for _, acc := range g.accs {
			row = append(row, acc.Result())
		}
		if hidden {
			row = append(row, g.fsSeq, g.fsIdx)
		}
		rows[i] = row
	}
	return schema.BatchFromRows(rows, width)
}

// BindBatch is the singleton path: merge every partial row of the gathered
// input into the final groups (the global-aggregate back end and the serial
// fallback).
func (a *FinalAgg) BindBatch(ctx *exec.Context) (schema.BatchCursor, error) {
	in, err := exec.BindBatch(ctx, a.input)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	res := memory.Reserve(ctx.Alloc, "ParallelFinalAggregate")
	order, err := a.mergeRows(in, nil, res)
	if err != nil {
		res.Free()
		return nil, err
	}
	out := a.emitGroups(order, !a.global())
	res.Free()
	return schema.NewSliceBatchCursor([]*schema.Batch{out}), nil
}

// BindPartitions merges each hash-exchanged partition independently.
func (a *FinalAgg) BindPartitions(ctx *exec.Context) ([]schema.BatchCursor, error) {
	if a.global() {
		bc, err := a.BindBatch(ctx)
		if err != nil {
			return nil, err
		}
		return []schema.BatchCursor{bc}, nil
	}
	parts, err := BindPartitions(ctx, a.input)
	if err != nil {
		return nil, err
	}
	out := make([]schema.BatchCursor, len(parts))
	for i, part := range parts {
		out[i] = &finalAggCursor{agg: a, in: part, alloc: ctx.Alloc}
	}
	return out, nil
}

// finalAggCursor lazily merges one partition's partials when first pulled,
// so the merge work runs on whichever worker drives this partition.
type finalAggCursor struct {
	agg   *FinalAgg
	in    schema.BatchCursor
	alloc *memory.Allocator
	out   *schema.Batch
	done  bool
}

func (c *finalAggCursor) NextBatch() (*schema.Batch, error) {
	if c.done {
		return nil, schema.Done
	}
	if c.out == nil {
		res := memory.Reserve(c.alloc, "ParallelFinalAggregate")
		order, err := c.agg.mergeRows(c.in, nil, res)
		if err != nil {
			res.Free()
			return nil, err
		}
		c.out = c.agg.emitGroups(order, true)
		res.Free()
	}
	c.done = true
	if c.out.Len == 0 {
		return nil, schema.Done
	}
	return c.out, nil
}

func (c *finalAggCursor) Close() error { return c.in.Close() }

// --- partitioned sort ---

// sortHiddenFields are the trailing global-position columns the parallel
// sort appends so the merge-gather can reproduce the serial stable order.
func sortHiddenFields() []types.Field {
	return []types.Field{
		{Name: "$pos_seq", Type: types.BigInt},
		{Name: "$pos_idx", Type: types.BigInt},
	}
}

// SortPar sorts each partition locally (worker-private sort of its morsels,
// truncated to OFFSET+FETCH when a limit applies) and emits sorted runs
// tagged with each row's global input position; the merge-gather above
// k-way-merges the runs into the exact order of the serial stable sort.
type SortPar struct {
	inner *exec.Sort
	pool  *Pool
	p     int
}

// NewSortPar wraps an enumerable sort as its partition-local stage.
func NewSortPar(inner *exec.Sort, pool *Pool, p int) *SortPar {
	return &SortPar{inner: inner, pool: pool, p: p}
}

func (s *SortPar) Op() string         { return "ParallelSort" }
func (s *SortPar) Inputs() []rel.Node { return s.inner.Inputs() }
func (s *SortPar) Attrs() string      { return s.inner.Attrs() }

func (s *SortPar) RowType() *types.Type {
	innerT := s.inner.RowType()
	fields := make([]types.Field, 0, len(innerT.Fields)+2)
	fields = append(fields, innerT.Fields...)
	fields = append(fields, sortHiddenFields()...)
	return types.Row(fields...)
}

func (s *SortPar) Traits() trait.Set {
	return trait.NewSet(trait.Enumerable).WithDistribution(trait.RandomDist())
}

func (s *SortPar) WithNewInputs(inputs []rel.Node) rel.Node {
	return NewSortPar(s.inner.WithNewInputs(inputs).(*exec.Sort), s.pool, s.p)
}

// MergeCollation returns the collation the gathering merge must use: the
// sort's collation extended by the hidden position columns.
func (s *SortPar) MergeCollation() trait.Collation {
	w := len(s.inner.RowType().Fields)
	coll := append(trait.Collation(nil), s.inner.Collation...)
	coll = append(coll,
		trait.FieldCollation{Field: w, Direction: trait.Ascending},
		trait.FieldCollation{Field: w + 1, Direction: trait.Ascending})
	return coll
}

func (s *SortPar) Bind(ctx *exec.Context) (schema.Cursor, error) {
	bc, err := s.BindBatch(ctx)
	if err != nil {
		return nil, err
	}
	return schema.RowCursorFromBatches(bc), nil
}

// BindBatch is the serial fallback: one gathered sorted run.
func (s *SortPar) BindBatch(ctx *exec.Context) (schema.BatchCursor, error) {
	parts, err := s.BindPartitions(ctx)
	if err != nil {
		return nil, err
	}
	coll := s.MergeCollation()
	cmp := func(a, b []any) int { return exec.CompareRows(a, b, coll) }
	return MergeGather(s.pool, parts, cmp, 0, -1, 0, len(s.RowType().Fields), batchSize(ctx)), nil
}

// BindPartitions sorts every partition eagerly across the pool (sort is a
// pipeline breaker) and returns the sorted runs. Under a memory allocator
// each worker runs an external merge sort: its rows accumulate against the
// shared query budget and overflow to sorted on-disk runs that the returned
// cursor k-way-merges back (the per-worker half of the parallel external
// sort; the merge-gather above combines the workers).
func (s *SortPar) BindPartitions(ctx *exec.Context) ([]schema.BatchCursor, error) {
	parts, err := BindPartitions(ctx, s.inner.Inputs()[0])
	if err != nil {
		return nil, err
	}
	coll := s.inner.Collation
	width := len(s.RowType().Fields)
	keep := int64(-1)
	if s.inner.Fetch >= 0 {
		keep = s.inner.Offset + s.inner.Fetch
	}
	// The per-worker sort order: collation, then global input position —
	// a total order, so spilled runs merge deterministically.
	cmp := func(a, b []any) int {
		if c := exec.CompareRows(a, b, coll); c != 0 {
			return c
		}
		if sa, sb := a[width-2].(int64), b[width-2].(int64); sa != sb {
			if sa < sb {
				return -1
			}
			return 1
		}
		ia, ib := a[width-1].(int64), b[width-1].(int64)
		switch {
		case ia < ib:
			return -1
		case ia > ib:
			return 1
		}
		return 0
	}
	results := make([]schema.BatchCursor, len(parts))
	err = s.pool.Run(nil, len(parts), func(rctx ctxT, w int) error {
		part := parts[w]
		defer part.Close()
		if ctx.Alloc != nil {
			sorter := exec.NewExternalSorter(ctx, "ParallelSort", cmp, width)
			for {
				if rctx.Err() != nil {
					sorter.Abandon()
					return rctx.Err()
				}
				b, err := part.NextBatch()
				if err == schema.Done {
					break
				}
				if err != nil {
					sorter.Abandon()
					return err
				}
				n := b.NumRows()
				for i := 0; i < n; i++ {
					row := b.Row(i)
					row = append(row, b.Seq, int64(i))
					if err := sorter.Add(row); err != nil {
						return err
					}
				}
			}
			bc, err := sorter.Finish(0, keep, batchSize(ctx))
			if err != nil {
				return err
			}
			results[w] = bc
			return nil
		}
		var rows [][]any
		for {
			if rctx.Err() != nil {
				return rctx.Err()
			}
			b, err := part.NextBatch()
			if err == schema.Done {
				break
			}
			if err != nil {
				return err
			}
			n := b.NumRows()
			for i := 0; i < n; i++ {
				row := b.Row(i)
				row = append(row, b.Seq, int64(i))
				rows = append(rows, row)
			}
		}
		sort.Slice(rows, func(a, b int) bool { return cmp(rows[a], rows[b]) < 0 })
		// Rows beyond OFFSET+FETCH can never be emitted by the merge.
		if keep >= 0 && int64(len(rows)) > keep {
			rows = rows[:keep]
		}
		b := schema.BatchFromRows(rows, width)
		b.Seq = int64(w)
		results[w] = schema.NewSliceBatchCursor([]*schema.Batch{b})
		return nil
	})
	if err != nil {
		for _, bc := range results {
			if bc != nil {
				bc.Close()
			}
		}
		return nil, err
	}
	return results, nil
}
