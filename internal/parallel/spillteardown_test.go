package parallel

// Spill teardown: a worker failing (or a query being cancelled) mid-spill
// must tear the exchanges down through their cancellation context AND leave
// no spill files behind once the query's allocator closes — the contract
// core.Framework relies on (it defers Alloc.Close on every exit path).

import (
	"errors"
	"os"
	"testing"

	"calcite/internal/exec"
	"calcite/internal/memory"
	"calcite/internal/rel"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// failingCursor yields ok batches, then fails — the mid-query error that
// stands in for cancellation.
type failingCursor struct {
	left int
	err  error
	seq  int64
}

func (c *failingCursor) NextBatch() (*schema.Batch, error) {
	if c.left <= 0 {
		return nil, c.err
	}
	c.left--
	rows := make([][]any, 64)
	for i := range rows {
		rows[i] = []any{c.seq*64 + int64(i), "payload-payload-payload"}
	}
	b := schema.BatchFromRows(rows, 2)
	b.Seq = c.seq
	c.seq++
	return b, nil
}

func (c *failingCursor) Close() error { return nil }

// failingTable serves the failing cursor through the batch-scan interface.
type failingTable struct {
	*schema.MemTable
	batches int
	err     error
}

func (t *failingTable) ScanBatches(batchSize int) (schema.BatchCursor, error) {
	return &failingCursor{left: t.batches, err: t.err}, nil
}

func TestSpillFilesCleanedUpOnMidSpillError(t *testing.T) {
	boom := errors.New("backend failed mid-query")
	rowType := types.Row(
		types.Field{Name: "id", Type: types.BigInt},
		types.Field{Name: "payload", Type: types.Varchar},
	)
	tbl := &failingTable{
		MemTable: schema.NewMemTable("t", rowType, nil),
		batches:  40, // enough to overflow the tiny budget and start spilling
		err:      boom,
	}
	scan := exec.NewScan(tbl, []string{"t"})
	sortNode := exec.NewSort(scan, trait.Collation{{Field: 1}, {Field: 0}}, 0, -1)
	pool := NewPool(4)
	plan := Parallelize(sortNode, pool, 4)

	// A budget small enough that the per-worker sorts spill several runs
	// before the source fails.
	alloc := memory.NewAllocator(memory.NewPool(32<<10), 0, true)
	ctx := exec.NewContext()
	ctx.Alloc = alloc

	_, err := exec.Execute(ctx, plan)
	if err == nil {
		t.Fatal("expected the mid-query error to surface")
	}
	if !errors.Is(err, boom) && err.Error() == "" {
		t.Fatalf("unexpected error: %v", err)
	}
	dir := alloc.SpillDir()
	if dir == "" {
		t.Fatal("the query never spilled; lower the budget so the teardown path is actually exercised")
	}
	if alloc.Spilled() == 0 {
		t.Fatal("no bytes recorded as spilled")
	}
	// The teardown contract: closing the allocator (what core defers on
	// every exit path) removes the spill directory with all files in it.
	if err := alloc.Close(); err != nil {
		t.Fatalf("allocator close: %v", err)
	}
	if _, statErr := os.Stat(dir); !os.IsNotExist(statErr) {
		ents, _ := os.ReadDir(dir)
		t.Fatalf("spill dir %s survived teardown with %d entries", dir, len(ents))
	}
}

// TestSpillParallelSortMatchesSerial: the governed parallel sort (external
// per-worker runs + merge gather) must reproduce the serial order exactly.
func TestSpillParallelSortMatchesSerial(t *testing.T) {
	scan := memScan(t, "t", 5000)
	sortNode := exec.NewSort(scan, trait.Collation{{Field: 1}, {Field: 0, Direction: trait.Descending}}, 0, -1)
	want := renderRows(runPlan(t, sortNode))
	for _, p := range []int{2, 4} {
		pool := NewPool(p)
		plan := Parallelize(sortNode, pool, p)
		ctx := exec.NewContext()
		alloc := memory.NewAllocator(memory.NewPool(24<<10), 0, true)
		ctx.Alloc = alloc
		rows, err := exec.Execute(ctx, plan)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		got := renderRows(rows)
		if len(got) != len(want) {
			t.Fatalf("p=%d: %d rows, want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d row %d: got %s, want %s", p, i, got[i], want[i])
			}
		}
		if alloc.Spilled() == 0 {
			t.Fatalf("p=%d: parallel sort under a 24KiB budget did not spill", p)
		}
		alloc.Close()
	}
}

var _ rel.Node = (*MorselScan)(nil)
