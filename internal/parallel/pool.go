package parallel

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// poolIdleTimeout is how long a resident worker lingers waiting for the next
// task before exiting. Long enough to amortize goroutine startup across the
// queries of a busy connection, short enough that idle frameworks shed their
// workers.
const poolIdleTimeout = 250 * time.Millisecond

// Pool is the shared worker pool of a Framework: every parallel query of the
// connection schedules its pipeline-driver tasks here, so concurrent queries
// share one set of resident workers instead of each spawning its own.
//
// Submission never blocks: a task is handed to an idle resident worker when
// one is available and started on a fresh goroutine otherwise (the worker
// then lingers briefly as a resident). Bounding residency instead of
// concurrency keeps the pool deadlock-free by construction — a task blocked
// on an exchange channel can never prevent the task that would unblock it
// from starting.
type Pool struct {
	parallelism int
	tasks       chan func() // unbuffered hand-off to idle resident workers

	// spawned and handoffs count goroutine starts and resident reuses, for
	// tests and introspection.
	spawned  atomic.Int64
	handoffs atomic.Int64
	// busy counts workers currently inside a task; tasksDone counts
	// completed tasks; morsels counts morsel claims across all dispensers
	// created on this pool. Plain atomics — the metrics registry samples
	// them through function-backed instruments.
	busy      atomic.Int64
	tasksDone atomic.Int64
	morsels   atomic.Int64
}

// NewPool returns a pool whose default degree of parallelism is n (floored
// at 1). The degree is advisory — it sizes partition counts, not a hard cap
// on concurrent goroutines.
func NewPool(n int) *Pool {
	if n < 1 {
		n = 1
	}
	return &Pool{parallelism: n, tasks: make(chan func())}
}

// Parallelism returns the pool's default degree of parallelism.
func (p *Pool) Parallelism() int { return p.parallelism }

// Stats reports how many worker goroutines were spawned and how many tasks
// were handed to an already-resident worker.
func (p *Pool) Stats() (spawned, handoffs int64) {
	return p.spawned.Load(), p.handoffs.Load()
}

// Busy returns the number of workers currently executing a task.
func (p *Pool) Busy() int64 {
	if p == nil {
		return 0
	}
	return p.busy.Load()
}

// TasksDone returns the cumulative count of completed tasks.
func (p *Pool) TasksDone() int64 {
	if p == nil {
		return 0
	}
	return p.tasksDone.Load()
}

// MorselsDispatched returns the cumulative count of morsels claimed by
// workers across every scan driven through this pool.
func (p *Pool) MorselsDispatched() int64 {
	if p == nil {
		return 0
	}
	return p.morsels.Load()
}

// noteMorsel counts one morsel claim (nil-safe: dispensers can be built
// without a pool in tests).
func (p *Pool) noteMorsel() {
	if p == nil {
		return
	}
	p.morsels.Add(1)
}

// Go schedules fn without blocking the caller.
func (p *Pool) Go(fn func()) {
	select {
	case p.tasks <- fn:
		p.handoffs.Add(1)
		return
	default:
	}
	p.spawned.Add(1)
	go p.worker(fn)
}

// worker runs fn, then lingers as a resident worker for a short idle window.
func (p *Pool) worker(fn func()) {
	for {
		p.busy.Add(1)
		fn()
		p.busy.Add(-1)
		p.tasksDone.Add(1)
		timer := time.NewTimer(poolIdleTimeout)
		select {
		case fn = <-p.tasks:
			timer.Stop()
		case <-timer.C:
			return
		}
	}
}

// Run executes fn(0..n-1) concurrently on the pool and waits for all of
// them. The first non-nil error is returned and cancels ctx-aware siblings
// via the returned group context pattern: fn implementations should poll ctx
// between morsels. A nil ctx runs without cancellation.
func (p *Pool) Run(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if ctx == nil {
		ctx = context.Background()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var first error
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		p.Go(func() {
			defer wg.Done()
			if err := fn(runCtx, i); err != nil {
				mu.Lock()
				if first == nil {
					first = err
				}
				mu.Unlock()
				cancel() // tear the sibling workers down
			}
		})
	}
	wg.Wait()
	if first == nil && ctx.Err() != nil {
		return ctx.Err()
	}
	return first
}
