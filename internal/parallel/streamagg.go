package parallel

// Partitioned streaming aggregation. A keyed StreamAggregate hash-exchanges
// its input on the group keys: each worker owns a disjoint key range and
// maintains its window state (panes, watermarks, spill) independently,
// charging the shared query budget. Event-time order is load-bearing here —
// the watermark of each partition trails the maximum rowtime *it* has seen —
// so the input below the exchange stays a single serial stream (no morsel
// scan): Scatter preserves the producer's arrival order per partition, and
// every partition's bounded out-of-orderness matches the serial engine's.
// Each partition emits its windows in (window_start, key…, window_end)
// order — window ends only move forward with the watermark — so a merge-
// gather over that collation restores one deterministic global emission
// order with no hidden columns.

import (
	"calcite/internal/exec"
	"calcite/internal/rel"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// StreamAggPar runs a keyed streaming aggregation partition-parallel over a
// hash exchange on the group keys.
type StreamAggPar struct {
	inner *exec.StreamAgg
	pool  *Pool
	p     int
}

// NewStreamAggPar wraps an enumerable streaming aggregation (whose input
// must already be distributed on the group keys) for partitioned execution.
func NewStreamAggPar(inner *exec.StreamAgg, pool *Pool, p int) *StreamAggPar {
	return &StreamAggPar{inner: inner, pool: pool, p: p}
}

func (a *StreamAggPar) Op() string           { return "ParallelStreamAggregate" }
func (a *StreamAggPar) Inputs() []rel.Node   { return a.inner.Inputs() }
func (a *StreamAggPar) Attrs() string        { return a.inner.Attrs() }
func (a *StreamAggPar) RowType() *types.Type { return a.inner.RowType() }

func (a *StreamAggPar) Traits() trait.Set {
	return trait.NewSet(trait.Enumerable).WithDistribution(trait.RandomDist())
}

func (a *StreamAggPar) WithNewInputs(inputs []rel.Node) rel.Node {
	return NewStreamAggPar(a.inner.WithNewInputs(inputs).(*exec.StreamAgg), a.pool, a.p)
}

func (a *StreamAggPar) Bind(ctx *exec.Context) (schema.Cursor, error) {
	bc, err := a.BindBatch(ctx)
	if err != nil {
		return nil, err
	}
	return schema.RowCursorFromBatches(bc), nil
}

// BindBatch is the serial fallback: the whole input streams through one
// window-state machine.
func (a *StreamAggPar) BindBatch(ctx *exec.Context) (schema.BatchCursor, error) {
	in, err := exec.BindBatch(ctx, a.inner.Inputs()[0])
	if err != nil {
		return nil, err
	}
	return exec.BindStreamAggOver(ctx, a.inner.StreamAggregate, in)
}

// BindPartitions gives every hash-exchanged partition its own window-state
// machine; the cursors are lazy, so the per-partition work happens in the
// workers driving the gathering merge above.
func (a *StreamAggPar) BindPartitions(ctx *exec.Context) ([]schema.BatchCursor, error) {
	parts, err := BindPartitions(ctx, a.inner.Inputs()[0])
	if err != nil {
		return nil, err
	}
	results := make([]schema.BatchCursor, len(parts))
	for i, part := range parts {
		bc, err := exec.BindStreamAggOver(ctx, a.inner.StreamAggregate, part)
		if err != nil {
			for _, done := range results {
				if done != nil {
					done.Close()
				}
			}
			for _, rest := range parts[i:] {
				rest.Close()
			}
			return nil, err
		}
		results[i] = bc
	}
	return results, nil
}
