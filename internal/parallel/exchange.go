package parallel

// Exchange plumbing: the operators that move batches between the partitions
// of a parallel plan over channels. Three movement patterns cover every plan
// shape the rewriter produces:
//
//   - gather: p partition streams → one stream, merged back into morsel
//     (Seq) order, so a parallel pipeline drains into exactly the row order
//     the serial engine would have produced;
//   - merge-gather: p sorted partition streams → one sorted stream (k-way
//     merge by a row comparator), the back end of the parallel sort and of
//     the parallel aggregate's deterministic group ordering;
//   - scatter: input partitions → p output partitions, either hash-by-key
//     (partitioned aggregation/join builds) or round-robin (parallelizing a
//     serial source).
//
// Every exchange is context-driven: the first error (or a Close from the
// consumer) cancels the exchange context, producers observe it on their next
// channel operation and unwind, and the error surfaces at the consuming
// cursor. A failing worker therefore tears the whole pipeline down cleanly.

import (
	"context"
	"sync"

	"calcite/internal/schema"
	"calcite/internal/types"
)

// exchChanBuf is the per-partition channel depth: enough to decouple
// producer and consumer scheduling hiccups without buffering the world.
const exchChanBuf = 2

// exchState is the shared control block of one exchange: the cancellation
// context, the first error, and the count of still-open consumer handles.
type exchState struct {
	ctx    context.Context
	cancel context.CancelFunc

	mu   sync.Mutex
	err  error
	open int
}

func newExchState(consumers int) *exchState {
	ctx, cancel := context.WithCancel(context.Background())
	return &exchState{ctx: ctx, cancel: cancel, open: consumers}
}

func (s *exchState) fail(err error) {
	if err == nil || err == schema.Done {
		return
	}
	s.mu.Lock()
	if s.err == nil {
		s.err = err
	}
	s.mu.Unlock()
	s.cancel()
}

func (s *exchState) firstErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// closeOne releases one consumer handle; the last one cancels the exchange
// so producers blocked on sends unwind.
func (s *exchState) closeOne() {
	s.mu.Lock()
	s.open--
	last := s.open <= 0
	s.mu.Unlock()
	if last {
		s.cancel()
	}
}

// send delivers b unless the exchange has been torn down.
func send(st *exchState, ch chan<- *schema.Batch, b *schema.Batch) bool {
	select {
	case ch <- b:
		return true
	case <-st.ctx.Done():
		return false
	}
}

// pump is the producer loop shared by the gathering exchanges: it drains
// one partition into its channel, detaching each batch (channel buffering
// outlives the producer's ownership window), reporting the first error and
// unwinding on teardown. It closes both the channel and the partition.
func pump(st *exchState, ch chan *schema.Batch, part schema.BatchCursor) {
	defer close(ch)
	defer part.Close()
	for {
		b, err := part.NextBatch()
		if err == schema.Done {
			return
		}
		if err != nil {
			st.fail(err)
			return
		}
		if !send(st, ch, b.Detach()) {
			return
		}
	}
}

// --- gather ---

// gatherCursor merges p partition streams back into Seq order. Each
// partition emits batches with increasing Seq (a consequence of pulling
// morsels from the shared dispenser in claim order), so a k-way merge on the
// stream heads reproduces the global morsel order exactly.
type gatherCursor struct {
	st    *exchState
	chans []chan *schema.Batch
	heads []*schema.Batch
	live  []bool
	done  bool
}

// Gather drains the given partitions concurrently on the pool and returns a
// single cursor over their batches, restored to Seq order.
func Gather(pool *Pool, parts []schema.BatchCursor) schema.BatchCursor {
	st := newExchState(1)
	g := &gatherCursor{
		st:    st,
		chans: make([]chan *schema.Batch, len(parts)),
		heads: make([]*schema.Batch, len(parts)),
		live:  make([]bool, len(parts)),
	}
	for i := range parts {
		ch := make(chan *schema.Batch, exchChanBuf)
		g.chans[i] = ch
		g.live[i] = true
		part := parts[i]
		pool.Go(func() { pump(st, ch, part) })
	}
	return g
}

func (g *gatherCursor) NextBatch() (*schema.Batch, error) {
	if g.done {
		return nil, schema.Done
	}
	// Fill every live head, then emit the smallest Seq (ties by partition
	// index, which makes the merge deterministic even for unset Seqs).
	best := -1
	for i := range g.chans {
		if !g.live[i] {
			continue
		}
		if g.heads[i] == nil {
			b, ok := <-g.chans[i]
			if !ok {
				g.live[i] = false
				continue
			}
			g.heads[i] = b
		}
		if best < 0 || g.heads[i].Seq < g.heads[best].Seq {
			best = i
		}
	}
	if best < 0 {
		g.done = true
		if err := g.st.firstErr(); err != nil {
			return nil, err
		}
		return nil, schema.Done
	}
	b := g.heads[best]
	g.heads[best] = nil
	return b, nil
}

func (g *gatherCursor) Close() error {
	if !g.done {
		g.done = true
	}
	g.st.closeOne()
	return nil
}

// --- merge-gather ---

// mergeGatherCursor k-way-merges p sorted partition streams at row
// granularity, optionally applying OFFSET/FETCH and stripping trailing
// hidden ordering columns, and re-batches the merged rows.
type mergeGatherCursor struct {
	st    *exchState
	chans []chan *schema.Batch
	rows  [][][]any // buffered rows of the current batch per partition
	pos   []int
	live  []bool
	cmp   func(a, b []any) int

	offset, fetch int64 // fetch < 0 = unlimited
	skipped       int64
	emitted       int64
	dropTail      int
	width         int // output width (after dropTail)
	batchSize     int
	seq           int64
	done          bool
}

// MergeGather drains p sorted partitions concurrently and merges them into
// one sorted stream by cmp. dropTail trailing columns (hidden ordering
// keys) are stripped from the output; offset/fetch apply after the merge.
func MergeGather(pool *Pool, parts []schema.BatchCursor, cmp func(a, b []any) int,
	offset, fetch int64, dropTail, width, batchSize int) schema.BatchCursor {
	st := newExchState(1)
	m := &mergeGatherCursor{
		st:        st,
		chans:     make([]chan *schema.Batch, len(parts)),
		rows:      make([][][]any, len(parts)),
		pos:       make([]int, len(parts)),
		live:      make([]bool, len(parts)),
		cmp:       cmp,
		offset:    offset,
		fetch:     fetch,
		dropTail:  dropTail,
		width:     width,
		batchSize: batchSize,
	}
	if m.batchSize <= 0 {
		m.batchSize = schema.DefaultBatchSize
	}
	for i := range parts {
		ch := make(chan *schema.Batch, exchChanBuf)
		m.chans[i] = ch
		m.live[i] = true
		part := parts[i]
		pool.Go(func() { pump(st, ch, part) })
	}
	return m
}

// next returns the globally smallest pending row, or nil when exhausted.
func (m *mergeGatherCursor) next() []any {
	best := -1
	for i := range m.chans {
		if !m.live[i] {
			continue
		}
		for m.pos[i] >= len(m.rows[i]) {
			b, ok := <-m.chans[i]
			if !ok {
				m.live[i] = false
				break
			}
			m.rows[i] = b.AppendRows(m.rows[i][:0])
			m.pos[i] = 0
		}
		if !m.live[i] {
			continue
		}
		if best < 0 || m.cmp(m.rows[i][m.pos[i]], m.rows[best][m.pos[best]]) < 0 {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	row := m.rows[best][m.pos[best]]
	m.pos[best]++
	return row
}

func (m *mergeGatherCursor) NextBatch() (*schema.Batch, error) {
	if m.done {
		return nil, schema.Done
	}
	var out [][]any
	for len(out) < m.batchSize {
		if m.fetch >= 0 && m.emitted >= m.fetch {
			break
		}
		row := m.next()
		if row == nil {
			break
		}
		if m.skipped < m.offset {
			m.skipped++
			continue
		}
		out = append(out, row[:len(row)-m.dropTail])
		m.emitted++
	}
	if len(out) == 0 {
		m.done = true
		if err := m.st.firstErr(); err != nil {
			return nil, err
		}
		return nil, schema.Done
	}
	b := schema.BatchFromRows(out, m.width)
	b.Seq = m.seq
	m.seq++
	return b, nil
}

func (m *mergeGatherCursor) Close() error {
	m.done = true
	m.st.closeOne()
	return nil
}

// --- scatter ---

// chanCursor is one output partition of a scatter exchange.
type chanCursor struct {
	st   *exchState
	ch   chan *schema.Batch
	done bool
}

func (c *chanCursor) NextBatch() (*schema.Batch, error) {
	if c.done {
		return nil, schema.Done
	}
	b, ok := <-c.ch
	if !ok {
		c.done = true
		if err := c.st.firstErr(); err != nil {
			return nil, err
		}
		return nil, schema.Done
	}
	return b, nil
}

func (c *chanCursor) Close() error {
	if !c.done {
		c.done = true
	}
	c.st.closeOne()
	return nil
}

// routeKey is the exchange routing key: the shared canonical encoding,
// NULL-inclusive — unlike a join's match key, routing must place NULL keys
// too, so all NULLs of a key land in one partition like any other group.
func routeKey(cols [][]any, r int, keys []int) string {
	return types.HashColsKey(cols, r, keys)
}

// Scatter repartitions the input partitions into p output partitions.
// keys == nil scatters whole batches round-robin (parallelizing a serial
// stream); otherwise rows are split by a hash of the key columns, zero-copy
// via selection vectors. Producers run on dedicated goroutines — they only
// move data, so the pool's workers stay available for the compute-heavy
// consumers downstream.
func Scatter(inParts []schema.BatchCursor, p int, keys []int) []schema.BatchCursor {
	st := newExchState(p)
	outs := make([]chan *schema.Batch, p)
	for i := range outs {
		outs[i] = make(chan *schema.Batch, exchChanBuf)
	}
	var wg sync.WaitGroup
	var rr int64
	var rrMu sync.Mutex
	for _, part := range inParts {
		part := part
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer part.Close()
			for {
				b, err := part.NextBatch()
				if err == schema.Done {
					return
				}
				if err != nil {
					st.fail(err)
					return
				}
				if keys == nil {
					rrMu.Lock()
					i := int(rr % int64(p))
					rr++
					rrMu.Unlock()
					if !send(st, outs[i], b.Detach()) {
						return
					}
					continue
				}
				// Hash split: one selection vector per target partition
				// over the shared columns.
				cols := b.BoxedCols()
				sels := make([][]int32, p)
				if b.Sel != nil {
					for _, r := range b.Sel {
						k := shardOfKey(routeKey(cols, int(r), keys), p)
						sels[k] = append(sels[k], r)
					}
				} else {
					for r := 0; r < b.Len; r++ {
						k := shardOfKey(routeKey(cols, r, keys), p)
						sels[k] = append(sels[k], int32(r))
					}
				}
				for i, sel := range sels {
					if len(sel) == 0 {
						continue
					}
					sub := &schema.Batch{Len: b.Len, Cols: b.Cols, Vecs: b.Vecs, Sel: sel, Seq: b.Seq}
					if !send(st, outs[i], sub) {
						return
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		for _, ch := range outs {
			close(ch)
		}
	}()
	cursors := make([]schema.BatchCursor, p)
	for i := range cursors {
		cursors[i] = &chanCursor{st: st, ch: outs[i]}
	}
	return cursors
}
