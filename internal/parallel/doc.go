// Package parallel implements morsel-driven parallel execution for the
// vectorized batch convention: scans split into morsels that a pool of
// resident workers claim dynamically, and exchange operators move batches
// between the partitions of a pipeline over channels.
//
// # Architecture
//
// Parallelize rewrites an optimized enumerable plan bottom-up, propagating
// the trait.Distribution of each operator and inserting exchanges exactly
// where a node's required input distribution is not satisfied (the same
// reasoning the trait framework applies to collations):
//
//   - batch-scannable scans become MorselScan (random distribution);
//   - filters and projections run partition-local, preserving distribution;
//   - hash joins build partitioned hash tables (right/full joins gather to
//     a single stream and run serially);
//   - aggregates split into thread-local partial aggregation, a hash
//     exchange on the group keys, and a partitioned merge of accumulator
//     states (rex.MergeAccumulators);
//   - sorts run per-partition and merge-gather into one ordered stream.
//
// # Batch ownership at exchange boundaries
//
// The BatchCursor contract lets a producer recycle per-batch buffers once
// the consumer asks for the next batch; that is safe for same-goroutine
// pipelines but not for exchanges, which buffer batches in channels and
// hand them to other goroutines. Every batch that crosses an exchange
// boundary is therefore Detach()ed first: the selection vector (the one
// buffer operators recycle) is copied, while column storage — immutable
// once emitted — stays shared. Downstream of an exchange, a batch is owned
// by the receiving partition until it is itself emitted or dropped.
//
// # Determinism
//
// Sources stamp batches with increasing sequence numbers (Batch.Seq);
// per-batch operators preserve them, and gather exchanges merge partition
// streams back into Seq order. A parallel run therefore reproduces the
// serial engine's row order exactly, with two value-level caveats
// documented on Connection.SetParallelism: floating-point aggregates may
// differ in the last bit (partial sums reassociate), and COLLECT multiset
// element order follows merge order.
//
// # Cancellation
//
// Pipelines run under a context; the first error cancels it, tearing down
// every exchange (producers unblock on channel sends via ctx.Done) so no
// goroutine leaks. Workers are shared per Framework through Pool, which
// keeps them resident across queries and sheds them after an idle timeout.
package parallel
