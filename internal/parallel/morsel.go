package parallel

// Morsel-driven work distribution. A morsel is one batch of a table scan
// (schema.DefaultBatchSize rows by default); instead of statically slicing
// the input per worker, all workers pull morsels from one shared dispenser,
// so fast workers naturally steal work from slow ones (the dynamic load
// balancing of morsel-driven parallelism). Each morsel carries a global
// sequence number, which is what lets the gather exchange reassemble the
// serial row order deterministically.

import (
	"sync"

	"calcite/internal/schema"
)

// dispenser hands the batches of one shared cursor to competing workers.
// MemTable batches are zero-copy slice windows over the columnar snapshot,
// so the critical section is a few slice-header writes per morsel.
type dispenser struct {
	mu     sync.Mutex
	cur    schema.BatchCursor
	seq    int64
	err    error
	closed bool
	views  int   // open partition views; the last Close closes the cursor
	pool   *Pool // claim counter target; nil in pool-less tests
}

func (d *dispenser) next() (*schema.Batch, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.err != nil {
		return nil, d.err
	}
	b, err := d.cur.NextBatch()
	if err != nil {
		d.err = err // Done or a real error: all views see it
		return nil, err
	}
	b.Seq = d.seq
	d.seq++
	d.pool.noteMorsel()
	return b, nil
}

func (d *dispenser) closeView() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.views--
	if d.views == 0 && !d.closed {
		d.closed = true
		return d.cur.Close()
	}
	return nil
}

// dispenserView is one worker's handle onto a shared dispenser.
type dispenserView struct{ d *dispenser }

func (v dispenserView) NextBatch() (*schema.Batch, error) { return v.d.next() }
func (v dispenserView) Close() error                      { return v.d.closeView() }

// Morsels splits a batch cursor into p cursors that collectively consume it:
// each NextBatch atomically claims the next morsel. The p views together own
// the underlying cursor; it is closed when the last view closes.
func Morsels(cur schema.BatchCursor, p int) []schema.BatchCursor {
	return MorselsOn(nil, cur, p)
}

// MorselsOn is Morsels with the owning worker pool attached, so each morsel
// claim is counted in the pool's dispatch statistics.
func MorselsOn(pool *Pool, cur schema.BatchCursor, p int) []schema.BatchCursor {
	d := &dispenser{cur: cur, views: p, pool: pool}
	out := make([]schema.BatchCursor, p)
	for i := range out {
		out[i] = dispenserView{d}
	}
	return out
}
