package parallel

// Partitioned window execution. A single-group window whose OVER clause has
// PARTITION BY keys is embarrassingly parallel across partitions: the
// rewriter places a hash exchange on the partition keys below WindowPar, so
// each worker owns a disjoint set of partitions and runs the full serial
// window pipeline (sort, incremental frames, spill under the shared query
// budget) over just its share. Rows are tagged with their global input
// position (batch Seq, in-batch row index) before windowing; the merge-
// gather above sorts on those hidden columns and strips them, restoring
// exactly the serial engine's output order. Windows without PARTITION BY
// (one global partition) and multi-group windows gather to a single stream
// and run serially.

import (
	"calcite/internal/exec"
	"calcite/internal/rel"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// winHiddenFields are the trailing global-position columns the parallel
// window threads through its workers so the merge-gather can reproduce the
// serial row order.
func winHiddenFields() []types.Field {
	return []types.Field{
		{Name: "$win_seq", Type: types.BigInt},
		{Name: "$win_idx", Type: types.BigInt},
	}
}

// WindowPar runs a single-group window partition-parallel over a hash
// exchange on the group's partition keys.
type WindowPar struct {
	inner *exec.Window
	pool  *Pool
	p     int
}

// NewWindowPar wraps an enumerable window (whose input must already be
// distributed on the group's partition keys) for partitioned execution.
func NewWindowPar(inner *exec.Window, pool *Pool, p int) *WindowPar {
	return &WindowPar{inner: inner, pool: pool, p: p}
}

func (w *WindowPar) Op() string         { return "ParallelWindow" }
func (w *WindowPar) Inputs() []rel.Node { return w.inner.Inputs() }
func (w *WindowPar) Attrs() string      { return w.inner.Attrs() }

func (w *WindowPar) RowType() *types.Type {
	innerT := w.inner.RowType()
	fields := make([]types.Field, 0, len(innerT.Fields)+2)
	fields = append(fields, innerT.Fields...)
	fields = append(fields, winHiddenFields()...)
	return types.Row(fields...)
}

func (w *WindowPar) Traits() trait.Set {
	return trait.NewSet(trait.Enumerable).WithDistribution(trait.RandomDist())
}

func (w *WindowPar) WithNewInputs(inputs []rel.Node) rel.Node {
	return NewWindowPar(w.inner.WithNewInputs(inputs).(*exec.Window), w.pool, w.p)
}

func (w *WindowPar) Bind(ctx *exec.Context) (schema.Cursor, error) {
	bc, err := w.BindBatch(ctx)
	if err != nil {
		return nil, err
	}
	return schema.RowCursorFromBatches(bc), nil
}

// BindBatch is the serial fallback: the whole (gathered) input windows as
// one tagged partition stream.
func (w *WindowPar) BindBatch(ctx *exec.Context) (schema.BatchCursor, error) {
	in, err := exec.BindBatch(ctx, w.inner.Inputs()[0])
	if err != nil {
		return nil, err
	}
	return w.inner.BindOverPartition(ctx, in)
}

// BindPartitions windows each hash-exchanged partition independently. The
// sort phase of every worker's pipeline runs eagerly across the pool (the
// window is a pipeline breaker), charging the shared query allocator and
// spilling per worker; frame evaluation streams lazily into the gathering
// merge.
func (w *WindowPar) BindPartitions(ctx *exec.Context) ([]schema.BatchCursor, error) {
	parts, err := BindPartitions(ctx, w.inner.Inputs()[0])
	if err != nil {
		return nil, err
	}
	results := make([]schema.BatchCursor, len(parts))
	err = w.pool.Run(nil, len(parts), func(rctx ctxT, i int) error {
		if rctx.Err() != nil {
			parts[i].Close()
			return rctx.Err()
		}
		bc, err := w.inner.BindOverPartition(ctx, parts[i])
		if err != nil {
			return err
		}
		results[i] = bc
		return nil
	})
	if err != nil {
		for _, bc := range results {
			if bc != nil {
				bc.Close()
			}
		}
		return nil, err
	}
	return results, nil
}
