package parallel

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"calcite/internal/exec"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// --- pool ---

func TestPoolRunPropagatesFirstError(t *testing.T) {
	p := NewPool(4)
	boom := errors.New("boom")
	var cancelled atomic.Int32
	err := p.Run(nil, 4, func(ctx context.Context, i int) error {
		if i == 2 {
			return boom
		}
		<-ctx.Done() // siblings wait for the cancellation fan-out
		cancelled.Add(1)
		return nil
	})
	if err != boom {
		t.Fatalf("Run error = %v, want %v", err, boom)
	}
	if cancelled.Load() != 3 {
		t.Errorf("cancelled %d sibling tasks, want 3", cancelled.Load())
	}
}

func TestPoolReusesResidentWorkers(t *testing.T) {
	p := NewPool(2)
	// Sequential bursts: after the first task finishes, its worker lingers
	// and should pick up later tasks by hand-off.
	for round := 0; round < 5; round++ {
		done := make(chan struct{})
		p.Go(func() { close(done) })
		<-done
	}
	spawned, handoffs := p.Stats()
	if spawned+handoffs != 5 {
		t.Fatalf("spawned=%d handoffs=%d, want total 5", spawned, handoffs)
	}
	if handoffs == 0 {
		t.Errorf("no resident-worker hand-offs (spawned=%d); pool never reuses workers", spawned)
	}
}

// --- morsels ---

func seqBatches(n int) []*schema.Batch {
	out := make([]*schema.Batch, n)
	for i := range out {
		out[i] = &schema.Batch{Len: 1, Cols: [][]any{{int64(i)}}}
	}
	return out
}

func TestMorselsCoverInputExactlyOnce(t *testing.T) {
	const n, p = 20, 4
	parts := Morsels(schema.NewSliceBatchCursor(seqBatches(n)), p)
	var mu sync.Mutex
	got := map[int64]bool{}
	var wg sync.WaitGroup
	for _, part := range parts {
		part := part
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer part.Close()
			for {
				b, err := part.NextBatch()
				if err == schema.Done {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				if got[b.Seq] {
					t.Errorf("morsel seq %d dispensed twice", b.Seq)
				}
				got[b.Seq] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(got) != n {
		t.Fatalf("dispensed %d morsels, want %d", len(got), n)
	}
}

// --- exchanges ---

func TestGatherRestoresSeqOrder(t *testing.T) {
	pool := NewPool(4)
	// Three partitions holding interleaved slices of the seq space, each
	// internally ascending (the dispenser invariant).
	mk := func(seqs ...int64) schema.BatchCursor {
		var bs []*schema.Batch
		for _, s := range seqs {
			b := &schema.Batch{Len: 1, Cols: [][]any{{s}}}
			bs = append(bs, b)
		}
		cur := schema.NewSliceBatchCursor(bs)
		// Pre-set the seqs after construction (SliceBatchCursor assigns
		// positional seqs on NextBatch, so wrap it).
		return &seqOverrideCursor{cur: cur, seqs: seqs}
	}
	g := Gather(pool, []schema.BatchCursor{
		mk(0, 3, 6), mk(1, 4, 7), mk(2, 5, 8),
	})
	defer g.Close()
	var got []int64
	for {
		b, err := g.NextBatch()
		if err == schema.Done {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, b.Seq)
	}
	for i, s := range got {
		if s != int64(i) {
			t.Fatalf("gather order %v not ascending", got)
		}
	}
	if len(got) != 9 {
		t.Fatalf("gathered %d batches, want 9", len(got))
	}
}

type seqOverrideCursor struct {
	cur  *schema.SliceBatchCursor
	seqs []int64
	pos  int
}

func (c *seqOverrideCursor) NextBatch() (*schema.Batch, error) {
	b, err := c.cur.NextBatch()
	if err != nil {
		return nil, err
	}
	b.Seq = c.seqs[c.pos]
	c.pos++
	return b, nil
}

func (c *seqOverrideCursor) Close() error { return c.cur.Close() }

type errCursor struct{ err error }

func (c *errCursor) NextBatch() (*schema.Batch, error) { return nil, c.err }
func (c *errCursor) Close() error                      { return nil }

func TestGatherPropagatesWorkerError(t *testing.T) {
	pool := NewPool(2)
	boom := errors.New("worker exploded")
	g := Gather(pool, []schema.BatchCursor{
		schema.NewSliceBatchCursor(seqBatches(3)),
		&errCursor{err: boom},
	})
	defer g.Close()
	var err error
	for err == nil {
		_, err = g.NextBatch()
	}
	if err != boom {
		t.Fatalf("gather error = %v, want %v", err, boom)
	}
}

func TestScatterHashColocatesKeys(t *testing.T) {
	const p = 3
	rows := make([][]any, 30)
	for i := range rows {
		rows[i] = []any{int64(i % 7), int64(i)}
	}
	in := schema.NewSliceBatchCursor([]*schema.Batch{schema.BatchFromRows(rows, 2)})
	outs := Scatter([]schema.BatchCursor{in}, p, []int{0})
	keyHome := map[string]int{}
	seen := 0
	for pi, out := range outs {
		for {
			b, err := out.NextBatch()
			if err == schema.Done {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < b.NumRows(); i++ {
				row := b.Row(i)
				k := types.HashRowKey(row, []int{0})
				if home, ok := keyHome[k]; ok && home != pi {
					t.Fatalf("key %q split across partitions %d and %d", k, home, pi)
				}
				keyHome[k] = pi
				seen++
			}
		}
		out.Close()
	}
	if seen != len(rows) {
		t.Fatalf("scattered %d rows, want %d", seen, len(rows))
	}
	if len(keyHome) != 7 {
		t.Fatalf("saw %d keys, want 7", len(keyHome))
	}
}

func TestScatterRoundRobinDeliversAll(t *testing.T) {
	const p = 4
	in := schema.NewSliceBatchCursor(seqBatches(10))
	outs := Scatter([]schema.BatchCursor{in}, p, nil)
	var mu sync.Mutex
	count := 0
	var wg sync.WaitGroup
	for _, out := range outs {
		out := out
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer out.Close()
			for {
				b, err := out.NextBatch()
				if err == schema.Done {
					return
				}
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				count += b.NumRows()
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if count != 10 {
		t.Fatalf("round-robin delivered %d rows, want 10", count)
	}
}

func TestMergeGatherOrdersAndLimits(t *testing.T) {
	pool := NewPool(2)
	// Two sorted runs of (value, hiddenPos); merge ascending by value,
	// strip the hidden column, skip 2, fetch 3.
	run := func(vals ...int64) schema.BatchCursor {
		rows := make([][]any, len(vals))
		for i, v := range vals {
			rows[i] = []any{v, int64(i)}
		}
		return schema.NewSliceBatchCursor([]*schema.Batch{schema.BatchFromRows(rows, 2)})
	}
	coll := trait.Collation{{Field: 0, Direction: trait.Ascending}, {Field: 1, Direction: trait.Ascending}}
	cmp := func(a, b []any) int { return exec.CompareRows(a, b, coll) }
	m := MergeGather(pool, []schema.BatchCursor{run(1, 3, 5, 7), run(2, 4, 6)},
		cmp, 2, 3, 1, 1, 0)
	defer m.Close()
	var got []int64
	for {
		b, err := m.NextBatch()
		if err == schema.Done {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if b.Width() != 1 {
			t.Fatalf("hidden column not stripped: width %d", b.Width())
		}
		for i := 0; i < b.NumRows(); i++ {
			got = append(got, b.Row(i)[0].(int64))
		}
	}
	want := []int64{3, 4, 5} // 1..7 merged, offset 2, fetch 3
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// --- rewrite shape ---

func memScan(t *testing.T, name string, nRows int) *exec.Scan {
	t.Helper()
	rows := make([][]any, nRows)
	for i := range rows {
		rows[i] = []any{int64(i), int64(i % 5)}
	}
	tbl := schema.NewMemTable(name, types.Row(
		types.Field{Name: "id", Type: types.BigInt},
		types.Field{Name: "grp", Type: types.BigInt},
	), rows)
	return exec.NewScan(tbl, []string{name})
}

func TestParallelizeInsertsExchanges(t *testing.T) {
	pool := NewPool(4)
	scan := memScan(t, "t", 100)
	filter := exec.NewFilter(scan, rex.NewCall(rex.OpGreater,
		rex.NewInputRef(0, types.BigInt), rex.NewLiteral(int64(10), types.BigInt)))
	agg := exec.NewAggregate(filter, []int{1}, []rex.AggCall{rex.NewAggCall(rex.AggCount, nil, false, "c")})
	plan := Parallelize(agg, pool, 4)
	text := rel.Explain(plan)
	for _, want := range []string{"MorselScan", "ParallelPartialAggregate", "HashExchange", "ParallelFinalAggregate", "MergeGatherExchange"} {
		if !strings.Contains(text, want) {
			t.Errorf("parallel plan missing %s:\n%s", want, text)
		}
	}
	if dist := plan.Traits().Distribution; dist.Kind != trait.DistSingleton {
		t.Errorf("root distribution = %s, want singleton", dist)
	}
}

func TestParallelizeKeepsRightJoinSerial(t *testing.T) {
	pool := NewPool(4)
	l := memScan(t, "l", 50)
	rscan := memScan(t, "r", 50)
	cond := rex.Eq(rex.NewInputRef(0, types.BigInt), rex.NewInputRef(2, types.BigInt))
	join := exec.NewHashJoin(rel.RightJoin, l, rscan, cond)
	plan := Parallelize(join, pool, 4)
	text := rel.Explain(plan)
	if strings.Contains(text, "ParallelHashJoin") {
		t.Errorf("right join must stay serial:\n%s", text)
	}
	if !strings.Contains(text, "GatherExchange") {
		t.Errorf("right join inputs should gather:\n%s", text)
	}
}

func TestParallelizeSerialWhenPIsOne(t *testing.T) {
	scan := memScan(t, "t", 10)
	if got := Parallelize(scan, NewPool(1), 1); got != scan {
		t.Error("p=1 must return the plan unchanged")
	}
}

// --- end-to-end operator checks against the serial engine ---

func runPlan(t *testing.T, n rel.Node) [][]any {
	t.Helper()
	rows, err := exec.Execute(exec.NewContext(), n)
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func renderRows(rows [][]any) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = fmt.Sprintf("%#v", r)
	}
	return out
}

// checkAgainstSerial executes plan serially and in parallel at several
// worker counts and requires identical rows in identical order (the
// deterministic-gather guarantee).
func checkAgainstSerial(t *testing.T, plan rel.Node) {
	t.Helper()
	want := renderRows(runPlan(t, plan))
	for _, p := range []int{2, 4, 7} {
		pool := NewPool(p)
		got := renderRows(runPlan(t, Parallelize(plan, pool, p)))
		if len(got) != len(want) {
			t.Fatalf("p=%d: %d rows, want %d", p, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("p=%d row %d: got %s, want %s", p, i, got[i], want[i])
			}
		}
	}
}

func TestParallelFilterProjectMatchesSerial(t *testing.T) {
	scan := memScan(t, "t", 5000)
	filter := exec.NewFilter(scan, rex.NewCall(rex.OpGreater,
		rex.NewInputRef(0, types.BigInt), rex.NewLiteral(int64(100), types.BigInt)))
	proj := exec.NewProject(filter,
		[]rex.Node{rex.NewInputRef(0, types.BigInt), rex.NewInputRef(1, types.BigInt)},
		[]string{"id", "grp"})
	checkAgainstSerial(t, proj)
}

// TestParallelBareFilterMatchesSerial pins the exchange-boundary ownership
// rule: the filter recycles its selection buffer batch-over-batch, so the
// gather must detach batches before buffering them in channels. (A project
// on top would mask the bug by materializing fresh columns.)
func TestParallelBareFilterMatchesSerial(t *testing.T) {
	scan := memScan(t, "t", 5000)
	filter := exec.NewFilter(scan, rex.NewCall(rex.OpGreater,
		rex.NewInputRef(0, types.BigInt), rex.NewLiteral(int64(17), types.BigInt)))
	checkAgainstSerial(t, filter)
}

func TestParallelHashJoinMatchesSerial(t *testing.T) {
	for _, kind := range []rel.JoinKind{rel.InnerJoin, rel.LeftJoin, rel.SemiJoin, rel.AntiJoin} {
		l := memScan(t, "l", 2000)
		r := memScan(t, "r", 300)
		cond := rex.Eq(rex.NewInputRef(1, types.BigInt), rex.NewInputRef(2, types.BigInt))
		join := exec.NewHashJoin(kind, l, r, cond)
		checkAgainstSerial(t, join)
	}
}

func TestParallelAggregateMatchesSerial(t *testing.T) {
	scan := memScan(t, "t", 4000)
	agg := exec.NewAggregate(scan, []int{1}, []rex.AggCall{
		rex.NewAggCall(rex.AggCount, nil, false, "c"),
		rex.NewAggCall(rex.AggSum, []int{0}, false, "s"),
		rex.NewAggCall(rex.AggMin, []int{0}, false, "mn"),
		rex.NewAggCall(rex.AggMax, []int{0}, false, "mx"),
	})
	checkAgainstSerial(t, agg)
}

func TestParallelGlobalAggregateMatchesSerial(t *testing.T) {
	scan := memScan(t, "t", 4000)
	agg := exec.NewAggregate(scan, nil, []rex.AggCall{
		rex.NewAggCall(rex.AggCount, nil, false, "c"),
		rex.NewAggCall(rex.AggAvg, []int{0}, false, "a"),
	})
	checkAgainstSerial(t, agg)
}

func TestParallelDistinctAggregateMatchesSerial(t *testing.T) {
	scan := memScan(t, "t", 4000)
	agg := exec.NewAggregate(scan, nil, []rex.AggCall{
		rex.NewAggCall(rex.AggCount, []int{1}, true, "cd"),
		rex.NewAggCall(rex.AggSum, []int{1}, true, "sd"),
	})
	checkAgainstSerial(t, agg)
}

func TestParallelSortMatchesSerial(t *testing.T) {
	scan := memScan(t, "t", 3000)
	sortNode := exec.NewSort(scan, trait.Collation{
		{Field: 1, Direction: trait.Descending},
		{Field: 0, Direction: trait.Ascending},
	}, 0, -1)
	checkAgainstSerial(t, sortNode)
}

func TestParallelSortWithLimitMatchesSerial(t *testing.T) {
	scan := memScan(t, "t", 3000)
	sortNode := exec.NewSort(scan, trait.Collation{
		{Field: 1, Direction: trait.Descending},
	}, 7, 23)
	checkAgainstSerial(t, sortNode)
}

func TestParallelLimitMatchesSerial(t *testing.T) {
	scan := memScan(t, "t", 3000)
	limit := exec.NewLimit(scan, 5, 50)
	checkAgainstSerial(t, limit)
}

// TestParallelStableSortTies pins the stable-order guarantee: rows equal
// under the collation must come out in input order, like the serial
// sort.SliceStable.
func TestParallelStableSortTies(t *testing.T) {
	scan := memScan(t, "t", 2000) // grp has only 5 distinct values: many ties
	sortNode := exec.NewSort(scan, trait.Collation{{Field: 1, Direction: trait.Ascending}}, 0, -1)
	want := runPlan(t, sortNode)
	pool := NewPool(4)
	got := runPlan(t, Parallelize(sortNode, pool, 4))
	if len(got) != len(want) {
		t.Fatalf("%d rows, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i][0] != want[i][0] {
			t.Fatalf("tie order diverges at row %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

// TestAccumulatorMerge exercises the partial/final split directly.
func TestAccumulatorMerge(t *testing.T) {
	call := rex.NewAggCall(rex.AggSum, []int{0}, false, "s")
	a, b := rex.NewAccumulator(call), rex.NewAccumulator(call)
	for i := 0; i < 10; i++ {
		if err := a.Add([]any{int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 10; i < 20; i++ {
		if err := b.Add([]any{int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rex.MergeAccumulators(a, b); err != nil {
		t.Fatal(err)
	}
	if got := a.Result(); got != int64(190) {
		t.Fatalf("merged SUM = %v, want 190", got)
	}
}

func TestDistinctAccumulatorMergeDeduplicates(t *testing.T) {
	call := rex.NewAggCall(rex.AggCount, []int{0}, true, "c")
	a, b := rex.NewAccumulator(call), rex.NewAccumulator(call)
	for _, v := range []int64{1, 2, 3} {
		if err := a.Add([]any{v}); err != nil {
			t.Fatal(err)
		}
	}
	for _, v := range []int64{2, 3, 4} {
		if err := b.Add([]any{v}); err != nil {
			t.Fatal(err)
		}
	}
	if err := rex.MergeAccumulators(a, b); err != nil {
		t.Fatal(err)
	}
	if got := a.Result(); got != int64(4) {
		t.Fatalf("merged COUNT(DISTINCT) = %v, want 4", got)
	}
}
