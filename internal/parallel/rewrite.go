package parallel

// The parallel planner: a physical rewrite phase that turns an optimized
// enumerable plan into a morsel-driven parallel plan. It propagates the
// distribution trait bottom-up and inserts exchange operators exactly where
// a node's required input distribution is not satisfied (trait.Distribution
// .Satisfies), the same reasoning the trait framework applies to collations:
//
//   - batch-scannable scans become MorselScan (random distribution);
//   - filters and projections execute in place, preserving distribution;
//   - hash joins with a partitioned side become partitioned build + probe
//     (right/full joins, which need cross-partition unmatched tracking,
//     gather to a single stream and run serially);
//   - aggregates split into thread-local partial aggregation, a hash
//     exchange on the group keys, and a partitioned final merge;
//   - sorts split into per-worker sorts and a merge-gather;
//   - single-group windows with PARTITION BY hash-exchange on the partition
//     keys so each worker windows its partitions independently, merging back
//     to the serial row order on hidden position columns (windows without
//     PARTITION BY have one global partition and stay serial);
//   - every other operator (set ops, adapters, DML) requires the singleton
//     distribution, so partitioned inputs gather in front of it.
//
// The rewrite runs at execution time (core.Framework), not inside the
// Volcano search: plans stay backend-agnostic until the host system decides
// how many workers to spend, which is the paper's "execution left to the
// host" stance applied to parallelism.

import (
	"calcite/internal/exec"
	"calcite/internal/rel"
	"calcite/internal/schema"
	"calcite/internal/trait"
)

// Options configures the parallel rewrite.
type Options struct {
	// SerialJoins keeps hash joins on the serial engine (partitioned inputs
	// gather in front of them). The memory-governed execution mode sets it:
	// the serial hash join is the spill-capable (Grace) one, and a
	// memory-bounded join wants one partition in memory at a time rather
	// than p shard tables at once. The subtrees below the join still run
	// parallel, each worker charging the shared query budget.
	SerialJoins bool
}

// Parallelize rewrites an optimized physical plan for execution across p
// workers sharing pool. p <= 1 returns the plan unchanged. The returned root
// always produces a single (singleton-distribution) stream.
func Parallelize(root rel.Node, pool *Pool, p int) rel.Node {
	return ParallelizeWith(root, pool, p, Options{})
}

// ParallelizeWith is Parallelize with explicit options.
func ParallelizeWith(root rel.Node, pool *Pool, p int, opts Options) rel.Node {
	if p <= 1 || pool == nil {
		return root
	}
	r := &rewriter{pool: pool, p: p, opts: opts}
	n, dist := r.rewrite(root)
	if dist.Partitioned() {
		n = NewGatherExchange(n, pool, p)
	}
	return n
}

type rewriter struct {
	pool *Pool
	p    int
	opts Options
}

// singleton wraps n with a gather exchange when it is partitioned.
func (r *rewriter) singleton(n rel.Node, d trait.Distribution) rel.Node {
	if d.Partitioned() {
		return NewGatherExchange(n, r.pool, r.p)
	}
	return n
}

func (r *rewriter) rewrite(n rel.Node) (rel.Node, trait.Distribution) {
	// Only the enumerable convention executes client-side; backend subtrees
	// (and the converters feeding them) are the backend's business.
	if !trait.SameConvention(n.Traits().Convention, trait.Enumerable) {
		return n, trait.Singleton()
	}
	switch x := n.(type) {
	case *exec.Scan:
		if _, ok := x.Table.(schema.BatchScannableTable); ok {
			// Stream tables enumerate in arrival order and downstream
			// operators lean on its bounded out-of-orderness; morsels would
			// interleave arbitrarily, so stream scans stay serial.
			if _, stream := x.Table.(schema.StreamableTable); !stream {
				return NewMorselScan(x, r.pool, r.p), trait.RandomDist()
			}
		}
		return n, trait.Singleton()

	case *exec.Filter:
		in, d := r.rewrite(x.Inputs()[0])
		return x.WithNewInputs([]rel.Node{in}), d

	case *exec.Project:
		in, d := r.rewrite(x.Inputs()[0])
		if d.Kind == trait.DistHashed {
			// The projection remaps columns; without tracking the mapping,
			// downgrade to "partitioned, keys unknown".
			d = trait.RandomDist()
		}
		return x.WithNewInputs([]rel.Node{in}), d

	case *exec.HashJoin:
		probe, pd := r.rewrite(x.Left())
		build, bd := r.rewrite(x.Right())
		parallelizable := !r.opts.SerialJoins &&
			(x.Kind == rel.InnerJoin || x.Kind == rel.LeftJoin ||
				x.Kind == rel.SemiJoin || x.Kind == rel.AntiJoin)
		if !parallelizable {
			return x.WithNewInputs([]rel.Node{
				r.singleton(probe, pd), r.singleton(build, bd),
			}), trait.Singleton()
		}
		if !pd.Partitioned() && !bd.Partitioned() {
			return x.WithNewInputs([]rel.Node{probe, build}), trait.Singleton()
		}
		if !pd.Partitioned() {
			// The build side parallelized but the probe stream is serial:
			// scatter it round-robin so the probe phase scales too.
			probe = NewRoundRobinExchange(probe, r.pool, r.p)
			pd = trait.RandomDist()
		}
		inner := x.WithNewInputs([]rel.Node{probe, build}).(*exec.HashJoin)
		return NewHashJoinPar(inner, r.pool, r.p), pd

	case *exec.Aggregate:
		in, d := r.rewrite(x.Inputs()[0])
		if !d.Partitioned() {
			return x.WithNewInputs([]rel.Node{in}), trait.Singleton()
		}
		inner := x.WithNewInputs([]rel.Node{in}).(*exec.Aggregate)
		partial := NewPartialAgg(inner, r.pool, r.p)
		if len(x.GroupKeys) == 0 {
			// Global aggregate: gather the per-worker states and merge once.
			gathered := NewGatherExchange(partial, r.pool, r.p)
			return NewFinalAgg(inner, gathered, r.pool, r.p), trait.Singleton()
		}
		// Keyed aggregate: repartition partial groups by the group key so
		// each worker owns a disjoint key range, then merge the group order
		// back to first-seen (serial) order.
		keyOrds := make([]int, len(x.GroupKeys))
		for i := range keyOrds {
			keyOrds[i] = i
		}
		ex := NewHashExchange(partial, keyOrds, r.pool, r.p)
		final := NewFinalAgg(inner, ex, r.pool, r.p)
		w := len(x.RowType().Fields)
		coll := trait.Collation{
			{Field: w, Direction: trait.Ascending},
			{Field: w + 1, Direction: trait.Ascending},
		}
		return NewMergeGatherExchange(final, coll, 2, 0, -1, r.pool, r.p), trait.Singleton()

	case *exec.StreamAgg:
		// Keyed tumble/hop windows scatter by group key; the input below the
		// exchange deliberately stays serial (no recursive rewrite): morsel
		// scans interleave arbitrarily, which would break each partition's
		// bounded out-of-orderness, while Scatter preserves the single
		// producer's arrival order per partition. Global windows have no key
		// to scatter on, and session windows close in data-dependent order
		// (a long-lived session outlasts later-starting ones), so neither
		// has a mergeable per-partition collation — they run serially.
		if len(x.GroupKeys) == 0 || x.Window.Kind == rel.SessionWindow {
			in, d := r.rewrite(x.Inputs()[0])
			return x.WithNewInputs([]rel.Node{r.singleton(in, d)}), trait.Singleton()
		}
		ex := NewHashExchange(x.Inputs()[0], x.GroupKeys, r.pool, r.p)
		sp := NewStreamAggPar(x.WithNewInputs([]rel.Node{ex}).(*exec.StreamAgg), r.pool, r.p)
		coll := trait.Collation{{Field: 0, Direction: trait.Ascending}}
		for i := range x.GroupKeys {
			coll = append(coll, trait.FieldCollation{Field: 2 + i, Direction: trait.Ascending})
		}
		coll = append(coll, trait.FieldCollation{Field: 1, Direction: trait.Ascending})
		return NewMergeGatherExchange(sp, coll, 0, 0, -1, r.pool, r.p), trait.Singleton()

	case *exec.Window:
		in, d := r.rewrite(x.Inputs()[0])
		// Partition-parallel only when one group with PARTITION BY keys owns
		// the whole operator: each worker then sees entire partitions.
		// Multi-group or unpartitioned windows run serially over a gather.
		if !d.Partitioned() || len(x.Groups) != 1 || len(x.Groups[0].PartitionKeys) == 0 {
			return x.WithNewInputs([]rel.Node{r.singleton(in, d)}), trait.Singleton()
		}
		ex := NewHashExchange(in, x.Groups[0].PartitionKeys, r.pool, r.p)
		wp := NewWindowPar(x.WithNewInputs([]rel.Node{ex}).(*exec.Window), r.pool, r.p)
		w := len(x.RowType().Fields)
		coll := trait.Collation{
			{Field: w, Direction: trait.Ascending},
			{Field: w + 1, Direction: trait.Ascending},
		}
		return NewMergeGatherExchange(wp, coll, 2, 0, -1, r.pool, r.p), trait.Singleton()

	case *exec.Sort:
		in, d := r.rewrite(x.Inputs()[0])
		if !d.Partitioned() {
			return x.WithNewInputs([]rel.Node{in}), trait.Singleton()
		}
		if len(x.Collation) == 0 {
			// Pure limit: gather (in morsel order) and limit serially.
			gathered := NewGatherExchange(in, r.pool, r.p)
			return x.WithNewInputs([]rel.Node{gathered}), trait.Singleton()
		}
		inner := x.WithNewInputs([]rel.Node{in}).(*exec.Sort)
		sp := NewSortPar(inner, r.pool, r.p)
		return NewMergeGatherExchange(sp, sp.MergeCollation(), 2,
			x.Offset, x.Fetch, r.pool, r.p), trait.Singleton()

	default:
		// Every other operator keeps its row/batch contract over singleton
		// inputs; partitioned children gather in front of it.
		ins := n.Inputs()
		if len(ins) == 0 {
			return n, trait.Singleton()
		}
		newIns := make([]rel.Node, len(ins))
		changed := false
		for i, in := range ins {
			ci, cd := r.rewrite(in)
			ci = r.singleton(ci, cd)
			newIns[i] = ci
			if ci != in {
				changed = true
			}
		}
		if changed {
			n = n.WithNewInputs(newIns)
		}
		return n, trait.Singleton()
	}
}
