package schema

// Vectorized data movement: the batch calling convention.
//
// The enumerable convention of the paper pulls one row at a time through
// Cursor. That row-at-a-time discipline pays an interface call, a bounds
// check and usually an allocation per row per operator. The batch convention
// amortizes those costs: operators exchange Batch values — column-major
// groups of up to a few thousand rows with an optional selection vector — so
// per-row work collapses into tight loops over slices.
//
// A batch carries its columns in one or both of two representations: typed
// vectors (Vecs — monomorphic storage, see vector.go) and boxed columns
// (Cols — []any). Typed operators read Vecs; everything else calls
// BoxedCols(), which returns Cols, materializing and caching it from the
// vectors on first use. Sources that have both on hand (MemTable's cached
// snapshot) attach both zero-copy, so compatibility costs nothing on scans.
//
// Both conventions interoperate: BatchCursorFromCursor lifts any row cursor
// into batches, and RowCursorFromBatches flattens batches back into rows, so
// every adapter written against Cursor keeps working unmodified while the
// engine's hot path runs vectorized.

// DefaultBatchSize is the number of rows an operator processes per batch. It
// is chosen so a batch of a few wide columns stays comfortably inside L2.
const DefaultBatchSize = 1024

// Batch is a column-major group of rows. Column c of physical row r is
// Vecs[c] row r (typed) and/or Cols[c][r] (boxed); every column has Len
// entries. Sel, when non-nil, is a selection vector: the ordered physical
// row indices that are logically present (filters narrow batches by
// replacing Sel instead of copying columns). A nil Sel means all Len rows
// are live.
type Batch struct {
	// Len is the number of physical rows held by each column.
	Len int
	// Cols holds the boxed column vectors; may be nil when Vecs is set
	// (BoxedCols materializes it on demand).
	Cols [][]any
	// Vecs holds the typed column vectors; nil on boxed-only batches.
	Vecs []*Vector
	// Sel selects the live subset of rows, in order; nil selects all.
	Sel []int32
	// Seq orders batches globally within one source: sources assign
	// increasing sequence numbers, per-batch operators preserve them, and
	// the parallel engine's gather exchange merges partition streams back
	// into Seq order so parallel execution reproduces the serial row order
	// deterministically. Consumers that do not care about order ignore it.
	Seq int64
}

// NumRows returns the number of live (selected) rows.
func (b *Batch) NumRows() int {
	if b.Sel != nil {
		return len(b.Sel)
	}
	return b.Len
}

// Width returns the number of columns.
func (b *Batch) Width() int {
	if b.Cols != nil {
		return len(b.Cols)
	}
	return len(b.Vecs)
}

// BoxedCols returns the boxed column representation, materializing (and
// caching) it from the typed vectors when the batch is vector-only. The
// batch must be owned by a single goroutine (the Cursor contract).
func (b *Batch) BoxedCols() [][]any {
	if b.Cols == nil && b.Vecs != nil {
		cols := make([][]any, len(b.Vecs))
		for c, v := range b.Vecs {
			cols[c] = v.Boxed()
		}
		b.Cols = cols
	}
	return b.Cols
}

// Row materializes the i'th live row (0 ≤ i < NumRows) as a fresh []any.
func (b *Batch) Row(i int) []any {
	r := i
	if b.Sel != nil {
		r = int(b.Sel[i])
	}
	w := b.Width()
	row := make([]any, w)
	if b.Cols != nil {
		for c, col := range b.Cols {
			row[c] = col[r]
		}
		return row
	}
	for c, v := range b.Vecs {
		row[c] = v.Get(r)
	}
	return row
}

// AppendRows materializes every live row onto dst and returns it. Row
// storage comes from one arena allocation per batch (full slice expressions
// keep the rows append-safe).
func (b *Batch) AppendRows(dst [][]any) [][]any {
	n := b.NumRows()
	w := b.Width()
	if n == 0 {
		return dst
	}
	if w == 0 {
		for i := 0; i < n; i++ {
			dst = append(dst, nil)
		}
		return dst
	}
	flat := make([]any, n*w)
	if b.Cols == nil {
		// Vector-only batch: box column-at-a-time (one Kind dispatch per
		// column, not per value).
		for c, v := range b.Vecs {
			if b.Sel == nil && v.Kind == VecAny && v.Nulls == nil {
				col := v.A
				for i := 0; i < n; i++ {
					flat[i*w+c] = col[i]
				}
				continue
			}
			for i := 0; i < n; i++ {
				r := i
				if b.Sel != nil {
					r = int(b.Sel[i])
				}
				flat[i*w+c] = v.Get(r)
			}
		}
		for i := 0; i < n; i++ {
			dst = append(dst, flat[i*w:(i+1)*w:(i+1)*w])
		}
		return dst
	}
	for i := 0; i < n; i++ {
		r := i
		if b.Sel != nil {
			r = int(b.Sel[i])
		}
		row := flat[i*w : (i+1)*w : (i+1)*w]
		for c, col := range b.Cols {
			row[c] = col[r]
		}
		dst = append(dst, row)
	}
	return dst
}

// Detach returns a batch that stays valid beyond the producer's next
// NextBatch call. The Cursor contract lets a producer recycle per-batch
// buffers once the next batch is requested — the filter reuses its selection
// vector this way — which is fine for same-goroutine pipelines but not for
// exchanges that buffer batches in channels. Detach copies the selection
// vector (the only buffer operators recycle); column storage is immutable
// once emitted and stays shared.
func (b *Batch) Detach() *Batch {
	if b.Sel == nil {
		return b
	}
	return &Batch{Len: b.Len, Cols: b.Cols, Vecs: b.Vecs, Sel: append([]int32(nil), b.Sel...), Seq: b.Seq}
}

// Compact returns a batch with no selection vector: if b already is dense it
// is returned unchanged, otherwise the selected rows are gathered into fresh
// columns (in whichever representations the batch carries).
func (b *Batch) Compact() *Batch {
	if b.Sel == nil {
		return b
	}
	n := len(b.Sel)
	out := &Batch{Len: n, Seq: b.Seq}
	if b.Vecs != nil {
		vecs := make([]*Vector, len(b.Vecs))
		for c, v := range b.Vecs {
			vecs[c] = v.Gather(b.Sel)
		}
		out.Vecs = vecs
	}
	if b.Cols != nil {
		cols := make([][]any, len(b.Cols))
		for c, col := range b.Cols {
			dense := make([]any, n)
			for i, r := range b.Sel {
				dense[i] = col[r]
			}
			cols[c] = dense
		}
		out.Cols = cols
	}
	return out
}

// BatchFromRows transposes row-major rows into a dense batch of the given
// width (width matters when rows is empty or rows are zero-width).
func BatchFromRows(rows [][]any, width int) *Batch {
	cols := make([][]any, width)
	for c := range cols {
		col := make([]any, len(rows))
		for r, row := range rows {
			col[r] = row[c]
		}
		cols[c] = col
	}
	return &Batch{Len: len(rows), Cols: cols}
}

// BatchCursor iterates over batches. NextBatch returns (nil, Done) when
// exhausted; returned batches are owned by the consumer until the next call.
type BatchCursor interface {
	NextBatch() (*Batch, error)
	Close() error
}

// BatchScannableTable is a table that can enumerate its rows in column-major
// batches directly, skipping the row-at-a-time shim. MemTable implements it,
// which vectorizes every adapter built on MemTable storage (mem, csvfile).
type BatchScannableTable interface {
	Table
	ScanBatches(batchSize int) (BatchCursor, error)
}

// SliceBatchCursor iterates over pre-built batches.
type SliceBatchCursor struct {
	Batches []*Batch
	pos     int
}

// NewSliceBatchCursor returns a cursor over batches.
func NewSliceBatchCursor(batches []*Batch) *SliceBatchCursor {
	return &SliceBatchCursor{Batches: batches}
}

func (c *SliceBatchCursor) NextBatch() (*Batch, error) {
	if c.pos >= len(c.Batches) {
		return nil, Done
	}
	b := c.Batches[c.pos]
	c.pos++
	return b, nil
}

func (c *SliceBatchCursor) Close() error { return nil }

// rowBatchCursor adapts a row Cursor to batches.
type rowBatchCursor struct {
	cur       Cursor
	width     int
	batchSize int
	seq       int64
	done      bool
}

// BatchCursorFromCursor lifts a row cursor into a batch cursor producing
// dense batches of up to batchSize rows of the given width. It is the shim
// that lets unconverted operators and adapters feed the vectorized path.
func BatchCursorFromCursor(cur Cursor, width, batchSize int) BatchCursor {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	return &rowBatchCursor{cur: cur, width: width, batchSize: batchSize}
}

func (c *rowBatchCursor) NextBatch() (*Batch, error) {
	if c.done {
		return nil, Done
	}
	cols := make([][]any, c.width)
	for i := range cols {
		cols[i] = make([]any, 0, c.batchSize)
	}
	n := 0
	for n < c.batchSize {
		row, err := c.cur.Next()
		if err == Done {
			c.done = true
			break
		}
		if err != nil {
			return nil, err
		}
		for i := range cols {
			cols[i] = append(cols[i], row[i])
		}
		n++
	}
	if n == 0 {
		return nil, Done
	}
	seq := c.seq
	c.seq++
	return &Batch{Len: n, Cols: cols, Seq: seq}, nil
}

func (c *rowBatchCursor) Close() error { return c.cur.Close() }

// batchRowCursor adapts a BatchCursor to the row Cursor interface.
type batchRowCursor struct {
	bc   BatchCursor
	rows [][]any
	pos  int
}

// RowCursorFromBatches flattens a batch cursor into a row cursor, so batch
// producers can feed row-at-a-time consumers (the compatibility shim of the
// Cursor contract).
func RowCursorFromBatches(bc BatchCursor) Cursor {
	return &batchRowCursor{bc: bc}
}

func (c *batchRowCursor) Next() ([]any, error) {
	for c.pos >= len(c.rows) {
		b, err := c.bc.NextBatch()
		if err != nil {
			return nil, err
		}
		// One arena allocation per batch instead of one make per row; the
		// header slice is reused (consumers retain the rows, not the header).
		c.rows, c.pos = b.AppendRows(c.rows[:0]), 0
	}
	row := c.rows[c.pos]
	c.pos++
	return row, nil
}

func (c *batchRowCursor) Close() error { return c.bc.Close() }

// memBatchCursor serves batches as zero-copy slices of a MemTable's
// columnar snapshot — both the typed vectors and the boxed columns, so
// typed kernels and boxed fallbacks alike start from free representations.
type memBatchCursor struct {
	cols      [][]any
	vecs      []*Vector
	n         int
	batchSize int
	pos       int
	seq       int64
}

func (c *memBatchCursor) NextBatch() (*Batch, error) {
	if c.pos >= c.n {
		return nil, Done
	}
	end := c.pos + c.batchSize
	if end > c.n {
		end = c.n
	}
	cols := make([][]any, len(c.cols))
	for i, col := range c.cols {
		cols[i] = col[c.pos:end]
	}
	b := &Batch{Len: end - c.pos, Cols: cols, Seq: c.seq}
	if c.vecs != nil {
		vecs := make([]*Vector, len(c.vecs))
		for i, v := range c.vecs {
			vecs[i] = v.Slice(c.pos, end)
		}
		b.Vecs = vecs
	}
	c.pos = end
	c.seq++
	return b, nil
}

func (c *memBatchCursor) Close() error { return nil }

// columns returns the columnar snapshot (boxed columns plus typed vectors),
// building (and caching) it on first use. The snapshot is immutable: Insert
// replaces it rather than appending. Vector kinds come from the declared
// column types, falling back per column when the stored values disagree.
func (t *MemTable) columns() ([][]any, []*Vector, int) {
	t.mu.RLock()
	cols, vecs, n := t.cols, t.vecs, len(t.rows)
	t.mu.RUnlock()
	if cols != nil {
		return cols, vecs, n
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.cols == nil {
		width := len(t.rowType.Fields)
		cols = make([][]any, width)
		for c := range cols {
			col := make([]any, len(t.rows))
			for r, row := range t.rows {
				col[r] = row[c]
			}
			cols[c] = col
		}
		t.cols = cols
		if !ForceBoxed() {
			vecs = make([]*Vector, width)
			for c := range vecs {
				vecs[c] = BuildVector(cols[c], VecKindForType(t.rowType.Fields[c].Type))
			}
			t.vecs = vecs
		}
	}
	return t.cols, t.vecs, len(t.rows)
}

// ScanBatches implements BatchScannableTable: batches are zero-copy windows
// over the table's columnar snapshot.
func (t *MemTable) ScanBatches(batchSize int) (BatchCursor, error) {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	cols, vecs, n := t.columns()
	return &memBatchCursor{cols: cols, vecs: vecs, n: n, batchSize: batchSize}, nil
}
