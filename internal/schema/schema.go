// Package schema defines the catalog abstractions of the adapter
// architecture (§5, Figure 3 of the paper): schemas, tables, statistics,
// views and materialized views. An adapter supplies a schema factory that
// reads a model (the specification of a data source's physical properties)
// and produces a schema whose tables Calcite plans and executes against.
//
// The package deliberately knows nothing about planning or execution; the
// adapter packages bind schemas to conventions and planner rules.
package schema

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"calcite/internal/stats"
	"calcite/internal/types"
)

// Cursor iterates over rows. Next returns io.EOF-style termination via the
// Done sentinel error; rows are []any in the runtime value representation of
// package types.
type Cursor interface {
	// Next returns the next row, or (nil, Done) when exhausted.
	Next() ([]any, error)
	// Close releases resources; it is safe to call multiple times.
	Close() error
}

// Done is the sentinel returned by Cursor.Next at end of data.
var Done = fmt.Errorf("schema: no more rows")

// SliceCursor adapts an in-memory row slice to the Cursor interface.
type SliceCursor struct {
	Rows [][]any
	pos  int
}

// NewSliceCursor returns a cursor over rows.
func NewSliceCursor(rows [][]any) *SliceCursor { return &SliceCursor{Rows: rows} }

func (c *SliceCursor) Next() ([]any, error) {
	if c.pos >= len(c.Rows) {
		return nil, Done
	}
	row := c.Rows[c.pos]
	c.pos++
	return row, nil
}

func (c *SliceCursor) Close() error { return nil }

// Statistics describes a table for the metadata providers (§6: "for many
// systems it is sufficient to provide statistics about their input data").
// Beyond the declared row count and key hints, a table that has been
// ANALYZEd carries collected per-column statistics (null counts, min/max,
// NDV sketches, equi-depth histograms) which the default metadata provider
// consults for selectivity and join-cardinality estimation.
type Statistics struct {
	// RowCount is the estimated number of rows; <= 0 means unknown.
	RowCount float64
	// UniqueColumns lists sets of column ordinals that are unique keys.
	UniqueColumns [][]int
	// Columns holds collected per-column statistics by ordinal; nil (or a
	// nil entry) means the column has not been analyzed.
	Columns []*stats.ColumnStats
	// Analyzed reports whether RowCount/Columns come from an ANALYZE scan
	// rather than a declaration.
	Analyzed bool
}

// ColStats returns the collected statistics of column col, or nil.
func (s Statistics) ColStats(col int) *stats.ColumnStats {
	if col < 0 || col >= len(s.Columns) {
		return nil
	}
	return s.Columns[col]
}

// IsKey reports whether cols is a superset of some known unique key.
func (s Statistics) IsKey(cols []int) bool {
	set := map[int]bool{}
	for _, c := range cols {
		set[c] = true
	}
	for _, key := range s.UniqueColumns {
		all := true
		for _, k := range key {
			if !set[k] {
				all = false
				break
			}
		}
		if all && len(key) > 0 {
			return true
		}
	}
	return false
}

// Table is the definition of the data found in a data source. The minimal
// contract is name, row type and statistics; a table that can be executed
// client-side also implements ScannableTable.
type Table interface {
	Name() string
	RowType() *types.Type
	Stats() Statistics
}

// ScannableTable is a table that can enumerate all of its rows — the
// "minimal interface an adapter must implement" (§5): given a full scan, the
// enumerable convention can execute arbitrary SQL against the table.
type ScannableTable interface {
	Table
	Scan() (Cursor, error)
}

// ModifiableTable is a table accepting inserts (DDL/DML support, §9).
type ModifiableTable interface {
	Table
	Insert(rows [][]any) error
}

// StatsSettable is a table whose statistics can be replaced — the hook
// ANALYZE TABLE uses to install collected statistics.
type StatsSettable interface {
	Table
	SetStats(Statistics)
}

// Schema is a namespace of tables and child schemas.
type Schema interface {
	Name() string
	TableNames() []string
	Table(name string) (Table, bool)
	SubSchemaNames() []string
	SubSchema(name string) (Schema, bool)
}

// BaseSchema is a mutable in-memory Schema implementation used by adapters
// and by the root catalog. It is safe for concurrent use.
type BaseSchema struct {
	name string

	mu      sync.RWMutex
	tables  map[string]Table
	schemas map[string]Schema
}

// NewBaseSchema returns an empty schema with the given name.
func NewBaseSchema(name string) *BaseSchema {
	return &BaseSchema{
		name:    name,
		tables:  map[string]Table{},
		schemas: map[string]Schema{},
	}
}

func (s *BaseSchema) Name() string { return s.name }

// AddTable registers a table (case-insensitive name).
func (s *BaseSchema) AddTable(t Table) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.tables[strings.ToLower(t.Name())] = t
}

// RemoveTable drops a table.
func (s *BaseSchema) RemoveTable(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.tables, strings.ToLower(name))
}

// AddSchema registers a child schema.
func (s *BaseSchema) AddSchema(child Schema) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.schemas[strings.ToLower(child.Name())] = child
}

func (s *BaseSchema) TableNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tables))
	for _, t := range s.tables {
		names = append(names, t.Name())
	}
	sort.Strings(names)
	return names
}

func (s *BaseSchema) Table(name string) (Table, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	t, ok := s.tables[strings.ToLower(name)]
	return t, ok
}

func (s *BaseSchema) SubSchemaNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.schemas))
	for n := range s.schemas {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (s *BaseSchema) SubSchema(name string) (Schema, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	c, ok := s.schemas[strings.ToLower(name)]
	return c, ok
}

// Resolve looks a (possibly qualified) table path up from root, e.g.
// ["splunk","orders"] or ["orders"]. Returns the table and the schema path
// actually used.
func Resolve(root Schema, path []string) (Table, []string, error) {
	if len(path) == 0 {
		return nil, nil, fmt.Errorf("schema: empty table name")
	}
	cur := root
	for i := 0; i < len(path)-1; i++ {
		sub, ok := cur.SubSchema(path[i])
		if !ok {
			return nil, nil, fmt.Errorf("schema: schema %q not found", strings.Join(path[:i+1], "."))
		}
		cur = sub
	}
	name := path[len(path)-1]
	if t, ok := cur.Table(name); ok {
		return t, path, nil
	}
	// Fall back: search one level of sub-schemas for an unqualified name.
	if len(path) == 1 {
		for _, sn := range root.SubSchemaNames() {
			if sub, ok := root.SubSchema(sn); ok {
				if t, ok := sub.Table(name); ok {
					return t, []string{sn, name}, nil
				}
			}
		}
	}
	return nil, nil, fmt.Errorf("schema: table %q not found", strings.Join(path, "."))
}

// MemTable is a trivially scannable in-memory table with statistics. It is
// the workhorse of tests and the mem adapter, and doubles as the storage for
// CREATE TABLE (§9 DDL support).
type MemTable struct {
	name    string
	rowType *types.Type

	mu    sync.RWMutex
	rows  [][]any
	stats Statistics
	// cols/vecs are the lazily built column-major snapshot of rows (boxed
	// columns plus typed vectors) serving ScanBatches zero-copy; Insert
	// invalidates both.
	cols [][]any
	vecs []*Vector
}

// NewMemTable creates an in-memory table.
func NewMemTable(name string, rowType *types.Type, rows [][]any) *MemTable {
	return &MemTable{
		name:    name,
		rowType: rowType,
		rows:    rows,
		stats:   Statistics{RowCount: float64(len(rows))},
	}
}

// SetStats overrides the table statistics (for tests and benchmarks).
func (t *MemTable) SetStats(s Statistics) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.stats = s
}

func (t *MemTable) Name() string         { return t.name }
func (t *MemTable) RowType() *types.Type { return t.rowType }

func (t *MemTable) Stats() Statistics {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if t.stats.RowCount <= 0 {
		return Statistics{RowCount: float64(len(t.rows)), UniqueColumns: t.stats.UniqueColumns}
	}
	return t.stats
}

// Rows returns a snapshot of the table contents.
func (t *MemTable) Rows() [][]any {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([][]any(nil), t.rows...)
}

func (t *MemTable) Scan() (Cursor, error) {
	return NewSliceCursor(t.Rows()), nil
}

// Insert appends rows. Statistics stay live under inserts: a declared or
// collected row count is advanced by the inserted count, while collected
// per-column statistics (histograms, NDV sketches) are invalidated — they
// describe the analyzed snapshot, and a stale histogram is worse than the
// estimator's fallback. Re-run ANALYZE to refresh them.
func (t *MemTable) Insert(rows [][]any) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rows = append(t.rows, rows...)
	t.cols, t.vecs = nil, nil // invalidate the columnar snapshot
	if t.stats.RowCount > 0 {
		t.stats.RowCount += float64(len(rows))
	}
	t.stats.Columns = nil
	t.stats.Analyzed = false
	return nil
}

// ViewTable is a named view: a stored SQL text expanded by the validator.
type ViewTable struct {
	ViewName string
	SQL      string
	// Type is the view's row type once known (may be nil until first
	// expansion).
	Type *types.Type
}

func (v *ViewTable) Name() string         { return v.ViewName }
func (v *ViewTable) RowType() *types.Type { return v.Type }
func (v *ViewTable) Stats() Statistics    { return Statistics{RowCount: 100} }

// StreamableTable marks a table that can be queried with the STREAM
// directive (§7.2): its rows arrive in time order on a designated
// monotonic column.
type StreamableTable interface {
	Table
	// RowtimeColumn returns the ordinal of the monotonically non-decreasing
	// event-time column.
	RowtimeColumn() int
}

// RemoteTable marks a table whose rows live in another engine: a full scan
// transfers every row across the engine boundary. The cost model charges
// that transfer, which is what makes operator pushdown (§5) win whenever it
// reduces the rows crossing the boundary.
type RemoteTable interface {
	Table
	// TransferCostFactor scales the per-row IO cost of pulling this table's
	// rows into the enumerable convention.
	TransferCostFactor() float64
}
