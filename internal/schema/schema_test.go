package schema

import (
	"testing"

	"calcite/internal/types"
)

func rt() *types.Type {
	return types.Row(types.Field{Name: "x", Type: types.BigInt})
}

func TestBaseSchemaCaseInsensitive(t *testing.T) {
	s := NewBaseSchema("root")
	s.AddTable(NewMemTable("Emps", rt(), nil))
	if _, ok := s.Table("EMPS"); !ok {
		t.Error("lookup should be case-insensitive")
	}
	if _, ok := s.Table("emps"); !ok {
		t.Error("lower-case lookup")
	}
	if names := s.TableNames(); len(names) != 1 || names[0] != "Emps" {
		t.Errorf("names: %v", names)
	}
	s.RemoveTable("emps")
	if _, ok := s.Table("emps"); ok {
		t.Error("table should be removed")
	}
}

func TestResolveQualifiedAndFallback(t *testing.T) {
	root := NewBaseSchema("root")
	sub := NewBaseSchema("hr")
	sub.AddTable(NewMemTable("emps", rt(), nil))
	root.AddSchema(sub)

	if _, path, err := Resolve(root, []string{"hr", "emps"}); err != nil || len(path) != 2 {
		t.Fatalf("qualified resolve: %v %v", path, err)
	}
	// Unqualified names search one sub-schema level.
	if _, path, err := Resolve(root, []string{"emps"}); err != nil || path[0] != "hr" {
		t.Fatalf("fallback resolve: %v %v", path, err)
	}
	if _, _, err := Resolve(root, []string{"nosuch"}); err == nil {
		t.Error("missing table should error")
	}
	if _, _, err := Resolve(root, []string{"noschema", "emps"}); err == nil {
		t.Error("missing schema should error")
	}
}

func TestMemTableStatsAndInsert(t *testing.T) {
	mt := NewMemTable("t", rt(), [][]any{{int64(1)}})
	if mt.Stats().RowCount != 1 {
		t.Errorf("stats: %+v", mt.Stats())
	}
	if err := mt.Insert([][]any{{int64(2)}, {int64(3)}}); err != nil {
		t.Fatal(err)
	}
	cur, err := mt.Scan()
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := cur.Next()
		if err == Done {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 3 {
		t.Errorf("rows after insert: %d", n)
	}
}

func TestStatisticsIsKey(t *testing.T) {
	s := Statistics{UniqueColumns: [][]int{{0}, {1, 2}}}
	if !s.IsKey([]int{0}) || !s.IsKey([]int{0, 3}) {
		t.Error("superset of a key is a key")
	}
	if !s.IsKey([]int{1, 2}) {
		t.Error("composite key")
	}
	if s.IsKey([]int{1}) {
		t.Error("partial composite is not a key")
	}
	if (Statistics{}).IsKey([]int{0}) {
		t.Error("no keys declared")
	}
}

func TestSliceCursor(t *testing.T) {
	c := NewSliceCursor([][]any{{1}, {2}})
	if _, err := c.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Next(); err != Done {
		t.Error("expected Done")
	}
	if err := c.Close(); err != nil {
		t.Error(err)
	}
}
