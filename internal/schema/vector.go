package schema

// Typed columnar vectors: the monomorphic storage backing the batch
// convention. The paper decouples the optimizer from data representation so
// engines can process data "in columnar and compressed form"; boxed []any
// columns pay an interface header per value, a type assertion per use and an
// allocation per produced value. A Vector stores one column of one of the
// engine's core runtime types (int64, float64, bool, string, time.Time) in a
// flat Go slice plus a null mask, so kernels compile to tight loops over
// machine types. Everything outside the core set rides the VecAny fallback, a
// plain []any with identical semantics.
//
// Null representation: in memory the mask is one bool per row (Nulls), which
// slices zero-copy at any offset and reads in one byte load; the spill codec
// packs it to one bit per row on disk (see internal/memory). A nil mask means
// the column has no NULLs, letting kernels hoist the null branch out of the
// loop entirely.

import (
	"os"
	"sync/atomic"
	"time"

	"calcite/internal/types"
)

// VecKind enumerates the monomorphic storage classes of a Vector.
type VecKind uint8

const (
	// VecAny is the boxed fallback: values of any runtime type, NULL as nil.
	VecAny VecKind = iota
	VecInt64
	VecFloat64
	VecBool
	VecString
	VecTime
)

var vecKindNames = [...]string{"any", "int64", "float64", "bool", "string", "time"}

func (k VecKind) String() string {
	if int(k) < len(vecKindNames) {
		return vecKindNames[k]
	}
	return "invalid"
}

// VecKindForType maps a declared SQL type to the vector kind holding its
// native runtime representation (temporal kinds are epoch-millis int64 in
// this engine; time.Time vectors arise from adapter values, not declarations).
func VecKindForType(t *types.Type) VecKind {
	if t == nil {
		return VecAny
	}
	switch t.Kind {
	case types.TinyIntKind, types.IntegerKind, types.BigIntKind,
		types.TimestampKind, types.DateKind, types.TimeKind, types.IntervalKind:
		return VecInt64
	case types.FloatKind, types.DoubleKind, types.DecimalKind:
		return VecFloat64
	case types.BooleanKind:
		return VecBool
	case types.VarcharKind, types.CharKind:
		return VecString
	}
	return VecAny
}

// Vector is one column of values in monomorphic storage. Exactly one of the
// payload slices (chosen by Kind) is non-nil and holds Len() entries; rows
// whose Nulls entry is true are NULL and their payload slot is the zero
// value. VecAny vectors represent NULL as a nil element and may leave Nulls
// nil.
type Vector struct {
	Kind VecKind
	// Nulls is the null mask: Nulls[r] reports row r NULL. nil = no NULLs.
	Nulls []bool

	I64 []int64
	F64 []float64
	B   []bool
	S   []string
	T   []time.Time
	A   []any
}

// Len returns the number of rows.
func (v *Vector) Len() int {
	switch v.Kind {
	case VecInt64:
		return len(v.I64)
	case VecFloat64:
		return len(v.F64)
	case VecBool:
		return len(v.B)
	case VecString:
		return len(v.S)
	case VecTime:
		return len(v.T)
	}
	return len(v.A)
}

// IsNull reports whether row r is NULL.
func (v *Vector) IsNull(r int) bool {
	if v.Nulls != nil {
		return v.Nulls[r]
	}
	if v.Kind == VecAny {
		return v.A[r] == nil
	}
	return false
}

// Get boxes the value of row r (nil for NULL). It is the row-at-a-time
// compatibility accessor; kernels read the payload slices directly.
func (v *Vector) Get(r int) any {
	if v.Nulls != nil && v.Nulls[r] {
		return nil
	}
	switch v.Kind {
	case VecInt64:
		return v.I64[r]
	case VecFloat64:
		return v.F64[r]
	case VecBool:
		return v.B[r]
	case VecString:
		return v.S[r]
	case VecTime:
		return v.T[r]
	}
	return v.A[r]
}

// Slice returns the zero-copy window [lo, hi) of the vector.
func (v *Vector) Slice(lo, hi int) *Vector {
	out := &Vector{Kind: v.Kind}
	if v.Nulls != nil {
		out.Nulls = v.Nulls[lo:hi]
	}
	switch v.Kind {
	case VecInt64:
		out.I64 = v.I64[lo:hi]
	case VecFloat64:
		out.F64 = v.F64[lo:hi]
	case VecBool:
		out.B = v.B[lo:hi]
	case VecString:
		out.S = v.S[lo:hi]
	case VecTime:
		out.T = v.T[lo:hi]
	default:
		out.A = v.A[lo:hi]
	}
	return out
}

// Gather returns a dense copy of the selected rows, in selection order.
func (v *Vector) Gather(sel []int32) *Vector {
	n := len(sel)
	out := &Vector{Kind: v.Kind}
	if v.Nulls != nil {
		nulls := make([]bool, n)
		any := false
		for i, r := range sel {
			if v.Nulls[r] {
				nulls[i] = true
				any = true
			}
		}
		if any {
			out.Nulls = nulls
		}
	}
	switch v.Kind {
	case VecInt64:
		d := make([]int64, n)
		for i, r := range sel {
			d[i] = v.I64[r]
		}
		out.I64 = d
	case VecFloat64:
		d := make([]float64, n)
		for i, r := range sel {
			d[i] = v.F64[r]
		}
		out.F64 = d
	case VecBool:
		d := make([]bool, n)
		for i, r := range sel {
			d[i] = v.B[r]
		}
		out.B = d
	case VecString:
		d := make([]string, n)
		for i, r := range sel {
			d[i] = v.S[r]
		}
		out.S = d
	case VecTime:
		d := make([]time.Time, n)
		for i, r := range sel {
			d[i] = v.T[r]
		}
		out.T = d
	default:
		d := make([]any, n)
		for i, r := range sel {
			d[i] = v.A[r]
		}
		out.A = d
	}
	return out
}

// GatherOrd is Gather with NULL injection: a negative ordinal produces a
// NULL output slot. Joins use it to materialize the build side of outer
// joins, where unmatched probe rows pad the build columns with NULLs.
func (v *Vector) GatherOrd(ords []int32) *Vector {
	n := len(ords)
	out := &Vector{Kind: v.Kind}
	var nulls []bool
	setNull := func(i int) {
		if nulls == nil {
			nulls = make([]bool, n)
		}
		nulls[i] = true
	}
	for i, r := range ords {
		if r < 0 || (v.Nulls != nil && v.Nulls[r]) {
			setNull(i)
		}
	}
	switch v.Kind {
	case VecInt64:
		d := make([]int64, n)
		for i, r := range ords {
			if r >= 0 {
				d[i] = v.I64[r]
			}
		}
		out.I64 = d
	case VecFloat64:
		d := make([]float64, n)
		for i, r := range ords {
			if r >= 0 {
				d[i] = v.F64[r]
			}
		}
		out.F64 = d
	case VecBool:
		d := make([]bool, n)
		for i, r := range ords {
			if r >= 0 {
				d[i] = v.B[r]
			}
		}
		out.B = d
	case VecString:
		d := make([]string, n)
		for i, r := range ords {
			if r >= 0 {
				d[i] = v.S[r]
			}
		}
		out.S = d
	case VecTime:
		d := make([]time.Time, n)
		for i, r := range ords {
			if r >= 0 {
				d[i] = v.T[r]
			}
		}
		out.T = d
	default:
		d := make([]any, n)
		for i, r := range ords {
			if r >= 0 {
				d[i] = v.A[r]
			}
		}
		out.A = d
	}
	out.Nulls = nulls
	return out
}

// Boxed materializes the whole vector as a boxed column. VecAny vectors
// return their payload slice directly (zero-copy).
func (v *Vector) Boxed() []any {
	if v.Kind == VecAny && v.Nulls == nil {
		return v.A
	}
	n := v.Len()
	out := make([]any, n)
	for r := 0; r < n; r++ {
		out[r] = v.Get(r)
	}
	return out
}

// detectVecKind returns the uniform monomorphic kind of the non-NULL values,
// or VecAny when the column mixes dynamic types or uses a type outside the
// core set.
func detectVecKind(vals []any) VecKind {
	kind := VecAny
	for _, x := range vals {
		var k VecKind
		switch x.(type) {
		case nil:
			continue
		case int64:
			k = VecInt64
		case float64:
			k = VecFloat64
		case bool:
			k = VecBool
		case string:
			k = VecString
		case time.Time:
			k = VecTime
		default:
			return VecAny
		}
		if kind == VecAny {
			kind = k
		} else if kind != k {
			return VecAny
		}
	}
	return kind
}

// BuildVector converts a boxed column into a typed vector. hint (from the
// declared column type) short-circuits detection when the values conform;
// columns with mixed or non-core runtime types fall back to VecAny, sharing
// the input slice.
func BuildVector(vals []any, hint VecKind) *Vector {
	kind := hint
	if kind == VecAny || !valuesConform(vals, kind) {
		kind = detectVecKind(vals)
	}
	if kind == VecAny {
		return &Vector{Kind: VecAny, A: vals}
	}
	n := len(vals)
	v := &Vector{Kind: kind}
	var nulls []bool
	setNull := func(r int) {
		if nulls == nil {
			nulls = make([]bool, n)
		}
		nulls[r] = true
	}
	switch kind {
	case VecInt64:
		d := make([]int64, n)
		for r, x := range vals {
			if x == nil {
				setNull(r)
				continue
			}
			d[r] = x.(int64)
		}
		v.I64 = d
	case VecFloat64:
		d := make([]float64, n)
		for r, x := range vals {
			if x == nil {
				setNull(r)
				continue
			}
			d[r] = x.(float64)
		}
		v.F64 = d
	case VecBool:
		d := make([]bool, n)
		for r, x := range vals {
			if x == nil {
				setNull(r)
				continue
			}
			d[r] = x.(bool)
		}
		v.B = d
	case VecString:
		d := make([]string, n)
		for r, x := range vals {
			if x == nil {
				setNull(r)
				continue
			}
			d[r] = x.(string)
		}
		v.S = d
	case VecTime:
		d := make([]time.Time, n)
		for r, x := range vals {
			if x == nil {
				setNull(r)
				continue
			}
			d[r] = x.(time.Time)
		}
		v.T = d
	}
	v.Nulls = nulls
	return v
}

// valuesConform reports whether every non-nil value matches kind.
func valuesConform(vals []any, kind VecKind) bool {
	for _, x := range vals {
		if x == nil {
			continue
		}
		ok := false
		switch kind {
		case VecInt64:
			_, ok = x.(int64)
		case VecFloat64:
			_, ok = x.(float64)
		case VecBool:
			_, ok = x.(bool)
		case VecString:
			_, ok = x.(string)
		case VecTime:
			_, ok = x.(time.Time)
		}
		if !ok {
			return false
		}
	}
	return true
}

// forceBoxed is the framework knob disabling typed vectors engine-wide:
// sources stop attaching Vecs to batches and the spill codec writes boxed
// pages, so every operator takes its boxed fallback path. It exists for the
// differential suites (typed vs boxed results must be identical) and as an
// escape hatch; CALCITE_FORCE_BOXED=1 sets it at startup.
var forceBoxed atomic.Bool

func init() {
	if v := os.Getenv("CALCITE_FORCE_BOXED"); v == "1" || v == "true" {
		forceBoxed.Store(true)
	}
}

// SetForceBoxed toggles the boxed-fallback knob (tests restore the previous
// value).
func SetForceBoxed(on bool) (prev bool) { return forceBoxed.Swap(on) }

// ForceBoxed reports whether typed vectors are disabled engine-wide.
func ForceBoxed() bool { return forceBoxed.Load() }
