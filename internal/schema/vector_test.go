package schema

import (
	"reflect"
	"testing"
	"time"

	"calcite/internal/types"
)

func TestBuildVectorDetectsKinds(t *testing.T) {
	cases := []struct {
		name string
		vals []any
		want VecKind
	}{
		{"int64", []any{int64(1), int64(2)}, VecInt64},
		{"float64", []any{1.5, nil, 2.5}, VecFloat64},
		{"bool", []any{true, false, nil}, VecBool},
		{"string", []any{"a", "b"}, VecString},
		{"time", []any{time.Unix(0, 0).UTC(), nil}, VecTime},
		{"all-null", []any{nil, nil}, VecAny},
		{"mixed", []any{int64(1), "x"}, VecAny},
		{"non-core", []any{[]any{int64(1)}}, VecAny},
	}
	for _, tc := range cases {
		v := BuildVector(tc.vals, VecAny)
		if v.Kind != tc.want {
			t.Errorf("%s: kind = %v, want %v", tc.name, v.Kind, tc.want)
		}
		if v.Len() != len(tc.vals) {
			t.Errorf("%s: len = %d, want %d", tc.name, v.Len(), len(tc.vals))
		}
		for r, x := range tc.vals {
			if got := v.Get(r); !reflect.DeepEqual(got, x) {
				t.Errorf("%s: Get(%d) = %#v, want %#v", tc.name, r, got, x)
			}
			if v.IsNull(r) != (x == nil) {
				t.Errorf("%s: IsNull(%d) = %v, want %v", tc.name, r, v.IsNull(r), x == nil)
			}
		}
	}
}

func TestBuildVectorHintShortCircuitsAndFallsBack(t *testing.T) {
	// A conforming hint is taken at face value.
	v := BuildVector([]any{int64(1), nil}, VecInt64)
	if v.Kind != VecInt64 || !v.IsNull(1) || v.Get(0) != int64(1) {
		t.Fatalf("conforming hint mishandled: %+v", v)
	}
	// A hint the values contradict falls back to detection, not a panic.
	v = BuildVector([]any{"a", "b"}, VecInt64)
	if v.Kind != VecString {
		t.Fatalf("contradicted hint: kind = %v, want VecString", v.Kind)
	}
	// VecAny keeps the input slice (zero-copy fallback).
	vals := []any{int64(1), "x"}
	v = BuildVector(vals, VecAny)
	if v.Kind != VecAny || &v.A[0] != &vals[0] {
		t.Fatal("VecAny fallback should share the input slice")
	}
}

func TestVecKindForType(t *testing.T) {
	cases := []struct {
		t    *types.Type
		want VecKind
	}{
		{types.BigInt, VecInt64},
		{types.Integer, VecInt64},
		{types.Double, VecFloat64},
		{types.Boolean, VecBool},
		{types.Varchar, VecString},
		{types.Timestamp, VecInt64},
	}
	for _, tc := range cases {
		if got := VecKindForType(tc.t); got != tc.want {
			t.Errorf("VecKindForType(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestVectorSliceIsZeroCopyWindow(t *testing.T) {
	v := BuildVector([]any{int64(0), nil, int64(2), int64(3)}, VecInt64)
	w := v.Slice(1, 3)
	if w.Len() != 2 {
		t.Fatalf("window len = %d, want 2", w.Len())
	}
	if !w.IsNull(0) || w.Get(1) != int64(2) {
		t.Fatalf("window contents wrong: %v %v", w.Get(0), w.Get(1))
	}
	// The window aliases the parent payload.
	v.I64[2] = 99
	if w.Get(1) != int64(99) {
		t.Fatal("Slice should alias the parent payload")
	}
}

func TestVectorGatherAndGatherOrd(t *testing.T) {
	v := BuildVector([]any{"a", nil, "c", "d"}, VecString)
	g := v.Gather([]int32{3, 1, 0})
	want := []any{"d", nil, "a"}
	for i, x := range want {
		if got := g.Get(i); !reflect.DeepEqual(got, x) {
			t.Errorf("Gather[%d] = %#v, want %#v", i, got, x)
		}
	}
	// GatherOrd pads negative ordinals with NULL (outer-join shape).
	o := v.GatherOrd([]int32{2, -1, 1})
	want = []any{"c", nil, nil}
	for i, x := range want {
		if got := o.Get(i); !reflect.DeepEqual(got, x) {
			t.Errorf("GatherOrd[%d] = %#v, want %#v", i, got, x)
		}
		if o.IsNull(i) != (x == nil) {
			t.Errorf("GatherOrd IsNull(%d) = %v, want %v", i, o.IsNull(i), x == nil)
		}
	}
	// Dense gather of a null-free vector carries no null mask.
	nf := BuildVector([]any{int64(1), int64(2)}, VecInt64)
	if g := nf.Gather([]int32{1, 0}); g.Nulls != nil {
		t.Fatal("gather of null-free vector should not allocate a mask")
	}
}

// vecBatch builds a dual-representation batch over typed vectors.
func vecBatch(colVals ...[]any) *Batch {
	b := &Batch{Len: len(colVals[0])}
	b.Vecs = make([]*Vector, len(colVals))
	for c, vals := range colVals {
		b.Vecs[c] = BuildVector(vals, VecAny)
	}
	return b
}

func TestBatchSelOverVectors(t *testing.T) {
	b := vecBatch(
		[]any{int64(0), int64(1), int64(2), int64(3)},
		[]any{"r0", nil, "r2", "r3"},
	)
	b.Sel = []int32{3, 1}
	if b.NumRows() != 2 {
		t.Fatalf("NumRows = %d, want 2", b.NumRows())
	}
	if got := b.Row(0); !reflect.DeepEqual(got, []any{int64(3), "r3"}) {
		t.Fatalf("Row(0) = %#v", got)
	}
	if got := b.Row(1); !reflect.DeepEqual(got, []any{int64(1), nil}) {
		t.Fatalf("Row(1) = %#v", got)
	}
	rows := b.AppendRows(nil)
	if len(rows) != 2 || !reflect.DeepEqual(rows[1], []any{int64(1), nil}) {
		t.Fatalf("AppendRows = %#v", rows)
	}
}

func TestBatchDetachAndCompactPropagateVectors(t *testing.T) {
	b := vecBatch([]any{int64(0), int64(1), int64(2)})
	b.Sel = []int32{2, 0}
	d := b.Detach()
	if d.Vecs == nil || &d.Vecs[0] == nil {
		t.Fatal("Detach dropped the vectors")
	}
	// Detach copies the selection: recycling the producer's Sel must not
	// change the detached batch.
	b.Sel[0] = 1
	if got := d.Row(0); got[0] != int64(2) {
		t.Fatalf("Detach shares Sel with producer: Row(0) = %#v", got)
	}
	c := d.Compact()
	if c.Sel != nil || c.NumRows() != 2 {
		t.Fatalf("Compact kept a selection: %+v", c)
	}
	if c.Vecs[0].Get(0) != int64(2) || c.Vecs[0].Get(1) != int64(0) {
		t.Fatalf("Compact gathered wrong rows: %v %v", c.Vecs[0].Get(0), c.Vecs[0].Get(1))
	}
}

func TestBoxedColsCachesAndMatchesVectors(t *testing.T) {
	b := vecBatch([]any{1.5, nil, 2.5}, []any{true, false, nil})
	cols := b.BoxedCols()
	if len(cols) != 2 {
		t.Fatalf("width = %d", len(cols))
	}
	if !reflect.DeepEqual(cols[0], []any{1.5, nil, 2.5}) {
		t.Fatalf("boxed col 0 = %#v", cols[0])
	}
	// Second call returns the cached slice.
	if again := b.BoxedCols(); &again[0] != &cols[0] {
		t.Fatal("BoxedCols did not cache")
	}
}

func TestMixedTypedAndFallbackBatch(t *testing.T) {
	// One typed column, one dynamic (VecAny) column in the same batch.
	b := vecBatch(
		[]any{int64(1), int64(2)},
		[]any{[]any{int64(9)}, nil},
	)
	if b.Vecs[0].Kind != VecInt64 || b.Vecs[1].Kind != VecAny {
		t.Fatalf("kinds = %v, %v", b.Vecs[0].Kind, b.Vecs[1].Kind)
	}
	rows := b.AppendRows(nil)
	if !reflect.DeepEqual(rows[0], []any{int64(1), []any{int64(9)}}) {
		t.Fatalf("rows[0] = %#v", rows[0])
	}
	if rows[1][1] != nil {
		t.Fatalf("rows[1] = %#v", rows[1])
	}
}

func TestMemTableSnapshotBuildsTypedVectors(t *testing.T) {
	if ForceBoxed() {
		t.Skip("CALCITE_FORCE_BOXED set")
	}
	mt := NewMemTable("t", types.Row(
		types.Field{Name: "a", Type: types.BigInt},
		types.Field{Name: "b", Type: types.Varchar},
	), [][]any{{int64(1), "x"}, {int64(2), nil}})
	cur, err := mt.ScanBatches(16)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	b, err := cur.NextBatch()
	if err != nil {
		t.Fatal(err)
	}
	if b.Vecs == nil {
		t.Fatal("MemTable scan produced no typed vectors")
	}
	if b.Vecs[0].Kind != VecInt64 || b.Vecs[1].Kind != VecString {
		t.Fatalf("kinds = %v, %v", b.Vecs[0].Kind, b.Vecs[1].Kind)
	}
	if !b.Vecs[1].IsNull(1) {
		t.Fatal("NULL lost in typed snapshot")
	}
}
