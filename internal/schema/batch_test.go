package schema

import (
	"reflect"
	"testing"

	"calcite/internal/types"
)

func testRows(n int) [][]any {
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{int64(i), "r"}
	}
	return rows
}

func TestBatchFromRowsRoundTrip(t *testing.T) {
	rows := testRows(5)
	b := BatchFromRows(rows, 2)
	if b.Len != 5 || b.Width() != 2 || b.NumRows() != 5 {
		t.Fatalf("batch shape: len=%d width=%d", b.Len, b.Width())
	}
	back := b.AppendRows(nil)
	if !reflect.DeepEqual(rows, back) {
		t.Fatalf("round trip: %v != %v", back, rows)
	}
}

func TestBatchSelectionAndCompact(t *testing.T) {
	b := BatchFromRows(testRows(6), 2)
	b.Sel = []int32{1, 3, 5}
	if b.NumRows() != 3 {
		t.Fatalf("selected rows: %d", b.NumRows())
	}
	if got := b.Row(1); got[0] != int64(3) {
		t.Fatalf("Row(1): %v", got)
	}
	c := b.Compact()
	if c.Sel != nil || c.Len != 3 || c.Cols[0][2] != int64(5) {
		t.Fatalf("compact: %+v", c)
	}
	// Dense batches compact to themselves.
	if c.Compact() != c {
		t.Fatal("compact of dense batch should be identity")
	}
}

func TestBatchCursorShims(t *testing.T) {
	rows := testRows(10)
	// row cursor -> batches of 4 -> row cursor again.
	bc := BatchCursorFromCursor(NewSliceCursor(rows), 2, 4)
	var sizes []int
	var all [][]any
	for {
		b, err := bc.NextBatch()
		if err == Done {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, b.NumRows())
		all = b.AppendRows(all)
	}
	if !reflect.DeepEqual(sizes, []int{4, 4, 2}) {
		t.Fatalf("batch sizes: %v", sizes)
	}
	if !reflect.DeepEqual(all, rows) {
		t.Fatalf("batched rows: %v", all)
	}

	rc := RowCursorFromBatches(BatchCursorFromCursor(NewSliceCursor(rows), 2, 3))
	defer rc.Close()
	var back [][]any
	for {
		row, err := rc.Next()
		if err == Done {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		back = append(back, row)
	}
	if !reflect.DeepEqual(back, rows) {
		t.Fatalf("row shim: %v", back)
	}
}

func TestMemTableScanBatches(t *testing.T) {
	mt := NewMemTable("t", types.Row(
		types.Field{Name: "a", Type: types.BigInt},
		types.Field{Name: "b", Type: types.Varchar},
	), testRows(7))
	var bt BatchScannableTable = mt // compile-time interface check
	bc, err := bt.ScanBatches(3)
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	var all [][]any
	for {
		b, err := bc.NextBatch()
		if err == Done {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		all = b.AppendRows(all)
	}
	if len(all) != 7 || all[6][0] != int64(6) {
		t.Fatalf("scan batches: %v", all)
	}
	// Zero-width batches still carry a row count.
	zb := BatchFromRows([][]any{{}, {}}, 0)
	if zb.NumRows() != 2 {
		t.Fatalf("zero-width rows: %d", zb.NumRows())
	}
}
