package avatica

// Unit tests for the FIFO bounded-semaphore admission controller.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestAdmissionImmediateGrantAndQueueFull(t *testing.T) {
	a := newAdmission(2, 0, 50*time.Millisecond)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Queue disabled: the third caller bounces immediately.
	start := time.Now()
	err := a.acquire(context.Background())
	if !errors.Is(err, ErrServerBusy) {
		t.Fatalf("want ErrServerBusy, got %v", err)
	}
	if time.Since(start) > 25*time.Millisecond {
		t.Fatalf("queue-full rejection should not wait (took %s)", time.Since(start))
	}
	if got := a.rejectedFull.Load(); got != 1 {
		t.Fatalf("rejectedFull = %d, want 1", got)
	}
	a.release()
	a.release()
	if got := a.Running(); got != 0 {
		t.Fatalf("running = %d after full release", got)
	}
}

func TestAdmissionFIFOHandoff(t *testing.T) {
	a := newAdmission(1, 8, time.Second)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 1; i <= 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := a.acquire(context.Background()); err != nil {
				t.Errorf("waiter %d: %v", i, err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			a.release()
		}()
		// Serialize enqueue order so FIFO is observable.
		waitFor(t, func() bool { return a.Queued() == i })
	}
	a.release() // hand the slot down the queue
	wg.Wait()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("waiters ran out of order: %v", order)
	}
	if got := a.Running(); got != 0 {
		t.Fatalf("running = %d at the end", got)
	}
}

func TestAdmissionTimeout(t *testing.T) {
	a := newAdmission(1, 8, 30*time.Millisecond)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	err := a.acquire(context.Background())
	if !errors.Is(err, ErrServerBusy) {
		t.Fatalf("want ErrServerBusy after wait deadline, got %v", err)
	}
	if got := a.rejectedTimeout.Load(); got != 1 {
		t.Fatalf("rejectedTimeout = %d, want 1", got)
	}
	if got := a.Queued(); got != 0 {
		t.Fatalf("timed-out waiter left in queue (depth %d)", got)
	}
	a.release()
}

func TestAdmissionContextCancel(t *testing.T) {
	a := newAdmission(1, 8, time.Second)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.acquire(ctx) }()
	waitFor(t, func() bool { return a.Queued() == 1 })
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if got := a.Queued(); got != 0 {
		t.Fatalf("canceled waiter left in queue (depth %d)", got)
	}
	a.release()
}

// TestAdmissionNeverOversubscribes hammers the semaphore from many
// goroutines and checks the concurrency invariant directly (run under -race
// in CI).
func TestAdmissionNeverOversubscribes(t *testing.T) {
	const limit = 4
	a := newAdmission(limit, 64, time.Second)
	var inside, peak atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := a.acquire(context.Background()); err != nil {
					t.Errorf("acquire: %v", err)
					return
				}
				n := inside.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				inside.Add(-1)
				a.release()
			}
		}()
	}
	wg.Wait()
	if p := peak.Load(); p > limit {
		t.Fatalf("concurrency peaked at %d, limit %d", p, limit)
	}
	if got := a.Running(); got != 0 {
		t.Fatalf("running = %d at the end", got)
	}
	if got := a.Queued(); got != 0 {
		t.Fatalf("queued = %d at the end", got)
	}
}

// waitFor polls cond briefly; the admission tests use it to sequence
// goroutines without sleeping fixed amounts.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
