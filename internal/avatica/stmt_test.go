package avatica

// Statement-table bound tests (internal: they drive the server's clock).

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"calcite/internal/core"
)

func prepareReq(t *testing.T, srv *Server, sql string) int64 {
	t.Helper()
	w := httptest.NewRecorder()
	r := httptest.NewRequest("POST", "/prepare", strings.NewReader(fmt.Sprintf(`{"sql":%q}`, sql)))
	srv.handlePrepare(w, r)
	var resp PrepareResponse
	decode(t, w.Body.Bytes(), &resp)
	if resp.Error != "" {
		t.Fatalf("prepare: %s", resp.Error)
	}
	return resp.StatementID
}

func executeReq(t *testing.T, srv *Server, id int64) *ExecuteResponse {
	t.Helper()
	w := httptest.NewRecorder()
	r := httptest.NewRequest("POST", "/execute", strings.NewReader(fmt.Sprintf(`{"statementId":%d}`, id)))
	srv.handleExecute(w, r)
	var resp ExecuteResponse
	decode(t, w.Body.Bytes(), &resp)
	return &resp
}

func decode(t *testing.T, b []byte, v any) {
	t.Helper()
	if err := jsonUnmarshal(b, v); err != nil {
		t.Fatalf("decode %s: %v", b, err)
	}
}

func TestStatementTTLEviction(t *testing.T) {
	fw := core.New()
	srv := NewServer(fw)
	srv.StatementTTL = 10 * time.Minute
	clock := time.Date(2026, 7, 26, 9, 0, 0, 0, time.UTC)
	srv.now = func() time.Time { return clock }

	stale := prepareReq(t, srv, "SELECT 1")
	clock = clock.Add(5 * time.Minute)
	fresh := prepareReq(t, srv, "SELECT 2")
	// Executing refreshes the fresh statement's last-use.
	clock = clock.Add(4 * time.Minute)
	if resp := executeReq(t, srv, fresh); resp.Error != "" {
		t.Fatalf("fresh execute: %s", resp.Error)
	}
	// 12 minutes after the stale prepare, 3 after the fresh touch: the next
	// prepare evicts only the stale one.
	clock = clock.Add(3 * time.Minute)
	prepareReq(t, srv, "SELECT 3")
	if got := srv.StatementCount(); got != 2 {
		t.Fatalf("statement count = %d, want 2 (stale evicted)", got)
	}
	if resp := executeReq(t, srv, stale); resp.Error == "" ||
		!strings.Contains(resp.Error, "unknown statement") {
		t.Fatalf("stale statement should be gone, got error=%q", resp.Error)
	}
	if resp := executeReq(t, srv, fresh); resp.Error != "" {
		t.Fatalf("fresh statement should survive: %s", resp.Error)
	}
}

func TestStatementTableSizeCap(t *testing.T) {
	fw := core.New()
	srv := NewServer(fw)
	srv.MaxStatements = 8
	clock := time.Date(2026, 7, 26, 9, 0, 0, 0, time.UTC)
	srv.now = func() time.Time { return clock }

	var first int64
	for i := 0; i < 50; i++ {
		clock = clock.Add(time.Second) // distinct last-use times → LRU order
		id := prepareReq(t, srv, fmt.Sprintf("SELECT %d", i))
		if i == 0 {
			first = id
		}
	}
	if got := srv.StatementCount(); got > 8 {
		t.Fatalf("statement table grew to %d, cap is 8", got)
	}
	if resp := executeReq(t, srv, first); resp.Error == "" {
		t.Fatal("oldest statement should have been evicted")
	}
	// The newest statement still works.
	newest := prepareReq(t, srv, "SELECT 99")
	if resp := executeReq(t, srv, newest); resp.Error != "" {
		t.Fatalf("newest statement: %s", resp.Error)
	}
}

// jsonUnmarshal isolates the std decoding used by the test helpers.
func jsonUnmarshal(b []byte, v any) error { return json.Unmarshal(b, v) }
