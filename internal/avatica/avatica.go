// Package avatica implements the framework's remote driver, the analogue of
// Calcite's Avatica JDBC driver (§1: "Calcite includes a driver conforming
// to the standard Java API (JDBC)"). A Server exposes a framework instance
// over a JSON/HTTP protocol with prepare/execute/fetch/close semantics;
// Client is the matching database-driver-style client.
//
// The server is a concurrent serving tier, not a one-query-at-a-time shim:
//
//   - Repeated statements hit the framework's prepared-plan cache and skip
//     parse+optimize (see internal/core).
//   - Admission control (admission.go) bounds concurrent executions to a
//     multiple of the worker pool and queues the overflow FIFO with a
//     deadline; a saturated server answers 503 SERVER_BUSY.
//   - Each tenant (X-Calcite-Tenant header) executes against a child memory
//     pool carved from the global budget, so one tenant's spill storm cannot
//     starve another.
//   - Large results stream in fetch/offset frames: the server retains the
//     cursor remainder on the statement, charged against the tenant's pool
//     and bounded by the statement table's TTL/LRU eviction.
package avatica

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"calcite/internal/core"
	"calcite/internal/exec"
	"calcite/internal/memory"
	"calcite/internal/types"
)

// --- wire protocol ---

// PrepareRequest asks the server to validate and register a statement.
type PrepareRequest struct {
	SQL string `json:"sql"`
}

// PrepareResponse returns the statement handle.
type PrepareResponse struct {
	StatementID int64    `json:"statementId"`
	Columns     []string `json:"columns,omitempty"`
	Error       string   `json:"error,omitempty"`
}

// ExecuteRequest executes a prepared statement or a direct SQL string.
type ExecuteRequest struct {
	StatementID int64  `json:"statementId,omitempty"`
	SQL         string `json:"sql,omitempty"`
	Params      []any  `json:"params,omitempty"`
	// MaxRows truncates the result (0 = unlimited).
	MaxRows int `json:"maxRows,omitempty"`
	// FetchSize paginates the result: the response carries the first
	// FetchSize rows and the server retains the remainder as a cursor on
	// the statement (an implicit statement is created for direct SQL);
	// later frames come from /fetch. 0 returns everything at once.
	FetchSize int `json:"fetchSize,omitempty"`
}

// FetchRequest asks for the next frame of a paginated result.
type FetchRequest struct {
	StatementID int64 `json:"statementId"`
	// FetchSize is the frame size (<= 0 uses DefaultFetchSize).
	FetchSize int `json:"fetchSize,omitempty"`
}

// ExecuteResponse carries one result frame (the whole result when the
// request was unpaginated).
type ExecuteResponse struct {
	Columns     []string `json:"columns"`
	ColumnTypes []string `json:"columnTypes"`
	Rows        [][]any  `json:"rows"`
	Truncated   bool     `json:"truncated,omitempty"`
	// StatementID echoes the statement holding the cursor when More is set
	// (an implicit statement for direct SQL).
	StatementID int64 `json:"statementId,omitempty"`
	// Offset is this frame's first row index within the full result.
	Offset int `json:"offset,omitempty"`
	// More reports that the server retains further rows for /fetch.
	More  bool   `json:"more,omitempty"`
	Error string `json:"error,omitempty"`
	// Code classifies retryable errors (today: SERVER_BUSY).
	Code      string  `json:"code,omitempty"`
	ElapsedMs float64 `json:"elapsedMs"`
}

// CloseRequest releases a prepared statement (and its retained cursor).
type CloseRequest struct {
	StatementID int64 `json:"statementId"`
}

// CancelRequest interrupts the statement's in-flight execution (if any) and
// releases its retained cursor. The statement itself stays prepared.
type CancelRequest struct {
	StatementID int64 `json:"statementId"`
}

// CodeServerBusy is the wire code of an admission rejection (HTTP 503).
const CodeServerBusy = "SERVER_BUSY"

// CodeCanceled is the wire code of an interrupted execution.
const CodeCanceled = "CANCELED"

// --- server ---

// Statement-table bounds: long-running servers must not leak prepared
// statements whose clients never close them, so the table is bounded two
// ways — idle statements expire after a TTL, and the table has a hard size
// cap with least-recently-used eviction. Eviction runs the same cleanup as
// an explicit close (cursor memory returns to its pool). A well-behaved
// client that prepares, executes, fetches and closes never notices either
// bound.
const (
	// DefaultStatementTTL is how long an unused prepared statement survives.
	DefaultStatementTTL = 15 * time.Minute
	// DefaultMaxStatements caps the statement table size.
	DefaultMaxStatements = 1024
	// DefaultFetchSize is the /fetch frame size when the request leaves it 0.
	DefaultFetchSize = 1024
)

// cursor is the retained remainder of a paginated result. Its rows are
// charged against pool (the tenant's budget) until the cursor is drained,
// the statement is closed, or the statement is evicted.
type cursor struct {
	columns  []string
	colTypes []string
	rows     [][]any
	offset   int // next row to serve
	charged  int64
	pool     *memory.Pool
}

// stmtEntry is one prepared statement with its last-use time and, when a
// paginated execute ran on it, the retained cursor.
type stmtEntry struct {
	sql      string
	lastUsed time.Time
	cursor   *cursor
	// running is the interrupt flag of the statement's in-flight execution
	// (nil when idle); /cancel sets it and the engine's drain loops and
	// streaming operators fail with exec.ErrCanceled.
	running *atomic.Bool
}

// Server serves a Framework over HTTP.
type Server struct {
	fw *core.Framework

	// StatementTTL evicts statements idle longer than this (<= 0 uses
	// DefaultStatementTTL). Set before Start.
	StatementTTL time.Duration
	// MaxStatements caps the statement table (<= 0 uses
	// DefaultMaxStatements).
	MaxStatements int
	// MaxConcurrent bounds simultaneously executing statements (<= 0 sizes
	// it from the worker pool: 2 × parallelism, execution being a mix of
	// CPU work and response serialization). Set before Handler/Start.
	MaxConcurrent int
	// MaxQueue bounds the admission wait queue (< 0 disables queueing;
	// 0 uses DefaultQueueFactor × MaxConcurrent). Set before Handler/Start.
	MaxQueue int
	// QueueTimeout bounds how long a request waits for an execution slot
	// (<= 0 uses DefaultQueueTimeout). Set before Handler/Start.
	QueueTimeout time.Duration
	// TenantMemoryLimit caps each tenant's child memory pool in bytes
	// (0 = tenants are accounted separately but bounded only by the global
	// pool). Set before Handler/Start.
	TenantMemoryLimit int64
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by
	// default: profiling endpoints expose internals and cost CPU). Set
	// before Handler/Start.
	EnablePprof bool

	// Statement-table eviction counters, sampled by the metrics registry.
	evictedTTL atomic.Int64
	evictedLRU atomic.Int64
	// cursorBytes tracks memory currently charged for retained cursors.
	cursorBytes atomic.Int64

	// adm is the admission controller, built once in Handler.
	adm     *admission
	admOnce sync.Once

	// tenantMu guards the lazily created per-tenant child pools.
	tenantMu sync.Mutex
	tenants  map[string]*memory.Pool

	// now is the clock, swappable in tests.
	now func() time.Time

	mu      sync.Mutex
	nextID  int64
	stmts   map[int64]*stmtEntry
	httpSrv *http.Server
	addr    string
}

// NewServer wraps a framework.
func NewServer(fw *core.Framework) *Server {
	return &Server{fw: fw, stmts: map[int64]*stmtEntry{}, tenants: map[string]*memory.Pool{}, now: time.Now}
}

func (s *Server) statementTTL() time.Duration {
	if s.StatementTTL > 0 {
		return s.StatementTTL
	}
	return DefaultStatementTTL
}

func (s *Server) maxStatements() int {
	if s.MaxStatements > 0 {
		return s.MaxStatements
	}
	return DefaultMaxStatements
}

// admission returns the admission controller, building it on first use from
// the server's bounds (or the worker-pool-derived defaults).
func (s *Server) admission() *admission {
	s.admOnce.Do(func() {
		max := s.MaxConcurrent
		if max <= 0 {
			max = 2 * s.fw.EffectiveParallelism()
		}
		queue := s.MaxQueue
		switch {
		case queue < 0:
			queue = 0
		case queue == 0:
			queue = DefaultQueueFactor * max
		}
		s.adm = newAdmission(max, queue, s.QueueTimeout)
	})
	return s.adm
}

// tenantPool returns the tenant's child memory pool, carving it from the
// global pool on first use. The empty tenant draws from the global pool
// directly.
func (s *Server) tenantPool(tenant string) *memory.Pool {
	if tenant == "" {
		return nil
	}
	s.tenantMu.Lock()
	defer s.tenantMu.Unlock()
	p, ok := s.tenants[tenant]
	if !ok {
		p = memory.NewChildPool(s.fw.MemoryPool(), s.TenantMemoryLimit)
		s.tenants[tenant] = p
		s.registerTenantMetrics(tenant, p)
	}
	return p
}

// dropLocked removes a statement, running the full cleanup path: the
// retained cursor's memory returns to its pool. Explicit close, TTL expiry,
// LRU eviction and shutdown all funnel through here — eviction must never
// leak what close would have released.
func (s *Server) dropLocked(id int64) {
	e, ok := s.stmts[id]
	if !ok {
		return
	}
	s.releaseCursor(e)
	delete(s.stmts, id)
}

// releaseCursor returns a statement's retained cursor memory to its pool.
func (s *Server) releaseCursor(e *stmtEntry) {
	if e.cursor == nil {
		return
	}
	e.cursor.pool.Release(e.cursor.charged)
	s.cursorBytes.Add(-e.cursor.charged)
	e.cursor = nil
}

// evictLocked enforces the statement-table bounds (caller holds s.mu):
// expired entries go first; if the table is still at capacity, the least
// recently used entry is evicted to make room for one more.
func (s *Server) evictLocked() {
	deadline := s.now().Add(-s.statementTTL())
	for id, e := range s.stmts {
		if e.lastUsed.Before(deadline) {
			s.dropLocked(id)
			s.evictedTTL.Add(1)
		}
	}
	for len(s.stmts) >= s.maxStatements() {
		var oldest int64
		var oldestAt time.Time
		first := true
		for id, e := range s.stmts {
			if first || e.lastUsed.Before(oldestAt) {
				oldest, oldestAt, first = id, e.lastUsed, false
			}
		}
		s.dropLocked(oldest)
		s.evictedLRU.Add(1)
	}
}

// StatementCount reports the current statement-table size (tests,
// monitoring).
func (s *Server) StatementCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.stmts)
}

// CursorBytes reports the memory currently retained by open cursors.
func (s *Server) CursorBytes() int64 { return s.cursorBytes.Load() }

// closeAllStatements drops every statement (shutdown: cursors must not
// outlive the server).
func (s *Server) closeAllStatements() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id := range s.stmts {
		s.dropLocked(id)
	}
}

// Handler returns the HTTP handler (also usable without a listener): the
// wire-protocol endpoints plus the observability surface (/metrics,
// /debug/queries, /healthz, and /debug/pprof/ when enabled), all wrapped in
// per-route request metrics.
func (s *Server) Handler() http.Handler {
	s.registerServerMetrics()
	mux := http.NewServeMux()
	mux.HandleFunc("/prepare", s.handlePrepare)
	mux.HandleFunc("/execute", s.handleExecute)
	mux.HandleFunc("/fetch", s.handleFetch)
	mux.HandleFunc("/cancel", s.handleCancel)
	mux.HandleFunc("/close", s.handleClose)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	mux.HandleFunc("/debug/plans", s.handleDebugPlans)
	mux.HandleFunc("/healthz", s.handleHealthz)
	if s.EnablePprof {
		mountPprof(mux)
	}
	return s.instrument(mux)
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves in
// the background. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.httpSrv = &http.Server{Handler: s.Handler()}
	s.addr = ln.Addr().String()
	go s.httpSrv.Serve(ln)
	return s.addr, nil
}

// Stop shuts the server down immediately, dropping in-flight requests and
// releasing every statement's resources.
func (s *Server) Stop() error {
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Close()
	}
	s.closeAllStatements()
	return err
}

// Shutdown drains the server gracefully: the listener closes at once,
// in-flight requests run to completion until ctx expires, then every
// statement's resources are released.
func (s *Server) Shutdown(ctx context.Context) error {
	var err error
	if s.httpSrv != nil {
		err = s.httpSrv.Shutdown(ctx)
	}
	s.closeAllStatements()
	return err
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// writeJSONStatus writes v with an explicit HTTP status (503 for admission
// rejections, so load balancers and clients can tell "busy" from "broken").
func writeJSONStatus(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req PrepareRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, PrepareResponse{Error: err.Error()})
		return
	}
	s.mu.Lock()
	s.evictLocked()
	s.nextID++
	id := s.nextID
	s.stmts[id] = &stmtEntry{sql: req.SQL, lastUsed: s.now()}
	s.mu.Unlock()
	writeJSON(w, PrepareResponse{StatementID: id})
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	var req ExecuteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, ExecuteResponse{Error: err.Error()})
		return
	}
	// Admission: claim an execution slot (FIFO queue, bounded wait) before
	// touching the engine. Saturation is a clean 503, never a goroutine
	// pile-up.
	if err := s.admission().acquire(r.Context()); err != nil {
		if errors.Is(err, ErrServerBusy) {
			writeJSONStatus(w, http.StatusServiceUnavailable,
				ExecuteResponse{Error: err.Error(), Code: CodeServerBusy})
		} else {
			// Client went away while queued; the response is best-effort.
			writeJSONStatus(w, http.StatusServiceUnavailable,
				ExecuteResponse{Error: err.Error()})
		}
		return
	}
	defer s.admission().release()

	sql := req.SQL
	interrupt := &atomic.Bool{}
	if req.StatementID != 0 {
		s.mu.Lock()
		stored, ok := s.stmts[req.StatementID]
		if ok {
			stored.lastUsed = s.now() // touch: execution keeps a statement live
			stored.running = interrupt
			sql = stored.sql
		}
		s.mu.Unlock()
		if !ok {
			writeJSON(w, ExecuteResponse{Error: fmt.Sprintf("unknown statement %d (closed or evicted)", req.StatementID)})
			return
		}
		defer func() {
			s.mu.Lock()
			if e, ok := s.stmts[req.StatementID]; ok && e.running == interrupt {
				e.running = nil
			}
			s.mu.Unlock()
		}()
	}
	// A client disconnect interrupts the execution: a continuous query whose
	// consumer went away must not keep accumulating window state.
	watchDone := make(chan struct{})
	go func() {
		select {
		case <-r.Context().Done():
			interrupt.Store(true)
		case <-watchDone:
		}
	}()
	defer close(watchDone)
	params := make([]any, len(req.Params))
	for i, p := range req.Params {
		params[i] = normalizeJSON(p)
	}
	pool := s.tenantPool(r.Header.Get(TenantHeader))
	start := time.Now()
	res, err := s.fw.ExecuteOpts(sql, core.ExecOptions{Params: params, Pool: pool, Interrupt: interrupt})
	if err != nil {
		if errors.Is(err, exec.ErrCanceled) {
			writeJSON(w, ExecuteResponse{Error: err.Error(), Code: CodeCanceled})
			return
		}
		writeJSON(w, ExecuteResponse{Error: err.Error()})
		return
	}
	rows := res.Rows
	truncated := false
	if req.MaxRows > 0 && len(rows) > req.MaxRows {
		rows = rows[:req.MaxRows]
		truncated = true
	}
	colTypes := columnTypes(res.Columns, rows)
	resp := ExecuteResponse{
		Columns:     res.Columns,
		ColumnTypes: colTypes,
		Rows:        rows,
		Truncated:   truncated,
		ElapsedMs:   float64(time.Since(start).Microseconds()) / 1000,
	}
	if req.FetchSize > 0 && len(rows) > req.FetchSize {
		if err := s.retainCursor(req.StatementID, sql, pool, &resp, req.FetchSize); err != nil {
			writeJSON(w, ExecuteResponse{Error: err.Error()})
			return
		}
	}
	writeJSON(w, resp)
}

// retainCursor stores the remainder of a paginated result as a server-side
// cursor on the statement (creating an implicit statement for direct SQL),
// charging the retained rows to the tenant's pool. The response is trimmed
// to the first frame in place.
func (s *Server) retainCursor(stmtID int64, sql string, pool *memory.Pool, resp *ExecuteResponse, fetchSize int) error {
	charge := int64(0)
	for _, row := range resp.Rows {
		charge += types.SizeOfRow(row)
	}
	chargePool := pool
	if chargePool == nil {
		chargePool = s.fw.MemoryPool()
	}
	if err := chargePool.Reserve(charge); err != nil {
		return fmt.Errorf("cannot retain cursor (%d rows): %v", len(resp.Rows), err)
	}
	cur := &cursor{
		columns:  resp.Columns,
		colTypes: resp.ColumnTypes,
		rows:     resp.Rows,
		offset:   fetchSize,
		charged:  charge,
		pool:     chargePool,
	}
	s.mu.Lock()
	s.evictLocked()
	id := stmtID
	if id == 0 {
		s.nextID++
		id = s.nextID
		s.stmts[id] = &stmtEntry{sql: sql, lastUsed: s.now()}
	}
	e, ok := s.stmts[id]
	if !ok {
		// The statement was evicted between execute and retention; the
		// cursor has nowhere to live.
		s.mu.Unlock()
		chargePool.Release(charge)
		return fmt.Errorf("statement %d evicted before cursor retention", id)
	}
	s.releaseCursor(e) // a re-execute replaces any previous cursor
	e.cursor = cur
	e.lastUsed = s.now()
	s.mu.Unlock()
	s.cursorBytes.Add(charge)

	resp.Rows = resp.Rows[:fetchSize]
	resp.StatementID = id
	resp.More = true
	resp.Offset = 0
	return nil
}

func (s *Server) handleFetch(w http.ResponseWriter, r *http.Request) {
	var req FetchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, ExecuteResponse{Error: err.Error()})
		return
	}
	n := req.FetchSize
	if n <= 0 {
		n = DefaultFetchSize
	}
	s.mu.Lock()
	e, ok := s.stmts[req.StatementID]
	if !ok || e.cursor == nil {
		s.mu.Unlock()
		writeJSON(w, ExecuteResponse{Error: fmt.Sprintf("no open cursor on statement %d (closed, evicted or drained)", req.StatementID)})
		return
	}
	e.lastUsed = s.now()
	cur := e.cursor
	startRow := cur.offset
	end := startRow + n
	if end > len(cur.rows) {
		end = len(cur.rows)
	}
	frame := cur.rows[startRow:end]
	cur.offset = end
	more := end < len(cur.rows)
	resp := ExecuteResponse{
		Columns:     cur.columns,
		ColumnTypes: cur.colTypes,
		Rows:        frame,
		StatementID: req.StatementID,
		Offset:      startRow,
		More:        more,
	}
	if !more {
		// Drained: the cursor's memory goes back to its pool at once; the
		// statement itself stays prepared.
		s.releaseCursor(e)
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

// handleCancel interrupts a statement's in-flight execution and releases its
// retained cursor; the statement stays prepared. Canceling an idle statement
// only drops the cursor.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	var req CancelRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, map[string]string{"error": err.Error()})
		return
	}
	s.mu.Lock()
	e, ok := s.stmts[req.StatementID]
	interrupted := false
	if ok {
		if e.running != nil {
			e.running.Store(true)
			interrupted = true
		}
		s.releaseCursor(e)
		e.lastUsed = s.now()
	}
	s.mu.Unlock()
	writeJSON(w, map[string]bool{"canceled": ok, "interrupted": interrupted})
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	var req CloseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, map[string]string{"error": err.Error()})
		return
	}
	s.mu.Lock()
	s.dropLocked(req.StatementID)
	s.mu.Unlock()
	writeJSON(w, map[string]bool{"closed": true})
}

// columnTypes derives the wire type tags from the first non-nil value of
// each column (scanning past leading NULLs, so a NULL in row 0 does not
// untype the column).
func columnTypes(columns []string, rows [][]any) []string {
	colTypes := make([]string, len(columns))
	for i := range colTypes {
		for _, row := range rows {
			if i < len(row) && row[i] != nil {
				colTypes[i] = fmt.Sprintf("%T", row[i])
				break
			}
		}
	}
	return colTypes
}

// normalizeJSON converts decoded JSON values to engine runtime values
// (JSON numbers arrive as float64; integral ones become int64).
func normalizeJSON(v any) any {
	switch x := v.(type) {
	case float64:
		if x == float64(int64(x)) {
			return int64(x)
		}
		return x
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = normalizeJSON(e)
		}
		return out
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, e := range x {
			out[k] = normalizeJSON(e)
		}
		return out
	}
	return v
}

// --- client ---

// TenantHeader names the HTTP header that routes a request to a tenant's
// memory budget.
const TenantHeader = "X-Calcite-Tenant"

// Client talks to an avatica Server.
type Client struct {
	BaseURL string
	HTTP    *http.Client
	// Tenant, when set, is sent as the X-Calcite-Tenant header: the server
	// runs this client's queries against that tenant's memory budget.
	Tenant string
}

// NewClient creates a client for the given address ("host:port").
func NewClient(addr string) *Client {
	return &Client{BaseURL: "http://" + addr, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

func (c *Client) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	httpReq, err := http.NewRequest(http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	httpReq.Header.Set("Content-Type", "application/json")
	if c.Tenant != "" {
		httpReq.Header.Set(TenantHeader, c.Tenant)
	}
	httpResp, err := c.HTTP.Do(httpReq)
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	return json.NewDecoder(httpResp.Body).Decode(resp)
}

// Prepare registers a statement and returns its handle.
func (c *Client) Prepare(sql string) (int64, error) {
	var resp PrepareResponse
	if err := c.post("/prepare", PrepareRequest{SQL: sql}, &resp); err != nil {
		return 0, err
	}
	if resp.Error != "" {
		return 0, fmt.Errorf("avatica: %s", resp.Error)
	}
	return resp.StatementID, nil
}

// respError converts a response's error fields into a Go error, mapping
// SERVER_BUSY onto ErrServerBusy so callers can retry with backoff.
func respError(resp *ExecuteResponse) error {
	if resp.Error == "" {
		return nil
	}
	if resp.Code == CodeServerBusy {
		return fmt.Errorf("avatica: %s: %w", resp.Error, ErrServerBusy)
	}
	return fmt.Errorf("avatica: %s", resp.Error)
}

// Do executes an arbitrary ExecuteRequest (the general form behind Query and
// Execute; loadgen and the differential suites drive pagination through it).
func (c *Client) Do(req ExecuteRequest) (*ExecuteResponse, error) {
	var resp ExecuteResponse
	if err := c.post("/execute", req, &resp); err != nil {
		return nil, err
	}
	if err := respError(&resp); err != nil {
		return nil, err
	}
	normalizeRows(&resp)
	return &resp, nil
}

// Query executes SQL directly.
func (c *Client) Query(sql string, params ...any) (*ExecuteResponse, error) {
	return c.Do(ExecuteRequest{SQL: sql, Params: params})
}

// Execute runs a prepared statement.
func (c *Client) Execute(statementID int64, params ...any) (*ExecuteResponse, error) {
	return c.Do(ExecuteRequest{StatementID: statementID, Params: params})
}

// Fetch retrieves the next frame of a paginated result (fetchSize <= 0 uses
// the server default).
func (c *Client) Fetch(statementID int64, fetchSize int) (*ExecuteResponse, error) {
	var resp ExecuteResponse
	if err := c.post("/fetch", FetchRequest{StatementID: statementID, FetchSize: fetchSize}, &resp); err != nil {
		return nil, err
	}
	if err := respError(&resp); err != nil {
		return nil, err
	}
	normalizeRows(&resp)
	return &resp, nil
}

// Cancel interrupts a statement's in-flight execution and releases its
// retained cursor; the statement stays prepared.
func (c *Client) Cancel(statementID int64) error {
	var resp map[string]any
	return c.post("/cancel", CancelRequest{StatementID: statementID}, &resp)
}

// Close releases a prepared statement.
func (c *Client) Close(statementID int64) error {
	var resp map[string]any
	return c.post("/close", CloseRequest{StatementID: statementID}, &resp)
}

// normalizeRows converts JSON-decoded cell values back to runtime types
// using the server-reported column types: int64 columns are restored from
// JSON numbers, float64 columns stay floats even when a value is integral.
func normalizeRows(resp *ExecuteResponse) {
	for _, row := range resp.Rows {
		for i, v := range row {
			colType := ""
			if i < len(resp.ColumnTypes) {
				colType = resp.ColumnTypes[i]
			}
			switch colType {
			case "int64":
				if iv, ok := types.AsFloat(v); ok {
					row[i] = int64(iv)
					continue
				}
			case "float64":
				if _, ok := v.(float64); ok {
					continue
				}
			}
			row[i] = normalizeJSON(v)
		}
	}
}
