// Package avatica implements the framework's remote driver, the analogue of
// Calcite's Avatica JDBC driver (§1: "Calcite includes a driver conforming
// to the standard Java API (JDBC)"). A Server exposes a framework instance
// over a JSON/HTTP protocol with prepare/execute/close semantics; Client is
// the matching database-driver-style client.
package avatica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"calcite/internal/core"
	"calcite/internal/types"
)

// --- wire protocol ---

// PrepareRequest asks the server to validate and plan a statement.
type PrepareRequest struct {
	SQL string `json:"sql"`
}

// PrepareResponse returns the statement handle.
type PrepareResponse struct {
	StatementID int64    `json:"statementId"`
	Columns     []string `json:"columns,omitempty"`
	Error       string   `json:"error,omitempty"`
}

// ExecuteRequest executes a prepared statement or a direct SQL string.
type ExecuteRequest struct {
	StatementID int64  `json:"statementId,omitempty"`
	SQL         string `json:"sql,omitempty"`
	Params      []any  `json:"params,omitempty"`
	// MaxRows truncates the response (0 = unlimited).
	MaxRows int `json:"maxRows,omitempty"`
}

// ExecuteResponse carries the result set.
type ExecuteResponse struct {
	Columns     []string `json:"columns"`
	ColumnTypes []string `json:"columnTypes"`
	Rows        [][]any  `json:"rows"`
	Truncated   bool     `json:"truncated,omitempty"`
	Error       string   `json:"error,omitempty"`
	ElapsedMs   float64  `json:"elapsedMs"`
}

// CloseRequest releases a prepared statement.
type CloseRequest struct {
	StatementID int64 `json:"statementId"`
}

// --- server ---

// Statement-table bounds: long-running servers must not leak prepared
// statements whose clients never close them, so the table is bounded two
// ways — idle statements expire after a TTL, and the table has a hard size
// cap with least-recently-used eviction. A well-behaved client that
// prepares, executes and closes never notices either bound.
const (
	// DefaultStatementTTL is how long an unused prepared statement survives.
	DefaultStatementTTL = 15 * time.Minute
	// DefaultMaxStatements caps the statement table size.
	DefaultMaxStatements = 1024
)

// stmtEntry is one prepared statement with its last-use time.
type stmtEntry struct {
	sql      string
	lastUsed time.Time
}

// Server serves a Framework over HTTP.
type Server struct {
	fw *core.Framework

	// StatementTTL evicts statements idle longer than this (<= 0 uses
	// DefaultStatementTTL). Set before Start.
	StatementTTL time.Duration
	// MaxStatements caps the statement table (<= 0 uses
	// DefaultMaxStatements).
	MaxStatements int
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by
	// default: profiling endpoints expose internals and cost CPU). Set
	// before Handler/Start.
	EnablePprof bool

	// Statement-table eviction counters, sampled by the metrics registry.
	evictedTTL atomic.Int64
	evictedLRU atomic.Int64

	// now is the clock, swappable in tests.
	now func() time.Time

	mu      sync.Mutex
	nextID  int64
	stmts   map[int64]*stmtEntry
	httpSrv *http.Server
	addr    string
}

// NewServer wraps a framework.
func NewServer(fw *core.Framework) *Server {
	return &Server{fw: fw, stmts: map[int64]*stmtEntry{}, now: time.Now}
}

func (s *Server) statementTTL() time.Duration {
	if s.StatementTTL > 0 {
		return s.StatementTTL
	}
	return DefaultStatementTTL
}

func (s *Server) maxStatements() int {
	if s.MaxStatements > 0 {
		return s.MaxStatements
	}
	return DefaultMaxStatements
}

// evictLocked enforces the statement-table bounds (caller holds s.mu):
// expired entries go first; if the table is still at capacity, the least
// recently used entry is evicted to make room for one more.
func (s *Server) evictLocked() {
	deadline := s.now().Add(-s.statementTTL())
	for id, e := range s.stmts {
		if e.lastUsed.Before(deadline) {
			delete(s.stmts, id)
			s.evictedTTL.Add(1)
		}
	}
	for len(s.stmts) >= s.maxStatements() {
		var oldest int64
		var oldestAt time.Time
		first := true
		for id, e := range s.stmts {
			if first || e.lastUsed.Before(oldestAt) {
				oldest, oldestAt, first = id, e.lastUsed, false
			}
		}
		delete(s.stmts, oldest)
		s.evictedLRU.Add(1)
	}
}

// StatementCount reports the current statement-table size (tests,
// monitoring).
func (s *Server) StatementCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.stmts)
}

// Handler returns the HTTP handler (also usable without a listener): the
// wire-protocol endpoints plus the observability surface (/metrics,
// /debug/queries, /healthz, and /debug/pprof/ when enabled), all wrapped in
// per-route request metrics.
func (s *Server) Handler() http.Handler {
	s.registerServerMetrics()
	mux := http.NewServeMux()
	mux.HandleFunc("/prepare", s.handlePrepare)
	mux.HandleFunc("/execute", s.handleExecute)
	mux.HandleFunc("/close", s.handleClose)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/queries", s.handleDebugQueries)
	mux.HandleFunc("/healthz", s.handleHealthz)
	if s.EnablePprof {
		mountPprof(mux)
	}
	return s.instrument(mux)
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port) and serves in
// the background. It returns the bound address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.httpSrv = &http.Server{Handler: s.Handler()}
	s.addr = ln.Addr().String()
	go s.httpSrv.Serve(ln)
	return s.addr, nil
}

// Stop shuts the server down immediately, dropping in-flight requests.
func (s *Server) Stop() error {
	if s.httpSrv != nil {
		return s.httpSrv.Close()
	}
	return nil
}

// Shutdown drains the server gracefully: the listener closes at once,
// in-flight requests run to completion until ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.httpSrv != nil {
		return s.httpSrv.Shutdown(ctx)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	var req PrepareRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, PrepareResponse{Error: err.Error()})
		return
	}
	s.mu.Lock()
	s.evictLocked()
	s.nextID++
	id := s.nextID
	s.stmts[id] = &stmtEntry{sql: req.SQL, lastUsed: s.now()}
	s.mu.Unlock()
	writeJSON(w, PrepareResponse{StatementID: id})
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	var req ExecuteRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, ExecuteResponse{Error: err.Error()})
		return
	}
	sql := req.SQL
	if req.StatementID != 0 {
		s.mu.Lock()
		stored, ok := s.stmts[req.StatementID]
		if ok {
			stored.lastUsed = s.now() // touch: execution keeps a statement live
			sql = stored.sql
		}
		s.mu.Unlock()
		if !ok {
			writeJSON(w, ExecuteResponse{Error: fmt.Sprintf("avatica: unknown statement %d (closed or evicted)", req.StatementID)})
			return
		}
	}
	params := make([]any, len(req.Params))
	for i, p := range req.Params {
		params[i] = normalizeJSON(p)
	}
	start := time.Now()
	res, err := s.fw.Execute(sql, params...)
	if err != nil {
		writeJSON(w, ExecuteResponse{Error: err.Error()})
		return
	}
	rows := res.Rows
	truncated := false
	if req.MaxRows > 0 && len(rows) > req.MaxRows {
		rows = rows[:req.MaxRows]
		truncated = true
	}
	colTypes := make([]string, len(res.Columns))
	if len(rows) > 0 {
		for i := range colTypes {
			colTypes[i] = fmt.Sprintf("%T", rows[0][i])
		}
	}
	writeJSON(w, ExecuteResponse{
		Columns:     res.Columns,
		ColumnTypes: colTypes,
		Rows:        rows,
		Truncated:   truncated,
		ElapsedMs:   float64(time.Since(start).Microseconds()) / 1000,
	})
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	var req CloseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, map[string]string{"error": err.Error()})
		return
	}
	s.mu.Lock()
	delete(s.stmts, req.StatementID)
	s.mu.Unlock()
	writeJSON(w, map[string]bool{"closed": true})
}

// normalizeJSON converts decoded JSON values to engine runtime values
// (JSON numbers arrive as float64; integral ones become int64).
func normalizeJSON(v any) any {
	switch x := v.(type) {
	case float64:
		if x == float64(int64(x)) {
			return int64(x)
		}
		return x
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = normalizeJSON(e)
		}
		return out
	case map[string]any:
		out := make(map[string]any, len(x))
		for k, e := range x {
			out[k] = normalizeJSON(e)
		}
		return out
	}
	return v
}

// --- client ---

// Client talks to an avatica Server.
type Client struct {
	BaseURL string
	HTTP    *http.Client
}

// NewClient creates a client for the given address ("host:port").
func NewClient(addr string) *Client {
	return &Client{BaseURL: "http://" + addr, HTTP: &http.Client{Timeout: 30 * time.Second}}
}

func (c *Client) post(path string, req, resp any) error {
	body, err := json.Marshal(req)
	if err != nil {
		return err
	}
	httpResp, err := c.HTTP.Post(c.BaseURL+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer httpResp.Body.Close()
	return json.NewDecoder(httpResp.Body).Decode(resp)
}

// Prepare registers a statement and returns its handle.
func (c *Client) Prepare(sql string) (int64, error) {
	var resp PrepareResponse
	if err := c.post("/prepare", PrepareRequest{SQL: sql}, &resp); err != nil {
		return 0, err
	}
	if resp.Error != "" {
		return 0, fmt.Errorf("avatica: %s", resp.Error)
	}
	return resp.StatementID, nil
}

// Query executes SQL directly.
func (c *Client) Query(sql string, params ...any) (*ExecuteResponse, error) {
	var resp ExecuteResponse
	if err := c.post("/execute", ExecuteRequest{SQL: sql, Params: params}, &resp); err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, fmt.Errorf("avatica: %s", resp.Error)
	}
	normalizeRows(&resp)
	return &resp, nil
}

// Execute runs a prepared statement.
func (c *Client) Execute(statementID int64, params ...any) (*ExecuteResponse, error) {
	var resp ExecuteResponse
	if err := c.post("/execute", ExecuteRequest{StatementID: statementID, Params: params}, &resp); err != nil {
		return nil, err
	}
	if resp.Error != "" {
		return nil, fmt.Errorf("avatica: %s", resp.Error)
	}
	normalizeRows(&resp)
	return &resp, nil
}

// Close releases a prepared statement.
func (c *Client) Close(statementID int64) error {
	var resp map[string]any
	return c.post("/close", CloseRequest{StatementID: statementID}, &resp)
}

// normalizeRows converts JSON-decoded cell values back to runtime types
// using the server-reported column types.
func normalizeRows(resp *ExecuteResponse) {
	for _, row := range resp.Rows {
		for i, v := range row {
			if i < len(resp.ColumnTypes) && resp.ColumnTypes[i] == "int64" {
				if iv, ok := types.AsFloat(v); ok {
					row[i] = int64(iv)
					continue
				}
			}
			row[i] = normalizeJSON(v)
		}
	}
}
