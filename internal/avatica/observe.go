package avatica

// The server's observability surface: Prometheus exposition at /metrics,
// the recent/slow trace rings as JSON at /debug/queries, a load-balancer
// probe at /healthz, optional net/http/pprof, and per-route request
// latency/status metrics around every handler.

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"time"

	"calcite/internal/feedback"
	"calcite/internal/memory"
	"calcite/internal/obs"
)

// registerServerMetrics exposes the statement table, the admission
// controller and process health through function-backed instruments on the
// framework's registry.
func (s *Server) registerServerMetrics() {
	r := s.fw.Obs().Registry
	r.GaugeFunc("calcite_statements_live",
		"Prepared statements currently held by the server.",
		func() float64 { return float64(s.StatementCount()) })
	r.CounterFunc("calcite_statement_evictions_total",
		"Prepared statements evicted from the statement table, by reason.",
		func() int64 { return s.evictedTTL.Load() }, obs.L("reason", "ttl"))
	r.CounterFunc("calcite_statement_evictions_total",
		"Prepared statements evicted from the statement table, by reason.",
		func() int64 { return s.evictedLRU.Load() }, obs.L("reason", "lru"))
	r.GaugeFunc("calcite_cursor_retained_bytes",
		"Memory charged for server-side cursors of paginated results.",
		func() float64 { return float64(s.cursorBytes.Load()) })

	adm := s.admission()
	r.GaugeFunc("calcite_admission_running",
		"Queries currently holding an execution slot.",
		func() float64 { return float64(adm.Running()) })
	r.GaugeFunc("calcite_admission_queued",
		"Queries waiting for an execution slot.",
		func() float64 { return float64(adm.Queued()) })
	r.GaugeFunc("calcite_admission_limit",
		"Configured concurrent-execution bound.",
		func() float64 { return float64(adm.max) })
	r.CounterFunc("calcite_admission_admitted_total",
		"Queries granted an execution slot.",
		func() int64 { return adm.admitted.Load() })
	r.CounterFunc("calcite_admission_rejected_total",
		"Queries rejected by admission control, by reason.",
		func() int64 { return adm.rejectedFull.Load() }, obs.L("reason", "queue_full"))
	r.CounterFunc("calcite_admission_rejected_total",
		"Queries rejected by admission control, by reason.",
		func() int64 { return adm.rejectedTimeout.Load() }, obs.L("reason", "timeout"))
	r.CounterFunc("calcite_admission_rejected_total",
		"Queries rejected by admission control, by reason.",
		func() int64 { return adm.rejectedCanceled.Load() }, obs.L("reason", "canceled"))
	r.CounterFunc("calcite_admission_wait_ns_total",
		"Cumulative nanoseconds queries spent queued for admission.",
		func() int64 { return adm.waitNs.Load() })

	r.GaugeFunc("calcite_goroutines",
		"Goroutines in the serving process (leak canary for soak tests).",
		func() float64 { return float64(runtime.NumGoroutine()) })
}

// registerTenantMetrics exposes one tenant's child pool (called under
// tenantMu when the pool is first carved).
func (s *Server) registerTenantMetrics(tenant string, p *memory.Pool) {
	r := s.fw.Obs().Registry
	r.GaugeFunc("calcite_tenant_pool_used_bytes",
		"Bytes currently reserved by this tenant's queries.",
		func() float64 { return float64(p.Used()) }, obs.L("tenant", tenant))
	r.GaugeFunc("calcite_tenant_pool_limit_bytes",
		"This tenant's memory budget (0 = bounded by the global pool only).",
		func() float64 { return float64(p.Limit()) }, obs.L("tenant", tenant))
	r.CounterFunc("calcite_tenant_denials_total",
		"Grant requests refused by this tenant's budget.",
		func() int64 { return p.Counters().Denials }, obs.L("tenant", tenant))
	r.CounterFunc("calcite_tenant_spill_events_total",
		"Spill decisions by this tenant's queries.",
		func() int64 { return p.Counters().SpillEvents }, obs.L("tenant", tenant))
}

// statusRecorder captures the response status for the request metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps the mux with per-route latency histograms and status
// counters. The route label is the request path as matched by the fixed
// endpoint set — unknown paths collapse into "other" so a client cannot
// inflate label cardinality.
func (s *Server) instrument(next http.Handler) http.Handler {
	reg := s.fw.Obs().Registry
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := r.URL.Path
		switch route {
		case "/prepare", "/execute", "/fetch", "/close", "/metrics",
			"/debug/queries", "/debug/plans", "/healthz":
		default:
			route = "other"
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start).Seconds()
		reg.Histogram("calcite_http_request_seconds",
			"HTTP request latency by route.", nil, obs.L("route", route)).Observe(elapsed)
		reg.Counter("calcite_http_requests_total",
			"HTTP requests by route and status code.",
			obs.L("route", route), obs.L("code", strconv.Itoa(rec.status))).Inc()
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.fw.Obs().Registry.WritePrometheus(w)
}

// DebugQueriesResponse is the JSON shape of /debug/queries.
type DebugQueriesResponse struct {
	SlowThresholdMs float64              `json:"slow_threshold_ms"`
	Recent          []*obs.TraceSnapshot `json:"recent"`
	Slow            []*obs.TraceSnapshot `json:"slow"`
}

func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	eng := s.fw.Obs()
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "invalid limit", http.StatusBadRequest)
			return
		}
		limit = n
	}
	resp := DebugQueriesResponse{
		SlowThresholdMs: float64(eng.SlowThreshold()) / 1e6,
		Recent:          eng.Recent.Snapshot(),
		Slow:            eng.Slow.Snapshot(),
	}
	if limit > 0 {
		if len(resp.Recent) > limit {
			resp.Recent = resp.Recent[:limit]
		}
		if len(resp.Slow) > limit {
			resp.Slow = resp.Slow[:limit]
		}
	}
	writeJSON(w, resp)
}

// DebugPlansResponse is the JSON shape of /debug/plans: per-fingerprint
// plan-quality reports (est/actual/q-error per operator), worst estimation
// error first.
type DebugPlansResponse struct {
	Plans []feedback.PlanReport `json:"plans"`
}

func (s *Server) handleDebugPlans(w http.ResponseWriter, r *http.Request) {
	plans := s.fw.Feedback().Report()
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			http.Error(w, "invalid limit", http.StatusBadRequest)
			return
		}
		if n > 0 && len(plans) > n {
			plans = plans[:n]
		}
	}
	writeJSON(w, DebugPlansResponse{Plans: plans})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.Write([]byte("ok\n"))
}

// mountPprof wires the net/http/pprof handlers onto the server's own mux
// (the package's init only registers on http.DefaultServeMux).
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
