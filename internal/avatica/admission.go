package avatica

// Admission control for the serving tier: a bounded semaphore sized from the
// framework's worker pool, fronted by a FIFO wait queue with a per-request
// timeout. A saturated server answers 503 SERVER_BUSY immediately (queue
// full) or after the wait deadline (slot never freed) instead of piling up
// goroutines until memory runs out — clients get a clean, retryable signal
// and in-flight queries keep their share of the workers.

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// ErrServerBusy is the sentinel for admission rejections; the wire protocol
// carries it as HTTP 503 with code SERVER_BUSY.
var ErrServerBusy = errors.New("server busy")

// Admission defaults; all overridable on Server before Start.
const (
	// DefaultQueueTimeout bounds how long a request may wait for a slot.
	DefaultQueueTimeout = 5 * time.Second
	// DefaultQueueFactor sizes the wait queue as a multiple of the
	// concurrency limit.
	DefaultQueueFactor = 4
)

// admission is the FIFO bounded semaphore.
type admission struct {
	max      int
	maxQueue int
	timeout  time.Duration

	mu      sync.Mutex
	running int
	queue   *list.List // of chan struct{}; closed to hand a slot to the waiter

	admitted         atomic.Int64
	rejectedFull     atomic.Int64
	rejectedTimeout  atomic.Int64
	rejectedCanceled atomic.Int64
	waitNs           atomic.Int64 // cumulative queue wait, for the histogram-less counters
}

func newAdmission(max, maxQueue int, timeout time.Duration) *admission {
	if max < 1 {
		max = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	if timeout <= 0 {
		timeout = DefaultQueueTimeout
	}
	return &admission{max: max, maxQueue: maxQueue, timeout: timeout, queue: list.New()}
}

// Queued reports the current wait-queue depth.
func (a *admission) Queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queue.Len()
}

// Running reports the slots currently held.
func (a *admission) Running() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.running
}

// acquire claims an execution slot, waiting FIFO up to the configured
// timeout. It returns ErrServerBusy (wrapped with the reason) when the queue
// is full or the wait deadline passes, and the context error if the client
// goes away first.
func (a *admission) acquire(ctx context.Context) error {
	a.mu.Lock()
	if a.running < a.max {
		a.running++
		a.mu.Unlock()
		a.admitted.Add(1)
		return nil
	}
	if a.queue.Len() >= a.maxQueue {
		a.mu.Unlock()
		a.rejectedFull.Add(1)
		return fmt.Errorf("%w: %d queries running, wait queue full (%d deep)",
			ErrServerBusy, a.max, a.maxQueue)
	}
	ch := make(chan struct{})
	el := a.queue.PushBack(ch)
	a.mu.Unlock()

	start := time.Now()
	timer := time.NewTimer(a.timeout)
	defer timer.Stop()
	select {
	case <-ch:
		// A releaser handed us its slot (running was never decremented).
		a.waitNs.Add(int64(time.Since(start)))
		a.admitted.Add(1)
		return nil
	case <-timer.C:
		if a.cancelWait(el, ch) {
			a.admitted.Add(1)
			return nil
		}
		a.rejectedTimeout.Add(1)
		return fmt.Errorf("%w: no execution slot within %s (%d running, %d queued)",
			ErrServerBusy, a.timeout, a.max, a.Queued())
	case <-ctx.Done():
		if a.cancelWait(el, ch) {
			a.admitted.Add(1)
			return nil
		}
		a.rejectedCanceled.Add(1)
		return ctx.Err()
	}
}

// cancelWait removes a waiter from the queue; it reports true when a releaser
// signaled the waiter concurrently — the slot is ours after all and the
// caller must proceed (and eventually release).
func (a *admission) cancelWait(el *list.Element, ch chan struct{}) bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	select {
	case <-ch:
		return true
	default:
	}
	a.queue.Remove(el)
	return false
}

// release returns a slot: the longest-waiting queued request inherits it
// directly (FIFO, no thundering herd); with no waiters the slot opens up.
func (a *admission) release() {
	a.mu.Lock()
	if el := a.queue.Front(); el != nil {
		a.queue.Remove(el)
		close(el.Value.(chan struct{}))
		a.mu.Unlock()
		return
	}
	a.running--
	if a.running < 0 {
		a.running = 0
	}
	a.mu.Unlock()
}
