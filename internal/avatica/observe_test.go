package avatica_test

// Endpoint tests for the server's observability surface: /metrics,
// /debug/queries, /healthz, the pprof gate, and graceful shutdown.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"calcite"
	"calcite/internal/avatica"
	"calcite/internal/obs"
)

func startObsServer(t *testing.T, pprofOn bool) (string, *avatica.Server) {
	t.Helper()
	conn := calcite.Open()
	rows := make([][]any, 500)
	for i := range rows {
		rows[i] = []any{int64(i), float64(i%100) / 3}
	}
	conn.AddTable("nums", calcite.Columns{
		{Name: "id", Type: calcite.BigIntType},
		{Name: "val", Type: calcite.DoubleType},
	}, rows)
	conn.SetSlowQueryThreshold(time.Nanosecond, nil)
	srv := avatica.NewServer(conn.Framework)
	srv.EnablePprof = pprofOn
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Stop() })
	return addr, srv
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	addr, _ := startObsServer(t, false)
	client := avatica.NewClient(addr)
	if _, err := client.Query("SELECT COUNT(*) FROM nums WHERE val > 1"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	out := string(body)
	for _, want := range []string{
		`calcite_queries_finished_total{status="ok"} 1`,
		`calcite_http_requests_total{code="200",route="/execute"} 1`,
		"calcite_http_request_seconds_bucket",
		"calcite_statements_live 0",
		"calcite_memory_pool_used_bytes",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q\n%s", want, out)
		}
	}
}

func TestDebugQueriesEndpoint(t *testing.T) {
	addr, _ := startObsServer(t, false)
	client := avatica.NewClient(addr)
	for _, sql := range []string{
		"SELECT id FROM nums WHERE id < 3",
		"SELECT val FROM nums ORDER BY val",
	} {
		if _, err := client.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	code, body := get(t, "http://"+addr+"/debug/queries")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var resp avatica.DebugQueriesResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatalf("bad JSON: %v", err)
	}
	if len(resp.Recent) != 2 || len(resp.Slow) != 2 {
		t.Fatalf("recent=%d slow=%d, want 2/2", len(resp.Recent), len(resp.Slow))
	}
	// Newest first, span tree present with the scanned row count.
	newest := resp.Recent[0]
	if !strings.Contains(newest.SQL, "ORDER BY") || newest.Spans == nil {
		t.Fatalf("newest trace wrong: %+v", newest)
	}
	if scan := findScan(newest.Spans); scan == nil || scan.Rows != 500 {
		t.Fatalf("scan span missing or wrong rows: %s", obs.RenderSpans(newest.Spans))
	}
	if resp.SlowThresholdMs <= 0 {
		t.Fatalf("slow threshold not reported: %v", resp.SlowThresholdMs)
	}

	// limit caps both lists; a bad limit is a 400.
	code, body = get(t, "http://"+addr+"/debug/queries?limit=1")
	if code != http.StatusOK {
		t.Fatalf("limit status = %d", code)
	}
	resp = avatica.DebugQueriesResponse{}
	json.Unmarshal([]byte(body), &resp)
	if len(resp.Recent) != 1 || len(resp.Slow) != 1 {
		t.Fatalf("limited recent=%d slow=%d, want 1/1", len(resp.Recent), len(resp.Slow))
	}
	if code, _ = get(t, "http://"+addr+"/debug/queries?limit=potato"); code != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d, want 400", code)
	}
}

func findScan(s *obs.SpanStats) *obs.SpanStats {
	if s == nil {
		return nil
	}
	if strings.Contains(s.Name, "Scan") {
		return s
	}
	for _, c := range s.Children {
		if m := findScan(c); m != nil {
			return m
		}
	}
	return nil
}

func TestHealthz(t *testing.T) {
	addr, _ := startObsServer(t, false)
	code, body := get(t, "http://"+addr+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthz = %d %q", code, body)
	}
}

func TestPprofGated(t *testing.T) {
	addr, _ := startObsServer(t, false)
	if code, _ := get(t, "http://"+addr+"/debug/pprof/"); code == http.StatusOK {
		t.Fatal("pprof reachable without -pprof")
	}
	addr2, _ := startObsServer(t, true)
	code, body := get(t, "http://"+addr2+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "profile") {
		t.Fatalf("pprof index = %d", code)
	}
}

// TestGracefulShutdown: Shutdown drains and closes the listener; subsequent
// requests are refused.
func TestGracefulShutdown(t *testing.T) {
	conn := calcite.Open()
	conn.AddTable("t", calcite.Columns{{Name: "x", Type: calcite.BigIntType}},
		[][]any{{int64(1)}})
	srv := avatica.NewServer(conn.Framework)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, "http://"+addr+"/healthz"); code != http.StatusOK {
		t.Fatal("server not serving before shutdown")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if _, err := http.Get("http://" + addr + "/healthz"); err == nil {
		t.Fatal("request succeeded after shutdown")
	}
}
