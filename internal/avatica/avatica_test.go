package avatica_test

import (
	"testing"

	"calcite"
	"calcite/internal/avatica"
	"calcite/internal/types"
)

func startServer(t *testing.T) (*avatica.Client, func()) {
	t.Helper()
	conn := calcite.Open()
	conn.AddTable("emps", calcite.Columns{
		{Name: "empid", Type: calcite.BigIntType},
		{Name: "name", Type: calcite.VarcharType},
		{Name: "sal", Type: calcite.DoubleType},
	}, [][]any{
		{int64(1), "a", 100.0},
		{int64(2), "b", 200.0},
		{int64(3), "c", 300.0},
	})
	srv := avatica.NewServer(conn.Framework)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return avatica.NewClient(addr), func() { srv.Stop() }
}

func TestQueryOverHTTP(t *testing.T) {
	client, stop := startServer(t)
	defer stop()
	resp, err := client.Query("SELECT name, sal FROM emps WHERE sal > 150 ORDER BY sal")
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 2 || resp.Rows[0][0] != "b" {
		t.Fatalf("rows: %v", resp.Rows)
	}
	if len(resp.Columns) != 2 || resp.Columns[0] != "name" {
		t.Fatalf("columns: %v", resp.Columns)
	}
}

func TestPreparedStatements(t *testing.T) {
	client, stop := startServer(t)
	defer stop()
	id, err := client.Prepare("SELECT empid FROM emps WHERE sal > ?")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Execute(id, 150.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Rows) != 2 {
		t.Fatalf("rows: %v", resp.Rows)
	}
	// int64 columns survive the JSON wire format.
	if v, ok := resp.Rows[0][0].(int64); !ok || v != 2 {
		t.Fatalf("empid decoded as %T %v", resp.Rows[0][0], resp.Rows[0][0])
	}
	if err := client.Close(id); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Execute(id); err == nil {
		t.Error("closed statement should error")
	}
}

func TestServerErrors(t *testing.T) {
	client, stop := startServer(t)
	defer stop()
	if _, err := client.Query("SELECT nosuch FROM emps"); err == nil {
		t.Error("expected validation error over the wire")
	}
	if _, err := client.Query("NOT SQL AT ALL"); err == nil {
		t.Error("expected parse error over the wire")
	}
}

func TestDDLOverWire(t *testing.T) {
	client, stop := startServer(t)
	defer stop()
	if _, err := client.Query("CREATE TABLE t2 (x BIGINT)"); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Query("INSERT INTO t2 VALUES (41), (42)"); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Query("SELECT SUM(x) FROM t2")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := types.AsInt(resp.Rows[0][0]); v != 83 {
		t.Fatalf("sum: %v", resp.Rows[0][0])
	}
}
