package avatica

// Serving-tier tests (internal: they drive the server clock, inspect pools
// and pre-claim admission slots): pagination frames, the eviction-releases-
// cursor regression, SERVER_BUSY wiring and per-tenant budgets.

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"calcite/internal/core"
	"calcite/internal/schema"
	"calcite/internal/types"
)

// servingFramework builds a framework with a small "t" table of n rows.
func servingFramework(n int) *core.Framework {
	fw := core.New()
	rows := make([][]any, n)
	for i := range rows {
		rows[i] = []any{int64(i), fmt.Sprintf("row-%04d", i)}
	}
	fw.Catalog.AddTable(schema.NewMemTable("t",
		types.Row(
			types.Field{Name: "id", Type: types.BigInt.WithNullable(true)},
			types.Field{Name: "name", Type: types.Varchar.WithNullable(true)},
		), rows))
	return fw
}

// post drives one handler with a JSON body and returns the freshly decoded
// response (a new struct per call: JSON omits empty fields, so decoding into
// a reused struct would leak stale values between calls).
func post(t *testing.T, h http.HandlerFunc, path, body string, header ...string) (*ExecuteResponse, int) {
	t.Helper()
	w := httptest.NewRecorder()
	r := httptest.NewRequest("POST", path, strings.NewReader(body))
	for i := 0; i+1 < len(header); i += 2 {
		r.Header.Set(header[i], header[i+1])
	}
	h(w, r)
	var resp ExecuteResponse
	decode(t, w.Body.Bytes(), &resp)
	return &resp, w.Result().StatusCode
}

func TestPaginationFrames(t *testing.T) {
	fw := servingFramework(10)
	srv := NewServer(fw)

	first, _ := post(t, srv.handleExecute, "/execute",
		`{"sql":"SELECT id, name FROM t ORDER BY id","fetchSize":3}`)
	if first.Error != "" {
		t.Fatal(first.Error)
	}
	if len(first.Rows) != 3 || !first.More || first.StatementID == 0 || first.Offset != 0 {
		t.Fatalf("first frame wrong: rows=%d more=%v id=%d offset=%d",
			len(first.Rows), first.More, first.StatementID, first.Offset)
	}
	if srv.CursorBytes() == 0 {
		t.Fatal("retained cursor should be charged")
	}
	if fw.MemoryPool().Used() == 0 {
		t.Fatal("cursor charge should land in the memory pool")
	}

	// Drain the cursor in frames of 3: offsets 3, 6, 9; 10 rows total.
	got := len(first.Rows)
	wantOffsets := []int{3, 6, 9}
	for i, wantOff := range wantOffsets {
		frame, _ := post(t, srv.handleFetch, "/fetch",
			fmt.Sprintf(`{"statementId":%d,"fetchSize":3}`, first.StatementID))
		if frame.Error != "" {
			t.Fatalf("fetch %d: %s", i, frame.Error)
		}
		if frame.Offset != wantOff {
			t.Fatalf("fetch %d offset = %d, want %d", i, frame.Offset, wantOff)
		}
		got += len(frame.Rows)
		last := i == len(wantOffsets)-1
		if frame.More == last {
			t.Fatalf("fetch %d more = %v", i, frame.More)
		}
	}
	if got != 10 {
		t.Fatalf("accumulated %d rows, want 10", got)
	}
	// Drained: the charge is gone, the statement survives.
	if srv.CursorBytes() != 0 || fw.MemoryPool().Used() != 0 {
		t.Fatalf("drained cursor still charged: cursor=%d pool=%d",
			srv.CursorBytes(), fw.MemoryPool().Used())
	}
	again, _ := post(t, srv.handleFetch, "/fetch",
		fmt.Sprintf(`{"statementId":%d}`, first.StatementID))
	if again.Error == "" || !strings.Contains(again.Error, "no open cursor") {
		t.Fatalf("fetch past the end should fail, got %q", again.Error)
	}
}

// TestEvictionReleasesCursorMemory is the regression for the serving tier's
// nastiest leak: statement-table eviction (TTL and LRU both) must release a
// retained cursor through the same cleanup path as an explicit close.
func TestEvictionReleasesCursorMemory(t *testing.T) {
	fw := servingFramework(50)
	srv := NewServer(fw)
	srv.StatementTTL = 10 * time.Minute
	clock := time.Date(2026, 8, 8, 9, 0, 0, 0, time.UTC)
	srv.now = func() time.Time { return clock }

	resp, _ := post(t, srv.handleExecute, "/execute",
		`{"sql":"SELECT id, name FROM t ORDER BY id","fetchSize":5}`)
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
	if srv.CursorBytes() == 0 || fw.MemoryPool().Used() == 0 {
		t.Fatal("cursor should be charged before eviction")
	}

	// TTL eviction: 11 idle minutes later a prepare sweeps the statement.
	clock = clock.Add(11 * time.Minute)
	prepareReq(t, srv, "SELECT 1")
	if got := srv.StatementCount(); got != 1 {
		t.Fatalf("statement count = %d, want 1 (cursor statement TTL-evicted)", got)
	}
	if srv.CursorBytes() != 0 || fw.MemoryPool().Used() != 0 {
		t.Fatalf("TTL eviction leaked cursor memory: cursor=%d pool=%d",
			srv.CursorBytes(), fw.MemoryPool().Used())
	}

	// LRU eviction: cap the table at 2 and push the cursor statement out.
	srv.MaxStatements = 2
	resp, _ = post(t, srv.handleExecute, "/execute",
		`{"sql":"SELECT id, name FROM t ORDER BY id","fetchSize":5}`)
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
	if srv.CursorBytes() == 0 {
		t.Fatal("second cursor should be charged")
	}
	for i := 0; i < 3; i++ {
		clock = clock.Add(time.Second)
		prepareReq(t, srv, fmt.Sprintf("SELECT %d", i))
	}
	if srv.CursorBytes() != 0 || fw.MemoryPool().Used() != 0 {
		t.Fatalf("LRU eviction leaked cursor memory: cursor=%d pool=%d",
			srv.CursorBytes(), fw.MemoryPool().Used())
	}

	// Shutdown releases whatever is still held.
	resp, _ = post(t, srv.handleExecute, "/execute",
		`{"sql":"SELECT id, name FROM t ORDER BY id","fetchSize":5}`)
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if srv.StatementCount() != 0 || srv.CursorBytes() != 0 || fw.MemoryPool().Used() != 0 {
		t.Fatalf("shutdown leaked: stmts=%d cursor=%d pool=%d",
			srv.StatementCount(), srv.CursorBytes(), fw.MemoryPool().Used())
	}
}

func TestExecuteServerBusy(t *testing.T) {
	fw := servingFramework(5)
	srv := NewServer(fw)
	srv.MaxConcurrent = 1
	srv.MaxQueue = -1 // no queue: saturation answers immediately

	// Claim the only slot, as a long query would.
	if err := srv.admission().acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, status := post(t, srv.handleExecute, "/execute", `{"sql":"SELECT id FROM t"}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", status)
	}
	if resp.Code != CodeServerBusy || resp.Error == "" {
		t.Fatalf("busy response = %+v, want code SERVER_BUSY", resp)
	}
	srv.admission().release()

	// With the slot free the same request succeeds.
	resp, status = post(t, srv.handleExecute, "/execute", `{"sql":"SELECT id FROM t"}`)
	if status != http.StatusOK || resp.Error != "" {
		t.Fatalf("after release: status=%d err=%q", status, resp.Error)
	}
	if len(resp.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(resp.Rows))
	}
}

func TestTenantBudgets(t *testing.T) {
	fw := servingFramework(4000)
	fw.SetMemoryLimit(64 << 20)
	fw.DisableSpill = true // budget overruns fail loudly instead of spilling
	srv := NewServer(fw)
	srv.TenantMemoryLimit = 16 << 10 // 16 KiB: far below the sort's need

	const sortAll = `{"sql":"SELECT id, name FROM t ORDER BY name"}`

	// A tenant is confined to its carved budget: the big sort cannot fit.
	resp, _ := post(t, srv.handleExecute, "/execute", sortAll, TenantHeader, "acme")
	if resp.Error == "" || !strings.Contains(resp.Error, "memory") {
		t.Fatalf("tenant-budgeted sort should exceed 16KiB, got err=%q rows=%d",
			resp.Error, len(resp.Rows))
	}
	// The failed grant rolled back: neither the tenant pool nor the global
	// pool retains a charge.
	srv.tenantMu.Lock()
	acme := srv.tenants["acme"]
	srv.tenantMu.Unlock()
	if acme == nil {
		t.Fatal("tenant pool was never carved")
	}
	if acme.Used() != 0 || fw.MemoryPool().Used() != 0 {
		t.Fatalf("failed query left charges: tenant=%d global=%d",
			acme.Used(), fw.MemoryPool().Used())
	}
	if acme.Counters().Denials == 0 {
		t.Fatal("tenant budget denial not counted")
	}

	// The same query without a tenant header draws on the global pool and
	// succeeds.
	resp, _ = post(t, srv.handleExecute, "/execute", sortAll)
	if resp.Error != "" {
		t.Fatalf("untenanted sort: %s", resp.Error)
	}
	if len(resp.Rows) != 4000 {
		t.Fatalf("rows = %d, want 4000", len(resp.Rows))
	}

	// A small query fits the tenant budget; its release flows back up.
	resp, _ = post(t, srv.handleExecute, "/execute",
		`{"sql":"SELECT id FROM t WHERE id < 5 ORDER BY id"}`, TenantHeader, "acme")
	if resp.Error != "" {
		t.Fatalf("small tenant query: %s", resp.Error)
	}
	if len(resp.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(resp.Rows))
	}
	if acme.Used() != 0 || fw.MemoryPool().Used() != 0 {
		t.Fatalf("tenant query leaked: tenant=%d global=%d", acme.Used(), fw.MemoryPool().Used())
	}

	// Tenants are isolated pools: a second tenant gets its own budget.
	resp, _ = post(t, srv.handleExecute, "/execute",
		`{"sql":"SELECT COUNT(*) FROM t"}`, TenantHeader, "globex")
	if resp.Error != "" {
		t.Fatalf("second tenant: %s", resp.Error)
	}
	srv.tenantMu.Lock()
	nTenants := len(srv.tenants)
	srv.tenantMu.Unlock()
	if nTenants != 2 {
		t.Fatalf("tenant pools = %d, want 2", nTenants)
	}
}

// TestPaginationRespectsMaxRows checks the two limits compose: MaxRows
// truncates first, FetchSize paginates the truncated result.
func TestPaginationRespectsMaxRows(t *testing.T) {
	fw := servingFramework(20)
	srv := NewServer(fw)
	resp, _ := post(t, srv.handleExecute, "/execute",
		`{"sql":"SELECT id FROM t ORDER BY id","maxRows":7,"fetchSize":4}`)
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
	if len(resp.Rows) != 4 || !resp.More || !resp.Truncated {
		t.Fatalf("first frame: rows=%d more=%v truncated=%v", len(resp.Rows), resp.More, resp.Truncated)
	}
	frame, _ := post(t, srv.handleFetch, "/fetch",
		fmt.Sprintf(`{"statementId":%d,"fetchSize":4}`, resp.StatementID))
	if frame.Error != "" || len(frame.Rows) != 3 || frame.More {
		t.Fatalf("second frame: err=%q rows=%d more=%v", frame.Error, len(frame.Rows), frame.More)
	}
}

// TestColumnTypesSkipLeadingNulls pins the wire-typing fix: a NULL in the
// first row must not untype the column for every later row.
func TestColumnTypesSkipLeadingNulls(t *testing.T) {
	fw := core.New()
	fw.Catalog.AddTable(schema.NewMemTable("n",
		types.Row(
			types.Field{Name: "k", Type: types.BigInt.WithNullable(true)},
			types.Field{Name: "v", Type: types.BigInt.WithNullable(true)},
		),
		[][]any{{int64(1), nil}, {int64(2), int64(7)}}))
	srv := NewServer(fw)
	resp, _ := post(t, srv.handleExecute, "/execute", `{"sql":"SELECT v FROM n ORDER BY k"}`)
	if resp.Error != "" {
		t.Fatal(resp.Error)
	}
	if resp.ColumnTypes[0] != "int64" {
		t.Fatalf("column type = %q, want int64 (derived past the leading NULL)", resp.ColumnTypes[0])
	}
}
