package avatica_test

// Concurrency soak for the serving tier (run under -race in CI): 32
// goroutines hammer a live server with mixed prepare/execute/fetch/close
// traffic, then the test checks nothing survives that shouldn't — the
// statement table is empty, no cursor memory is retained, and the goroutine
// count returns to its pre-server baseline after Shutdown.

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"

	"calcite"
	"calcite/internal/avatica"
)

func TestServingSoak(t *testing.T) {
	baseline := runtime.NumGoroutine()

	conn := calcite.Open()
	// Pin the budget: 32 workers each retain a 500-row cursor mid-iteration,
	// which the CI low-memory matrix's tiny CALCITE_MEM_LIMIT default would
	// (correctly) refuse. Budget-denial behavior has its own tests; this one
	// is about leaks under churn.
	conn.SetMemoryLimit(64 << 20)
	rows := make([][]any, 500)
	for i := range rows {
		rows[i] = []any{int64(i), int64(i % 13), fmt.Sprintf("n-%03d", i)}
	}
	conn.AddTable("soak", calcite.Columns{
		{Name: "id", Type: calcite.BigIntType},
		{Name: "grp", Type: calcite.BigIntType},
		{Name: "name", Type: calcite.VarcharType},
	}, rows)
	srv := avatica.NewServer(conn.Framework)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers    = 32
		iterations = 15
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := avatica.NewClient(addr)
			client.Tenant = fmt.Sprintf("tenant-%d", w%4)
			defer client.HTTP.CloseIdleConnections()
			fail := func(op string, err error) {
				errs <- fmt.Errorf("worker %d %s: %w", w, op, err)
			}
			for i := 0; i < iterations; i++ {
				switch i % 3 {
				case 0: // prepare → execute with params → close
					id, err := client.Prepare("SELECT id, name FROM soak WHERE grp = ? ORDER BY id")
					if err != nil {
						fail("prepare", err)
						return
					}
					resp, err := client.Execute(id, int64((w+i)%13))
					if err != nil {
						fail("execute", err)
						return
					}
					if len(resp.Rows) == 0 {
						fail("execute", fmt.Errorf("no rows"))
						return
					}
					if err := client.Close(id); err != nil {
						fail("close", err)
						return
					}
				case 1: // paginated direct SQL → drain → close implicit stmt
					resp, err := client.Do(avatica.ExecuteRequest{
						SQL:       "SELECT id, grp, name FROM soak ORDER BY name",
						FetchSize: 64,
					})
					if err != nil {
						fail("paginated execute", err)
						return
					}
					n := len(resp.Rows)
					id := resp.StatementID
					for resp.More {
						if resp, err = client.Fetch(id, 64); err != nil {
							fail("fetch", err)
							return
						}
						n += len(resp.Rows)
					}
					if n != 500 {
						fail("fetch", fmt.Errorf("reassembled %d rows, want 500", n))
						return
					}
					if err := client.Close(id); err != nil {
						fail("close cursor stmt", err)
						return
					}
				case 2: // plain aggregation (plan-cache hit stream)
					resp, err := client.Query("SELECT grp, COUNT(*) FROM soak GROUP BY grp")
					if err != nil {
						fail("query", err)
						return
					}
					if len(resp.Rows) != 13 {
						fail("query", fmt.Errorf("groups = %d, want 13", len(resp.Rows)))
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Everything explicit was closed: the live-statement gauge is back to 0
	// and no cursor memory is retained.
	if got := srv.StatementCount(); got != 0 {
		t.Fatalf("statements live after soak: %d, want 0", got)
	}
	if got := srv.CursorBytes(); got != 0 {
		t.Fatalf("cursor bytes after soak: %d, want 0", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// Goroutine-leak canary: after shutdown the count should settle back to
	// the baseline (plus slack for runtime/netpoll helpers that linger).
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC() // nudges finalizers and idle-connection teardown
		now := runtime.NumGoroutine()
		if now <= baseline+3 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked: baseline %d, now %d\n%s", baseline, now, buf[:n])
		}
		time.Sleep(50 * time.Millisecond)
	}
}
