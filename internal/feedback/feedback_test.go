package feedback

import (
	"math"
	"testing"

	"calcite/internal/exec"
	"calcite/internal/obs"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

func testTable(name string, rows int) *schema.MemTable {
	rt := types.Row(
		types.Field{Name: "id", Type: types.BigInt},
		types.Field{Name: "v", Type: types.BigInt},
	)
	data := make([][]any, rows)
	for i := range data {
		data[i] = []any{int64(i), int64(i % 7)}
	}
	return schema.NewMemTable(name, rt, data)
}

// TestNodeKeyLogicalPhysicalStable pins the bridge between the optimizer's
// conventions: a logical table scan explored by the join-order enumeration
// must hash to the same correction key as the enumerable scan that executed,
// and likewise for a logical join vs the hash join built from it.
func TestNodeKeyLogicalPhysicalStable(t *testing.T) {
	tb := testTable("t", 10)
	logical := rel.NewTableScan(trait.Logical, tb, []string{"t"})
	physical := exec.NewScan(tb, []string{"t"})
	if NodeKey(logical) != NodeKey(physical) {
		t.Fatalf("scan keys differ: logical=%s physical=%s", NodeKey(logical), NodeKey(physical))
	}

	other := testTable("u", 10)
	cond := rex.NewCall(rex.OpEquals,
		rex.NewInputRef(0, types.BigInt), rex.NewInputRef(2, types.BigInt))
	lj := rel.NewJoin(rel.InnerJoin,
		rel.NewTableScan(trait.Logical, tb, []string{"t"}),
		rel.NewTableScan(trait.Logical, other, []string{"u"}), cond)
	pj := exec.NewHashJoin(rel.InnerJoin,
		exec.NewScan(tb, []string{"t"}), exec.NewScan(other, []string{"u"}), cond)
	if NodeKey(lj) != NodeKey(pj) {
		t.Fatalf("join keys differ: logical=%s physical=%s", NodeKey(lj), NodeKey(pj))
	}

	// Different tables must not collide.
	if NodeKey(logical) == NodeKey(rel.NewTableScan(trait.Logical, other, []string{"u"})) {
		t.Fatal("distinct scans hashed alike")
	}
}

// TestEstimatePlanPaths checks the stable path-id assignment: root "0",
// children "0.<i>".
func TestEstimatePlanPaths(t *testing.T) {
	tb, ub := testTable("t", 10), testTable("u", 20)
	cond := rex.NewCall(rex.OpEquals,
		rex.NewInputRef(0, types.BigInt), rex.NewInputRef(2, types.BigInt))
	j := exec.NewHashJoin(rel.InnerJoin,
		exec.NewScan(tb, []string{"t"}), exec.NewScan(ub, []string{"u"}), cond)
	pe := EstimatePlan("fp", j, func(n rel.Node) float64 {
		if n == j {
			return 200
		}
		return 10
	})
	if len(pe.ByPath) != 3 {
		t.Fatalf("want 3 estimates, got %d", len(pe.ByPath))
	}
	if e := pe.ByPath["0"]; e.Rows != 200 {
		t.Fatalf("root estimate = %+v", e)
	}
	for _, p := range []string{"0.0", "0.1"} {
		if e, ok := pe.ByPath[p]; !ok || e.Rows != 10 {
			t.Fatalf("path %s estimate = %+v ok=%v", p, e, ok)
		}
	}
	rowsByPath := pe.PathRows()
	if rowsByPath["0"] != 200 || rowsByPath["0.0"] != 10 {
		t.Fatalf("PathRows = %v", rowsByPath)
	}
	var nilPE *PlanEstimates
	if nilPE.PathRows() != nil {
		t.Fatal("nil PlanEstimates should flatten to nil")
	}
}

func scanSnapshot(fp string, actual int64, est float64) *obs.TraceSnapshot {
	return &obs.TraceSnapshot{
		Fingerprint: fp,
		SQL:         "SELECT * FROM t",
		Spans:       &obs.SpanStats{Name: "TableScan", Path: "0", Rows: actual, EstRows: est},
	}
}

// TestHarvestCorrectionEWMA drives repeated harvests of one scan and checks
// the exponential smoothing and the MaxRatio bound.
func TestHarvestCorrectionEWMA(t *testing.T) {
	tb := testTable("t", 10)
	scan := exec.NewScan(tb, []string{"t"})
	pe := EstimatePlan("fp", scan, func(rel.Node) float64 { return 100 })
	s := NewStore(Options{})

	if _, ok := s.CorrectedRowCount(scan); ok {
		t.Fatal("empty store served a correction")
	}

	// First observation: actual becomes the correction outright.
	if !s.Harvest(scanSnapshot("fp", 1000, 100), pe) {
		t.Fatal("q-error 10 should request a replan")
	}
	got, ok := s.CorrectedRowCount(scan)
	if !ok || got != 1000 {
		t.Fatalf("after first harvest: got %v ok=%v, want 1000", got, ok)
	}

	// Second observation smooths: 0.5*500 + 0.5*1000 = 750.
	s.Harvest(scanSnapshot("fp", 500, 100), pe)
	got, _ = s.CorrectedRowCount(scan)
	if math.Abs(got-750) > 1e-9 {
		t.Fatalf("EWMA: got %v, want 750", got)
	}

	// A wild observation stays bounded to est*MaxRatio = 100*64 = 6400.
	s.Harvest(scanSnapshot("fp", 1_000_000, 100), pe)
	got, _ = s.CorrectedRowCount(scan)
	if got != 6400 {
		t.Fatalf("MaxRatio bound: got %v, want 6400", got)
	}

	fps, ops := s.Size()
	if fps != 1 || ops != 1 {
		t.Fatalf("Size = (%d, %d), want (1, 1)", fps, ops)
	}
	if s.WorstQError() < 100 {
		t.Fatalf("WorstQError = %v, want >= 100", s.WorstQError())
	}
	if c := s.Counters(); c.Harvests != 3 || c.Samples != 3 {
		t.Fatalf("counters = %+v", c)
	}
}

// TestHarvestSmallErrorNoReplan: a near-perfect estimate must not evict.
func TestHarvestSmallErrorNoReplan(t *testing.T) {
	tb := testTable("t", 10)
	scan := exec.NewScan(tb, []string{"t"})
	pe := EstimatePlan("fp", scan, func(rel.Node) float64 { return 100 })
	s := NewStore(Options{})
	if s.Harvest(scanSnapshot("fp", 120, 100), pe) {
		t.Fatal("q-error 1.2 requested a replan")
	}
}

// TestHarvestSkipsErroredAndUnestimated: failed executions and spans without
// estimates contribute nothing.
func TestHarvestSkipsErroredAndUnestimated(t *testing.T) {
	tb := testTable("t", 10)
	scan := exec.NewScan(tb, []string{"t"})
	pe := EstimatePlan("fp", scan, func(rel.Node) float64 { return 100 })
	s := NewStore(Options{})

	snap := scanSnapshot("fp", 1000, 100)
	snap.Error = "boom"
	if s.Harvest(snap, pe) {
		t.Fatal("errored trace harvested")
	}
	if s.Harvest(nil, pe) || s.Harvest(scanSnapshot("fp", 1000, 100), nil) {
		t.Fatal("nil inputs harvested")
	}
	// A span whose path is absent from the estimate table is skipped.
	stray := &obs.TraceSnapshot{Fingerprint: "fp", Spans: &obs.SpanStats{Name: "X", Path: "9.9", Rows: 5}}
	s.Harvest(stray, pe)
	if c := s.Counters(); c.Samples != 0 {
		t.Fatalf("samples = %d, want 0", c.Samples)
	}
}

// TestBuildOvershootAndSwap pins the swap-preference thresholds and the
// pending-replan handoff to the next harvest.
func TestBuildOvershootAndSwap(t *testing.T) {
	s := NewStore(Options{})
	const key = "joinkey"

	// Below the noise floor: ignored.
	s.RecordBuildOvershoot("fp", key, 10, 100)
	if s.PreferSwap(key) {
		t.Fatal("overshoot below OvershootMinRows recorded")
	}
	// Big but within the factor: ignored.
	s.RecordBuildOvershoot("fp", key, 500, 1000)
	if s.PreferSwap(key) {
		t.Fatal("overshoot below OvershootFactor recorded")
	}
	// Past both thresholds: recorded.
	s.RecordBuildOvershoot("fp", key, 100, 1000)
	if !s.PreferSwap(key) || s.SwapCount() != 1 {
		t.Fatal("qualifying overshoot not recorded")
	}
	if c := s.Counters(); c.BuildOvershoots != 1 {
		t.Fatalf("overshoot counter = %d", c.BuildOvershoots)
	}

	// The overshoot marks the fingerprint for replanning even when the next
	// harvest's q-errors are mild.
	tb := testTable("t", 10)
	scan := exec.NewScan(tb, []string{"t"})
	pe := EstimatePlan("fp", scan, func(rel.Node) float64 { return 100 })
	if !s.Harvest(scanSnapshot("fp", 100, 100), pe) {
		t.Fatal("pending overshoot did not request a replan")
	}
	// The flag is consumed.
	if s.Harvest(scanSnapshot("fp", 100, 100), pe) {
		t.Fatal("replan flag not cleared after harvest")
	}
}

// TestReplanCap: a statement whose actual cardinality genuinely varies
// between executions (e.g. parameterized predicates) keeps drifting forever;
// after MaxReplans requests the store stops evicting its plan so the cache
// stays useful, while corrections continue to update.
func TestReplanCap(t *testing.T) {
	tb := testTable("t", 10)
	scan := exec.NewScan(tb, []string{"t"})
	pe := EstimatePlan("fp", scan, func(rel.Node) float64 { return 100 })
	s := NewStore(Options{MaxReplans: 2})

	for i := 0; i < 2; i++ {
		if !s.Harvest(scanSnapshot("fp", 1000, 100), pe) {
			t.Fatalf("replan %d under the cap not requested", i+1)
		}
	}
	if s.Harvest(scanSnapshot("fp", 1000, 100), pe) {
		t.Fatal("replan past MaxReplans requested")
	}
	// Even a pending overshoot no longer evicts past the cap.
	s.RecordBuildOvershoot("fp", "jk", 100, 1000)
	if s.Harvest(scanSnapshot("fp", 1000, 100), pe) {
		t.Fatal("overshoot bypassed the replan cap")
	}
	// Corrections keep flowing regardless.
	if got, ok := s.CorrectedRowCount(scan); !ok || got != 1000 {
		t.Fatalf("correction stopped updating past the cap: %v ok=%v", got, ok)
	}
	// Invalidation resets the budget.
	s.Invalidate()
	s.Harvest(scanSnapshot("fp", 1000, 100), pe)
	if !s.Harvest(scanSnapshot("fp", 1000, 100), pe) {
		t.Fatal("replan budget not reset by Invalidate")
	}
}

// TestInvalidateClears: the DDL/ANALYZE funnel resets every map and the
// worst-q gauge.
func TestInvalidateClears(t *testing.T) {
	tb := testTable("t", 10)
	scan := exec.NewScan(tb, []string{"t"})
	pe := EstimatePlan("fp", scan, func(rel.Node) float64 { return 100 })
	s := NewStore(Options{})
	s.Harvest(scanSnapshot("fp", 1000, 100), pe)
	s.RecordBuildOvershoot("fp", "jk", 100, 1000)

	s.Invalidate()
	if fps, ops := s.Size(); fps != 0 || ops != 0 {
		t.Fatalf("Size after Invalidate = (%d, %d)", fps, ops)
	}
	if _, ok := s.CorrectedRowCount(scan); ok {
		t.Fatal("correction survived Invalidate")
	}
	if s.PreferSwap("jk") {
		t.Fatal("swap preference survived Invalidate")
	}
	if s.WorstQError() != 0 {
		t.Fatalf("WorstQError after Invalidate = %v", s.WorstQError())
	}
	if c := s.Counters(); c.Invalidations != 1 {
		t.Fatalf("invalidations = %d", c.Invalidations)
	}
	// Invalidating an already-empty store is not counted.
	s.Invalidate()
	if c := s.Counters(); c.Invalidations != 1 {
		t.Fatalf("empty invalidation counted: %d", c.Invalidations)
	}
}

// TestReportShape checks /debug/plans payload ordering and content.
func TestReportShape(t *testing.T) {
	tb := testTable("t", 10)
	scan := exec.NewScan(tb, []string{"t"})
	peA := EstimatePlan("fpA", scan, func(rel.Node) float64 { return 100 })
	peB := EstimatePlan("fpB", scan, func(rel.Node) float64 { return 100 })
	s := NewStore(Options{})
	s.Harvest(scanSnapshot("fpA", 200, 100), peA)  // q = 2
	s.Harvest(scanSnapshot("fpB", 5000, 100), peB) // q = 50

	reports := s.Report()
	if len(reports) != 2 {
		t.Fatalf("want 2 reports, got %d", len(reports))
	}
	if reports[0].Fingerprint != "fpB" {
		t.Fatalf("worst-first ordering violated: %s first", reports[0].Fingerprint)
	}
	r := reports[0]
	if r.Executions != 1 || r.MaxQError != 50 || len(r.Ops) != 1 {
		t.Fatalf("report = %+v", r)
	}
	op := r.Ops[0]
	if op.Path != "0" || op.EstRows != 100 || op.ActualRows != 5000 || op.QError != 50 {
		t.Fatalf("op report = %+v", op)
	}
}

// TestObserverSeesEveryQ: the histogram hook fires once per harvested sample.
func TestObserverSeesEveryQ(t *testing.T) {
	tb := testTable("t", 10)
	scan := exec.NewScan(tb, []string{"t"})
	pe := EstimatePlan("fp", scan, func(rel.Node) float64 { return 100 })
	s := NewStore(Options{})
	var got []float64
	s.SetObserver(func(q float64) { got = append(got, q) })
	s.Harvest(scanSnapshot("fp", 200, 100), pe)
	s.Harvest(scanSnapshot("fp", 50, 100), pe)
	if len(got) != 2 || got[0] != 2 || got[1] != 2 {
		t.Fatalf("observed q-errors = %v, want [2 2]", got)
	}
}
