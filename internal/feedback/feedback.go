// Package feedback closes the loop between execution traces and the
// optimizer: every finished query trace carries actual per-operator row
// counts (PR 7), and this package harvests them into a cardinality-feedback
// store keyed by plan fingerprint and stable operator path id. The store
// (1) quantifies estimation error as q-error — max(est/actual, actual/est) —
// for the plan-quality metrics and the /debug/plans report, (2) feeds
// bounded, exponentially-smoothed corrections back into the metadata layer
// as a meta.Provider so repeated executions of the same statement converge
// toward observed cardinalities, and (3) records hash-join build-side
// overshoots so the next planning of the statement can swap build and probe
// sides. Corrections are invalidated alongside the plan cache on ANALYZE,
// DDL and INSERT: fresh statistics supersede stale observations.
//
// Corrections are keyed by the canonical logical digest of the operator
// subtree (NodeKey), not by path: the join-order enumeration explores plan
// shapes that have no runtime path, while a scan or pushed-down filter keeps
// the same digest across every join order — exactly the operators whose
// corrected cardinality steers the enumeration.
package feedback

import (
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"calcite/internal/meta"
	"calcite/internal/obs"
	"calcite/internal/rel"
	"calcite/internal/rex"
)

// Options tune the store's smoothing, bounding and reaction thresholds.
type Options struct {
	// Alpha is the EWMA weight of the newest observation (0 < Alpha <= 1).
	Alpha float64
	// MaxRatio bounds a correction relative to the optimizer's estimate:
	// the corrected row count stays within [est/MaxRatio, est*MaxRatio].
	MaxRatio float64
	// ReplanQError is the per-operator q-error at which a harvest requests
	// re-planning of the statement (its cached plan is evicted). It is set
	// well above the drift-marker threshold: a mild drift rarely changes the
	// plan choice, and parameterized statements legitimately vary between
	// bindings — evicting them would defeat the prepared-plan cache.
	ReplanQError float64
	// MaxReplans bounds re-planning requests per statement fingerprint
	// (until the next invalidation): a statement whose cardinality genuinely
	// varies between executions must not evict its cached plan forever.
	MaxReplans int
	// OvershootFactor is the build-actual/estimate ratio at which a hash
	// join's build overshoot is recorded as a swap preference.
	OvershootFactor float64
	// OvershootMinRows ignores overshoots below this build size (swapping a
	// few hundred rows is noise).
	OvershootMinRows float64
}

// DefaultOptions are the tuning used by the framework.
func DefaultOptions() Options {
	return Options{
		Alpha:            0.5,
		MaxRatio:         64,
		ReplanQError:     4,
		MaxReplans:       5,
		OvershootFactor:  4,
		OvershootMinRows: 256,
	}
}

// OpEstimate is one operator's optimization-time estimate: its stable path
// id in the plan tree, its operator name, its canonical logical digest (the
// correction key), the estimated row count and — for joins whose condition
// resolves to base columns — the plan-shape-independent condition signature
// used to learn join selectivities.
type OpEstimate struct {
	Path    string
	Op      string
	Key     string
	Rows    float64
	JoinSig string
}

// PlanEstimates is the estimate table of one optimized plan, computed once
// at plan time and kept alongside the plan (plan cache entries carry it so
// cache hits stamp spans without re-planning).
type PlanEstimates struct {
	Fingerprint string
	ByPath      map[string]OpEstimate
}

// EstimatePlan walks an optimized physical plan assigning stable path ids
// ("0" for the root, parent+"."+childIndex below) and records each
// operator's estimated row count and correction key.
func EstimatePlan(fingerprint string, root rel.Node, rowCount func(rel.Node) float64) *PlanEstimates {
	pe := &PlanEstimates{Fingerprint: fingerprint, ByPath: map[string]OpEstimate{}}
	var walk func(n rel.Node, path string)
	walk = func(n rel.Node, path string) {
		e := OpEstimate{Path: path, Op: n.Op(), Key: NodeKey(n), Rows: rowCount(n)}
		if j, ok := unwrap(n).(*rel.Join); ok {
			e.JoinSig = conditionSignature(n, j.Condition)
		}
		pe.ByPath[path] = e
		for i, in := range n.Inputs() {
			walk(in, path+"."+strconv.Itoa(i))
		}
	}
	if root != nil {
		walk(root, "0")
	}
	return pe
}

// PathRows flattens the table to path → estimated rows, the shape the span
// builder stamps onto the trace.
func (pe *PlanEstimates) PathRows() map[string]float64 {
	if pe == nil {
		return nil
	}
	out := make(map[string]float64, len(pe.ByPath))
	for p, e := range pe.ByPath {
		out[p] = e.Rows
	}
	return out
}

// NodeKey returns the canonical logical digest hash of the subtree rooted at
// n: each node is unwrapped to its logical prototype (rel.Wrapped) and its
// convention prefix stripped, so a logical join explored by the join-order
// enumeration and the enumerable hash join that executed it hash alike.
func NodeKey(n rel.Node) string {
	h := uint64(14695981039346656037)
	writeNodeKey(n, &h)
	return strconv.FormatUint(h, 16)
}

func writeNodeKey(n rel.Node, h *uint64) {
	u := n
	for {
		w, ok := u.(rel.Wrapped)
		if !ok {
			break
		}
		u = w.Unwrap()
	}
	op := strings.TrimPrefix(u.Op(), "Logical")
	op = strings.TrimPrefix(op, "Enumerable")
	hashString(h, op)
	if a := u.Attrs(); a != "" {
		hashString(h, "{")
		hashString(h, a)
		hashString(h, "}")
	}
	// Children come from the original node: Unwrap preserves inputs, and the
	// wrappers' own input lists are authoritative for the executed tree.
	if ins := n.Inputs(); len(ins) > 0 {
		hashString(h, "(")
		for i, in := range ins {
			if i > 0 {
				hashString(h, ",")
			}
			writeNodeKey(in, h)
		}
		hashString(h, ")")
	}
}

func hashString(h *uint64, s string) {
	for i := 0; i < len(s); i++ {
		*h ^= uint64(s[i])
		*h *= 1099511628211
	}
}

func unwrap(n rel.Node) rel.Node {
	for {
		w, ok := n.(rel.Wrapped)
		if !ok {
			return n
		}
		n = w.Unwrap()
	}
}

// columnOriginName resolves output column col of n to "table#ordinal" of the
// base table it originates from, tracing through filters, sorts, converters,
// physical wrappers, identity projections and join input concatenation — the
// feedback twin of the metadata layer's column-origin walk, producing a name
// instead of a statistics handle.
func columnOriginName(n rel.Node, col int) (string, bool) {
	for {
		n = unwrap(n)
		switch x := n.(type) {
		case *rel.TableScan:
			return strings.Join(x.QualifiedName, ".") + "#" + strconv.Itoa(col), true
		case *rel.Filter, *rel.Sort, *rel.Converter:
			n = x.Inputs()[0]
		case *rel.Project:
			if col >= len(x.Exprs) {
				return "", false
			}
			ref, ok := x.Exprs[col].(*rex.InputRef)
			if !ok {
				return "", false
			}
			n, col = x.Inputs()[0], ref.Index
		case *rel.Join:
			nLeft := rel.FieldCount(x.Left())
			if col < nLeft {
				n = x.Left()
			} else if x.Kind.ProjectsRight() {
				n, col = x.Right(), col-nLeft
			} else {
				return "", false
			}
		default:
			return "", false
		}
	}
}

// conditionSignature canonicalizes a join condition into a plan-shape-
// independent name: every conjunct must be an equality of two column refs
// that both resolve to base-table columns; each is rendered with its sides
// ordered and the conjuncts sorted. "sales.fk2 = d2.k2" keeps the same
// signature in every join order, which is what lets a selectivity observed
// under one order price the orders the optimizer has not executed yet.
// Returns "" when any conjunct fails to resolve.
func conditionSignature(n rel.Node, condition rex.Node) string {
	if condition == nil || rex.IsAlwaysTrue(condition) {
		return ""
	}
	conjuncts := rex.Conjuncts(condition)
	parts := make([]string, 0, len(conjuncts))
	for _, term := range conjuncts {
		c, ok := term.(*rex.Call)
		if !ok || c.Op != rex.OpEquals || len(c.Operands) != 2 {
			return ""
		}
		a, aok := c.Operands[0].(*rex.InputRef)
		b, bok := c.Operands[1].(*rex.InputRef)
		if !aok || !bok {
			return ""
		}
		an, ok := columnOriginName(n, a.Index)
		if !ok {
			return ""
		}
		bn, ok := columnOriginName(n, b.Index)
		if !ok {
			return ""
		}
		if bn < an {
			an, bn = bn, an
		}
		parts = append(parts, an+"="+bn)
	}
	sort.Strings(parts)
	return strings.Join(parts, "&")
}

// correction is the smoothed observation history of one operator shape.
type correction struct {
	op      string
	estRows float64 // optimizer estimate at last harvest (bounding anchor)
	actual  float64 // EWMA of observed row counts
	samples int64
	lastQ   float64
	maxQ    float64
}

// opState is the per-path est/actual/error state of one fingerprint, the
// /debug/plans payload.
type opState struct {
	op      string
	estRows float64
	actual  float64
	lastQ   float64
	samples int64
}

// planState aggregates everything observed about one statement fingerprint.
type planState struct {
	sql           string
	executions    int64
	lastMaxQ      float64
	maxQ          float64
	overshoots    int64
	replans       int64
	pendingReplan bool
	ops           map[string]*opState // by path
}

// swapState is a recorded build/probe swap preference for one join shape.
type swapState struct {
	estRows    float64
	actualRows float64
	count      int64
}

// selCorrection is the smoothed observed selectivity of one join condition
// signature: actual join output over the product of its input cardinalities.
// Unlike row-count corrections it transfers to join orders that have never
// executed — the condition keeps its signature in every order.
type selCorrection struct {
	sel     float64
	samples int64
}

// Store is the concurrency-safe cardinality-feedback store. One per
// framework; planning sessions read corrections through MetaProvider, the
// execute path writes through Harvest and RecordBuildOvershoot.
type Store struct {
	opts Options

	mu          sync.RWMutex
	corrections map[string]*correction    // by NodeKey
	plans       map[string]*planState     // by fingerprint
	swaps       map[string]*swapState     // by join NodeKey
	sels        map[string]*selCorrection // by join condition signature
	worstQ      float64

	// correctionCount mirrors len(corrections) so the planner's hot path can
	// skip digest computation entirely while the store is empty.
	correctionCount atomic.Int64
	swapCount       atomic.Int64
	selCount        atomic.Int64

	harvests      atomic.Int64
	samples       atomic.Int64
	applied       atomic.Int64
	replans       atomic.Int64
	overshoots    atomic.Int64
	swapsApplied  atomic.Int64
	invalidations atomic.Int64

	observeQ atomic.Pointer[func(float64)]
}

// NewStore builds an empty store; zero-valued options fall back to defaults.
func NewStore(opts Options) *Store {
	def := DefaultOptions()
	if opts.Alpha <= 0 || opts.Alpha > 1 {
		opts.Alpha = def.Alpha
	}
	if opts.MaxRatio <= 1 {
		opts.MaxRatio = def.MaxRatio
	}
	if opts.ReplanQError <= 1 {
		opts.ReplanQError = def.ReplanQError
	}
	if opts.MaxReplans <= 0 {
		opts.MaxReplans = def.MaxReplans
	}
	if opts.OvershootFactor <= 1 {
		opts.OvershootFactor = def.OvershootFactor
	}
	if opts.OvershootMinRows <= 0 {
		opts.OvershootMinRows = def.OvershootMinRows
	}
	s := &Store{opts: opts}
	s.reset()
	return s
}

func (s *Store) reset() {
	s.corrections = map[string]*correction{}
	s.plans = map[string]*planState{}
	s.swaps = map[string]*swapState{}
	s.sels = map[string]*selCorrection{}
	s.correctionCount.Store(0)
	s.swapCount.Store(0)
	s.selCount.Store(0)
}

// SetObserver installs the q-error histogram hook (each harvested operator's
// q-error is passed once). Safe to call at any time.
func (s *Store) SetObserver(fn func(float64)) {
	if fn == nil {
		return
	}
	s.observeQ.Store(&fn)
}

// Harvest folds one finished trace into the store: every span carrying a
// path id is matched to the plan's estimate table, its q-error observed and
// its operator's correction updated. Returns true when the statement should
// be re-planned — the worst q-error reached ReplanQError, or a build
// overshoot was recorded during this execution.
func (s *Store) Harvest(snap *obs.TraceSnapshot, est *PlanEstimates) bool {
	if snap == nil || est == nil || snap.Spans == nil || snap.Error != "" {
		return false
	}
	s.harvests.Add(1)
	observe := s.observeQ.Load()

	s.mu.Lock()
	ps := s.plans[snap.Fingerprint]
	if ps == nil {
		ps = &planState{sql: snap.SQL, ops: map[string]*opState{}}
		s.plans[snap.Fingerprint] = ps
	}
	ps.executions++
	maxQ := 0.0
	var walk func(sp *obs.SpanStats)
	walk = func(sp *obs.SpanStats) {
		if sp == nil {
			return
		}
		if e, ok := est.ByPath[sp.Path]; ok && sp.Path != "" && e.Rows > 0 {
			actual := float64(sp.Rows)
			q := obs.QError(e.Rows, actual)
			if q > maxQ {
				maxQ = q
			}
			s.samples.Add(1)
			if observe != nil {
				(*observe)(q)
			}
			c := s.corrections[e.Key]
			if c == nil {
				c = &correction{op: e.Op, actual: actual}
				s.corrections[e.Key] = c
				s.correctionCount.Add(1)
			} else {
				c.actual = s.opts.Alpha*actual + (1-s.opts.Alpha)*c.actual
			}
			c.estRows = e.Rows
			c.samples++
			c.lastQ = q
			if q > c.maxQ {
				c.maxQ = q
			}
			os := ps.ops[sp.Path]
			if os == nil {
				os = &opState{}
				ps.ops[sp.Path] = os
			}
			os.op = e.Op
			os.estRows = e.Rows
			os.actual = actual
			os.lastQ = q
			os.samples++

			// Joins additionally teach their condition's selectivity: the
			// observed output over the product of the observed inputs. The
			// signature survives reordering, so this is the correction that
			// prices join orders the optimizer has never executed.
			if e.JoinSig != "" && len(sp.Children) == 2 {
				aL := math.Max(float64(sp.Children[0].Rows), 1)
				aR := math.Max(float64(sp.Children[1].Rows), 1)
				implied := math.Min(math.Max(actual, 1)/(aL*aR), 1)
				sc := s.sels[e.JoinSig]
				if sc == nil {
					s.sels[e.JoinSig] = &selCorrection{sel: implied, samples: 1}
					s.selCount.Add(1)
				} else {
					sc.sel = s.opts.Alpha*implied + (1-s.opts.Alpha)*sc.sel
					sc.samples++
				}
			}
		}
		for _, c := range sp.Children {
			walk(c)
		}
	}
	walk(snap.Spans)
	ps.lastMaxQ = maxQ
	if maxQ > ps.maxQ {
		ps.maxQ = maxQ
	}
	if maxQ > s.worstQ {
		s.worstQ = maxQ
	}
	replan := (maxQ >= s.opts.ReplanQError || ps.pendingReplan) &&
		ps.replans < int64(s.opts.MaxReplans)
	ps.pendingReplan = false
	if replan {
		ps.replans++
	}
	s.mu.Unlock()

	if replan {
		s.replans.Add(1)
	}
	return replan
}

// CorrectedRowCount returns the feedback-corrected row estimate for n when
// an operator with the same canonical shape has been observed, bounded to
// within MaxRatio of the optimizer's own estimate at last harvest.
func (s *Store) CorrectedRowCount(n rel.Node) (float64, bool) {
	if s.correctionCount.Load() == 0 {
		return 0, false
	}
	key := NodeKey(n)
	s.mu.RLock()
	c, ok := s.corrections[key]
	if !ok {
		s.mu.RUnlock()
		return 0, false
	}
	v := c.actual
	if anchor := c.estRows; anchor > 0 {
		v = math.Min(math.Max(v, anchor/s.opts.MaxRatio), anchor*s.opts.MaxRatio)
	}
	s.mu.RUnlock()
	s.applied.Add(1)
	return math.Max(v, 1), true
}

// CorrectedSelectivity returns the observed selectivity for a predicate
// whose condition signature on n matches a harvested join condition.
func (s *Store) CorrectedSelectivity(n rel.Node, predicate rex.Node) (float64, bool) {
	if s.selCount.Load() == 0 {
		return 0, false
	}
	sig := conditionSignature(n, predicate)
	if sig == "" {
		return 0, false
	}
	s.mu.RLock()
	sc, ok := s.sels[sig]
	if !ok {
		s.mu.RUnlock()
		return 0, false
	}
	v := sc.sel
	s.mu.RUnlock()
	s.applied.Add(1)
	return v, true
}

// MetaProvider adapts the store into the metadata provider chain: RowCount
// answers from observed cardinalities, Selectivity from observed join
// selectivities, everything else falls through.
func (s *Store) MetaProvider() meta.Provider {
	return meta.Provider{
		Name: "feedback",
		RowCount: func(q *meta.Query, n rel.Node) (float64, bool) {
			return s.CorrectedRowCount(n)
		},
		Selectivity: func(q *meta.Query, n rel.Node, predicate rex.Node) (float64, bool) {
			return s.CorrectedSelectivity(n, predicate)
		},
	}
}

// RecordBuildOvershoot notes that a hash join's build side produced actual
// rows against an estimate of est. Past the configured factor (and noise
// floor) the join shape gains a swap preference and the statement is marked
// for re-planning at its next harvest.
func (s *Store) RecordBuildOvershoot(fingerprint, joinKey string, est, actual float64) {
	if est <= 0 || actual < s.opts.OvershootMinRows || actual <= est*s.opts.OvershootFactor {
		return
	}
	s.overshoots.Add(1)
	s.mu.Lock()
	sw := s.swaps[joinKey]
	if sw == nil {
		sw = &swapState{}
		s.swaps[joinKey] = sw
		s.swapCount.Add(1)
	}
	sw.estRows, sw.actualRows = est, actual
	sw.count++
	ps := s.plans[fingerprint]
	if ps == nil {
		ps = &planState{ops: map[string]*opState{}}
		s.plans[fingerprint] = ps
	}
	ps.overshoots++
	ps.pendingReplan = true
	s.mu.Unlock()
}

// PreferSwap reports whether the join shape has a recorded build-overshoot
// swap preference.
func (s *Store) PreferSwap(joinKey string) bool {
	if s.swapCount.Load() == 0 {
		return false
	}
	s.mu.RLock()
	_, ok := s.swaps[joinKey]
	s.mu.RUnlock()
	return ok
}

// SwapCount returns the number of join shapes with a swap preference (fast
// emptiness check for the planning post-pass).
func (s *Store) SwapCount() int64 { return s.swapCount.Load() }

// NoteSwapApplied counts one applied build/probe swap.
func (s *Store) NoteSwapApplied() { s.swapsApplied.Add(1) }

// Invalidate drops all corrections, plan records and swap preferences —
// called from the same DDL/ANALYZE/INSERT path that flushes the plan cache.
func (s *Store) Invalidate() {
	s.mu.Lock()
	empty := len(s.corrections) == 0 && len(s.plans) == 0 && len(s.swaps) == 0
	s.reset()
	s.worstQ = 0
	s.mu.Unlock()
	if !empty {
		s.invalidations.Add(1)
	}
}

// Size reports the tracked fingerprint and operator-correction counts.
func (s *Store) Size() (fingerprints, operators int) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.plans), len(s.corrections)
}

// WorstQError returns the worst per-operator q-error harvested since the
// last invalidation.
func (s *Store) WorstQError() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.worstQ
}

// Counters is a point-in-time read of the store's cumulative counters.
type Counters struct {
	Harvests        int64
	Samples         int64
	Corrections     int64
	Replans         int64
	BuildOvershoots int64
	SwapsApplied    int64
	Invalidations   int64
}

// Counters returns the cumulative activity counters.
func (s *Store) Counters() Counters {
	return Counters{
		Harvests:        s.harvests.Load(),
		Samples:         s.samples.Load(),
		Corrections:     s.applied.Load(),
		Replans:         s.replans.Load(),
		BuildOvershoots: s.overshoots.Load(),
		SwapsApplied:    s.swapsApplied.Load(),
		Invalidations:   s.invalidations.Load(),
	}
}

// OpReport is one operator's est/actual/error row in a plan report.
type OpReport struct {
	Path       string  `json:"path"`
	Op         string  `json:"op"`
	EstRows    float64 `json:"est_rows"`
	ActualRows float64 `json:"actual_rows"`
	QError     float64 `json:"qerror"`
	Samples    int64   `json:"samples"`
}

// PlanReport is the plan-quality summary of one statement fingerprint.
type PlanReport struct {
	Fingerprint     string     `json:"fingerprint"`
	SQL             string     `json:"sql"`
	Executions      int64      `json:"executions"`
	LastMaxQError   float64    `json:"last_max_qerror"`
	MaxQError       float64    `json:"max_qerror"`
	BuildOvershoots int64      `json:"build_overshoots,omitempty"`
	Ops             []OpReport `json:"ops"`
}

// Report returns per-fingerprint plan-quality summaries, worst estimation
// error first — the /debug/plans payload.
func (s *Store) Report() []PlanReport {
	s.mu.RLock()
	out := make([]PlanReport, 0, len(s.plans))
	for fp, ps := range s.plans {
		r := PlanReport{
			Fingerprint:     fp,
			SQL:             ps.sql,
			Executions:      ps.executions,
			LastMaxQError:   ps.lastMaxQ,
			MaxQError:       ps.maxQ,
			BuildOvershoots: ps.overshoots,
			Ops:             make([]OpReport, 0, len(ps.ops)),
		}
		for path, os := range ps.ops {
			r.Ops = append(r.Ops, OpReport{
				Path:       path,
				Op:         os.op,
				EstRows:    os.estRows,
				ActualRows: os.actual,
				QError:     os.lastQ,
				Samples:    os.samples,
			})
		}
		sort.Slice(r.Ops, func(i, j int) bool { return r.Ops[i].Path < r.Ops[j].Path })
		out = append(out, r)
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].MaxQError != out[j].MaxQError {
			return out[i].MaxQError > out[j].MaxQError
		}
		return out[i].Fingerprint < out[j].Fingerprint
	})
	return out
}
