package linq

import (
	"testing"
	"testing/quick"
)

func TestWhereSelectTakeSkip(t *testing.T) {
	nums := FromSlice([]int{1, 2, 3, 4, 5, 6})
	got := Select(nums.Where(func(n int) bool { return n%2 == 0 }), func(n int) int { return n * 10 }).ToSlice()
	if len(got) != 3 || got[0] != 20 || got[2] != 60 {
		t.Fatalf("got %v", got)
	}
	if s := nums.Skip(2).Take(2).ToSlice(); len(s) != 2 || s[0] != 3 {
		t.Fatalf("skip/take: %v", s)
	}
	if c := nums.Count(); c != 6 {
		t.Fatalf("count: %d", c)
	}
	if !nums.Any(func(n int) bool { return n == 4 }) {
		t.Error("Any failed")
	}
	if first, ok := nums.Where(func(n int) bool { return n > 4 }).First(); !ok || first != 5 {
		t.Errorf("First: %v %v", first, ok)
	}
}

func TestGroupByAndJoin(t *testing.T) {
	type emp struct {
		name string
		dept int
	}
	type dept struct {
		id   int
		name string
	}
	emps := FromSlice([]emp{{"a", 1}, {"b", 2}, {"c", 1}})
	depts := FromSlice([]dept{{1, "Sales"}, {2, "Eng"}})

	groups := GroupBy(emps, func(e emp) int { return e.dept }).ToSlice()
	if len(groups) != 2 || len(groups[0].Items) != 2 {
		t.Fatalf("groups: %+v", groups)
	}

	joined := Join(emps, depts,
		func(e emp) int { return e.dept },
		func(d dept) int { return d.id },
		func(e emp, d dept) string { return e.name + "@" + d.name }).ToSlice()
	if len(joined) != 3 || joined[0] != "a@Sales" {
		t.Fatalf("join: %v", joined)
	}
}

func TestOrderByAndAggregate(t *testing.T) {
	nums := FromSlice([]float64{3, 1, 2})
	sorted := nums.OrderBy(func(a, b float64) bool { return a < b }).ToSlice()
	if sorted[0] != 1 || sorted[2] != 3 {
		t.Fatalf("sorted: %v", sorted)
	}
	if s := SumFloat(nums, func(f float64) float64 { return f }); s != 6 {
		t.Fatalf("sum: %v", s)
	}
	if folded := Aggregate(nums, 1.0, func(a, b float64) float64 { return a * b }); folded != 6 {
		t.Fatalf("fold: %v", folded)
	}
}

func TestSelectMany(t *testing.T) {
	got := SelectMany(FromSlice([][]int{{1, 2}, {3}}), func(s []int) []int { return s }).ToSlice()
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("%v", got)
	}
}

// Property: Where(p) ∘ Count == manual count.
func TestWhereCountProperty(t *testing.T) {
	f := func(xs []int) bool {
		manual := 0
		for _, x := range xs {
			if x%3 == 0 {
				manual++
			}
		}
		return FromSlice(xs).Where(func(n int) bool { return n%3 == 0 }).Count() == manual
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Take(n) yields at most n and preserves prefix order.
func TestTakeProperty(t *testing.T) {
	f := func(xs []int, n uint8) bool {
		k := int(n % 10)
		got := FromSlice(xs).Take(k).ToSlice()
		if len(got) > k {
			return false
		}
		for i := range got {
			if got[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
