// Package linq is the Go analogue of Calcite's LINQ4J (§7.4 of the paper):
// a language-integrated query API that lets programmers express queries in
// the host language instead of SQL, following the conventions of Microsoft's
// LINQ. Enumerable pipelines compose lazily and can front any row source,
// including cursors from the execution engine.
package linq

import (
	"sort"

	"calcite/internal/schema"
	"calcite/internal/types"
)

// Enumerable is a lazily evaluated sequence of T.
type Enumerable[T any] struct {
	iterate func(yield func(T) bool)
}

// FromSlice builds an Enumerable over a slice.
func FromSlice[T any](items []T) Enumerable[T] {
	return Enumerable[T]{iterate: func(yield func(T) bool) {
		for _, it := range items {
			if !yield(it) {
				return
			}
		}
	}}
}

// FromCursor builds an Enumerable over an engine cursor (rows are reused
// only after the cursor ends; each row is yielded as produced).
func FromCursor(cur schema.Cursor) Enumerable[[]any] {
	return Enumerable[[]any]{iterate: func(yield func([]any) bool) {
		defer cur.Close()
		for {
			row, err := cur.Next()
			if err != nil {
				return
			}
			if !yield(row) {
				return
			}
		}
	}}
}

// Where keeps elements satisfying pred.
func (e Enumerable[T]) Where(pred func(T) bool) Enumerable[T] {
	return Enumerable[T]{iterate: func(yield func(T) bool) {
		e.iterate(func(t T) bool {
			if pred(t) {
				return yield(t)
			}
			return true
		})
	}}
}

// Take limits the sequence to n elements.
func (e Enumerable[T]) Take(n int) Enumerable[T] {
	return Enumerable[T]{iterate: func(yield func(T) bool) {
		count := 0
		e.iterate(func(t T) bool {
			if count >= n {
				return false
			}
			count++
			return yield(t)
		})
	}}
}

// Skip drops the first n elements.
func (e Enumerable[T]) Skip(n int) Enumerable[T] {
	return Enumerable[T]{iterate: func(yield func(T) bool) {
		count := 0
		e.iterate(func(t T) bool {
			count++
			if count <= n {
				return true
			}
			return yield(t)
		})
	}}
}

// ToSlice materializes the sequence.
func (e Enumerable[T]) ToSlice() []T {
	var out []T
	e.iterate(func(t T) bool {
		out = append(out, t)
		return true
	})
	return out
}

// Count returns the number of elements.
func (e Enumerable[T]) Count() int {
	n := 0
	e.iterate(func(T) bool {
		n++
		return true
	})
	return n
}

// Any reports whether any element satisfies pred.
func (e Enumerable[T]) Any(pred func(T) bool) bool {
	found := false
	e.iterate(func(t T) bool {
		if pred(t) {
			found = true
			return false
		}
		return true
	})
	return found
}

// First returns the first element (ok=false when empty).
func (e Enumerable[T]) First() (T, bool) {
	var out T
	ok := false
	e.iterate(func(t T) bool {
		out = t
		ok = true
		return false
	})
	return out, ok
}

// OrderBy sorts by a comparable key (stable).
func (e Enumerable[T]) OrderBy(less func(a, b T) bool) Enumerable[T] {
	return Enumerable[T]{iterate: func(yield func(T) bool) {
		items := e.ToSlice()
		sort.SliceStable(items, func(i, j int) bool { return less(items[i], items[j]) })
		for _, it := range items {
			if !yield(it) {
				return
			}
		}
	}}
}

// Select projects each element (free function: Go methods cannot introduce
// type parameters).
func Select[T, U any](e Enumerable[T], f func(T) U) Enumerable[U] {
	return Enumerable[U]{iterate: func(yield func(U) bool) {
		e.iterate(func(t T) bool { return yield(f(t)) })
	}}
}

// SelectMany flat-maps each element.
func SelectMany[T, U any](e Enumerable[T], f func(T) []U) Enumerable[U] {
	return Enumerable[U]{iterate: func(yield func(U) bool) {
		e.iterate(func(t T) bool {
			for _, u := range f(t) {
				if !yield(u) {
					return false
				}
			}
			return true
		})
	}}
}

// Grouping is one group produced by GroupBy.
type Grouping[K comparable, T any] struct {
	Key   K
	Items []T
}

// GroupBy groups elements by key, preserving first-seen key order.
func GroupBy[T any, K comparable](e Enumerable[T], key func(T) K) Enumerable[Grouping[K, T]] {
	return Enumerable[Grouping[K, T]]{iterate: func(yield func(Grouping[K, T]) bool) {
		groups := map[K]*Grouping[K, T]{}
		var order []K
		e.iterate(func(t T) bool {
			k := key(t)
			g, ok := groups[k]
			if !ok {
				g = &Grouping[K, T]{Key: k}
				groups[k] = g
				order = append(order, k)
			}
			g.Items = append(g.Items, t)
			return true
		})
		for _, k := range order {
			if !yield(*groups[k]) {
				return
			}
		}
	}}
}

// Join hash-joins two enumerables on matching keys — the LINQ equivalent of
// the paper's EnumerableJoin.
func Join[L, R, K comparable, O any](left Enumerable[L], right Enumerable[R],
	leftKey func(L) K, rightKey func(R) K, result func(L, R) O) Enumerable[O] {
	return Enumerable[O]{iterate: func(yield func(O) bool) {
		table := map[K][]R{}
		right.iterate(func(r R) bool {
			k := rightKey(r)
			table[k] = append(table[k], r)
			return true
		})
		left.iterate(func(l L) bool {
			for _, r := range table[leftKey(l)] {
				if !yield(result(l, r)) {
					return false
				}
			}
			return true
		})
	}}
}

// Aggregate folds the sequence.
func Aggregate[T, A any](e Enumerable[T], seed A, fold func(A, T) A) A {
	acc := seed
	e.iterate(func(t T) bool {
		acc = fold(acc, t)
		return true
	})
	return acc
}

// SumFloat sums a float projection of the sequence.
func SumFloat[T any](e Enumerable[T], f func(T) float64) float64 {
	return Aggregate(e, 0.0, func(a float64, t T) float64 { return a + f(t) })
}

// Rows adapts a row slice ([][]any) to an Enumerable with typed access
// helpers.
func Rows(rows [][]any) Enumerable[[]any] { return FromSlice(rows) }

// Col extracts column i of a row as a float (0 when not numeric).
func Col(row []any, i int) float64 {
	f, _ := types.AsFloat(row[i])
	return f
}
