// Package cassandra simulates a Cassandra-like wide-column store: tables are
// partitioned by a subset of columns and, within each partition, rows are
// sorted by clustering columns. The adapter reproduces the §6 worked
// example: a Sort can be pushed into Cassandra only when (1) the table has
// been previously filtered to a single partition and (2) the required sort
// order shares a prefix with the clustering order — which requires a
// LogicalFilter to have been rewritten to a CassandraFilter first. Pushed
// expressions reach the store as CQL text (Table 2: "Cassandra → CQL").
package cassandra

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"calcite/internal/types"
)

// TableDef describes a wide-column table.
type TableDef struct {
	Name           string
	Fields         []types.Field
	PartitionKeys  []int // ordinals of the partition key columns
	ClusteringKeys []int // ordinals of the clustering columns (ascending)
}

// Store is the Cassandra-like server; all external access is CQL text.
type Store struct {
	mu     sync.Mutex
	tables map[string]*table
	// Queries records every CQL statement received.
	Queries []string
}

type table struct {
	def  TableDef
	rows [][]any
}

// NewStore creates an empty store.
func NewStore() *Store { return &Store{tables: map[string]*table{}} }

// CreateTable defines a table and loads rows (stored sorted by partition,
// then clustering columns — the storage order Cassandra maintains).
func (s *Store) CreateTable(def TableDef, rows [][]any) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &table{def: def, rows: append([][]any(nil), rows...)}
	keyCols := append(append([]int{}, def.PartitionKeys...), def.ClusteringKeys...)
	sort.SliceStable(t.rows, func(i, j int) bool {
		for _, c := range keyCols {
			if cmp := types.Compare(t.rows[i][c], t.rows[j][c]); cmp != 0 {
				return cmp < 0
			}
		}
		return false
	})
	s.tables[strings.ToLower(def.Name)] = t
}

// Tables lists table definitions.
func (s *Store) Tables() []TableDef {
	s.mu.Lock()
	defer s.mu.Unlock()
	var defs []TableDef
	for _, t := range s.tables {
		defs = append(defs, t.def)
	}
	sort.Slice(defs, func(i, j int) bool { return defs[i].Name < defs[j].Name })
	return defs
}

// LastQuery returns the most recent CQL received.
func (s *Store) LastQuery() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.Queries) == 0 {
		return ""
	}
	return s.Queries[len(s.Queries)-1]
}

// Execute runs a CQL statement of the shape
//
//	SELECT <cols|*> FROM <t> [WHERE c op v [AND ...]] [ORDER BY c [DESC], ...] [LIMIT n]
//
// enforcing Cassandra's restrictions: non-key filters are rejected, ORDER BY
// requires the partition key to be fully bound by equality.
func (s *Store) Execute(cql string) ([]string, [][]any, error) {
	s.mu.Lock()
	s.Queries = append(s.Queries, cql)
	s.mu.Unlock()

	p := &cqlParser{src: cql}
	q, err := p.parse()
	if err != nil {
		return nil, nil, err
	}
	s.mu.Lock()
	t, ok := s.tables[strings.ToLower(q.table)]
	s.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("cassandra: unknown table %q", q.table)
	}
	def := t.def
	colPos := map[string]int{}
	for i, f := range def.Fields {
		colPos[strings.ToLower(f.Name)] = i
	}
	keyCol := func(name string) (int, error) {
		pos, ok := colPos[strings.ToLower(name)]
		if !ok {
			return 0, fmt.Errorf("cassandra: unknown column %q", name)
		}
		return pos, nil
	}
	// Validate restrictions: every WHERE column must be a key column.
	isPartition := map[int]bool{}
	for _, c := range def.PartitionKeys {
		isPartition[c] = true
	}
	isClustering := map[int]bool{}
	for _, c := range def.ClusteringKeys {
		isClustering[c] = true
	}
	boundPartitions := map[int]bool{}
	type cond struct {
		col int
		op  string
		val any
	}
	var conds []cond
	for _, w := range q.where {
		col, err := keyCol(w.col)
		if err != nil {
			return nil, nil, err
		}
		if !isPartition[col] && !isClustering[col] {
			return nil, nil, fmt.Errorf("cassandra: cannot filter on non-key column %q (no ALLOW FILTERING)", w.col)
		}
		if isPartition[col] {
			if w.op != "=" {
				return nil, nil, fmt.Errorf("cassandra: partition key %q requires equality", w.col)
			}
			boundPartitions[col] = true
		}
		conds = append(conds, cond{col: col, op: w.op, val: w.val})
	}
	if len(q.orderBy) > 0 {
		for _, c := range def.PartitionKeys {
			if !boundPartitions[c] {
				return nil, nil, fmt.Errorf("cassandra: ORDER BY requires the partition key to be restricted by equality")
			}
		}
	}
	// Filter (storage order preserved: rows within a partition stay sorted
	// by clustering columns).
	var out [][]any
	for _, row := range t.rows {
		keep := true
		for _, c := range conds {
			cmp := types.Compare(row[c.col], c.val)
			switch c.op {
			case "=":
				keep = cmp == 0
			case ">":
				keep = cmp > 0
			case ">=":
				keep = cmp >= 0
			case "<":
				keep = cmp < 0
			case "<=":
				keep = cmp <= 0
			default:
				return nil, nil, fmt.Errorf("cassandra: unsupported operator %q", c.op)
			}
			if !keep {
				break
			}
		}
		if keep {
			out = append(out, row)
		}
	}
	// ORDER BY: only clustering prefix, ASC as stored or fully reversed.
	if len(q.orderBy) > 0 {
		desc := q.orderBy[0].desc
		for i, o := range q.orderBy {
			col, err := keyCol(o.col)
			if err != nil {
				return nil, nil, err
			}
			if i >= len(def.ClusteringKeys) || def.ClusteringKeys[i] != col {
				return nil, nil, fmt.Errorf("cassandra: ORDER BY must follow the clustering order")
			}
			if o.desc != desc {
				return nil, nil, fmt.Errorf("cassandra: ORDER BY directions must be uniform")
			}
		}
		if desc {
			for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	if q.limit > 0 && q.limit < len(out) {
		out = out[:q.limit]
	}
	// Projection.
	names := make([]string, 0)
	if len(q.cols) == 1 && q.cols[0] == "*" {
		for _, f := range def.Fields {
			names = append(names, f.Name)
		}
		return names, out, nil
	}
	var idxs []int
	for _, c := range q.cols {
		pos, err := keyCol(c)
		if err != nil {
			return nil, nil, err
		}
		idxs = append(idxs, pos)
		names = append(names, def.Fields[pos].Name)
	}
	proj := make([][]any, len(out))
	for ri, row := range out {
		nr := make([]any, len(idxs))
		for i, c := range idxs {
			nr[i] = row[c]
		}
		proj[ri] = nr
	}
	return names, proj, nil
}

// --- tiny CQL parser ---

type cqlQuery struct {
	cols    []string
	table   string
	where   []cqlCond
	orderBy []cqlOrder
	limit   int
}

type cqlCond struct {
	col string
	op  string
	val any
}

type cqlOrder struct {
	col  string
	desc bool
}

type cqlParser struct {
	src string
	pos int
}

func (p *cqlParser) ws() {
	for p.pos < len(p.src) && (p.src[p.pos] == ' ' || p.src[p.pos] == '\n' || p.src[p.pos] == '\t') {
		p.pos++
	}
}

func (p *cqlParser) keyword(kw string) bool {
	p.ws()
	if len(p.src)-p.pos >= len(kw) && strings.EqualFold(p.src[p.pos:p.pos+len(kw)], kw) {
		p.pos += len(kw)
		return true
	}
	return false
}

func (p *cqlParser) ident() string {
	p.ws()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' {
			p.pos++
		} else {
			break
		}
	}
	return p.src[start:p.pos]
}

func (p *cqlParser) parse() (*cqlQuery, error) {
	q := &cqlQuery{}
	if !p.keyword("SELECT") {
		return nil, fmt.Errorf("cassandra: expected SELECT in %q", p.src)
	}
	p.ws()
	if p.pos < len(p.src) && p.src[p.pos] == '*' {
		p.pos++
		q.cols = []string{"*"}
	} else {
		for {
			q.cols = append(q.cols, p.ident())
			p.ws()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
	}
	if !p.keyword("FROM") {
		return nil, fmt.Errorf("cassandra: expected FROM in %q", p.src)
	}
	q.table = p.ident()
	if p.keyword("WHERE") {
		for {
			col := p.ident()
			p.ws()
			opStart := p.pos
			for p.pos < len(p.src) && strings.ContainsRune("=<>!", rune(p.src[p.pos])) {
				p.pos++
			}
			op := p.src[opStart:p.pos]
			p.ws()
			val, err := p.value()
			if err != nil {
				return nil, err
			}
			q.where = append(q.where, cqlCond{col: col, op: op, val: val})
			if !p.keyword("AND") {
				break
			}
		}
	}
	if p.keyword("ORDER BY") {
		for {
			col := p.ident()
			desc := p.keyword("DESC")
			if !desc {
				p.keyword("ASC")
			}
			q.orderBy = append(q.orderBy, cqlOrder{col: col, desc: desc})
			p.ws()
			if p.pos < len(p.src) && p.src[p.pos] == ',' {
				p.pos++
				continue
			}
			break
		}
	}
	if p.keyword("LIMIT") {
		p.ws()
		start := p.pos
		for p.pos < len(p.src) && p.src[p.pos] >= '0' && p.src[p.pos] <= '9' {
			p.pos++
		}
		n, err := strconv.Atoi(p.src[start:p.pos])
		if err != nil {
			return nil, fmt.Errorf("cassandra: bad LIMIT in %q", p.src)
		}
		q.limit = n
	}
	return q, nil
}

func (p *cqlParser) value() (any, error) {
	p.ws()
	if p.pos < len(p.src) && p.src[p.pos] == '\'' {
		end := strings.IndexByte(p.src[p.pos+1:], '\'')
		if end < 0 {
			return nil, fmt.Errorf("cassandra: unterminated string in %q", p.src)
		}
		v := p.src[p.pos+1 : p.pos+1+end]
		p.pos += end + 2
		return v, nil
	}
	start := p.pos
	for p.pos < len(p.src) && (p.src[p.pos] == '.' || p.src[p.pos] == '-' || p.src[p.pos] >= '0' && p.src[p.pos] <= '9') {
		p.pos++
	}
	raw := p.src[start:p.pos]
	if i, err := strconv.ParseInt(raw, 10, 64); err == nil {
		return i, nil
	}
	if f, err := strconv.ParseFloat(raw, 64); err == nil {
		return f, nil
	}
	return nil, fmt.Errorf("cassandra: bad literal %q", raw)
}
