package cassandra

import (
	"fmt"
	"strings"

	"calcite/internal/core"
	"calcite/internal/cost"
	"calcite/internal/exec"
	"calcite/internal/meta"
	"calcite/internal/plan"
	"calcite/internal/rel"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// cassTable is the adapter's handle for a store table.
type cassTable struct {
	def   TableDef
	store *Store
}

func (t *cassTable) Name() string         { return t.def.Name }
func (t *cassTable) RowType() *types.Type { return types.Row(t.def.Fields...) }
func (t *cassTable) Stats() schema.Statistics {
	return schema.Statistics{RowCount: 1000}
}

// TransferCostFactor implements schema.RemoteTable.
func (t *cassTable) TransferCostFactor() float64 { return 1 }

// Scan falls back to a full CQL scan.
func (t *cassTable) Scan() (schema.Cursor, error) {
	_, rows, err := t.store.Execute("SELECT * FROM " + t.def.Name)
	if err != nil {
		return nil, err
	}
	return schema.NewSliceCursor(rows), nil
}

// Adapter connects a Store under the "cassandra" calling convention.
type Adapter struct {
	SchemaName string
	Store      *Store
	Conv       trait.Convention

	schema *schema.BaseSchema
	tables map[string]*cassTable
}

// New builds the adapter from the store's table definitions.
func New(schemaName string, store *Store) *Adapter {
	a := &Adapter{
		SchemaName: schemaName,
		Store:      store,
		Conv:       trait.NewConvention("cassandra"),
		schema:     schema.NewBaseSchema(schemaName),
		tables:     map[string]*cassTable{},
	}
	for _, def := range store.Tables() {
		t := &cassTable{def: def, store: store}
		a.schema.AddTable(t)
		a.tables[strings.ToLower(def.Name)] = t
	}
	return a
}

// AdapterSchema implements core.Adapter.
func (a *Adapter) AdapterSchema() schema.Schema { return a.schema }

func (a *Adapter) inConv(n rel.Node) bool {
	return trait.SameConvention(n.Traits().Convention, a.Conv)
}

func isLogical(n rel.Node) bool {
	return trait.SameConvention(n.Traits().Convention, trait.Logical)
}

// Rules implements core.Adapter: scan conversion, the key-restricted
// CassandraFilter rule, and the two-precondition CassandraSort rule of §6.
func (a *Adapter) Rules() []plan.Rule {
	ts := trait.NewSet(a.Conv)
	return []plan.Rule{
		&plan.FuncRule{
			Name: "CassandraScanRule",
			Op: plan.MatchNode(func(n rel.Node) bool {
				s, ok := n.(*rel.TableScan)
				if !ok || !isLogical(n) {
					return false
				}
				ct, mine := s.Table.(*cassTable)
				return mine && ct.store == a.Store
			}),
			Fire: func(call *plan.Call) {
				s := call.Rel(0).(*rel.TableScan)
				call.Transform(rel.NewTableScan(a.Conv, s.Table, []string{s.Table.Name()}))
			},
		},
		// "This requires that a LogicalFilter has been rewritten to a
		// CassandraFilter to ensure the partition filter is pushed down to
		// the database" (§6).
		&plan.FuncRule{
			Name: "CassandraFilterRule",
			Op: plan.MatchNode(func(n rel.Node) bool {
				_, ok := n.(*rel.Filter)
				return ok && isLogical(n)
			}, plan.MatchNode(func(n rel.Node) bool {
				s, ok := n.(*rel.TableScan)
				return ok && a.inConv(n) && s != nil
			})),
			Fire: func(call *plan.Call) {
				f := call.Rel(0).(*rel.Filter)
				scan := call.Rel(1).(*rel.TableScan)
				def := scan.Table.(*cassTable).def
				pushable, residual, singlePartition := splitCassandraConds(f.Condition, def)
				if len(pushable) == 0 || !singlePartition {
					// Cassandra rejects filters that do not bind the full
					// partition key (no ALLOW FILTERING in this adapter).
					return
				}
				var node rel.Node = rel.NewFilterTraits("CassandraFilter", ts, scan, rex.And(pushable...))
				if len(residual) > 0 {
					node = rel.NewFilter(node, rex.And(residual...))
				}
				call.Transform(node)
			},
		},
		// Projection pushdown: CQL selects named columns.
		&plan.FuncRule{
			Name: "CassandraProjectRule",
			Op: plan.MatchNode(func(n rel.Node) bool {
				_, ok := n.(*rel.Project)
				return ok && isLogical(n)
			}, plan.MatchNode(a.inConv)),
			Fire: func(call *plan.Call) {
				p := call.Rel(0).(*rel.Project)
				for _, e := range p.Exprs {
					if _, ok := e.(*rex.InputRef); !ok {
						return
					}
				}
				call.Transform(rel.NewProjectTraits("CassandraProject", ts, call.Rel(1), p.Exprs, p.FieldNames()))
			},
		},
		// The §6 sort-pushdown rule with its two preconditions.
		&plan.FuncRule{
			Name: "CassandraSortRule",
			Op: plan.MatchNode(func(n rel.Node) bool {
				s, ok := n.(*rel.Sort)
				return ok && isLogical(n) && len(s.Collation) > 0
			}, plan.MatchNode(func(n rel.Node) bool {
				f, ok := n.(*rel.Filter)
				return ok && a.inConv(n) && f.Op() == "CassandraFilter"
			})),
			Fire: func(call *plan.Call) {
				sortNode := call.Rel(0).(*rel.Sort)
				filter := call.Rel(1).(*rel.Filter)
				scan, ok := filter.Inputs()[0].(*rel.TableScan)
				if !ok {
					return
				}
				def := scan.Table.(*cassTable).def
				// Precondition 1: the filter restricts to a single
				// partition (equality on every partition key column).
				if !bindsFullPartition(filter.Condition, def) {
					return
				}
				// Precondition 2: the required sort shares a prefix with
				// the clustering order (all ascending, matching storage).
				if !clusteringPrefix(sortNode.Collation, def) {
					return
				}
				call.Transform(rel.NewSortTraits("CassandraSort",
					ts.WithCollation(sortNode.Collation),
					filter, sortNode.Collation, sortNode.Offset, sortNode.Fetch))
			},
		},
		// Limit pushdown onto an already-pushed sort or filter.
		&plan.FuncRule{
			Name: "CassandraLimitRule",
			Op: plan.MatchNode(func(n rel.Node) bool {
				s, ok := n.(*rel.Sort)
				return ok && isLogical(n) && len(s.Collation) == 0 && s.Fetch >= 0 && s.Offset == 0
			}, plan.MatchNode(a.inConv)),
			Fire: func(call *plan.Call) {
				s := call.Rel(0).(*rel.Sort)
				call.Transform(rel.NewSortTraits("CassandraLimit", ts, call.Rel(1), nil, 0, s.Fetch))
			},
		},
	}
}

// splitCassandraConds separates pushable key conditions from residual ones
// and reports whether the partition key is fully bound by equality.
func splitCassandraConds(cond rex.Node, def TableDef) (pushable, residual []rex.Node, singlePartition bool) {
	isPartition := map[int]bool{}
	for _, c := range def.PartitionKeys {
		isPartition[c] = true
	}
	isClustering := map[int]bool{}
	for _, c := range def.ClusteringKeys {
		isClustering[c] = true
	}
	bound := map[int]bool{}
	for _, term := range rex.Conjuncts(cond) {
		col, op, _, ok := simpleComparison(term)
		switch {
		case ok && isPartition[col] && op == "=":
			bound[col] = true
			pushable = append(pushable, term)
		case ok && isClustering[col]:
			pushable = append(pushable, term)
		default:
			residual = append(residual, term)
		}
	}
	singlePartition = len(def.PartitionKeys) > 0
	for _, c := range def.PartitionKeys {
		if !bound[c] {
			singlePartition = false
		}
	}
	return pushable, residual, singlePartition
}

// bindsFullPartition reports whether cond binds every partition key column
// with equality.
func bindsFullPartition(cond rex.Node, def TableDef) bool {
	bound := map[int]bool{}
	for _, term := range rex.Conjuncts(cond) {
		if col, op, _, ok := simpleComparison(term); ok && op == "=" {
			bound[col] = true
		}
	}
	for _, c := range def.PartitionKeys {
		if !bound[c] {
			return false
		}
	}
	return len(def.PartitionKeys) > 0
}

// clusteringPrefix reports whether the collation is an ascending prefix of
// the clustering order (or its full descending reversal).
func clusteringPrefix(collation trait.Collation, def TableDef) bool {
	if len(collation) > len(def.ClusteringKeys) {
		return false
	}
	dir := collation[0].Direction
	for i, fc := range collation {
		if fc.Field != def.ClusteringKeys[i] || fc.Direction != dir {
			return false
		}
	}
	return true
}

// simpleComparison decomposes "col OP literal".
func simpleComparison(term rex.Node) (col int, op string, val any, ok bool) {
	c, isCall := term.(*rex.Call)
	if !isCall || len(c.Operands) != 2 {
		return 0, "", nil, false
	}
	opName := map[*rex.Operator]string{
		rex.OpEquals: "=", rex.OpGreater: ">", rex.OpGreaterEqual: ">=",
		rex.OpLess: "<", rex.OpLessEqual: "<=",
	}[c.Op]
	if opName == "" {
		return 0, "", nil, false
	}
	if ref, rok := c.Operands[0].(*rex.InputRef); rok {
		if lit, lok := c.Operands[1].(*rex.Literal); lok && lit.Value != nil {
			return ref.Index, opName, lit.Value, true
		}
	}
	if lit, lok := c.Operands[0].(*rex.Literal); lok && lit.Value != nil {
		if ref, rok := c.Operands[1].(*rex.InputRef); rok {
			if m := rex.Mirror(c.Op); m != nil {
				return ref.Index, map[*rex.Operator]string{
					rex.OpEquals: "=", rex.OpGreater: ">", rex.OpGreaterEqual: ">=",
					rex.OpLess: "<", rex.OpLessEqual: "<=",
				}[m], lit.Value, true
			}
		}
	}
	return 0, "", nil, false
}

// MetaProviders implements core.MetaAdapter: a CassandraSort is free — rows
// within a partition are already stored in clustering order, so the pushed
// sort merely reads them back (§6: exploiting traits "to find plans that
// avoid unnecessary operations").
func (a *Adapter) MetaProviders() []meta.Provider {
	return []meta.Provider{{
		Name: "cassandra",
		NonCumulativeCost: func(q *meta.Query, n rel.Node) (cost.Cost, bool) {
			if s, ok := n.(*rel.Sort); ok && s.Op() == "CassandraSort" {
				rc := q.RowCount(s.Inputs()[0])
				return cost.New(rc, rc*0.1, 0, 0), true
			}
			return cost.Zero, false
		},
	}}
}

// Converters implements core.Adapter.
func (a *Adapter) Converters() []core.ConverterReg {
	return []core.ConverterReg{{
		From: a.Conv,
		To:   trait.Enumerable,
		Factory: func(input rel.Node) rel.Node {
			return &toEnumerable{
				Converter: rel.NewConverter("CassandraToEnumerable", trait.Enumerable, input),
				adapter:   a,
			}
		},
	}}
}

type toEnumerable struct {
	*rel.Converter
	adapter *Adapter
}

func (c *toEnumerable) WithNewInputs(inputs []rel.Node) rel.Node {
	return &toEnumerable{
		Converter: rel.NewConverter("CassandraToEnumerable", trait.Enumerable, inputs[0]),
		adapter:   c.adapter,
	}
}

func (c *toEnumerable) Unwrap() rel.Node { return c.Converter }

func (c *toEnumerable) Bind(ctx *exec.Context) (schema.Cursor, error) {
	cql, err := ToCQL(c.Inputs()[0])
	if err != nil {
		return nil, err
	}
	_, rows, err := c.adapter.Store.Execute(cql)
	if err != nil {
		return nil, err
	}
	return schema.NewSliceCursor(rows), nil
}

// ToCQL renders a cassandra-convention subtree as CQL text.
func ToCQL(n rel.Node) (string, error) {
	sel, table, where, order, limit, err := collect(n)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("SELECT ")
	if len(sel) == 0 {
		b.WriteString("*")
	} else {
		b.WriteString(strings.Join(sel, ", "))
	}
	b.WriteString(" FROM " + table)
	if len(where) > 0 {
		b.WriteString(" WHERE " + strings.Join(where, " AND "))
	}
	if len(order) > 0 {
		b.WriteString(" ORDER BY " + strings.Join(order, ", "))
	}
	if limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", limit)
	}
	return b.String(), nil
}

func collect(n rel.Node) (sel []string, table string, where, order []string, limit int, err error) {
	limit = -1
	switch x := n.(type) {
	case *rel.TableScan:
		return nil, x.Table.Name(), nil, nil, -1, nil
	case *rel.Filter:
		sel, table, where, order, limit, err = collect(x.Inputs()[0])
		if err != nil {
			return
		}
		fields := x.Inputs()[0].RowType().Fields
		for _, term := range rex.Conjuncts(x.Condition) {
			col, op, val, ok := simpleComparison(term)
			if !ok {
				return nil, "", nil, nil, -1, fmt.Errorf("cassandra: condition %s not translatable to CQL", term)
			}
			where = append(where, fmt.Sprintf("%s %s %s", fields[col].Name, op, cqlLit(val)))
		}
		return
	case *rel.Sort:
		sel, table, where, order, limit, err = collect(x.Inputs()[0])
		if err != nil {
			return
		}
		fields := x.Inputs()[0].RowType().Fields
		for _, fc := range x.Collation {
			dir := ""
			if fc.Direction == trait.Descending {
				dir = " DESC"
			}
			order = append(order, fields[fc.Field].Name+dir)
		}
		if x.Fetch >= 0 {
			limit = int(x.Fetch)
		}
		return
	case *rel.Project:
		sel, table, where, order, limit, err = collect(x.Inputs()[0])
		if err != nil {
			return
		}
		inFields := x.Inputs()[0].RowType().Fields
		var cols []string
		for _, e := range x.Exprs {
			ref, ok := e.(*rex.InputRef)
			if !ok {
				return nil, "", nil, nil, -1, fmt.Errorf("cassandra: CQL projects columns only")
			}
			cols = append(cols, inFields[ref.Index].Name)
		}
		sel = cols
		return
	}
	return nil, "", nil, nil, -1, fmt.Errorf("cassandra: cannot translate %s to CQL", n.Op())
}

func cqlLit(v any) string {
	if s, ok := v.(string); ok {
		return "'" + strings.ReplaceAll(s, "'", "''") + "'"
	}
	return types.FormatValue(v)
}
