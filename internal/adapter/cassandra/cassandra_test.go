package cassandra_test

import (
	"strings"
	"testing"

	"calcite"
	"calcite/internal/adapter/cassandra"
	"calcite/internal/rel"
	"calcite/internal/types"
)

func newConn(t testing.TB) (*calcite.Connection, *cassandra.Store) {
	t.Helper()
	store := cassandra.NewStore()
	store.CreateTable(cassandra.TableDef{
		Name: "events",
		Fields: []types.Field{
			{Name: "tenant", Type: types.Varchar},
			{Name: "ts", Type: types.BigInt},
			{Name: "payload", Type: types.Varchar},
		},
		PartitionKeys:  []int{0},
		ClusteringKeys: []int{1},
	}, [][]any{
		{"acme", int64(3), "c"},
		{"acme", int64(1), "a"},
		{"acme", int64(2), "b"},
		{"globex", int64(1), "x"},
	})
	conn := calcite.Open()
	conn.RegisterAdapter(cassandra.New("cass", store))
	return conn, store
}

// TestE14SortPushdownFires: both §6 preconditions hold — single-partition
// filter plus clustering-prefix sort — so the CassandraSort rule fires and
// the CQL carries the ORDER BY.
func TestE14SortPushdownFires(t *testing.T) {
	conn, store := newConn(t)
	sql := "SELECT ts, payload FROM cass.events WHERE tenant = 'acme' ORDER BY ts"
	_, opt, err := conn.Plan(sql)
	if err != nil {
		t.Fatal(err)
	}
	planText := rel.Explain(opt)
	if !strings.Contains(planText, "CassandraSort") {
		t.Fatalf("CassandraSort missing:\n%s", planText)
	}
	res, err := conn.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || res.Rows[0][1] != "a" || res.Rows[2][1] != "c" {
		t.Fatalf("rows: %v", res.Rows)
	}
	cql := store.LastQuery()
	if !strings.Contains(cql, "ORDER BY ts") || !strings.Contains(cql, "WHERE tenant = 'acme'") {
		t.Errorf("CQL missing pushdown: %q", cql)
	}
}

// TestE14Precondition1Violated: no single-partition filter → the sort must
// NOT be pushed (rows span partitions, which are only sorted internally).
func TestE14Precondition1Violated(t *testing.T) {
	conn, store := newConn(t)
	sql := "SELECT tenant, ts FROM cass.events ORDER BY ts"
	_, opt, err := conn.Plan(sql)
	if err != nil {
		t.Fatal(err)
	}
	planText := rel.Explain(opt)
	if strings.Contains(planText, "CassandraSort") {
		t.Fatalf("sort wrongly pushed without partition filter:\n%s", planText)
	}
	res, err := conn.Query(sql)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows: %v", res.Rows)
	}
	for i := 1; i < len(res.Rows); i++ {
		a, _ := types.AsInt(res.Rows[i-1][1])
		b, _ := types.AsInt(res.Rows[i][1])
		if a > b {
			t.Fatalf("output not sorted: %v", res.Rows)
		}
	}
	if strings.Contains(store.LastQuery(), "ORDER BY") {
		t.Errorf("CQL contains ORDER BY without partition restriction: %q", store.LastQuery())
	}
}

// TestE14Precondition2Violated: sorting on a non-clustering column is not
// pushed even with a single-partition filter.
func TestE14Precondition2Violated(t *testing.T) {
	conn, store := newConn(t)
	sql := "SELECT ts, payload FROM cass.events WHERE tenant = 'acme' ORDER BY payload"
	_, opt, err := conn.Plan(sql)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(rel.Explain(opt), "CassandraSort") {
		t.Fatalf("sort wrongly pushed for non-clustering column:\n%s", rel.Explain(opt))
	}
	if _, err := conn.Query(sql); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(store.LastQuery(), "ORDER BY payload") {
		t.Errorf("CQL: %q", store.LastQuery())
	}
}

// TestCQLRestrictions: the store itself rejects un-Cassandra-able queries.
func TestCQLRestrictions(t *testing.T) {
	_, store := newConn(t)
	if _, _, err := store.Execute("SELECT * FROM events WHERE payload = 'a'"); err == nil {
		t.Error("non-key filter should be rejected (no ALLOW FILTERING)")
	}
	if _, _, err := store.Execute("SELECT * FROM events ORDER BY ts"); err == nil {
		t.Error("ORDER BY without partition equality should be rejected")
	}
	if _, _, err := store.Execute("SELECT * FROM events WHERE tenant > 'a'"); err == nil {
		t.Error("partition range should be rejected")
	}
	_, rows, err := store.Execute("SELECT payload FROM events WHERE tenant = 'acme' AND ts >= 2 ORDER BY ts DESC LIMIT 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || rows[0][0] != "c" {
		t.Fatalf("rows: %v", rows)
	}
}

// TestDescendingReversal: a fully-descending prefix is also accepted (the
// reversed clustering order).
func TestDescendingReversal(t *testing.T) {
	conn, store := newConn(t)
	res, err := conn.Query("SELECT ts FROM cass.events WHERE tenant = 'acme' ORDER BY ts DESC")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := types.AsInt(res.Rows[0][0]); v != 3 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if !strings.Contains(store.LastQuery(), "DESC") {
		t.Errorf("CQL: %q", store.LastQuery())
	}
}
