// Package mem is the in-memory adapter: the minimal adapter of §5 — it only
// provides scannable tables, demonstrating that "if an adapter implements
// the table scan operator, the Calcite optimizer is then able to use
// client-side operators such as sorting, filtering, and joins to execute
// arbitrary SQL queries against these tables". It contributes no rules and
// no converters; everything executes in the enumerable convention.
//
// Its tables are schema.MemTable, which implements BatchScannableTable, so
// scans feed the vectorized batch execution path column-major by default
// (row-at-a-time scanning remains available through the Cursor contract).
package mem

import (
	"calcite/internal/core"
	"calcite/internal/plan"
	"calcite/internal/schema"
	"calcite/internal/types"
)

// Adapter exposes in-memory tables as a schema.
type Adapter struct {
	schema *schema.BaseSchema
}

// New creates an empty adapter with the given schema name.
func New(name string) *Adapter {
	return &Adapter{schema: schema.NewBaseSchema(name)}
}

// AddTable registers an in-memory table.
func (a *Adapter) AddTable(name string, rowType *types.Type, rows [][]any) *schema.MemTable {
	t := schema.NewMemTable(name, rowType, rows)
	a.schema.AddTable(t)
	return t
}

// AdapterSchema implements core.Adapter.
func (a *Adapter) AdapterSchema() schema.Schema { return a.schema }

// Rules implements core.Adapter (none: the minimal adapter).
func (a *Adapter) Rules() []plan.Rule { return nil }

// Converters implements core.Adapter (none).
func (a *Adapter) Converters() []core.ConverterReg { return nil }
