// Package sqldb provides (1) Server, a standalone SQL database engine
// reachable only through SQL text — the stand-in for the MySQL backend of
// Figure 2 — and (2) the JDBC-style adapter that connects the framework to
// such a server, generating dialect SQL for pushed-down expressions (the
// "JDBC adapter" row of Table 2: "SQL (multiple dialects)").
//
// The boundary is deliberately string-typed: the optimizer's output crosses
// into the server only as SQL, exactly like a remote RDBMS over a wire
// protocol. DESIGN.md documents this substitution.
package sqldb

import (
	"fmt"
	"sync"
	"time"

	"calcite/internal/core"
	"calcite/internal/schema"
	"calcite/internal/types"
)

// Server is a mini SQL database: storage plus a SQL interface. Internally it
// runs its own instance of the query engine over a private catalog,
// mirroring a real remote RDBMS (a full database engine behind a SQL
// string API).
type Server struct {
	name string

	// Network simulates wire costs: a fixed per-request latency plus a
	// per-result-row transfer cost. Zero by default; the federation
	// benchmarks set it so that data movement — not in-process call
	// overhead — dominates, as on a real network.
	Network NetworkCost

	mu sync.Mutex
	fw *core.Framework
	// Queries records every SQL statement received (tests assert on the
	// pushed-down SQL text).
	Queries []string
}

// NetworkCost models the wire between the framework and a backend.
type NetworkCost struct {
	PerRequest time.Duration
	PerRow     time.Duration
}

// Charge sleeps for the simulated transfer of n result rows.
func (c NetworkCost) Charge(rows int) {
	d := c.PerRequest + time.Duration(rows)*c.PerRow
	if d > 0 {
		time.Sleep(d)
	}
}

// NewServer creates an empty database server.
func NewServer(name string) *Server {
	return &Server{name: name, fw: core.New()}
}

// CreateTable defines a table with the given columns and rows.
func (s *Server) CreateTable(name string, rowType *types.Type, rows [][]any) *schema.MemTable {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := schema.NewMemTable(name, rowType, rows)
	s.fw.Catalog.AddTable(t)
	return t
}

// Query executes a SQL string and returns column names and rows — the only
// way data leaves the server.
func (s *Server) Query(sql string) ([]string, [][]any, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.Queries = append(s.Queries, sql)
	res, err := s.fw.Execute(sql)
	if err != nil {
		return nil, nil, fmt.Errorf("sqldb[%s]: %v", s.name, err)
	}
	s.Network.Charge(len(res.Rows))
	return res.Columns, res.Rows, nil
}

// LastQuery returns the most recent SQL text received (for tests and the
// Table 2 reproduction).
func (s *Server) LastQuery() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.Queries) == 0 {
		return ""
	}
	return s.Queries[len(s.Queries)-1]
}

// TableNames lists the server's tables.
func (s *Server) TableNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fw.Catalog.TableNames()
}

// TableType returns a table's row type (the adapter's schema factory reads
// remote metadata through this, per Figure 3).
func (s *Server) TableType(name string) (*types.Type, schema.Statistics, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.fw.Catalog.Table(name)
	if !ok {
		return nil, schema.Statistics{}, fmt.Errorf("sqldb[%s]: no table %q", s.name, name)
	}
	return t.RowType(), t.Stats(), nil
}

// Lookup performs a single-key equality lookup — the ODBC-style lookup
// facility Figure 2's Splunk backend uses to join into MySQL.
func (s *Server) Lookup(table, keyColumn string, value any) ([][]any, error) {
	sql := fmt.Sprintf("SELECT * FROM %s WHERE %s = %s", table, keyColumn, sqlLit(value))
	_, rows, err := s.Query(sql)
	return rows, err
}

func sqlLit(v any) string {
	if s, ok := v.(string); ok {
		return "'" + s + "'"
	}
	return types.FormatValue(v)
}
