package sqldb_test

import (
	"strings"
	"testing"

	"calcite"
	"calcite/internal/adapter/sqldb"
	"calcite/internal/rel2sql"
	"calcite/internal/types"
)

func newServer() *sqldb.Server {
	s := sqldb.NewServer("db")
	s.CreateTable("products", types.Row(
		types.Field{Name: "id", Type: types.BigInt},
		types.Field{Name: "name", Type: types.Varchar},
		types.Field{Name: "price", Type: types.Double},
	), [][]any{
		{int64(1), "Widget", 9.99},
		{int64(2), "Gadget", 19.99},
		{int64(3), "Gizmo", 29.99},
	})
	return s
}

func TestServerSQLBoundary(t *testing.T) {
	s := newServer()
	cols, rows, err := s.Query("SELECT name FROM products WHERE price > 10 ORDER BY name")
	if err != nil {
		t.Fatal(err)
	}
	if len(cols) != 1 || len(rows) != 2 || rows[0][0] != "Gadget" {
		t.Fatalf("cols=%v rows=%v", cols, rows)
	}
	if _, _, err := s.Query("SELECT nosuch FROM products"); err == nil {
		t.Error("server should validate SQL")
	}
	if rows, err := s.Lookup("products", "id", int64(2)); err != nil || len(rows) != 1 {
		t.Fatalf("lookup: %v %v", rows, err)
	}
}

// TestFullPushdown: filter + project + aggregate + sort all travel to the
// server as one dialect-SQL statement.
func TestFullPushdown(t *testing.T) {
	s := newServer()
	conn := calcite.Open()
	a, err := sqldb.New("db", s, rel2sql.Postgres)
	if err != nil {
		t.Fatal(err)
	}
	conn.RegisterAdapter(a)

	res, err := conn.Query(`SELECT name FROM db.products WHERE price > 10 ORDER BY name LIMIT 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != "Gadget" {
		t.Fatalf("rows: %v", res.Rows)
	}
	sql := s.LastQuery()
	for _, frag := range []string{"WHERE", "ORDER BY", "LIMIT 1", `"name"`} {
		if !strings.Contains(sql, frag) {
			t.Errorf("pushed SQL missing %q: %s", frag, sql)
		}
	}

	res, err = conn.Query("SELECT COUNT(*) AS c, SUM(price) AS s FROM db.products")
	if err != nil {
		t.Fatal(err)
	}
	if c, _ := types.AsInt(res.Rows[0][0]); c != 3 {
		t.Fatalf("count: %v", res.Rows)
	}
	if !strings.Contains(s.LastQuery(), "COUNT(*)") {
		t.Errorf("aggregate not pushed: %s", s.LastQuery())
	}
}

// TestTwoSidedJoinPushdown: a join with both sides on the same server is
// executed remotely.
func TestTwoSidedJoinPushdown(t *testing.T) {
	s := newServer()
	s.CreateTable("orders", types.Row(
		types.Field{Name: "pid", Type: types.BigInt},
		types.Field{Name: "qty", Type: types.BigInt},
	), [][]any{{int64(1), int64(5)}, {int64(2), int64(7)}})
	conn := calcite.Open()
	a, err := sqldb.New("db", s, rel2sql.MySQL)
	if err != nil {
		t.Fatal(err)
	}
	conn.RegisterAdapter(a)
	res, err := conn.Query(`SELECT p.name, o.qty FROM db.products p JOIN db.orders o ON p.id = o.pid ORDER BY p.name`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: %v", res.Rows)
	}
	if !strings.Contains(s.LastQuery(), "JOIN") {
		t.Errorf("join not pushed: %s", s.LastQuery())
	}
}

// TestMixedLocalRemoteJoin: a remote table joined with a local table uses
// the converter boundary correctly.
func TestMixedLocalRemoteJoin(t *testing.T) {
	s := newServer()
	conn := calcite.Open()
	a, err := sqldb.New("db", s, rel2sql.MySQL)
	if err != nil {
		t.Fatal(err)
	}
	conn.RegisterAdapter(a)
	conn.AddTable("tags", calcite.Columns{
		{Name: "pid", Type: calcite.BigIntType},
		{Name: "tag", Type: calcite.VarcharType},
	}, [][]any{{int64(1), "hot"}, {int64(9), "cold"}})
	res, err := conn.Query(`SELECT p.name, t.tag FROM db.products p JOIN tags t ON p.id = t.pid`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][1] != "hot" {
		t.Fatalf("rows: %v", res.Rows)
	}
}
