package sqldb

import (
	"calcite/internal/core"
	"calcite/internal/exec"
	"calcite/internal/plan"
	"calcite/internal/rel"
	"calcite/internal/rel2sql"
	"calcite/internal/rex"
	"calcite/internal/schema"
	"calcite/internal/trait"
	"calcite/internal/types"
)

// remoteTable is the adapter's local handle for a server table.
type remoteTable struct {
	name    string
	rowType *types.Type
	stats   schema.Statistics
	server  *Server
}

func (t *remoteTable) Name() string             { return t.name }
func (t *remoteTable) RowType() *types.Type     { return t.rowType }
func (t *remoteTable) Stats() schema.Statistics { return t.stats }

// TransferCostFactor implements schema.RemoteTable: rows pulled from the
// server cross an engine boundary.
func (t *remoteTable) TransferCostFactor() float64 { return 1 }

// Scan lets the enumerable engine fall back to a full remote scan
// ("SELECT * FROM t") when no pushdown applies.
func (t *remoteTable) Scan() (schema.Cursor, error) {
	_, rows, err := t.server.Query("SELECT * FROM " + t.name)
	if err != nil {
		return nil, err
	}
	return schema.NewSliceCursor(rows), nil
}

// Adapter connects a Server to the framework under a dedicated calling
// convention (e.g. "jdbc-mysql" in Figure 2).
type Adapter struct {
	SchemaName string
	Server     *Server
	Dialect    rel2sql.Dialect
	Conv       trait.Convention

	schema *schema.BaseSchema
}

// New builds the adapter, reading table metadata from the server (the
// schema-factory step of Figure 3).
func New(schemaName string, server *Server, dialect rel2sql.Dialect) (*Adapter, error) {
	a := &Adapter{
		SchemaName: schemaName,
		Server:     server,
		Dialect:    dialect,
		Conv:       trait.NewConvention("jdbc-" + schemaName),
		schema:     schema.NewBaseSchema(schemaName),
	}
	for _, name := range server.TableNames() {
		rt, stats, err := server.TableType(name)
		if err != nil {
			return nil, err
		}
		a.schema.AddTable(&remoteTable{name: name, rowType: rt, stats: stats, server: server})
	}
	return a, nil
}

// AdapterSchema implements core.Adapter.
func (a *Adapter) AdapterSchema() schema.Schema { return a.schema }

// inConv matches nodes of type T carrying this adapter's convention.
func (a *Adapter) inConv(n rel.Node) bool {
	return trait.SameConvention(n.Traits().Convention, a.Conv)
}

func isLogical(n rel.Node) bool {
	return trait.SameConvention(n.Traits().Convention, trait.Logical)
}

// Rules implements core.Adapter: the JDBC adapter pushes scans, filters,
// projections, sorts, aggregates and two-sided joins into the remote server
// ("any expression represented in the relational algebra can be pushed down
// to adapters with optimizer rules", §5).
func (a *Adapter) Rules() []plan.Rule {
	conv := a.Conv
	ts := trait.NewSet(conv)
	return []plan.Rule{
		&plan.FuncRule{
			Name: "JdbcScanRule(" + a.SchemaName + ")",
			Op: plan.MatchNode(func(n rel.Node) bool {
				s, ok := n.(*rel.TableScan)
				if !ok || !isLogical(n) {
					return false
				}
				_, mine := s.Table.(*remoteTable)
				return mine && a.ownsTable(s.Table)
			}),
			Fire: func(call *plan.Call) {
				s := call.Rel(0).(*rel.TableScan)
				// Remote names are unqualified within the server.
				call.Transform(rel.NewTableScan(conv, s.Table, []string{s.Table.Name()}))
			},
		},
		&plan.FuncRule{
			Name: "JdbcFilterRule(" + a.SchemaName + ")",
			Op: plan.MatchNode(func(n rel.Node) bool {
				_, ok := n.(*rel.Filter)
				return ok && isLogical(n)
			}, plan.MatchNode(a.inConv)),
			Fire: func(call *plan.Call) {
				f := call.Rel(0).(*rel.Filter)
				call.Transform(rel.NewFilterTraits("JdbcFilter", ts, call.Rel(1), f.Condition))
			},
		},
		&plan.FuncRule{
			Name: "JdbcProjectRule(" + a.SchemaName + ")",
			Op: plan.MatchNode(func(n rel.Node) bool {
				_, ok := n.(*rel.Project)
				return ok && isLogical(n)
			}, plan.MatchNode(a.inConv)),
			Fire: func(call *plan.Call) {
				p := call.Rel(0).(*rel.Project)
				call.Transform(rel.NewProjectTraits("JdbcProject", ts, call.Rel(1), p.Exprs, p.FieldNames()))
			},
		},
		&plan.FuncRule{
			Name: "JdbcSortRule(" + a.SchemaName + ")",
			Op: plan.MatchNode(func(n rel.Node) bool {
				_, ok := n.(*rel.Sort)
				return ok && isLogical(n)
			}, plan.MatchNode(a.inConv)),
			Fire: func(call *plan.Call) {
				s := call.Rel(0).(*rel.Sort)
				call.Transform(rel.NewSortTraits("JdbcSort", ts.WithCollation(s.Collation), call.Rel(1), s.Collation, s.Offset, s.Fetch))
			},
		},
		&plan.FuncRule{
			Name: "JdbcAggregateRule(" + a.SchemaName + ")",
			Op: plan.MatchNode(func(n rel.Node) bool {
				_, ok := n.(*rel.Aggregate)
				return ok && isLogical(n)
			}, plan.MatchNode(a.inConv)),
			Fire: func(call *plan.Call) {
				agg := call.Rel(0).(*rel.Aggregate)
				for _, c := range agg.Calls {
					if c.Func == rex.AggCollect || c.Func == rex.AggSingleValue {
						return // not expressible in plain SQL
					}
				}
				call.Transform(rel.NewAggregateTraits("JdbcAggregate", ts, call.Rel(1), agg.GroupKeys, agg.Calls))
			},
		},
		&plan.FuncRule{
			Name: "JdbcJoinRule(" + a.SchemaName + ")",
			Op: plan.MatchNode(func(n rel.Node) bool {
				j, ok := n.(*rel.Join)
				return ok && isLogical(n) && j.Kind != rel.SemiJoin && j.Kind != rel.AntiJoin
			}, plan.MatchNode(a.inConv), plan.MatchNode(a.inConv)),
			Fire: func(call *plan.Call) {
				j := call.Rel(0).(*rel.Join)
				call.Transform(rel.NewJoinTraits("JdbcJoin", ts, j.Kind, call.Rel(1), call.Rel(2), j.Condition))
			},
		},
	}
}

// ownsTable reports whether the table belongs to this adapter's server.
func (a *Adapter) ownsTable(t schema.Table) bool {
	rt, ok := t.(*remoteTable)
	return ok && rt.server == a.Server
}

// Converters implements core.Adapter: a jdbc-convention subtree converts to
// enumerable by unparsing it to dialect SQL and executing it on the server.
func (a *Adapter) Converters() []core.ConverterReg {
	return []core.ConverterReg{{
		From: a.Conv,
		To:   trait.Enumerable,
		Factory: func(input rel.Node) rel.Node {
			return &toEnumerable{
				Converter: rel.NewConverter("JdbcToEnumerable", trait.Enumerable, input),
				adapter:   a,
			}
		},
	}}
}

// toEnumerable executes a remote subtree via generated SQL.
type toEnumerable struct {
	*rel.Converter
	adapter *Adapter
}

func (c *toEnumerable) WithNewInputs(inputs []rel.Node) rel.Node {
	return &toEnumerable{
		Converter: rel.NewConverter("JdbcToEnumerable", trait.Enumerable, inputs[0]),
		adapter:   c.adapter,
	}
}

func (c *toEnumerable) Bind(ctx *exec.Context) (schema.Cursor, error) {
	sql, err := c.SQL()
	if err != nil {
		return nil, err
	}
	_, rows, err := c.adapter.Server.Query(sql)
	if err != nil {
		return nil, err
	}
	return schema.NewSliceCursor(rows), nil
}

// SQL returns the dialect SQL generated for the remote subtree (exposed for
// EXPLAIN, tests and the Table 2 harness).
func (c *toEnumerable) SQL() (string, error) {
	return rel2sql.Unparse(c.Inputs()[0], c.adapter.Dialect)
}

// PushedSQL unparses a jdbc-convention subtree without executing it.
func (a *Adapter) PushedSQL(n rel.Node) (string, error) {
	return rel2sql.Unparse(n, a.Dialect)
}

// Unwrap lets the metadata layer cost this converter as a generic
// convention converter (serialization IO at the engine boundary).
func (c *toEnumerable) Unwrap() rel.Node { return c.Converter }
